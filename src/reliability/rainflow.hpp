#pragma once
// Rainflow cycle counting per ASTM E1049-85 (reapproved 2017), Sec. 5.4.4:
// the history is reduced to its reversal sequence, then scanned with the
// standard three-reversal comparison — a trailing range X and the range Y
// before it (four data points). When X >= Y, Y is extracted: as one full
// cycle when it does not contain the starting reversal, as a half cycle
// (with the starting point discarded) when it does. The residue left at the
// end of the history is counted as successive half cycles, so every
// reversal of the input contributes to exactly one count — a monotone
// history yields exactly one half cycle.
//
// Counted cycles carry their range, mean, and count (1.0 or 0.5); they can
// be binned into a range x mean matrix for reporting and for identifying
// the damage-dominant cycle class.

#include <cstddef>
#include <vector>

namespace ms::reliability {

/// One counted cycle: range = |peak - valley|, mean = (peak + valley) / 2,
/// count = 1.0 (full) or 0.5 (half).
struct Cycle {
  double range = 0.0;
  double mean = 0.0;
  double count = 0.0;
};

/// Reversal sequence of a series: the first point, every strict local
/// extremum, and the last point. Equal consecutive values collapse first, so
/// plateaus do not produce spurious reversals; a constant series reduces to
/// a single point (no countable range).
std::vector<double> extract_reversals(const std::vector<double>& series);

/// ASTM E1049 rainflow counting of a series (reversal extraction included).
/// Returns the counted cycles in extraction order, residue half cycles last.
std::vector<Cycle> rainflow_count(const std::vector<double>& series);

/// Binned range x mean matrix of a counted cycle set. Bin edges are uniform
/// over [0, range_max] and [mean_min, mean_max] of the input cycles (the
/// upper edges are inclusive). Zero-range cycles land in the first range bin.
struct RainflowMatrix {
  int range_bins = 0;
  int mean_bins = 0;
  double range_max = 0.0;
  double mean_min = 0.0;
  double mean_max = 0.0;
  std::vector<double> counts;  ///< range-major: counts[r * mean_bins + m]
  double total_count = 0.0;    ///< sum of all cycle counts

  [[nodiscard]] double at(int range_bin, int mean_bin) const {
    return counts[static_cast<std::size_t>(range_bin) * mean_bins + mean_bin];
  }
  /// Centre of a range bin (the representative range of that class).
  [[nodiscard]] double range_bin_centre(int range_bin) const;
  [[nodiscard]] double mean_bin_centre(int mean_bin) const;
  /// Flat index of the bin with the largest count (-1 when empty); ties
  /// resolve to the larger range bin (the more damaging class).
  [[nodiscard]] int dominant_bin() const;
};

RainflowMatrix bin_cycles(const std::vector<Cycle>& cycles, int range_bins, int mean_bins);

}  // namespace ms::reliability
