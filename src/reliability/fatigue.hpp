#pragma once
// Pluggable fatigue-life models: cycles-to-failure as a function of a
// rainflow-counted cycle (range + mean) of one stress channel. Three classic
// laws cover the package failure modes:
//
//  - Basquin (high-cycle, stress-life): N_f = 0.5 * (dS / (2 s_f'))^(1/b),
//    b < 0. The Cu TSV barrel under elastic cycling.
//  - Coffin-Manson (low-cycle, strain-life): N_f = 0.5 *
//    (de / (2 e_f'))^(1/c), c < 0, with the strain range estimated from the
//    stress range through the material modulus. Plastic ratcheting of the
//    via/liner interface under large thermal swings.
//  - Engelmaier (solder-joint shear): Coffin-Manson in shear-strain range
//    dGamma = dTau / G with the temperature- and frequency-dependent
//    exponent c = c0 + c1 * T_mean + c2 * ln(1 + f) of the classic
//    Engelmaier model (T_mean in C, f in cycles/day). The microbump plane
//    under the through-plane shear channel.
//
// Model parameters ride on fem::Material (fatigue_strength / exponent and
// fatigue_ductility / exponent) so material provenance stays in one table;
// the factories below build models straight from a Material entry.
// Lifetimes compose by Miner's rule (reliability/damage.hpp).

#include <memory>
#include <string>

#include "fem/material.hpp"

namespace ms::reliability {

class FatigueModel {
 public:
  virtual ~FatigueModel() = default;
  /// Cycles to failure of a constant-amplitude cycle with the given range
  /// and mean (channel units, MPa). Returns +inf below the model threshold
  /// (no damage); never returns less than a half cycle.
  [[nodiscard]] virtual double cycles_to_failure(double range, double mean) const = 0;
  [[nodiscard]] virtual const std::string& name() const = 0;
};

/// Mean-stress correction applied to a stress-life law. Rainflow counting
/// records each cycle's mean precisely so the correction can use it:
///  - kNone:    mean ignored (fully-reversed assumption).
///  - kGoodman: the effective fully-reversed amplitude is
///              s_a / (1 - s_m / s_u); tensile means cost life linearly up
///              to the ultimate strength.
///  - kMorrow:  the strength coefficient shrinks to s_f' - s_m.
enum class MeanStressCorrection : int {
  kNone = 0,
  kGoodman = 1,
  kMorrow = 2,
};

/// Basquin stress-life: dS/2 = s_f' (2 N_f)^b. `endurance_range` (optional)
/// is the stress range below which no damage accumulates. With a correction
/// other than kNone, `ultimate_strength` (Goodman) must be positive; a cycle
/// whose mean consumes the whole correction margin (s_m >= s_u under
/// Goodman, s_m >= s_f' under Morrow) fails in the half-cycle floor.
class BasquinModel : public FatigueModel {
 public:
  BasquinModel(double fatigue_strength, double exponent, double endurance_range = 0.0,
               MeanStressCorrection correction = MeanStressCorrection::kNone,
               double ultimate_strength = 0.0);
  [[nodiscard]] double cycles_to_failure(double range, double mean) const override;
  [[nodiscard]] const std::string& name() const override { return name_; }

 private:
  double sigma_f_, b_, endurance_range_;
  MeanStressCorrection correction_;
  double sigma_u_;
  std::string name_ = "basquin";
};

/// Coffin-Manson strain-life with the strain range taken as range / modulus:
/// de/2 = e_f' (2 N_f)^c. The optional modified-Morrow correction scales the
/// ductility coefficient to e_f' (1 - s_m / s_f')^(c/b), which requires the
/// companion stress-life pair (fatigue_strength, strength_exponent).
class CoffinMansonModel : public FatigueModel {
 public:
  CoffinMansonModel(double fatigue_ductility, double exponent, double modulus,
                    double fatigue_strength = 0.0, double strength_exponent = 0.0);
  [[nodiscard]] double cycles_to_failure(double range, double mean) const override;
  [[nodiscard]] const std::string& name() const override { return name_; }

 private:
  double eps_f_, c_, modulus_;
  double sigma_f_ = 0.0, b_ = 0.0;  ///< 0 = no modified-Morrow correction
  std::string name_ = "coffin-manson";
};

/// Engelmaier solder-joint model: shear-strain range dTau / G against the
/// temperature/frequency-corrected exponent.
class EngelmaierModel : public FatigueModel {
 public:
  /// Classic eutectic-solder constants: e_f' = 0.325,
  /// c = -0.442 - 6e-4 * T_mean + 1.74e-2 * ln(1 + f).
  /// `shear_modulus_slope` [MPa/C] softens the solder with temperature:
  /// G_eff = G + slope * (T_mean - 20), referenced to the 20 C room
  /// temperature G is quoted at (0 = temperature-independent G). G_eff must
  /// stay positive over the given mean temperature.
  EngelmaierModel(double shear_modulus, double mean_temperature_c, double cycles_per_day,
                  double shear_modulus_slope = 0.0);
  [[nodiscard]] double cycles_to_failure(double range, double mean) const override;
  [[nodiscard]] const std::string& name() const override { return name_; }
  [[nodiscard]] double exponent() const { return c_; }
  [[nodiscard]] double effective_shear_modulus() const { return shear_modulus_; }

 private:
  double shear_modulus_, eps_f_, c_;
  std::string name_ = "engelmaier";
};

/// Basquin model from a material's fatigue_strength / fatigue_strength_exponent.
/// When the material carries an ultimate_strength the Goodman mean-stress
/// correction is enabled automatically. Throws std::invalid_argument when
/// the material carries no stress-life data.
std::unique_ptr<FatigueModel> basquin_from_material(const fem::Material& material);

/// Coffin-Manson model from fatigue_ductility / fatigue_ductility_exponent
/// and the material's Young's modulus. When the material also carries
/// stress-life data the modified-Morrow mean-stress correction is enabled.
std::unique_ptr<FatigueModel> coffin_manson_from_material(const fem::Material& material);

/// Engelmaier solder model with the classic eutectic constants and an
/// optional temperature-dependent shear modulus (see EngelmaierModel).
std::unique_ptr<FatigueModel> engelmaier_solder(double shear_modulus, double mean_temperature_c,
                                                double cycles_per_day,
                                                double shear_modulus_slope = 0.0);

}  // namespace ms::reliability
