#include "reliability/rainflow.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "obs/trace.hpp"

namespace ms::reliability {

std::vector<double> extract_reversals(const std::vector<double>& series) {
  std::vector<double> points;
  points.reserve(series.size());
  for (double v : series) {
    if (points.empty() || v != points.back()) points.push_back(v);
  }
  if (points.size() < 3) return points;
  std::vector<double> reversals;
  reversals.reserve(points.size());
  reversals.push_back(points.front());
  for (std::size_t i = 1; i + 1 < points.size(); ++i) {
    const double prev = points[i - 1], here = points[i], next = points[i + 1];
    if ((here > prev) != (next > here)) reversals.push_back(here);
  }
  reversals.push_back(points.back());
  return reversals;
}

std::vector<Cycle> rainflow_count(const std::vector<double>& series) {
  MS_TRACE_SCOPE("reliability.rainflow");
  const std::vector<double> reversals = extract_reversals(series);
  std::vector<Cycle> cycles;
  if (reversals.size() < 2) return cycles;

  // E1049 Sec. 5.4.4. `stack` holds the reversals not yet assigned to a
  // cycle; `start` indexes the oldest one, which still "contains the
  // starting point" in the standard's phrasing.
  std::vector<double> stack;
  stack.reserve(reversals.size());
  std::size_t start = 0;
  const auto emit = [&cycles](double a, double b, double count) {
    cycles.push_back({std::abs(b - a), 0.5 * (a + b), count});
  };
  for (double point : reversals) {
    stack.push_back(point);
    while (stack.size() - start >= 3) {
      const std::size_t top = stack.size() - 1;
      const double x = std::abs(stack[top] - stack[top - 1]);
      const double y = std::abs(stack[top - 1] - stack[top - 2]);
      if (x < y) break;
      if (top - 2 == start) {
        // Y contains the starting point: half cycle, drop the start.
        emit(stack[start], stack[start + 1], 0.5);
        ++start;
      } else {
        // Interior range: one full cycle; its two reversals leave the stack.
        emit(stack[top - 2], stack[top - 1], 1.0);
        stack[top - 2] = stack[top];
        stack.resize(top - 1);
      }
    }
  }
  // Residue: successive half cycles.
  for (std::size_t i = start; i + 1 < stack.size(); ++i) emit(stack[i], stack[i + 1], 0.5);
  return cycles;
}

double RainflowMatrix::range_bin_centre(int range_bin) const {
  return range_max * (range_bin + 0.5) / range_bins;
}

double RainflowMatrix::mean_bin_centre(int mean_bin) const {
  return mean_min + (mean_max - mean_min) * (mean_bin + 0.5) / mean_bins;
}

int RainflowMatrix::dominant_bin() const {
  int best = -1;
  double best_count = 0.0;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    if (counts[i] >= best_count && counts[i] > 0.0) {
      best_count = counts[i];
      best = static_cast<int>(i);
    }
  }
  return best;
}

RainflowMatrix bin_cycles(const std::vector<Cycle>& cycles, int range_bins, int mean_bins) {
  if (range_bins < 1 || mean_bins < 1) {
    throw std::invalid_argument("bin_cycles: need >= 1 bin per axis");
  }
  RainflowMatrix m;
  m.range_bins = range_bins;
  m.mean_bins = mean_bins;
  m.counts.assign(static_cast<std::size_t>(range_bins) * mean_bins, 0.0);
  if (cycles.empty()) return m;
  m.mean_min = m.mean_max = cycles.front().mean;
  for (const Cycle& c : cycles) {
    m.range_max = std::max(m.range_max, c.range);
    m.mean_min = std::min(m.mean_min, c.mean);
    m.mean_max = std::max(m.mean_max, c.mean);
  }
  const auto bin_of = [](double v, double lo, double hi, int bins) {
    if (hi <= lo) return 0;
    const int b = static_cast<int>((v - lo) / (hi - lo) * bins);
    return std::clamp(b, 0, bins - 1);
  };
  for (const Cycle& c : cycles) {
    const int r = bin_of(c.range, 0.0, m.range_max, range_bins);
    const int mb = bin_of(c.mean, m.mean_min, m.mean_max, mean_bins);
    m.counts[static_cast<std::size_t>(r) * mean_bins + mb] += c.count;
    m.total_count += c.count;
  }
  return m;
}

}  // namespace ms::reliability
