#pragma once
// Cycle-resolved stress records for fatigue analysis. A StressHistory holds,
// per recorded transient step, one scalar per block and per stress channel —
// the reduction of the full reconstructed mid-plane tensor field the ROM
// produces at that step. Three channels cover the failure modes of a TSV
// array under power cycling:
//
//   kVonMises       — per-block peak von Mises: bulk Cu/liner yielding.
//   kFirstPrincipal — per-block peak first principal stress (largest
//                     eigenvalue, signed): tensile cracking / delamination.
//   kBumpShear      — per-block peak resultant through-plane shear
//                     sqrt(s_yz^2 + s_xz^2): the shear the TSV column
//                     transfers into the microbump plane, sampled on the
//                     local stage's bump plane (z = height / (2 elems_z),
//                     just above the clamped face) — real bump-plane
//                     tractions, not the former mid-plane proxy (see
//                     DESIGN.md "Reliability").
//
// Histories feed rainflow counting (reliability/rainflow.hpp) channel by
// channel and block by block.

#include <array>
#include <cstddef>
#include <vector>

#include "fem/stress.hpp"

namespace ms::reliability {

enum class StressChannel : int {
  kVonMises = 0,
  kFirstPrincipal = 1,
  kBumpShear = 2,
};
inline constexpr int kNumChannels = 3;

[[nodiscard]] const char* channel_name(StressChannel channel);

/// First principal stress: the largest eigenvalue of the 3x3 stress tensor
/// (closed-form trigonometric solution, exact for symmetric matrices).
[[nodiscard]] double first_principal(const fem::Stress6& s);

/// Resultant through-plane shear sqrt(s_yz^2 + s_xz^2).
[[nodiscard]] double through_plane_shear(const fem::Stress6& s);

/// Scalar value of `channel` at one sample point.
[[nodiscard]] double channel_value(StressChannel channel, const fem::Stress6& s);

/// Per-step, per-channel, per-block scalar stress record. Blocks are y-major
/// over a blocks_x x blocks_y report region; the per-block scalar is the
/// *peak* channel value over the block's plane samples (max for the
/// non-negative channels, signed max for first principal — the most tensile
/// state governs fatigue).
class StressHistory {
 public:
  StressHistory() = default;
  StressHistory(int blocks_x, int blocks_y);

  /// Append one recorded step: reduce the reconstructed plane-stress field
  /// (y-major, samples_per_block^2 samples per block, same layout as
  /// rom::reconstruct_plane_stress over the report range) to per-block
  /// channel peaks. Throws if the field size does not match the grid.
  void record(double time, const std::vector<fem::Stress6>& plane_stress, int samples_per_block);

  /// Parallel-fill variant: preallocate all steps with their times, then
  /// reduce each step's field into its slot with record_step — slots are
  /// disjoint, so steps may be filled concurrently (and in any order) with
  /// bitwise-identical results.
  void resize_steps(const std::vector<double>& times);
  void record_step(std::size_t step, const std::vector<fem::Stress6>& plane_stress,
                   int samples_per_block);

  /// Full-field variant with a separate bump-plane shear field (same y-major
  /// sample layout, (s_yz, s_xz) per point, as rom::reconstruct_bump_plane_
  /// shear): von Mises / first principal reduce from the mid-plane field,
  /// the bump-shear channel from the bump-plane tractions. This is the
  /// reference the batched channel-only extractor locks against.
  void record_step(std::size_t step, const std::vector<fem::Stress6>& plane_stress,
                   const std::vector<std::array<double, 2>>& bump_shear, int samples_per_block);

  /// Write one per-block channel scalar directly (step-parallel producers
  /// such as the batched channel extractor; slots are disjoint per
  /// (step, channel, block)).
  void set_value(std::size_t step, StressChannel channel, std::size_t block, double value);

  [[nodiscard]] int blocks_x() const { return blocks_x_; }
  [[nodiscard]] int blocks_y() const { return blocks_y_; }
  [[nodiscard]] std::size_t num_blocks() const {
    return static_cast<std::size_t>(blocks_x_) * blocks_y_;
  }
  [[nodiscard]] std::size_t num_steps() const { return times_.size(); }
  [[nodiscard]] const std::vector<double>& times() const { return times_; }

  /// Channel value of one block at one recorded step.
  [[nodiscard]] double value(std::size_t step, StressChannel channel, std::size_t block) const;

  /// Time series of one block's channel (length num_steps()).
  [[nodiscard]] std::vector<double> series(StressChannel channel, std::size_t block) const;

  /// Per-block peak of a channel over the whole history (y-major): for a
  /// monotone history this equals the last recorded step, so it reproduces
  /// the transient-envelope stress map exactly.
  [[nodiscard]] std::vector<double> peak_map(StressChannel channel) const;

  [[nodiscard]] std::size_t memory_bytes() const {
    return data_.size() * sizeof(double) + times_.size() * sizeof(double);
  }

  /// Raw (step, channel, block) storage — one flat span for the
  /// stage-boundary numeric health sweep (core/health.hpp).
  [[nodiscard]] const std::vector<double>& raw_data() const { return data_; }

 private:
  int blocks_x_ = 0, blocks_y_ = 0;
  std::vector<double> times_;
  /// step-major, then channel-major, then block (y-major):
  /// data_[(step * kNumChannels + channel) * num_blocks + block].
  std::vector<double> data_;
};

}  // namespace ms::reliability
