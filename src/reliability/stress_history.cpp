#include "reliability/stress_history.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace ms::reliability {

const char* channel_name(StressChannel channel) {
  switch (channel) {
    case StressChannel::kVonMises: return "von_mises";
    case StressChannel::kFirstPrincipal: return "first_principal";
    case StressChannel::kBumpShear: return "bump_shear";
  }
  return "?";
}

double first_principal(const fem::Stress6& s) {
  // Voigt order xx, yy, zz, yz, xz, xy.
  const double sxx = s[0], syy = s[1], szz = s[2];
  const double syz = s[3], sxz = s[4], sxy = s[5];
  const double off = sxy * sxy + sxz * sxz + syz * syz;
  if (off == 0.0) return std::max({sxx, syy, szz});
  const double q = (sxx + syy + szz) / 3.0;
  const double p2 = (sxx - q) * (sxx - q) + (syy - q) * (syy - q) + (szz - q) * (szz - q) +
                    2.0 * off;
  const double p = std::sqrt(p2 / 6.0);
  // r = det((A - qI)/p) / 2, clamped against rounding at the ±1 boundaries.
  const double bxx = (sxx - q) / p, byy = (syy - q) / p, bzz = (szz - q) / p;
  const double bxy = sxy / p, bxz = sxz / p, byz = syz / p;
  const double det = bxx * (byy * bzz - byz * byz) - bxy * (bxy * bzz - byz * bxz) +
                     bxz * (bxy * byz - byy * bxz);
  const double r = std::clamp(det / 2.0, -1.0, 1.0);
  const double phi = std::acos(r) / 3.0;
  return q + 2.0 * p * std::cos(phi);
}

double through_plane_shear(const fem::Stress6& s) {
  return std::sqrt(s[3] * s[3] + s[4] * s[4]);
}

double channel_value(StressChannel channel, const fem::Stress6& s) {
  switch (channel) {
    case StressChannel::kVonMises: return fem::von_mises(s);
    case StressChannel::kFirstPrincipal: return first_principal(s);
    case StressChannel::kBumpShear: return through_plane_shear(s);
  }
  return 0.0;
}

StressHistory::StressHistory(int blocks_x, int blocks_y)
    : blocks_x_(blocks_x), blocks_y_(blocks_y) {
  if (blocks_x < 1 || blocks_y < 1) {
    throw std::invalid_argument("StressHistory: need >= 1 block per axis");
  }
}

void StressHistory::record(double time, const std::vector<fem::Stress6>& plane_stress,
                           int samples_per_block) {
  times_.push_back(time);
  data_.resize(data_.size() + static_cast<std::size_t>(kNumChannels) * num_blocks(), 0.0);
  record_step(times_.size() - 1, plane_stress, samples_per_block);
}

void StressHistory::resize_steps(const std::vector<double>& times) {
  times_ = times;
  data_.assign(times.size() * kNumChannels * num_blocks(), 0.0);
}

void StressHistory::record_step(std::size_t step, const std::vector<fem::Stress6>& plane_stress,
                                int samples_per_block) {
  if (step >= times_.size()) {
    throw std::invalid_argument("StressHistory::record_step: step out of range");
  }
  if (samples_per_block < 1) {
    throw std::invalid_argument("StressHistory::record: samples_per_block must be >= 1");
  }
  const std::size_t s = static_cast<std::size_t>(samples_per_block);
  if (plane_stress.size() != num_blocks() * s * s) {
    throw std::invalid_argument(
        "StressHistory::record: field size must be blocks * samples_per_block^2");
  }
  const std::size_t base = step * static_cast<std::size_t>(kNumChannels) * num_blocks();
  const std::size_t width = static_cast<std::size_t>(blocks_x_) * s;
  for (int by = 0; by < blocks_y_; ++by) {
    for (int bx = 0; bx < blocks_x_; ++bx) {
      const std::size_t block = static_cast<std::size_t>(by) * blocks_x_ + bx;
      double peak[kNumChannels];
      for (int c = 0; c < kNumChannels; ++c) peak[c] = -std::numeric_limits<double>::infinity();
      for (std::size_t my = 0; my < s; ++my) {
        const fem::Stress6* row = plane_stress.data() + (by * s + my) * width + bx * s;
        for (std::size_t mx = 0; mx < s; ++mx) {
          const fem::Stress6& t = row[mx];
          for (int c = 0; c < kNumChannels; ++c) {
            peak[c] = std::max(peak[c], channel_value(static_cast<StressChannel>(c), t));
          }
        }
      }
      for (int c = 0; c < kNumChannels; ++c) {
        data_[base + static_cast<std::size_t>(c) * num_blocks() + block] = peak[c];
      }
    }
  }
}

void StressHistory::record_step(std::size_t step, const std::vector<fem::Stress6>& plane_stress,
                                const std::vector<std::array<double, 2>>& bump_shear,
                                int samples_per_block) {
  record_step(step, plane_stress, samples_per_block);  // mid-plane channels
  const std::size_t s = static_cast<std::size_t>(samples_per_block);
  if (bump_shear.size() != num_blocks() * s * s) {
    throw std::invalid_argument(
        "StressHistory::record_step: bump field size must be blocks * samples_per_block^2");
  }
  // Overwrite the bump-shear channel with the bump-plane reduction.
  const std::size_t width = static_cast<std::size_t>(blocks_x_) * s;
  for (int by = 0; by < blocks_y_; ++by) {
    for (int bx = 0; bx < blocks_x_; ++bx) {
      const std::size_t block = static_cast<std::size_t>(by) * blocks_x_ + bx;
      double peak = -std::numeric_limits<double>::infinity();
      for (std::size_t my = 0; my < s; ++my) {
        const std::array<double, 2>* row = bump_shear.data() + (by * s + my) * width + bx * s;
        for (std::size_t mx = 0; mx < s; ++mx) {
          peak = std::max(peak, std::sqrt(row[mx][0] * row[mx][0] + row[mx][1] * row[mx][1]));
        }
      }
      set_value(step, StressChannel::kBumpShear, block, peak);
    }
  }
}

void StressHistory::set_value(std::size_t step, StressChannel channel, std::size_t block,
                              double value) {
  if (step >= times_.size() || block >= num_blocks()) {
    throw std::invalid_argument("StressHistory::set_value: step or block out of range");
  }
  data_[(step * kNumChannels + static_cast<int>(channel)) * num_blocks() + block] = value;
}

double StressHistory::value(std::size_t step, StressChannel channel, std::size_t block) const {
  return data_[(step * kNumChannels + static_cast<int>(channel)) * num_blocks() + block];
}

std::vector<double> StressHistory::series(StressChannel channel, std::size_t block) const {
  std::vector<double> out(num_steps());
  for (std::size_t t = 0; t < num_steps(); ++t) out[t] = value(t, channel, block);
  return out;
}

std::vector<double> StressHistory::peak_map(StressChannel channel) const {
  std::vector<double> out(num_blocks(), -std::numeric_limits<double>::infinity());
  for (std::size_t t = 0; t < num_steps(); ++t) {
    for (std::size_t b = 0; b < num_blocks(); ++b) {
      out[b] = std::max(out[b], value(t, channel, b));
    }
  }
  return out;
}

}  // namespace ms::reliability
