#include "reliability/damage.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>

#include "mesh/hex_mesh.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace ms::reliability {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}

double miner_damage(const std::vector<Cycle>& cycles, const FatigueModel& model) {
  MS_TRACE_SCOPE("reliability.miner");
  double damage = 0.0;
  for (const Cycle& c : cycles) {
    const double nf = model.cycles_to_failure(c.range, c.mean);
    if (std::isfinite(nf)) damage += c.count / nf;
  }
  return damage;
}

FatigueModelSet standard_model_set(const fem::MaterialTable& materials,
                                   double solder_shear_modulus, double mean_temperature_c,
                                   double cycles_per_day, double solder_shear_modulus_slope) {
  const fem::Material& copper = materials.at(mesh::MaterialId::Copper);
  FatigueModelSet set;
  set.set(StressChannel::kVonMises, basquin_from_material(copper));
  set.set(StressChannel::kFirstPrincipal, coffin_manson_from_material(copper));
  set.set(StressChannel::kBumpShear,
          engelmaier_solder(solder_shear_modulus, mean_temperature_c, cycles_per_day,
                            solder_shear_modulus_slope));
  return set;
}

const ChannelAssessment* ReliabilityReport::assessment(StressChannel channel) const {
  for (const ChannelAssessment& a : channels) {
    if (a.channel == channel) return &a;
  }
  return nullptr;
}

ReliabilityReport assess_history(const StressHistory& history, const FatigueModelSet& models,
                                 double trace_duration, const ReliabilityOptions& options) {
  if (history.num_steps() == 0) {
    throw std::invalid_argument("assess_history: empty stress history");
  }
  MS_TRACE_SCOPE("reliability.assess");
  obs::ScopedDuration assess_timer(
      obs::MetricRegistry::global().histogram("reliability.assess_seconds"));
  ReliabilityReport report;
  report.blocks_x = history.blocks_x();
  report.blocks_y = history.blocks_y();
  report.trace_duration = trace_duration;
  report.min_life_cycles = kInf;

  const std::size_t num_blocks = history.num_blocks();
  for (int c = 0; c < kNumChannels; ++c) {
    const StressChannel channel = static_cast<StressChannel>(c);
    const FatigueModel* model = models.at(channel);
    if (model == nullptr) continue;

    MS_TRACE_SCOPE("reliability.channel");
    ChannelAssessment a;
    a.channel = channel;
    a.model_name = model->name();
    a.damage.assign(num_blocks, 0.0);
    a.cycles_to_failure.assign(num_blocks, kInf);
    a.half_cycle_counts.assign(num_blocks, 0.0);
    a.min_life_cycles = kInf;
    std::vector<Cycle> min_life_cycles_set;
    obs::Counter& rainflow_series = obs::MetricRegistry::global().counter("reliability.rainflow_series");
    for (std::size_t b = 0; b < num_blocks; ++b) {
      const std::vector<Cycle> cycles = rainflow_count(history.series(channel, b));
      rainflow_series.add(1);
      for (const Cycle& cyc : cycles) a.half_cycle_counts[b] += cyc.count;
      a.damage[b] = miner_damage(cycles, *model);
      if (a.damage[b] > 0.0) a.cycles_to_failure[b] = 1.0 / a.damage[b];
      if (a.cycles_to_failure[b] < a.min_life_cycles) {
        a.min_life_cycles = a.cycles_to_failure[b];
        a.min_life_block = static_cast<int>(b);
        min_life_cycles_set = cycles;
      }
    }
    if (a.min_life_block >= 0) {
      a.min_life_matrix = bin_cycles(min_life_cycles_set, options.range_bins, options.mean_bins);
    }
    if (a.min_life_cycles < report.min_life_cycles) {
      report.min_life_cycles = a.min_life_cycles;
      report.min_life_block = a.min_life_block;
      report.min_life_channel = channel;
    }
    report.channels.push_back(std::move(a));
  }
  report.min_life_seconds = std::isfinite(report.min_life_cycles)
                                ? report.min_life_cycles * trace_duration
                                : kInf;
  return report;
}

}  // namespace ms::reliability
