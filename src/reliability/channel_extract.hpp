#pragma once
// Batched channel-only reconstruction for the fatigue hot path. The per-step
// pipeline used to rebuild the full dense mid-plane stress field only to
// reduce it to three per-block channel peaks; here the whole recorded panel
// reduces at once. Per block, the step solutions gather into one
// (n + 1) x num_steps coefficient matrix K (basis dofs plus the thermal
// column), each sample point's stored basis rows multiply K as a small dense
// product, and the pointwise channel values reduce to per-block peaks — the
// model's sample matrices stream through memory once per block instead of
// once per (block, step). The per-entry summation order matches the naive
// per-step GEMV in rom::reconstruct_*, so the result locks to the full-field
// path at rounding level (see tests/reliability/test_channel_extract.cpp).

#include <vector>

#include "reliability/stress_history.hpp"
#include "rom/reconstruct.hpp"

namespace ms::reliability {

/// Reduce a panel of global-stage solutions (one per recorded step, with the
/// matching per-block thermal loads) to per-step per-block channel peaks
/// over `range`, writing into `history` (already sized to range.width() x
/// range.height() blocks and solutions.size() steps). Von Mises and first
/// principal reduce from the mid-plane samples, bump shear from the
/// bump-plane tractions. Blocks are processed in parallel; every
/// (step, channel, block) slot is written exactly once.
void extract_channel_history(const rom::BlockGrid& grid, const rom::RomModel& tsv_model,
                             const rom::RomModel* dummy_model, const rom::BlockMask& mask,
                             const std::vector<rom::Vec>& solutions,
                             const std::vector<rom::BlockLoadField>& loads,
                             const rom::BlockRange& range, StressHistory& history);

}  // namespace ms::reliability
