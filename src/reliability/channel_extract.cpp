#include "reliability/channel_extract.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <stdexcept>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace ms::reliability {
namespace {

using la::idx_t;

constexpr double kInf = std::numeric_limits<double>::infinity();

/// out[ri * num_cols + j] = sum_k m(row0 + ri, k) * cols[j * nk + k].
/// Each output entry is one independent k-ascending accumulator — the same
/// summation order as the naive per-step GEMV in rom::reconstruct_* — tiled
/// 2 rows x 4 columns so the row data loaded from the (row-major) sample
/// matrix amortizes over eight accumulator chains. nr must be even.
void rows_times_cols(const la::DenseMatrix& m, idx_t row0, int nr, const double* cols,
                     idx_t num_cols, idx_t nk, double* out) {
  for (int ri = 0; ri < nr; ri += 2) {
    const double* a0 = m.data().data() + static_cast<std::size_t>(row0 + ri) * nk;
    const double* a1 = a0 + nk;
    double* o0 = out + static_cast<std::size_t>(ri) * num_cols;
    double* o1 = o0 + num_cols;
    idx_t t = 0;
    for (; t + 4 <= num_cols; t += 4) {
      const double* k0 = cols + static_cast<std::size_t>(t) * nk;
      const double* k1 = k0 + nk;
      const double* k2 = k1 + nk;
      const double* k3 = k2 + nk;
      double a00 = 0, a01 = 0, a02 = 0, a03 = 0;
      double a10 = 0, a11 = 0, a12 = 0, a13 = 0;
      for (idx_t k = 0; k < nk; ++k) {
        const double r0 = a0[k], r1 = a1[k];
        a00 += r0 * k0[k]; a01 += r0 * k1[k]; a02 += r0 * k2[k]; a03 += r0 * k3[k];
        a10 += r1 * k0[k]; a11 += r1 * k1[k]; a12 += r1 * k2[k]; a13 += r1 * k3[k];
      }
      o0[t] = a00; o0[t + 1] = a01; o0[t + 2] = a02; o0[t + 3] = a03;
      o1[t] = a10; o1[t + 1] = a11; o1[t + 2] = a12; o1[t + 3] = a13;
    }
    for (; t < num_cols; ++t) {
      const double* kc = cols + static_cast<std::size_t>(t) * nk;
      double s0 = 0, s1 = 0;
      for (idx_t k = 0; k < nk; ++k) {
        s0 += a0[k] * kc[k];
        s1 += a1[k] * kc[k];
      }
      o0[t] = s0;
      o1[t] = s1;
    }
  }
}

/// Squared von Mises stress: the argument of the sqrt in fem::von_mises,
/// term for term, so taking sqrt of the running maximum afterwards yields
/// the exact same double as maximizing fem::von_mises itself.
inline double von_mises_sq(double sxx, double syy, double szz, double syz, double sxz,
                           double sxy) {
  const double dxy = sxx - syy;
  const double dyz = syy - szz;
  const double dzx = szz - sxx;
  return 0.5 * (dxy * dxy + dyz * dyz + dzx * dzx) + 3.0 * (syz * syz + sxz * sxz + sxy * sxy);
}

/// Per-sample-point pruning data shared by every block using one model:
/// Cauchy-Schwarz factors for the residual bound (full-row Frobenius norms,
/// so any coefficient-space residual d gives |channel shift| <= a_ch ||d||
/// via channel subadditivity: vm(e) <= sqrt(3)||e_voigt||, sigma_1(e) <=
/// sqrt(2)||e_voigt||, shear(e) <= ||e||), and a visit order by the
/// thermal-load column's exact channel values so the per-step peaks climb
/// within the first few points.
struct PruneOrder {
  std::vector<double> a_vm;  ///< sqrt(3) * ||S6_pt||_F (all nk columns)
  std::vector<double> a_p1;  ///< sqrt(2) * ||S6_pt||_F
  std::vector<double> a_sh;  ///< ||S2_pt||_F
  std::vector<idx_t> order;  ///< points, descending load-column channels
};

PruneOrder build_prune_order(const rom::RomModel& model) {
  const idx_t n = model.num_element_dofs();
  const idx_t nk = n + 1;
  const idx_t npts =
      static_cast<idx_t>(model.samples_per_block) * model.samples_per_block;
  PruneOrder po;
  po.a_vm.resize(npts);
  po.a_p1.resize(npts);
  po.a_sh.resize(npts);
  std::vector<double> key(npts);
  const double* s6 = model.stress_samples.data().data();
  const double* s2 = model.bump_shear_samples.data().data();
  for (idx_t pt = 0; pt < npts; ++pt) {
    const double* rows6 = s6 + static_cast<std::size_t>(6) * pt * nk;
    double f6 = 0.0;
    for (idx_t i = 0; i < 6 * nk; ++i) f6 += rows6[i] * rows6[i];
    const double* rows2 = s2 + static_cast<std::size_t>(2) * pt * nk;
    double f2 = 0.0;
    for (idx_t i = 0; i < 2 * nk; ++i) f2 += rows2[i] * rows2[i];
    po.a_vm[pt] = std::sqrt(3.0 * f6);
    po.a_p1[pt] = std::sqrt(2.0 * f6);
    po.a_sh[pt] = std::sqrt(f2);
    const double vm_l = von_mises_sq(rows6[n], rows6[nk + n], rows6[2 * nk + n],
                                     rows6[3 * nk + n], rows6[4 * nk + n], rows6[5 * nk + n]);
    const double sh_l = rows2[n] * rows2[n] + rows2[nk + n] * rows2[nk + n];
    key[pt] = std::max(vm_l, sh_l);
  }
  po.order.resize(npts);
  std::iota(po.order.begin(), po.order.end(), idx_t{0});
  std::stable_sort(po.order.begin(), po.order.end(),
                   [&key](idx_t a, idx_t b) { return key[a] > key[b]; });
  return po;
}

/// Largest reduced-basis rank worth carrying: past this the projected
/// screen costs as much as evaluating the panel outright.
constexpr idx_t kMaxBasisRank = 24;
/// Per-column residual target relative to the column norm. The screen's
/// uncertainty band is a_ch * eps * ||c_t|| in stress space, and a_ch (the
/// sample-matrix Frobenius norm) runs ~1e4-1e5 MPa per unit coefficient, so
/// the target must sit well below 1e-4 for the band to shrink under the
/// block-internal channel spread that pruning feeds on.
constexpr double kBasisTol = 1e-6;

}  // namespace

void extract_channel_history(const rom::BlockGrid& grid, const rom::RomModel& tsv_model,
                             const rom::RomModel* dummy_model, const rom::BlockMask& mask,
                             const std::vector<rom::Vec>& solutions,
                             const std::vector<rom::BlockLoadField>& loads,
                             const rom::BlockRange& range, StressHistory& history) {
  MS_TRACE_SCOPE("reliability.channel_extract");
  obs::ScopedDuration timer(
      obs::MetricRegistry::global().histogram("reliability.channel_extract_seconds"));
  if (range.bx0 < 0 || range.bx1 > grid.blocks_x() || range.by0 < 0 ||
      range.by1 > grid.blocks_y() || range.width() <= 0 || range.height() <= 0) {
    throw std::invalid_argument("extract_channel_history: block range out of bounds");
  }
  if (!mask.empty() && mask.size() != static_cast<std::size_t>(grid.num_blocks())) {
    throw std::invalid_argument("extract_channel_history: mask size must be blocks_x*blocks_y");
  }
  if (solutions.size() != loads.size() || solutions.size() != history.num_steps()) {
    throw std::invalid_argument(
        "extract_channel_history: need one solution and load field per history step");
  }
  if (history.blocks_x() != range.width() || history.blocks_y() != range.height()) {
    throw std::invalid_argument("extract_channel_history: history extent must match the range");
  }
  if (tsv_model.bump_shear_samples.rows() == 0 ||
      (dummy_model != nullptr && dummy_model->bump_shear_samples.rows() == 0)) {
    throw std::logic_error(
        "extract_channel_history: model carries no bump-plane samples (rebuild the local stage)");
  }
  for (const rom::BlockLoadField& load : loads) {
    load.validate_extent(grid.blocks_x(), grid.blocks_y());
  }
  bool any_dummy = false;
  if (!mask.empty()) {
    for (int by = range.by0; by < range.by1; ++by) {
      for (int bx = range.bx0; bx < range.bx1; ++bx) {
        any_dummy |= mask[static_cast<std::size_t>(by) * grid.blocks_x() + bx] == 0;
      }
    }
    if (any_dummy && dummy_model == nullptr) {
      throw std::invalid_argument(
          "extract_channel_history: mask selects dummy blocks but no model");
    }
  }

  const int s = tsv_model.samples_per_block;
  const idx_t n = tsv_model.num_element_dofs();
  const idx_t nk = n + 1;
  const idx_t num_steps = static_cast<idx_t>(solutions.size());
  const int bw = range.width();
  const int num_blocks = bw * range.height();
  const idx_t rcap = std::min(num_steps, kMaxBasisRank);

  const PruneOrder tsv_order = build_prune_order(tsv_model);
  const PruneOrder dummy_order = any_dummy ? build_prune_order(*dummy_model) : PruneOrder{};

  // Point-steps the screen let through to a full evaluation, against the
  // num_blocks * s^2 * num_steps a screen-less extraction would touch.
  long long evaluated = 0;

#ifdef _OPENMP
#pragma omp parallel reduction(+ : evaluated)
#endif
  {
    std::vector<double> coefs(static_cast<std::size_t>(nk) * num_steps);
    std::vector<double> resid(static_cast<std::size_t>(nk) * num_steps);
    std::vector<double> qbasis(static_cast<std::size_t>(nk) * rcap);
    std::vector<double> gcoef(static_cast<std::size_t>(rcap) * num_steps);  // [t * rcap + j]
    std::vector<double> cn(static_cast<std::size_t>(num_steps));
    std::vector<double> dn(static_cast<std::size_t>(num_steps));
    std::vector<double> val_vm(static_cast<std::size_t>(num_steps));
    std::vector<double> val_p1(static_cast<std::size_t>(num_steps));
    std::vector<double> val_sh(static_cast<std::size_t>(num_steps));
    std::vector<double> p6(static_cast<std::size_t>(6) * rcap);
    std::vector<double> p2(static_cast<std::size_t>(2) * rcap);
    std::vector<double> scratch(static_cast<std::size_t>(nk) * num_steps);
    std::vector<double> vals6(static_cast<std::size_t>(6) * num_steps);
    std::vector<double> vals2(static_cast<std::size_t>(2) * num_steps);
    std::vector<double> peaks(static_cast<std::size_t>(kNumChannels) * num_steps);
    std::vector<idx_t> sel(static_cast<std::size_t>(num_steps));
#ifdef _OPENMP
#pragma omp for schedule(dynamic)
#endif
    for (int b = 0; b < num_blocks; ++b) {
      const int bx = range.bx0 + b % bw;
      const int by = range.by0 + b / bw;
      const bool is_tsv =
          mask.empty() || mask[static_cast<std::size_t>(by) * grid.blocks_x() + bx] != 0;
      const rom::RomModel* model = is_tsv ? &tsv_model : dummy_model;
      const PruneOrder& po = is_tsv ? tsv_order : dummy_order;
      const std::vector<idx_t> dofs = grid.block_dofs(bx, by);
      for (idx_t t = 0; t < num_steps; ++t) {
        double* col = coefs.data() + static_cast<std::size_t>(t) * nk;
        const rom::Vec& u = solutions[t];
        for (idx_t i = 0; i < n; ++i) col[i] = u[dofs[i]];
        col[n] = loads[t].at(bx, by);
        double norm_sq = 0.0;
        for (idx_t k = 0; k < nk; ++k) norm_sq += col[k] * col[k];
        cn[t] = std::sqrt(norm_sq);
      }

      // Reduced basis of the coefficient panel: pivoted Gram-Schmidt until
      // every column's residual is below kBasisTol * ||c_t||. The screen
      // below only needs the bookkeeping identity c_t = Q g_t + d_t (held
      // to machine rounding by construction), not orthogonality, so plain
      // MGS is enough. A transient's columns are strongly correlated, so
      // the rank is typically a handful; if kMaxBasisRank is not enough the
      // block falls back to evaluating every point in full.
      std::copy(coefs.begin(), coefs.end(), resid.begin());
      std::fill(gcoef.begin(), gcoef.end(), 0.0);
      idx_t rank = 0;
      bool converged = false;
      while (!converged && rank < rcap) {
        idx_t worst = 0;
        double worst_norm = -1.0;
        converged = true;
        for (idx_t t = 0; t < num_steps; ++t) {
          const double* d = resid.data() + static_cast<std::size_t>(t) * nk;
          double norm_sq = 0.0;
          for (idx_t k = 0; k < nk; ++k) norm_sq += d[k] * d[k];
          dn[t] = std::sqrt(norm_sq);
          if (dn[t] > kBasisTol * cn[t]) converged = false;
          if (dn[t] > worst_norm) {
            worst_norm = dn[t];
            worst = t;
          }
        }
        if (converged || worst_norm <= 0.0) break;
        double* q = qbasis.data() + static_cast<std::size_t>(rank) * nk;
        const double* dw = resid.data() + static_cast<std::size_t>(worst) * nk;
        const double inv = 1.0 / worst_norm;
        for (idx_t k = 0; k < nk; ++k) q[k] = dw[k] * inv;
        for (idx_t t = 0; t < num_steps; ++t) {
          double* d = resid.data() + static_cast<std::size_t>(t) * nk;
          double w = 0.0;
          for (idx_t k = 0; k < nk; ++k) w += q[k] * d[k];
          gcoef[static_cast<std::size_t>(t) * rcap + rank] = w;
          for (idx_t k = 0; k < nk; ++k) d[k] -= w * q[k];
        }
        ++rank;
      }
      if (!converged) {
        // Final residual norms for the screen's uncertainty band.
        converged = true;
        for (idx_t t = 0; t < num_steps; ++t) {
          const double* d = resid.data() + static_cast<std::size_t>(t) * nk;
          double norm_sq = 0.0;
          for (idx_t k = 0; k < nk; ++k) norm_sq += d[k] * d[k];
          dn[t] = std::sqrt(norm_sq);
          if (dn[t] > kBasisTol * cn[t]) converged = false;
        }
      }
      const bool use_screen = converged;
      // Slack on top of the residual norm covering every floating-point
      // rounding in the basis bookkeeping and the projected channels; the
      // screen is conservative, never optimistic.
      for (idx_t t = 0; t < num_steps; ++t) dn[t] += 1e-11 * cn[t];

      // Von Mises and bump shear track the *squared* value (sqrt applied
      // once per step at the end — max and sqrt commute, bit for bit);
      // first principal tracks the value itself.
      std::fill(peaks.begin(), peaks.end(), -kInf);
      double* pk_vm = peaks.data();
      double* pk_p1 = peaks.data() + num_steps;
      double* pk_sh = peaks.data() + 2 * static_cast<std::size_t>(num_steps);
      const auto shave = [](double v) { return v - 1e-12 * std::abs(v); };
      bool thresholds_stale = true;
      if (!use_screen) {
        std::iota(sel.begin(), sel.end(), idx_t{0});
      }
      for (idx_t oi = 0; oi < static_cast<idx_t>(s) * s; ++oi) {
        const idx_t pt = po.order[oi];
        if (thresholds_stale) {
          for (idx_t t = 0; t < num_steps; ++t) {
            val_vm[t] = shave(std::sqrt(std::max(pk_vm[t], 0.0)));
            val_p1[t] = shave(pk_p1[t]);
            val_sh[t] = shave(std::sqrt(std::max(pk_sh[t], 0.0)));
          }
          thresholds_stale = false;
        }
        idx_t m = num_steps;
        if (use_screen) {
          // Projected responses of this point's eight rows to the basis,
          // then per step the projected channels plus the residual band
          // decide whether the exact column can possibly set a peak.
          rows_times_cols(model->stress_samples, 6 * pt, 6, qbasis.data(), rank, nk, p6.data());
          rows_times_cols(model->bump_shear_samples, 2 * pt, 2, qbasis.data(), rank, nk,
                          p2.data());
          const double avm = po.a_vm[pt], ap1 = po.a_p1[pt], ash = po.a_sh[pt];
          m = 0;
          for (idx_t t = 0; t < num_steps; ++t) {
            const double* g = gcoef.data() + static_cast<std::size_t>(t) * rcap;
            double st[8];
            for (int c = 0; c < 6; ++c) {
              const double* pc = p6.data() + static_cast<std::size_t>(c) * rank;
              double acc = 0.0;
              for (idx_t j = 0; j < rank; ++j) acc += pc[j] * g[j];
              st[c] = acc;
            }
            for (int c = 0; c < 2; ++c) {
              const double* pc = p2.data() + static_cast<std::size_t>(c) * rank;
              double acc = 0.0;
              for (idx_t j = 0; j < rank; ++j) acc += pc[j] * g[j];
              st[6 + c] = acc;
            }
            const double band = dn[t];
            const double rv = val_vm[t] - avm * band;
            const double vmsq = von_mises_sq(st[0], st[1], st[2], st[3], st[4], st[5]);
            bool skip = rv >= 0.0 && vmsq <= rv * rv;
            if (skip) {
              // sigma_1 <= q + 2 p on the projected stress, squared to
              // dodge the sqrt, plus the residual band.
              const double q = (st[0] + st[1] + st[2]) / 3.0;
              const double p2s = (st[0] - q) * (st[0] - q) + (st[1] - q) * (st[1] - q) +
                                 (st[2] - q) * (st[2] - q) +
                                 2.0 * (st[5] * st[5] + st[4] * st[4] + st[3] * st[3]);
              const double rp = val_p1[t] - ap1 * band - q;
              skip = rp >= 0.0 && (2.0 / 3.0) * p2s <= rp * rp;
            }
            if (skip) {
              const double rs = val_sh[t] - ash * band;
              const double shsq = st[6] * st[6] + st[7] * st[7];
              skip = rs >= 0.0 && shsq <= rs * rs;
            }
            if (!skip) sel[m++] = t;
          }
          if (m == 0) continue;
          for (idx_t j = 0; j < m; ++j) {
            std::copy_n(coefs.data() + static_cast<std::size_t>(sel[j]) * nk, nk,
                        scratch.data() + static_cast<std::size_t>(j) * nk);
          }
        }
        evaluated += m;
        const double* panel = use_screen ? scratch.data() : coefs.data();
        rows_times_cols(model->stress_samples, 6 * pt, 6, panel, m, nk, vals6.data());
        rows_times_cols(model->bump_shear_samples, 2 * pt, 2, panel, m, nk, vals2.data());
        for (idx_t j = 0; j < m; ++j) {
          const idx_t t = use_screen ? sel[j] : j;
          const double sxx = vals6[j];
          const double syy = vals6[static_cast<std::size_t>(m) + j];
          const double szz = vals6[2 * static_cast<std::size_t>(m) + j];
          const double syz = vals6[3 * static_cast<std::size_t>(m) + j];
          const double sxz = vals6[4 * static_cast<std::size_t>(m) + j];
          const double sxy = vals6[5 * static_cast<std::size_t>(m) + j];
          pk_vm[t] = std::max(pk_vm[t], von_mises_sq(sxx, syy, szz, syz, sxz, sxy));
          // First principal is q + 2 p cos(phi) with cos(phi) <= 1, so
          // q + 2 p bounds it from above: 2 p > pk - q, squared to dodge
          // the sqrt, decides whether the acos/cos in first_principal can
          // possibly beat the running peak.
          const double q = (sxx + syy + szz) / 3.0;
          const double p2s = (sxx - q) * (sxx - q) + (syy - q) * (syy - q) +
                             (szz - q) * (szz - q) +
                             2.0 * (sxy * sxy + sxz * sxz + syz * syz);
          const double d = pk_p1[t] - q;
          if (d < 0.0 || (2.0 / 3.0) * p2s > d * d) {
            pk_p1[t] = std::max(pk_p1[t], first_principal({sxx, syy, szz, syz, sxz, sxy}));
          }
          const double byz = vals2[j];
          const double bxz = vals2[static_cast<std::size_t>(m) + j];
          pk_sh[t] = std::max(pk_sh[t], byz * byz + bxz * bxz);
        }
        thresholds_stale = true;
      }
      for (int c = 0; c < kNumChannels; ++c) {
        const bool squared = c != static_cast<int>(StressChannel::kFirstPrincipal);
        for (idx_t t = 0; t < num_steps; ++t) {
          const double peak = peaks[static_cast<std::size_t>(c) * num_steps + t];
          history.set_value(static_cast<std::size_t>(t), static_cast<StressChannel>(c),
                            static_cast<std::size_t>(b), squared ? std::sqrt(peak) : peak);
        }
      }
    }
  }

  auto& registry = obs::MetricRegistry::global();
  registry.counter("reliability.screen.evaluated_point_steps").add(evaluated);
  registry.counter("reliability.screen.total_point_steps")
      .add(static_cast<long long>(num_blocks) * s * s * num_steps);
}

}  // namespace ms::reliability
