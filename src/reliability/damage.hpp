#pragma once
// Miner's-rule damage accumulation over rainflow-counted stress histories,
// and the per-block reliability assessment the fatigue scenarios report:
// each stress channel is counted block by block, every counted cycle is
// charged 1/N_f of life under the channel's fatigue model, and the Miner
// sums compose into damage-per-trace maps, cycles-to-failure (lifetime)
// maps, and a ReliabilityReport naming the life-limiting block, channel,
// and dominant cycle class.

#include <array>
#include <memory>
#include <string>
#include <vector>

#include "reliability/fatigue.hpp"
#include "reliability/rainflow.hpp"
#include "reliability/stress_history.hpp"

namespace ms::reliability {

/// Miner sum of a counted cycle set under one model: sum_i count_i / N_f_i.
/// Zero when every cycle sits below the model threshold.
double miner_damage(const std::vector<Cycle>& cycles, const FatigueModel& model);

/// One fatigue model per stress channel. Channels without a model (null) are
/// skipped by the assessment.
struct FatigueModelSet {
  std::array<std::unique_ptr<FatigueModel>, kNumChannels> models;

  [[nodiscard]] const FatigueModel* at(StressChannel channel) const {
    return models[static_cast<int>(channel)].get();
  }
  void set(StressChannel channel, std::unique_ptr<FatigueModel> model) {
    models[static_cast<int>(channel)] = std::move(model);
  }
};

/// The standard TSV-array assignment: von Mises -> Basquin on Cu (high-cycle
/// barrel fatigue), first principal -> Coffin-Manson on Cu (low-cycle
/// tensile), through-plane shear -> Engelmaier solder (microbump plane).
/// `mean_temperature_c` and `cycles_per_day` parameterize the Engelmaier
/// exponent; `solder_shear_modulus` is the bump solder's G [MPa] at 20 C and
/// `solder_shear_modulus_slope` [MPa/C] its softening with the mean joint
/// temperature (0 = temperature-independent).
FatigueModelSet standard_model_set(const fem::MaterialTable& materials,
                                   double solder_shear_modulus, double mean_temperature_c,
                                   double cycles_per_day,
                                   double solder_shear_modulus_slope = 0.0);

struct ReliabilityOptions {
  int range_bins = 8;
  int mean_bins = 4;
};

/// Per-channel assessment: Miner damage of one pass of the recorded history.
struct ChannelAssessment {
  StressChannel channel = StressChannel::kVonMises;
  std::string model_name;
  std::vector<double> damage;             ///< Miner sum per block, per trace pass (y-major)
  std::vector<double> cycles_to_failure;  ///< 1 / damage (inf where no damage)
  std::vector<double> half_cycle_counts;  ///< total rainflow count per block
  RainflowMatrix min_life_matrix;         ///< binned cycles of the worst block
  int min_life_block = -1;                ///< y-major index; -1 when damage-free
  double min_life_cycles = 0.0;           ///< trace passes to failure (inf = damage-free)
};

/// The reliability verdict of one cyclic scenario.
struct ReliabilityReport {
  int blocks_x = 0, blocks_y = 0;
  double trace_duration = 0.0;  ///< seconds per trace pass (0 = unknown)
  std::vector<ChannelAssessment> channels;
  // Governing (lowest-lifetime) verdict across all assessed channels:
  int min_life_block = -1;
  StressChannel min_life_channel = StressChannel::kVonMises;
  double min_life_cycles = 0.0;   ///< trace passes to failure
  double min_life_seconds = 0.0;  ///< min_life_cycles * trace_duration

  [[nodiscard]] const ChannelAssessment* assessment(StressChannel channel) const;
};

/// Assess a recorded history: rainflow every (channel, block) series, charge
/// the cycles to the channel's model, accumulate by Miner. `trace_duration`
/// converts lifetimes to seconds (pass 0 to skip).
ReliabilityReport assess_history(const StressHistory& history, const FatigueModelSet& models,
                                 double trace_duration, const ReliabilityOptions& options = {});

}  // namespace ms::reliability
