#include "reliability/fatigue.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>

namespace ms::reliability {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Invert amp = coeff * (2 N_f)^expo for N_f (expo < 0), floored at one half
/// cycle — a single excursion beyond the coefficient still "fails" in half a
/// cycle rather than a nonsensical fraction.
double invert_power_law(double amplitude, double coeff, double expo) {
  if (amplitude <= 0.0) return kInf;
  const double nf = 0.5 * std::pow(amplitude / coeff, 1.0 / expo);
  return std::max(nf, 0.5);
}

}  // namespace

BasquinModel::BasquinModel(double fatigue_strength, double exponent, double endurance_range,
                           MeanStressCorrection correction, double ultimate_strength)
    : sigma_f_(fatigue_strength),
      b_(exponent),
      endurance_range_(endurance_range),
      correction_(correction),
      sigma_u_(ultimate_strength) {
  if (sigma_f_ <= 0.0) throw std::invalid_argument("BasquinModel: s_f' must be positive");
  if (b_ >= 0.0) throw std::invalid_argument("BasquinModel: exponent b must be negative");
  if (endurance_range_ < 0.0) {
    throw std::invalid_argument("BasquinModel: endurance range must be >= 0");
  }
  if (correction_ == MeanStressCorrection::kGoodman && sigma_u_ <= 0.0) {
    throw std::invalid_argument("BasquinModel: Goodman correction needs sigma_u > 0");
  }
}

double BasquinModel::cycles_to_failure(double range, double mean) const {
  if (range <= endurance_range_) return kInf;
  double amplitude = 0.5 * range;
  double coeff = sigma_f_;
  switch (correction_) {
    case MeanStressCorrection::kNone:
      break;
    case MeanStressCorrection::kGoodman: {
      // Only a tensile mean is damaging; a compressive mean is conservatively
      // ignored rather than credited with extra life.
      if (mean > 0.0) {
        const double margin = 1.0 - mean / sigma_u_;
        if (margin <= 0.0) return 0.5;  // mean alone exhausts the strength
        amplitude /= margin;
      }
      break;
    }
    case MeanStressCorrection::kMorrow: {
      if (mean > 0.0) {
        coeff = sigma_f_ - mean;
        if (coeff <= 0.0) return 0.5;
      }
      break;
    }
  }
  return invert_power_law(amplitude, coeff, b_);
}

CoffinMansonModel::CoffinMansonModel(double fatigue_ductility, double exponent, double modulus,
                                     double fatigue_strength, double strength_exponent)
    : eps_f_(fatigue_ductility),
      c_(exponent),
      modulus_(modulus),
      sigma_f_(fatigue_strength),
      b_(strength_exponent) {
  if (eps_f_ <= 0.0) throw std::invalid_argument("CoffinMansonModel: e_f' must be positive");
  if (c_ >= 0.0) throw std::invalid_argument("CoffinMansonModel: exponent c must be negative");
  if (modulus_ <= 0.0) throw std::invalid_argument("CoffinMansonModel: modulus must be positive");
  if (sigma_f_ > 0.0 && b_ >= 0.0) {
    throw std::invalid_argument(
        "CoffinMansonModel: modified-Morrow needs a negative strength exponent");
  }
}

double CoffinMansonModel::cycles_to_failure(double range, double mean) const {
  double coeff = eps_f_;
  // Modified Morrow: a tensile mean shrinks the effective ductility
  // coefficient to e_f' (1 - s_m / s_f')^(c/b); c/b > 0 so the factor < 1.
  if (sigma_f_ > 0.0 && mean > 0.0) {
    const double margin = 1.0 - mean / sigma_f_;
    if (margin <= 0.0) return 0.5;
    coeff = eps_f_ * std::pow(margin, c_ / b_);
  }
  return invert_power_law(0.5 * range / modulus_, coeff, c_);
}

EngelmaierModel::EngelmaierModel(double shear_modulus, double mean_temperature_c,
                                 double cycles_per_day, double shear_modulus_slope)
    : shear_modulus_(shear_modulus + shear_modulus_slope * (mean_temperature_c - 20.0)),
      eps_f_(0.325) {
  if (shear_modulus_ <= 0.0) {
    throw std::invalid_argument(
        "EngelmaierModel: effective shear modulus must stay positive at the mean temperature");
  }
  if (cycles_per_day < 0.0) {
    throw std::invalid_argument("EngelmaierModel: cycle frequency must be >= 0");
  }
  c_ = -0.442 - 6e-4 * mean_temperature_c + 1.74e-2 * std::log(1.0 + cycles_per_day);
  if (c_ >= 0.0) {
    throw std::invalid_argument(
        "EngelmaierModel: corrected exponent is non-negative (frequency too high for the "
        "classic correlation)");
  }
}

double EngelmaierModel::cycles_to_failure(double range, double /*mean*/) const {
  return invert_power_law(0.5 * range / shear_modulus_, eps_f_, c_);
}

std::unique_ptr<FatigueModel> basquin_from_material(const fem::Material& material) {
  if (material.fatigue_strength <= 0.0) {
    throw std::invalid_argument("basquin_from_material: '" + material.name +
                                "' carries no stress-life fatigue data");
  }
  const bool goodman = material.ultimate_strength > 0.0;
  return std::make_unique<BasquinModel>(
      material.fatigue_strength, material.fatigue_strength_exponent, /*endurance_range=*/0.0,
      goodman ? MeanStressCorrection::kGoodman : MeanStressCorrection::kNone,
      material.ultimate_strength);
}

std::unique_ptr<FatigueModel> coffin_manson_from_material(const fem::Material& material) {
  if (material.fatigue_ductility <= 0.0) {
    throw std::invalid_argument("coffin_manson_from_material: '" + material.name +
                                "' carries no strain-life fatigue data");
  }
  // The stress-life pair, when present, switches on the modified-Morrow
  // mean-stress correction.
  return std::make_unique<CoffinMansonModel>(
      material.fatigue_ductility, material.fatigue_ductility_exponent, material.youngs_modulus,
      material.fatigue_strength, material.fatigue_strength_exponent);
}

std::unique_ptr<FatigueModel> engelmaier_solder(double shear_modulus, double mean_temperature_c,
                                                double cycles_per_day,
                                                double shear_modulus_slope) {
  return std::make_unique<EngelmaierModel>(shear_modulus, mean_temperature_c, cycles_per_day,
                                           shear_modulus_slope);
}

}  // namespace ms::reliability
