#include "rom/block_grid.hpp"

#include <stdexcept>

namespace ms::rom {

BlockGrid::BlockGrid(int blocks_x, int blocks_y, int nodes_x, int nodes_y, int nodes_z,
                     double pitch, double height)
    : blocks_x_(blocks_x),
      blocks_y_(blocks_y),
      nx_(nodes_x),
      ny_(nodes_y),
      nz_(nodes_z),
      pitch_(pitch),
      height_(height),
      gx_(blocks_x * (nodes_x - 1) + 1),
      gy_(blocks_y * (nodes_y - 1) + 1),
      gz_(nodes_z),
      sns_(nodes_x, nodes_y, nodes_z, pitch, pitch, height) {
  if (blocks_x < 1 || blocks_y < 1) throw std::invalid_argument("BlockGrid: need >= 1 block");

  index_of_.assign(static_cast<std::size_t>(gx_) * gy_ * gz_, -1);
  for (int gk = 0; gk < gz_; ++gk) {
    const bool k_surface = (gk == 0 || gk == gz_ - 1);
    for (int gj = 0; gj < gy_; ++gj) {
      const bool j_face = (gj % (ny_ - 1) == 0);
      for (int gi = 0; gi < gx_; ++gi) {
        const bool i_face = (gi % (nx_ - 1) == 0);
        // A lattice point is a DoF iff it lies on some block's surface.
        if (!(k_surface || j_face || i_face)) continue;
        index_of_[(static_cast<std::size_t>(gk) * gy_ + gj) * gx_ + gi] = num_nodes_++;
        ijk_.push_back({gi, gj, gk});
      }
    }
  }
}

mesh::Point3 BlockGrid::node_position(idx_t node) const {
  const auto& [gi, gj, gk] = ijk_[node];
  return {pitch_ * gi / (nx_ - 1), pitch_ * gj / (ny_ - 1), height_ * gk / (nz_ - 1)};
}

std::vector<idx_t> BlockGrid::block_dofs(int bx, int by) const {
  if (bx < 0 || bx >= blocks_x_ || by < 0 || by >= blocks_y_) {
    throw std::out_of_range("BlockGrid::block_dofs: block out of range");
  }
  std::vector<idx_t> dofs;
  dofs.reserve(static_cast<std::size_t>(sns_.num_dofs()));
  for (idx_t m = 0; m < sns_.count(); ++m) {
    const auto& [i, j, k] = sns_.node_ijk(m);
    const idx_t gnode = node_at(bx * (nx_ - 1) + i, by * (ny_ - 1) + j, k);
    for (int c = 0; c < 3; ++c) dofs.push_back(3 * gnode + c);
  }
  return dofs;
}

std::vector<idx_t> BlockGrid::nodes_top_bottom() const {
  std::vector<idx_t> out;
  for (idx_t node = 0; node < num_nodes_; ++node) {
    const int gk = ijk_[node][2];
    if (gk == 0 || gk == gz_ - 1) out.push_back(node);
  }
  return out;
}

std::vector<idx_t> BlockGrid::nodes_outer_boundary() const {
  std::vector<idx_t> out;
  for (idx_t node = 0; node < num_nodes_; ++node) {
    const auto& [gi, gj, gk] = ijk_[node];
    if (gi == 0 || gi == gx_ - 1 || gj == 0 || gj == gy_ - 1 || gk == 0 || gk == gz_ - 1) {
      out.push_back(node);
    }
  }
  return out;
}

}  // namespace ms::rom
