#include "rom/surface_nodes.hpp"

#include <stdexcept>

namespace ms::rom {

SurfaceNodeSet::SurfaceNodeSet(int nx, int ny, int nz, double lx, double ly, double lz)
    : nx_(nx),
      ny_(ny),
      nz_(nz),
      lagrange_(equispaced_nodes(0.0, lx, nx), equispaced_nodes(0.0, ly, ny),
                equispaced_nodes(0.0, lz, nz)) {
  if (nx < 2 || ny < 2 || nz < 2) {
    throw std::invalid_argument("SurfaceNodeSet: need >= 2 nodes per axis");
  }
  index_of_.assign(static_cast<std::size_t>(nx) * ny * nz, -1);
  for (int k = 0; k < nz; ++k) {
    for (int j = 0; j < ny; ++j) {
      for (int i = 0; i < nx; ++i) {
        if (!is_surface(i, j, k)) continue;
        index_of_[(static_cast<std::size_t>(k) * ny + j) * nx + i] =
            static_cast<idx_t>(nodes_.size());
        nodes_.push_back({i, j, k});
      }
    }
  }
}

mesh::Point3 SurfaceNodeSet::position(idx_t m) const {
  const auto& [i, j, k] = nodes_[m];
  return {lagrange_.xs()[i], lagrange_.ys()[j], lagrange_.zs()[k]};
}

double SurfaceNodeSet::weight(const mesh::Point3& p, idx_t m) const {
  const auto& [i, j, k] = nodes_[m];
  return lagrange_.weight(p, i, j, k);
}

}  // namespace ms::rom
