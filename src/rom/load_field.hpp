#pragma once
// Per-block thermal loads for the global stage. The paper drives every block
// with one scalar ΔT (reflow); operational workloads have per-block ΔT from
// a conduction solve. BlockLoadField is the common currency: a uniform field
// reproduces the scalar path exactly (same code path, same numbers), a
// non-uniform field scales each block's thermal basis by its own ΔT in both
// assembly (Eq. 19 load term) and reconstruction (Eq. 15 thermal column).

#include <vector>

#include "la/vec.hpp"

namespace ms::rom {

using la::Vec;

class BlockLoadField {
 public:
  /// Uniform zero load.
  BlockLoadField() = default;

  /// The degenerate scalar-ΔT case: every block sees `delta_t`.
  static BlockLoadField uniform(double delta_t) {
    BlockLoadField f;
    f.value_ = delta_t;
    return f;
  }

  /// Per-block ΔT, y-major (by * blocks_x + bx).
  BlockLoadField(int blocks_x, int blocks_y, Vec delta_t);

  [[nodiscard]] bool is_uniform() const { return values_.empty(); }

  /// ΔT of block (bx, by). Uniform fields accept any index.
  [[nodiscard]] double at(int bx, int by) const {
    return is_uniform() ? value_ : values_[static_cast<std::size_t>(by) * blocks_x_ + bx];
  }

  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;

  /// Raw per-block ΔT (y-major); empty for uniform fields.
  [[nodiscard]] const Vec& values() const { return values_; }

  /// Throws std::invalid_argument unless the field is uniform or matches the
  /// given grid extent.
  void validate_extent(int blocks_x, int blocks_y) const;

 private:
  double value_ = 0.0;         ///< uniform value when values_ is empty
  int blocks_x_ = 0, blocks_y_ = 0;
  Vec values_;                 ///< per-block ΔT, y-major; empty = uniform
};

}  // namespace ms::rom
