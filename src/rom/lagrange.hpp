#pragma once
// 1-D and tensor-product Lagrange interpolation on equally spaced nodes
// (paper Eq. 8-9). The node counts used here are small (2..8 per axis), so
// direct evaluation of the product formula is accurate and cheap.

#include <vector>

#include "mesh/hex_mesh.hpp"

namespace ms::rom {

/// n equally spaced nodes on [a, b] including both endpoints (n >= 2).
std::vector<double> equispaced_nodes(double a, double b, int n);

/// Values of all n 1-D Lagrange basis polynomials at x (Eq. 9).
/// nodes must be pairwise distinct.
std::vector<double> lagrange_values(const std::vector<double>& nodes, double x);

/// Tensor-product evaluation grid for one block: the 1-D node sets along
/// each axis plus a weight evaluator (Eq. 8).
class Lagrange3d {
 public:
  Lagrange3d(std::vector<double> xs, std::vector<double> ys, std::vector<double> zs);

  [[nodiscard]] int nx() const { return static_cast<int>(xs_.size()); }
  [[nodiscard]] int ny() const { return static_cast<int>(ys_.size()); }
  [[nodiscard]] int nz() const { return static_cast<int>(zs_.size()); }

  [[nodiscard]] const std::vector<double>& xs() const { return xs_; }
  [[nodiscard]] const std::vector<double>& ys() const { return ys_; }
  [[nodiscard]] const std::vector<double>& zs() const { return zs_; }

  /// L3D(p; i,j,k) = L1D(x;i) L1D(y;j) L1D(z;k).
  [[nodiscard]] double weight(const mesh::Point3& p, int i, int j, int k) const;

  /// All three 1-D factor vectors at p, for batched tensor evaluation.
  struct Factors {
    std::vector<double> wx, wy, wz;
  };
  [[nodiscard]] Factors factors(const mesh::Point3& p) const;

 private:
  std::vector<double> xs_, ys_, zs_;
};

}  // namespace ms::rom
