#pragma once
// Enumeration of the Lagrange interpolation nodes on the surface of the unit
// block (paper Fig. 3(c) and Eq. 16). Nodes form an (nx, ny, nz) tensor grid
// over the block; only nodes on the block surface become element DoFs:
//   count = nx ny nz - (nx-2)(ny-2)(nz-2),   n = 3 * count.
//
// The ordering defined here (lexicographic, i fastest, then j, then k) is
// the single source of truth shared by the local stage (basis/DoF order) and
// the global stage (block -> global scatter), so the two can never drift.

#include <array>
#include <vector>

#include "la/types.hpp"
#include "mesh/hex_mesh.hpp"
#include "rom/lagrange.hpp"

namespace ms::rom {

using la::idx_t;

class SurfaceNodeSet {
 public:
  /// Grid of nx*ny*nz equispaced nodes over [0,lx]x[0,ly]x[0,lz]; all axes
  /// need >= 2 nodes (endpoints are always nodes).
  SurfaceNodeSet(int nx, int ny, int nz, double lx, double ly, double lz);

  [[nodiscard]] int nx() const { return nx_; }
  [[nodiscard]] int ny() const { return ny_; }
  [[nodiscard]] int nz() const { return nz_; }

  /// Number of surface nodes (Eq. 16 without the factor 3).
  [[nodiscard]] idx_t count() const { return static_cast<idx_t>(nodes_.size()); }

  /// Number of element DoFs n = 3 * count() (Eq. 16).
  [[nodiscard]] idx_t num_dofs() const { return 3 * count(); }

  /// Grid coordinates (i, j, k) of surface node m.
  [[nodiscard]] const std::array<int, 3>& node_ijk(idx_t m) const { return nodes_[m]; }

  /// Physical position of surface node m within the block.
  [[nodiscard]] mesh::Point3 position(idx_t m) const;

  /// Surface-node index of grid node (i,j,k), or -1 for interior nodes.
  [[nodiscard]] idx_t index_of(int i, int j, int k) const {
    return index_of_[(static_cast<std::size_t>(k) * ny_ + j) * nx_ + i];
  }

  /// True if the grid node lies on the block surface.
  [[nodiscard]] bool is_surface(int i, int j, int k) const {
    return i == 0 || i == nx_ - 1 || j == 0 || j == ny_ - 1 || k == 0 || k == nz_ - 1;
  }

  /// The tensor-product Lagrange evaluator over the full grid.
  [[nodiscard]] const Lagrange3d& lagrange() const { return lagrange_; }

  /// Interpolation weight of surface node m at point p. Evaluating on the
  /// block surface involves only same-face nodes, so restricting the tensor
  /// basis to surface nodes is exact there.
  [[nodiscard]] double weight(const mesh::Point3& p, idx_t m) const;

 private:
  int nx_, ny_, nz_;
  Lagrange3d lagrange_;
  std::vector<std::array<int, 3>> nodes_;
  std::vector<idx_t> index_of_;
};

}  // namespace ms::rom
