#include "rom/global_solver.hpp"

#include <stdexcept>

#include "la/cg.hpp"
#include "la/cholesky.hpp"
#include "la/gmres.hpp"
#include "util/log.hpp"
#include "util/timer.hpp"

namespace ms::rom {

Vec solve_global(GlobalProblem& problem, const DirichletBc& bc, const GlobalSolveOptions& options,
                 GlobalSolveStats* stats) {
  fem::apply_dirichlet(problem.stiffness, problem.rhs, bc);

  util::WallTimer timer;
  Vec u;
  idx_t iterations = 0;
  bool converged = false;
  std::size_t solver_bytes = 0;

  if (options.method == "direct") {
    la::SparseCholesky chol(problem.stiffness);
    u = chol.solve(problem.rhs);
    converged = true;
    solver_bytes = chol.memory_bytes();
  } else if (options.method == "cg") {
    auto precond = la::make_preconditioner(options.precond, problem.stiffness);
    la::IterativeOptions iter;
    iter.rel_tol = options.rel_tol;
    iter.max_iterations = options.max_iterations;
    const la::IterativeResult result =
        la::conjugate_gradient(problem.stiffness, problem.rhs, u, precond.get(), iter);
    iterations = result.iterations;
    converged = result.converged;
    solver_bytes = 5 * problem.rhs.size() * sizeof(double) + precond->memory_bytes();
  } else if (options.method == "gmres") {
    auto precond = la::make_preconditioner(options.precond, problem.stiffness);
    la::GmresOptions gopts;
    gopts.rel_tol = options.rel_tol;
    gopts.max_iterations = options.max_iterations;
    gopts.restart = options.gmres_restart;
    const la::IterativeResult result =
        la::gmres(problem.stiffness, problem.rhs, u, precond.get(), gopts);
    iterations = result.iterations;
    converged = result.converged;
    solver_bytes = (static_cast<std::size_t>(options.gmres_restart) + 4) * problem.rhs.size() *
                       sizeof(double) +
                   precond->memory_bytes();
  } else {
    throw std::invalid_argument("solve_global: unknown method '" + options.method + "'");
  }
  if (!converged) {
    MS_LOG_WARN("global solve (%s) did not converge in %d iterations", options.method.c_str(),
                static_cast<int>(iterations));
  }

  if (stats != nullptr) {
    stats->num_dofs = problem.num_dofs;
    stats->solve_seconds = timer.seconds();
    stats->iterations = iterations;
    stats->converged = converged;
    stats->matrix_bytes = problem.stiffness.memory_bytes();
    stats->solver_bytes = solver_bytes;
  }
  return u;
}

}  // namespace ms::rom
