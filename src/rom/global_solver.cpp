#include "rom/global_solver.hpp"

#include <algorithm>
#include <limits>
#include <memory>
#include <stdexcept>
#include <utility>

#include "core/sim_error.hpp"

#include "la/cg.hpp"
#include "la/cholesky.hpp"
#include "la/gmres.hpp"
#include "la/shift_retry.hpp"
#include "obs/metrics.hpp"
#include "obs/query_scope.hpp"
#include "obs/trace.hpp"
#include "util/fault_injector.hpp"
#include "util/log.hpp"
#include "util/timer.hpp"

namespace ms::rom {
namespace {

// Publish the exact values a GlobalSolveStats out-param receives, so the
// RunReport and the legacy struct can never disagree (the regression-lock
// test in tests/obs asserts this equality).
void publish_global_stats(const GlobalSolveStats& s) {
  auto& reg = obs::MetricRegistry::global();
  reg.counter("rom.global.solves").add(1);
  reg.counter("rom.global.rhs").add(s.num_rhs);
  reg.counter("rom.global.factorizations").add(s.num_factorizations);
  reg.counter("rom.global.iterations").add(s.iterations);
  reg.histogram("rom.global.solve_seconds").record(s.solve_seconds);
  reg.histogram("rom.global.factor_seconds").record(s.factor_seconds);
  reg.histogram("rom.global.triangular_seconds").record(s.triangular_seconds);
  reg.gauge("rom.global.num_dofs").set(static_cast<double>(s.num_dofs));
  reg.gauge("rom.global.converged").set(s.converged ? 1.0 : 0.0);
  reg.gauge("rom.global.matrix_bytes").set(static_cast<double>(s.matrix_bytes));
  reg.gauge("rom.global.solver_bytes").set(static_cast<double>(s.solver_bytes));
  reg.gauge("rom.global.factor_nnz").set(static_cast<double>(s.factor_nnz));
  reg.gauge("rom.global.fill_ratio").set(s.fill_ratio);
  reg.gauge("rom.global.num_supernodes").set(static_cast<double>(s.num_supernodes));
  reg.gauge("rom.global.degraded").set(s.degraded ? 1.0 : 0.0);
  reg.gauge("rom.global.diagonal_shift").set(s.diagonal_shift);
  // Query attribution: publish runs on the worker thread that executed the
  // solve, so the active QueryScope (if any) is the owning scenario's. The
  // per-query counts mirror the registry counters above 1:1 — that identity
  // is what the reconciliation test in tests/sweep locks.
  obs::QueryScope::count("global.solves");
  obs::QueryScope::count("rhs", s.num_rhs);
  obs::QueryScope::count("factorizations", s.num_factorizations);
  obs::QueryScope::observe_seconds("global.solve_seconds", s.solve_seconds);
  obs::QueryScope::observe_seconds("global.factor_seconds", s.factor_seconds);
  obs::QueryScope::observe_seconds("global.triangular_seconds", s.triangular_seconds);
}

}  // namespace

std::vector<Vec> solve_global_multi(GlobalProblem& problem, std::vector<Vec> extra_rhs,
                                    const DirichletBc& bc, const GlobalSolveOptions& options,
                                    GlobalSolveStats* stats) {
  MS_TRACE_SCOPE("rom.global.solve");
  std::vector<Vec> rhs_cases;
  rhs_cases.reserve(extra_rhs.size() + 1);
  rhs_cases.push_back(std::move(problem.rhs));
  for (Vec& rhs : extra_rhs) {
    if (static_cast<idx_t>(rhs.size()) != problem.num_dofs) {
      throw std::invalid_argument("solve_global_multi: rhs size must match the problem");
    }
    rhs_cases.push_back(std::move(rhs));
  }
  const bool use_cache = options.method == "direct" && options.factor_cache != nullptr &&
                         !options.factor_key.empty();
  if (!use_cache) {
    fem::apply_dirichlet(problem.stiffness, rhs_cases, bc);
    problem.rhs = rhs_cases.front();  // keep the lifted primary rhs visible
  }

  util::WallTimer timer;
  const idx_t n = problem.num_dofs;
  const idx_t num_cases = static_cast<idx_t>(rhs_cases.size());
  std::vector<Vec> solutions(rhs_cases.size());
  idx_t iterations = 0;
  bool converged = false;
  std::size_t matrix_bytes = problem.stiffness.memory_bytes();
  std::size_t solver_bytes = 0;
  double factor_seconds = 0.0;
  double triangular_seconds = 0.0;
  GlobalSolveStats local;

  if (use_cache) {
    // Memoized direct path: fetch (or build exactly once, single-flight)
    // the factorization of the lifted operator, lift the right-hand sides
    // against the retained unlifted operator, and run the panel through the
    // thread-safe scratch entry point. Bit-identical to the branch below:
    // the split lifting reproduces the fused one (fem/dirichlet.hpp) and
    // solve_multi_with is the same arithmetic as solve_multi per column.
    bool built = false;
    const la::FactorCache::Entry entry = options.factor_cache->get_or_create(
        options.factor_key,
        [&]() {
          // Cancellation/fault checks live inside the builder on purpose: a
          // cancelled or injected-fault build throws, the cache clears the
          // slot (waiters retry), and no pending slot is ever poisoned.
          options.cancel.check("rom.global.factor_build");
          if (util::FaultInjector::enabled()) {
            util::FaultInjector::global().fire("rom.global.factor_build");
          }
          if (problem.stiffness.rows() != problem.num_dofs) {
            throw std::logic_error(
                "solve_global_multi: factor-cache miss requires an assembled stiffness");
          }
          la::FactorCache::Entry fresh;
          fresh.matrix = std::make_shared<la::CsrMatrix>(problem.stiffness);
          fem::apply_dirichlet_matrix(problem.stiffness, bc);
          la::ShiftRetryResult factored = la::factor_with_shift_retry(
              problem.stiffness, options.factor, options.shift_retry, "rom.global.factor");
          fresh.factor = std::move(factored.factor);
          fresh.diagonal_shift = factored.shift;
          return fresh;
        },
        &built);
    local.degraded = entry.diagonal_shift != 0.0;
    local.diagonal_shift = entry.diagonal_shift;
    factor_seconds = timer.seconds();
    fem::apply_dirichlet_rhs(*entry.matrix, rhs_cases, bc);
    problem.rhs = rhs_cases.front();
    util::WallTimer solve_timer;
    Vec panel(static_cast<std::size_t>(n) * num_cases);
    Vec panel_x(panel.size());
    for (idx_t c = 0; c < num_cases; ++c) {
      std::copy(rhs_cases[c].begin(), rhs_cases[c].end(),
                panel.begin() + static_cast<std::size_t>(c) * n);
    }
    Vec scratch;
    entry.factor->solve_multi_with(panel.data(), panel_x.data(), num_cases, scratch);
    for (idx_t c = 0; c < num_cases; ++c) {
      const auto offset = static_cast<std::size_t>(c) * n;
      solutions[c].assign(panel_x.begin() + offset, panel_x.begin() + offset + n);
    }
    triangular_seconds = solve_timer.seconds();
    converged = true;
    matrix_bytes = entry.matrix->memory_bytes();
    solver_bytes = entry.factor->memory_bytes();
    local.factor_nnz = entry.factor->factor_nnz();
    local.fill_ratio = entry.factor->fill_ratio();
    local.num_supernodes = entry.factor->num_supernodes();
    local.ordering = entry.factor->ordering_name();
    local.num_factorizations = built ? 1 : 0;
  } else if (options.method == "direct") {
    options.cancel.check("rom.global.factor");
    la::ShiftRetryResult factored = la::factor_with_shift_retry(
        problem.stiffness, options.factor, options.shift_retry, "rom.global.factor");
    const la::SparseCholesky& chol = *factored.factor;
    local.degraded = factored.degraded();
    local.diagonal_shift = factored.shift;
    factor_seconds = timer.seconds();
    util::WallTimer solve_timer;
    // One factor sweep for the whole panel.
    solutions = chol.solve_multi(rhs_cases);
    triangular_seconds = solve_timer.seconds();
    converged = true;
    solver_bytes = chol.memory_bytes();
    local.factor_nnz = chol.factor_nnz();
    local.fill_ratio = chol.fill_ratio();
    local.num_supernodes = chol.num_supernodes();
    local.ordering = chol.ordering_name();
    local.num_factorizations = 1;
  } else if (options.method == "cg") {
    auto precond = la::make_preconditioner(options.precond, problem.stiffness);
    la::IterativeOptions iter;
    iter.rel_tol = options.rel_tol;
    iter.max_iterations = options.max_iterations;
    converged = true;
    for (idx_t c = 0; c < num_cases; ++c) {
      const la::IterativeResult result =
          la::conjugate_gradient(problem.stiffness, rhs_cases[c], solutions[c], precond.get(),
                                 iter);
      iterations += result.iterations;
      converged = converged && result.converged;
      if (result.breakdown) {
        throw core::SimError(core::SimErrorCode::kDidNotConverge, "rom.global.solve",
                             std::string("CG breakdown: ") + result.breakdown_reason,
                             "iterations=" + std::to_string(result.iterations) + " residual=" +
                                 std::to_string(result.residual_norm));
      }
    }
    solver_bytes = 5 * static_cast<std::size_t>(n) * sizeof(double) + precond->memory_bytes();
  } else if (options.method == "gmres") {
    auto precond = la::make_preconditioner(options.precond, problem.stiffness);
    la::GmresOptions gopts;
    gopts.rel_tol = options.rel_tol;
    gopts.max_iterations = options.max_iterations;
    gopts.restart = options.gmres_restart;
    converged = true;
    for (idx_t c = 0; c < num_cases; ++c) {
      const la::IterativeResult result =
          la::gmres(problem.stiffness, rhs_cases[c], solutions[c], precond.get(), gopts);
      iterations += result.iterations;
      converged = converged && result.converged;
      if (result.breakdown) {
        throw core::SimError(core::SimErrorCode::kDidNotConverge, "rom.global.solve",
                             std::string("GMRES breakdown: ") + result.breakdown_reason,
                             "iterations=" + std::to_string(result.iterations) + " residual=" +
                                 std::to_string(result.residual_norm));
      }
    }
    solver_bytes = (static_cast<std::size_t>(options.gmres_restart) + 4) *
                       static_cast<std::size_t>(n) * sizeof(double) +
                   precond->memory_bytes();
  } else {
    throw std::invalid_argument("solve_global: unknown method '" + options.method + "'");
  }
  if (!converged) {
    MS_LOG_WARN("global solve (%s) did not converge in %d iterations", options.method.c_str(),
                static_cast<int>(iterations));
  }
  // `nan` probe: poison the first solution entry so the stage-boundary
  // health sweep downstream must catch it (tests/robustness).
  if (util::FaultInjector::enabled() && !solutions.empty() && !solutions.front().empty() &&
      util::FaultInjector::global().consume("rom.global.solve") == util::FaultAction::kNan) {
    solutions.front().front() = std::numeric_limits<double>::quiet_NaN();
  }

  local.num_dofs = problem.num_dofs;
  local.num_rhs = num_cases;
  // num_factorizations: set per branch above — 1 on a cold direct solve,
  // 0 on a factor-cache hit and on iterative paths.
  local.solve_seconds = timer.seconds();
  local.factor_seconds = factor_seconds;
  local.triangular_seconds = triangular_seconds;
  local.iterations = iterations;
  local.converged = converged;
  local.matrix_bytes = matrix_bytes;
  local.solver_bytes = solver_bytes;
  publish_global_stats(local);
  if (stats != nullptr) *stats = local;
  return solutions;
}

Vec solve_global(GlobalProblem& problem, const DirichletBc& bc, const GlobalSolveOptions& options,
                 GlobalSolveStats* stats) {
  std::vector<Vec> solutions = solve_global_multi(problem, {}, bc, options, stats);
  return std::move(solutions.front());
}

}  // namespace ms::rom
