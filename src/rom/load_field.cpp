#include "rom/load_field.hpp"

#include <algorithm>
#include <stdexcept>

namespace ms::rom {

BlockLoadField::BlockLoadField(int blocks_x, int blocks_y, Vec delta_t)
    : blocks_x_(blocks_x), blocks_y_(blocks_y), values_(std::move(delta_t)) {
  if (blocks_x < 1 || blocks_y < 1) {
    throw std::invalid_argument("BlockLoadField: need >= 1 block per axis");
  }
  if (values_.size() != static_cast<std::size_t>(blocks_x_) * blocks_y_) {
    throw std::invalid_argument("BlockLoadField: values size must be blocks_x*blocks_y");
  }
}

double BlockLoadField::min() const {
  return is_uniform() ? value_ : *std::min_element(values_.begin(), values_.end());
}

double BlockLoadField::max() const {
  return is_uniform() ? value_ : *std::max_element(values_.begin(), values_.end());
}

void BlockLoadField::validate_extent(int blocks_x, int blocks_y) const {
  if (is_uniform()) return;
  if (blocks_x_ != blocks_x || blocks_y_ != blocks_y) {
    throw std::invalid_argument("BlockLoadField: field extent does not match the block grid");
  }
}

}  // namespace ms::rom
