#pragma once
// Field reconstruction (paper Eq. 15): within each block, displacement and
// stress are linear combinations of the precomputed per-basis samples with
// the block's nodal solution values plus the thermal column scaled by ΔT.
// Sample positions coincide exactly with fem::make_block_plane_grid, so ROM
// and reference fields compare point-for-point.

#include "fem/stress.hpp"
#include "rom/block_grid.hpp"
#include "rom/global_assembler.hpp"
#include "rom/rom_model.hpp"

namespace ms::rom {

/// Rectangular sub-region of blocks [bx0, bx1) x [by0, by1).
struct BlockRange {
  int bx0 = 0, bx1 = 0, by0 = 0, by1 = 0;

  [[nodiscard]] int width() const { return bx1 - bx0; }
  [[nodiscard]] int height() const { return by1 - by0; }

  static BlockRange all(const BlockGrid& grid) {
    return {0, grid.blocks_x(), 0, grid.blocks_y()};
  }
};

/// Mid-plane von Mises field over `range`, y-major with s samples per block
/// (same ordering as fem::sample_plane_stress on the region's plane grid).
/// Each block's thermal column is scaled by its own ΔT from `load`.
std::vector<double> reconstruct_plane_von_mises(const BlockGrid& grid, const RomModel& tsv_model,
                                                const RomModel* dummy_model, const BlockMask& mask,
                                                const Vec& u, const BlockLoadField& load,
                                                const BlockRange& range);

/// Full Voigt stress tensors on the same grid.
std::vector<fem::Stress6> reconstruct_plane_stress(const BlockGrid& grid,
                                                   const RomModel& tsv_model,
                                                   const RomModel* dummy_model,
                                                   const BlockMask& mask, const Vec& u,
                                                   const BlockLoadField& load,
                                                   const BlockRange& range);

/// Mid-plane displacement vectors (requires displacement sampling enabled in
/// the local stage); layout matches the stress variants, 3 values per point.
std::vector<std::array<double, 3>> reconstruct_plane_displacement(
    const BlockGrid& grid, const RomModel& tsv_model, const RomModel* dummy_model,
    const BlockMask& mask, const Vec& u, const BlockLoadField& load, const BlockRange& range);

/// Through-plane shear pairs (s_yz, s_xz) on the bump plane (the local
/// stage's second sample plane at z = height / (2 elems_z)); layout matches
/// the stress variants, 2 values per point. Requires a model with
/// bump_shear_samples (throws std::logic_error on pre-bump-plane models).
std::vector<std::array<double, 2>> reconstruct_bump_plane_shear(
    const BlockGrid& grid, const RomModel& tsv_model, const RomModel* dummy_model,
    const BlockMask& mask, const Vec& u, const BlockLoadField& load, const BlockRange& range);

// Scalar-ΔT conveniences (the paper's uniform reflow load).
inline std::vector<double> reconstruct_plane_von_mises(
    const BlockGrid& grid, const RomModel& tsv_model, const RomModel* dummy_model,
    const BlockMask& mask, const Vec& u, double thermal_load, const BlockRange& range) {
  return reconstruct_plane_von_mises(grid, tsv_model, dummy_model, mask, u,
                                     BlockLoadField::uniform(thermal_load), range);
}
inline std::vector<fem::Stress6> reconstruct_plane_stress(
    const BlockGrid& grid, const RomModel& tsv_model, const RomModel* dummy_model,
    const BlockMask& mask, const Vec& u, double thermal_load, const BlockRange& range) {
  return reconstruct_plane_stress(grid, tsv_model, dummy_model, mask, u,
                                  BlockLoadField::uniform(thermal_load), range);
}
inline std::vector<std::array<double, 3>> reconstruct_plane_displacement(
    const BlockGrid& grid, const RomModel& tsv_model, const RomModel* dummy_model,
    const BlockMask& mask, const Vec& u, double thermal_load, const BlockRange& range) {
  return reconstruct_plane_displacement(grid, tsv_model, dummy_model, mask, u,
                                        BlockLoadField::uniform(thermal_load), range);
}

}  // namespace ms::rom
