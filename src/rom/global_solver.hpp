#pragma once
// Solve the reduced global system (paper Eq. 20). The lifted system is SPD,
// so preconditioned CG is the default; GMRES (the paper's choice) and a
// sparse direct path are available for the solver ablation.

#include <string>

#include "rom/global_assembler.hpp"

namespace ms::rom {

struct GlobalSolveOptions {
  std::string method = "cg";      ///< "cg", "gmres", or "direct"
  std::string precond = "jacobi"; ///< for the iterative paths
  double rel_tol = 1e-9;
  idx_t max_iterations = 20000;
  idx_t gmres_restart = 80;
};

struct GlobalSolveStats {
  idx_t num_dofs = 0;
  double solve_seconds = 0.0;
  idx_t iterations = 0;
  bool converged = false;
  std::size_t matrix_bytes = 0;
  std::size_t solver_bytes = 0;
};

/// Apply `bc` by lifting, then solve. Returns the nodal displacement vector.
Vec solve_global(GlobalProblem& problem, const DirichletBc& bc,
                 const GlobalSolveOptions& options = {}, GlobalSolveStats* stats = nullptr);

}  // namespace ms::rom
