#pragma once
// Solve the reduced global system (paper Eq. 20). The lifted system is SPD,
// so preconditioned CG is the default; GMRES (the paper's choice) and a
// sparse direct path are available for the solver ablation.

#include <string>
#include <vector>

#include "core/cancel.hpp"
#include "la/cholesky.hpp"
#include "la/factor_cache.hpp"
#include "la/shift_retry.hpp"
#include "rom/global_assembler.hpp"

namespace ms::rom {

struct GlobalSolveOptions {
  std::string method = "cg";      ///< "cg", "gmres", or "direct"
  std::string precond = "jacobi"; ///< for the iterative paths
  double rel_tol = 1e-9;
  idx_t max_iterations = 20000;
  idx_t gmres_restart = 80;
  /// Direct-path factorization: ordering + supernodal/simplicial back end.
  la::SparseCholesky::Options factor;
  /// Cross-call factorization memoization (direct path only; iterative
  /// paths ignore it). When `factor_cache` is set and `factor_key` is
  /// non-empty, the lifted operator's factorization is looked up / stored
  /// under the key together with the unlifted operator (needed to lift the
  /// right-hand sides). The key must determine the assembled matrix values
  /// and the constrained-dof *set*; BC values may vary freely between
  /// callers sharing a key (lifting splits cleanly, see fem/dirichlet.hpp).
  /// On a hit the caller may leave problem.stiffness unassembled (empty)
  /// and fill only problem.rhs / problem.num_dofs. Warm or cold, the
  /// returned solutions are bit-identical to the uncached path.
  la::FactorCache* factor_cache = nullptr;
  std::string factor_key;
  /// SPD breakdown recovery for the direct paths (see la/shift_retry.hpp).
  /// A rescued factorization marks the stats degraded and records the shift.
  la::ShiftRetryOptions shift_retry;
  /// Cooperative cancellation/deadline token, checked at the factorization
  /// boundary (inert by default — no cost for non-sweep callers).
  core::CancelToken cancel;
};

struct GlobalSolveStats {
  idx_t num_dofs = 0;
  double solve_seconds = 0.0;     ///< total: factorization + triangular solves
  idx_t iterations = 0;
  bool converged = false;
  idx_t num_rhs = 0;              ///< right-hand sides solved in this call
  /// Factorizations performed: 1 on the direct path no matter how many RHS
  /// (the batching invariant fatigue runs assert), 0 on iterative paths.
  int num_factorizations = 0;
  std::size_t matrix_bytes = 0;
  std::size_t solver_bytes = 0;
  // Direct-path factorization detail (zero / empty on iterative paths):
  double factor_seconds = 0.0;    ///< the one Cholesky factorization
  double triangular_seconds = 0.0;///< forward/backward substitutions only
  la::offset_t factor_nnz = 0;    ///< nnz(L), diagonal included
  double fill_ratio = 0.0;        ///< nnz(L) / nnz(tril(A))
  idx_t num_supernodes = 0;       ///< 0 on the simplicial back end
  std::string ordering;           ///< "amd" / "rcm" / "natural"
  /// Set when the factorization needed the diagonal shift-retry ladder: the
  /// solution solves A + shift*I, not A (close, but not the exact operator).
  bool degraded = false;
  double diagonal_shift = 0.0;
};

/// Apply `bc` by lifting, then solve. Returns the nodal displacement vector.
Vec solve_global(GlobalProblem& problem, const DirichletBc& bc,
                 const GlobalSolveOptions& options = {}, GlobalSolveStats* stats = nullptr);

/// Multi-load variant: solve problem.rhs plus every vector of `extra_rhs`
/// against the same lifted operator. The direct path factors once and runs
/// all cases as one multi-RHS panel through SparseCholesky::solve_multi;
/// iterative paths loop. Returns one solution per case — index 0 is
/// problem.rhs, index 1 + k is extra_rhs[k]. All right-hand sides must be
/// unlifted (the lifting is applied here, like solve_global does).
std::vector<Vec> solve_global_multi(GlobalProblem& problem, std::vector<Vec> extra_rhs,
                                    const DirichletBc& bc, const GlobalSolveOptions& options = {},
                                    GlobalSolveStats* stats = nullptr);

}  // namespace ms::rom
