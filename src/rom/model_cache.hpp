#pragma once
// In-process cache of one-shot local-stage results (RomModel), shared by
// every simulator a sweep engine spins up. The local stage is the single
// most expensive step of a cold query (its factorization plus n+1 basis
// solves), and every scenario over one block spec needs the identical
// model — so the sweep engine keys models by the same fingerprint the
// on-disk cache uses and hands all simulators shared immutable instances.
//
// Single-flight like la::FactorCache: concurrent workers racing on one key
// run the local stage exactly once. Complements (does not replace) the
// on-disk cache — the builder a simulator passes in typically checks disk
// first.

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "rom/rom_model.hpp"

namespace ms::rom {

class ModelCache {
 public:
  using ModelPtr = std::shared_ptr<const RomModel>;

  /// Return the model under `key`, running `build` if absent. Single-flight:
  /// concurrent callers of one absent key block until the one in-flight
  /// build publishes. A throwing builder clears the slot and rethrows.
  ModelPtr get_or_create(const std::string& key, const std::function<ModelPtr()>& build);

  [[nodiscard]] bool contains(const std::string& key) const;
  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] std::uint64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  [[nodiscard]] std::uint64_t misses() const { return misses_.load(std::memory_order_relaxed); }
  void clear();

 private:
  struct Slot {
    bool ready = false;
    ModelPtr model;
  };

  mutable std::mutex mutex_;
  std::condition_variable ready_cv_;
  std::unordered_map<std::string, Slot> slots_;
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
};

}  // namespace ms::rom
