#pragma once
// The abstract global "mesh" of the global stage (paper Fig. 4(b)(c)): a
// regular grid of unit blocks, each an abstract element whose DoFs are the
// surface interpolation nodes. Adjacent blocks share face nodes; grid nodes
// strictly inside a block are not DoFs.

#include <vector>

#include "rom/surface_nodes.hpp"

namespace ms::rom {

class BlockGrid {
 public:
  /// blocks_x x blocks_y blocks, one block thick in z. Node counts and block
  /// dimensions come from the surface-node set (which all block models in
  /// the array must share).
  BlockGrid(int blocks_x, int blocks_y, int nodes_x, int nodes_y, int nodes_z, double pitch,
            double height);

  [[nodiscard]] int blocks_x() const { return blocks_x_; }
  [[nodiscard]] int blocks_y() const { return blocks_y_; }
  [[nodiscard]] int num_blocks() const { return blocks_x_ * blocks_y_; }

  /// Grid-line counts of the global interpolation-node lattice.
  [[nodiscard]] int grid_x() const { return gx_; }
  [[nodiscard]] int grid_y() const { return gy_; }
  [[nodiscard]] int grid_z() const { return gz_; }

  [[nodiscard]] idx_t num_nodes() const { return num_nodes_; }
  [[nodiscard]] idx_t num_dofs() const { return 3 * num_nodes_; }

  /// Global node index of lattice point (gi, gj, gk), or -1 if the point is
  /// strictly interior to a block (not a DoF).
  [[nodiscard]] idx_t node_at(int gi, int gj, int gk) const {
    return index_of_[(static_cast<std::size_t>(gk) * gy_ + gj) * gx_ + gi];
  }

  /// Physical position of a global node.
  [[nodiscard]] mesh::Point3 node_position(idx_t node) const;

  /// Global dof ids of block (bx, by), ordered exactly like the local-stage
  /// element DoFs (surface-node order x 3 components). Length n.
  [[nodiscard]] std::vector<idx_t> block_dofs(int bx, int by) const;

  /// Global nodes on the top or bottom face of the array (clamped-surface
  /// boundary condition of scenario 1).
  [[nodiscard]] std::vector<idx_t> nodes_top_bottom() const;

  /// Global nodes on any outer face of the array (sub-modeling boundary).
  [[nodiscard]] std::vector<idx_t> nodes_outer_boundary() const;

  [[nodiscard]] const SurfaceNodeSet& surface_nodes() const { return sns_; }

 private:
  int blocks_x_, blocks_y_;
  int nx_, ny_, nz_;   // per-block node counts
  double pitch_, height_;
  int gx_, gy_, gz_;   // lattice sizes
  idx_t num_nodes_ = 0;
  std::vector<idx_t> index_of_;         // lattice -> global node (-1 interior)
  std::vector<std::array<int, 3>> ijk_; // global node -> lattice coords
  SurfaceNodeSet sns_;
};

}  // namespace ms::rom
