#include "rom/reconstruct.hpp"

#include <stdexcept>

namespace ms::rom {
namespace {

/// Shared driver: for each block in range, form the coefficient vector
/// [u_block; thermal_load] and emit rows_per_pt values per sample point into
/// the region-wide y-major output array.
template <typename Emit>
void for_each_block_samples(const BlockGrid& grid, const RomModel& tsv_model,
                            const RomModel* dummy_model, const BlockMask& mask, const Vec& u,
                            const BlockLoadField& load, const BlockRange& range,
                            const Emit& emit) {
  if (range.bx0 < 0 || range.bx1 > grid.blocks_x() || range.by0 < 0 ||
      range.by1 > grid.blocks_y() || range.width() <= 0 || range.height() <= 0) {
    throw std::invalid_argument("reconstruct: block range out of bounds");
  }
  if (!mask.empty() && mask.size() != static_cast<std::size_t>(grid.num_blocks())) {
    throw std::invalid_argument("reconstruct: mask size must be blocks_x*blocks_y");
  }
  load.validate_extent(grid.blocks_x(), grid.blocks_y());
  const idx_t n = tsv_model.num_element_dofs();
  Vec coef(static_cast<std::size_t>(n) + 1);
  for (int by = range.by0; by < range.by1; ++by) {
    for (int bx = range.bx0; bx < range.bx1; ++bx) {
      const bool is_tsv =
          mask.empty() || mask[static_cast<std::size_t>(by) * grid.blocks_x() + bx] != 0;
      const RomModel* model = is_tsv ? &tsv_model : dummy_model;
      if (model == nullptr) {
        throw std::invalid_argument("reconstruct: mask selects dummy blocks but no model");
      }
      const std::vector<idx_t> dofs = grid.block_dofs(bx, by);
      for (idx_t i = 0; i < n; ++i) coef[i] = u[dofs[i]];
      coef[n] = load.at(bx, by);
      emit(*model, bx, by, coef);
    }
  }
}

}  // namespace

std::vector<fem::Stress6> reconstruct_plane_stress(const BlockGrid& grid,
                                                   const RomModel& tsv_model,
                                                   const RomModel* dummy_model,
                                                   const BlockMask& mask, const Vec& u,
                                                   const BlockLoadField& load,
                                                   const BlockRange& range) {
  const int s = tsv_model.samples_per_block;
  const std::size_t width = static_cast<std::size_t>(range.width()) * s;
  std::vector<fem::Stress6> out(width * static_cast<std::size_t>(range.height()) * s);

  for_each_block_samples(
      grid, tsv_model, dummy_model, mask, u, load, range,
      [&](const RomModel& model, int bx, int by, const Vec& coef) {
        const la::DenseMatrix& sm = model.stress_samples;
        for (int my = 0; my < s; ++my) {
          for (int mx = 0; mx < s; ++mx) {
            const idx_t pt = static_cast<idx_t>(my) * s + mx;
            const std::size_t gidx =
                (static_cast<std::size_t>(by - range.by0) * s + my) * width +
                static_cast<std::size_t>(bx - range.bx0) * s + mx;
            fem::Stress6& sigma = out[gidx];
            for (int r = 0; r < fem::kVoigt; ++r) {
              const idx_t row = 6 * pt + r;
              double sum = 0.0;
              for (idx_t col = 0; col < sm.cols(); ++col) sum += sm(row, col) * coef[col];
              sigma[r] = sum;
            }
          }
        }
      });
  return out;
}

std::vector<double> reconstruct_plane_von_mises(const BlockGrid& grid, const RomModel& tsv_model,
                                                const RomModel* dummy_model, const BlockMask& mask,
                                                const Vec& u, const BlockLoadField& load,
                                                const BlockRange& range) {
  const std::vector<fem::Stress6> stress =
      reconstruct_plane_stress(grid, tsv_model, dummy_model, mask, u, load, range);
  return fem::to_von_mises(stress);
}

std::vector<std::array<double, 3>> reconstruct_plane_displacement(
    const BlockGrid& grid, const RomModel& tsv_model, const RomModel* dummy_model,
    const BlockMask& mask, const Vec& u, const BlockLoadField& load, const BlockRange& range) {
  if (tsv_model.displacement_samples.rows() == 0) {
    throw std::logic_error(
        "reconstruct_plane_displacement: displacement sampling disabled in the local stage");
  }
  const int s = tsv_model.samples_per_block;
  const std::size_t width = static_cast<std::size_t>(range.width()) * s;
  std::vector<std::array<double, 3>> out(width * static_cast<std::size_t>(range.height()) * s);

  for_each_block_samples(
      grid, tsv_model, dummy_model, mask, u, load, range,
      [&](const RomModel& model, int bx, int by, const Vec& coef) {
        const la::DenseMatrix& dm = model.displacement_samples;
        for (int my = 0; my < s; ++my) {
          for (int mx = 0; mx < s; ++mx) {
            const idx_t pt = static_cast<idx_t>(my) * s + mx;
            const std::size_t gidx =
                (static_cast<std::size_t>(by - range.by0) * s + my) * width +
                static_cast<std::size_t>(bx - range.bx0) * s + mx;
            for (int c = 0; c < 3; ++c) {
              const idx_t row = 3 * pt + c;
              double sum = 0.0;
              for (idx_t col = 0; col < dm.cols(); ++col) sum += dm(row, col) * coef[col];
              out[gidx][c] = sum;
            }
          }
        }
      });
  return out;
}

std::vector<std::array<double, 2>> reconstruct_bump_plane_shear(
    const BlockGrid& grid, const RomModel& tsv_model, const RomModel* dummy_model,
    const BlockMask& mask, const Vec& u, const BlockLoadField& load, const BlockRange& range) {
  if (tsv_model.bump_shear_samples.rows() == 0) {
    throw std::logic_error(
        "reconstruct_bump_plane_shear: model carries no bump-plane samples (rebuild the local "
        "stage)");
  }
  const int s = tsv_model.samples_per_block;
  const std::size_t width = static_cast<std::size_t>(range.width()) * s;
  std::vector<std::array<double, 2>> out(width * static_cast<std::size_t>(range.height()) * s);

  for_each_block_samples(
      grid, tsv_model, dummy_model, mask, u, load, range,
      [&](const RomModel& model, int bx, int by, const Vec& coef) {
        const la::DenseMatrix& bm = model.bump_shear_samples;
        for (int my = 0; my < s; ++my) {
          for (int mx = 0; mx < s; ++mx) {
            const idx_t pt = static_cast<idx_t>(my) * s + mx;
            const std::size_t gidx =
                (static_cast<std::size_t>(by - range.by0) * s + my) * width +
                static_cast<std::size_t>(bx - range.bx0) * s + mx;
            for (int c = 0; c < 2; ++c) {
              const idx_t row = 2 * pt + c;
              double sum = 0.0;
              for (idx_t col = 0; col < bm.cols(); ++col) sum += bm(row, col) * coef[col];
              out[gidx][c] = sum;
            }
          }
        }
      });
  return out;
}

}  // namespace ms::rom
