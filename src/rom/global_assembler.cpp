#include "rom/global_assembler.hpp"

#include <stdexcept>
#include <string>

#include "obs/trace.hpp"

namespace ms::rom {
namespace {

/// Stiffness and load must select block models identically; both assembly
/// entry points go through these two helpers.
void require_dummy_model(const BlockMask& mask, const RomModel* dummy_model,
                         const char* caller) {
  if (dummy_model != nullptr || mask.empty()) return;
  for (std::uint8_t m : mask) {
    if (m == 0) {
      throw std::invalid_argument(std::string(caller) +
                                  ": mask selects dummy blocks but no model");
    }
  }
}

const RomModel& block_model(const RomModel& tsv_model, const RomModel* dummy_model,
                            const BlockMask& mask, int blocks_x, int bx, int by) {
  const bool is_tsv =
      mask.empty() || mask[static_cast<std::size_t>(by) * blocks_x + bx] != 0;
  return is_tsv ? tsv_model : *dummy_model;
}

}  // namespace

GlobalProblem assemble_global(const BlockGrid& grid, const RomModel& tsv_model,
                              const RomModel* dummy_model, const BlockMask& mask,
                              const BlockLoadField& load) {
  MS_TRACE_SCOPE("rom.global.assemble");
  const idx_t n = tsv_model.num_element_dofs();
  load.validate_extent(grid.blocks_x(), grid.blocks_y());
  if (tsv_model.element_stiffness.rows() != n) {
    throw std::invalid_argument("assemble_global: model element matrices missing");
  }
  if (!mask.empty() && mask.size() != static_cast<std::size_t>(grid.num_blocks())) {
    throw std::invalid_argument("assemble_global: mask size must be blocks_x*blocks_y");
  }
  if (dummy_model != nullptr && !tsv_model.compatible_with(*dummy_model)) {
    throw std::invalid_argument("assemble_global: dummy model incompatible with TSV model");
  }

  GlobalProblem problem;
  problem.num_dofs = grid.num_dofs();
  problem.rhs.assign(problem.num_dofs, 0.0);

  // Validate before the parallel scatter: throwing from inside an OpenMP
  // region would terminate instead of propagating.
  require_dummy_model(mask, dummy_model, "assemble_global");

  // Every block contributes exactly n^2 stiffness entries, so each block
  // owns a fixed slice of the triplet arrays and the scatter parallelizes
  // with no races and a bitwise-deterministic result (the slice layout is
  // the serial push order). The rhs overlaps between neighbouring blocks;
  // its accumulation stays serial — it is O(n) per block against the
  // O(n^2) stiffness scatter — so its summation order is fixed too.
  const std::size_t num_blocks = static_cast<std::size_t>(grid.num_blocks());
  const std::size_t per_block = static_cast<std::size_t>(n) * n;
  std::vector<idx_t> is(num_blocks * per_block);
  std::vector<idx_t> js(num_blocks * per_block);
  std::vector<double> vs(num_blocks * per_block);

  const int blocks_x = grid.blocks_x();
  const int blocks_y = grid.blocks_y();
#ifdef _OPENMP
#pragma omp parallel for schedule(static)
#endif
  for (int b = 0; b < blocks_x * blocks_y; ++b) {
    const int bx = b % blocks_x;
    const int by = b / blocks_x;
    const RomModel& model = block_model(tsv_model, dummy_model, mask, blocks_x, bx, by);
    const std::vector<idx_t> dofs = grid.block_dofs(bx, by);
    std::size_t pos = static_cast<std::size_t>(b) * per_block;
    for (idx_t i = 0; i < n; ++i) {
      for (idx_t j = 0; j < n; ++j, ++pos) {
        is[pos] = dofs[i];
        js[pos] = dofs[j];
        vs[pos] = model.element_stiffness(i, j);
      }
    }
  }
  problem.rhs = assemble_global_rhs(grid, tsv_model, dummy_model, mask, load);
  problem.stiffness = CsrMatrix::from_triplets(la::TripletList::from_parts(
      problem.num_dofs, problem.num_dofs, std::move(is), std::move(js), std::move(vs)));
  return problem;
}

Vec assemble_global_rhs(const BlockGrid& grid, const RomModel& tsv_model,
                        const RomModel* dummy_model, const BlockMask& mask,
                        const BlockLoadField& load) {
  MS_TRACE_SCOPE("rom.global.assemble_rhs");
  const idx_t n = tsv_model.num_element_dofs();
  load.validate_extent(grid.blocks_x(), grid.blocks_y());
  require_dummy_model(mask, dummy_model, "assemble_global_rhs");
  Vec rhs(static_cast<std::size_t>(grid.num_dofs()), 0.0);
  // Neighbouring blocks share surface dofs, so the accumulation stays serial
  // and its summation order fixed (bitwise-deterministic).
  for (int by = 0; by < grid.blocks_y(); ++by) {
    for (int bx = 0; bx < grid.blocks_x(); ++bx) {
      const RomModel& model =
          block_model(tsv_model, dummy_model, mask, grid.blocks_x(), bx, by);
      const std::vector<idx_t> dofs = grid.block_dofs(bx, by);
      const double thermal_load = load.at(bx, by);
      for (idx_t i = 0; i < n; ++i) {
        rhs[dofs[i]] += thermal_load * model.element_load[i];
      }
    }
  }
  return rhs;
}

DirichletBc clamp_top_bottom(const BlockGrid& grid) {
  return DirichletBc::clamp_nodes(grid.nodes_top_bottom());
}

DirichletBc submodel_boundary(const BlockGrid& grid,
                              const std::function<std::array<double, 3>(const mesh::Point3&)>&
                                  displacement) {
  const std::vector<idx_t> nodes = grid.nodes_outer_boundary();
  Vec values;
  values.reserve(3 * nodes.size());
  for (idx_t node : nodes) {
    const auto u = displacement(grid.node_position(node));
    values.insert(values.end(), u.begin(), u.end());
  }
  return DirichletBc::clamp_nodes(nodes, values);
}

}  // namespace ms::rom
