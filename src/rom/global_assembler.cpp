#include "rom/global_assembler.hpp"

#include <stdexcept>

namespace ms::rom {

GlobalProblem assemble_global(const BlockGrid& grid, const RomModel& tsv_model,
                              const RomModel* dummy_model, const BlockMask& mask,
                              const BlockLoadField& load) {
  const idx_t n = tsv_model.num_element_dofs();
  load.validate_extent(grid.blocks_x(), grid.blocks_y());
  if (tsv_model.element_stiffness.rows() != n) {
    throw std::invalid_argument("assemble_global: model element matrices missing");
  }
  if (!mask.empty() && mask.size() != static_cast<std::size_t>(grid.num_blocks())) {
    throw std::invalid_argument("assemble_global: mask size must be blocks_x*blocks_y");
  }
  if (dummy_model != nullptr && !tsv_model.compatible_with(*dummy_model)) {
    throw std::invalid_argument("assemble_global: dummy model incompatible with TSV model");
  }

  GlobalProblem problem;
  problem.num_dofs = grid.num_dofs();
  problem.rhs.assign(problem.num_dofs, 0.0);

  la::TripletList triplets(problem.num_dofs, problem.num_dofs);
  triplets.reserve(static_cast<std::size_t>(grid.num_blocks()) * n * n);

  for (int by = 0; by < grid.blocks_y(); ++by) {
    for (int bx = 0; bx < grid.blocks_x(); ++bx) {
      const bool is_tsv =
          mask.empty() || mask[static_cast<std::size_t>(by) * grid.blocks_x() + bx] != 0;
      const RomModel* model = is_tsv ? &tsv_model : dummy_model;
      if (model == nullptr) {
        throw std::invalid_argument("assemble_global: mask selects dummy blocks but no model");
      }
      const std::vector<idx_t> dofs = grid.block_dofs(bx, by);
      const double thermal_load = load.at(bx, by);
      for (idx_t i = 0; i < n; ++i) {
        problem.rhs[dofs[i]] += thermal_load * model->element_load[i];
        for (idx_t j = 0; j < n; ++j) {
          triplets.add(dofs[i], dofs[j], model->element_stiffness(i, j));
        }
      }
    }
  }
  problem.stiffness = CsrMatrix::from_triplets(triplets);
  return problem;
}

DirichletBc clamp_top_bottom(const BlockGrid& grid) {
  return DirichletBc::clamp_nodes(grid.nodes_top_bottom());
}

DirichletBc submodel_boundary(const BlockGrid& grid,
                              const std::function<std::array<double, 3>(const mesh::Point3&)>&
                                  displacement) {
  const std::vector<idx_t> nodes = grid.nodes_outer_boundary();
  Vec values;
  values.reserve(3 * nodes.size());
  for (idx_t node : nodes) {
    const auto u = displacement(grid.node_position(node));
    values.insert(values.end(), u.begin(), u.end());
  }
  return DirichletBc::clamp_nodes(nodes, values);
}

}  // namespace ms::rom
