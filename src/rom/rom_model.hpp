#pragma once
// The reduced order model of one unit block — the artifact the one-shot
// local stage produces (paper Fig. 3(d)) and the global stage consumes.
// Holds the reduced element matrices (Eq. 18-19) and per-basis field samples
// on the mid-height cut plane so stress can be reconstructed as a linear
// combination (Eq. 15) without touching the fine mesh again.

#include <cstdint>
#include <string>

#include "la/dense.hpp"
#include "mesh/tsv_block.hpp"
#include "rom/surface_nodes.hpp"

namespace ms::rom {

using la::DenseMatrix;
using la::Vec;

/// Which physical block a model describes.
enum class BlockKind : std::uint8_t {
  Tsv = 0,    ///< copper via + liner + silicon
  Dummy = 1,  ///< pure silicon (sub-modeling padding, Sec. 4.4)
};

struct RomModel {
  // --- provenance -----------------------------------------------------------
  BlockKind kind = BlockKind::Tsv;
  mesh::TsvGeometry geometry;
  mesh::BlockMeshSpec mesh_spec;
  int nodes_x = 4, nodes_y = 4, nodes_z = 4;  ///< (nx, ny, nz) interpolation nodes
  int samples_per_block = 100;                ///< s: plane sample resolution

  // --- reduced model (Eq. 18-19) --------------------------------------------
  /// n x n reduced element stiffness, n = surface-node dofs (Eq. 16).
  DenseMatrix element_stiffness;
  /// n reduced element load per unit thermal load, reaction-corrected:
  /// b_i = f_i^T (b_local - A_local f_T)  (see DESIGN.md on Eq. 19).
  Vec element_load;

  // --- field reconstruction (Eq. 15) ----------------------------------------
  /// (6 * s^2) x (n + 1) stress samples of each basis on the mid-height
  /// plane; column n is the thermal basis f_T (per unit thermal load).
  /// Row layout: sample-major, y-major over samples, 6 Voigt rows together.
  DenseMatrix stress_samples;
  /// (3 * s^2) x (n + 1) displacement samples (same layout, 3 rows/sample);
  /// empty if displacement sampling was disabled.
  DenseMatrix displacement_samples;
  /// (2 * s^2) x (n + 1) through-plane shear samples (rows s_yz, s_xz per
  /// point, same sample ordering) on the bump plane — the centre of the
  /// bottom element layer, z = height / (2 elems_z), just above the clamped
  /// z = 0 face. Feeds the bump-shear fatigue channel with real bump-plane
  /// tractions instead of the mid-plane proxy.
  DenseMatrix bump_shear_samples;

  // --- diagnostics ------------------------------------------------------------
  idx_t fine_mesh_dofs = 0;      ///< DoFs of the fine unit-block mesh
  double local_stage_seconds = 0.0;

  /// Surface-node set matching (nodes_x, nodes_y, nodes_z) and the geometry.
  [[nodiscard]] SurfaceNodeSet surface_nodes() const;

  /// Number of element DoFs n (Eq. 16).
  [[nodiscard]] idx_t num_element_dofs() const;

  /// Resident bytes of the dense payloads (for the memory ledger).
  [[nodiscard]] std::size_t memory_bytes() const;

  /// Binary (de)serialization; throws std::runtime_error on I/O failure or
  /// format mismatch. Enables "perform the local stage once, reuse forever".
  void save(const std::string& path) const;
  static RomModel load(const std::string& path);

  /// Two models are compatible for hybrid assembly (TSV + dummy in one
  /// array) when geometry, mesh spec, and node counts agree.
  [[nodiscard]] bool compatible_with(const RomModel& other) const;
};

}  // namespace ms::rom
