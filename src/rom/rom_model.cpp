#include "rom/rom_model.hpp"

#include <cstdio>
#include <cstring>
#include <memory>
#include <stdexcept>

namespace ms::rom {
namespace {

constexpr char kMagic[8] = {'M', 'S', 'R', 'O', 'M', '0', '0', '3'};

struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f != nullptr) std::fclose(f);
  }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

void write_bytes(std::FILE* f, const void* data, std::size_t bytes) {
  if (std::fwrite(data, 1, bytes, f) != bytes) {
    throw std::runtime_error("RomModel::save: write failed");
  }
}

void read_bytes(std::FILE* f, void* data, std::size_t bytes) {
  if (std::fread(data, 1, bytes, f) != bytes) {
    throw std::runtime_error("RomModel::load: unexpected end of file");
  }
}

template <typename T>
void write_pod(std::FILE* f, const T& value) {
  write_bytes(f, &value, sizeof(T));
}

template <typename T>
T read_pod(std::FILE* f) {
  T value{};
  read_bytes(f, &value, sizeof(T));
  return value;
}

void write_matrix(std::FILE* f, const DenseMatrix& m) {
  write_pod<std::int64_t>(f, m.rows());
  write_pod<std::int64_t>(f, m.cols());
  if (!m.data().empty()) write_bytes(f, m.data().data(), m.data().size() * sizeof(double));
}

DenseMatrix read_matrix(std::FILE* f) {
  const auto rows = read_pod<std::int64_t>(f);
  const auto cols = read_pod<std::int64_t>(f);
  if (rows < 0 || cols < 0) throw std::runtime_error("RomModel::load: corrupt matrix header");
  DenseMatrix m(static_cast<idx_t>(rows), static_cast<idx_t>(cols));
  if (!m.data().empty()) read_bytes(f, m.data().data(), m.data().size() * sizeof(double));
  return m;
}

void write_vec(std::FILE* f, const Vec& v) {
  write_pod<std::int64_t>(f, static_cast<std::int64_t>(v.size()));
  if (!v.empty()) write_bytes(f, v.data(), v.size() * sizeof(double));
}

Vec read_vec(std::FILE* f) {
  const auto n = read_pod<std::int64_t>(f);
  if (n < 0) throw std::runtime_error("RomModel::load: corrupt vector header");
  Vec v(static_cast<std::size_t>(n));
  if (!v.empty()) read_bytes(f, v.data(), v.size() * sizeof(double));
  return v;
}

}  // namespace

SurfaceNodeSet RomModel::surface_nodes() const {
  return SurfaceNodeSet(nodes_x, nodes_y, nodes_z, geometry.pitch, geometry.pitch,
                        geometry.height);
}

idx_t RomModel::num_element_dofs() const {
  const idx_t total = static_cast<idx_t>(nodes_x) * nodes_y * nodes_z;
  const idx_t interior = static_cast<idx_t>(nodes_x - 2) * (nodes_y - 2) * (nodes_z - 2);
  return 3 * (total - interior);
}

std::size_t RomModel::memory_bytes() const {
  return (element_stiffness.data().size() + stress_samples.data().size() +
          displacement_samples.data().size() + bump_shear_samples.data().size() +
          element_load.size()) *
         sizeof(double);
}

bool RomModel::compatible_with(const RomModel& other) const {
  return nodes_x == other.nodes_x && nodes_y == other.nodes_y && nodes_z == other.nodes_z &&
         samples_per_block == other.samples_per_block &&
         geometry.pitch == other.geometry.pitch && geometry.height == other.geometry.height &&
         mesh_spec.elems_xy == other.mesh_spec.elems_xy &&
         mesh_spec.elems_z == other.mesh_spec.elems_z;
}

void RomModel::save(const std::string& path) const {
  FilePtr f(std::fopen(path.c_str(), "wb"));
  if (f == nullptr) throw std::runtime_error("RomModel::save: cannot open " + path);
  write_bytes(f.get(), kMagic, sizeof(kMagic));
  write_pod<std::uint8_t>(f.get(), static_cast<std::uint8_t>(kind));
  write_pod<double>(f.get(), geometry.pitch);
  write_pod<double>(f.get(), geometry.diameter);
  write_pod<double>(f.get(), geometry.liner_thickness);
  write_pod<double>(f.get(), geometry.height);
  write_pod<std::int32_t>(f.get(), mesh_spec.elems_xy);
  write_pod<std::int32_t>(f.get(), mesh_spec.elems_z);
  write_pod<std::int32_t>(f.get(), nodes_x);
  write_pod<std::int32_t>(f.get(), nodes_y);
  write_pod<std::int32_t>(f.get(), nodes_z);
  write_pod<std::int32_t>(f.get(), samples_per_block);
  write_pod<std::int64_t>(f.get(), fine_mesh_dofs);
  write_pod<double>(f.get(), local_stage_seconds);
  write_matrix(f.get(), element_stiffness);
  write_vec(f.get(), element_load);
  write_matrix(f.get(), stress_samples);
  write_matrix(f.get(), displacement_samples);
  write_matrix(f.get(), bump_shear_samples);
}

RomModel RomModel::load(const std::string& path) {
  FilePtr f(std::fopen(path.c_str(), "rb"));
  if (f == nullptr) throw std::runtime_error("RomModel::load: cannot open " + path);
  char magic[sizeof(kMagic)];
  read_bytes(f.get(), magic, sizeof(magic));
  if (std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    throw std::runtime_error("RomModel::load: bad magic in " + path);
  }
  RomModel m;
  m.kind = static_cast<BlockKind>(read_pod<std::uint8_t>(f.get()));
  m.geometry.pitch = read_pod<double>(f.get());
  m.geometry.diameter = read_pod<double>(f.get());
  m.geometry.liner_thickness = read_pod<double>(f.get());
  m.geometry.height = read_pod<double>(f.get());
  m.mesh_spec.elems_xy = read_pod<std::int32_t>(f.get());
  m.mesh_spec.elems_z = read_pod<std::int32_t>(f.get());
  m.nodes_x = read_pod<std::int32_t>(f.get());
  m.nodes_y = read_pod<std::int32_t>(f.get());
  m.nodes_z = read_pod<std::int32_t>(f.get());
  m.samples_per_block = read_pod<std::int32_t>(f.get());
  m.fine_mesh_dofs = static_cast<idx_t>(read_pod<std::int64_t>(f.get()));
  m.local_stage_seconds = read_pod<double>(f.get());
  m.element_stiffness = read_matrix(f.get());
  m.element_load = read_vec(f.get());
  m.stress_samples = read_matrix(f.get());
  m.displacement_samples = read_matrix(f.get());
  m.bump_shear_samples = read_matrix(f.get());
  return m;
}

}  // namespace ms::rom
