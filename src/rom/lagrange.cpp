#include "rom/lagrange.hpp"

#include <stdexcept>

namespace ms::rom {

std::vector<double> equispaced_nodes(double a, double b, int n) {
  if (n < 2 || b <= a) throw std::invalid_argument("equispaced_nodes: need n >= 2 and b > a");
  std::vector<double> nodes(n);
  for (int i = 0; i < n; ++i) nodes[i] = a + (b - a) * i / (n - 1);
  return nodes;
}

std::vector<double> lagrange_values(const std::vector<double>& nodes, double x) {
  const int n = static_cast<int>(nodes.size());
  std::vector<double> values(n, 1.0);
  for (int i = 0; i < n; ++i) {
    for (int m = 0; m < n; ++m) {
      if (m == i) continue;
      values[i] *= (x - nodes[m]) / (nodes[i] - nodes[m]);
    }
  }
  return values;
}

Lagrange3d::Lagrange3d(std::vector<double> xs, std::vector<double> ys, std::vector<double> zs)
    : xs_(std::move(xs)), ys_(std::move(ys)), zs_(std::move(zs)) {
  if (xs_.size() < 2 || ys_.size() < 2 || zs_.size() < 2) {
    throw std::invalid_argument("Lagrange3d: need >= 2 nodes per axis");
  }
}

double Lagrange3d::weight(const mesh::Point3& p, int i, int j, int k) const {
  const auto wx = lagrange_values(xs_, p.x);
  const auto wy = lagrange_values(ys_, p.y);
  const auto wz = lagrange_values(zs_, p.z);
  return wx[i] * wy[j] * wz[k];
}

Lagrange3d::Factors Lagrange3d::factors(const mesh::Point3& p) const {
  return {lagrange_values(xs_, p.x), lagrange_values(ys_, p.y), lagrange_values(zs_, p.z)};
}

}  // namespace ms::rom
