#pragma once
// The one-shot local stage (paper Sec. 4.2, Fig. 3). For one unit block:
//
//  1. mesh the block finely and assemble A_local, b_local (Eq. 11);
//  2. place (nx, ny, nz) Lagrange interpolation nodes on the surface and
//     build the boundary interpolation operator L (Eq. 8-10);
//  3. factor A_ff once (sparse Cholesky) and solve the n+1 local problems —
//     one per surface-node displacement component (f_i) plus the thermal
//     basis f_T (Eq. 13-15);
//  4. project to the reduced element matrices (Eq. 18-19) and sample each
//     basis's stress (and optionally displacement) on the mid-height plane
//     so the global stage can reconstruct fields without the fine mesh.
//
// The factorization reuse across all n+1 right-hand sides is what makes the
// local stage cheap; it is the direct analogue of the paper's one-time
// LU/Cholesky decomposition.

#include "fem/material.hpp"
#include "la/cholesky.hpp"
#include "rom/rom_model.hpp"

namespace ms::rom {

struct LocalStageOptions {
  int nodes_x = 4;
  int nodes_y = 4;
  int nodes_z = 4;
  int samples_per_block = 100;      ///< s: mid-plane sample grid is s x s
  bool sample_displacements = true; ///< also store per-basis displacements
  /// Direct-solver configuration of the one A_ff factorization (ordering +
  /// supernodal/simplicial back end).
  la::SparseCholesky::Options factor;
  /// The n+1 basis right-hand sides are solved in column panels of this
  /// width through SparseCholesky::solve_multi, so the factor is streamed
  /// once per panel instead of once per solve.
  int rhs_panel = 8;
  /// Verification switch: use the element load exactly as printed in the
  /// paper's Eq. 19 (b_i = f_i^T b_local) instead of the explicitly
  /// reaction-corrected form b_i = f_i^T (b_local - A_local f_T). The two are
  /// mathematically identical — a(f_i, f_T) = 0 because the f_i are interior-
  /// harmonic and f_T vanishes on the boundary — which
  /// bench/ablation_loadterm verifies to machine precision (see DESIGN.md).
  bool uncorrected_eq19_load = false;
};

/// Run the local stage for a TSV or dummy block. Deterministic; typical cost
/// is seconds at default resolution.
RomModel run_local_stage(const mesh::TsvGeometry& geometry, const mesh::BlockMeshSpec& spec,
                         const fem::MaterialTable& materials, BlockKind kind,
                         const LocalStageOptions& options);

}  // namespace ms::rom
