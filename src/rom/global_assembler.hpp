#pragma once
// Global-stage assembly (paper Sec. 4.3): scatter each block's reduced
// element stiffness/load into the global sparse system with the standard FEM
// assembly procedure, then lift Dirichlet data (clamped surfaces for
// standalone arrays; interpolated coarse displacements for sub-modeling).

#include <functional>
#include <vector>

#include "fem/dirichlet.hpp"
#include "rom/block_grid.hpp"
#include "rom/load_field.hpp"
#include "rom/rom_model.hpp"

namespace ms::rom {

using fem::DirichletBc;
using la::CsrMatrix;

/// Per-block model selection for hybrid arrays: mask[by * blocks_x + bx] is
/// 1 for a TSV block, 0 for a dummy block. Empty mask = all TSV.
using BlockMask = std::vector<std::uint8_t>;

struct GlobalProblem {
  CsrMatrix stiffness;
  Vec rhs;
  idx_t num_dofs = 0;
};

/// Assemble the unconstrained global system: each block's reduced load is
/// scaled by its own ΔT from `load`. `dummy_model` may be null when the mask
/// selects no dummy blocks.
GlobalProblem assemble_global(const BlockGrid& grid, const RomModel& tsv_model,
                              const RomModel* dummy_model, const BlockMask& mask,
                              const BlockLoadField& load);

/// Assemble only the load vector for `load` on an already-assembled global
/// problem's grid: the reduced stiffness does not depend on the per-block
/// ΔT, so solving many load cases (e.g. transient snapshots) against one
/// factorization needs one stiffness assembly plus one of these per case.
Vec assemble_global_rhs(const BlockGrid& grid, const RomModel& tsv_model,
                        const RomModel* dummy_model, const BlockMask& mask,
                        const BlockLoadField& load);

/// Scalar-ΔT convenience (the paper's uniform reflow load).
inline GlobalProblem assemble_global(const BlockGrid& grid, const RomModel& tsv_model,
                                     const RomModel* dummy_model, const BlockMask& mask,
                                     double thermal_load) {
  return assemble_global(grid, tsv_model, dummy_model, mask,
                         BlockLoadField::uniform(thermal_load));
}

/// Clamped top/bottom condition of scenario 1 (all components zero).
DirichletBc clamp_top_bottom(const BlockGrid& grid);

/// Sub-modeling condition: prescribe every outer-boundary node to the value
/// of `displacement(p)` (e.g. interpolated from a coarse package solution).
DirichletBc submodel_boundary(const BlockGrid& grid,
                              const std::function<std::array<double, 3>(const mesh::Point3&)>&
                                  displacement);

}  // namespace ms::rom
