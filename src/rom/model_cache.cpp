#include "rom/model_cache.hpp"

#include <atomic>
#include <chrono>

#include "obs/metrics.hpp"
#include "obs/query_scope.hpp"

namespace ms::rom {

ModelCache::ModelPtr ModelCache::get_or_create(const std::string& key,
                                               const std::function<ModelPtr()>& build) {
  auto& registry = obs::MetricRegistry::global();
  {
    std::unique_lock<std::mutex> lock(mutex_);
    while (true) {
      auto [it, inserted] = slots_.try_emplace(key);
      if (inserted) break;  // we own the build
      if (!it->second.ready) {
        // Single-flight wait (see la::FactorCache): blocked-on-peer-build
        // time, recorded and query-attributed apart from the stage timers.
        const auto wait_begin = std::chrono::steady_clock::now();
        ready_cv_.wait(lock, [&] {
          auto found = slots_.find(key);
          return found == slots_.end() || found->second.ready;
        });
        const double waited =
            std::chrono::duration<double>(std::chrono::steady_clock::now() - wait_begin)
                .count();
        registry.histogram("rom.model_cache.wait_seconds").record(waited);
        obs::QueryScope::observe_seconds("model_cache.wait_seconds", waited);
      }
      auto found = slots_.find(key);
      if (found != slots_.end() && found->second.ready) {
        hits_.fetch_add(1, std::memory_order_relaxed);
        registry.counter("rom.model_cache.hits").add(1);
        obs::QueryScope::count("model_cache.hits");
        return found->second.model;
      }
    }
  }

  misses_.fetch_add(1, std::memory_order_relaxed);
  registry.counter("rom.model_cache.misses").add(1);
  obs::QueryScope::count("model_cache.misses");
  ModelPtr model;
  try {
    model = build();
  } catch (...) {
    // Same slot-clear protocol as la::FactorCache: waiters observe the
    // erased key and race to claim the retry; nothing is poisoned.
    {
      std::lock_guard<std::mutex> lock(mutex_);
      slots_.erase(key);
    }
    ready_cv_.notify_all();
    registry.counter("rom.model_cache.build_failures").add(1);
    throw;
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    Slot& slot = slots_[key];
    slot.model = model;
    slot.ready = true;
  }
  ready_cv_.notify_all();
  return model;
}

bool ModelCache::contains(const std::string& key) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = slots_.find(key);
  return it != slots_.end() && it->second.ready;
}

std::size_t ModelCache::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::size_t ready = 0;
  for (const auto& [key, slot] : slots_) {
    ready += slot.ready ? 1 : 0;
  }
  return ready;
}

void ModelCache::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  slots_.clear();
}

}  // namespace ms::rom
