#include "rom/model_cache.hpp"

#include <atomic>

#include "obs/metrics.hpp"

namespace ms::rom {

ModelCache::ModelPtr ModelCache::get_or_create(const std::string& key,
                                               const std::function<ModelPtr()>& build) {
  auto& registry = obs::MetricRegistry::global();
  {
    std::unique_lock<std::mutex> lock(mutex_);
    while (true) {
      auto [it, inserted] = slots_.try_emplace(key);
      if (inserted) break;  // we own the build
      ready_cv_.wait(lock, [&] {
        auto found = slots_.find(key);
        return found == slots_.end() || found->second.ready;
      });
      auto found = slots_.find(key);
      if (found != slots_.end()) {
        hits_.fetch_add(1, std::memory_order_relaxed);
        registry.counter("rom.model_cache.hits").add(1);
        return found->second.model;
      }
    }
  }

  misses_.fetch_add(1, std::memory_order_relaxed);
  registry.counter("rom.model_cache.misses").add(1);
  ModelPtr model;
  try {
    model = build();
  } catch (...) {
    // Same slot-clear protocol as la::FactorCache: waiters observe the
    // erased key and race to claim the retry; nothing is poisoned.
    {
      std::lock_guard<std::mutex> lock(mutex_);
      slots_.erase(key);
    }
    ready_cv_.notify_all();
    registry.counter("rom.model_cache.build_failures").add(1);
    throw;
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    Slot& slot = slots_[key];
    slot.model = model;
    slot.ready = true;
  }
  ready_cv_.notify_all();
  return model;
}

bool ModelCache::contains(const std::string& key) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = slots_.find(key);
  return it != slots_.end() && it->second.ready;
}

std::size_t ModelCache::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::size_t ready = 0;
  for (const auto& [key, slot] : slots_) {
    ready += slot.ready ? 1 : 0;
  }
  return ready;
}

void ModelCache::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  slots_.clear();
}

}  // namespace ms::rom
