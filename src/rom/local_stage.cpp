#include "rom/local_stage.hpp"

#include <algorithm>
#include <stdexcept>

#include "fem/assembler.hpp"
#include "fem/dirichlet.hpp"
#include "fem/hex8.hpp"
#include "fem/stress.hpp"
#include "la/cholesky.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/log.hpp"
#include "util/timer.hpp"

namespace ms::rom {
namespace {

using fem::kHexDofs;
using fem::kHexNodes;
using fem::kVoigt;
using la::CsrMatrix;
using la::SparseCholesky;

/// Node-level interpolation weights: W(b, m) = L3D(position of boundary mesh
/// node b; surface node m). Stored dense — both dimensions are small.
DenseMatrix boundary_weights(const mesh::HexMesh& mesh, const std::vector<idx_t>& bnodes,
                             const SurfaceNodeSet& sns) {
  DenseMatrix w(static_cast<idx_t>(bnodes.size()), sns.count());
  for (idx_t b = 0; b < static_cast<idx_t>(bnodes.size()); ++b) {
    const mesh::Point3 p = mesh.node_pos(bnodes[b]);
    const Lagrange3d::Factors f = sns.lagrange().factors(p);
    for (idx_t m = 0; m < sns.count(); ++m) {
      const auto& [i, j, k] = sns.node_ijk(m);
      w(b, m) = f.wx[i] * f.wy[j] * f.wz[k];
    }
  }
  return w;
}

}  // namespace

RomModel run_local_stage(const mesh::TsvGeometry& geometry, const mesh::BlockMeshSpec& spec,
                         const fem::MaterialTable& materials, BlockKind kind,
                         const LocalStageOptions& options) {
  MS_TRACE_SCOPE("rom.local.stage");
  obs::ScopedDuration stage_timer(
      obs::MetricRegistry::global().histogram("rom.local.stage_seconds"));
  util::WallTimer timer;
  if (options.nodes_x < 2 || options.nodes_y < 2 || options.nodes_z < 2) {
    throw std::invalid_argument("run_local_stage: need >= 2 interpolation nodes per axis");
  }

  obs::ScopedSpan assemble_span("rom.local.assemble");
  const mesh::HexMesh block = (kind == BlockKind::Tsv)
                                  ? mesh::build_tsv_block_mesh(geometry, spec)
                                  : mesh::build_dummy_block_mesh(geometry, spec);
  const fem::AssembledSystem sys = fem::assemble_system(block, materials);
  const idx_t num_dofs = sys.num_dofs;

  // Partition fine-mesh dofs into boundary (prescribed) and free sets.
  const std::vector<idx_t> bnodes = block.boundary_nodes();
  std::vector<idx_t> bc_dofs;
  bc_dofs.reserve(3 * bnodes.size());
  for (idx_t node : bnodes) {
    for (int c = 0; c < 3; ++c) bc_dofs.push_back(fem::dof_of(node, c));
  }
  const fem::DofPartition part = fem::partition_dofs(num_dofs, bc_dofs);

  const SurfaceNodeSet sns(options.nodes_x, options.nodes_y, options.nodes_z, geometry.pitch,
                           geometry.pitch, geometry.height);
  const idx_t n = sns.num_dofs();

  const DenseMatrix weights = boundary_weights(block, bnodes, sns);

  const CsrMatrix a_ff =
      sys.stiffness.submatrix(part.free_map, part.num_free, part.free_map, part.num_free);
  const CsrMatrix a_fb =
      sys.stiffness.submatrix(part.free_map, part.num_free, part.bc_map, part.num_bc);

  assemble_span.end();

  // One factorization, n+1 solves (paper Sec. 4.2). The right-hand sides are
  // batched into column panels and solved through solve_multi, so the factor
  // streams through the cache once per panel instead of once per solve;
  // panels only share the immutable factor, so they parallelize
  // embarrassingly with per-thread workspaces.
  const SparseCholesky chol(a_ff, options.factor);

  // Basis fields F = [f_0 ... f_{n-1}, f_T] as full fine-mesh vectors.
  const idx_t total_rhs = n + 1;  // interpolation bases + the thermal basis
  const idx_t panel_width = std::max(1, options.rhs_panel);
  const idx_t num_panels = (total_rhs + panel_width - 1) / panel_width;
  obs::MetricRegistry::global().counter("rom.local.panels").add(num_panels);
  std::vector<Vec> basis(static_cast<std::size_t>(total_rhs));
#ifdef _OPENMP
#pragma omp parallel
#endif
  {
    Vec u_bc(part.num_bc), rhs_f(part.num_free);
    Vec rhs_panel, bc_panel, x_panel, chol_work;
#ifdef _OPENMP
#pragma omp for schedule(dynamic)
#endif
    for (idx_t panel = 0; panel < num_panels; ++panel) {
      MS_TRACE_SCOPE("rom.local.panel_solve");
      const idx_t i0 = panel * panel_width;
      const idx_t cols = std::min(panel_width, total_rhs - i0);
      rhs_panel.assign(static_cast<std::size_t>(part.num_free) * cols, 0.0);
      bc_panel.assign(static_cast<std::size_t>(part.num_bc) * cols, 0.0);
      for (idx_t col = 0; col < cols; ++col) {
        const idx_t i = i0 + col;
        if (i < n) {
          const idx_t m = i / 3;
          const int c = static_cast<int>(i % 3);
          // Boundary data: the i-th surface-node unit displacement
          // interpolated to every boundary mesh node (component c only).
          std::fill(u_bc.begin(), u_bc.end(), 0.0);
          for (idx_t b = 0; b < static_cast<idx_t>(bnodes.size()); ++b) {
            const double w = weights(b, m);
            if (w != 0.0) u_bc[part.bc_map[fem::dof_of(bnodes[b], c)]] = w;
          }
          a_fb.mul(u_bc, rhs_f);
          la::scale(rhs_f, -1.0);
          std::copy(u_bc.begin(), u_bc.end(),
                    bc_panel.begin() + static_cast<std::size_t>(col) * part.num_bc);
        } else {
          // Thermal basis: unit thermal load, zero boundary motion (Eq. 15).
          std::fill(rhs_f.begin(), rhs_f.end(), 0.0);
          for (idx_t d = 0; d < num_dofs; ++d) {
            if (part.free_map[d] >= 0) rhs_f[part.free_map[d]] = sys.thermal_load[d];
          }
        }
        std::copy(rhs_f.begin(), rhs_f.end(),
                  rhs_panel.begin() + static_cast<std::size_t>(col) * part.num_free);
      }
      x_panel.resize(static_cast<std::size_t>(part.num_free) * cols);
      chol.solve_multi_with(rhs_panel.data(), x_panel.data(), cols, chol_work);
      for (idx_t col = 0; col < cols; ++col) {
        const idx_t i = i0 + col;
        const double* alpha_f = x_panel.data() + static_cast<std::size_t>(col) * part.num_free;
        const double* u_col = bc_panel.data() + static_cast<std::size_t>(col) * part.num_bc;
        Vec f(num_dofs, 0.0);
        for (idx_t d = 0; d < num_dofs; ++d) {
          if (part.free_map[d] >= 0) {
            f[d] = alpha_f[part.free_map[d]];
          } else if (i < n) {
            f[d] = u_col[part.bc_map[d]];
          }
        }
        basis[i] = std::move(f);
      }
    }
  }

  RomModel model;
  model.kind = kind;
  model.geometry = geometry;
  model.mesh_spec = spec;
  model.nodes_x = options.nodes_x;
  model.nodes_y = options.nodes_y;
  model.nodes_z = options.nodes_z;
  model.samples_per_block = options.samples_per_block;
  model.fine_mesh_dofs = num_dofs;

  // Reduced element stiffness A_elem(i,j) = f_i^T A_local f_j (Eq. 18).
  // Column j touches only entries (i,j) with i <= j and their mirrors (j,i),
  // which are disjoint across distinct j, so columns parallelize cleanly.
  MS_TRACE_SCOPE("rom.local.reduce");
  model.element_stiffness = DenseMatrix(n, n);
#ifdef _OPENMP
#pragma omp parallel
#endif
  {
    Vec af(num_dofs);
#ifdef _OPENMP
#pragma omp for schedule(dynamic)
#endif
    for (idx_t j = 0; j < n; ++j) {
      sys.stiffness.mul(basis[j], af);
      for (idx_t i = 0; i <= j; ++i) {
        const double v = la::dot(basis[i], af);
        model.element_stiffness(i, j) = v;
        model.element_stiffness(j, i) = v;
      }
    }
  }
  {
    // Reaction-corrected element load b_i = f_i^T (b_local - A_local f_T)
    // per unit thermal load (see DESIGN.md note on Eq. 19). The uncorrected
    // variant (paper's literal Eq. 19) is kept as an ablation switch.
    Vec af(num_dofs);
    sys.stiffness.mul(basis[n], af);
    model.element_load.resize(n);
    Vec g(num_dofs);
    for (idx_t d = 0; d < num_dofs; ++d) {
      g[d] = sys.thermal_load[d] - (options.uncorrected_eq19_load ? 0.0 : af[d]);
    }
    for (idx_t i = 0; i < n; ++i) model.element_load[i] = la::dot(basis[i], g);
  }

  // Per-basis field samples on a horizontal cut plane (Eq. 15 applied at
  // reconstruction time). Thermal column includes the eigenstrain term.
  // `voigt_rows` selects which stress components are stored (num_rows per
  // sample point); displacements are sampled only when disp_out is non-null.
  const auto sample_plane = [&](double z, const int* voigt_rows, int num_rows, DenseMatrix& out,
                                DenseMatrix* disp_out) {
    const int s = options.samples_per_block;
    const fem::PlaneGrid grid = fem::make_block_plane_grid(geometry.pitch, 1, 1, s, z);
    const idx_t npts = static_cast<idx_t>(grid.size());
    out = DenseMatrix(num_rows * npts, n + 1);
    if (disp_out != nullptr) *disp_out = DenseMatrix(3 * npts, n + 1);

    const idx_t nxs = static_cast<idx_t>(grid.xs.size());
    // Each sample point writes its own disjoint rows, so points parallelize.
#ifdef _OPENMP
#pragma omp parallel for schedule(dynamic)
#endif
    for (idx_t pt = 0; pt < npts; ++pt) {
      const double x = grid.xs[pt % nxs];
      const double y = grid.ys[pt / nxs];
      const mesh::Point3 p{x, y, grid.z};
      const auto loc = block.locate(p);
      const mesh::Point3 lo = block.elem_min(loc.elem);
      const mesh::Point3 hi = block.elem_max(loc.elem);
      const fem::BMatrix b = fem::hex8_b_matrix(loc.xi, loc.eta, loc.zeta, hi.x - lo.x,
                                                hi.y - lo.y, hi.z - lo.z);
      const fem::Material& mat = materials.at(block.material(loc.elem));
      const auto d = mat.d_matrix();
      const auto sigma_th = mat.thermal_stress_unit();
      // db = D * B (6 x 24), shared across all bases at this point.
      std::array<std::array<double, kHexDofs>, kVoigt> db{};
      for (int r = 0; r < kVoigt; ++r) {
        for (int q = 0; q < kVoigt; ++q) {
          const double drq = d[r * kVoigt + q];
          if (drq == 0.0) continue;
          for (int cdof = 0; cdof < kHexDofs; ++cdof) db[r][cdof] += drq * b[q][cdof];
        }
      }
      const auto nodes = block.elem_nodes(loc.elem);
      const auto shapes = fem::hex8_shape(loc.xi, loc.eta, loc.zeta);
      for (idx_t col = 0; col <= n; ++col) {
        std::array<double, kHexDofs> fe;
        for (int a = 0; a < kHexNodes; ++a) {
          for (int c = 0; c < 3; ++c) fe[3 * a + c] = basis[col][fem::dof_of(nodes[a], c)];
        }
        for (int ri = 0; ri < num_rows; ++ri) {
          const int r = voigt_rows[ri];
          double sum = 0.0;
          for (int cdof = 0; cdof < kHexDofs; ++cdof) sum += db[r][cdof] * fe[cdof];
          if (col == n) sum -= sigma_th[r];  // thermal basis, unit load
          out(num_rows * pt + ri, col) = sum;
        }
        if (disp_out != nullptr) {
          for (int c = 0; c < 3; ++c) {
            double sum = 0.0;
            for (int a = 0; a < kHexNodes; ++a) sum += shapes[a] * fe[3 * a + c];
            (*disp_out)(3 * pt + c, col) = sum;
          }
        }
      }
    }
  };

  constexpr int kAllVoigt[kVoigt] = {0, 1, 2, 3, 4, 5};
  sample_plane(0.5 * geometry.height, kAllVoigt, kVoigt, model.stress_samples,
               options.sample_displacements ? &model.displacement_samples : nullptr);
  // Bump-plane tractions for the bump-shear fatigue channel: the centre of
  // the bottom element layer, z = h / (2 elems_z) — cell-centred so the
  // plane sits inside elements (never on a material interface) and clear of
  // the clamped z = 0 face.
  constexpr int kShearVoigt[2] = {3, 4};  // s_yz, s_xz
  sample_plane(0.5 * geometry.height / spec.elems_z, kShearVoigt, 2, model.bump_shear_samples,
               nullptr);

  model.local_stage_seconds = timer.seconds();
  MS_LOG_DEBUG("local stage (%s): %d fine dofs -> %d element dofs in %.2fs",
               kind == BlockKind::Tsv ? "tsv" : "dummy", static_cast<int>(num_dofs),
               static_cast<int>(n), model.local_stage_seconds);
  return model;
}

}  // namespace ms::rom
