#pragma once
// The result of one simulate(spec) query: headline metrics every scenario
// kind shares (peak stress, lifetime, wall time) plus the full legacy result
// payload — exactly one of the shared_ptr slots is set, matching the
// scenario's kind/analysis. Payloads are shared_ptr so ScenarioResults are
// cheap to collect, sort, and copy into Pareto tables.

#include <limits>
#include <memory>
#include <stdexcept>
#include <string>

#include "core/results.hpp"
#include "sweep/scenario_spec.hpp"

namespace ms::sweep {

struct ScenarioResult {
  std::string name;
  ScenarioKind kind = ScenarioKind::kArray;
  AnalysisKind analysis = AnalysisKind::kSteady;

  // --- headline metrics ------------------------------------------------------
  double peak_von_mises = 0.0;  ///< max of the reported mid-plane field [MPa]
  /// Fatigue runs only (NaN otherwise): log10 of the lifetime in trace
  /// passes (log10 keeps damage-free infinities plottable), the lifetime in
  /// seconds, and the governing stress channel.
  double min_life_log10 = std::numeric_limits<double>::quiet_NaN();
  double min_life_seconds = std::numeric_limits<double>::quiet_NaN();
  std::string life_channel;
  double simulate_seconds = 0.0;  ///< wall time of this query
  /// Set by SweepEngine::run: true when no other scenario in the sweep both
  /// stresses less and lives longer (the Pareto frontier of the table).
  bool pareto_optimal = false;

  // --- full payload (exactly one set) ---------------------------------------
  std::shared_ptr<core::ArrayResult> array;
  std::shared_ptr<core::ThermalArrayResult> thermal_array;
  std::shared_ptr<core::ThermalTransientArrayResult> transient_array;
  std::shared_ptr<core::ThermalSubmodelResult> thermal_submodel;
  std::shared_ptr<core::ThermalTransientSubmodelResult> transient_submodel;
  std::shared_ptr<core::FatigueResult> fatigue;

  /// The payload viewed as its common ArrayResult base (fields + stats).
  [[nodiscard]] const core::ArrayResult& base() const {
    if (array) return *array;
    if (thermal_array) return *thermal_array;
    if (transient_array) return *transient_array;
    if (thermal_submodel) return *thermal_submodel;
    if (transient_submodel) return *transient_submodel;
    if (fatigue) return *fatigue;
    throw std::logic_error("ScenarioResult '" + name + "' carries no payload");
  }
};

}  // namespace ms::sweep
