#pragma once
// The result of one simulate(spec) query: headline metrics every scenario
// kind shares (peak stress, lifetime, wall time) plus the full legacy result
// payload — exactly one of the shared_ptr slots is set, matching the
// scenario's kind/analysis. Payloads are shared_ptr so ScenarioResults are
// cheap to collect, sort, and copy into Pareto tables.

#include <limits>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/results.hpp"
#include "core/sim_error.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/query_scope.hpp"
#include "sweep/scenario_spec.hpp"

namespace ms::sweep {

/// Health of one scenario row in a sweep table. kOk and kDegraded rows carry
/// a full payload (degraded = a solver recovered via the diagonal shift-retry
/// ladder, so fields solve A + sigma*I rather than A); kFailed rows carry no
/// payload — only `error` — and are skipped by Pareto marking.
enum class ScenarioStatus { kOk, kDegraded, kFailed };

inline const char* to_string(ScenarioStatus status) {
  switch (status) {
    case ScenarioStatus::kOk: return "ok";
    case ScenarioStatus::kDegraded: return "degraded";
    case ScenarioStatus::kFailed: return "failed";
  }
  return "unknown";
}

/// The classified failure of a kFailed row (see core/sim_error.hpp).
struct ScenarioError {
  core::SimErrorCode code = core::SimErrorCode::kInternal;
  std::string stage;    ///< probe point that raised, e.g. "rom.global.solve"
  std::string message;  ///< human-readable detail
};

struct ScenarioResult {
  std::string name;
  ScenarioKind kind = ScenarioKind::kArray;
  AnalysisKind analysis = AnalysisKind::kSteady;

  // --- headline metrics ------------------------------------------------------
  double peak_von_mises = 0.0;  ///< max of the reported mid-plane field [MPa]
  /// Fatigue runs only (NaN otherwise): log10 of the lifetime in trace
  /// passes (log10 keeps damage-free infinities plottable), the lifetime in
  /// seconds, and the governing stress channel.
  double min_life_log10 = std::numeric_limits<double>::quiet_NaN();
  double min_life_seconds = std::numeric_limits<double>::quiet_NaN();
  std::string life_channel;
  double simulate_seconds = 0.0;  ///< wall time of this query
  /// Set by SweepEngine::run: true when no other scenario in the sweep both
  /// stresses less and lives longer (the Pareto frontier of the table).
  /// Failed rows never make the frontier.
  bool pareto_optimal = false;

  // --- health ---------------------------------------------------------------
  ScenarioStatus status = ScenarioStatus::kOk;
  ScenarioError error;            ///< meaningful only when failed()
  double diagonal_shift = 0.0;    ///< largest shift any solve in the query took

  [[nodiscard]] bool failed() const { return status == ScenarioStatus::kFailed; }

  // --- attributed observability ----------------------------------------------
  /// This query's own telemetry (cache hits/misses, factorizations, RHS
  /// count, stage durations, queue wait), filled by SweepEngine via the
  /// worker's obs::QueryScope. Empty when the query ran outside an engine.
  obs::QueryTelemetry telemetry;
  /// Flight-recorder snapshot of the worker's recent spans and log lines;
  /// captured only when status is degraded/failed and the engine's recorder
  /// is on — the post-mortem context for this row.
  std::vector<obs::FlightRecord> flight;

  // --- full payload (exactly one set) ---------------------------------------
  std::shared_ptr<core::ArrayResult> array;
  std::shared_ptr<core::ThermalArrayResult> thermal_array;
  std::shared_ptr<core::ThermalTransientArrayResult> transient_array;
  std::shared_ptr<core::ThermalSubmodelResult> thermal_submodel;
  std::shared_ptr<core::ThermalTransientSubmodelResult> transient_submodel;
  std::shared_ptr<core::FatigueResult> fatigue;

  /// The payload viewed as its common ArrayResult base (fields + stats).
  [[nodiscard]] const core::ArrayResult& base() const {
    if (array) return *array;
    if (thermal_array) return *thermal_array;
    if (transient_array) return *transient_array;
    if (thermal_submodel) return *thermal_submodel;
    if (transient_submodel) return *transient_submodel;
    if (fatigue) return *fatigue;
    throw std::logic_error("ScenarioResult '" + name + "' carries no payload");
  }
};

}  // namespace ms::sweep
