#pragma once
// The cached, thread-pooled query service over simulate(spec): hand it a
// vector of ScenarioSpecs and it runs them on a worker pool, sharing
//
//   * one rom::ModelCache — the one-shot local stage runs once per block
//     spec no matter how many scenarios (and threads) need the model,
//   * one la::FactorCache — scenarios whose global-stage (or conduction)
//     operator has identical values and boundary structure share a single
//     factorization; warm queries skip assembly and refactorization, and
//   * one demo PackageModel per padded window size — the coarse package
//     solve behind sub-model scenarios is resolved once and passed to every
//     scenario via the spec's payload slot.
//
// Every scenario still runs on a *fresh* MoreStressSimulator wired to the
// shared caches, so results are bit-identical to cold one-off runs of the
// legacy simulate_* entry points (the cache-correctness tests assert this).
// enqueue() returns a std::future for async collection; run() preserves
// input order and marks the (peak stress ↓, lifetime ↑) Pareto frontier.

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "core/cancel.hpp"
#include "core/config.hpp"
#include "la/factor_cache.hpp"
#include "obs/trace.hpp"
#include "rom/model_cache.hpp"
#include "sweep/scenario_result.hpp"
#include "sweep/scenario_spec.hpp"

namespace ms::sweep {

struct SweepOptions {
  /// Simulator configuration every scenario starts from (per-spec time_step
  /// overrides are applied on top by simulate()).
  core::SimulationConfig config = core::SimulationConfig::paper_default();
  /// Worker threads; 0 = std::thread::hardware_concurrency().
  int num_threads = 0;
  /// Share the factorization / ROM-model caches across scenarios. Off, every
  /// query runs cold (the baseline the cache-correctness tests compare to).
  bool share_caches = true;
  /// Optional on-disk ROM-model cache directory (empty = memory only).
  std::string cache_dir;
  /// Per-query wall-clock deadline [s]; 0 = none. Checked cooperatively at
  /// trace-step / panel / assembly boundaries — an expired query fails with
  /// kDeadlineExceeded, the rest of the batch keeps running.
  double deadline_seconds = 0.0;
  /// run() only: after more than this many scenario failures the whole batch
  /// is cancelled (remaining rows fail with kCancelled). -1 = unlimited.
  int max_failures = -1;
  /// Keep the bounded per-worker flight recorder running so degraded/failed
  /// rows carry a snapshot of the worker's recent spans and log lines.
  /// Process-wide toggle (obs::FlightRecorder) — the engine turns it ON at
  /// construction when set, and never turns it off (another engine or the
  /// CLI may still want it).
  bool flight_recorder = true;
};

/// Cost/cache telemetry of one run() call.
struct SweepStats {
  double wall_seconds = 0.0;
  int num_scenarios = 0;
  std::uint64_t factor_cache_hits = 0;
  std::uint64_t factor_cache_misses = 0;
  std::uint64_t model_cache_hits = 0;
  std::uint64_t model_cache_misses = 0;
  int num_failed = 0;    ///< rows with status kFailed
  int num_degraded = 0;  ///< rows with status kDegraded (shift-retry rescue)
};

class SweepEngine {
 public:
  explicit SweepEngine(SweepOptions options = {});
  ~SweepEngine();
  SweepEngine(const SweepEngine&) = delete;
  SweepEngine& operator=(const SweepEngine&) = delete;

  /// Queue one scenario; the future resolves when a worker finishes it (and
  /// carries any exception the query threw — the raw, unclassified error).
  /// A per-query deadline from options applies. Pareto flags are a property
  /// of a whole run() table, not of individual queries, so they stay false
  /// here.
  std::future<ScenarioResult> enqueue(ScenarioSpec spec);

  /// Run every spec and return results in input order. run() never throws on
  /// scenario errors: each failure is isolated into its own result row
  /// (status kFailed, error classified per core/sim_error.hpp) and every
  /// other scenario still completes — unless more than options.max_failures
  /// rows fail, which cancels the remainder of the batch. On return,
  /// pareto_optimal marks the frontier over (peak_von_mises minimized,
  /// min_life_log10 maximized; NaN lifetimes compare as -inf); failed rows
  /// are excluded as both candidates and dominators.
  std::vector<ScenarioResult> run(const std::vector<ScenarioSpec>& specs,
                                  SweepStats* stats = nullptr);

  [[nodiscard]] const SweepOptions& options() const { return options_; }
  [[nodiscard]] la::FactorCache& factor_cache() { return factor_cache_; }
  [[nodiscard]] rom::ModelCache& model_cache() { return model_cache_; }

 private:
  /// Shared state of one run() batch: the batch-wide cancel token (tripped
  /// by the failure budget) and the running failure count.
  struct BatchControl {
    core::CancelToken cancel = core::CancelToken::cancellable();
    std::atomic<int> failures{0};
  };

  /// Trace/queue context captured on the *enqueuing* thread. TLS never
  /// crosses a pool handoff (DESIGN.md "Query-scoped telemetry"), so the
  /// caller's innermost span id and the enqueue timestamp ride along with
  /// the task; the worker opens its root span with that remote parent and
  /// charges the queue wait to the query.
  struct QueryContext {
    obs::SpanId parent_span = 0;
    std::chrono::steady_clock::time_point enqueued;
  };
  static QueryContext capture_context();

  ScenarioResult query(ScenarioSpec spec, core::CancelToken cancel, const QueryContext& context,
                       obs::QueryTelemetry& telemetry);
  /// query() with run()'s failure isolation: catches, classifies, and folds
  /// any error into a kFailed row instead of letting it escape. The failed
  /// row keeps the partial telemetry and a flight-recorder snapshot.
  ScenarioResult guarded_query(ScenarioSpec spec,
                               const std::shared_ptr<BatchControl>& control,
                               const QueryContext& context);
  std::future<ScenarioResult> enqueue_task(std::packaged_task<ScenarioResult()> task);
  /// Demo package shared across sub-model scenarios of one padded size.
  std::shared_ptr<const chiplet::PackageModel> shared_package(int padded_blocks);
  void worker_loop();

  SweepOptions options_;
  la::FactorCache factor_cache_;
  rom::ModelCache model_cache_;

  std::mutex package_mutex_;
  std::map<int, std::shared_ptr<const chiplet::PackageModel>> packages_;

  std::mutex queue_mutex_;
  std::condition_variable queue_cv_;
  std::deque<std::packaged_task<ScenarioResult()>> queue_;  ///< FIFO (front = next)
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace ms::sweep
