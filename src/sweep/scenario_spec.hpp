#pragma once
// One declarative description of a MORE-Stress query — the unit of work of
// the sweep engine and the preferred argument of
// MoreStressSimulator::simulate(). A ScenarioSpec names the scenario kind
// (standalone array or embedded sub-model), the analysis (steady-state,
// transient envelope, or cycle-resolved fatigue), the load (uniform ΔT,
// steady power map, or time-domain power trace), and every knob the legacy
// simulate_* signatures took positionally — in one value type that is
//
//   * parseable from `key = value` config text (parse_scenarios below, with
//     line-numbered diagnostics and a [defaults] section),
//   * constructible programmatically (aggregate fields; optional payload
//     pointers carry pre-built PowerMaps / traces / packages past the
//     declarative schema), and
//   * serializable back to canonical config text (to_config_text) such that
//     parse(to_config_text(s)) == s round-trips exactly.
//
// simulate(spec) is bit-identical to the corresponding legacy simulate_*
// call — the equivalence locks in tests/sweep assert this per scenario kind.

#include <array>
#include <cmath>
#include <functional>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "chiplet/package_model.hpp"
#include "chiplet/submodel.hpp"
#include "core/config.hpp"
#include "core/options.hpp"
#include "rom/load_field.hpp"
#include "thermal/power_map.hpp"
#include "thermal/power_trace.hpp"

namespace ms::sweep {

enum class ScenarioKind : int {
  kArray = 0,     ///< standalone TSV array, clamped top/bottom (scenario 1/3)
  kSubmodel = 1,  ///< array embedded in a package, dummy-ring padded (scenario 2)
};

enum class AnalysisKind : int {
  kSteady = 0,     ///< one static solve (uniform ΔT or steady power map)
  kTransient = 1,  ///< θ-stepper march, stress at the peak envelope
  kFatigue = 2,    ///< cycle-resolved history -> rainflow -> lifetime
};

enum class LoadKind : int {
  kUniform = 0,  ///< scalar ΔT (or an explicit per-block field payload)
  kPower = 1,    ///< steady power map (background + optional hotspot)
  kTrace = 2,    ///< time-domain power trace (constant hold or square wave)
};

/// Declarative power-map synthesis: a uniform background density plus an
/// optional Gaussian hotspot. For array scenarios the map covers the array
/// footprint one tile per block; hotspot_x / hotspot_y are fractions of the
/// footprint (NaN = centre) and the hotspot sigma is in pitches. Sub-model
/// scenarios reuse the demo workload (chiplet::demo_power_map): `background`
/// over the die shadow plus a `hotspot_peak` hotspot over the window centre
/// (the positional fields are array-only and must stay at their defaults).
struct PowerSpec {
  double background = 0.0;             ///< W/mm^2
  double hotspot_peak = 0.0;           ///< W/mm^2 added at the hotspot centre
  double hotspot_sigma_pitches = 1.5;  ///< Gaussian sigma in units of pitch
  double hotspot_x = std::numeric_limits<double>::quiet_NaN();  ///< fraction of width
  double hotspot_y = std::numeric_limits<double>::quiet_NaN();  ///< fraction of height
};

/// Declarative power-trace synthesis. All times are SECONDS (the config-text
/// unit too — values round-trip through to_config_text exactly).
struct TraceSpec {
  std::string shape = "square";  ///< "constant" or "square"
  double period = 6e-5;          ///< square wave: one duty cycle [s]
  double duty = 0.5;             ///< square wave: high fraction, in (0, 1)
  int cycles = 1;                ///< square wave: repetitions
  double duration = 0.0;         ///< constant hold only [s] (square derives cycles*period)
};

struct ScenarioSpec {
  std::string name = "scenario";
  ScenarioKind kind = ScenarioKind::kArray;
  AnalysisKind analysis = AnalysisKind::kSteady;
  LoadKind load = LoadKind::kUniform;

  /// Array dimensions — the full array (kArray) or the inner TSV region
  /// (kSubmodel, padded by dummy_rings per side).
  int blocks_x = 8;
  int blocks_y = 8;
  int dummy_rings = 1;  ///< kSubmodel only
  /// 1-based index into chiplet::standard_locations (loc1..loc5) placing the
  /// padded window in the demo package. Ignored when a package payload with
  /// an explicit placement is supplied.
  int location = 1;

  /// Uniform-load ΔT [°C]; NaN defers to SimulationConfig::thermal_load.
  double delta_t = std::numeric_limits<double>::quiet_NaN();
  PowerSpec power;  ///< kPower / kTrace synthesis inputs
  TraceSpec trace;  ///< kTrace synthesis inputs
  /// Transient time step override [s]; 0 defers to
  /// config.coupling.transient.time_step. A non-zero override runs the query
  /// under an adjusted config (same caches), still bit-identical to a
  /// simulator constructed with that config.
  double time_step = 0.0;
  /// Recorded-history indices to fully reconstruct (kArray + kTransient only).
  std::vector<int> snapshot_steps;
  core::FatigueOptions fatigue;  ///< kFatigue knobs

  // --- programmatic payloads (no config-text form) ---------------------------
  // Pre-built inputs override the declarative synthesis above. Specs carrying
  // any of these cannot be serialized (to_config_text throws); the sweep
  // engine uses the package slot to share one demo package across scenarios.
  std::shared_ptr<const rom::BlockLoadField> load_field;   ///< kUniform override
  std::shared_ptr<const thermal::PowerMap> power_map;      ///< kPower override
  std::shared_ptr<const thermal::PowerTrace> power_trace;  ///< kTrace override
  std::shared_ptr<const chiplet::PackageModel> package;    ///< kSubmodel override
  /// Placement paired with `package`; blocks_x == 0 means "derive from
  /// standard_locations(location)".
  chiplet::SubmodelPlacement placement;
  /// kSubmodel + kUniform boundary data override (legacy simulate_submodel's
  /// displacement argument); null derives it from the (demo) package.
  std::function<std::array<double, 3>(const mesh::Point3&)> displacement;

  /// Throws std::invalid_argument naming the offending field when the
  /// combination is not runnable (e.g. a fatigue analysis with a uniform
  /// load, duty outside (0, 1), snapshot steps on a sub-model).
  void validate() const;

  [[nodiscard]] bool has_programmatic_payload() const;

  /// Canonical `[name]` config-text section: every declarative key, numbers
  /// printed with %.17g so parse(to_config_text(s)) == s exactly. Throws
  /// std::logic_error when a programmatic payload is attached.
  [[nodiscard]] std::string to_config_text() const;

  /// Declarative equality (payload slots must be pointer-equal); NaN == NaN
  /// so defaulted fields compare equal after a round-trip.
  bool operator==(const ScenarioSpec& other) const;
  bool operator!=(const ScenarioSpec& other) const { return !(*this == other); }
};

[[nodiscard]] const char* to_string(ScenarioKind kind);
[[nodiscard]] const char* to_string(AnalysisKind analysis);
[[nodiscard]] const char* to_string(LoadKind load);

/// Parse config text into specs. Grammar: `[section]` headers open one
/// scenario each (the section name becomes spec.name); `key = value` lines
/// set fields; `#`/`;` start comments; blank lines are ignored. A leading
/// `[defaults]` section sets the baseline every later scenario starts from.
/// Unknown keys, malformed values, and key-outside-section all throw
/// std::invalid_argument prefixed "line N: ...". Every parsed spec is
/// validate()d.
std::vector<ScenarioSpec> parse_scenarios(const std::string& text);

/// parse_scenarios over a file's contents; diagnostics are prefixed with the
/// path ("specs.txt line N: ...").
std::vector<ScenarioSpec> parse_scenario_file(const std::string& path);

/// Synthesize the declarative power map of an array scenario: one tile per
/// block at power.background, plus the Gaussian hotspot when hotspot_peak is
/// non-zero. Exposed so equivalence tests and benches can drive the legacy
/// entry points with bit-identical inputs.
[[nodiscard]] thermal::PowerMap make_power_map(const ScenarioSpec& spec,
                                               const core::SimulationConfig& config);

/// Sub-model variant: the demo workload over the package plan
/// (chiplet::demo_power_map with spec.power's background / hotspot_peak).
[[nodiscard]] thermal::PowerMap make_power_map(const ScenarioSpec& spec,
                                               const core::SimulationConfig& config,
                                               const chiplet::PackageGeometry& geometry,
                                               const chiplet::SubmodelPlacement& placement);

/// Synthesize the declarative trace over `active` (the scenario's power
/// map): a constant hold of trace.duration, or a square wave between an
/// all-idle map (same tiling, zero density) and `active`.
[[nodiscard]] thermal::PowerTrace make_power_trace(const ScenarioSpec& spec,
                                                   const thermal::PowerMap& active);

}  // namespace ms::sweep
