#include "sweep/scenario_spec.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace ms::sweep {

namespace {

[[noreturn]] void fail(int line, const std::string& message) {
  throw std::invalid_argument("line " + std::to_string(line) + ": " + message);
}

/// NaN-aware exact double compare: the round-trip lock needs NaN == NaN for
/// defaulted fields and bitwise equality everywhere else.
bool same(double a, double b) {
  if (std::isnan(a) && std::isnan(b)) return true;
  return a == b;
}

std::string trim(const std::string& s) {
  std::size_t b = 0, e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b])) != 0) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1])) != 0) --e;
  return s.substr(b, e - b);
}

/// %.17g: shortest text that reparses to the identical double.
std::string fmt(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

/// Numbers in a spec file must be finite: a literal `inf`/`nan` in the config
/// text is rejected at parse time (with the line number) instead of surfacing
/// queries later as a kNonFiniteField failure. `allow_nan` is set only for
/// the fields whose NaN default means "unset" (delta_t, power.hotspot_x/_y),
/// where an explicit `nan` restores the default; infinities are never legal.
double parse_double(const std::string& value, const std::string& key, int line,
                    bool allow_nan = false) {
  double v = 0.0;
  std::size_t used = 0;
  // fail() itself throws invalid_argument, so the diagnostics live outside
  // the catch that classifies std::stod's own errors.
  try {
    v = std::stod(value, &used);
  } catch (const std::invalid_argument&) {
    fail(line, "expected a number for " + key + ", got '" + value + "'");
  } catch (const std::out_of_range&) {
    fail(line, "number out of range for " + key + ": '" + value + "'");
  }
  if (used != value.size()) fail(line, "trailing characters in value '" + value + "' for " + key);
  if (std::isnan(v) && !allow_nan) {
    fail(line, "non-finite value '" + value + "' for " + key + " (nan is not a legal value here)");
  }
  if (std::isinf(v)) {
    fail(line, "non-finite value '" + value + "' for " + key + " (must be finite)");
  }
  return v;
}

int parse_int(const std::string& value, const std::string& key, int line) {
  try {
    std::size_t used = 0;
    const int v = std::stoi(value, &used);
    if (used != value.size()) fail(line, "trailing characters in value '" + value + "' for " + key);
    return v;
  } catch (const std::invalid_argument&) {
    fail(line, "expected an integer for " + key + ", got '" + value + "'");
  } catch (const std::out_of_range&) {
    fail(line, "integer out of range for " + key + ": '" + value + "'");
  }
}

ScenarioKind parse_kind(const std::string& value, int line) {
  if (value == "array") return ScenarioKind::kArray;
  if (value == "submodel") return ScenarioKind::kSubmodel;
  fail(line, "unknown kind '" + value + "' (expected array | submodel)");
}

AnalysisKind parse_analysis(const std::string& value, int line) {
  if (value == "steady") return AnalysisKind::kSteady;
  if (value == "transient") return AnalysisKind::kTransient;
  if (value == "fatigue") return AnalysisKind::kFatigue;
  fail(line, "unknown analysis '" + value + "' (expected steady | transient | fatigue)");
}

LoadKind parse_load(const std::string& value, int line) {
  if (value == "uniform") return LoadKind::kUniform;
  if (value == "power") return LoadKind::kPower;
  if (value == "trace") return LoadKind::kTrace;
  fail(line, "unknown load '" + value + "' (expected uniform | power | trace)");
}

std::vector<int> parse_int_list(const std::string& value, const std::string& key, int line) {
  std::vector<int> out;
  std::stringstream ss(value);
  std::string item;
  while (std::getline(ss, item, ',')) {
    item = trim(item);
    if (item.empty()) fail(line, "empty entry in list for " + key);
    out.push_back(parse_int(item, key, line));
  }
  return out;
}

/// Apply one `key = value` line to `spec`. Every declarative field of the
/// schema is reachable here; to_config_text emits exactly these keys.
void apply_key(ScenarioSpec& spec, const std::string& key, const std::string& value, int line) {
  if (key == "kind") {
    spec.kind = parse_kind(value, line);
  } else if (key == "analysis") {
    spec.analysis = parse_analysis(value, line);
  } else if (key == "load") {
    spec.load = parse_load(value, line);
  } else if (key == "blocks_x") {
    spec.blocks_x = parse_int(value, key, line);
  } else if (key == "blocks_y") {
    spec.blocks_y = parse_int(value, key, line);
  } else if (key == "dummy_rings") {
    spec.dummy_rings = parse_int(value, key, line);
  } else if (key == "location") {
    spec.location = parse_int(value, key, line);
  } else if (key == "delta_t") {
    spec.delta_t = parse_double(value, key, line, /*allow_nan=*/true);
  } else if (key == "time_step") {
    spec.time_step = parse_double(value, key, line);
  } else if (key == "snapshot_steps") {
    spec.snapshot_steps = parse_int_list(value, key, line);
  } else if (key == "power.background") {
    spec.power.background = parse_double(value, key, line);
  } else if (key == "power.hotspot_peak") {
    spec.power.hotspot_peak = parse_double(value, key, line);
  } else if (key == "power.hotspot_sigma_pitches") {
    spec.power.hotspot_sigma_pitches = parse_double(value, key, line);
  } else if (key == "power.hotspot_x") {
    spec.power.hotspot_x = parse_double(value, key, line, /*allow_nan=*/true);
  } else if (key == "power.hotspot_y") {
    spec.power.hotspot_y = parse_double(value, key, line, /*allow_nan=*/true);
  } else if (key == "trace.shape") {
    if (value != "constant" && value != "square") {
      fail(line, "unknown trace.shape '" + value + "' (expected constant | square)");
    }
    spec.trace.shape = value;
  } else if (key == "trace.period") {
    spec.trace.period = parse_double(value, key, line);
  } else if (key == "trace.duty") {
    spec.trace.duty = parse_double(value, key, line);
  } else if (key == "trace.cycles") {
    spec.trace.cycles = parse_int(value, key, line);
  } else if (key == "trace.duration") {
    spec.trace.duration = parse_double(value, key, line);
  } else if (key == "fatigue.record_stride") {
    spec.fatigue.record_stride = parse_int(value, key, line);
  } else if (key == "fatigue.range_bins") {
    spec.fatigue.range_bins = parse_int(value, key, line);
  } else if (key == "fatigue.mean_bins") {
    spec.fatigue.mean_bins = parse_int(value, key, line);
  } else if (key == "fatigue.solder_shear_modulus") {
    spec.fatigue.solder_shear_modulus = parse_double(value, key, line);
  } else if (key == "fatigue.solder_mean_temperature") {
    spec.fatigue.solder_mean_temperature = parse_double(value, key, line);
  } else if (key == "fatigue.solder_shear_modulus_slope") {
    spec.fatigue.solder_shear_modulus_slope = parse_double(value, key, line);
  } else if (key == "fatigue.cycles_per_day") {
    spec.fatigue.cycles_per_day = parse_double(value, key, line);
  } else {
    fail(line, "unknown key '" + key + "'");
  }
}

}  // namespace

const char* to_string(ScenarioKind kind) {
  return kind == ScenarioKind::kArray ? "array" : "submodel";
}

const char* to_string(AnalysisKind analysis) {
  switch (analysis) {
    case AnalysisKind::kSteady: return "steady";
    case AnalysisKind::kTransient: return "transient";
    case AnalysisKind::kFatigue: return "fatigue";
  }
  return "?";
}

const char* to_string(LoadKind load) {
  switch (load) {
    case LoadKind::kUniform: return "uniform";
    case LoadKind::kPower: return "power";
    case LoadKind::kTrace: return "trace";
  }
  return "?";
}

bool ScenarioSpec::has_programmatic_payload() const {
  return load_field != nullptr || power_map != nullptr || power_trace != nullptr ||
         package != nullptr || static_cast<bool>(displacement) || placement.blocks_x != 0 ||
         placement.blocks_y != 0;
}

void ScenarioSpec::validate() const {
  const auto reject = [this](const std::string& message) {
    throw std::invalid_argument("scenario '" + name + "': " + message);
  };
  if (blocks_x < 1 || blocks_y < 1) reject("blocks_x / blocks_y must be >= 1");
  if (kind == ScenarioKind::kSubmodel) {
    if (dummy_rings < 0) reject("dummy_rings must be >= 0");
    if (location < 1 || location > 5) reject("location must be in 1..5 (loc1..loc5)");
  }
  switch (analysis) {
    case AnalysisKind::kSteady:
      if (load == LoadKind::kTrace) reject("steady analysis takes load = uniform | power");
      break;
    case AnalysisKind::kTransient:
    case AnalysisKind::kFatigue:
      if (load != LoadKind::kTrace) {
        reject(std::string(to_string(analysis)) + " analysis requires load = trace");
      }
      break;
  }
  if (load == LoadKind::kTrace && power_trace == nullptr) {
    if (trace.shape == "square") {
      if (trace.period <= 0.0) reject("trace.period must be > 0");
      if (trace.duty <= 0.0 || trace.duty >= 1.0) reject("trace.duty must be in (0, 1)");
      if (trace.cycles < 1) reject("trace.cycles must be >= 1");
    } else if (trace.shape == "constant") {
      if (trace.duration <= 0.0) reject("trace.duration must be > 0 for a constant trace");
    } else {
      reject("unknown trace.shape '" + trace.shape + "'");
    }
  }
  if (!snapshot_steps.empty() &&
      (kind != ScenarioKind::kArray || analysis != AnalysisKind::kTransient)) {
    reject("snapshot_steps apply to array transient scenarios only");
  }
  if (time_step < 0.0) reject("time_step must be >= 0 (0 = config default)");
  if (kind == ScenarioKind::kSubmodel && load != LoadKind::kUniform &&
      (!std::isnan(power.hotspot_x) || !std::isnan(power.hotspot_y))) {
    reject("power.hotspot_x/y are array-only (sub-model hotspots sit at the window centre)");
  }
}

std::string ScenarioSpec::to_config_text() const {
  if (has_programmatic_payload()) {
    throw std::logic_error("scenario '" + name +
                           "': programmatic payloads have no config-text form");
  }
  std::ostringstream out;
  out << "[" << name << "]\n";
  out << "kind = " << to_string(kind) << "\n";
  out << "analysis = " << to_string(analysis) << "\n";
  out << "load = " << to_string(load) << "\n";
  out << "blocks_x = " << blocks_x << "\n";
  out << "blocks_y = " << blocks_y << "\n";
  out << "dummy_rings = " << dummy_rings << "\n";
  out << "location = " << location << "\n";
  out << "delta_t = " << fmt(delta_t) << "\n";
  out << "time_step = " << fmt(time_step) << "\n";
  if (!snapshot_steps.empty()) {
    out << "snapshot_steps = ";
    for (std::size_t i = 0; i < snapshot_steps.size(); ++i) {
      out << (i != 0 ? "," : "") << snapshot_steps[i];
    }
    out << "\n";
  }
  out << "power.background = " << fmt(power.background) << "\n";
  out << "power.hotspot_peak = " << fmt(power.hotspot_peak) << "\n";
  out << "power.hotspot_sigma_pitches = " << fmt(power.hotspot_sigma_pitches) << "\n";
  out << "power.hotspot_x = " << fmt(power.hotspot_x) << "\n";
  out << "power.hotspot_y = " << fmt(power.hotspot_y) << "\n";
  out << "trace.shape = " << trace.shape << "\n";
  out << "trace.period = " << fmt(trace.period) << "\n";
  out << "trace.duty = " << fmt(trace.duty) << "\n";
  out << "trace.cycles = " << trace.cycles << "\n";
  out << "trace.duration = " << fmt(trace.duration) << "\n";
  out << "fatigue.record_stride = " << fatigue.record_stride << "\n";
  out << "fatigue.range_bins = " << fatigue.range_bins << "\n";
  out << "fatigue.mean_bins = " << fatigue.mean_bins << "\n";
  out << "fatigue.solder_shear_modulus = " << fmt(fatigue.solder_shear_modulus) << "\n";
  out << "fatigue.solder_mean_temperature = " << fmt(fatigue.solder_mean_temperature) << "\n";
  out << "fatigue.solder_shear_modulus_slope = " << fmt(fatigue.solder_shear_modulus_slope)
      << "\n";
  out << "fatigue.cycles_per_day = " << fmt(fatigue.cycles_per_day) << "\n";
  return out.str();
}

bool ScenarioSpec::operator==(const ScenarioSpec& other) const {
  return name == other.name && kind == other.kind && analysis == other.analysis &&
         load == other.load && blocks_x == other.blocks_x && blocks_y == other.blocks_y &&
         dummy_rings == other.dummy_rings && location == other.location &&
         same(delta_t, other.delta_t) && same(time_step, other.time_step) &&
         snapshot_steps == other.snapshot_steps &&
         same(power.background, other.power.background) &&
         same(power.hotspot_peak, other.power.hotspot_peak) &&
         same(power.hotspot_sigma_pitches, other.power.hotspot_sigma_pitches) &&
         same(power.hotspot_x, other.power.hotspot_x) &&
         same(power.hotspot_y, other.power.hotspot_y) && trace.shape == other.trace.shape &&
         same(trace.period, other.trace.period) && same(trace.duty, other.trace.duty) &&
         trace.cycles == other.trace.cycles && same(trace.duration, other.trace.duration) &&
         fatigue.record_stride == other.fatigue.record_stride &&
         fatigue.range_bins == other.fatigue.range_bins &&
         fatigue.mean_bins == other.fatigue.mean_bins &&
         same(fatigue.solder_shear_modulus, other.fatigue.solder_shear_modulus) &&
         same(fatigue.solder_mean_temperature, other.fatigue.solder_mean_temperature) &&
         same(fatigue.solder_shear_modulus_slope, other.fatigue.solder_shear_modulus_slope) &&
         same(fatigue.cycles_per_day, other.fatigue.cycles_per_day) &&
         load_field == other.load_field && power_map == other.power_map &&
         power_trace == other.power_trace && package == other.package;
}

std::vector<ScenarioSpec> parse_scenarios(const std::string& text) {
  std::vector<ScenarioSpec> specs;
  ScenarioSpec defaults;
  bool in_defaults = false;
  bool have_section = false;

  std::stringstream stream(text);
  std::string raw;
  int line = 0;
  while (std::getline(stream, raw)) {
    ++line;
    // Strip comments (# or ;) and whitespace.
    const std::size_t comment = raw.find_first_of("#;");
    std::string content = trim(comment == std::string::npos ? raw : raw.substr(0, comment));
    if (content.empty()) continue;

    if (content.front() == '[') {
      if (content.back() != ']') fail(line, "unterminated section header " + content);
      const std::string section = trim(content.substr(1, content.size() - 2));
      if (section.empty()) fail(line, "empty section name");
      if (section == "defaults") {
        if (have_section) fail(line, "[defaults] must precede every scenario section");
        in_defaults = true;
        continue;
      }
      in_defaults = false;
      have_section = true;
      specs.push_back(defaults);
      specs.back().name = section;
      continue;
    }

    const std::size_t eq = content.find('=');
    if (eq == std::string::npos) fail(line, "expected 'key = value', got '" + content + "'");
    const std::string key = trim(content.substr(0, eq));
    const std::string value = trim(content.substr(eq + 1));
    if (key.empty()) fail(line, "empty key");
    if (value.empty()) fail(line, "empty value for key '" + key + "'");
    if (in_defaults) {
      apply_key(defaults, key, value, line);
    } else if (!specs.empty()) {
      apply_key(specs.back(), key, value, line);
    } else {
      fail(line, "key '" + key + "' outside any [scenario] section");
    }
  }

  for (const ScenarioSpec& spec : specs) spec.validate();
  return specs;
}

std::vector<ScenarioSpec> parse_scenario_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::invalid_argument("cannot open scenario file: " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  try {
    return parse_scenarios(buffer.str());
  } catch (const std::invalid_argument& e) {
    throw std::invalid_argument(path + " " + e.what());
  }
}

thermal::PowerMap make_power_map(const ScenarioSpec& spec,
                                 const core::SimulationConfig& config) {
  const double pitch = config.geometry.pitch;
  thermal::PowerMap map = thermal::PowerMap::per_block(spec.blocks_x, spec.blocks_y, pitch,
                                                       spec.power.background);
  if (spec.power.hotspot_peak != 0.0) {
    const double cx =
        (std::isnan(spec.power.hotspot_x) ? 0.5 : spec.power.hotspot_x) * map.width();
    const double cy =
        (std::isnan(spec.power.hotspot_y) ? 0.5 : spec.power.hotspot_y) * map.height();
    map.add_gaussian_hotspot(cx, cy, spec.power.hotspot_sigma_pitches * pitch,
                             spec.power.hotspot_peak);
  }
  return map;
}

thermal::PowerMap make_power_map(const ScenarioSpec& spec, const core::SimulationConfig& config,
                                 const chiplet::PackageGeometry& geometry,
                                 const chiplet::SubmodelPlacement& placement) {
  return chiplet::demo_power_map(geometry, placement, config.geometry.pitch,
                                 spec.power.background, spec.power.hotspot_peak);
}

thermal::PowerTrace make_power_trace(const ScenarioSpec& spec, const thermal::PowerMap& active) {
  if (spec.trace.shape == "constant") {
    return thermal::PowerTrace::constant(active, spec.trace.duration);
  }
  // Square wave between all-idle (same tiling, zero density) and the active
  // map: the standard duty-cycled accelerator workload.
  const thermal::PowerMap idle(active.tiles_x(), active.tiles_y(), active.width(),
                               active.height(), 0.0);
  return thermal::PowerTrace::square_wave(idle, active, spec.trace.period, spec.trace.duty,
                                          spec.trace.cycles);
}

}  // namespace ms::sweep
