#include "sweep/sweep_engine.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "core/simulator.hpp"
#include "obs/metrics.hpp"
#include "util/log.hpp"
#include "util/timer.hpp"

namespace ms::sweep {

SweepEngine::SweepEngine(SweepOptions options) : options_(std::move(options)) {
  int threads = options_.num_threads;
  if (threads <= 0) threads = static_cast<int>(std::thread::hardware_concurrency());
  if (threads < 1) threads = 1;
  workers_.reserve(static_cast<std::size_t>(threads));
  for (int t = 0; t < threads; ++t) {
    workers_.emplace_back([this] { worker_loop(); });
  }
  obs::MetricRegistry::global().gauge("sweep.num_threads").set(static_cast<double>(threads));
}

SweepEngine::~SweepEngine() {
  {
    const std::lock_guard<std::mutex> lock(queue_mutex_);
    stopping_ = true;
  }
  queue_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void SweepEngine::worker_loop() {
  while (true) {
    std::packaged_task<ScenarioResult()> task;
    {
      std::unique_lock<std::mutex> lock(queue_mutex_);
      queue_cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ with a drained queue
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();  // exceptions land in the task's future
  }
}

std::shared_ptr<const chiplet::PackageModel> SweepEngine::shared_package(int padded_blocks) {
  const std::lock_guard<std::mutex> lock(package_mutex_);
  auto it = packages_.find(padded_blocks);
  if (it != packages_.end()) return it->second;
  // Built under the lock: concurrent workers needing the same package wait
  // rather than duplicating a coarse FEM solve; distinct sizes are rare
  // enough that serializing them is cheaper than a single-flight slot here.
  const chiplet::PackageGeometry geometry = chiplet::demo_package_geometry(
      options_.config.geometry.pitch, padded_blocks, options_.config.geometry.height);
  auto package = std::make_shared<const chiplet::PackageModel>(
      geometry, chiplet::demo_coarse_spec(), options_.config.thermal_load);
  packages_.emplace(padded_blocks, package);
  return package;
}

ScenarioResult SweepEngine::query(ScenarioSpec spec) {
  // Fresh simulator per scenario — only the caches are shared, so every
  // result is bit-identical to a cold one-off run of the same spec.
  core::MoreStressSimulator simulator(options_.config);
  if (options_.share_caches) {
    simulator.set_factor_cache(&factor_cache_);
    simulator.set_model_cache(&model_cache_);
  }
  if (!options_.cache_dir.empty()) simulator.set_cache_directory(options_.cache_dir);
  if (spec.kind == ScenarioKind::kSubmodel && spec.package == nullptr &&
      options_.share_caches) {
    const int padded = std::max(spec.blocks_x, spec.blocks_y) + 2 * spec.dummy_rings;
    spec.package = shared_package(padded);
  }
  return simulator.simulate(spec);
}

std::future<ScenarioResult> SweepEngine::enqueue(ScenarioSpec spec) {
  std::packaged_task<ScenarioResult()> task(
      [this, spec = std::move(spec)]() mutable { return query(std::move(spec)); });
  std::future<ScenarioResult> future = task.get_future();
  {
    const std::lock_guard<std::mutex> lock(queue_mutex_);
    queue_.push_back(std::move(task));
  }
  queue_cv_.notify_one();
  return future;
}

namespace {

/// Lifetime axis of the Pareto order: fatigue results use log10 lifetime,
/// everything else compares as -inf (a steady scenario never dominates a
/// fatigue scenario on life).
double life_of(const ScenarioResult& r) {
  return std::isnan(r.min_life_log10) ? -std::numeric_limits<double>::infinity()
                                      : r.min_life_log10;
}

void mark_pareto(std::vector<ScenarioResult>& results) {
  for (ScenarioResult& candidate : results) {
    bool dominated = false;
    for (const ScenarioResult& other : results) {
      if (&other == &candidate) continue;
      const bool no_worse = other.peak_von_mises <= candidate.peak_von_mises &&
                            life_of(other) >= life_of(candidate);
      const bool better = other.peak_von_mises < candidate.peak_von_mises ||
                          life_of(other) > life_of(candidate);
      if (no_worse && better) {
        dominated = true;
        break;
      }
    }
    candidate.pareto_optimal = !dominated;
  }
}

}  // namespace

std::vector<ScenarioResult> SweepEngine::run(const std::vector<ScenarioSpec>& specs,
                                             SweepStats* stats) {
  util::WallTimer timer;
  const std::uint64_t factor_hits0 = factor_cache_.hits();
  const std::uint64_t factor_misses0 = factor_cache_.misses();
  const std::uint64_t model_hits0 = model_cache_.hits();
  const std::uint64_t model_misses0 = model_cache_.misses();

  std::vector<std::future<ScenarioResult>> futures;
  futures.reserve(specs.size());
  for (const ScenarioSpec& spec : specs) futures.push_back(enqueue(spec));

  std::vector<ScenarioResult> results;
  results.reserve(specs.size());
  for (std::future<ScenarioResult>& future : futures) results.push_back(future.get());
  mark_pareto(results);

  if (stats != nullptr) {
    stats->wall_seconds = timer.seconds();
    stats->num_scenarios = static_cast<int>(specs.size());
    stats->factor_cache_hits = factor_cache_.hits() - factor_hits0;
    stats->factor_cache_misses = factor_cache_.misses() - factor_misses0;
    stats->model_cache_hits = model_cache_.hits() - model_hits0;
    stats->model_cache_misses = model_cache_.misses() - model_misses0;
  }
  obs::MetricRegistry::global().histogram("sweep.run_seconds").record(timer.seconds());
  MS_LOG_INFO("sweep: %d scenarios in %.3f s (factor cache %llu hit / %llu miss)",
              static_cast<int>(specs.size()), timer.seconds(),
              static_cast<unsigned long long>(factor_cache_.hits() - factor_hits0),
              static_cast<unsigned long long>(factor_cache_.misses() - factor_misses0));
  return results;
}

}  // namespace ms::sweep
