#include "sweep/sweep_engine.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "core/sim_error.hpp"
#include "core/simulator.hpp"
#include "la/errors.hpp"
#include "obs/event_log.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"
#include "obs/query_scope.hpp"
#include "util/fault_injector.hpp"
#include "util/log.hpp"
#include "util/timer.hpp"

namespace ms::sweep {
namespace {

void emit_scenario_event(const char* type, const ScenarioSpec& spec) {
  obs::EventLog::emit(type, [&spec](util::JsonObject& e) {
    e.set("scenario", spec.name)
        .set("kind", to_string(spec.kind))
        .set("analysis", to_string(spec.analysis));
  });
}

}  // namespace

SweepEngine::SweepEngine(SweepOptions options) : options_(std::move(options)) {
  if (options_.flight_recorder) obs::FlightRecorder::set_enabled(true);
  int threads = options_.num_threads;
  if (threads <= 0) threads = static_cast<int>(std::thread::hardware_concurrency());
  if (threads < 1) threads = 1;
  workers_.reserve(static_cast<std::size_t>(threads));
  for (int t = 0; t < threads; ++t) {
    workers_.emplace_back([this] { worker_loop(); });
  }
  obs::MetricRegistry::global().gauge("sweep.num_threads").set(static_cast<double>(threads));
}

SweepEngine::~SweepEngine() {
  {
    const std::lock_guard<std::mutex> lock(queue_mutex_);
    stopping_ = true;
  }
  queue_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void SweepEngine::worker_loop() {
  while (true) {
    std::packaged_task<ScenarioResult()> task;
    {
      std::unique_lock<std::mutex> lock(queue_mutex_);
      queue_cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ with a drained queue
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();  // exceptions land in the task's future
  }
}

std::shared_ptr<const chiplet::PackageModel> SweepEngine::shared_package(int padded_blocks) {
  const std::lock_guard<std::mutex> lock(package_mutex_);
  auto it = packages_.find(padded_blocks);
  if (it != packages_.end()) return it->second;
  // Built under the lock: concurrent workers needing the same package wait
  // rather than duplicating a coarse FEM solve; distinct sizes are rare
  // enough that serializing them is cheaper than a single-flight slot here.
  const chiplet::PackageGeometry geometry = chiplet::demo_package_geometry(
      options_.config.geometry.pitch, padded_blocks, options_.config.geometry.height);
  auto package = std::make_shared<const chiplet::PackageModel>(
      geometry, chiplet::demo_coarse_spec(), options_.config.thermal_load);
  packages_.emplace(padded_blocks, package);
  return package;
}

SweepEngine::QueryContext SweepEngine::capture_context() {
  QueryContext context;
  context.parent_span = obs::current_span_id();
  context.enqueued = std::chrono::steady_clock::now();
  return context;
}

ScenarioResult SweepEngine::query(ScenarioSpec spec, core::CancelToken cancel,
                                  const QueryContext& context,
                                  obs::QueryTelemetry& telemetry) {
  // Instrumentation envelope, all on the worker thread: charge the queue
  // wait, open the query's root span under the *enqueuer's* span (the remote
  // parent renders as a flow arrow), install the attribution sink, and start
  // this query's flight-recorder window. Everything simulate() records below
  // lands in `telemetry` — which the caller still owns if we throw.
  const double queue_wait =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - context.enqueued)
          .count();
  obs::MetricRegistry::global().histogram("sweep.queue_wait_seconds").record(queue_wait);
  obs::ScopedSpan span("sweep.query", context.parent_span);
  obs::QueryScope scope(telemetry);
  obs::QueryScope::observe_seconds("queue_wait_seconds", queue_wait);
  if (obs::FlightRecorder::enabled()) obs::FlightRecorder::clear();
  emit_scenario_event("scenario.started", spec);

  cancel.check("sweep.query");
  if (util::FaultInjector::enabled()) util::FaultInjector::global().fire("sweep.worker");
  // Fresh simulator per scenario — only the caches are shared, so every
  // result is bit-identical to a cold one-off run of the same spec.
  core::MoreStressSimulator simulator(options_.config);
  simulator.set_cancel_token(std::move(cancel));
  if (options_.share_caches) {
    simulator.set_factor_cache(&factor_cache_);
    simulator.set_model_cache(&model_cache_);
  }
  if (!options_.cache_dir.empty()) simulator.set_cache_directory(options_.cache_dir);
  if (spec.kind == ScenarioKind::kSubmodel && spec.package == nullptr &&
      options_.share_caches) {
    const int padded = std::max(spec.blocks_x, spec.blocks_y) + 2 * spec.dummy_rings;
    spec.package = shared_package(padded);
  }
  ScenarioResult result = simulator.simulate(spec);

  result.telemetry = telemetry;  // the sink has everything simulate recorded
  if (result.status == ScenarioStatus::kDegraded && obs::FlightRecorder::enabled()) {
    result.flight = obs::FlightRecorder::snapshot();
  }
  if (obs::EventLog::enabled()) {
    const std::int64_t cache_hits =
        telemetry.count("factor_cache.hits") + telemetry.count("model_cache.hits");
    if (cache_hits > 0) {
      obs::EventLog::emit("scenario.cache_hit", [&](util::JsonObject& e) {
        e.set("scenario", spec.name)
            .set("factor_cache_hits", telemetry.count("factor_cache.hits"))
            .set("model_cache_hits", telemetry.count("model_cache.hits"));
      });
    }
    if (result.status == ScenarioStatus::kDegraded) {
      obs::EventLog::emit("scenario.degraded", [&](util::JsonObject& e) {
        e.set("scenario", spec.name).set("diagonal_shift", result.diagonal_shift);
      });
    }
    obs::EventLog::emit("scenario.completed", [&](util::JsonObject& e) {
      e.set("scenario", spec.name)
          .set("status", to_string(result.status))
          .set("simulate_seconds", result.simulate_seconds)
          .set("queue_wait_seconds", queue_wait)
          .set("peak_von_mises", result.peak_von_mises);
    });
  }
  return result;
}

ScenarioResult SweepEngine::guarded_query(ScenarioSpec spec,
                                          const std::shared_ptr<BatchControl>& control,
                                          const QueryContext& context) {
  // Failures are isolated per row; the catch chain classifies each error
  // into the taxonomy of core/sim_error.hpp so callers can act on the code
  // without string-matching what().
  obs::QueryTelemetry telemetry;
  ScenarioError error;
  try {
    // The child token inherits the batch's cancel flag and adds this query's
    // own deadline, so a slow scenario times out without killing the batch.
    return query(spec, control->cancel.child(options_.deadline_seconds), context, telemetry);
  } catch (const core::SimError& e) {
    error.code = e.code();
    error.stage = e.stage();
    error.message = e.what();
  } catch (const la::NotPositiveDefiniteError& e) {
    error.code = core::SimErrorCode::kNotPositiveDefinite;
    error.stage = "la.factor";
    error.message = e.what();
  } catch (const util::InjectedFault& e) {
    error.code = core::SimErrorCode::kFaultInjected;
    error.stage = e.site();
    error.message = e.what();
  } catch (const std::invalid_argument& e) {
    error.code = core::SimErrorCode::kInvalidSpec;
    error.stage = "sweep.spec";
    error.message = e.what();
  } catch (const std::exception& e) {
    error.code = core::SimErrorCode::kInternal;
    error.stage = "sweep.query";
    error.message = e.what();
  }

  ScenarioResult failed;
  failed.name = spec.name;
  failed.kind = spec.kind;
  failed.analysis = spec.analysis;
  failed.status = ScenarioStatus::kFailed;
  failed.error = std::move(error);
  obs::MetricRegistry::global().counter("sweep.scenarios_failed").add(1);
  MS_LOG_WARN("sweep: scenario '%s' failed [%s] at %s: %s", failed.name.c_str(),
              core::to_string(failed.error.code), failed.error.stage.c_str(),
              failed.error.message.c_str());
  // Whatever the query attributed before it threw, plus the worker's recent
  // span/log history: the post-mortem that ships with the row. Snapshot
  // *after* the warn above so the failure's own log line is in the ring.
  failed.telemetry = std::move(telemetry);
  if (obs::FlightRecorder::enabled()) failed.flight = obs::FlightRecorder::snapshot();
  obs::EventLog::emit("scenario.failed", [&failed](util::JsonObject& e) {
    e.set("scenario", failed.name)
        .set("code", core::to_string(failed.error.code))
        .set("stage", failed.error.stage)
        .set("message", failed.error.message);
  });

  // Trip the batch once the failure budget is spent; in-flight and queued
  // scenarios then fail fast with kCancelled at their next check point.
  const int failures = control->failures.fetch_add(1, std::memory_order_acq_rel) + 1;
  if (options_.max_failures >= 0 && failures > options_.max_failures) {
    control->cancel.request_cancel();
  }
  return failed;
}

std::future<ScenarioResult> SweepEngine::enqueue_task(
    std::packaged_task<ScenarioResult()> task) {
  std::future<ScenarioResult> future = task.get_future();
  {
    const std::lock_guard<std::mutex> lock(queue_mutex_);
    queue_.push_back(std::move(task));
  }
  queue_cv_.notify_one();
  return future;
}

std::future<ScenarioResult> SweepEngine::enqueue(ScenarioSpec spec) {
  // A standalone query gets its own deadline but no batch control: the
  // future carries the raw exception, exactly as before the taxonomy.
  core::CancelToken cancel = options_.deadline_seconds > 0.0
                                 ? core::CancelToken::with_deadline(options_.deadline_seconds)
                                 : core::CancelToken();
  const QueryContext context = capture_context();
  emit_scenario_event("scenario.enqueued", spec);
  std::packaged_task<ScenarioResult()> task(
      [this, spec = std::move(spec), cancel = std::move(cancel), context]() mutable {
        obs::QueryTelemetry telemetry;
        return query(std::move(spec), std::move(cancel), context, telemetry);
      });
  return enqueue_task(std::move(task));
}

namespace {

/// Lifetime axis of the Pareto order: fatigue results use log10 lifetime,
/// everything else compares as -inf (a steady scenario never dominates a
/// fatigue scenario on life).
double life_of(const ScenarioResult& r) {
  return std::isnan(r.min_life_log10) ? -std::numeric_limits<double>::infinity()
                                      : r.min_life_log10;
}

void mark_pareto(std::vector<ScenarioResult>& results) {
  for (ScenarioResult& candidate : results) {
    // Failed rows carry no fields: they neither join the frontier nor
    // dominate anyone (their zero peak stress would otherwise beat all).
    if (candidate.failed()) {
      candidate.pareto_optimal = false;
      continue;
    }
    bool dominated = false;
    for (const ScenarioResult& other : results) {
      if (&other == &candidate || other.failed()) continue;
      const bool no_worse = other.peak_von_mises <= candidate.peak_von_mises &&
                            life_of(other) >= life_of(candidate);
      const bool better = other.peak_von_mises < candidate.peak_von_mises ||
                          life_of(other) > life_of(candidate);
      if (no_worse && better) {
        dominated = true;
        break;
      }
    }
    candidate.pareto_optimal = !dominated;
  }
}

}  // namespace

std::vector<ScenarioResult> SweepEngine::run(const std::vector<ScenarioSpec>& specs,
                                             SweepStats* stats) {
  util::WallTimer timer;
  const std::uint64_t factor_hits0 = factor_cache_.hits();
  const std::uint64_t factor_misses0 = factor_cache_.misses();
  const std::uint64_t model_hits0 = model_cache_.hits();
  const std::uint64_t model_misses0 = model_cache_.misses();

  // One control block per batch: a cancellable token plus the shared
  // failure budget. Deadlines are per query — each guarded_query arms a
  // child token whose clock starts when a worker picks the scenario up.
  // guarded_query folds every error into its own row, so the futures below
  // never throw.
  auto control = std::make_shared<BatchControl>();

  std::vector<std::future<ScenarioResult>> futures;
  futures.reserve(specs.size());
  for (const ScenarioSpec& spec : specs) {
    const QueryContext context = capture_context();
    emit_scenario_event("scenario.enqueued", spec);
    std::packaged_task<ScenarioResult()> task(
        [this, spec, control, context] { return guarded_query(spec, control, context); });
    futures.push_back(enqueue_task(std::move(task)));
  }

  std::vector<ScenarioResult> results;
  results.reserve(specs.size());
  for (std::future<ScenarioResult>& future : futures) results.push_back(future.get());
  mark_pareto(results);

  int num_failed = 0;
  int num_degraded = 0;
  for (const ScenarioResult& result : results) {
    if (result.status == ScenarioStatus::kFailed) ++num_failed;
    if (result.status == ScenarioStatus::kDegraded) ++num_degraded;
  }

  if (stats != nullptr) {
    stats->wall_seconds = timer.seconds();
    stats->num_scenarios = static_cast<int>(specs.size());
    stats->factor_cache_hits = factor_cache_.hits() - factor_hits0;
    stats->factor_cache_misses = factor_cache_.misses() - factor_misses0;
    stats->model_cache_hits = model_cache_.hits() - model_hits0;
    stats->model_cache_misses = model_cache_.misses() - model_misses0;
    stats->num_failed = num_failed;
    stats->num_degraded = num_degraded;
  }
  obs::MetricRegistry::global().histogram("sweep.run_seconds").record(timer.seconds());
  MS_LOG_INFO("sweep: %d scenarios (%d failed, %d degraded) in %.3f s "
              "(factor cache %llu hit / %llu miss)",
              static_cast<int>(specs.size()), num_failed, num_degraded, timer.seconds(),
              static_cast<unsigned long long>(factor_cache_.hits() - factor_hits0),
              static_cast<unsigned long long>(factor_cache_.misses() - factor_misses0));
  return results;
}

}  // namespace ms::sweep
