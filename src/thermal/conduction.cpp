#include "thermal/conduction.hpp"

#include <stdexcept>

namespace ms::thermal {

using fem::kGauss2;
using fem::kHexNodes;

std::array<double, kCondDofs * kCondDofs> hex8_conduction_stiffness(double conductivity, double hx,
                                                                    double hy, double hz) {
  return hex8_conduction_stiffness(conductivity, conductivity, conductivity, hx, hy, hz);
}

std::array<double, kCondDofs * kCondDofs> hex8_conduction_stiffness(double kx, double ky, double kz,
                                                                    double hx, double hy,
                                                                    double hz) {
  if (kx <= 0.0 || ky <= 0.0 || kz <= 0.0) {
    throw std::invalid_argument("hex8_conduction_stiffness: conductivity must be positive");
  }
  // One power of length survives in k grad N . grad N dV, so a single kMicro
  // converts the micrometre mesh to the SI conductivity. Each gradient
  // component picks up its own axis conductivity (diagonal tensor).
  const double detj_w = (hx * hy * hz) / 8.0;
  const double jac[3] = {2.0 / hx, 2.0 / hy, 2.0 / hz};
  const double k_axis[3] = {kx * kMicro, ky * kMicro, kz * kMicro};
  std::array<double, kCondDofs * kCondDofs> ke{};
  for (int gx = 0; gx < 2; ++gx) {
    for (int gy = 0; gy < 2; ++gy) {
      for (int gz = 0; gz < 2; ++gz) {
        const double xi = (gx == 0 ? -kGauss2 : kGauss2);
        const double eta = (gy == 0 ? -kGauss2 : kGauss2);
        const double zeta = (gz == 0 ? -kGauss2 : kGauss2);
        const auto grad = fem::hex8_shape_grad(xi, eta, zeta);
        std::array<std::array<double, 3>, kHexNodes> g{};
        for (int a = 0; a < kHexNodes; ++a) {
          for (int c = 0; c < 3; ++c) g[a][c] = grad[a][c] * jac[c];
        }
        for (int a = 0; a < kHexNodes; ++a) {
          for (int b = 0; b < kHexNodes; ++b) {
            ke[a * kCondDofs + b] += detj_w * (k_axis[0] * g[a][0] * g[b][0] +
                                               k_axis[1] * g[a][1] * g[b][1] +
                                               k_axis[2] * g[a][2] * g[b][2]);
          }
        }
      }
    }
  }
  return ke;
}

std::array<double, kCondDofs> hex8_top_flux_load(double q, double hx, double hy) {
  std::array<double, kCondDofs> fe{};
  const double share = q * hx * hy / 4.0;
  for (int a = 4; a < 8; ++a) fe[a] = share;
  return fe;
}

std::array<double, kCondDofs * kCondDofs> hex8_capacitance_matrix(double capacity, double hx,
                                                                  double hy, double hz) {
  if (capacity <= 0.0) {
    throw std::invalid_argument("hex8_capacitance_matrix: heat capacity must be positive");
  }
  // Tensor product of the 1-D linear mass matrix (h/6) [2 1; 1 2]: the
  // normalized per-axis factor is 1/3 when nodes a and b sit on the same
  // side of that axis and 1/6 when they sit on opposite sides. Three powers
  // of length convert via kMicro^3.
  const double cv = capacity * (hx * hy * hz) * kMicro * kMicro * kMicro;
  // Corner order (xi,eta,zeta) = 000,100,110,010,001,101,111,011.
  static constexpr int kSide[kCondDofs][3] = {{0, 0, 0}, {1, 0, 0}, {1, 1, 0}, {0, 1, 0},
                                              {0, 0, 1}, {1, 0, 1}, {1, 1, 1}, {0, 1, 1}};
  std::array<double, kCondDofs * kCondDofs> me{};
  for (int a = 0; a < kCondDofs; ++a) {
    for (int b = 0; b < kCondDofs; ++b) {
      double w = cv;
      for (int c = 0; c < 3; ++c) w *= (kSide[a][c] == kSide[b][c]) ? (1.0 / 3.0) : (1.0 / 6.0);
      me[a * kCondDofs + b] = w;
    }
  }
  return me;
}

std::array<double, kCondDofs> hex8_lumped_capacitance(double capacity, double hx, double hy,
                                                      double hz) {
  if (capacity <= 0.0) {
    throw std::invalid_argument("hex8_lumped_capacitance: heat capacity must be positive");
  }
  const double share = capacity * (hx * hy * hz) * kMicro * kMicro * kMicro / 8.0;
  std::array<double, kCondDofs> me{};
  me.fill(share);
  return me;
}

std::array<double, kCondDofs * kCondDofs> hex8_face_film_matrix(double film_coefficient, double hx,
                                                               double hy, int face) {
  if (face != 0 && face != 1) {
    throw std::invalid_argument("hex8_face_film_matrix: face must be 0 (z-min) or 1 (z-max)");
  }
  // Bilinear quad mass matrix on the face, cyclic corner order (00,10,11,01):
  // (A/36) * [4 2 1 2; 2 4 2 1; 1 2 4 2; 2 1 2 4]. Two powers of length, so
  // kMicro^2 converts um^2 areas against the SI film coefficient.
  static constexpr int kPattern[4][4] = {{4, 2, 1, 2}, {2, 4, 2, 1}, {1, 2, 4, 2}, {2, 1, 2, 4}};
  // Hex corner order is (00,10,11,01) on both z faces: nodes 0..3 and 4..7.
  const int base = (face == 0) ? 0 : 4;
  const double scale = film_coefficient * kMicro * kMicro * hx * hy / 36.0;
  std::array<double, kCondDofs * kCondDofs> me{};
  for (int a = 0; a < 4; ++a) {
    for (int b = 0; b < 4; ++b) {
      me[(base + a) * kCondDofs + (base + b)] = scale * kPattern[a][b];
    }
  }
  return me;
}

}  // namespace ms::thermal
