#pragma once
// Time-dependent workload power: a PowerTrace is an ordered sequence of
// (time, PowerMap) keyframes over [0, duration] seconds, the heat input of
// the transient conduction stage. Between keyframes the trace is either
// piecewise-constant (each keyframe holds until the next one — the natural
// encoding of duty cycles and throttling steps) or linearly interpolated
// tile-by-tile (smooth ramps and migrating hotspots; all keyframes must
// share one tiling). Because the assembled power load is linear in the map,
// the transient solver interpolates precomputed keyframe load *vectors*
// instead of re-assembling per step — sample() exposes the blend weights.
//
// Generators cover the common time-domain shapes: a constant hold (the
// steady-state degenerate case), a square wave (duty-cycled accelerator),
// and a hotspot migrating across the die.

#include <cstddef>
#include <vector>

#include "thermal/power_map.hpp"

namespace ms::thermal {

class PowerTrace {
 public:
  enum class Interpolation {
    kPiecewiseConstant,  ///< keyframe i holds on [t_i, t_{i+1})
    kLinear,             ///< tile-wise linear blend between keyframes
  };

  PowerTrace() = default;
  explicit PowerTrace(Interpolation interpolation) : interpolation_(interpolation) {}

  /// Append a keyframe; times must be strictly increasing and the first must
  /// be >= 0. Linear traces require every map to share the first keyframe's
  /// tiling and footprint.
  void add_keyframe(double time, PowerMap map);

  [[nodiscard]] Interpolation interpolation() const { return interpolation_; }
  [[nodiscard]] std::size_t num_keyframes() const { return times_.size(); }
  [[nodiscard]] const PowerMap& keyframe(std::size_t i) const { return maps_[i]; }
  [[nodiscard]] double keyframe_time(std::size_t i) const { return times_[i]; }

  /// Time of the last keyframe (0 for an empty or single-keyframe trace at
  /// t = 0): the natural horizon of a transient solve.
  [[nodiscard]] double duration() const;

  /// Blend state at time t (clamped to [first, last] keyframe time): the
  /// trace value is (1 - weight) * keyframe(lo) + weight * keyframe(hi).
  /// Piecewise-constant traces always return weight 0 with lo = hi = the
  /// active keyframe. Throws if the trace is empty.
  struct Sample {
    std::size_t lo = 0;
    std::size_t hi = 0;
    double weight = 0.0;
  };
  [[nodiscard]] Sample sample(double time) const;

  /// Materialized map at time t (blended tile-by-tile for linear traces).
  [[nodiscard]] PowerMap at(double time) const;

  /// True when every keyframe carries identical tile densities: the trace
  /// degenerates to a steady-state solve.
  [[nodiscard]] bool is_constant() const;

  // --- generators ----------------------------------------------------------

  /// One map held for `duration` seconds.
  static PowerTrace constant(PowerMap map, double duration);

  /// Square wave: `high` for duty * period seconds, then `low` for the rest,
  /// repeated `cycles` times (piecewise-constant; duty in (0, 1), both maps
  /// on the same footprint). The trace ends with a final `low` keyframe at
  /// cycles * period so duration() spans the whole waveform.
  static PowerTrace square_wave(PowerMap low, PowerMap high, double period, double duty,
                                int cycles);

  /// A Gaussian hotspot of the given sigma [um] and peak [W/mm^2] riding on
  /// `background`, its centre moving linearly from (x0, y0) to (x1, y1) over
  /// `duration` seconds, sampled at `steps` + 1 linearly-blended keyframes.
  static PowerTrace migrating_hotspot(const PowerMap& background, double x0, double y0, double x1,
                                      double y1, double sigma, double peak, double duration,
                                      int steps);

 private:
  Interpolation interpolation_ = Interpolation::kPiecewiseConstant;
  std::vector<double> times_;
  std::vector<PowerMap> maps_;
};

}  // namespace ms::thermal
