#pragma once
// A solved temperature field: the mesh it lives on plus one value per node.
// Provides point evaluation (trilinear interpolation through HexMesh::locate)
// and the block-averaged ΔT reductions the ROM coupling consumes.

#include <array>
#include <cstddef>
#include <utility>
#include <vector>

#include "la/vec.hpp"
#include "mesh/hex_mesh.hpp"

namespace ms::thermal {

using la::idx_t;
using la::Vec;

class TemperatureField {
 public:
  TemperatureField() = default;
  TemperatureField(mesh::HexMesh mesh, Vec nodal_temperature);

  [[nodiscard]] const mesh::HexMesh& mesh() const { return mesh_; }
  [[nodiscard]] const Vec& nodal() const { return t_; }

  /// Trilinear interpolation at a point (clamped to the mesh box).
  [[nodiscard]] double at(const mesh::Point3& p) const;

  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;

  /// Volume-averaged temperature of each block footprint of a blocks_x x
  /// blocks_y array with pitch p (y-major). Exact when block boundaries
  /// coincide with mesh grid lines: the average of a trilinear function over
  /// a box is the mean of its corner values, accumulated element-wise.
  [[nodiscard]] std::vector<double> block_averages(int blocks_x, int blocks_y,
                                                   double pitch) const;

  /// Windowed variant for meshes larger than the block array (the package
  /// thermal mesh): averages over the blocks_x x blocks_y window whose
  /// lower-left plan corner is `origin` restricted to z in [z0, z1] (the
  /// interposer layer). Elements with centroids outside the window are
  /// ignored; throws if any block of the window has no covering element.
  [[nodiscard]] std::vector<double> block_averages(int blocks_x, int blocks_y, double pitch,
                                                   const mesh::Point3& origin, double z0,
                                                   double z1) const;

 private:
  mesh::HexMesh mesh_;
  Vec t_;
};

/// Precomputed block reduction for repeated use (the transient stepper
/// reduces every step): element -> block binning and volume weights are
/// resolved once, so reduce() is a single pass over the elements. Reproduces
/// TemperatureField::block_averages(blocks_x, blocks_y, pitch) exactly.
class BlockAverager {
 public:
  BlockAverager(const mesh::HexMesh& mesh, int blocks_x, int blocks_y, double pitch);

  /// Windowed variant for meshes larger than the block array (the package
  /// conduction mesh): only elements whose centroids fall inside the
  /// blocks_x x blocks_y window at `origin` with z in [z0, z1] contribute;
  /// throws if any window block has no covering element. Mirrors the
  /// windowed TemperatureField::block_averages reduction.
  BlockAverager(const mesh::HexMesh& mesh, int blocks_x, int blocks_y, double pitch,
                const mesh::Point3& origin, double z0, double z1);

  /// Volume-averaged block temperatures (y-major) of a nodal field on the
  /// mesh the averager was built for.
  [[nodiscard]] std::vector<double> reduce(const Vec& nodal) const;

  [[nodiscard]] int blocks_x() const { return blocks_x_; }
  [[nodiscard]] int blocks_y() const { return blocks_y_; }

 private:
  void build(const mesh::HexMesh& mesh, double pitch, const mesh::Point3& origin, double z0,
             double z1, bool windowed);

  int blocks_x_ = 0, blocks_y_ = 0;
  idx_t num_nodes_ = 0;
  std::vector<std::array<idx_t, 8>> elem_nodes_;  ///< node ids per element
  std::vector<std::size_t> elem_block_;           ///< block index per element
  std::vector<double> elem_weight_;               ///< elem volume / block volume
};

/// Time history of a transient conduction solve reduced to per-block ΔT:
/// what the time-domain ROM coupling consumes. ΔT is measured from the
/// reduction reference (the stress-free temperature in coupled runs); the
/// record always starts with the initial state at times[0].
struct TransientTemperatureResult {
  std::vector<double> times;       ///< recorded instants [s], t = 0 first
  int blocks_x = 0, blocks_y = 0;
  /// Per recorded instant, the y-major per-block ΔT (one entry per time).
  std::vector<std::vector<double>> block_delta_t;
  /// Per-block ΔT of largest magnitude (signed) over the whole recorded
  /// history (y-major): the transient envelope the worst-case stress
  /// evaluation uses. Stress grows with |ΔT|, so this is the worst state
  /// both for ambient-referenced heating (all ΔT >= 0, where it equals the
  /// plain max) and for reflow-referenced runs (all ΔT <= 0).
  std::vector<double> peak_envelope;
  /// Per-block trapezoidal time-average of ΔT over the recorded window: the
  /// steady-equivalent load a pulsed trace would be mistaken for.
  std::vector<double> time_average;
  /// Nodal temperature field at the final step.
  TemperatureField final_field;

  [[nodiscard]] std::size_t num_records() const { return times.size(); }
};

}  // namespace ms::thermal
