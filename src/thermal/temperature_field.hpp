#pragma once
// A solved temperature field: the mesh it lives on plus one value per node.
// Provides point evaluation (trilinear interpolation through HexMesh::locate)
// and the block-averaged ΔT reductions the ROM coupling consumes.

#include <utility>
#include <vector>

#include "la/vec.hpp"
#include "mesh/hex_mesh.hpp"

namespace ms::thermal {

using la::idx_t;
using la::Vec;

class TemperatureField {
 public:
  TemperatureField() = default;
  TemperatureField(mesh::HexMesh mesh, Vec nodal_temperature);

  [[nodiscard]] const mesh::HexMesh& mesh() const { return mesh_; }
  [[nodiscard]] const Vec& nodal() const { return t_; }

  /// Trilinear interpolation at a point (clamped to the mesh box).
  [[nodiscard]] double at(const mesh::Point3& p) const;

  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;

  /// Volume-averaged temperature of each block footprint of a blocks_x x
  /// blocks_y array with pitch p (y-major). Exact when block boundaries
  /// coincide with mesh grid lines: the average of a trilinear function over
  /// a box is the mean of its corner values, accumulated element-wise.
  [[nodiscard]] std::vector<double> block_averages(int blocks_x, int blocks_y,
                                                   double pitch) const;

  /// Windowed variant for meshes larger than the block array (the package
  /// thermal mesh): averages over the blocks_x x blocks_y window whose
  /// lower-left plan corner is `origin` restricted to z in [z0, z1] (the
  /// interposer layer). Elements with centroids outside the window are
  /// ignored; throws if any block of the window has no covering element.
  [[nodiscard]] std::vector<double> block_averages(int blocks_x, int blocks_y, double pitch,
                                                   const mesh::Point3& origin, double z0,
                                                   double z1) const;

 private:
  mesh::HexMesh mesh_;
  Vec t_;
};

}  // namespace ms::thermal
