#pragma once
// Workload power maps: the heat input of the thermal stage. A map is a
// rectangular grid of tiles over the die footprint, each carrying a surface
// power density in W/mm^2 (the usual floorplan-level unit). Tiles typically
// coincide with unit blocks but any resolution works — the conduction
// assembler samples the map at element-face centroids. Analytic generators
// (uniform background, Gaussian hotspots, rectangular power islands) cover
// the common chiplet workload shapes without file I/O.

#include <vector>

#include "mesh/hex_mesh.hpp"

namespace ms::thermal {

class PowerMap {
 public:
  PowerMap() = default;

  /// tiles_x x tiles_y tiles over [0, width] x [0, height] (um), all at
  /// density `background` W/mm^2.
  PowerMap(int tiles_x, int tiles_y, double width, double height, double background = 0.0);

  /// Construct from explicit per-tile densities, y-major (ty * tiles_x + tx).
  PowerMap(int tiles_x, int tiles_y, double width, double height, std::vector<double> densities);

  /// One tile per block of a blocks_x x blocks_y array with pitch p: the
  /// natural per-block map for the ROM coupling.
  static PowerMap per_block(int blocks_x, int blocks_y, double pitch, double background = 0.0);

  [[nodiscard]] int tiles_x() const { return tiles_x_; }
  [[nodiscard]] int tiles_y() const { return tiles_y_; }
  [[nodiscard]] double width() const { return width_; }
  [[nodiscard]] double height() const { return height_; }

  [[nodiscard]] double tile(int tx, int ty) const;
  void set_tile(int tx, int ty, double density);

  /// Density at a point [W/mm^2]; 0 outside the footprint. Points exactly on
  /// the outer edge belong to the last tile.
  [[nodiscard]] double density_at(double x, double y) const;

  /// Add a Gaussian hotspot: density += peak * exp(-r^2 / (2 sigma^2)) with r
  /// the tile-centre distance to (cx, cy); sigma in um, peak in W/mm^2.
  void add_gaussian_hotspot(double cx, double cy, double sigma, double peak);

  /// Add a constant density over the rectangle [x0,x1] x [y0,y1] to every
  /// tile whose centre lies inside (a power island / active chiplet).
  void add_rect(double x0, double y0, double x1, double y1, double density);

  /// Total dissipated power [W].
  [[nodiscard]] double total_power() const;

  /// Max tile density [W/mm^2].
  [[nodiscard]] double peak_density() const;

  /// True when every tile carries the same density (degenerate uniform case).
  [[nodiscard]] bool is_uniform() const;

 private:
  [[nodiscard]] double tile_center_x(int tx) const;
  [[nodiscard]] double tile_center_y(int ty) const;

  int tiles_x_ = 0, tiles_y_ = 0;
  double width_ = 0.0, height_ = 0.0;  ///< footprint extent [um]
  std::vector<double> densities_;      ///< y-major, W/mm^2
};

}  // namespace ms::thermal
