#include "thermal/thermal_solver.hpp"

#include <algorithm>
#include <stdexcept>

#include "fem/dirichlet.hpp"
#include "la/cg.hpp"
#include "la/cholesky.hpp"
#include "la/precond.hpp"
#include "thermal/conduction_assembler.hpp"
#include "util/timer.hpp"

namespace ms::thermal {

TemperatureField solve_power_map(const mesh::HexMesh& mesh, const Vec& conductivity_per_elem,
                                 const PowerMap& power, const ThermalSolveOptions& options,
                                 ThermalSolveStats* stats) {
  return solve_power_map(mesh, ConductivityField{conductivity_per_elem, conductivity_per_elem},
                         power, options, stats);
}

TemperatureField solve_power_map(const mesh::HexMesh& mesh, const ConductivityField& conductivity,
                                 const PowerMap& power, const ThermalSolveOptions& options,
                                 ThermalSolveStats* stats) {
  if (options.sink_film_coefficient < 0.0) {
    throw std::invalid_argument(
        "solve_power_map: sink film coefficient must be >= 0 (0 = ideal sink)");
  }
  util::WallTimer timer;
  la::TripletList triplets =
      conduction_triplets(mesh, conductivity.in_plane, conductivity.through_plane);
  Vec rhs = assemble_power_load(mesh, power);

  fem::DirichletBc bc;
  if (options.sink_film_coefficient > 0.0) {
    add_convective_face(mesh, options.sink_film_coefficient, options.ambient, /*face=*/0,
                        triplets, rhs);
  } else {
    // Ideal sink: the whole z-min face held at ambient.
    for (idx_t j = 0; j < mesh.nodes_y(); ++j) {
      for (idx_t i = 0; i < mesh.nodes_x(); ++i) {
        bc.add(mesh.node_id(i, j, 0), options.ambient);
      }
    }
  }

  CsrMatrix k = CsrMatrix::from_triplets(triplets);
  fem::apply_dirichlet(k, rhs, bc);
  if (stats != nullptr) {
    stats->num_dofs = k.rows();
    stats->assemble_seconds = timer.seconds();
  }

  timer.reset();
  Vec t;
  if (options.method == "direct") {
    const la::SparseCholesky chol(k);
    t = chol.solve(rhs);
    if (stats != nullptr) {
      stats->iterations = 0;
      stats->converged = true;
    }
  } else if (options.method == "cg") {
    t.assign(rhs.size(), options.ambient);  // warm start at the sink value
    const la::JacobiPreconditioner precond(k);
    la::IterativeOptions iter;
    iter.rel_tol = options.rel_tol;
    iter.max_iterations = options.max_iterations;
    iter.use_initial_guess = true;
    const la::IterativeResult result = la::conjugate_gradient(k, rhs, t, &precond, iter);
    if (!result.converged) {
      throw std::runtime_error("solve_power_map: CG did not converge");
    }
    if (stats != nullptr) {
      stats->iterations = result.iterations;
      stats->converged = result.converged;
    }
  } else {
    throw std::invalid_argument("solve_power_map: method must be 'cg' or 'direct'");
  }
  if (stats != nullptr) stats->solve_seconds = timer.seconds();
  return TemperatureField(mesh, std::move(t));
}

TemperatureField solve_power_map(const mesh::HexMesh& mesh, const fem::MaterialTable& materials,
                                 const PowerMap& power, const ThermalSolveOptions& options,
                                 ThermalSolveStats* stats) {
  return solve_power_map(mesh, conductivities_from_materials(mesh, materials), power, options,
                         stats);
}

mesh::HexMesh build_array_thermal_mesh(const mesh::TsvGeometry& geometry, int blocks_x,
                                       int blocks_y, int elems_per_block_xy, int elems_z) {
  if (blocks_x < 1 || blocks_y < 1) {
    throw std::invalid_argument("build_array_thermal_mesh: need >= 1 block per axis");
  }
  if (elems_per_block_xy < 1 || elems_z < 1) {
    throw std::invalid_argument("build_array_thermal_mesh: need >= 1 element per axis");
  }
  const auto lines = [](int n, double length) {
    std::vector<double> v(static_cast<std::size_t>(n) + 1);
    for (int i = 0; i <= n; ++i) v[i] = length * i / n;
    return v;
  };
  return mesh::HexMesh(lines(blocks_x * elems_per_block_xy, blocks_x * geometry.pitch),
                       lines(blocks_y * elems_per_block_xy, blocks_y * geometry.pitch),
                       lines(elems_z, geometry.height));
}

ConductivityField array_block_conductivities(const mesh::HexMesh& mesh,
                                             const mesh::TsvGeometry& geometry,
                                             const fem::MaterialTable& materials, int blocks_x,
                                             int blocks_y,
                                             const std::vector<std::uint8_t>& tsv_mask,
                                             ConductivityModel model) {
  const BlockConductivityMap blocks(geometry, materials, blocks_x, blocks_y, tsv_mask, model);
  ConductivityField field;
  field.in_plane.resize(static_cast<std::size_t>(mesh.num_elems()));
  field.through_plane.resize(static_cast<std::size_t>(mesh.num_elems()));
  for (idx_t e = 0; e < mesh.num_elems(); ++e) {
    const mesh::Point3 c = mesh.elem_centroid(e);
    const BlockConductivity& k = blocks.at(c.x, c.y);
    field.in_plane[e] = k.in_plane;
    field.through_plane[e] = k.through_plane;
  }
  return field;
}

}  // namespace ms::thermal
