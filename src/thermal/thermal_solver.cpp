#include "thermal/thermal_solver.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <memory>
#include <stdexcept>

#include "core/sim_error.hpp"
#include "fem/dirichlet.hpp"
#include "la/cg.hpp"
#include "la/cholesky.hpp"
#include "la/precond.hpp"
#include "la/shift_retry.hpp"
#include "obs/metrics.hpp"
#include "obs/query_scope.hpp"
#include "obs/trace.hpp"
#include "thermal/conduction_assembler.hpp"
#include "util/fault_injector.hpp"
#include "util/timer.hpp"

namespace ms::thermal {
namespace {

// Mirror the exact out-param values into the registry (see the regression
// lock in tests/obs: RunReport fields must equal the legacy structs).
void publish_steady_stats(const ThermalSolveStats& s) {
  auto& reg = obs::MetricRegistry::global();
  reg.counter("thermal.steady.solves").add(1);
  reg.counter("thermal.steady.iterations").add(s.iterations);
  reg.histogram("thermal.steady.assemble_seconds").record(s.assemble_seconds);
  reg.histogram("thermal.steady.solve_seconds").record(s.solve_seconds);
  reg.histogram("thermal.steady.factor_seconds").record(s.factor_seconds);
  reg.gauge("thermal.steady.num_dofs").set(static_cast<double>(s.num_dofs));
  reg.gauge("thermal.steady.converged").set(s.converged ? 1.0 : 0.0);
  reg.gauge("thermal.steady.factor_nnz").set(static_cast<double>(s.factor_nnz));
  reg.gauge("thermal.steady.fill_ratio").set(s.fill_ratio);
  // Worker-thread publish → the active QueryScope is the owning scenario's.
  obs::QueryScope::count("thermal.steady.solves");
  obs::QueryScope::observe_seconds("thermal.steady.assemble_seconds", s.assemble_seconds);
  obs::QueryScope::observe_seconds("thermal.steady.solve_seconds", s.solve_seconds);
  obs::QueryScope::observe_seconds("thermal.steady.factor_seconds", s.factor_seconds);
}

void publish_transient_stats(const TransientSolveStats& s) {
  auto& reg = obs::MetricRegistry::global();
  reg.counter("thermal.transient.solves").add(1);
  reg.counter("thermal.transient.steps").add(s.num_steps);
  reg.histogram("thermal.transient.assemble_seconds").record(s.assemble_seconds);
  reg.histogram("thermal.transient.factor_seconds").record(s.factor_seconds);
  reg.histogram("thermal.transient.step_seconds").record(s.step_seconds);
  reg.gauge("thermal.transient.num_dofs").set(static_cast<double>(s.num_dofs));
  reg.gauge("thermal.transient.factor_nnz").set(static_cast<double>(s.factor_nnz));
  reg.gauge("thermal.transient.fill_ratio").set(s.fill_ratio);
  obs::QueryScope::count("thermal.transient.solves");
  obs::QueryScope::count("thermal.transient.steps", s.num_steps);
  obs::QueryScope::observe_seconds("thermal.transient.assemble_seconds", s.assemble_seconds);
  obs::QueryScope::observe_seconds("thermal.transient.factor_seconds", s.factor_seconds);
  obs::QueryScope::observe_seconds("thermal.transient.step_seconds", s.step_seconds);
}

}  // namespace

TemperatureField solve_power_map(const mesh::HexMesh& mesh, const Vec& conductivity_per_elem,
                                 const PowerMap& power, const ThermalSolveOptions& options,
                                 ThermalSolveStats* stats) {
  return solve_power_map(mesh, ConductivityField{conductivity_per_elem, conductivity_per_elem},
                         power, options, stats);
}

TemperatureField solve_power_map(const mesh::HexMesh& mesh, const ConductivityField& conductivity,
                                 const PowerMap& power, const ThermalSolveOptions& options,
                                 ThermalSolveStats* stats) {
  if (options.sink_film_coefficient < 0.0) {
    throw std::invalid_argument(
        "solve_power_map: sink film coefficient must be >= 0 (0 = ideal sink)");
  }
  MS_TRACE_SCOPE("thermal.steady.solve");
  const bool use_cache = options.method == "direct" && options.factor_cache != nullptr &&
                         !options.factor_key.empty();
  ThermalSolveStats local;
  util::WallTimer timer;
  la::TripletList triplets;
  Vec rhs;
  fem::DirichletBc bc;
  CsrMatrix k;
  // On a resident cache hit the operator never needs assembling — only the
  // load vector and the constrained-dof set (the cached entry keeps the
  // unlifted matrix for the rhs lifting below).
  const bool skip_matrix = use_cache && options.factor_cache->contains(options.factor_key);
  {
    MS_TRACE_SCOPE("thermal.steady.assemble");
    if (!skip_matrix) {
      triplets = conduction_triplets(mesh, conductivity.in_plane, conductivity.through_plane);
    }
    rhs = assemble_power_load(mesh, power);

    if (options.sink_film_coefficient > 0.0) {
      if (skip_matrix) {
        la::TripletList film_triplets;
        add_convective_face(mesh, options.sink_film_coefficient, options.ambient, /*face=*/0,
                            film_triplets, rhs);
      } else {
        add_convective_face(mesh, options.sink_film_coefficient, options.ambient, /*face=*/0,
                            triplets, rhs);
      }
    } else {
      // Ideal sink: the whole z-min face held at ambient.
      for (idx_t j = 0; j < mesh.nodes_y(); ++j) {
        for (idx_t i = 0; i < mesh.nodes_x(); ++i) {
          bc.add(mesh.node_id(i, j, 0), options.ambient);
        }
      }
    }

    if (!skip_matrix) {
      k = CsrMatrix::from_triplets(triplets);
      if (!use_cache) fem::apply_dirichlet(k, rhs, bc);
    }
  }
  local.num_dofs = static_cast<idx_t>(mesh.num_nodes());
  local.assemble_seconds = timer.seconds();

  timer.reset();
  Vec t;
  if (use_cache) {
    // Memoized direct path: bit-identical to the uncached branch below —
    // the split lifting reproduces the fused one (fem/dirichlet.hpp) and
    // solve() is solve_with() on the member scratch.
    bool built = false;
    const la::FactorCache::Entry entry = options.factor_cache->get_or_create(
        options.factor_key,
        [&]() {
          options.cancel.check("thermal.steady.factor_build");
          la::FactorCache::Entry fresh;
          fresh.matrix = std::make_shared<la::CsrMatrix>(k);
          fem::apply_dirichlet_matrix(k, bc);
          la::ShiftRetryResult factored = la::factor_with_shift_retry(
              k, options.factor, options.shift_retry, "thermal.steady.factor");
          fresh.factor = std::move(factored.factor);
          fresh.diagonal_shift = factored.shift;
          return fresh;
        },
        &built);
    (void)built;
    local.degraded = entry.diagonal_shift != 0.0;
    local.diagonal_shift = entry.diagonal_shift;
    local.factor_seconds = timer.seconds();
    local.factor_nnz = entry.factor->factor_nnz();
    local.fill_ratio = entry.factor->fill_ratio();
    local.ordering = entry.factor->ordering_name();
    fem::apply_dirichlet_rhs(*entry.matrix, rhs, bc);
    Vec scratch;
    entry.factor->solve_with(rhs, t, scratch);
    local.iterations = 0;
    local.converged = true;
  } else if (options.method == "direct") {
    options.cancel.check("thermal.steady.factor");
    la::ShiftRetryResult factored =
        la::factor_with_shift_retry(k, options.factor, options.shift_retry,
                                    "thermal.steady.factor");
    const la::SparseCholesky& chol = *factored.factor;
    local.degraded = factored.degraded();
    local.diagonal_shift = factored.shift;
    local.factor_seconds = timer.seconds();
    local.factor_nnz = chol.factor_nnz();
    local.fill_ratio = chol.fill_ratio();
    local.ordering = chol.ordering_name();
    t = chol.solve(rhs);
    local.iterations = 0;
    local.converged = true;
  } else if (options.method == "cg") {
    t.assign(rhs.size(), options.ambient);  // warm start at the sink value
    const la::JacobiPreconditioner precond(k);
    la::IterativeOptions iter;
    iter.rel_tol = options.rel_tol;
    iter.max_iterations = options.max_iterations;
    iter.use_initial_guess = true;
    const la::IterativeResult result = la::conjugate_gradient(k, rhs, t, &precond, iter);
    if (!result.converged) {
      throw core::SimError(
          core::SimErrorCode::kDidNotConverge, "thermal.steady.solve",
          result.breakdown ? std::string("CG breakdown: ") + result.breakdown_reason
                           : std::string("CG did not converge"),
          "iterations=" + std::to_string(result.iterations) +
              " residual=" + std::to_string(result.residual_norm));
    }
    local.iterations = result.iterations;
    local.converged = result.converged;
  } else {
    throw std::invalid_argument("solve_power_map: method must be 'cg' or 'direct'");
  }
  local.solve_seconds = timer.seconds();
  publish_steady_stats(local);
  if (stats != nullptr) *stats = local;
  return TemperatureField(mesh, std::move(t));
}

TemperatureField solve_power_map(const mesh::HexMesh& mesh, const fem::MaterialTable& materials,
                                 const PowerMap& power, const ThermalSolveOptions& options,
                                 ThermalSolveStats* stats) {
  return solve_power_map(mesh, conductivities_from_materials(mesh, materials), power, options,
                         stats);
}

namespace {

/// θ of the implicit scheme; throws on an unknown name.
double scheme_theta(const std::string& scheme) {
  if (scheme == "backward-euler") return 1.0;
  if (scheme == "crank-nicolson") return 0.5;
  throw std::invalid_argument(
      "solve_power_trace: scheme must be 'backward-euler' or 'crank-nicolson'");
}

}  // namespace

TransientTemperatureResult solve_power_trace(const mesh::HexMesh& mesh,
                                             const ConductivityField& conductivity,
                                             const Vec& capacity_per_elem,
                                             const PowerTrace& trace,
                                             const BlockReduction& reduction,
                                             const TransientSolveOptions& options,
                                             TransientSolveStats* stats) {
  const double theta = scheme_theta(options.scheme);
  if (options.base.sink_film_coefficient < 0.0) {
    throw std::invalid_argument(
        "solve_power_trace: sink film coefficient must be >= 0 (0 = ideal sink)");
  }
  if (options.time_step <= 0.0) {
    throw std::invalid_argument("solve_power_trace: time step must be > 0");
  }
  if (trace.num_keyframes() == 0) {
    throw std::invalid_argument("solve_power_trace: trace has no keyframes");
  }
  const double dt = options.time_step;
  int num_steps = options.num_steps;
  if (num_steps <= 0) {
    num_steps = static_cast<int>(std::ceil(trace.duration() / dt - 1e-12));
    if (num_steps <= 0) {
      throw std::invalid_argument(
          "solve_power_trace: zero-duration trace needs an explicit num_steps");
    }
  }
  if (reduction.pitch <= 0.0) {
    throw std::invalid_argument("solve_power_trace: reduction pitch must be > 0");
  }

  MS_TRACE_SCOPE("thermal.transient.solve");
  TransientSolveStats local;
  obs::ScopedSpan assemble_span("thermal.transient.assemble");
  util::WallTimer timer;
  const idx_t n = mesh.num_nodes();

  // Conduction operator K (film terms included, so the Robin boundary is
  // θ-weighted like the interior) and its constant ambient rhs share.
  la::TripletList k_triplets =
      conduction_triplets(mesh, conductivity.in_plane, conductivity.through_plane);
  Vec f_bc(static_cast<std::size_t>(n), 0.0);
  fem::DirichletBc bc;
  if (options.base.sink_film_coefficient > 0.0) {
    add_convective_face(mesh, options.base.sink_film_coefficient, options.base.ambient,
                        /*face=*/0, k_triplets, f_bc);
  } else {
    for (idx_t j = 0; j < mesh.nodes_y(); ++j) {
      for (idx_t i = 0; i < mesh.nodes_x(); ++i) {
        bc.add(mesh.node_id(i, j, 0), options.base.ambient);
      }
    }
  }
  const CsrMatrix k = CsrMatrix::from_triplets(k_triplets);

  // Capacitance M: diagonal vector when lumped, full matrix when consistent.
  Vec m_diag;
  CsrMatrix m_consistent;
  if (options.lumped_capacitance) {
    m_diag = CsrMatrix::from_triplets(
                 capacitance_triplets(mesh, capacity_per_elem, /*lumped=*/true))
                 .diagonal();
  } else {
    m_consistent = CsrMatrix::from_triplets(
        capacitance_triplets(mesh, capacity_per_elem, /*lumped=*/false));
  }

  // A = M/Δt + θK, assembled once, Dirichlet-lifted once, factored once.
  la::TripletList a_triplets(n, n);
  a_triplets.reserve(k_triplets.size() + (options.lumped_capacitance
                                              ? static_cast<std::size_t>(n)
                                              : static_cast<std::size_t>(m_consistent.nnz())));
  for (std::size_t t = 0; t < k_triplets.size(); ++t) {
    a_triplets.add(k_triplets.row_indices()[t], k_triplets.col_indices()[t],
                   theta * k_triplets.values()[t]);
  }
  if (options.lumped_capacitance) {
    for (idx_t i = 0; i < n; ++i) a_triplets.add(i, i, m_diag[i] / dt);
  } else {
    for (idx_t r = 0; r < n; ++r) {
      for (la::offset_t p = m_consistent.row_ptr()[r];
           p < m_consistent.row_ptr()[static_cast<std::size_t>(r) + 1]; ++p) {
        a_triplets.add(r, m_consistent.col_idx()[p], m_consistent.values()[p] / dt);
      }
    }
  }
  CsrMatrix a = CsrMatrix::from_triplets(a_triplets);

  // The sink value is constant in time, so the Dirichlet column correction
  // A(free, constrained) * T_sink is one fixed vector: compute it before the
  // lifting zeroes those columns, then subtract it from every step's rhs.
  std::vector<char> constrained(static_cast<std::size_t>(n), 0);
  Vec corr(static_cast<std::size_t>(n), 0.0);
  if (!bc.dofs.empty()) {
    Vec sink(static_cast<std::size_t>(n), 0.0);
    for (std::size_t i = 0; i < bc.dofs.size(); ++i) {
      sink[bc.dofs[i]] = bc.values[i];
      constrained[bc.dofs[i]] = 1;
    }
    a.mul(sink, corr);
    Vec dummy(static_cast<std::size_t>(n), 0.0);
    fem::apply_dirichlet(a, dummy, bc);
  }
  // Power loads are linear in the map, so precompute one load vector per
  // keyframe and blend vectors per step instead of re-assembling; this is
  // assembly work, so it lands in assemble_seconds, not the stepping time.
  std::vector<Vec> keyframe_loads;
  keyframe_loads.reserve(trace.num_keyframes());
  for (std::size_t i = 0; i < trace.num_keyframes(); ++i) {
    keyframe_loads.push_back(assemble_power_load(mesh, trace.keyframe(i)));
  }
  local.num_dofs = n;
  local.num_steps = num_steps;
  local.assemble_seconds = timer.seconds();
  assemble_span.end();

  timer.reset();
  // The stepping operator's factorization is shareable across traces: the
  // assembly above is cheap and the unlifted A is needed for the correction
  // term regardless, so only the factor itself is memoized (Entry.matrix
  // stays null). solve_with(scratch) below is solve_inplace's own backend,
  // so warm and cold steps are bitwise identical.
  options.base.cancel.check("thermal.transient.factor");
  std::shared_ptr<const la::SparseCholesky> factor;
  const bool use_cache = options.base.factor_cache != nullptr && !options.base.factor_key.empty();
  if (use_cache) {
    const la::FactorCache::Entry entry = options.base.factor_cache->get_or_create(
        options.base.factor_key, [&]() {
          options.base.cancel.check("thermal.transient.factor_build");
          la::FactorCache::Entry fresh;
          la::ShiftRetryResult factored = la::factor_with_shift_retry(
              a, options.base.factor, options.base.shift_retry, "thermal.transient.factor");
          fresh.factor = std::move(factored.factor);
          fresh.diagonal_shift = factored.shift;
          return fresh;
        });
    factor = entry.factor;
    local.degraded = entry.diagonal_shift != 0.0;
    local.diagonal_shift = entry.diagonal_shift;
  } else {
    la::ShiftRetryResult factored = la::factor_with_shift_retry(
        a, options.base.factor, options.base.shift_retry, "thermal.transient.factor");
    factor = factored.factor;
    local.degraded = factored.degraded();
    local.diagonal_shift = factored.shift;
  }
  local.factor_seconds = timer.seconds();
  local.factor_nnz = factor->factor_nnz();
  local.fill_ratio = factor->fill_ratio();
  local.ordering = factor->ordering_name();

  obs::ScopedSpan step_span("thermal.transient.step");
  timer.reset();
  const auto power_load_at = [&](double time, Vec& out) {
    const PowerTrace::Sample s = trace.sample(time);
    const Vec& lo = keyframe_loads[s.lo];
    if (s.lo == s.hi || s.weight == 0.0) {
      out = lo;
      return;
    }
    const Vec& hi = keyframe_loads[s.hi];
    out.resize(lo.size());
    for (std::size_t i = 0; i < lo.size(); ++i) {
      out[i] = (1.0 - s.weight) * lo[i] + s.weight * hi[i];
    }
  };

  const double t_init = std::isnan(options.initial_temperature) ? options.base.ambient
                                                                : options.initial_temperature;
  Vec t(static_cast<std::size_t>(n), t_init);
  for (std::size_t i = 0; i < bc.dofs.size(); ++i) t[bc.dofs[i]] = bc.values[i];

  const BlockAverager averager =
      reduction.windowed
          ? BlockAverager(mesh, reduction.blocks_x, reduction.blocks_y, reduction.pitch,
                          reduction.origin, reduction.z0, reduction.z1)
          : BlockAverager(mesh, reduction.blocks_x, reduction.blocks_y, reduction.pitch);
  TransientTemperatureResult result;
  result.blocks_x = reduction.blocks_x;
  result.blocks_y = reduction.blocks_y;
  result.times.reserve(static_cast<std::size_t>(num_steps) + 1);
  result.block_delta_t.reserve(static_cast<std::size_t>(num_steps) + 1);
  const auto record = [&](double time, const Vec& nodal) {
    std::vector<double> blocks = averager.reduce(nodal);
    for (double& b : blocks) b -= reduction.reference;
    result.times.push_back(time);
    result.block_delta_t.push_back(std::move(blocks));
  };
  record(0.0, t);

  Vec f_prev(static_cast<std::size_t>(n));
  Vec f_next(static_cast<std::size_t>(n));
  Vec kt(static_cast<std::size_t>(n));
  Vec mt(static_cast<std::size_t>(n));
  Vec rhs(static_cast<std::size_t>(n));
  Vec solve_scratch;  // local, so a shared cached factor is thread-safe
  power_load_at(0.0, f_prev);
  for (int step = 1; step <= num_steps; ++step) {
    const double time = step * dt;
    power_load_at(time, f_next);
    k.mul(t, kt);
    if (options.lumped_capacitance) {
      for (idx_t i = 0; i < n; ++i) mt[i] = m_diag[i] * t[i];
    } else {
      m_consistent.mul(t, mt);
    }
    for (idx_t i = 0; i < n; ++i) {
      rhs[i] = mt[i] / dt - (1.0 - theta) * kt[i] + theta * f_next[i] +
               (1.0 - theta) * f_prev[i] + f_bc[i];
    }
    if (!bc.dofs.empty()) {
      for (idx_t i = 0; i < n; ++i) {
        if (constrained[i]) continue;
        rhs[i] -= corr[i];
      }
      for (std::size_t i = 0; i < bc.dofs.size(); ++i) rhs[bc.dofs[i]] = bc.values[i];
    }
    factor->solve_with(rhs, t, solve_scratch);
    // Per-step cooperative cancellation/deadline check and fault probe (the
    // `nan` action poisons the state vector; `stall` sleeps in fire()).
    options.base.cancel.check("thermal.transient.step");
    if (util::FaultInjector::enabled() &&
        util::FaultInjector::global().fire("thermal.transient.step") == util::FaultAction::kNan) {
      t.front() = std::numeric_limits<double>::quiet_NaN();
    }
    record(time, t);
    f_prev.swap(f_next);
  }
  local.step_seconds = timer.seconds();
  step_span.end();
  publish_transient_stats(local);
  if (stats != nullptr) *stats = local;

  // Envelope and trapezoidal time-average over the recorded history. The
  // envelope keeps the signed ΔT of largest magnitude: thermal stress grows
  // with |ΔT|, so this is the worst state whether ΔT is measured from
  // ambient (operational heating, all positive) or from a reflow reference
  // (all negative — the signed max would pick the *mildest* state there).
  const std::size_t num_blocks = result.block_delta_t.front().size();
  result.peak_envelope = result.block_delta_t.front();
  result.time_average.assign(num_blocks, 0.0);
  for (std::size_t r = 0; r < result.block_delta_t.size(); ++r) {
    const auto& blocks = result.block_delta_t[r];
    for (std::size_t b = 0; b < num_blocks; ++b) {
      if (std::abs(blocks[b]) > std::abs(result.peak_envelope[b])) {
        result.peak_envelope[b] = blocks[b];
      }
      double w = 0.0;
      if (r > 0) w += 0.5 * (result.times[r] - result.times[r - 1]);
      if (r + 1 < result.times.size()) w += 0.5 * (result.times[r + 1] - result.times[r]);
      result.time_average[b] += w * blocks[b];
    }
  }
  const double span = result.times.back() - result.times.front();
  for (double& avg : result.time_average) avg /= span;

  result.final_field = TemperatureField(mesh, std::move(t));
  return result;
}

TransientTemperatureResult solve_power_trace(const mesh::HexMesh& mesh,
                                             const Vec& conductivity_per_elem,
                                             const Vec& capacity_per_elem,
                                             const PowerTrace& trace,
                                             const BlockReduction& reduction,
                                             const TransientSolveOptions& options,
                                             TransientSolveStats* stats) {
  return solve_power_trace(mesh, ConductivityField{conductivity_per_elem, conductivity_per_elem},
                           capacity_per_elem, trace, reduction, options, stats);
}

TransientTemperatureResult solve_power_trace(const mesh::HexMesh& mesh,
                                             const fem::MaterialTable& materials,
                                             const PowerTrace& trace,
                                             const BlockReduction& reduction,
                                             const TransientSolveOptions& options,
                                             TransientSolveStats* stats) {
  return solve_power_trace(mesh, conductivities_from_materials(mesh, materials),
                           capacities_from_materials(mesh, materials), trace, reduction, options,
                           stats);
}

mesh::HexMesh build_array_thermal_mesh(const mesh::TsvGeometry& geometry, int blocks_x,
                                       int blocks_y, int elems_per_block_xy, int elems_z) {
  if (blocks_x < 1 || blocks_y < 1) {
    throw std::invalid_argument("build_array_thermal_mesh: need >= 1 block per axis");
  }
  if (elems_per_block_xy < 1 || elems_z < 1) {
    throw std::invalid_argument("build_array_thermal_mesh: need >= 1 element per axis");
  }
  const auto lines = [](int n, double length) {
    std::vector<double> v(static_cast<std::size_t>(n) + 1);
    for (int i = 0; i <= n; ++i) v[i] = length * i / n;
    return v;
  };
  return mesh::HexMesh(lines(blocks_x * elems_per_block_xy, blocks_x * geometry.pitch),
                       lines(blocks_y * elems_per_block_xy, blocks_y * geometry.pitch),
                       lines(elems_z, geometry.height));
}

ConductivityField array_block_conductivities(const mesh::HexMesh& mesh,
                                             const mesh::TsvGeometry& geometry,
                                             const fem::MaterialTable& materials, int blocks_x,
                                             int blocks_y,
                                             const std::vector<std::uint8_t>& tsv_mask,
                                             ConductivityModel model) {
  const BlockConductivityMap blocks(geometry, materials, blocks_x, blocks_y, tsv_mask, model);
  ConductivityField field;
  field.in_plane.resize(static_cast<std::size_t>(mesh.num_elems()));
  field.through_plane.resize(static_cast<std::size_t>(mesh.num_elems()));
  for (idx_t e = 0; e < mesh.num_elems(); ++e) {
    const mesh::Point3 c = mesh.elem_centroid(e);
    const BlockConductivity& k = blocks.at(c.x, c.y);
    field.in_plane[e] = k.in_plane;
    field.through_plane[e] = k.through_plane;
  }
  return field;
}

Vec array_block_capacities(const mesh::HexMesh& mesh, const mesh::TsvGeometry& geometry,
                           const fem::MaterialTable& materials, int blocks_x, int blocks_y,
                           const std::vector<std::uint8_t>& tsv_mask, ConductivityModel model) {
  const BlockBinning binning(blocks_x, blocks_y, geometry.pitch, tsv_mask);
  const double tsv_c = block_capacity(geometry, materials, /*is_tsv=*/true, model);
  const double dummy_c = block_capacity(geometry, materials, /*is_tsv=*/false, model);
  Vec field(static_cast<std::size_t>(mesh.num_elems()));
  for (idx_t e = 0; e < mesh.num_elems(); ++e) {
    const mesh::Point3 c = mesh.elem_centroid(e);
    field[e] = binning.is_tsv(c.x, c.y) ? tsv_c : dummy_c;
  }
  return field;
}

}  // namespace ms::thermal
