#include "thermal/conduction_assembler.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <utility>

#include "thermal/conduction.hpp"

namespace ms::thermal {

la::TripletList conduction_triplets(const mesh::HexMesh& mesh, const Vec& conductivity_per_elem) {
  return conduction_triplets(mesh, conductivity_per_elem, conductivity_per_elem);
}

la::TripletList conduction_triplets(const mesh::HexMesh& mesh, const Vec& in_plane_per_elem,
                                    const Vec& through_plane_per_elem) {
  if (in_plane_per_elem.size() != static_cast<std::size_t>(mesh.num_elems()) ||
      through_plane_per_elem.size() != static_cast<std::size_t>(mesh.num_elems())) {
    throw std::invalid_argument("conduction_triplets: one conductivity per element required");
  }
  const idx_t num_dofs = mesh.num_nodes();
  la::TripletList triplets(num_dofs, num_dofs);
  triplets.reserve(static_cast<std::size_t>(mesh.num_elems()) * kCondDofs * kCondDofs);
  for (idx_t e = 0; e < mesh.num_elems(); ++e) {
    const mesh::Point3 lo = mesh.elem_min(e);
    const mesh::Point3 hi = mesh.elem_max(e);
    const auto ke =
        hex8_conduction_stiffness(in_plane_per_elem[e], in_plane_per_elem[e],
                                  through_plane_per_elem[e], hi.x - lo.x, hi.y - lo.y, hi.z - lo.z);
    const auto nodes = mesh.elem_nodes(e);
    for (int a = 0; a < kCondDofs; ++a) {
      for (int b = 0; b < kCondDofs; ++b) {
        triplets.add(nodes[a], nodes[b], ke[a * kCondDofs + b]);
      }
    }
  }
  return triplets;
}

CsrMatrix assemble_conduction(const mesh::HexMesh& mesh, const Vec& conductivity_per_elem) {
  return CsrMatrix::from_triplets(conduction_triplets(mesh, conductivity_per_elem));
}

Vec conductivities_from_materials(const mesh::HexMesh& mesh, const fem::MaterialTable& materials) {
  Vec k(static_cast<std::size_t>(mesh.num_elems()));
  for (idx_t e = 0; e < mesh.num_elems(); ++e) {
    const fem::Material& mat = materials.at(mesh.material(e));
    if (mat.conductivity <= 0.0) {
      throw std::invalid_argument("conduction: material '" + mat.name +
                                  "' has no positive conductivity");
    }
    k[e] = mat.conductivity;
  }
  return k;
}

CsrMatrix assemble_conduction(const mesh::HexMesh& mesh, const fem::MaterialTable& materials) {
  return assemble_conduction(mesh, conductivities_from_materials(mesh, materials));
}

la::TripletList capacitance_triplets(const mesh::HexMesh& mesh, const Vec& capacity_per_elem,
                                     bool lumped) {
  if (capacity_per_elem.size() != static_cast<std::size_t>(mesh.num_elems())) {
    throw std::invalid_argument("capacitance_triplets: one heat capacity per element required");
  }
  const idx_t num_dofs = mesh.num_nodes();
  la::TripletList triplets(num_dofs, num_dofs);
  triplets.reserve(static_cast<std::size_t>(mesh.num_elems()) *
                   (lumped ? kCondDofs : kCondDofs * kCondDofs));
  for (idx_t e = 0; e < mesh.num_elems(); ++e) {
    const mesh::Point3 lo = mesh.elem_min(e);
    const mesh::Point3 hi = mesh.elem_max(e);
    const double hx = hi.x - lo.x;
    const double hy = hi.y - lo.y;
    const double hz = hi.z - lo.z;
    const auto nodes = mesh.elem_nodes(e);
    if (lumped) {
      const auto me = hex8_lumped_capacitance(capacity_per_elem[e], hx, hy, hz);
      for (int a = 0; a < kCondDofs; ++a) triplets.add(nodes[a], nodes[a], me[a]);
    } else {
      const auto me = hex8_capacitance_matrix(capacity_per_elem[e], hx, hy, hz);
      for (int a = 0; a < kCondDofs; ++a) {
        for (int b = 0; b < kCondDofs; ++b) {
          triplets.add(nodes[a], nodes[b], me[a * kCondDofs + b]);
        }
      }
    }
  }
  return triplets;
}

CsrMatrix assemble_capacitance(const mesh::HexMesh& mesh, const Vec& capacity_per_elem,
                               bool lumped) {
  return CsrMatrix::from_triplets(capacitance_triplets(mesh, capacity_per_elem, lumped));
}

Vec capacities_from_materials(const mesh::HexMesh& mesh, const fem::MaterialTable& materials) {
  Vec c(static_cast<std::size_t>(mesh.num_elems()));
  for (idx_t e = 0; e < mesh.num_elems(); ++e) {
    const fem::Material& mat = materials.at(mesh.material(e));
    if (mat.volumetric_heat_capacity <= 0.0) {
      throw std::invalid_argument("transient conduction: material '" + mat.name +
                                  "' has no positive volumetric heat capacity");
    }
    c[e] = mat.volumetric_heat_capacity;
  }
  return c;
}

Vec assemble_power_load(const mesh::HexMesh& mesh, const PowerMap& power) {
  Vec rhs(static_cast<std::size_t>(mesh.num_nodes()), 0.0);
  const idx_t kz = mesh.elems_z() - 1;  // top element layer
  for (idx_t j = 0; j < mesh.elems_y(); ++j) {
    for (idx_t i = 0; i < mesh.elems_x(); ++i) {
      const idx_t e = mesh.elem_id(i, j, kz);
      const mesh::Point3 c = mesh.elem_centroid(e);
      const double q = power.density_at(c.x, c.y) * kPerMm2ToPerUm2;
      if (q == 0.0) continue;
      const mesh::Point3 lo = mesh.elem_min(e);
      const mesh::Point3 hi = mesh.elem_max(e);
      const auto fe = hex8_top_flux_load(q, hi.x - lo.x, hi.y - lo.y);
      const auto nodes = mesh.elem_nodes(e);
      for (int a = 0; a < kCondDofs; ++a) rhs[nodes[a]] += fe[a];
    }
  }
  return rhs;
}

void add_convective_face(const mesh::HexMesh& mesh, double film_coefficient, double ambient,
                         int face, la::TripletList& triplets, Vec& rhs) {
  if (film_coefficient <= 0.0) {
    throw std::invalid_argument("add_convective_face: film coefficient must be positive");
  }
  const idx_t kz = (face == 0) ? 0 : mesh.elems_z() - 1;
  for (idx_t j = 0; j < mesh.elems_y(); ++j) {
    for (idx_t i = 0; i < mesh.elems_x(); ++i) {
      const idx_t e = mesh.elem_id(i, j, kz);
      const mesh::Point3 lo = mesh.elem_min(e);
      const mesh::Point3 hi = mesh.elem_max(e);
      const double hx = hi.x - lo.x;
      const double hy = hi.y - lo.y;
      const auto me = hex8_face_film_matrix(film_coefficient, hx, hy, face);
      const auto nodes = mesh.elem_nodes(e);
      const int base = (face == 0) ? 0 : 4;
      for (int a = base; a < base + 4; ++a) {
        double row_sum = 0.0;
        for (int b = base; b < base + 4; ++b) {
          triplets.add(nodes[a], nodes[b], me[a * kCondDofs + b]);
          row_sum += me[a * kCondDofs + b];
        }
        // The Robin rhs term is the film matrix applied to the constant
        // ambient field, i.e. the row sum times T_amb.
        rhs[nodes[a]] += row_sum * ambient;
      }
    }
  }
}

namespace {

/// The three phase areas of a unit block cross-section and their
/// conductivities, shared by every effective-medium estimate.
struct BlockPhases {
  double cu_area, liner_area, si_area, block_area;
  double k_cu, k_liner, k_si;
};

BlockPhases block_phases(const mesh::TsvGeometry& geometry, const fem::MaterialTable& materials) {
  BlockPhases p{};
  p.block_area = geometry.pitch * geometry.pitch;
  p.cu_area = M_PI * geometry.copper_radius() * geometry.copper_radius();
  p.liner_area = M_PI * geometry.liner_radius() * geometry.liner_radius() - p.cu_area;
  p.si_area = p.block_area - p.cu_area - p.liner_area;
  p.k_si = materials.at(mesh::MaterialId::Silicon).conductivity;
  p.k_cu = materials.at(mesh::MaterialId::Copper).conductivity;
  p.k_liner = materials.at(mesh::MaterialId::Liner).conductivity;
  if (p.k_si <= 0.0 || p.k_cu <= 0.0 || p.k_liner <= 0.0) {
    throw std::invalid_argument("block conductivity: material conductivities must be positive");
  }
  return p;
}

}  // namespace

double effective_block_conductivity(const mesh::TsvGeometry& geometry,
                                    const fem::MaterialTable& materials) {
  const BlockPhases p = block_phases(geometry, materials);
  return (p.si_area * p.k_si + p.cu_area * p.k_cu + p.liner_area * p.k_liner) / p.block_area;
}

double effective_block_capacity(const mesh::TsvGeometry& geometry,
                                const fem::MaterialTable& materials) {
  const BlockPhases p = block_phases(geometry, materials);
  const double c_si = materials.at(mesh::MaterialId::Silicon).volumetric_heat_capacity;
  const double c_cu = materials.at(mesh::MaterialId::Copper).volumetric_heat_capacity;
  const double c_liner = materials.at(mesh::MaterialId::Liner).volumetric_heat_capacity;
  if (c_si <= 0.0 || c_cu <= 0.0 || c_liner <= 0.0) {
    throw std::invalid_argument("block capacity: material heat capacities must be positive");
  }
  return (p.si_area * c_si + p.cu_area * c_cu + p.liner_area * c_liner) / p.block_area;
}

double block_capacity(const mesh::TsvGeometry& geometry, const fem::MaterialTable& materials,
                      bool is_tsv, ConductivityModel model) {
  if (model == ConductivityModel::kTsvAware && !is_tsv) {
    const double c_si = materials.at(mesh::MaterialId::Silicon).volumetric_heat_capacity;
    if (c_si <= 0.0) {
      throw std::invalid_argument("block_capacity: silicon heat capacity must be positive");
    }
    return c_si;
  }
  return effective_block_capacity(geometry, materials);
}

double reuss_block_conductivity(const mesh::TsvGeometry& geometry,
                                const fem::MaterialTable& materials) {
  const BlockPhases p = block_phases(geometry, materials);
  return p.block_area /
         (p.si_area / p.k_si + p.cu_area / p.k_cu + p.liner_area / p.k_liner);
}

double maxwell_garnett_in_plane_conductivity(const mesh::TsvGeometry& geometry,
                                             const fem::MaterialTable& materials) {
  const BlockPhases p = block_phases(geometry, materials);
  // Step 1: homogenize the liner-coated copper cylinder (2D core-shell
  // formula; fc is the core's share of the coated cylinder's cross-section).
  const double fc = p.cu_area / (p.cu_area + p.liner_area);
  const double k_via = p.k_liner *
                       ((1.0 + fc) * p.k_cu + (1.0 - fc) * p.k_liner) /
                       ((1.0 - fc) * p.k_cu + (1.0 + fc) * p.k_liner);
  // Step 2: 2D Maxwell-Garnett for the homogenized cylinder in the silicon
  // matrix at the via area fraction f.
  const double f = (p.cu_area + p.liner_area) / p.block_area;
  return p.k_si * ((1.0 + f) * k_via + (1.0 - f) * p.k_si) /
         ((1.0 - f) * k_via + (1.0 + f) * p.k_si);
}

BlockBinning::BlockBinning(int blocks_x, int blocks_y, double pitch,
                           std::vector<std::uint8_t> tsv_mask)
    : blocks_x_(blocks_x), blocks_y_(blocks_y), pitch_(pitch), mask_(std::move(tsv_mask)) {
  if (blocks_x_ < 1 || blocks_y_ < 1) {
    throw std::invalid_argument("BlockBinning: need >= 1 block per axis");
  }
  if (pitch_ <= 0.0) throw std::invalid_argument("BlockBinning: pitch must be positive");
  if (!mask_.empty() && mask_.size() != static_cast<std::size_t>(blocks_x_) * blocks_y_) {
    throw std::invalid_argument("BlockBinning: mask size must be blocks_x*blocks_y");
  }
}

bool BlockBinning::is_tsv(double x, double y) const {
  const int bx = std::min(std::max(static_cast<int>(x / pitch_), 0), blocks_x_ - 1);
  const int by = std::min(std::max(static_cast<int>(y / pitch_), 0), blocks_y_ - 1);
  return mask_.empty() || mask_[static_cast<std::size_t>(by) * blocks_x_ + bx] != 0;
}

BlockConductivityMap::BlockConductivityMap(const mesh::TsvGeometry& geometry,
                                           const fem::MaterialTable& materials, int blocks_x,
                                           int blocks_y, std::vector<std::uint8_t> tsv_mask,
                                           ConductivityModel model)
    : binning_(blocks_x, blocks_y, geometry.pitch, std::move(tsv_mask)),
      tsv_k_(block_conductivity(geometry, materials, /*is_tsv=*/true, model)),
      dummy_k_(block_conductivity(geometry, materials, /*is_tsv=*/false, model)) {}

const BlockConductivity& BlockConductivityMap::at(double x, double y) const {
  return binning_.is_tsv(x, y) ? tsv_k_ : dummy_k_;
}

BlockConductivity block_conductivity(const mesh::TsvGeometry& geometry,
                                     const fem::MaterialTable& materials, bool is_tsv,
                                     ConductivityModel model) {
  if (model == ConductivityModel::kViaAveraged) {
    const double k = effective_block_conductivity(geometry, materials);
    return {k, k};
  }
  if (!is_tsv) {
    // Dummy blocks carry no via: they conduct like bulk silicon.
    const double k_si = materials.at(mesh::MaterialId::Silicon).conductivity;
    if (k_si <= 0.0) {
      throw std::invalid_argument("block_conductivity: silicon conductivity must be positive");
    }
    return {k_si, k_si};
  }
  return {maxwell_garnett_in_plane_conductivity(geometry, materials),
          effective_block_conductivity(geometry, materials)};
}

}  // namespace ms::thermal
