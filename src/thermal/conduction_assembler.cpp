#include "thermal/conduction_assembler.hpp"

#include <cmath>
#include <stdexcept>

#include "thermal/conduction.hpp"

namespace ms::thermal {

la::TripletList conduction_triplets(const mesh::HexMesh& mesh, const Vec& conductivity_per_elem) {
  if (conductivity_per_elem.size() != static_cast<std::size_t>(mesh.num_elems())) {
    throw std::invalid_argument("conduction_triplets: one conductivity per element required");
  }
  const idx_t num_dofs = mesh.num_nodes();
  la::TripletList triplets(num_dofs, num_dofs);
  triplets.reserve(static_cast<std::size_t>(mesh.num_elems()) * kCondDofs * kCondDofs);
  for (idx_t e = 0; e < mesh.num_elems(); ++e) {
    const mesh::Point3 lo = mesh.elem_min(e);
    const mesh::Point3 hi = mesh.elem_max(e);
    const auto ke = hex8_conduction_stiffness(conductivity_per_elem[e], hi.x - lo.x, hi.y - lo.y,
                                              hi.z - lo.z);
    const auto nodes = mesh.elem_nodes(e);
    for (int a = 0; a < kCondDofs; ++a) {
      for (int b = 0; b < kCondDofs; ++b) {
        triplets.add(nodes[a], nodes[b], ke[a * kCondDofs + b]);
      }
    }
  }
  return triplets;
}

CsrMatrix assemble_conduction(const mesh::HexMesh& mesh, const Vec& conductivity_per_elem) {
  return CsrMatrix::from_triplets(conduction_triplets(mesh, conductivity_per_elem));
}

Vec conductivities_from_materials(const mesh::HexMesh& mesh, const fem::MaterialTable& materials) {
  Vec k(static_cast<std::size_t>(mesh.num_elems()));
  for (idx_t e = 0; e < mesh.num_elems(); ++e) {
    const fem::Material& mat = materials.at(mesh.material(e));
    if (mat.conductivity <= 0.0) {
      throw std::invalid_argument("conduction: material '" + mat.name +
                                  "' has no positive conductivity");
    }
    k[e] = mat.conductivity;
  }
  return k;
}

CsrMatrix assemble_conduction(const mesh::HexMesh& mesh, const fem::MaterialTable& materials) {
  return assemble_conduction(mesh, conductivities_from_materials(mesh, materials));
}

Vec assemble_power_load(const mesh::HexMesh& mesh, const PowerMap& power) {
  Vec rhs(static_cast<std::size_t>(mesh.num_nodes()), 0.0);
  const idx_t kz = mesh.elems_z() - 1;  // top element layer
  for (idx_t j = 0; j < mesh.elems_y(); ++j) {
    for (idx_t i = 0; i < mesh.elems_x(); ++i) {
      const idx_t e = mesh.elem_id(i, j, kz);
      const mesh::Point3 c = mesh.elem_centroid(e);
      const double q = power.density_at(c.x, c.y) * kPerMm2ToPerUm2;
      if (q == 0.0) continue;
      const mesh::Point3 lo = mesh.elem_min(e);
      const mesh::Point3 hi = mesh.elem_max(e);
      const auto fe = hex8_top_flux_load(q, hi.x - lo.x, hi.y - lo.y);
      const auto nodes = mesh.elem_nodes(e);
      for (int a = 0; a < kCondDofs; ++a) rhs[nodes[a]] += fe[a];
    }
  }
  return rhs;
}

void add_convective_face(const mesh::HexMesh& mesh, double film_coefficient, double ambient,
                         int face, la::TripletList& triplets, Vec& rhs) {
  if (film_coefficient <= 0.0) {
    throw std::invalid_argument("add_convective_face: film coefficient must be positive");
  }
  const idx_t kz = (face == 0) ? 0 : mesh.elems_z() - 1;
  for (idx_t j = 0; j < mesh.elems_y(); ++j) {
    for (idx_t i = 0; i < mesh.elems_x(); ++i) {
      const idx_t e = mesh.elem_id(i, j, kz);
      const mesh::Point3 lo = mesh.elem_min(e);
      const mesh::Point3 hi = mesh.elem_max(e);
      const double hx = hi.x - lo.x;
      const double hy = hi.y - lo.y;
      const auto me = hex8_face_film_matrix(film_coefficient, hx, hy, face);
      const auto nodes = mesh.elem_nodes(e);
      const int base = (face == 0) ? 0 : 4;
      for (int a = base; a < base + 4; ++a) {
        double row_sum = 0.0;
        for (int b = base; b < base + 4; ++b) {
          triplets.add(nodes[a], nodes[b], me[a * kCondDofs + b]);
          row_sum += me[a * kCondDofs + b];
        }
        // The Robin rhs term is the film matrix applied to the constant
        // ambient field, i.e. the row sum times T_amb.
        rhs[nodes[a]] += row_sum * ambient;
      }
    }
  }
}

double effective_block_conductivity(const mesh::TsvGeometry& geometry,
                                    const fem::MaterialTable& materials) {
  const double block_area = geometry.pitch * geometry.pitch;
  const double cu_area = M_PI * geometry.copper_radius() * geometry.copper_radius();
  const double liner_area =
      M_PI * geometry.liner_radius() * geometry.liner_radius() - cu_area;
  const double si_area = block_area - cu_area - liner_area;
  const double k_si = materials.at(mesh::MaterialId::Silicon).conductivity;
  const double k_cu = materials.at(mesh::MaterialId::Copper).conductivity;
  const double k_liner = materials.at(mesh::MaterialId::Liner).conductivity;
  if (k_si <= 0.0 || k_cu <= 0.0 || k_liner <= 0.0) {
    throw std::invalid_argument("effective_block_conductivity: conductivities must be positive");
  }
  return (si_area * k_si + cu_area * k_cu + liner_area * k_liner) / block_area;
}

}  // namespace ms::thermal
