#include "thermal/power_map.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace ms::thermal {

PowerMap::PowerMap(int tiles_x, int tiles_y, double width, double height, double background)
    : PowerMap(tiles_x, tiles_y, width, height,
               std::vector<double>(static_cast<std::size_t>(tiles_x) *
                                       static_cast<std::size_t>(tiles_y),
                                   background)) {}

PowerMap::PowerMap(int tiles_x, int tiles_y, double width, double height,
                   std::vector<double> densities)
    : tiles_x_(tiles_x),
      tiles_y_(tiles_y),
      width_(width),
      height_(height),
      densities_(std::move(densities)) {
  if (tiles_x < 1 || tiles_y < 1) throw std::invalid_argument("PowerMap: need >= 1 tile per axis");
  if (width <= 0.0 || height <= 0.0) throw std::invalid_argument("PowerMap: extent must be > 0");
  if (densities_.size() != static_cast<std::size_t>(tiles_x_) * tiles_y_) {
    throw std::invalid_argument("PowerMap: densities size must be tiles_x*tiles_y");
  }
}

PowerMap PowerMap::per_block(int blocks_x, int blocks_y, double pitch, double background) {
  return PowerMap(blocks_x, blocks_y, blocks_x * pitch, blocks_y * pitch, background);
}

double PowerMap::tile(int tx, int ty) const {
  if (tx < 0 || tx >= tiles_x_ || ty < 0 || ty >= tiles_y_) {
    throw std::out_of_range("PowerMap::tile: index out of range");
  }
  return densities_[static_cast<std::size_t>(ty) * tiles_x_ + tx];
}

void PowerMap::set_tile(int tx, int ty, double density) {
  if (tx < 0 || tx >= tiles_x_ || ty < 0 || ty >= tiles_y_) {
    throw std::out_of_range("PowerMap::set_tile: index out of range");
  }
  densities_[static_cast<std::size_t>(ty) * tiles_x_ + tx] = density;
}

double PowerMap::density_at(double x, double y) const {
  if (x < 0.0 || x > width_ || y < 0.0 || y > height_) return 0.0;
  const int tx = std::min(tiles_x_ - 1, static_cast<int>(x / width_ * tiles_x_));
  const int ty = std::min(tiles_y_ - 1, static_cast<int>(y / height_ * tiles_y_));
  return densities_[static_cast<std::size_t>(ty) * tiles_x_ + tx];
}

double PowerMap::tile_center_x(int tx) const { return (tx + 0.5) * width_ / tiles_x_; }

double PowerMap::tile_center_y(int ty) const { return (ty + 0.5) * height_ / tiles_y_; }

void PowerMap::add_gaussian_hotspot(double cx, double cy, double sigma, double peak) {
  if (sigma <= 0.0) throw std::invalid_argument("PowerMap::add_gaussian_hotspot: sigma > 0");
  const double inv = 1.0 / (2.0 * sigma * sigma);
  for (int ty = 0; ty < tiles_y_; ++ty) {
    for (int tx = 0; tx < tiles_x_; ++tx) {
      const double dx = tile_center_x(tx) - cx;
      const double dy = tile_center_y(ty) - cy;
      densities_[static_cast<std::size_t>(ty) * tiles_x_ + tx] +=
          peak * std::exp(-(dx * dx + dy * dy) * inv);
    }
  }
}

void PowerMap::add_rect(double x0, double y0, double x1, double y1, double density) {
  for (int ty = 0; ty < tiles_y_; ++ty) {
    for (int tx = 0; tx < tiles_x_; ++tx) {
      const double cx = tile_center_x(tx);
      const double cy = tile_center_y(ty);
      if (cx >= x0 && cx <= x1 && cy >= y0 && cy <= y1) {
        densities_[static_cast<std::size_t>(ty) * tiles_x_ + tx] += density;
      }
    }
  }
}

double PowerMap::total_power() const {
  // Tile area in um^2 times W/mm^2 -> W needs the 1e-6 um^2/mm^2 factor.
  const double tile_area = (width_ / tiles_x_) * (height_ / tiles_y_) * 1e-6;
  double sum = 0.0;
  for (double q : densities_) sum += q;
  return sum * tile_area;
}

double PowerMap::peak_density() const {
  double peak = 0.0;
  for (double q : densities_) peak = std::max(peak, q);
  return peak;
}

bool PowerMap::is_uniform() const {
  for (double q : densities_) {
    if (q != densities_.front()) return false;
  }
  return true;
}

}  // namespace ms::thermal
