#include "thermal/power_trace.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <utility>

namespace ms::thermal {

namespace {

bool same_tiling(const PowerMap& a, const PowerMap& b) {
  return a.tiles_x() == b.tiles_x() && a.tiles_y() == b.tiles_y() &&
         a.width() == b.width() && a.height() == b.height();
}

}  // namespace

void PowerTrace::add_keyframe(double time, PowerMap map) {
  if (times_.empty()) {
    if (time < 0.0) throw std::invalid_argument("PowerTrace: keyframe times must be >= 0");
  } else {
    if (time <= times_.back()) {
      throw std::invalid_argument("PowerTrace: keyframe times must be strictly increasing");
    }
    if (interpolation_ == Interpolation::kLinear && !same_tiling(maps_.front(), map)) {
      throw std::invalid_argument(
          "PowerTrace: linear interpolation requires all keyframes on one tiling");
    }
  }
  times_.push_back(time);
  maps_.push_back(std::move(map));
}

double PowerTrace::duration() const { return times_.empty() ? 0.0 : times_.back(); }

PowerTrace::Sample PowerTrace::sample(double time) const {
  if (times_.empty()) throw std::logic_error("PowerTrace::sample: empty trace");
  Sample s;
  if (time <= times_.front()) return s;  // clamp to the first keyframe
  if (time >= times_.back()) {
    s.lo = s.hi = times_.size() - 1;
    return s;
  }
  // First keyframe strictly after `time`; the active interval is [it-1, it).
  const auto it = std::upper_bound(times_.begin(), times_.end(), time);
  const std::size_t hi = static_cast<std::size_t>(it - times_.begin());
  s.lo = hi - 1;
  if (interpolation_ == Interpolation::kPiecewiseConstant) {
    s.hi = s.lo;
    return s;
  }
  s.hi = hi;
  s.weight = (time - times_[s.lo]) / (times_[s.hi] - times_[s.lo]);
  return s;
}

PowerMap PowerTrace::at(double time) const {
  const Sample s = sample(time);
  if (s.lo == s.hi || s.weight == 0.0) return maps_[s.lo];
  const PowerMap& a = maps_[s.lo];
  const PowerMap& b = maps_[s.hi];
  PowerMap blended(a.tiles_x(), a.tiles_y(), a.width(), a.height());
  for (int ty = 0; ty < a.tiles_y(); ++ty) {
    for (int tx = 0; tx < a.tiles_x(); ++tx) {
      blended.set_tile(tx, ty, (1.0 - s.weight) * a.tile(tx, ty) + s.weight * b.tile(tx, ty));
    }
  }
  return blended;
}

bool PowerTrace::is_constant() const {
  for (std::size_t i = 1; i < maps_.size(); ++i) {
    if (!same_tiling(maps_.front(), maps_[i])) return false;
    for (int ty = 0; ty < maps_.front().tiles_y(); ++ty) {
      for (int tx = 0; tx < maps_.front().tiles_x(); ++tx) {
        if (maps_[i].tile(tx, ty) != maps_.front().tile(tx, ty)) return false;
      }
    }
  }
  return true;
}

PowerTrace PowerTrace::constant(PowerMap map, double duration) {
  if (duration <= 0.0) throw std::invalid_argument("PowerTrace::constant: duration must be > 0");
  PowerTrace trace(Interpolation::kPiecewiseConstant);
  trace.add_keyframe(0.0, map);
  trace.add_keyframe(duration, std::move(map));
  return trace;
}

PowerTrace PowerTrace::square_wave(PowerMap low, PowerMap high, double period, double duty,
                                   int cycles) {
  if (period <= 0.0) throw std::invalid_argument("PowerTrace::square_wave: period must be > 0");
  if (duty <= 0.0 || duty >= 1.0) {
    throw std::invalid_argument("PowerTrace::square_wave: duty must lie in (0, 1)");
  }
  if (cycles < 1) throw std::invalid_argument("PowerTrace::square_wave: need >= 1 cycle");
  if (!same_tiling(low, high)) {
    throw std::invalid_argument("PowerTrace::square_wave: low/high maps must share a footprint");
  }
  PowerTrace trace(Interpolation::kPiecewiseConstant);
  for (int c = 0; c < cycles; ++c) {
    trace.add_keyframe(c * period, high);
    trace.add_keyframe((c + duty) * period, low);
  }
  trace.add_keyframe(cycles * period, std::move(low));
  return trace;
}

PowerTrace PowerTrace::migrating_hotspot(const PowerMap& background, double x0, double y0,
                                         double x1, double y1, double sigma, double peak,
                                         double duration, int steps) {
  if (duration <= 0.0) {
    throw std::invalid_argument("PowerTrace::migrating_hotspot: duration must be > 0");
  }
  if (steps < 1) throw std::invalid_argument("PowerTrace::migrating_hotspot: need >= 1 step");
  PowerTrace trace(Interpolation::kLinear);
  for (int s = 0; s <= steps; ++s) {
    const double w = static_cast<double>(s) / steps;
    PowerMap frame = background;
    frame.add_gaussian_hotspot(x0 + w * (x1 - x0), y0 + w * (y1 - y0), sigma, peak);
    trace.add_keyframe(w * duration, std::move(frame));
  }
  return trace;
}

}  // namespace ms::thermal
