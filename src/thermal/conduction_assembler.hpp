#pragma once
// Assembly of the steady-state conduction system K T = f over a HexMesh.
// One DoF per node (dof = node id), so the fem Dirichlet lifting machinery
// applies unchanged. Heat enters through a PowerMap sampled on the z-max
// face (the active-layer convention for dies); it leaves through a Dirichlet
// or convective ambient boundary installed by the thermal solver.
//
// Units: mesh in um, conductivity in W/(m K), power maps in W/mm^2, film
// coefficients in W/(m^2 K); assembled entries are W/K and W, temperatures
// in degrees C.

#include <cstdint>
#include <vector>

#include "fem/material.hpp"
#include "la/sparse.hpp"
#include "mesh/tsv_block.hpp"
#include "thermal/power_map.hpp"

namespace ms::thermal {

using la::CsrMatrix;
using la::idx_t;
using la::Vec;

/// Conduction triplets with per-element conductivities (size num_elems);
/// compose with boundary terms before compressing to CSR.
la::TripletList conduction_triplets(const mesh::HexMesh& mesh, const Vec& conductivity_per_elem);

/// Orthotropic variant: per-element in-plane (x = y) and through-plane (z)
/// conductivities, the form the TSV-aware effective block model produces.
la::TripletList conduction_triplets(const mesh::HexMesh& mesh, const Vec& in_plane_per_elem,
                                    const Vec& through_plane_per_elem);

/// Conduction matrix with per-element conductivities, compressed.
CsrMatrix assemble_conduction(const mesh::HexMesh& mesh, const Vec& conductivity_per_elem);

/// Conduction matrix with conductivities from the material table (throws if
/// any referenced material has no positive conductivity).
CsrMatrix assemble_conduction(const mesh::HexMesh& mesh, const fem::MaterialTable& materials);

/// Per-element conductivities looked up from the material table.
Vec conductivities_from_materials(const mesh::HexMesh& mesh, const fem::MaterialTable& materials);

/// Capacitance (thermal mass) triplets with per-element volumetric heat
/// capacities (size num_elems, J/(m^3 K)): the M of the transient system
/// M dT/dt + K T = f. `lumped` row-sums each element matrix onto the
/// diagonal (the robust default for implicit stepping); consistent keeps the
/// full tensor-product mass.
la::TripletList capacitance_triplets(const mesh::HexMesh& mesh, const Vec& capacity_per_elem,
                                     bool lumped);

/// Capacitance matrix, compressed.
CsrMatrix assemble_capacitance(const mesh::HexMesh& mesh, const Vec& capacity_per_elem,
                               bool lumped);

/// Per-element volumetric heat capacities looked up from the material table
/// (throws if any referenced material has no positive capacity).
Vec capacities_from_materials(const mesh::HexMesh& mesh, const fem::MaterialTable& materials);

/// Volume-weighted effective heat capacity of a TSV unit block [J/(m^3 K)].
/// Unlike conductivity, the volume average is exact for capacity (it is an
/// extensive quantity), so there is one estimate, not a Voigt/Reuss pair.
double effective_block_capacity(const mesh::TsvGeometry& geometry,
                                const fem::MaterialTable& materials);

/// Load vector of `power` applied as a surface flux on the z-max face; the
/// map is sampled at each top-face centroid (elements finer than tiles see
/// exact tile values, coarser elements see the centroid tile).
Vec assemble_power_load(const mesh::HexMesh& mesh, const PowerMap& power);

/// Add a convective (Robin) ambient boundary on a z face: the stiffness
/// gains the film matrix, the rhs gains film * ambient on the face nodes.
/// `face` is 0 for z-min, 1 for z-max.
void add_convective_face(const mesh::HexMesh& mesh, double film_coefficient, double ambient,
                         int face, la::TripletList& triplets, Vec& rhs);

/// Area-weighted vertical effective conductivity of a TSV unit block
/// (parallel Cu / liner / Si paths): the coarse array thermal mesh uses one
/// isotropic value per block instead of resolving the via. This is the Voigt
/// (arithmetic, parallel-path) bound of the three-phase mixture.
double effective_block_conductivity(const mesh::TsvGeometry& geometry,
                                    const fem::MaterialTable& materials);

/// Reuss (harmonic, series-path) bound of the same mixture: the lower bracket
/// any admissible effective conductivity must respect.
double reuss_block_conductivity(const mesh::TsvGeometry& geometry,
                                const fem::MaterialTable& materials);

/// In-plane effective conductivity of a TSV unit block: the liner-coated
/// copper cylinder is first homogenized (2D coated-inclusion formula), then
/// embedded in the silicon matrix with the 2D Maxwell-Garnett mixing rule at
/// the via area fraction. Lies strictly within the Voigt/Reuss bracket.
double maxwell_garnett_in_plane_conductivity(const mesh::TsvGeometry& geometry,
                                             const fem::MaterialTable& materials);

/// How unit-block conductivities are derived for coarse thermal meshes.
enum class ConductivityModel {
  kViaAveraged,  ///< PR-1 behaviour: one isotropic Voigt average for every block
  kTsvAware,     ///< per-block: dummy = bulk Si; TSV = anisotropic (MG / Voigt)
};

/// Effective conductivity of one unit block, split into the two independent
/// components of the transversely isotropic tensor (x = y in plane, z through).
struct BlockConductivity {
  double in_plane = 0.0;       ///< kx = ky [W/(m K)]
  double through_plane = 0.0;  ///< kz [W/(m K)]
};

/// Per-block effective conductivity: dummy blocks (is_tsv = false) conduct
/// like bulk silicon under kTsvAware; TSV blocks combine the through-plane
/// Voigt average (parallel via) with the in-plane Maxwell-Garnett estimate
/// (liner-shielded via). kViaAveraged reproduces the PR-1 isotropic value for
/// every block regardless of is_tsv.
BlockConductivity block_conductivity(const mesh::TsvGeometry& geometry,
                                     const fem::MaterialTable& materials, bool is_tsv,
                                     ConductivityModel model);

/// Per-block effective volumetric heat capacity [J/(m^3 K)], the companion
/// of block_conductivity for transient solves: dummy blocks hold bulk
/// silicon under kTsvAware, TSV blocks (and every block under kViaAveraged)
/// the exact volume-weighted three-phase average.
double block_capacity(const mesh::TsvGeometry& geometry, const fem::MaterialTable& materials,
                      bool is_tsv, ConductivityModel model);

/// Per-element orthotropic conductivity field over a coarse thermal mesh
/// (one in-plane and one through-plane value per element).
struct ConductivityField {
  Vec in_plane;
  Vec through_plane;
};

/// Centroid -> unit-block binning (clamped floor) plus the y-major TSV mask
/// convention (1 = TSV, empty = all TSV): the one owner of the block-lookup
/// rules every per-block field builder (conductivity, capacity, array and
/// package meshes) shares.
class BlockBinning {
 public:
  BlockBinning(int blocks_x, int blocks_y, double pitch, std::vector<std::uint8_t> tsv_mask);

  /// Whether the block containing window-local plan point (x, y) carries a
  /// via; callers outside the window must not ask (coordinates are clamped).
  [[nodiscard]] bool is_tsv(double x, double y) const;

  [[nodiscard]] int blocks_x() const { return blocks_x_; }
  [[nodiscard]] int blocks_y() const { return blocks_y_; }

 private:
  int blocks_x_, blocks_y_;
  double pitch_;
  std::vector<std::uint8_t> mask_;
};

/// Per-block conductivity lookup for a window of unit blocks, layered on
/// BlockBinning.
class BlockConductivityMap {
 public:
  BlockConductivityMap(const mesh::TsvGeometry& geometry, const fem::MaterialTable& materials,
                       int blocks_x, int blocks_y, std::vector<std::uint8_t> tsv_mask,
                       ConductivityModel model);

  /// Conductivity of the block containing window-local plan point (x, y);
  /// callers outside the window must not ask (coordinates are clamped).
  [[nodiscard]] const BlockConductivity& at(double x, double y) const;

 private:
  BlockBinning binning_;
  BlockConductivity tsv_k_, dummy_k_;
};

}  // namespace ms::thermal
