#pragma once
// Assembly of the steady-state conduction system K T = f over a HexMesh.
// One DoF per node (dof = node id), so the fem Dirichlet lifting machinery
// applies unchanged. Heat enters through a PowerMap sampled on the z-max
// face (the active-layer convention for dies); it leaves through a Dirichlet
// or convective ambient boundary installed by the thermal solver.
//
// Units: mesh in um, conductivity in W/(m K), power maps in W/mm^2, film
// coefficients in W/(m^2 K); assembled entries are W/K and W, temperatures
// in degrees C.

#include "fem/material.hpp"
#include "la/sparse.hpp"
#include "mesh/tsv_block.hpp"
#include "thermal/power_map.hpp"

namespace ms::thermal {

using la::CsrMatrix;
using la::idx_t;
using la::Vec;

/// Conduction triplets with per-element conductivities (size num_elems);
/// compose with boundary terms before compressing to CSR.
la::TripletList conduction_triplets(const mesh::HexMesh& mesh, const Vec& conductivity_per_elem);

/// Conduction matrix with per-element conductivities, compressed.
CsrMatrix assemble_conduction(const mesh::HexMesh& mesh, const Vec& conductivity_per_elem);

/// Conduction matrix with conductivities from the material table (throws if
/// any referenced material has no positive conductivity).
CsrMatrix assemble_conduction(const mesh::HexMesh& mesh, const fem::MaterialTable& materials);

/// Per-element conductivities looked up from the material table.
Vec conductivities_from_materials(const mesh::HexMesh& mesh, const fem::MaterialTable& materials);

/// Load vector of `power` applied as a surface flux on the z-max face; the
/// map is sampled at each top-face centroid (elements finer than tiles see
/// exact tile values, coarser elements see the centroid tile).
Vec assemble_power_load(const mesh::HexMesh& mesh, const PowerMap& power);

/// Add a convective (Robin) ambient boundary on a z face: the stiffness
/// gains the film matrix, the rhs gains film * ambient on the face nodes.
/// `face` is 0 for z-min, 1 for z-max.
void add_convective_face(const mesh::HexMesh& mesh, double film_coefficient, double ambient,
                         int face, la::TripletList& triplets, Vec& rhs);

/// Area-weighted vertical effective conductivity of a TSV unit block
/// (parallel Cu / liner / Si paths): the coarse array thermal mesh uses one
/// isotropic value per block instead of resolving the via.
double effective_block_conductivity(const mesh::TsvGeometry& geometry,
                                    const fem::MaterialTable& materials);

}  // namespace ms::thermal
