#pragma once
// Scalar 8-node conduction element for the steady-state heat equation
// div(k grad T) + q = 0 on the axis-aligned hex meshes used everywhere in
// this repository. Reuses the trilinear shape machinery of fem/hex8; like
// the elastic element, the constant diagonal Jacobian lets every integral
// specialize to closed 2x2x2 Gauss sums.
//
// Unit convention (see conduction_assembler.hpp): lengths in micrometres,
// conductivity in W/(m K), surface power density in W/mm^2, temperatures in
// degrees C. The element kernels absorb the unit conversions so assembled
// systems are consistently in watts and kelvins.

#include <array>

#include "fem/hex8.hpp"

namespace ms::thermal {

/// One temperature DoF per node.
inline constexpr int kCondDofs = fem::kHexNodes;  // 8

/// Micrometre -> metre, applied once per power of length in each integral.
inline constexpr double kMicro = 1e-6;

/// W/mm^2 -> W/um^2 for surface power densities.
inline constexpr double kPerMm2ToPerUm2 = 1e-6;

/// Element conduction matrix Ke (8 x 8, row-major) = integral k grad(N_a) .
/// grad(N_b) dV for a box element of edges (hx, hy, hz) [um] and conductivity
/// k [W/(m K)]. Entries come out in W/K.
std::array<double, kCondDofs * kCondDofs> hex8_conduction_stiffness(double conductivity, double hx,
                                                                    double hy, double hz);

/// Orthotropic variant: a diagonal conductivity tensor diag(kx, ky, kz)
/// [W/(m K)] aligned with the mesh axes — the form the TSV-aware effective
/// block conductivity produces (in-plane kx = ky, through-plane kz). The
/// isotropic overload is the kx = ky = kz special case.
std::array<double, kCondDofs * kCondDofs> hex8_conduction_stiffness(double kx, double ky, double kz,
                                                                    double hx, double hy,
                                                                    double hz);

/// Nodal load of a uniform normal heat flux q [W/um^2] on the z-max face:
/// q A / 4 on each of the four top nodes (bilinear face functions integrate
/// to A/4 each). Entries in W; only indices 4..7 are nonzero.
std::array<double, kCondDofs> hex8_top_flux_load(double q, double hx, double hy);

/// Consistent capacitance (thermal mass) matrix Me (8 x 8, row-major) =
/// integral c N_a N_b dV for a box element of edges (hx, hy, hz) [um] and
/// volumetric heat capacity c = rho c_p [J/(m^3 K)]. Entries come out in J/K
/// (three powers of length, so kMicro^3 converts the um^3 volume); the total
/// sums to c V. Closed form: the 1-D linear mass factors 1/3 (same corner) /
/// 1/6 (opposite corner) tensor-multiplied over the three axes.
std::array<double, kCondDofs * kCondDofs> hex8_capacitance_matrix(double capacity, double hx,
                                                                  double hy, double hz);

/// Lumped (row-sum) capacitance: c V / 8 [J/K] on each of the 8 nodes. The
/// diagonal form keeps M positive definite and makes M v a pointwise product.
std::array<double, kCondDofs> hex8_lumped_capacitance(double capacity, double hx, double hy,
                                                      double hz);

/// Bilinear face "mass" matrix scaled by a film coefficient: integral h N_a
/// N_b dA over the z-min (face = 0) or z-max (face = 1) face of the element.
/// h is in W/(m^2 K); entries come out in W/K. Used for convective (Robin)
/// ambient boundaries: Ke += M, rhs += h T_amb A / 4 on the face nodes.
std::array<double, kCondDofs * kCondDofs> hex8_face_film_matrix(double film_coefficient, double hx,
                                                               double hy, int face);

}  // namespace ms::thermal
