#include "thermal/temperature_field.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "fem/hex8.hpp"

namespace ms::thermal {

TemperatureField::TemperatureField(mesh::HexMesh mesh, Vec nodal_temperature)
    : mesh_(std::move(mesh)), t_(std::move(nodal_temperature)) {
  if (t_.size() != static_cast<std::size_t>(mesh_.num_nodes())) {
    throw std::invalid_argument("TemperatureField: one temperature per node required");
  }
}

double TemperatureField::at(const mesh::Point3& p) const {
  const auto loc = mesh_.locate(p);
  const auto shapes = fem::hex8_shape(loc.xi, loc.eta, loc.zeta);
  const auto nodes = mesh_.elem_nodes(loc.elem);
  double sum = 0.0;
  for (int a = 0; a < fem::kHexNodes; ++a) sum += shapes[a] * t_[nodes[a]];
  return sum;
}

double TemperatureField::min() const { return *std::min_element(t_.begin(), t_.end()); }

double TemperatureField::max() const { return *std::max_element(t_.begin(), t_.end()); }

std::vector<double> TemperatureField::block_averages(int blocks_x, int blocks_y,
                                                     double pitch) const {
  return BlockAverager(mesh_, blocks_x, blocks_y, pitch).reduce(t_);
}

BlockAverager::BlockAverager(const mesh::HexMesh& mesh, int blocks_x, int blocks_y, double pitch)
    : blocks_x_(blocks_x), blocks_y_(blocks_y), num_nodes_(mesh.num_nodes()) {
  build(mesh, pitch, mesh::Point3{0.0, 0.0, 0.0}, 0.0, 0.0, /*windowed=*/false);
}

BlockAverager::BlockAverager(const mesh::HexMesh& mesh, int blocks_x, int blocks_y, double pitch,
                             const mesh::Point3& origin, double z0, double z1)
    : blocks_x_(blocks_x), blocks_y_(blocks_y), num_nodes_(mesh.num_nodes()) {
  if (z1 <= z0) throw std::invalid_argument("block_averages: need z1 > z0");
  build(mesh, pitch, origin, z0, z1, /*windowed=*/true);
}

void BlockAverager::build(const mesh::HexMesh& mesh, double pitch, const mesh::Point3& origin,
                          double z0, double z1, bool windowed) {
  if (blocks_x_ < 1 || blocks_y_ < 1) {
    throw std::invalid_argument("block_averages: need >= 1 block per axis");
  }
  if (pitch <= 0.0) throw std::invalid_argument("block_averages: pitch must be positive");
  elem_nodes_.reserve(static_cast<std::size_t>(mesh.num_elems()));
  elem_block_.reserve(elem_nodes_.capacity());
  elem_weight_.reserve(elem_nodes_.capacity());
  std::vector<double> vol(static_cast<std::size_t>(blocks_x_) * blocks_y_, 0.0);
  for (idx_t e = 0; e < mesh.num_elems(); ++e) {
    const mesh::Point3 c = mesh.elem_centroid(e);
    int bx, by;
    if (windowed) {
      if (c.z < z0 || c.z > z1) continue;
      bx = static_cast<int>(std::floor((c.x - origin.x) / pitch));
      by = static_cast<int>(std::floor((c.y - origin.y) / pitch));
      if (bx < 0 || bx >= blocks_x_ || by < 0 || by >= blocks_y_) continue;
    } else {
      bx = std::clamp(static_cast<int>(c.x / pitch), 0, blocks_x_ - 1);
      by = std::clamp(static_cast<int>(c.y / pitch), 0, blocks_y_ - 1);
    }
    elem_nodes_.push_back(mesh.elem_nodes(e));
    elem_block_.push_back(static_cast<std::size_t>(by) * blocks_x_ + bx);
    elem_weight_.push_back(mesh.elem_volume(e));
    vol[elem_block_.back()] += elem_weight_.back();
  }
  for (std::size_t b = 0; b < vol.size(); ++b) {
    if (vol[b] <= 0.0) throw std::logic_error("block_averages: block not covered by the mesh");
  }
  for (std::size_t e = 0; e < elem_weight_.size(); ++e) elem_weight_[e] /= vol[elem_block_[e]];
}

std::vector<double> BlockAverager::reduce(const Vec& nodal) const {
  if (nodal.size() != static_cast<std::size_t>(num_nodes_)) {
    throw std::invalid_argument("BlockAverager::reduce: one value per mesh node required");
  }
  std::vector<double> avg(static_cast<std::size_t>(blocks_x_) * blocks_y_, 0.0);
  for (std::size_t e = 0; e < elem_nodes_.size(); ++e) {
    double mean = 0.0;
    for (idx_t node : elem_nodes_[e]) mean += nodal[node];
    avg[elem_block_[e]] += elem_weight_[e] * (mean / 8.0);
  }
  return avg;
}

std::vector<double> TemperatureField::block_averages(int blocks_x, int blocks_y, double pitch,
                                                     const mesh::Point3& origin, double z0,
                                                     double z1) const {
  // Delegating keeps the steady and transient windowed reductions one
  // implementation — the constant-trace == steady sub-model lock depends on
  // them agreeing.
  return BlockAverager(mesh_, blocks_x, blocks_y, pitch, origin, z0, z1).reduce(t_);
}

}  // namespace ms::thermal
