#pragma once
// Steady-state thermal solves: power map in, nodal temperature field out.
// The standard die stack-up is assumed: heat enters at the z-max face (the
// active layer), leaves at the z-min face into the heat sink / substrate —
// either an ideal (Dirichlet) sink at ambient or a convective film — and
// the lateral faces are adiabatic. Solved with the same la:: CG / sparse
// Cholesky stack as the mechanical problems.

#include <cstdint>
#include <string>
#include <vector>

#include "fem/material.hpp"
#include "mesh/tsv_block.hpp"
#include "thermal/conduction_assembler.hpp"
#include "thermal/power_map.hpp"
#include "thermal/temperature_field.hpp"

namespace ms::thermal {

struct ThermalSolveOptions {
  std::string method = "cg";     ///< "cg" or "direct"
  double rel_tol = 1e-10;
  idx_t max_iterations = 20000;
  double ambient = 25.0;         ///< sink / ambient temperature [C]
  /// Film coefficient of the z-min sink [W/(m^2 K)]; 0 means an ideal sink
  /// (Dirichlet T = ambient on the whole z-min face).
  double sink_film_coefficient = 0.0;
};

struct ThermalSolveStats {
  idx_t num_dofs = 0;
  double assemble_seconds = 0.0;
  double solve_seconds = 0.0;
  idx_t iterations = 0;          ///< 0 on the direct path
  bool converged = false;
  [[nodiscard]] double total_seconds() const { return assemble_seconds + solve_seconds; }
};

/// Solve conduction on `mesh` with per-element conductivities and the power
/// map applied on the z-max face. Returns the nodal temperature field [C].
TemperatureField solve_power_map(const mesh::HexMesh& mesh, const Vec& conductivity_per_elem,
                                 const PowerMap& power, const ThermalSolveOptions& options = {},
                                 ThermalSolveStats* stats = nullptr);

/// Orthotropic variant: per-element in-plane (x = y) and through-plane (z)
/// conductivities (the TSV-aware effective block model).
TemperatureField solve_power_map(const mesh::HexMesh& mesh, const ConductivityField& conductivity,
                                 const PowerMap& power, const ThermalSolveOptions& options = {},
                                 ThermalSolveStats* stats = nullptr);

/// Same, with conductivities from the material table.
TemperatureField solve_power_map(const mesh::HexMesh& mesh, const fem::MaterialTable& materials,
                                 const PowerMap& power, const ThermalSolveOptions& options = {},
                                 ThermalSolveStats* stats = nullptr);

/// Coarse thermal mesh of a blocks_x x blocks_y TSV array: a uniform grid
/// with `elems_per_block_xy` elements across each pitch and `elems_z`
/// through the height. All elements are Silicon; pair with
/// array_block_conductivities (or effective_block_conductivity for the
/// legacy single via-averaged value).
mesh::HexMesh build_array_thermal_mesh(const mesh::TsvGeometry& geometry, int blocks_x,
                                       int blocks_y, int elems_per_block_xy, int elems_z);

/// Per-element effective conductivities of an array thermal mesh: each
/// element takes the block_conductivity of the block its centroid falls in.
/// `tsv_mask` follows the build_array_mesh convention (y-major, 1 = TSV,
/// empty = all TSV); dummy blocks conduct like bulk Si under kTsvAware.
ConductivityField array_block_conductivities(const mesh::HexMesh& mesh,
                                             const mesh::TsvGeometry& geometry,
                                             const fem::MaterialTable& materials, int blocks_x,
                                             int blocks_y,
                                             const std::vector<std::uint8_t>& tsv_mask,
                                             ConductivityModel model);

}  // namespace ms::thermal
