#pragma once
// Thermal solves: power map (or power trace) in, temperature field (or
// per-block ΔT history) out. The standard die stack-up is assumed: heat
// enters at the z-max face (the active layer), leaves at the z-min face into
// the heat sink / substrate — either an ideal (Dirichlet) sink at ambient or
// a convective film — and the lateral faces are adiabatic. Steady state is
// solved with the same la:: CG / sparse Cholesky stack as the mechanical
// problems; the transient θ-scheme factorizes M/Δt + θK once and re-solves
// per step, so a trace of hundreds of steps costs one factorization plus
// that many triangular solves.

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "core/cancel.hpp"
#include "fem/material.hpp"
#include "la/cholesky.hpp"
#include "la/factor_cache.hpp"
#include "la/shift_retry.hpp"
#include "mesh/tsv_block.hpp"
#include "thermal/conduction_assembler.hpp"
#include "thermal/power_map.hpp"
#include "thermal/power_trace.hpp"
#include "thermal/temperature_field.hpp"

namespace ms::thermal {

struct ThermalSolveOptions {
  std::string method = "cg";     ///< "cg" or "direct"
  double rel_tol = 1e-10;
  idx_t max_iterations = 20000;
  double ambient = 25.0;         ///< sink / ambient temperature [C]
  /// Film coefficient of the z-min sink [W/(m^2 K)]; 0 means an ideal sink
  /// (Dirichlet T = ambient on the whole z-min face).
  double sink_film_coefficient = 0.0;
  /// Direct-path (and transient θ-stepper) factorization: ordering +
  /// supernodal/simplicial back end.
  la::SparseCholesky::Options factor;
  /// Cross-call factorization memoization (direct path and θ-stepper only;
  /// cg ignores it). When `factor_cache` is set and `factor_key` non-empty,
  /// the factorization is shared under the key. The key must determine the
  /// assembled operator (mesh, conductivities, film coefficient — and for
  /// the stepper: capacities, Δt, scheme, lumping) plus the constrained-dof
  /// set; the sink *temperature* and the power input vary freely between
  /// callers sharing a key. Results are bit-identical warm or cold.
  la::FactorCache* factor_cache = nullptr;
  std::string factor_key;
  /// SPD breakdown recovery for the factorizing paths (see la/shift_retry.hpp).
  la::ShiftRetryOptions shift_retry;
  /// Cooperative cancellation/deadline token, checked at the factorization
  /// boundary and at every transient trace step (inert by default).
  core::CancelToken cancel;
};

struct ThermalSolveStats {
  idx_t num_dofs = 0;
  double assemble_seconds = 0.0;
  double solve_seconds = 0.0;
  idx_t iterations = 0;          ///< 0 on the direct path
  bool converged = false;
  // Direct-path factorization detail (zero / empty on the cg path):
  double factor_seconds = 0.0;
  la::offset_t factor_nnz = 0;
  double fill_ratio = 0.0;
  std::string ordering;
  /// Set when the factorization needed the diagonal shift-retry ladder.
  bool degraded = false;
  double diagonal_shift = 0.0;
  [[nodiscard]] double total_seconds() const { return assemble_seconds + solve_seconds; }
};

/// Solve conduction on `mesh` with per-element conductivities and the power
/// map applied on the z-max face. Returns the nodal temperature field [C].
TemperatureField solve_power_map(const mesh::HexMesh& mesh, const Vec& conductivity_per_elem,
                                 const PowerMap& power, const ThermalSolveOptions& options = {},
                                 ThermalSolveStats* stats = nullptr);

/// Orthotropic variant: per-element in-plane (x = y) and through-plane (z)
/// conductivities (the TSV-aware effective block model).
TemperatureField solve_power_map(const mesh::HexMesh& mesh, const ConductivityField& conductivity,
                                 const PowerMap& power, const ThermalSolveOptions& options = {},
                                 ThermalSolveStats* stats = nullptr);

/// Same, with conductivities from the material table.
TemperatureField solve_power_map(const mesh::HexMesh& mesh, const fem::MaterialTable& materials,
                                 const PowerMap& power, const ThermalSolveOptions& options = {},
                                 ThermalSolveStats* stats = nullptr);

/// Controls of the implicit transient conduction solve. The time grid is
/// uniform: t_n = n * time_step for n = 0..num_steps. Stability is
/// unconditional for both schemes (backward Euler damps, Crank–Nicolson is
/// 2nd-order accurate); pick time_step against the die's thermal time
/// constant tau ~ c L^2 / k (~3e-5 s for a 50 um silicon die) — a few steps
/// per tau resolve the envelope, steps >> tau just relax to steady state.
struct TransientSolveOptions {
  double time_step = 1e-5;  ///< Δt [s]
  /// Number of implicit steps; 0 derives ceil(trace.duration() / time_step).
  int num_steps = 0;
  std::string scheme = "backward-euler";  ///< or "crank-nicolson"
  /// Row-sum lumping of the capacitance matrix (diagonal M, the robust
  /// default); false keeps the consistent tensor-product mass.
  bool lumped_capacitance = true;
  /// Starting temperature [C]; NaN starts at base.ambient (thermal
  /// equilibrium with the sink, the usual power-on initial condition).
  double initial_temperature = std::numeric_limits<double>::quiet_NaN();
  /// Sink / ambient configuration, shared with the steady-state solver. The
  /// iterative-method fields are ignored: the transient path always
  /// factorizes directly.
  ThermalSolveOptions base;
};

struct TransientSolveStats {
  idx_t num_dofs = 0;
  int num_steps = 0;
  double assemble_seconds = 0.0;
  double factor_seconds = 0.0;   ///< the one M/Δt + θK factorization
  double step_seconds = 0.0;     ///< all per-step rhs builds + triangular solves
  la::offset_t factor_nnz = 0;   ///< nnz(L) of the stepping operator
  double fill_ratio = 0.0;       ///< nnz(L) / nnz(tril(M/Δt + θK))
  std::string ordering;          ///< ordering used by the factorization
  /// Set when the stepping factorization needed the shift-retry ladder.
  bool degraded = false;
  double diagonal_shift = 0.0;
  [[nodiscard]] double total_seconds() const {
    return assemble_seconds + factor_seconds + step_seconds;
  }
};

/// How the transient solver reduces each recorded state to per-block ΔT:
/// block footprint of the array (pitch-sized, y-major) and the reference
/// temperature ΔT is measured from (the stress-free temperature in coupled
/// runs, so the recorded histories feed rom::BlockLoadField directly).
/// Setting `windowed` restricts the reduction to the blocks_x x blocks_y
/// window at `origin` with z in [z0, z1] — the package conduction mesh
/// reduced to its embedded sub-model window (interposer layer only);
/// elements outside the window are ignored instead of clamped in.
struct BlockReduction {
  int blocks_x = 1;
  int blocks_y = 1;
  double pitch = 0.0;
  double reference = 0.0;
  bool windowed = false;
  mesh::Point3 origin{0.0, 0.0, 0.0};
  double z0 = 0.0, z1 = 0.0;  ///< window z-slab (windowed only)
};

/// March the transient conduction problem M dT/dt + K T = f(t) through
/// `trace` with the implicit θ-scheme and record the per-block ΔT history
/// plus its peak envelope. Heat enters at the z-max face per the trace; the
/// sink boundary follows options.base exactly like the steady solver. The
/// factorization of M/Δt + θK is computed once and reused for every step.
TransientTemperatureResult solve_power_trace(const mesh::HexMesh& mesh,
                                             const ConductivityField& conductivity,
                                             const Vec& capacity_per_elem,
                                             const PowerTrace& trace,
                                             const BlockReduction& reduction,
                                             const TransientSolveOptions& options = {},
                                             TransientSolveStats* stats = nullptr);

/// Isotropic variant (one conductivity per element).
TransientTemperatureResult solve_power_trace(const mesh::HexMesh& mesh,
                                             const Vec& conductivity_per_elem,
                                             const Vec& capacity_per_elem,
                                             const PowerTrace& trace,
                                             const BlockReduction& reduction,
                                             const TransientSolveOptions& options = {},
                                             TransientSolveStats* stats = nullptr);

/// Same, with conductivities and heat capacities from the material table.
TransientTemperatureResult solve_power_trace(const mesh::HexMesh& mesh,
                                             const fem::MaterialTable& materials,
                                             const PowerTrace& trace,
                                             const BlockReduction& reduction,
                                             const TransientSolveOptions& options = {},
                                             TransientSolveStats* stats = nullptr);

/// Coarse thermal mesh of a blocks_x x blocks_y TSV array: a uniform grid
/// with `elems_per_block_xy` elements across each pitch and `elems_z`
/// through the height. All elements are Silicon; pair with
/// array_block_conductivities (or effective_block_conductivity for the
/// legacy single via-averaged value).
mesh::HexMesh build_array_thermal_mesh(const mesh::TsvGeometry& geometry, int blocks_x,
                                       int blocks_y, int elems_per_block_xy, int elems_z);

/// Per-element effective conductivities of an array thermal mesh: each
/// element takes the block_conductivity of the block its centroid falls in.
/// `tsv_mask` follows the build_array_mesh convention (y-major, 1 = TSV,
/// empty = all TSV); dummy blocks conduct like bulk Si under kTsvAware.
ConductivityField array_block_conductivities(const mesh::HexMesh& mesh,
                                             const mesh::TsvGeometry& geometry,
                                             const fem::MaterialTable& materials, int blocks_x,
                                             int blocks_y,
                                             const std::vector<std::uint8_t>& tsv_mask,
                                             ConductivityModel model);

/// Per-element effective volumetric heat capacities of an array thermal
/// mesh, the transient companion of array_block_conductivities: each element
/// takes the block_capacity of the block its centroid falls in (same mask
/// and binning conventions).
Vec array_block_capacities(const mesh::HexMesh& mesh, const mesh::TsvGeometry& geometry,
                           const fem::MaterialTable& materials, int blocks_x, int blocks_y,
                           const std::vector<std::uint8_t>& tsv_mask, ConductivityModel model);

}  // namespace ms::thermal
