#include "util/timer.hpp"

#include <cmath>
#include <cstdio>
#include <vector>

namespace ms::util {

void PhaseTimer::add(const std::string& name, double seconds) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto [it, inserted] = index_.try_emplace(name, phases_.size());
  if (inserted) {
    phases_.emplace_back(name, seconds);
  } else {
    phases_[it->second].second += seconds;
  }
}

double PhaseTimer::total(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = index_.find(name);
  return it != index_.end() ? phases_[it->second].second : 0.0;
}

double PhaseTimer::grand_total() const {
  std::lock_guard<std::mutex> lock(mutex_);
  double sum = 0.0;
  for (const auto& [phase, total] : phases_) sum += total;
  return sum;
}

std::string PhaseTimer::summary() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::string out;
  char buf[128];
  for (const auto& [phase, total] : phases_) {
    std::snprintf(buf, sizeof(buf), "%s%s=%.3fs", out.empty() ? "" : " ", phase.c_str(), total);
    out += buf;
  }
  return out;
}

std::string format_seconds(double seconds) {
  char buf[64];
  if (seconds < 1.0) {
    std::snprintf(buf, sizeof(buf), "%.0f ms", seconds * 1e3);
  } else if (seconds < 120.0) {
    std::snprintf(buf, sizeof(buf), "%.1f s", seconds);
  } else {
    const int minutes = static_cast<int>(seconds / 60.0);
    std::snprintf(buf, sizeof(buf), "%dm%04.1fs", minutes, seconds - 60.0 * minutes);
  }
  return buf;
}

}  // namespace ms::util
