#pragma once
// Plain-text table rendering for the benchmark harnesses. Each bench binary
// prints tables shaped like the ones in the paper (rows = method/metric,
// columns = array size or location), so renders are column-major friendly.

#include <string>
#include <vector>

namespace ms::util {

/// A text table with a header row; cells are preformatted strings.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  /// Append one row; missing cells render empty, extra cells are an error.
  void add_row(std::vector<std::string> cells);

  /// Number of data rows.
  [[nodiscard]] std::size_t rows() const { return rows_.size(); }

  /// Render with aligned columns, a rule under the header, "| " separators.
  [[nodiscard]] std::string render() const;

  /// Render as comma-separated values (for EXPERIMENTS.md extraction).
  [[nodiscard]] std::string render_csv() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// printf-style convenience for building cells.
std::string strf(const char* fmt, ...)
#if defined(__GNUC__)
    __attribute__((format(printf, 1, 2)))
#endif
    ;

/// "153x" style improvement-ratio cell; "-" when the reference is zero.
std::string ratio_cell(double reference, double ours);

/// "0.93%" style percentage cell.
std::string percent_cell(double fraction);

}  // namespace ms::util
