#include "util/json.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <stdexcept>

namespace ms::util {

std::string json_escape(const std::string& text) {
  std::string out;
  out.reserve(text.size() + 2);
  for (unsigned char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  return out;
}

JsonObject& JsonObject::set_raw(const std::string& key, std::string rendered_value) {
  fields_.emplace_back(key, std::move(rendered_value));
  return *this;
}

JsonObject& JsonObject::set(const std::string& key, const std::string& value) {
  return set_raw(key, "\"" + json_escape(value) + "\"");
}

JsonObject& JsonObject::set(const std::string& key, const char* value) {
  return set(key, std::string(value));
}

JsonObject& JsonObject::set(const std::string& key, double value) {
  if (!std::isfinite(value)) return set_raw(key, "null");  // JSON has no inf/nan
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.12g", value);
  return set_raw(key, buf);
}

JsonObject& JsonObject::set(const std::string& key, std::int64_t value) {
  return set_raw(key, std::to_string(value));
}

JsonObject& JsonObject::set(const std::string& key, bool value) {
  return set_raw(key, value ? "true" : "false");
}

JsonObject& JsonObject::set_object(const std::string& key, const JsonObject& value) {
  return set_raw(key, value.render());
}

JsonObject& JsonObject::set_strings(const std::string& key,
                                    const std::vector<std::string>& values) {
  std::string out = "[";
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i != 0) out += ", ";
    out += "\"" + json_escape(values[i]) + "\"";
  }
  out += "]";
  return set_raw(key, std::move(out));
}

std::string JsonObject::render() const {
  std::string out = "{";
  for (std::size_t i = 0; i < fields_.size(); ++i) {
    if (i != 0) out += ", ";
    out += "\"" + json_escape(fields_[i].first) + "\": " + fields_[i].second;
  }
  out += "}";
  return out;
}

namespace {

// Recursive-descent parser over the raw document. Kept deliberately strict:
// no comments, no trailing commas, \uXXXX escapes are decoded to UTF-8.
class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  JsonValue parse_document() {
    JsonValue value = parse_value();
    skip_whitespace();
    if (pos_ != text_.size()) fail("trailing content after JSON document");
    return value;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw std::runtime_error("parse_json: " + what + " at offset " + std::to_string(pos_));
  }

  void skip_whitespace() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(const char* literal) {
    const std::size_t len = std::char_traits<char>::length(literal);
    if (text_.compare(pos_, len, literal) != 0) return false;
    pos_ += len;
    return true;
  }

  JsonValue parse_value() {
    skip_whitespace();
    switch (peek()) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': {
        JsonValue v;
        v.type = JsonValue::Type::kString;
        v.string = parse_string();
        return v;
      }
      case 't':
      case 'f': {
        JsonValue v;
        v.type = JsonValue::Type::kBool;
        v.boolean = consume_literal("true");
        if (!v.boolean && !consume_literal("false")) fail("invalid literal");
        return v;
      }
      case 'n': {
        if (!consume_literal("null")) fail("invalid literal");
        return JsonValue{};
      }
      default: return parse_number();
    }
  }

  JsonValue parse_object() {
    expect('{');
    JsonValue v;
    v.type = JsonValue::Type::kObject;
    skip_whitespace();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    while (true) {
      skip_whitespace();
      std::string key = parse_string();
      skip_whitespace();
      expect(':');
      v.object[std::move(key)] = parse_value();
      skip_whitespace();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return v;
    }
  }

  JsonValue parse_array() {
    expect('[');
    JsonValue v;
    v.type = JsonValue::Type::kArray;
    skip_whitespace();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    while (true) {
      v.array.push_back(parse_value());
      skip_whitespace();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return v;
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      const char c = peek();
      ++pos_;
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      const char esc = peek();
      ++pos_;
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': append_utf8(parse_hex4(), out); break;
        default: fail("invalid escape sequence");
      }
    }
  }

  unsigned parse_hex4() {
    unsigned value = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = peek();
      ++pos_;
      value <<= 4;
      if (c >= '0' && c <= '9') value |= static_cast<unsigned>(c - '0');
      else if (c >= 'a' && c <= 'f') value |= static_cast<unsigned>(c - 'a' + 10);
      else if (c >= 'A' && c <= 'F') value |= static_cast<unsigned>(c - 'A' + 10);
      else fail("invalid \\u escape");
    }
    return value;
  }

  static void append_utf8(unsigned cp, std::string& out) {
    // Code points above U+FFFF need surrogate pairs, which our writers never
    // emit; individual surrogate halves are passed through as-is.
    if (cp < 0x80) {
      out += static_cast<char>(cp);
    } else if (cp < 0x800) {
      out += static_cast<char>(0xC0 | (cp >> 6));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    } else {
      out += static_cast<char>(0xE0 | (cp >> 12));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    }
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if ((c >= '0' && c <= '9') || c == '.' || c == 'e' || c == 'E' || c == '+' || c == '-') {
        ++pos_;
      } else {
        break;
      }
    }
    if (pos_ == start) fail("expected a value");
    char* end = nullptr;
    const std::string token = text_.substr(start, pos_ - start);
    const double value = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0') fail("malformed number \"" + token + "\"");
    JsonValue v;
    v.type = JsonValue::Type::kNumber;
    v.number = value;
    return v;
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

}  // namespace

const JsonValue* JsonValue::find(const std::string& key) const {
  if (type != Type::kObject) return nullptr;
  const auto it = object.find(key);
  return it != object.end() ? &it->second : nullptr;
}

JsonValue parse_json(const std::string& text) { return JsonParser(text).parse_document(); }

void write_bench_json(const std::string& path, const std::string& name,
                      const std::vector<JsonObject>& records) {
  std::ofstream file(path);
  if (!file) throw std::runtime_error("write_bench_json: cannot open " + path);
  file << "{\n  \"bench\": \"" << json_escape(name) << "\",\n  \"cases\": [\n";
  for (std::size_t i = 0; i < records.size(); ++i) {
    file << "    " << records[i].render() << (i + 1 < records.size() ? ",\n" : "\n");
  }
  file << "  ]\n}\n";
  if (!file.good()) throw std::runtime_error("write_bench_json: write failed for " + path);
}

}  // namespace ms::util
