#include "util/json.hpp"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <stdexcept>

namespace ms::util {

std::string json_escape(const std::string& text) {
  std::string out;
  out.reserve(text.size() + 2);
  for (unsigned char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  return out;
}

JsonObject& JsonObject::set_raw(const std::string& key, std::string rendered_value) {
  fields_.emplace_back(key, std::move(rendered_value));
  return *this;
}

JsonObject& JsonObject::set(const std::string& key, const std::string& value) {
  return set_raw(key, "\"" + json_escape(value) + "\"");
}

JsonObject& JsonObject::set(const std::string& key, const char* value) {
  return set(key, std::string(value));
}

JsonObject& JsonObject::set(const std::string& key, double value) {
  if (!std::isfinite(value)) return set_raw(key, "null");  // JSON has no inf/nan
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.12g", value);
  return set_raw(key, buf);
}

JsonObject& JsonObject::set(const std::string& key, std::int64_t value) {
  return set_raw(key, std::to_string(value));
}

JsonObject& JsonObject::set(const std::string& key, bool value) {
  return set_raw(key, value ? "true" : "false");
}

std::string JsonObject::render() const {
  std::string out = "{";
  for (std::size_t i = 0; i < fields_.size(); ++i) {
    if (i != 0) out += ", ";
    out += "\"" + json_escape(fields_[i].first) + "\": " + fields_[i].second;
  }
  out += "}";
  return out;
}

void write_bench_json(const std::string& path, const std::string& name,
                      const std::vector<JsonObject>& records) {
  std::ofstream file(path);
  if (!file) throw std::runtime_error("write_bench_json: cannot open " + path);
  file << "{\n  \"bench\": \"" << json_escape(name) << "\",\n  \"cases\": [\n";
  for (std::size_t i = 0; i < records.size(); ++i) {
    file << "    " << records[i].render() << (i + 1 < records.size() ? ",\n" : "\n");
  }
  file << "  ]\n}\n";
  if (!file.good()) throw std::runtime_error("write_bench_json: write failed for " + path);
}

}  // namespace ms::util
