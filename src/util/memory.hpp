#pragma once
// Memory accounting.
//
// The paper reports the peak memory of each method. All of our methods run in
// one process, so the OS high-water mark cannot attribute memory to a method.
// We therefore keep an *analytic ledger*: every solver/matrix registers the
// bytes it holds resident, and the ledger tracks the running sum and its peak
// between explicit resets. Peak RSS from /proc is also exposed for context.

#include <cstddef>
#include <cstdint>
#include <string>

namespace ms::util {

/// Process-wide analytic memory ledger (single-threaded use).
class MemoryLedger {
 public:
  /// The singleton ledger used by all library components.
  static MemoryLedger& instance();

  /// Register `bytes` as newly resident; updates the peak.
  void allocate(std::size_t bytes);

  /// Unregister `bytes` (clamped at zero to stay robust to mismatches).
  void release(std::size_t bytes);

  /// Forget the peak and restart tracking from the current level.
  void reset_peak();

  /// Zero everything (used between benchmark cases).
  void reset_all();

  [[nodiscard]] std::size_t current_bytes() const { return current_; }
  [[nodiscard]] std::size_t peak_bytes() const { return peak_; }

 private:
  std::size_t current_ = 0;
  std::size_t peak_ = 0;
};

/// RAII registration of a block of analytic memory.
class ScopedLedgerBytes {
 public:
  ScopedLedgerBytes() = default;
  explicit ScopedLedgerBytes(std::size_t bytes);
  ScopedLedgerBytes(const ScopedLedgerBytes&) = delete;
  ScopedLedgerBytes& operator=(const ScopedLedgerBytes&) = delete;
  ScopedLedgerBytes(ScopedLedgerBytes&& other) noexcept;
  ScopedLedgerBytes& operator=(ScopedLedgerBytes&& other) noexcept;
  ~ScopedLedgerBytes();

  /// Change the registered size (e.g. after a structure grows).
  void resize(std::size_t bytes);

  [[nodiscard]] std::size_t bytes() const { return bytes_; }

 private:
  std::size_t bytes_ = 0;
};

/// Peak resident set size of this process in bytes (VmHWM), 0 if unavailable.
std::size_t peak_rss_bytes();

/// Current resident set size of this process in bytes (VmRSS), 0 if unavailable.
std::size_t current_rss_bytes();

/// "12.3 MB" / "1.24 GB" formatting used by the benchmark tables.
std::string format_bytes(std::size_t bytes);

}  // namespace ms::util
