#include "util/table.hpp"

#include <algorithm>
#include <cstdarg>
#include <cstdio>
#include <stdexcept>

namespace ms::util {

TextTable::TextTable(std::vector<std::string> header) : header_(std::move(header)) {}

void TextTable::add_row(std::vector<std::string> cells) {
  if (cells.size() > header_.size()) {
    throw std::invalid_argument("TextTable: row has more cells than header columns");
  }
  cells.resize(header_.size());
  rows_.push_back(std::move(cells));
}

std::string TextTable::render() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) widths[c] = std::max(widths[c], row[c].size());
  }

  auto render_row = [&](const std::vector<std::string>& row) {
    std::string line;
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c != 0) line += " | ";
      line += row[c];
      line.append(widths[c] - row[c].size(), ' ');
    }
    // Trim trailing spaces for clean diffs.
    while (!line.empty() && line.back() == ' ') line.pop_back();
    return line + "\n";
  };

  std::string out = render_row(header_);
  std::size_t rule_len = 0;
  for (std::size_t c = 0; c < widths.size(); ++c) rule_len += widths[c] + (c != 0 ? 3 : 0);
  out += std::string(rule_len, '-') + "\n";
  for (const auto& row : rows_) out += render_row(row);
  return out;
}

std::string TextTable::render_csv() const {
  auto join = [](const std::vector<std::string>& row) {
    std::string line;
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c != 0) line += ',';
      line += row[c];
    }
    return line + "\n";
  };
  std::string out = join(header_);
  for (const auto& row : rows_) out += join(row);
  return out;
}

std::string strf(const char* fmt, ...) {
  char buf[256];
  std::va_list args;
  va_start(args, fmt);
  std::vsnprintf(buf, sizeof(buf), fmt, args);
  va_end(args);
  return buf;
}

std::string ratio_cell(double reference, double ours) {
  if (ours <= 0.0) return "-";
  const double ratio = reference / ours;
  if (ratio >= 100.0) return strf("%.0fx", ratio);
  if (ratio >= 10.0) return strf("%.0fx", ratio);
  return strf("%.1fx", ratio);
}

std::string percent_cell(double fraction) { return strf("%.2f%%", fraction * 100.0); }

}  // namespace ms::util
