#pragma once
// FNV-1a fingerprinting for cache keys. Not cryptographic — the sweep
// engine's factorization / ROM-model caches key on a human-readable prefix
// (geometry, mesh, options) plus an FNV hash of the bulk numeric inputs
// (constrained-dof sets, conductivity fields, element load vectors), so two
// scenarios collide only if every keyed input matches.

#include <cstddef>
#include <cstdint>
#include <vector>

namespace ms::util {

inline constexpr std::uint64_t kFnvOffsetBasis = 1469598103934665603ull;
inline constexpr std::uint64_t kFnvPrime = 1099511628211ull;

/// Fold `size` bytes into a running FNV-1a state.
inline std::uint64_t fnv1a_bytes(const void* data, std::size_t size,
                                 std::uint64_t state = kFnvOffsetBasis) {
  const auto* bytes = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < size; ++i) {
    state ^= bytes[i];
    state *= kFnvPrime;
  }
  return state;
}

/// Fold a trivially-copyable vector's payload (raw object bytes).
template <typename T>
std::uint64_t fnv1a(const std::vector<T>& values,
                    std::uint64_t state = kFnvOffsetBasis) {
  return values.empty() ? state
                        : fnv1a_bytes(values.data(), values.size() * sizeof(T), state);
}

}  // namespace ms::util
