#pragma once
// Minimal JSON support for the machine-readable artifacts:
//  * emission — flat objects of string/number/bool fields in insertion order
//    (JsonObject) plus a one-call writer for the standard {"bench": ...,
//    "cases": [...]} shape used by BENCH_*.json;
//  * parsing — a small recursive-descent JsonValue parser, added so tests can
//    load the Chrome trace and RunReport files back and assert on their
//    structure instead of string-matching the output.

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace ms::util {

/// One flat JSON object; values are rendered on insertion, field order is
/// preserved. Duplicate keys are the caller's bug and render as given.
class JsonObject {
 public:
  JsonObject& set(const std::string& key, const std::string& value);
  JsonObject& set(const std::string& key, const char* value);
  JsonObject& set(const std::string& key, double value);
  JsonObject& set(const std::string& key, std::int64_t value);
  JsonObject& set(const std::string& key, int value) {
    return set(key, static_cast<std::int64_t>(value));
  }
  JsonObject& set(const std::string& key, std::size_t value) {
    return set(key, static_cast<std::int64_t>(value));
  }
  JsonObject& set(const std::string& key, bool value);
  /// Nest another object / a string array under `key` (rendered inline).
  JsonObject& set_object(const std::string& key, const JsonObject& value);
  JsonObject& set_strings(const std::string& key, const std::vector<std::string>& values);

  [[nodiscard]] std::string render() const;
  [[nodiscard]] bool empty() const { return fields_.empty(); }

 private:
  JsonObject& set_raw(const std::string& key, std::string rendered_value);
  std::vector<std::pair<std::string, std::string>> fields_;
};

/// JSON string literal with the mandatory escapes applied.
std::string json_escape(const std::string& text);

/// Write {"bench": name, "cases": [records...]} to `path` (2-space indent,
/// trailing newline). Throws std::runtime_error when the file can't be
/// written.
void write_bench_json(const std::string& path, const std::string& name,
                      const std::vector<JsonObject>& records);

/// Parsed JSON tree. Numbers are kept as double (enough for the artifacts we
/// read back — timestamps, durations, counts); object keys are unique and
/// key-sorted via std::map.
class JsonValue {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Type type = Type::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<JsonValue> array;
  std::map<std::string, JsonValue> object;

  [[nodiscard]] bool is_null() const { return type == Type::kNull; }
  [[nodiscard]] bool is_bool() const { return type == Type::kBool; }
  [[nodiscard]] bool is_number() const { return type == Type::kNumber; }
  [[nodiscard]] bool is_string() const { return type == Type::kString; }
  [[nodiscard]] bool is_array() const { return type == Type::kArray; }
  [[nodiscard]] bool is_object() const { return type == Type::kObject; }

  /// Object member lookup; returns nullptr when absent or not an object.
  [[nodiscard]] const JsonValue* find(const std::string& key) const;
};

/// Parse a complete JSON document (single root value, trailing whitespace
/// allowed). Throws std::runtime_error with a byte offset on malformed input.
JsonValue parse_json(const std::string& text);

}  // namespace ms::util
