#pragma once
// Minimal JSON emission for the machine-readable bench artifacts
// (BENCH_*.json): flat objects of string/number/bool fields in insertion
// order, and a one-call writer for the standard {"bench": ..., "cases":
// [...]} shape. Deliberately not a parser — the perf-trajectory consumers
// only need well-formed output.

#include <cstdint>
#include <string>
#include <vector>

namespace ms::util {

/// One flat JSON object; values are rendered on insertion, field order is
/// preserved. Duplicate keys are the caller's bug and render as given.
class JsonObject {
 public:
  JsonObject& set(const std::string& key, const std::string& value);
  JsonObject& set(const std::string& key, const char* value);
  JsonObject& set(const std::string& key, double value);
  JsonObject& set(const std::string& key, std::int64_t value);
  JsonObject& set(const std::string& key, int value) {
    return set(key, static_cast<std::int64_t>(value));
  }
  JsonObject& set(const std::string& key, std::size_t value) {
    return set(key, static_cast<std::int64_t>(value));
  }
  JsonObject& set(const std::string& key, bool value);

  [[nodiscard]] std::string render() const;

 private:
  JsonObject& set_raw(const std::string& key, std::string rendered_value);
  std::vector<std::pair<std::string, std::string>> fields_;
};

/// JSON string literal with the mandatory escapes applied.
std::string json_escape(const std::string& text);

/// Write {"bench": name, "cases": [records...]} to `path` (2-space indent,
/// trailing newline). Throws std::runtime_error when the file can't be
/// written.
void write_bench_json(const std::string& path, const std::string& name,
                      const std::vector<JsonObject>& records);

}  // namespace ms::util
