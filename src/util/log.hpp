#pragma once
// Minimal severity-filtered logging for library and tool code.
//
// Usage:
//   MS_LOG_INFO("assembled %zu dofs in %.2f s", n, t);
// The default level is Info; benches lower it to Warn to keep tables clean.

#include <cstdarg>
#include <string>

namespace ms::util {

enum class LogLevel { Trace = 0, Debug = 1, Info = 2, Warn = 3, Error = 4, Off = 5 };

/// Set the global log threshold; messages below it are dropped.
void set_log_level(LogLevel level);
LogLevel log_level();

/// printf-style logging entry point. Prefer the MS_LOG_* macros.
void log_message(LogLevel level, const char* file, int line, const char* fmt, ...)
#if defined(__GNUC__)
    __attribute__((format(printf, 4, 5)))
#endif
    ;

/// Parse "trace"/"debug"/"info"/"warn"/"error"/"off". Unknown input returns
/// Info after logging a warning naming the bad token (silent misconfiguration
/// used to hide typos like "warning"); `ok` (when given) reports validity.
LogLevel parse_log_level(const std::string& name, bool* ok = nullptr);

/// Honor the MS_LOG_LEVEL environment override: when the variable is set to
/// a valid level name, apply it (it wins over any --log flag, so a deployed
/// binary can be made chatty without a rebuild) and return true. An invalid
/// value logs a warning and changes nothing.
bool apply_env_log_level();

}  // namespace ms::util

#define MS_LOG_TRACE(...) ::ms::util::log_message(::ms::util::LogLevel::Trace, __FILE__, __LINE__, __VA_ARGS__)
#define MS_LOG_DEBUG(...) ::ms::util::log_message(::ms::util::LogLevel::Debug, __FILE__, __LINE__, __VA_ARGS__)
#define MS_LOG_INFO(...) ::ms::util::log_message(::ms::util::LogLevel::Info, __FILE__, __LINE__, __VA_ARGS__)
#define MS_LOG_WARN(...) ::ms::util::log_message(::ms::util::LogLevel::Warn, __FILE__, __LINE__, __VA_ARGS__)
#define MS_LOG_ERROR(...) ::ms::util::log_message(::ms::util::LogLevel::Error, __FILE__, __LINE__, __VA_ARGS__)
