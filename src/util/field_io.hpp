#pragma once
// Export of sampled plane fields for visualization and post-processing.
// The benches and examples compute y-major s-samples-per-block grids of von
// Mises stress (and full Voigt tensors); these helpers write them as CSV
// (x, y, value...) or as legacy-VTK structured grids that ParaView opens
// directly.

#include <array>
#include <string>
#include <vector>

namespace ms::util {

/// A regular 2-D sample grid: values[iy * width + ix] at cell-centred
/// coordinates derived from (origin, spacing).
struct PlaneField {
  std::size_t width = 0;
  std::size_t height = 0;
  double origin_x = 0.0;   ///< x of the first sample
  double origin_y = 0.0;
  double spacing_x = 1.0;  ///< distance between samples
  double spacing_y = 1.0;
  double z = 0.0;          ///< plane height (metadata)

  [[nodiscard]] std::size_t size() const { return width * height; }
  [[nodiscard]] double x_of(std::size_t ix) const { return origin_x + spacing_x * ix; }
  [[nodiscard]] double y_of(std::size_t iy) const { return origin_y + spacing_y * iy; }

  /// Grid covering `blocks` x `blocks` unit blocks of `pitch` with s
  /// cell-centred samples per block (matches fem::make_block_plane_grid).
  static PlaneField block_grid(double pitch, int blocks_x, int blocks_y, int samples_per_block,
                               double z);
};

/// Write "x,y,<name>" rows; `values` must have field.size() entries.
/// Throws std::runtime_error on I/O failure or size mismatch.
void write_csv(const std::string& path, const PlaneField& field,
               const std::vector<double>& values, const std::string& value_name = "von_mises");

/// Write several aligned scalar columns ("x,y,a,b,...").
void write_csv_multi(const std::string& path, const PlaneField& field,
                     const std::vector<std::pair<std::string, const std::vector<double>*>>& columns);

/// Legacy-VTK STRUCTURED_POINTS file with one scalar field (ParaView-ready).
void write_vtk(const std::string& path, const PlaneField& field,
               const std::vector<double>& values, const std::string& value_name = "von_mises");

/// Summary statistics of a field (used by examples and EXPERIMENTS.md).
struct FieldStats {
  double min = 0.0;
  double max = 0.0;
  double mean = 0.0;
  std::size_t argmax = 0;  ///< index of the peak sample
};
FieldStats field_stats(const std::vector<double>& values);

}  // namespace ms::util
