#pragma once
// Tiny declarative command-line flag parser shared by examples and benches.
//
//   ms::util::CliParser cli("table1_arrays", "Reproduces Table 1");
//   cli.add_flag("full", "run the paper-scale sweep");
//   cli.add_int("max-size", 20, "largest array edge");
//   cli.parse(argc, argv);          // exits with usage on error / --help
//   if (cli.flag("full")) ...

#include <cstdint>
#include <string>
#include <vector>

namespace ms::util {

class CliParser {
 public:
  CliParser(std::string program, std::string description);

  void add_flag(const std::string& name, const std::string& help);
  void add_int(const std::string& name, std::int64_t default_value, const std::string& help);
  void add_double(const std::string& name, double default_value, const std::string& help);
  void add_string(const std::string& name, std::string default_value, const std::string& help);

  /// Parse argv; on --help or malformed input prints usage and exits.
  void parse(int argc, char** argv);

  /// Parse from a vector (no exit; returns false and sets error on failure).
  bool parse(const std::vector<std::string>& args);

  [[nodiscard]] bool flag(const std::string& name) const;
  [[nodiscard]] std::int64_t get_int(const std::string& name) const;
  [[nodiscard]] double get_double(const std::string& name) const;
  [[nodiscard]] const std::string& get_string(const std::string& name) const;

  [[nodiscard]] const std::string& error() const { return error_; }
  [[nodiscard]] std::string usage() const;

 private:
  enum class Kind { Flag, Int, Double, String };
  struct Option {
    std::string name;
    Kind kind = Kind::Flag;
    std::string help;
    bool flag_value = false;
    std::int64_t int_value = 0;
    double double_value = 0.0;
    std::string string_value;
  };

  Option* find(const std::string& name);
  const Option* find(const std::string& name) const;

  std::string program_;
  std::string description_;
  std::vector<Option> options_;
  std::string error_;
};

}  // namespace ms::util
