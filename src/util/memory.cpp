#include "util/memory.hpp"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

namespace ms::util {

MemoryLedger& MemoryLedger::instance() {
  static MemoryLedger ledger;
  return ledger;
}

void MemoryLedger::allocate(std::size_t bytes) {
  current_ += bytes;
  peak_ = std::max(peak_, current_);
}

void MemoryLedger::release(std::size_t bytes) {
  current_ = bytes > current_ ? 0 : current_ - bytes;
}

void MemoryLedger::reset_peak() { peak_ = current_; }

void MemoryLedger::reset_all() {
  current_ = 0;
  peak_ = 0;
}

ScopedLedgerBytes::ScopedLedgerBytes(std::size_t bytes) : bytes_(bytes) {
  MemoryLedger::instance().allocate(bytes_);
}

ScopedLedgerBytes::ScopedLedgerBytes(ScopedLedgerBytes&& other) noexcept : bytes_(other.bytes_) {
  other.bytes_ = 0;
}

ScopedLedgerBytes& ScopedLedgerBytes::operator=(ScopedLedgerBytes&& other) noexcept {
  if (this != &other) {
    if (bytes_ != 0) MemoryLedger::instance().release(bytes_);
    bytes_ = other.bytes_;
    other.bytes_ = 0;
  }
  return *this;
}

ScopedLedgerBytes::~ScopedLedgerBytes() {
  if (bytes_ != 0) MemoryLedger::instance().release(bytes_);
}

void ScopedLedgerBytes::resize(std::size_t bytes) {
  auto& ledger = MemoryLedger::instance();
  if (bytes_ != 0) ledger.release(bytes_);
  bytes_ = bytes;
  if (bytes_ != 0) ledger.allocate(bytes_);
}

namespace {

std::size_t read_status_kb(const char* key) {
  std::ifstream status("/proc/self/status");
  if (!status) return 0;
  std::string line;
  const std::size_t key_len = std::strlen(key);
  while (std::getline(status, line)) {
    if (line.compare(0, key_len, key) == 0) {
      std::istringstream iss(line.substr(key_len));
      std::size_t kb = 0;
      iss >> kb;
      return kb * 1024;
    }
  }
  return 0;
}

}  // namespace

std::size_t peak_rss_bytes() { return read_status_kb("VmHWM:"); }

std::size_t current_rss_bytes() { return read_status_kb("VmRSS:"); }

std::string format_bytes(std::size_t bytes) {
  char buf[64];
  const double b = static_cast<double>(bytes);
  if (b >= 1e9) {
    std::snprintf(buf, sizeof(buf), "%.2f GB", b / 1e9);
  } else if (b >= 1e6) {
    std::snprintf(buf, sizeof(buf), "%.1f MB", b / 1e6);
  } else if (b >= 1e3) {
    std::snprintf(buf, sizeof(buf), "%.1f kB", b / 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%zu B", bytes);
  }
  return buf;
}

}  // namespace ms::util
