#include "util/cli.hpp"

#include <cstdio>
#include <cstdlib>
#include <stdexcept>

namespace ms::util {

CliParser::CliParser(std::string program, std::string description)
    : program_(std::move(program)), description_(std::move(description)) {}

void CliParser::add_flag(const std::string& name, const std::string& help) {
  Option opt;
  opt.name = name;
  opt.kind = Kind::Flag;
  opt.help = help;
  options_.push_back(std::move(opt));
}

void CliParser::add_int(const std::string& name, std::int64_t default_value, const std::string& help) {
  Option opt;
  opt.name = name;
  opt.kind = Kind::Int;
  opt.help = help;
  opt.int_value = default_value;
  options_.push_back(std::move(opt));
}

void CliParser::add_double(const std::string& name, double default_value, const std::string& help) {
  Option opt;
  opt.name = name;
  opt.kind = Kind::Double;
  opt.help = help;
  opt.double_value = default_value;
  options_.push_back(std::move(opt));
}

void CliParser::add_string(const std::string& name, std::string default_value, const std::string& help) {
  Option opt;
  opt.name = name;
  opt.kind = Kind::String;
  opt.help = help;
  opt.string_value = std::move(default_value);
  options_.push_back(std::move(opt));
}

CliParser::Option* CliParser::find(const std::string& name) {
  for (auto& opt : options_) {
    if (opt.name == name) return &opt;
  }
  return nullptr;
}

const CliParser::Option* CliParser::find(const std::string& name) const {
  for (const auto& opt : options_) {
    if (opt.name == name) return &opt;
  }
  return nullptr;
}

void CliParser::parse(int argc, char** argv) {
  std::vector<std::string> args;
  for (int i = 1; i < argc; ++i) args.emplace_back(argv[i]);
  for (const auto& arg : args) {
    if (arg == "--help" || arg == "-h") {
      std::fputs(usage().c_str(), stdout);
      std::exit(0);
    }
  }
  if (!parse(args)) {
    std::fprintf(stderr, "%s: %s\n%s", program_.c_str(), error_.c_str(), usage().c_str());
    std::exit(2);
  }
}

bool CliParser::parse(const std::vector<std::string>& args) {
  error_.clear();
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& arg = args[i];
    if (arg.rfind("--", 0) != 0) {
      error_ = "unexpected positional argument '" + arg + "'";
      return false;
    }
    std::string name = arg.substr(2);
    std::string inline_value;
    bool has_inline = false;
    if (const auto eq = name.find('='); eq != std::string::npos) {
      inline_value = name.substr(eq + 1);
      name = name.substr(0, eq);
      has_inline = true;
    }
    Option* opt = find(name);
    if (opt == nullptr) {
      error_ = "unknown option '--" + name + "'";
      return false;
    }
    if (opt->kind == Kind::Flag) {
      if (has_inline) {
        error_ = "flag '--" + name + "' does not take a value";
        return false;
      }
      opt->flag_value = true;
      continue;
    }
    std::string value;
    if (has_inline) {
      value = inline_value;
    } else {
      if (i + 1 >= args.size()) {
        error_ = "option '--" + name + "' expects a value";
        return false;
      }
      value = args[++i];
    }
    try {
      switch (opt->kind) {
        case Kind::Int: opt->int_value = std::stoll(value); break;
        case Kind::Double: opt->double_value = std::stod(value); break;
        case Kind::String: opt->string_value = value; break;
        case Kind::Flag: break;  // handled above
      }
    } catch (const std::exception&) {
      error_ = "invalid value '" + value + "' for option '--" + name + "'";
      return false;
    }
  }
  return true;
}

bool CliParser::flag(const std::string& name) const {
  const Option* opt = find(name);
  if (opt == nullptr || opt->kind != Kind::Flag) throw std::logic_error("unknown flag: " + name);
  return opt->flag_value;
}

std::int64_t CliParser::get_int(const std::string& name) const {
  const Option* opt = find(name);
  if (opt == nullptr || opt->kind != Kind::Int) throw std::logic_error("unknown int option: " + name);
  return opt->int_value;
}

double CliParser::get_double(const std::string& name) const {
  const Option* opt = find(name);
  if (opt == nullptr || opt->kind != Kind::Double) throw std::logic_error("unknown double option: " + name);
  return opt->double_value;
}

const std::string& CliParser::get_string(const std::string& name) const {
  const Option* opt = find(name);
  if (opt == nullptr || opt->kind != Kind::String) throw std::logic_error("unknown string option: " + name);
  return opt->string_value;
}

std::string CliParser::usage() const {
  std::string out = program_ + " - " + description_ + "\n\noptions:\n";
  for (const auto& opt : options_) {
    std::string line = "  --" + opt.name;
    char buf[256];
    switch (opt.kind) {
      case Kind::Flag: break;
      case Kind::Int:
        std::snprintf(buf, sizeof(buf), " <int=%lld>", static_cast<long long>(opt.int_value));
        line += buf;
        break;
      case Kind::Double:
        std::snprintf(buf, sizeof(buf), " <float=%g>", opt.double_value);
        line += buf;
        break;
      case Kind::String: line += " <str=" + opt.string_value + ">"; break;
    }
    while (line.size() < 34) line += ' ';
    out += line + opt.help + "\n";
  }
  out += "  --help                          show this message\n";
  return out;
}

}  // namespace ms::util
