#include "util/field_io.hpp"

#include <algorithm>
#include <cstdio>
#include <memory>
#include <stdexcept>

namespace ms::util {
namespace {

struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f != nullptr) std::fclose(f);
  }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

FilePtr open_for_write(const std::string& path) {
  FilePtr f(std::fopen(path.c_str(), "w"));
  if (f == nullptr) throw std::runtime_error("field_io: cannot open " + path);
  return f;
}

void check_size(const PlaneField& field, const std::vector<double>& values) {
  if (values.size() != field.size()) {
    throw std::runtime_error("field_io: value count does not match the grid");
  }
}

}  // namespace

PlaneField PlaneField::block_grid(double pitch, int blocks_x, int blocks_y, int samples_per_block,
                                  double z) {
  if (blocks_x < 1 || blocks_y < 1 || samples_per_block < 1 || pitch <= 0.0) {
    throw std::invalid_argument("PlaneField::block_grid: positive sizes required");
  }
  PlaneField field;
  field.width = static_cast<std::size_t>(blocks_x) * samples_per_block;
  field.height = static_cast<std::size_t>(blocks_y) * samples_per_block;
  field.spacing_x = pitch / samples_per_block;
  field.spacing_y = pitch / samples_per_block;
  field.origin_x = 0.5 * field.spacing_x;
  field.origin_y = 0.5 * field.spacing_y;
  field.z = z;
  return field;
}

void write_csv(const std::string& path, const PlaneField& field,
               const std::vector<double>& values, const std::string& value_name) {
  write_csv_multi(path, field, {{value_name, &values}});
}

void write_csv_multi(const std::string& path, const PlaneField& field,
                     const std::vector<std::pair<std::string, const std::vector<double>*>>& columns) {
  for (const auto& [name, column] : columns) {
    (void)name;
    check_size(field, *column);
  }
  FilePtr f = open_for_write(path);
  std::fprintf(f.get(), "x,y");
  for (const auto& [name, column] : columns) {
    (void)column;
    std::fprintf(f.get(), ",%s", name.c_str());
  }
  std::fprintf(f.get(), "\n");
  for (std::size_t iy = 0; iy < field.height; ++iy) {
    for (std::size_t ix = 0; ix < field.width; ++ix) {
      std::fprintf(f.get(), "%.9g,%.9g", field.x_of(ix), field.y_of(iy));
      for (const auto& [name, column] : columns) {
        (void)name;
        std::fprintf(f.get(), ",%.9g", (*column)[iy * field.width + ix]);
      }
      std::fprintf(f.get(), "\n");
    }
  }
}

void write_vtk(const std::string& path, const PlaneField& field,
               const std::vector<double>& values, const std::string& value_name) {
  check_size(field, values);
  FilePtr f = open_for_write(path);
  std::fprintf(f.get(),
               "# vtk DataFile Version 3.0\n"
               "MORE-Stress plane field (z = %.6g um)\n"
               "ASCII\n"
               "DATASET STRUCTURED_POINTS\n"
               "DIMENSIONS %zu %zu 1\n"
               "ORIGIN %.9g %.9g %.9g\n"
               "SPACING %.9g %.9g 1\n"
               "POINT_DATA %zu\n"
               "SCALARS %s double 1\n"
               "LOOKUP_TABLE default\n",
               field.z, field.width, field.height, field.origin_x, field.origin_y, field.z,
               field.spacing_x, field.spacing_y, field.size(), value_name.c_str());
  for (std::size_t i = 0; i < values.size(); ++i) {
    std::fprintf(f.get(), "%.9g\n", values[i]);
  }
}

FieldStats field_stats(const std::vector<double>& values) {
  if (values.empty()) throw std::invalid_argument("field_stats: empty field");
  FieldStats stats;
  stats.min = values[0];
  stats.max = values[0];
  double sum = 0.0;
  for (std::size_t i = 0; i < values.size(); ++i) {
    sum += values[i];
    if (values[i] > stats.max) {
      stats.max = values[i];
      stats.argmax = i;
    }
    stats.min = std::min(stats.min, values[i]);
  }
  stats.mean = sum / static_cast<double>(values.size());
  return stats;
}

}  // namespace ms::util
