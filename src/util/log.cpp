#include "util/log.hpp"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>

#include "obs/flight_recorder.hpp"

namespace ms::util {
namespace {

LogLevel g_level = LogLevel::Info;

// Serializes concurrent MS_LOG_* writers: each message is formatted into a
// local buffer and written with ONE fwrite, so multi-threaded sweep logs
// never interleave mid-line. (fprintf-per-fragment, the previous scheme, let
// the prefix of one thread land inside the body of another.)
std::mutex& log_mutex() {
  static std::mutex m;
  return m;
}

const char* level_tag(LogLevel level) {
  switch (level) {
    case LogLevel::Trace: return "TRACE";
    case LogLevel::Debug: return "DEBUG";
    case LogLevel::Info: return "INFO";
    case LogLevel::Warn: return "WARN";
    case LogLevel::Error: return "ERROR";
    case LogLevel::Off: return "OFF";
  }
  return "?";
}

const char* basename_of(const char* path) {
  const char* slash = std::strrchr(path, '/');
  return slash != nullptr ? slash + 1 : path;
}

}  // namespace

void set_log_level(LogLevel level) { g_level = level; }

LogLevel log_level() { return g_level; }

void log_message(LogLevel level, const char* file, int line, const char* fmt, ...) {
  if (static_cast<int>(level) < static_cast<int>(g_level)) return;
  // Format the whole line locally, then write it atomically. Oversized
  // messages are truncated with a marker rather than split across writes.
  char buf[1024];
  int prefix = std::snprintf(buf, sizeof(buf), "[%s %s:%d] ", level_tag(level),
                             basename_of(file), line);
  if (prefix < 0) return;
  if (prefix > static_cast<int>(sizeof(buf)) - 2) prefix = static_cast<int>(sizeof(buf)) - 2;
  std::va_list args;
  va_start(args, fmt);
  int body = std::vsnprintf(buf + prefix, sizeof(buf) - static_cast<std::size_t>(prefix) - 1,
                            fmt, args);
  va_end(args);
  if (body < 0) body = 0;
  std::size_t len = static_cast<std::size_t>(prefix) + static_cast<std::size_t>(body);
  if (len > sizeof(buf) - 2) {
    len = sizeof(buf) - 2;
    std::memcpy(buf + len - 3, "...", 3);
  }
  // Mirror into the flight recorder before the trailing newline goes on —
  // ring entries are single lines by construction.
  buf[len] = '\0';
  obs::FlightRecorder::note_log(buf);
  buf[len] = '\n';
  std::lock_guard<std::mutex> lock(log_mutex());
  std::fwrite(buf, 1, len + 1, stderr);
}

LogLevel parse_log_level(const std::string& name, bool* ok) {
  if (ok != nullptr) *ok = true;
  if (name == "trace") return LogLevel::Trace;
  if (name == "debug") return LogLevel::Debug;
  if (name == "info") return LogLevel::Info;
  if (name == "warn") return LogLevel::Warn;
  if (name == "error") return LogLevel::Error;
  if (name == "off") return LogLevel::Off;
  if (ok != nullptr) *ok = false;
  MS_LOG_WARN("unknown log level \"%s\" (expected trace/debug/info/warn/error/off); using info",
              name.c_str());
  return LogLevel::Info;
}

bool apply_env_log_level() {
  const char* env = std::getenv("MS_LOG_LEVEL");
  if (env == nullptr || env[0] == '\0') return false;
  bool ok = false;
  const LogLevel level = parse_log_level(env, &ok);
  if (!ok) return false;  // parse_log_level already warned
  set_log_level(level);
  return true;
}

}  // namespace ms::util
