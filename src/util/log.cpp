#include "util/log.hpp"

#include <cstdio>
#include <cstring>

namespace ms::util {
namespace {

LogLevel g_level = LogLevel::Info;

const char* level_tag(LogLevel level) {
  switch (level) {
    case LogLevel::Trace: return "TRACE";
    case LogLevel::Debug: return "DEBUG";
    case LogLevel::Info: return "INFO";
    case LogLevel::Warn: return "WARN";
    case LogLevel::Error: return "ERROR";
    case LogLevel::Off: return "OFF";
  }
  return "?";
}

const char* basename_of(const char* path) {
  const char* slash = std::strrchr(path, '/');
  return slash != nullptr ? slash + 1 : path;
}

}  // namespace

void set_log_level(LogLevel level) { g_level = level; }

LogLevel log_level() { return g_level; }

void log_message(LogLevel level, const char* file, int line, const char* fmt, ...) {
  if (static_cast<int>(level) < static_cast<int>(g_level)) return;
  std::fprintf(stderr, "[%s %s:%d] ", level_tag(level), basename_of(file), line);
  std::va_list args;
  va_start(args, fmt);
  std::vfprintf(stderr, fmt, args);
  va_end(args);
  std::fputc('\n', stderr);
}

LogLevel parse_log_level(const std::string& name) {
  if (name == "trace") return LogLevel::Trace;
  if (name == "debug") return LogLevel::Debug;
  if (name == "info") return LogLevel::Info;
  if (name == "warn") return LogLevel::Warn;
  if (name == "error") return LogLevel::Error;
  if (name == "off") return LogLevel::Off;
  return LogLevel::Info;
}

}  // namespace ms::util
