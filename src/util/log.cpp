#include "util/log.hpp"

#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace ms::util {
namespace {

LogLevel g_level = LogLevel::Info;

const char* level_tag(LogLevel level) {
  switch (level) {
    case LogLevel::Trace: return "TRACE";
    case LogLevel::Debug: return "DEBUG";
    case LogLevel::Info: return "INFO";
    case LogLevel::Warn: return "WARN";
    case LogLevel::Error: return "ERROR";
    case LogLevel::Off: return "OFF";
  }
  return "?";
}

const char* basename_of(const char* path) {
  const char* slash = std::strrchr(path, '/');
  return slash != nullptr ? slash + 1 : path;
}

}  // namespace

void set_log_level(LogLevel level) { g_level = level; }

LogLevel log_level() { return g_level; }

void log_message(LogLevel level, const char* file, int line, const char* fmt, ...) {
  if (static_cast<int>(level) < static_cast<int>(g_level)) return;
  std::fprintf(stderr, "[%s %s:%d] ", level_tag(level), basename_of(file), line);
  std::va_list args;
  va_start(args, fmt);
  std::vfprintf(stderr, fmt, args);
  va_end(args);
  std::fputc('\n', stderr);
}

LogLevel parse_log_level(const std::string& name, bool* ok) {
  if (ok != nullptr) *ok = true;
  if (name == "trace") return LogLevel::Trace;
  if (name == "debug") return LogLevel::Debug;
  if (name == "info") return LogLevel::Info;
  if (name == "warn") return LogLevel::Warn;
  if (name == "error") return LogLevel::Error;
  if (name == "off") return LogLevel::Off;
  if (ok != nullptr) *ok = false;
  MS_LOG_WARN("unknown log level \"%s\" (expected trace/debug/info/warn/error/off); using info",
              name.c_str());
  return LogLevel::Info;
}

bool apply_env_log_level() {
  const char* env = std::getenv("MS_LOG_LEVEL");
  if (env == nullptr || env[0] == '\0') return false;
  bool ok = false;
  const LogLevel level = parse_log_level(env, &ok);
  if (!ok) return false;  // parse_log_level already warned
  set_log_level(level);
  return true;
}

}  // namespace ms::util
