#pragma once
// Wall-clock timing helpers used by the benchmark harnesses and the
// run-statistics reported alongside every solve.

#include <chrono>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

namespace ms::util {

/// Simple monotonic wall-clock stopwatch.
class WallTimer {
 public:
  WallTimer() : start_(clock_t::now()) {}

  /// Restart the stopwatch.
  void reset() { start_ = clock_t::now(); }

  /// Seconds elapsed since construction or the last reset().
  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(clock_t::now() - start_).count();
  }

  [[nodiscard]] double milliseconds() const { return seconds() * 1e3; }

 private:
  using clock_t = std::chrono::steady_clock;
  clock_t::time_point start_;
};

/// Accumulates named phase durations (local stage, assembly, solve, ...).
/// add() is O(1) via a name->slot index and safe to call from concurrent
/// OpenMP threads; summary() keeps first-recorded (insertion) order.
class PhaseTimer {
 public:
  /// Add `seconds` to the phase `name` (created on first use).
  void add(const std::string& name, double seconds);

  /// Total seconds recorded for `name` (0 if never recorded).
  [[nodiscard]] double total(const std::string& name) const;

  /// Sum over all phases.
  [[nodiscard]] double grand_total() const;

  /// One-line "name=1.23s name2=0.45s" summary for logs.
  [[nodiscard]] std::string summary() const;

 private:
  mutable std::mutex mutex_;
  std::unordered_map<std::string, std::size_t> index_;  // name -> phases_ slot
  std::vector<std::pair<std::string, double>> phases_;  // insertion order
};

/// Human-friendly duration string ("431 ms", "12.8 s", "5m02s").
std::string format_seconds(double seconds);

}  // namespace ms::util
