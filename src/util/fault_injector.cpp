#include "util/fault_injector.hpp"

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <mutex>
#include <thread>
#include <vector>

namespace ms::util {
namespace {

std::atomic<bool> g_enabled{false};

// splitmix64: tiny, seedable, good enough for fire/no-fire rolls.
std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::vector<std::string> split(const std::string& text, const char* seps) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= text.size()) {
    std::size_t end = text.find_first_of(seps, start);
    if (end == std::string::npos) end = text.size();
    std::string piece = text.substr(start, end - start);
    // trim surrounding whitespace
    std::size_t a = piece.find_first_not_of(" \t");
    std::size_t b = piece.find_last_not_of(" \t");
    if (a != std::string::npos) out.push_back(piece.substr(a, b - a + 1));
    start = end + 1;
  }
  return out;
}

}  // namespace

struct FaultInjector::Impl {
  struct Rule {
    std::string site;
    FaultAction action = FaultAction::kNone;
    double probability = 1.0;
    std::int64_t remaining = -1;  // -1 = unlimited
    int stall_millis = 50;
    std::uint64_t fired = 0;
  };

  mutable std::mutex mutex;
  std::vector<Rule> rules;
  std::uint64_t rng_state = 0x6d732d6661756c74ULL;  // "ms-fault"

  static Rule parse_rule(const std::string& text) {
    std::vector<std::string> parts = split(text, ":");
    if (parts.size() < 2 || parts.size() > 5 || parts[0].empty()) {
      throw std::invalid_argument("FaultInjector: bad rule '" + text +
                                  "' (want site:action[:probability[:count[:millis]]])");
    }
    Rule rule;
    rule.site = parts[0];
    const std::string& action = parts[1];
    if (action == "throw") {
      rule.action = FaultAction::kThrow;
    } else if (action == "nan") {
      rule.action = FaultAction::kNan;
    } else if (action == "spd") {
      rule.action = FaultAction::kSpd;
    } else if (action == "stall") {
      rule.action = FaultAction::kStall;
    } else {
      throw std::invalid_argument("FaultInjector: unknown action '" + action + "' in '" + text +
                                  "' (want throw|nan|spd|stall)");
    }
    try {
      if (parts.size() > 2) rule.probability = std::stod(parts[2]);
      if (parts.size() > 3) rule.remaining = std::stoll(parts[3]);
      if (parts.size() > 4) rule.stall_millis = std::stoi(parts[4]);
    } catch (const std::exception&) {
      throw std::invalid_argument("FaultInjector: bad numeric field in rule '" + text + "'");
    }
    if (!(rule.probability >= 0.0 && rule.probability <= 1.0)) {
      throw std::invalid_argument("FaultInjector: probability out of [0,1] in rule '" + text +
                                  "'");
    }
    return rule;
  }
};

FaultInjector::FaultInjector() : impl_(new Impl) {}

FaultInjector& FaultInjector::global() {
  static FaultInjector* instance = [] {
    auto* injector = new FaultInjector();
    if (const char* env = std::getenv("MS_FAULT"); env != nullptr && *env != '\0') {
      injector->configure(env);
    }
    if (const char* env = std::getenv("MS_FAULT_SEED"); env != nullptr && *env != '\0') {
      injector->seed(std::strtoull(env, nullptr, 10));
    }
    return injector;
  }();
  return *instance;
}

bool FaultInjector::enabled() {
  // Probe sites consult enabled() without ever touching global(), so the
  // one-time MS_FAULT env load must be forced from here or env-configured
  // rules would never arm. After the first call this is a guard-byte check.
  static const bool env_loaded = [] {
    (void)global();
    return true;
  }();
  (void)env_loaded;
  return g_enabled.load(std::memory_order_relaxed);
}

void FaultInjector::configure(const std::string& spec) {
  std::vector<Impl::Rule> rules;
  for (const std::string& piece : split(spec, ",;")) {
    rules.push_back(Impl::parse_rule(piece));
  }
  std::lock_guard<std::mutex> lock(impl_->mutex);
  impl_->rules = std::move(rules);
  g_enabled.store(!impl_->rules.empty(), std::memory_order_relaxed);
}

void FaultInjector::reset() {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  impl_->rules.clear();
  g_enabled.store(false, std::memory_order_relaxed);
}

void FaultInjector::seed(std::uint64_t s) {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  impl_->rng_state = s;
}

FaultAction FaultInjector::consume(const char* site) {
  if (!enabled()) return FaultAction::kNone;
  std::lock_guard<std::mutex> lock(impl_->mutex);
  for (Impl::Rule& rule : impl_->rules) {
    if (rule.site != site) continue;
    if (rule.remaining == 0) continue;
    if (rule.probability < 1.0) {
      double roll =
          static_cast<double>(splitmix64(impl_->rng_state) >> 11) * 0x1.0p-53;  // [0,1)
      if (roll >= rule.probability) continue;
    }
    if (rule.remaining > 0) --rule.remaining;
    ++rule.fired;
    return rule.action;
  }
  return FaultAction::kNone;
}

FaultAction FaultInjector::fire(const char* site) {
  FaultAction action = consume(site);
  switch (action) {
    case FaultAction::kThrow:
      throw InjectedFault(site);
    case FaultAction::kStall: {
      int millis = 50;
      {
        std::lock_guard<std::mutex> lock(impl_->mutex);
        for (const Impl::Rule& rule : impl_->rules) {
          if (rule.site == site && rule.action == FaultAction::kStall) {
            millis = rule.stall_millis;
            break;
          }
        }
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(millis));
      return FaultAction::kStall;
    }
    default:
      return action;
  }
}

std::uint64_t FaultInjector::fired_count(const char* site) const {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  std::uint64_t total = 0;
  for (const Impl::Rule& rule : impl_->rules) {
    if (rule.site == site) total += rule.fired;
  }
  return total;
}

}  // namespace ms::util
