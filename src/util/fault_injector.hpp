#pragma once
// Deterministic fault-injection harness for the robustness test suite.
//
// Probe points are named call sites planted in cache builders, solver
// numeric phases, and worker loops. Each site consults the global injector,
// which matches it against configured rules:
//
//   MS_FAULT="rom.global.factor_build:throw:0.5;thermal.transient.step:nan:1:1"
//   MS_FAULT_SEED=42
//
// Rule grammar (',' or ';' separated):  site:action[:probability[:count[:millis]]]
//   action       throw | nan | spd | stall
//   probability  [0,1], default 1 (rolled with a seeded splitmix64 RNG so
//                runs are reproducible)
//   count        max fires, default unlimited (-1)
//   millis       stall duration for `stall`, default 50
//
// `throw` and `stall` act inside fire(); `nan` and `spd` are returned to the
// caller, which knows how to poison its own output (write a NaN into a
// solution vector, simulate a pivot breakdown). When no rules are loaded the
// per-site cost is one relaxed atomic load.

#include <cstdint>
#include <stdexcept>
#include <string>

namespace ms::util {

/// Thrown by a `throw` probe; carries the site name for test assertions.
class InjectedFault : public std::runtime_error {
 public:
  explicit InjectedFault(std::string site)
      : std::runtime_error("injected fault at probe '" + site + "'"), site_(std::move(site)) {}
  [[nodiscard]] const std::string& site() const { return site_; }

 private:
  std::string site_;
};

enum class FaultAction {
  kNone,   ///< probe did not fire
  kThrow,  ///< throw InjectedFault (fire() does this itself)
  kNan,    ///< caller poisons its output with NaN
  kSpd,    ///< caller simulates an SPD / pivot breakdown
  kStall,  ///< sleep for the configured millis (fire() does this itself)
};

class FaultInjector {
 public:
  /// Process-wide injector; reads MS_FAULT / MS_FAULT_SEED once on first use.
  static FaultInjector& global();

  /// Fast path for probe sites: false when no rules are configured anywhere.
  static bool enabled();

  /// Replace all rules with `spec` (same grammar as MS_FAULT; empty clears).
  /// Throws std::invalid_argument on a malformed spec. Resets fire counts.
  void configure(const std::string& spec);

  /// Drop all rules and counters.
  void reset();

  /// Reseed the probability RNG (also reset by configure()).
  void seed(std::uint64_t s);

  /// Roll the rules for `site`: decrements the matching rule's budget and
  /// returns its action, or kNone. Does not act on the result.
  FaultAction consume(const char* site);

  /// consume() + act: throws InjectedFault for kThrow, sleeps for kStall,
  /// returns kNan/kSpd (and kNone) for the caller to handle.
  FaultAction fire(const char* site);

  /// Number of times a rule for `site` has fired (all actions).
  std::uint64_t fired_count(const char* site) const;

 private:
  FaultInjector();
  struct Impl;
  Impl* impl_;  // intentionally leaked with the singleton
};

}  // namespace ms::util
