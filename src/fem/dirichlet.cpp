#include "fem/dirichlet.hpp"

#include <cassert>
#include <stdexcept>

namespace ms::fem {

DirichletBc DirichletBc::clamp_nodes(const std::vector<idx_t>& nodes, const Vec& vals) {
  if (!vals.empty() && vals.size() != 3 * nodes.size()) {
    throw std::invalid_argument("DirichletBc::clamp_nodes: need 3 values per node");
  }
  DirichletBc bc;
  bc.dofs.reserve(3 * nodes.size());
  bc.values.reserve(3 * nodes.size());
  for (std::size_t n = 0; n < nodes.size(); ++n) {
    for (int c = 0; c < 3; ++c) {
      bc.add(3 * nodes[n] + c, vals.empty() ? 0.0 : vals[3 * n + c]);
    }
  }
  return bc;
}

namespace {

/// Expand the (dofs, values) pairs into dense constrained/value arrays.
void expand_bc(idx_t n, const DirichletBc& bc, std::vector<char>& constrained, Vec& value) {
  constrained.assign(n, 0);
  value.assign(n, 0.0);
  for (std::size_t k = 0; k < bc.dofs.size(); ++k) {
    const idx_t d = bc.dofs[k];
    assert(d >= 0 && d < n);
    constrained[d] = 1;
    value[d] = bc.values[k];
  }
}

/// The rhs half of the lifting against the *unlifted* operator: constrained
/// entries take the prescribed value, free entries receive the column
/// correction. Reads exactly the matrix values the fused loop reads before
/// zeroing them, so rhs-half-then-matrix-half reproduces the fused result
/// bit for bit.
void apply_dirichlet_rhs_impl(const CsrMatrix& a, Vec* const* rhss, std::size_t num_rhs,
                              const DirichletBc& bc) {
  assert(a.rows() == a.cols());
  const idx_t n = a.rows();
  for (std::size_t c = 0; c < num_rhs; ++c) {
    assert(static_cast<idx_t>(rhss[c]->size()) == n);
    (void)rhss[c];
  }

  std::vector<char> constrained;
  Vec value;
  expand_bc(n, bc, constrained, value);

  const auto& vals = a.values();
  const auto& row_ptr = a.row_ptr();
  const auto& col = a.col_idx();
  for (idx_t r = 0; r < n; ++r) {
    const la::offset_t end = row_ptr[static_cast<std::size_t>(r) + 1];
    if (constrained[r]) {
      for (std::size_t c = 0; c < num_rhs; ++c) (*rhss[c])[r] = value[r];
      continue;
    }
    for (la::offset_t k = row_ptr[r]; k < end; ++k) {
      if (constrained[col[k]]) {
        const double av = vals[k] * value[col[k]];
        for (std::size_t c = 0; c < num_rhs; ++c) (*rhss[c])[r] -= av;
      }
    }
  }
}

}  // namespace

void apply_dirichlet_rhs(const CsrMatrix& a, Vec& rhs, const DirichletBc& bc) {
  Vec* one = &rhs;
  apply_dirichlet_rhs_impl(a, &one, 1, bc);
}

void apply_dirichlet_rhs(const CsrMatrix& a, std::vector<Vec>& rhss, const DirichletBc& bc) {
  std::vector<Vec*> ptrs;
  ptrs.reserve(rhss.size());
  for (Vec& rhs : rhss) ptrs.push_back(&rhs);
  apply_dirichlet_rhs_impl(a, ptrs.data(), ptrs.size(), bc);
}

void apply_dirichlet_matrix(CsrMatrix& a, const DirichletBc& bc) {
  assert(a.rows() == a.cols());
  const idx_t n = a.rows();
  std::vector<char> constrained;
  Vec value;
  expand_bc(n, bc, constrained, value);

  auto& vals = a.values();
  const auto& row_ptr = a.row_ptr();
  const auto& col = a.col_idx();
  for (idx_t r = 0; r < n; ++r) {
    const la::offset_t end = row_ptr[static_cast<std::size_t>(r) + 1];
    if (constrained[r]) {
      for (la::offset_t k = row_ptr[r]; k < end; ++k) vals[k] = (col[k] == r) ? 1.0 : 0.0;
      continue;
    }
    for (la::offset_t k = row_ptr[r]; k < end; ++k) {
      if (constrained[col[k]]) vals[k] = 0.0;
    }
  }
}

void apply_dirichlet(CsrMatrix& a, Vec& rhs, const DirichletBc& bc) {
  Vec* one = &rhs;
  apply_dirichlet_rhs_impl(a, &one, 1, bc);
  apply_dirichlet_matrix(a, bc);
}

void apply_dirichlet(CsrMatrix& a, std::vector<Vec>& rhss, const DirichletBc& bc) {
  std::vector<Vec*> ptrs;
  ptrs.reserve(rhss.size());
  for (Vec& rhs : rhss) ptrs.push_back(&rhs);
  apply_dirichlet_rhs_impl(a, ptrs.data(), ptrs.size(), bc);
  apply_dirichlet_matrix(a, bc);
}

DofPartition partition_dofs(idx_t num_dofs, const std::vector<idx_t>& bc_dofs) {
  std::vector<char> constrained(num_dofs, 0);
  for (idx_t d : bc_dofs) {
    assert(d >= 0 && d < num_dofs);
    constrained[d] = 1;
  }
  DofPartition part;
  part.free_map.assign(num_dofs, -1);
  part.bc_map.assign(num_dofs, -1);
  for (idx_t d = 0; d < num_dofs; ++d) {
    if (constrained[d]) {
      part.bc_map[d] = part.num_bc++;
    } else {
      part.free_map[d] = part.num_free++;
    }
  }
  return part;
}

}  // namespace ms::fem
