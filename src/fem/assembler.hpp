#pragma once
// Global assembly of the thermoelastic system K u = DT * f over a HexMesh
// (paper Eq. 6). DoF numbering: dof = 3 * node + component. Element matrices
// are cached by (edge lengths, material) — on the structured, per-block-
// periodic meshes used here only a handful of distinct element shapes exist,
// which makes assembly of even the 50x50-array reference mesh cheap.

#include "fem/hex8.hpp"
#include "la/sparse.hpp"
#include "mesh/hex_mesh.hpp"

namespace ms::fem {

using la::CsrMatrix;
using la::idx_t;
using la::TripletList;
using la::Vec;

/// DoF helpers.
inline idx_t dof_of(idx_t node, int component) { return 3 * node + component; }
inline idx_t node_of(idx_t dof) { return dof / 3; }
inline int component_of(idx_t dof) { return static_cast<int>(dof % 3); }

struct AssembledSystem {
  CsrMatrix stiffness;   ///< K, full symmetric storage
  Vec thermal_load;      ///< f for unit thermal load (scale by DT)
  idx_t num_dofs = 0;
};

/// Assemble stiffness and thermal-load vector for the whole mesh in one
/// element pass. With the default null `delta_t_per_elem` the load is the
/// unit-ΔT vector (scale by ΔT); otherwise each element's contribution is
/// scaled by its own ΔT and the load is ready to use as the rhs.
AssembledSystem assemble_system(const mesh::HexMesh& mesh, const MaterialTable& materials,
                                const Vec* delta_t_per_elem = nullptr);

/// Assemble only the unit-thermal-load vector (used when K is reused).
Vec assemble_thermal_load(const mesh::HexMesh& mesh, const MaterialTable& materials);

/// Thermal-load vector for a per-element ΔT field (size num_elems): each
/// element's unit load is scaled by its own ΔT before scattering. The
/// brute-force reference for ROM runs driven by a non-uniform BlockLoadField.
Vec assemble_thermal_load(const mesh::HexMesh& mesh, const MaterialTable& materials,
                          const Vec& delta_t_per_elem);

}  // namespace ms::fem
