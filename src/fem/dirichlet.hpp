#pragma once
// Dirichlet boundary conditions via the "lifting" procedure the paper uses
// (Sec. 4.2): constrained rows become identity rows with the prescribed
// value on the right-hand side, and the coupling columns are moved to the
// RHS of the free rows so the operator stays symmetric (and SPD).

#include <vector>

#include "la/sparse.hpp"

namespace ms::fem {

using la::CsrMatrix;
using la::idx_t;
using la::Vec;

/// A set of prescribed dofs with values (parallel arrays).
struct DirichletBc {
  std::vector<idx_t> dofs;
  Vec values;

  void add(idx_t dof, double value) {
    dofs.push_back(dof);
    values.push_back(value);
  }
  [[nodiscard]] std::size_t size() const { return dofs.size(); }

  /// Constrain all three components of each node to the given vector value
  /// (vals has 3 entries per node, or empty for homogeneous clamping).
  static DirichletBc clamp_nodes(const std::vector<idx_t>& nodes, const Vec& vals = {});
};

/// Modify A and rhs in place so that A x = rhs enforces x[dof] = value for
/// every constrained dof while keeping A symmetric. Duplicate constraints
/// must agree (last one wins).
void apply_dirichlet(CsrMatrix& a, Vec& rhs, const DirichletBc& bc);

/// Same lifting for one operator shared by several right-hand sides (e.g. a
/// multi-RHS panel solve): A is modified once, and every rhs receives the
/// column correction and the prescribed values. Equivalent to calling the
/// single-rhs overload on copies of A.
void apply_dirichlet(CsrMatrix& a, std::vector<Vec>& rhss, const DirichletBc& bc);

/// The two halves of the lifting, split so a cached factorization can be
/// reused across calls that differ only in rhs / BC values:
///
///   apply_dirichlet(a, rhs, bc)  ==  apply_dirichlet_rhs(a, rhs, bc)   [unlifted a]
///                                  + apply_dirichlet_matrix(a, bc)
///
/// bit for bit — the fused loop reads each matrix value before zeroing it,
/// so the rhs half against the *unlifted* operator plus the matrix half is
/// the identical sequence of operations. The matrix half depends only on
/// the constrained-dof *set* (values land exclusively in the rhs half),
/// which is why factorization cache keys exclude BC values.
void apply_dirichlet_rhs(const CsrMatrix& a, Vec& rhs, const DirichletBc& bc);
void apply_dirichlet_rhs(const CsrMatrix& a, std::vector<Vec>& rhss, const DirichletBc& bc);
void apply_dirichlet_matrix(CsrMatrix& a, const DirichletBc& bc);

/// Partition dofs into free/constrained maps for reduced-system extraction:
/// free_map[dof] = free index or -1; bc_map[dof] = constrained index or -1.
struct DofPartition {
  std::vector<idx_t> free_map;
  std::vector<idx_t> bc_map;
  idx_t num_free = 0;
  idx_t num_bc = 0;
};
DofPartition partition_dofs(idx_t num_dofs, const std::vector<idx_t>& bc_dofs);

}  // namespace ms::fem
