#include "fem/assembler.hpp"

#include <algorithm>
#include <cstdint>
#include <map>
#include <stdexcept>
#include <tuple>
#include <vector>

namespace ms::fem {
namespace {

using ShapeKey = std::tuple<double, double, double, std::uint8_t>;

ShapeKey make_key(const mesh::HexMesh& mesh, idx_t elem) {
  const mesh::Point3 lo = mesh.elem_min(elem);
  const mesh::Point3 hi = mesh.elem_max(elem);
  return {hi.x - lo.x, hi.y - lo.y, hi.z - lo.z,
          static_cast<std::uint8_t>(mesh.material(elem))};
}

/// Build the exact CSR sparsity of the trilinear stencil: node (i,j,k)
/// couples to the 3x3x3 neighborhood (clipped at the boundary), three dofs
/// per node, rows and columns in ascending dof order. Values start at zero.
CsrMatrix build_structured_pattern(const mesh::HexMesh& mesh) {
  const idx_t nx = mesh.nodes_x();
  const idx_t ny = mesh.nodes_y();
  const idx_t nz = mesh.nodes_z();
  const idx_t num_nodes = mesh.num_nodes();
  const idx_t num_dofs = 3 * num_nodes;

  std::vector<la::offset_t> row_ptr(static_cast<std::size_t>(num_dofs) + 1, 0);
  // First pass: count columns per node row.
  for (idx_t k = 0; k < nz; ++k) {
    const idx_t span_k = std::min<idx_t>(k + 1, nz - 1) - std::max<idx_t>(k - 1, 0) + 1;
    for (idx_t j = 0; j < ny; ++j) {
      const idx_t span_j = std::min<idx_t>(j + 1, ny - 1) - std::max<idx_t>(j - 1, 0) + 1;
      for (idx_t i = 0; i < nx; ++i) {
        const idx_t span_i = std::min<idx_t>(i + 1, nx - 1) - std::max<idx_t>(i - 1, 0) + 1;
        const la::offset_t cols = static_cast<la::offset_t>(span_i) * span_j * span_k * 3;
        const idx_t node = mesh.node_id(i, j, k);
        for (int c = 0; c < 3; ++c) row_ptr[static_cast<std::size_t>(dof_of(node, c)) + 1] = cols;
      }
    }
  }
  for (std::size_t r = 0; r < static_cast<std::size_t>(num_dofs); ++r) row_ptr[r + 1] += row_ptr[r];

  std::vector<idx_t> col_idx(static_cast<std::size_t>(row_ptr[num_dofs]));
  // Second pass: fill columns (neighbor loop order k,j,i yields ascending ids).
  for (idx_t k = 0; k < nz; ++k) {
    for (idx_t j = 0; j < ny; ++j) {
      for (idx_t i = 0; i < nx; ++i) {
        const idx_t node = mesh.node_id(i, j, k);
        la::offset_t pos = row_ptr[dof_of(node, 0)];
        const la::offset_t row_len = row_ptr[dof_of(node, 0) + 1] - pos;
        for (idx_t kk = std::max<idx_t>(k - 1, 0); kk <= std::min<idx_t>(k + 1, nz - 1); ++kk) {
          for (idx_t jj = std::max<idx_t>(j - 1, 0); jj <= std::min<idx_t>(j + 1, ny - 1); ++jj) {
            for (idx_t ii = std::max<idx_t>(i - 1, 0); ii <= std::min<idx_t>(i + 1, nx - 1); ++ii) {
              const idx_t nbr = mesh.node_id(ii, jj, kk);
              for (int c = 0; c < 3; ++c) col_idx[pos++] = dof_of(nbr, c);
            }
          }
        }
        // Rows for components 1 and 2 share the same column pattern.
        const la::offset_t begin = row_ptr[dof_of(node, 0)];
        std::copy_n(col_idx.begin() + begin, row_len, col_idx.begin() + row_ptr[dof_of(node, 1)]);
        std::copy_n(col_idx.begin() + begin, row_len, col_idx.begin() + row_ptr[dof_of(node, 2)]);
      }
    }
  }
  std::vector<double> values(col_idx.size(), 0.0);
  return CsrMatrix::from_raw(num_dofs, num_dofs, std::move(row_ptr), std::move(col_idx),
                             std::move(values));
}

/// Index of column `col` within CSR row `row` (must exist).
inline la::offset_t find_entry(const CsrMatrix& a, idx_t row, idx_t col) {
  const la::offset_t begin = a.row_ptr()[row];
  const la::offset_t end = a.row_ptr()[static_cast<std::size_t>(row) + 1];
  const auto first = a.col_idx().begin() + begin;
  const auto last = a.col_idx().begin() + end;
  const auto it = std::lower_bound(first, last, col);
  return begin + (it - first);
}

}  // namespace

AssembledSystem assemble_system(const mesh::HexMesh& mesh, const MaterialTable& materials,
                                const Vec* delta_t_per_elem) {
  if (delta_t_per_elem != nullptr &&
      delta_t_per_elem->size() != static_cast<std::size_t>(mesh.num_elems())) {
    throw std::invalid_argument("assemble_system: one ΔT per element required");
  }
  AssembledSystem sys;
  sys.num_dofs = 3 * mesh.num_nodes();
  sys.thermal_load.assign(sys.num_dofs, 0.0);
  sys.stiffness = build_structured_pattern(mesh);
  auto& values = sys.stiffness.values();

  struct CachedElem {
    std::array<double, kHexDofs * kHexDofs> ke;
    std::array<double, kHexDofs> fe;
  };
  std::map<ShapeKey, CachedElem> cache;

  const idx_t ne = mesh.num_elems();
  // Fill the shape cache serially (a handful of distinct element shapes) so
  // the scatter below can read it concurrently without locking.
  for (idx_t e = 0; e < ne; ++e) {
    const ShapeKey key = make_key(mesh, e);
    if (cache.find(key) == cache.end()) {
      const auto [hx, hy, hz, mat_id] = key;
      const Material& mat = materials.at(static_cast<mesh::MaterialId>(mat_id));
      cache.emplace(key, CachedElem{hex8_stiffness(mat, hx, hy, hz),
                                    hex8_thermal_load(mat, hx, hy, hz)});
    }
  }

  // Scatter in 8 parity colors (element index parity per axis): elements of
  // one color are at least two apart along some axis, so they share no node
  // and the in-color scatter is race-free. Colors run in a fixed order, so
  // every CSR slot and load entry accumulates its (at most 8) element
  // contributions in the same order regardless of thread count — the
  // parallel result is bitwise deterministic (though the element order
  // within a slot differs from the historical serial loop).
  std::array<std::vector<idx_t>, 8> colors;
  for (auto& c : colors) c.reserve(static_cast<std::size_t>(ne) / 8 + 1);
  for (idx_t e = 0; e < ne; ++e) {
    const auto ijk = mesh.elem_ijk(e);
    colors[(ijk[0] % 2) + 2 * (ijk[1] % 2) + 4 * (ijk[2] % 2)].push_back(e);
  }
  for (const std::vector<idx_t>& color : colors) {
    const std::int64_t count = static_cast<std::int64_t>(color.size());
#ifdef _OPENMP
#pragma omp parallel for schedule(static)
#endif
    for (std::int64_t ci = 0; ci < count; ++ci) {
      const idx_t e = color[ci];
      const CachedElem& ce = cache.find(make_key(mesh, e))->second;
      const double load_scale = delta_t_per_elem != nullptr ? (*delta_t_per_elem)[e] : 1.0;

      const auto nodes = mesh.elem_nodes(e);
      std::array<idx_t, kHexDofs> dofs;
      for (int a = 0; a < kHexNodes; ++a) {
        for (int c = 0; c < 3; ++c) dofs[3 * a + c] = dof_of(nodes[a], c);
      }
      for (int i = 0; i < kHexDofs; ++i) {
        sys.thermal_load[dofs[i]] += load_scale * ce.fe[i];
        // Columns within a row group by neighbor node; find each node group
        // once and scatter its three components contiguously.
        for (int aj = 0; aj < kHexNodes; ++aj) {
          const la::offset_t slot = find_entry(sys.stiffness, dofs[i], dofs[3 * aj]);
          for (int c = 0; c < 3; ++c) values[slot + c] += ce.ke[i * kHexDofs + 3 * aj + c];
        }
      }
    }
  }
  return sys;
}

namespace {

/// Shared driver of the two thermal-load assemblers: `scale_of(e)` gives the
/// factor each element's unit load is multiplied by before scattering.
template <typename ScaleOf>
Vec assemble_scaled_thermal_load(const mesh::HexMesh& mesh, const MaterialTable& materials,
                                 const ScaleOf& scale_of) {
  const idx_t num_dofs = 3 * mesh.num_nodes();
  Vec load(num_dofs, 0.0);
  std::map<ShapeKey, std::array<double, kHexDofs>> cache;
  const idx_t ne = mesh.num_elems();
  for (idx_t e = 0; e < ne; ++e) {
    const ShapeKey key = make_key(mesh, e);
    auto it = cache.find(key);
    if (it == cache.end()) {
      const auto [hx, hy, hz, mat_id] = key;
      const Material& mat = materials.at(static_cast<mesh::MaterialId>(mat_id));
      it = cache.emplace(key, hex8_thermal_load(mat, hx, hy, hz)).first;
    }
    const double scale = scale_of(e);
    if (scale == 0.0) continue;
    const auto nodes = mesh.elem_nodes(e);
    for (int a = 0; a < kHexNodes; ++a) {
      for (int c = 0; c < 3; ++c) load[dof_of(nodes[a], c)] += scale * it->second[3 * a + c];
    }
  }
  return load;
}

}  // namespace

Vec assemble_thermal_load(const mesh::HexMesh& mesh, const MaterialTable& materials) {
  return assemble_scaled_thermal_load(mesh, materials, [](idx_t) { return 1.0; });
}

Vec assemble_thermal_load(const mesh::HexMesh& mesh, const MaterialTable& materials,
                          const Vec& delta_t_per_elem) {
  if (delta_t_per_elem.size() != static_cast<std::size_t>(mesh.num_elems())) {
    throw std::invalid_argument("assemble_thermal_load: one ΔT per element required");
  }
  return assemble_scaled_thermal_load(mesh, materials,
                                      [&](idx_t e) { return delta_t_per_elem[e]; });
}

}  // namespace ms::fem
