#include "fem/hex8.hpp"

namespace ms::fem {

std::array<double, kHexNodes> hex8_shape(double xi, double eta, double zeta) {
  std::array<double, kHexNodes> n{};
  for (int a = 0; a < kHexNodes; ++a) {
    n[a] = 0.125 * (1.0 + kHexCorners[a][0] * xi) * (1.0 + kHexCorners[a][1] * eta) *
           (1.0 + kHexCorners[a][2] * zeta);
  }
  return n;
}

std::array<std::array<double, 3>, kHexNodes> hex8_shape_grad(double xi, double eta, double zeta) {
  std::array<std::array<double, 3>, kHexNodes> g{};
  for (int a = 0; a < kHexNodes; ++a) {
    const double sx = kHexCorners[a][0];
    const double sy = kHexCorners[a][1];
    const double sz = kHexCorners[a][2];
    g[a][0] = 0.125 * sx * (1.0 + sy * eta) * (1.0 + sz * zeta);
    g[a][1] = 0.125 * sy * (1.0 + sx * xi) * (1.0 + sz * zeta);
    g[a][2] = 0.125 * sz * (1.0 + sx * xi) * (1.0 + sy * eta);
  }
  return g;
}

BMatrix hex8_b_matrix(double xi, double eta, double zeta, double hx, double hy, double hz) {
  const auto grad = hex8_shape_grad(xi, eta, zeta);
  // Box element: d(xi)/dx = 2/hx etc., Jacobian constant diagonal.
  const double jx = 2.0 / hx;
  const double jy = 2.0 / hy;
  const double jz = 2.0 / hz;
  BMatrix b{};
  for (int a = 0; a < kHexNodes; ++a) {
    const double dndx = grad[a][0] * jx;
    const double dndy = grad[a][1] * jy;
    const double dndz = grad[a][2] * jz;
    const int cx = 3 * a;
    const int cy = 3 * a + 1;
    const int cz = 3 * a + 2;
    b[0][cx] = dndx;  // eps_xx
    b[1][cy] = dndy;  // eps_yy
    b[2][cz] = dndz;  // eps_zz
    b[3][cy] = dndz;  // gamma_yz
    b[3][cz] = dndy;
    b[4][cx] = dndz;  // gamma_xz
    b[4][cz] = dndx;
    b[5][cx] = dndy;  // gamma_xy
    b[5][cy] = dndx;
  }
  return b;
}

std::array<double, kHexDofs * kHexDofs> hex8_stiffness(const Material& mat, double hx, double hy,
                                                       double hz) {
  const auto d = mat.d_matrix();
  std::array<double, kHexDofs * kHexDofs> ke{};
  const double detj_w = (hx * hy * hz) / 8.0;  // |J| times unit Gauss weight
  for (int gx = 0; gx < 2; ++gx) {
    for (int gy = 0; gy < 2; ++gy) {
      for (int gz = 0; gz < 2; ++gz) {
        const double xi = (gx == 0 ? -kGauss2 : kGauss2);
        const double eta = (gy == 0 ? -kGauss2 : kGauss2);
        const double zeta = (gz == 0 ? -kGauss2 : kGauss2);
        const BMatrix b = hex8_b_matrix(xi, eta, zeta, hx, hy, hz);
        // db = D * B (6 x 24)
        std::array<std::array<double, kHexDofs>, kVoigt> db{};
        for (int r = 0; r < kVoigt; ++r) {
          for (int s = 0; s < kVoigt; ++s) {
            const double drs = d[r * kVoigt + s];
            if (drs == 0.0) continue;
            for (int c = 0; c < kHexDofs; ++c) db[r][c] += drs * b[s][c];
          }
        }
        // ke += B^T * db * detj_w
        for (int i = 0; i < kHexDofs; ++i) {
          for (int r = 0; r < kVoigt; ++r) {
            const double bri = b[r][i];
            if (bri == 0.0) continue;
            const double w = bri * detj_w;
            for (int j = 0; j < kHexDofs; ++j) ke[i * kHexDofs + j] += w * db[r][j];
          }
        }
      }
    }
  }
  return ke;
}

std::array<double, kHexDofs> hex8_thermal_load(const Material& mat, double hx, double hy,
                                               double hz) {
  const auto sigma_th = mat.thermal_stress_unit();
  std::array<double, kHexDofs> fe{};
  const double detj_w = (hx * hy * hz) / 8.0;
  for (int gx = 0; gx < 2; ++gx) {
    for (int gy = 0; gy < 2; ++gy) {
      for (int gz = 0; gz < 2; ++gz) {
        const double xi = (gx == 0 ? -kGauss2 : kGauss2);
        const double eta = (gy == 0 ? -kGauss2 : kGauss2);
        const double zeta = (gz == 0 ? -kGauss2 : kGauss2);
        const BMatrix b = hex8_b_matrix(xi, eta, zeta, hx, hy, hz);
        for (int i = 0; i < kHexDofs; ++i) {
          double sum = 0.0;
          for (int r = 0; r < kVoigt; ++r) sum += b[r][i] * sigma_th[r];
          fe[i] += sum * detj_w;
        }
      }
    }
  }
  return fe;
}

}  // namespace ms::fem
