#pragma once
// Isotropic thermoelastic materials (paper Sec. 3.1). Units: MPa for moduli
// and stress, 1/K for CTE, micrometres for length, degrees C for ΔT, and
// W/(m K) conductivity / J/(m^3 K) volumetric heat capacity for the
// conduction subsystem (steady-state and transient respectively).

#include <array>
#include <string>
#include <vector>

#include "mesh/hex_mesh.hpp"

namespace ms::fem {

/// Voigt component order used throughout: xx, yy, zz, yz, xz, xy.
inline constexpr int kVoigt = 6;

struct Material {
  std::string name;
  double youngs_modulus = 0.0;  ///< E [MPa]
  double poisson_ratio = 0.0;   ///< nu [-]
  double cte = 0.0;             ///< alpha [1/K]
  double conductivity = 0.0;    ///< k [W/(m K)]; 0 = not usable for conduction
  /// rho * c_p [J/(m^3 K)]; 0 = not usable for transient conduction.
  double volumetric_heat_capacity = 0.0;
  // Fatigue (reliability subsystem): stress-life (Basquin) and strain-life
  // (Coffin-Manson) coefficients. 0 = no fatigue data for that law (brittle
  // or uncharacterized materials); exponents are negative when present.
  double fatigue_strength = 0.0;            ///< sigma_f' [MPa] (Basquin)
  double fatigue_strength_exponent = 0.0;   ///< b (Basquin, < 0)
  double fatigue_ductility = 0.0;           ///< eps_f' [-] (Coffin-Manson)
  double fatigue_ductility_exponent = 0.0;  ///< c (Coffin-Manson, < 0)
  /// sigma_u [MPa], ultimate tensile strength. Enables the Goodman /
  /// modified-Morrow mean-stress corrections; 0 = no correction data.
  double ultimate_strength = 0.0;

  /// First Lame parameter lambda = E nu / ((1+nu)(1-2nu))  (Eq. 2).
  [[nodiscard]] double lame_lambda() const;
  /// Shear modulus mu = E / (2(1+nu))  (Eq. 2).
  [[nodiscard]] double lame_mu() const;
  /// Thermal stress coefficient alpha (3 lambda + 2 mu)  (Eq. 1).
  [[nodiscard]] double thermal_modulus() const;

  /// 6x6 isotropic elasticity matrix D in Voigt order, engineering shear.
  [[nodiscard]] std::array<double, kVoigt * kVoigt> d_matrix() const;

  /// D * eps_th for unit thermal load (alpha (3 lambda + 2 mu) on the three
  /// normal components).
  [[nodiscard]] std::array<double, kVoigt> thermal_stress_unit() const;

  void validate() const;
};

/// Maps mesh::MaterialId -> Material. Index = static_cast<size_t>(id).
class MaterialTable {
 public:
  MaterialTable() = default;
  explicit MaterialTable(std::vector<Material> materials);

  [[nodiscard]] const Material& at(mesh::MaterialId id) const;
  [[nodiscard]] std::size_t size() const { return materials_.size(); }

  /// The material set used by all paper experiments:
  /// Si / Cu / SiO2 liner / organic substrate.
  static MaterialTable standard();

 private:
  std::vector<Material> materials_;
};

/// Classic literature values (see DESIGN.md Sec. 5).
Material silicon();
Material copper();
Material sio2_liner();
Material organic_substrate();

}  // namespace ms::fem
