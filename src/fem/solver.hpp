#pragma once
// Full fine-mesh FEM solver — the ANSYS stand-in (see DESIGN.md Sec. 2).
// Assembles the thermoelastic system on the given mesh, applies Dirichlet
// data by lifting, and solves with preconditioned CG (like the paper's
// "iterative" ANSYS setting) or sparse Cholesky for small problems.

#include <string>

#include "fem/assembler.hpp"
#include "fem/dirichlet.hpp"
#include "util/timer.hpp"

namespace ms::fem {

struct FemSolveOptions {
  std::string method = "cg";      ///< "cg" or "direct"
  std::string precond = "ssor";   ///< for cg: "none", "jacobi", "ssor"
  double rel_tol = 1e-7;
  idx_t max_iterations = 30000;
};

struct FemSolveStats {
  idx_t num_dofs = 0;
  double assemble_seconds = 0.0;
  double solve_seconds = 0.0;
  idx_t iterations = 0;           ///< 0 for the direct path
  bool converged = false;
  std::size_t matrix_bytes = 0;   ///< CSR storage
  std::size_t solver_bytes = 0;   ///< factor / Krylov workspace estimate
  [[nodiscard]] double total_seconds() const { return assemble_seconds + solve_seconds; }
  [[nodiscard]] std::size_t total_bytes() const { return matrix_bytes + solver_bytes; }
};

/// One-call convenience: assemble, lift, solve; returns the full displacement
/// vector (prescribed dofs carry their boundary values).
Vec solve_thermal_stress(const mesh::HexMesh& mesh, const MaterialTable& materials,
                         double thermal_load, const DirichletBc& bc,
                         const FemSolveOptions& options = {}, FemSolveStats* stats = nullptr);

/// Per-element ΔT variant (size num_elems): the brute-force reference for
/// non-uniform thermal loads (a BlockLoadField expanded onto the fine mesh).
Vec solve_thermal_stress(const mesh::HexMesh& mesh, const MaterialTable& materials,
                         const Vec& delta_t_per_elem, const DirichletBc& bc,
                         const FemSolveOptions& options = {}, FemSolveStats* stats = nullptr);

}  // namespace ms::fem
