#pragma once
// Full fine-mesh FEM solver — the ANSYS stand-in (see DESIGN.md Sec. 2).
// Assembles the thermoelastic system on the given mesh, applies Dirichlet
// data by lifting, and solves with preconditioned CG (like the paper's
// "iterative" ANSYS setting) or sparse Cholesky for small problems.

#include <string>
#include <vector>

#include "fem/assembler.hpp"
#include "fem/dirichlet.hpp"
#include "la/cholesky.hpp"
#include "util/timer.hpp"

namespace ms::fem {

struct FemSolveOptions {
  std::string method = "cg";      ///< "cg" or "direct"
  std::string precond = "ssor";   ///< for cg: "none", "jacobi", "ssor"
  double rel_tol = 1e-7;
  idx_t max_iterations = 30000;
  /// Direct-path factorization: ordering + supernodal/simplicial back end.
  la::SparseCholesky::Options factor;
};

struct FemSolveStats {
  idx_t num_dofs = 0;
  double assemble_seconds = 0.0;
  double solve_seconds = 0.0;
  idx_t iterations = 0;           ///< 0 for the direct path
  bool converged = false;
  std::size_t matrix_bytes = 0;   ///< CSR storage
  std::size_t solver_bytes = 0;   ///< factor / Krylov workspace estimate
  // Direct-path factorization detail (zero / empty on the cg path):
  double factor_seconds = 0.0;    ///< the one Cholesky factorization
  la::offset_t factor_nnz = 0;    ///< nnz(L), diagonal included
  double fill_ratio = 0.0;        ///< nnz(L) / nnz(tril(A))
  std::string ordering;           ///< "amd" / "rcm" / "natural"
  [[nodiscard]] double total_seconds() const { return assemble_seconds + solve_seconds; }
  [[nodiscard]] std::size_t total_bytes() const { return matrix_bytes + solver_bytes; }
};

/// One-call convenience: assemble, lift, solve; returns the full displacement
/// vector (prescribed dofs carry their boundary values).
Vec solve_thermal_stress(const mesh::HexMesh& mesh, const MaterialTable& materials,
                         double thermal_load, const DirichletBc& bc,
                         const FemSolveOptions& options = {}, FemSolveStats* stats = nullptr);

/// Per-element ΔT variant (size num_elems): the brute-force reference for
/// non-uniform thermal loads (a BlockLoadField expanded onto the fine mesh).
Vec solve_thermal_stress(const mesh::HexMesh& mesh, const MaterialTable& materials,
                         const Vec& delta_t_per_elem, const DirichletBc& bc,
                         const FemSolveOptions& options = {}, FemSolveStats* stats = nullptr);

/// Several per-element ΔT load cases on one mesh and boundary set: the
/// system is assembled and lifted once, and on the direct path factored once
/// with every case solved as one multi-RHS panel (the reference-FEM harness
/// uses this to validate transient snapshot histories at one factorization).
/// Returns one displacement vector per case.
std::vector<Vec> solve_thermal_stress_multi(const mesh::HexMesh& mesh,
                                            const MaterialTable& materials,
                                            const std::vector<Vec>& delta_t_cases,
                                            const DirichletBc& bc,
                                            const FemSolveOptions& options = {},
                                            FemSolveStats* stats = nullptr);

}  // namespace ms::fem
