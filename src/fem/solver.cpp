#include "fem/solver.hpp"

#include <stdexcept>
#include <utility>

#include "la/cg.hpp"
#include "la/cholesky.hpp"
#include "la/precond.hpp"
#include "util/log.hpp"
#include "util/memory.hpp"

namespace ms::fem {

namespace {

/// Shared tail of the two entry points: lift the Dirichlet data into the
/// already-assembled system, solve, and fill the stats record.
Vec solve_assembled(AssembledSystem& sys, Vec rhs, const DirichletBc& bc,
                    const FemSolveOptions& options, FemSolveStats* stats, util::WallTimer& timer) {
  apply_dirichlet(sys.stiffness, rhs, bc);
  const double assemble_seconds = timer.seconds();

  util::ScopedLedgerBytes matrix_mem(sys.stiffness.memory_bytes() + 2 * rhs.size() * sizeof(double));

  timer.reset();
  Vec u;
  idx_t iterations = 0;
  bool converged = false;
  std::size_t solver_bytes = 0;
  if (options.method == "direct") {
    la::SparseCholesky chol(sys.stiffness);
    u = chol.solve(rhs);
    converged = true;
    solver_bytes = chol.memory_bytes();
  } else if (options.method == "cg") {
    auto precond = la::make_preconditioner(options.precond, sys.stiffness);
    la::IterativeOptions iter_options;
    iter_options.rel_tol = options.rel_tol;
    iter_options.max_iterations = options.max_iterations;
    const la::IterativeResult result =
        la::conjugate_gradient(sys.stiffness, rhs, u, precond.get(), iter_options);
    iterations = result.iterations;
    converged = result.converged;
    // Krylov workspace: x, r, z, p, Ap + preconditioner state.
    solver_bytes = 5 * rhs.size() * sizeof(double) + precond->memory_bytes();
    if (!converged) {
      MS_LOG_WARN("full FEM CG did not converge in %d iterations (residual %.3e)",
                  static_cast<int>(result.iterations), result.residual_norm);
    }
  } else {
    throw std::invalid_argument("solve_thermal_stress: unknown method '" + options.method + "'");
  }
  util::ScopedLedgerBytes solver_mem(solver_bytes);

  if (stats != nullptr) {
    stats->num_dofs = sys.num_dofs;
    stats->assemble_seconds = assemble_seconds;
    stats->solve_seconds = timer.seconds();
    stats->iterations = iterations;
    stats->converged = converged;
    stats->matrix_bytes = sys.stiffness.memory_bytes();
    stats->solver_bytes = solver_bytes;
  }
  return u;
}

}  // namespace

Vec solve_thermal_stress(const mesh::HexMesh& mesh, const MaterialTable& materials,
                         double thermal_load, const DirichletBc& bc,
                         const FemSolveOptions& options, FemSolveStats* stats) {
  util::WallTimer timer;
  AssembledSystem sys = assemble_system(mesh, materials);
  Vec rhs = sys.thermal_load;
  la::scale(rhs, thermal_load);
  return solve_assembled(sys, std::move(rhs), bc, options, stats, timer);
}

Vec solve_thermal_stress(const mesh::HexMesh& mesh, const MaterialTable& materials,
                         const Vec& delta_t_per_elem, const DirichletBc& bc,
                         const FemSolveOptions& options, FemSolveStats* stats) {
  util::WallTimer timer;
  AssembledSystem sys = assemble_system(mesh, materials, &delta_t_per_elem);
  Vec rhs = sys.thermal_load;
  return solve_assembled(sys, std::move(rhs), bc, options, stats, timer);
}

}  // namespace ms::fem
