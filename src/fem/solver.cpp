#include "fem/solver.hpp"

#include <stdexcept>
#include <utility>

#include "la/cg.hpp"
#include "la/cholesky.hpp"
#include "la/precond.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/log.hpp"
#include "util/memory.hpp"

namespace ms::fem {

namespace {

/// Mirror the exact out-param values into the registry (regression-locked
/// against the legacy struct by tests/obs).
void publish_fem_stats(const FemSolveStats& s) {
  auto& reg = obs::MetricRegistry::global();
  reg.counter("fem.solves").add(1);
  reg.counter("fem.iterations").add(s.iterations);
  reg.histogram("fem.assemble_seconds").record(s.assemble_seconds);
  reg.histogram("fem.solve_seconds").record(s.solve_seconds);
  reg.histogram("fem.factor_seconds").record(s.factor_seconds);
  reg.gauge("fem.num_dofs").set(static_cast<double>(s.num_dofs));
  reg.gauge("fem.converged").set(s.converged ? 1.0 : 0.0);
  reg.gauge("fem.factor_nnz").set(static_cast<double>(s.factor_nnz));
  reg.gauge("fem.fill_ratio").set(s.fill_ratio);
}

/// Shared tail of every entry point: lift the Dirichlet data into the
/// already-assembled system, solve all load cases against the one operator
/// (direct: one factorization + one multi-RHS panel; cg: loop), and fill the
/// stats record. The single-case wrappers delegate here so both paths stay
/// one implementation.
std::vector<Vec> solve_assembled_cases(AssembledSystem& sys, std::vector<Vec> rhs_cases,
                                       const DirichletBc& bc, const FemSolveOptions& options,
                                       FemSolveStats* stats, util::WallTimer& timer) {
  MS_TRACE_SCOPE("fem.solve");
  apply_dirichlet(sys.stiffness, rhs_cases, bc);
  const double assemble_seconds = timer.seconds();
  FemSolveStats local;

  util::ScopedLedgerBytes matrix_mem(sys.stiffness.memory_bytes() +
                                     (rhs_cases.size() + 1) * rhs_cases.front().size() *
                                         sizeof(double));

  timer.reset();
  const idx_t num_cases = static_cast<idx_t>(rhs_cases.size());
  std::vector<Vec> solutions(rhs_cases.size());
  idx_t iterations = 0;
  bool converged = false;
  std::size_t solver_bytes = 0;
  if (options.method == "direct") {
    la::SparseCholesky chol(sys.stiffness, options.factor);
    const double factor_seconds = timer.seconds();
    solutions = chol.solve_multi(rhs_cases);
    converged = true;
    solver_bytes = chol.memory_bytes();
    local.factor_seconds = factor_seconds;
    local.factor_nnz = chol.factor_nnz();
    local.fill_ratio = chol.fill_ratio();
    local.ordering = chol.ordering_name();
  } else if (options.method == "cg") {
    auto precond = la::make_preconditioner(options.precond, sys.stiffness);
    la::IterativeOptions iter_options;
    iter_options.rel_tol = options.rel_tol;
    iter_options.max_iterations = options.max_iterations;
    converged = true;
    for (idx_t c = 0; c < num_cases; ++c) {
      const la::IterativeResult result = la::conjugate_gradient(
          sys.stiffness, rhs_cases[c], solutions[c], precond.get(), iter_options);
      iterations += result.iterations;
      converged = converged && result.converged;
      if (!result.converged) {
        MS_LOG_WARN("full FEM CG (case %d) did not converge in %d iterations (residual %.3e)",
                    static_cast<int>(c), static_cast<int>(result.iterations),
                    result.residual_norm);
      }
    }
    // Krylov workspace: x, r, z, p, Ap + preconditioner state.
    solver_bytes =
        5 * rhs_cases.front().size() * sizeof(double) + precond->memory_bytes();
  } else {
    throw std::invalid_argument("solve_thermal_stress: unknown method '" + options.method + "'");
  }
  util::ScopedLedgerBytes solver_mem(solver_bytes);

  local.num_dofs = sys.num_dofs;
  local.assemble_seconds = assemble_seconds;
  local.solve_seconds = timer.seconds();
  local.iterations = iterations;
  local.converged = converged;
  local.matrix_bytes = sys.stiffness.memory_bytes();
  local.solver_bytes = solver_bytes;
  publish_fem_stats(local);
  if (stats != nullptr) *stats = local;
  return solutions;
}

Vec solve_assembled(AssembledSystem& sys, Vec rhs, const DirichletBc& bc,
                    const FemSolveOptions& options, FemSolveStats* stats, util::WallTimer& timer) {
  std::vector<Vec> rhs_cases;
  rhs_cases.push_back(std::move(rhs));
  return std::move(
      solve_assembled_cases(sys, std::move(rhs_cases), bc, options, stats, timer).front());
}

}  // namespace

Vec solve_thermal_stress(const mesh::HexMesh& mesh, const MaterialTable& materials,
                         double thermal_load, const DirichletBc& bc,
                         const FemSolveOptions& options, FemSolveStats* stats) {
  util::WallTimer timer;
  AssembledSystem sys = assemble_system(mesh, materials);
  Vec rhs = sys.thermal_load;
  la::scale(rhs, thermal_load);
  return solve_assembled(sys, std::move(rhs), bc, options, stats, timer);
}

Vec solve_thermal_stress(const mesh::HexMesh& mesh, const MaterialTable& materials,
                         const Vec& delta_t_per_elem, const DirichletBc& bc,
                         const FemSolveOptions& options, FemSolveStats* stats) {
  util::WallTimer timer;
  AssembledSystem sys = assemble_system(mesh, materials, &delta_t_per_elem);
  Vec rhs = sys.thermal_load;
  return solve_assembled(sys, std::move(rhs), bc, options, stats, timer);
}

std::vector<Vec> solve_thermal_stress_multi(const mesh::HexMesh& mesh,
                                            const MaterialTable& materials,
                                            const std::vector<Vec>& delta_t_cases,
                                            const DirichletBc& bc,
                                            const FemSolveOptions& options, FemSolveStats* stats) {
  if (delta_t_cases.empty()) return {};
  util::WallTimer timer;
  // One stiffness assembly; each case only needs its own load vector.
  AssembledSystem sys = assemble_system(mesh, materials, &delta_t_cases.front());
  std::vector<Vec> rhs_cases;
  rhs_cases.reserve(delta_t_cases.size());
  rhs_cases.push_back(sys.thermal_load);
  for (std::size_t c = 1; c < delta_t_cases.size(); ++c) {
    rhs_cases.push_back(assemble_thermal_load(mesh, materials, delta_t_cases[c]));
  }
  return solve_assembled_cases(sys, std::move(rhs_cases), bc, options, stats, timer);
}

}  // namespace ms::fem
