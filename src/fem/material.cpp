#include "fem/material.hpp"

#include <stdexcept>

namespace ms::fem {

double Material::lame_lambda() const {
  return youngs_modulus * poisson_ratio / (1.0 + poisson_ratio) / (1.0 - 2.0 * poisson_ratio);
}

double Material::lame_mu() const { return youngs_modulus / 2.0 / (1.0 + poisson_ratio); }

double Material::thermal_modulus() const { return cte * (3.0 * lame_lambda() + 2.0 * lame_mu()); }

std::array<double, kVoigt * kVoigt> Material::d_matrix() const {
  const double lambda = lame_lambda();
  const double mu = lame_mu();
  std::array<double, kVoigt * kVoigt> d{};
  for (int i = 0; i < 3; ++i) {
    for (int j = 0; j < 3; ++j) d[i * kVoigt + j] = lambda;
    d[i * kVoigt + i] = lambda + 2.0 * mu;
    d[(i + 3) * kVoigt + (i + 3)] = mu;  // engineering shear strains
  }
  return d;
}

std::array<double, kVoigt> Material::thermal_stress_unit() const {
  const double beta = thermal_modulus();
  return {beta, beta, beta, 0.0, 0.0, 0.0};
}

void Material::validate() const {
  if (youngs_modulus <= 0.0) throw std::invalid_argument("Material: E must be positive");
  if (poisson_ratio <= -1.0 || poisson_ratio >= 0.5) {
    throw std::invalid_argument("Material: nu must lie in (-1, 0.5)");
  }
}

MaterialTable::MaterialTable(std::vector<Material> materials) : materials_(std::move(materials)) {
  for (const auto& m : materials_) m.validate();
}

const Material& MaterialTable::at(mesh::MaterialId id) const {
  const auto index = static_cast<std::size_t>(id);
  if (index >= materials_.size()) throw std::out_of_range("MaterialTable: unknown material id");
  return materials_[index];
}

MaterialTable MaterialTable::standard() {
  return MaterialTable({silicon(), copper(), sio2_liner(), organic_substrate()});
}

// Conductivities and volumetric heat capacities (rho * c_p) are classic
// room-temperature literature values. Copper additionally carries the
// classic annealed-OFHC fatigue coefficients (Basquin sigma_f' = 564 MPa,
// b = -0.136; Coffin-Manson eps_f' = 0.475, c = -0.538) and the annealed
// ultimate tensile strength sigma_u = 220 MPa that feeds the mean-stress
// corrections; Si and SiO2 are brittle and the substrate is uncharacterized,
// so their fatigue fields stay zero (no stress/strain-life data).
Material silicon() { return {"Si", 130.0e3, 0.28, 2.8e-6, 149.0, 1.63e6}; }

Material copper() {
  return {"Cu", 110.0e3, 0.35, 17.7e-6, 401.0, 3.45e6, 564.0, -0.136, 0.475, -0.538, 220.0};
}

Material sio2_liner() { return {"SiO2", 71.7e3, 0.16, 0.51e-6, 1.4, 1.61e6}; }

Material organic_substrate() { return {"organic", 20.0e3, 0.30, 15.0e-6, 0.5, 2.0e6}; }

}  // namespace ms::fem
