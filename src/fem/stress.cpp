#include "fem/stress.hpp"

#include <cassert>
#include <cmath>
#include <stdexcept>

#include "fem/hex8.hpp"

namespace ms::fem {
namespace {

/// Gather the 24 element dof values for element `e`.
std::array<double, kHexDofs> gather_elem_dofs(const mesh::HexMesh& mesh, const Vec& u, la::idx_t e) {
  const auto nodes = mesh.elem_nodes(e);
  std::array<double, kHexDofs> ue;
  for (int a = 0; a < kHexNodes; ++a) {
    for (int c = 0; c < 3; ++c) ue[3 * a + c] = u[3 * nodes[a] + c];
  }
  return ue;
}

Stress6 strain_from_located(const mesh::HexMesh& mesh, const Vec& u,
                            const mesh::HexMesh::Location& loc) {
  const mesh::Point3 lo = mesh.elem_min(loc.elem);
  const mesh::Point3 hi = mesh.elem_max(loc.elem);
  const BMatrix b =
      hex8_b_matrix(loc.xi, loc.eta, loc.zeta, hi.x - lo.x, hi.y - lo.y, hi.z - lo.z);
  const auto ue = gather_elem_dofs(mesh, u, loc.elem);
  Stress6 eps{};
  for (int r = 0; r < kVoigt; ++r) {
    double sum = 0.0;
    for (int c = 0; c < kHexDofs; ++c) sum += b[r][c] * ue[c];
    eps[r] = sum;
  }
  return eps;
}

}  // namespace

Stress6 strain_at(const mesh::HexMesh& mesh, const Vec& u, const mesh::Point3& p) {
  assert(static_cast<la::idx_t>(u.size()) == 3 * mesh.num_nodes());
  return strain_from_located(mesh, u, mesh.locate(p));
}

namespace {

Stress6 stress_from_located(const mesh::HexMesh& mesh, const MaterialTable& materials, const Vec& u,
                            double thermal_load, const mesh::HexMesh::Location& loc) {
  const Stress6 eps = strain_from_located(mesh, u, loc);
  const Material& mat = materials.at(mesh.material(loc.elem));
  const auto d = mat.d_matrix();
  const auto sigma_th = mat.thermal_stress_unit();
  Stress6 sigma{};
  for (int r = 0; r < kVoigt; ++r) {
    double sum = 0.0;
    for (int s = 0; s < kVoigt; ++s) sum += d[r * kVoigt + s] * eps[s];
    sigma[r] = sum - thermal_load * sigma_th[r];
  }
  return sigma;
}

}  // namespace

Stress6 stress_at(const mesh::HexMesh& mesh, const MaterialTable& materials, const Vec& u,
                  double thermal_load, const mesh::Point3& p) {
  return stress_from_located(mesh, materials, u, thermal_load, mesh.locate(p));
}

Stress6 stress_at(const mesh::HexMesh& mesh, const MaterialTable& materials, const Vec& u,
                  const Vec& delta_t_per_elem, const mesh::Point3& p) {
  if (delta_t_per_elem.size() != static_cast<std::size_t>(mesh.num_elems())) {
    throw std::invalid_argument("stress_at: one ΔT per element required");
  }
  const auto loc = mesh.locate(p);
  return stress_from_located(mesh, materials, u, delta_t_per_elem[loc.elem], loc);
}

double von_mises(const Stress6& s) {
  const double dxy = s[0] - s[1];
  const double dyz = s[1] - s[2];
  const double dzx = s[2] - s[0];
  return std::sqrt(0.5 * (dxy * dxy + dyz * dyz + dzx * dzx) +
                   3.0 * (s[3] * s[3] + s[4] * s[4] + s[5] * s[5]));
}

PlaneGrid make_block_plane_grid(double pitch, int blocks_x, int blocks_y, int samples_per_block,
                                double z) {
  if (blocks_x < 1 || blocks_y < 1 || samples_per_block < 1) {
    throw std::invalid_argument("make_block_plane_grid: positive sizes required");
  }
  PlaneGrid grid;
  grid.z = z;
  grid.xs.reserve(static_cast<std::size_t>(blocks_x) * samples_per_block);
  grid.ys.reserve(static_cast<std::size_t>(blocks_y) * samples_per_block);
  for (int b = 0; b < blocks_x; ++b) {
    for (int m = 0; m < samples_per_block; ++m) {
      grid.xs.push_back((b + (m + 0.5) / samples_per_block) * pitch);
    }
  }
  for (int b = 0; b < blocks_y; ++b) {
    for (int m = 0; m < samples_per_block; ++m) {
      grid.ys.push_back((b + (m + 0.5) / samples_per_block) * pitch);
    }
  }
  return grid;
}

std::vector<Stress6> sample_plane_stress(const mesh::HexMesh& mesh, const MaterialTable& materials,
                                         const Vec& u, double thermal_load, const PlaneGrid& grid) {
  std::vector<Stress6> out;
  out.reserve(grid.size());
  for (double y : grid.ys) {
    for (double x : grid.xs) {
      out.push_back(stress_at(mesh, materials, u, thermal_load, {x, y, grid.z}));
    }
  }
  return out;
}

std::vector<Stress6> sample_plane_stress(const mesh::HexMesh& mesh, const MaterialTable& materials,
                                         const Vec& u, const Vec& delta_t_per_elem,
                                         const PlaneGrid& grid) {
  std::vector<Stress6> out;
  out.reserve(grid.size());
  for (double y : grid.ys) {
    for (double x : grid.xs) {
      out.push_back(stress_at(mesh, materials, u, delta_t_per_elem, {x, y, grid.z}));
    }
  }
  return out;
}

std::vector<double> to_von_mises(const std::vector<Stress6>& stresses) {
  std::vector<double> out;
  out.reserve(stresses.size());
  for (const auto& s : stresses) out.push_back(von_mises(s));
  return out;
}

double normalized_mae(const std::vector<double>& ref, const std::vector<double>& test) {
  if (ref.size() != test.size() || ref.empty()) {
    throw std::invalid_argument("normalized_mae: size mismatch or empty input");
  }
  double sum = 0.0;
  double max_ref = 0.0;
  for (std::size_t i = 0; i < ref.size(); ++i) {
    sum += std::fabs(ref[i] - test[i]);
    max_ref = std::max(max_ref, std::fabs(ref[i]));
  }
  if (max_ref == 0.0) return 0.0;
  return sum / static_cast<double>(ref.size()) / max_ref;
}

}  // namespace ms::fem
