#pragma once
// 8-node trilinear hexahedral element: shape functions, strain-displacement
// matrix, and the element stiffness / thermal-load integrals with 2x2x2
// Gauss quadrature. All meshes here are axis-aligned boxes, so the Jacobian
// is constant diagonal and the integrals specialize accordingly.

#include <array>

#include "fem/material.hpp"

namespace ms::fem {

inline constexpr int kHexNodes = 8;
inline constexpr int kHexDofs = 3 * kHexNodes;  // 24

/// Reference-corner signs matching mesh::HexMesh::elem_nodes order.
inline constexpr std::array<std::array<double, 3>, kHexNodes> kHexCorners{{
    {-1.0, -1.0, -1.0}, {1.0, -1.0, -1.0}, {1.0, 1.0, -1.0}, {-1.0, 1.0, -1.0},
    {-1.0, -1.0, 1.0},  {1.0, -1.0, 1.0},  {1.0, 1.0, 1.0},  {-1.0, 1.0, 1.0},
}};

/// N_a(xi,eta,zeta) for all 8 corners.
std::array<double, kHexNodes> hex8_shape(double xi, double eta, double zeta);

/// dN_a/d(xi,eta,zeta) for all 8 corners, row a = (d/dxi, d/deta, d/dzeta).
std::array<std::array<double, 3>, kHexNodes> hex8_shape_grad(double xi, double eta, double zeta);

/// Strain-displacement matrix B (6 x 24, Voigt xx,yy,zz,yz,xz,xy with
/// engineering shears) at a reference point, for a box element with edge
/// lengths (hx, hy, hz). Layout: b[row][3*a + component].
using BMatrix = std::array<std::array<double, kHexDofs>, kVoigt>;
BMatrix hex8_b_matrix(double xi, double eta, double zeta, double hx, double hy, double hz);

/// Element stiffness Ke (24 x 24, row-major) = integral B^T D B dV for a box
/// element of edges (hx,hy,hz) with material `mat`.
std::array<double, kHexDofs * kHexDofs> hex8_stiffness(const Material& mat, double hx, double hy,
                                                       double hz);

/// Element thermal load for unit thermal load: integral B^T (D eps_th) dV.
std::array<double, kHexDofs> hex8_thermal_load(const Material& mat, double hx, double hy,
                                               double hz);

/// Two-point Gauss abscissa (weight 1).
inline constexpr double kGauss2 = 0.577350269189625764509148780502;

}  // namespace ms::fem
