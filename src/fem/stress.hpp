#pragma once
// Stress recovery and the paper's comparison metric: the gridded von Mises
// stress on the cut plane at half the TSV height, sampled on an s x s grid
// per unit block (Sec. 5.2), and the normalized mean-absolute-error between
// two such fields.

#include <array>
#include <vector>

#include "fem/material.hpp"
#include "la/vec.hpp"
#include "mesh/hex_mesh.hpp"

namespace ms::fem {

using la::Vec;
using Stress6 = std::array<double, kVoigt>;  ///< Voigt xx,yy,zz,yz,xz,xy

/// sigma = D * (B u_e) - DT * D eps_th at the point p inside the mesh.
Stress6 stress_at(const mesh::HexMesh& mesh, const MaterialTable& materials, const Vec& u,
                  double thermal_load, const mesh::Point3& p);

/// Per-element ΔT variant: the containing element's own ΔT enters the
/// thermal-stress correction (reference recovery for non-uniform loads).
Stress6 stress_at(const mesh::HexMesh& mesh, const MaterialTable& materials, const Vec& u,
                  const Vec& delta_t_per_elem, const mesh::Point3& p);

/// Strain (engineering shears) at the point p.
Stress6 strain_at(const mesh::HexMesh& mesh, const Vec& u, const mesh::Point3& p);

/// von Mises equivalent stress of a Voigt tensor.
double von_mises(const Stress6& s);

/// Rectangular sampling grid at fixed z.
struct PlaneGrid {
  std::vector<double> xs;
  std::vector<double> ys;
  double z = 0.0;

  [[nodiscard]] std::size_t size() const { return xs.size() * ys.size(); }
};

/// Cell-centred s x s samples per block over an nx x ny block array of pitch
/// p, at height z. Sampling at cell centres avoids material interfaces.
PlaneGrid make_block_plane_grid(double pitch, int blocks_x, int blocks_y, int samples_per_block,
                                double z);

/// Evaluate the stress tensor at every grid point (y-major: iy * xs + ix).
std::vector<Stress6> sample_plane_stress(const mesh::HexMesh& mesh, const MaterialTable& materials,
                                         const Vec& u, double thermal_load, const PlaneGrid& grid);

/// Per-element ΔT variant of the plane sampler.
std::vector<Stress6> sample_plane_stress(const mesh::HexMesh& mesh, const MaterialTable& materials,
                                         const Vec& u, const Vec& delta_t_per_elem,
                                         const PlaneGrid& grid);

/// von Mises of each sample.
std::vector<double> to_von_mises(const std::vector<Stress6>& stresses);

/// Paper's error metric: mean |a - b| normalized by max |ref| (Sec. 5.2).
double normalized_mae(const std::vector<double>& ref, const std::vector<double>& test);

}  // namespace ms::fem
