#pragma once
// Query-scoped attribution sink. Process-wide MetricRegistry deltas say what
// a whole batch did; QueryScope says which scenario did it. A sweep worker
// installs a QueryScope for the duration of one query, and instrumentation
// sites (caches, solvers, stage timers) attribute into the active scope *in
// addition to* the global registry:
//
//   obs::QueryTelemetry telemetry;
//   {
//     obs::QueryScope scope(telemetry);
//     run_query();                       // sites call QueryScope::count/...
//   }
//   result.telemetry = std::move(telemetry);
//
// The sink is a plain thread-local pointer: installing it is two stores, and
// a site with no active scope pays one TLS load and a branch. This works
// because every attribution site runs on the query's own worker thread — the
// solver's OpenMP inner loops never touch the sink, and cross-thread handoff
// is explicit by design (see DESIGN.md "Query-scoped telemetry": no TLS
// inheritance across pool threads, the engine re-installs the scope on the
// worker).

#include <cstdint>
#include <map>
#include <string>

namespace ms::obs {

/// Per-query attributed telemetry: monotonic counts (cache hits, RHS columns,
/// factorizations) and accumulated durations (stage seconds, queue wait,
/// single-flight wait), keyed by dotted metric-style names. std::map keeps
/// rendering deterministic.
struct QueryTelemetry {
  std::map<std::string, std::int64_t> counts;
  std::map<std::string, double> seconds;

  [[nodiscard]] std::int64_t count(const std::string& name) const {
    const auto it = counts.find(name);
    return it == counts.end() ? 0 : it->second;
  }
  [[nodiscard]] double secs(const std::string& name) const {
    const auto it = seconds.find(name);
    return it == seconds.end() ? 0.0 : it->second;
  }
  [[nodiscard]] bool empty() const { return counts.empty() && seconds.empty(); }
};

/// RAII installer: routes QueryScope::count/observe_seconds on *this thread*
/// into `sink` until destruction. Nesting restores the outer scope on exit.
/// Not copyable/movable — the registration is positional.
class QueryScope {
 public:
  explicit QueryScope(QueryTelemetry& sink);
  ~QueryScope();
  QueryScope(const QueryScope&) = delete;
  QueryScope& operator=(const QueryScope&) = delete;

  /// True when the calling thread has an active scope.
  [[nodiscard]] static bool active();

  /// Attribute into the calling thread's active scope; no-ops without one.
  /// `name` keys the telemetry map directly (e.g. "factor_cache.hits").
  static void count(const char* name, std::int64_t delta = 1);
  static void observe_seconds(const char* name, double seconds);

 private:
  QueryTelemetry* previous_;
};

}  // namespace ms::obs
