#include "obs/obs_cli.hpp"

#include <cstdio>

#include "obs/event_log.hpp"
#include "obs/report.hpp"
#include "obs/trace.hpp"
#include "util/log.hpp"

namespace ms::obs {

void add_cli_flags(util::CliParser& cli) {
  cli.add_string("trace-json", "", "write a Chrome trace-event JSON of all spans (empty: off)");
  cli.add_string("report-json", "", "write the metric-registry RunReport JSON (empty: off)");
  cli.add_string("events-jsonl", "",
                 "stream structured lifecycle events (scenario enqueued/started/completed/"
                 "failed...) as JSON lines to this file (empty: off)");
}

void apply_cli_flags(const util::CliParser& cli) {
  (void)init_tracing_from_env();
  util::apply_env_log_level();
  if (!cli.get_string("trace-json").empty()) set_tracing_enabled(true);
  const std::string& events_path = cli.get_string("events-jsonl");
  if (!events_path.empty()) EventLog::open(events_path);
}

void write_cli_outputs(const util::CliParser& cli) {
  const std::string& trace_path = cli.get_string("trace-json");
  if (!trace_path.empty()) {
    write_chrome_trace(trace_path);
    std::printf("wrote trace: %s (%zu spans)\n", trace_path.c_str(), span_count());
  }
  const std::string& report_path = cli.get_string("report-json");
  if (!report_path.empty()) {
    RunReport::capture().write_json(report_path);
    std::printf("wrote report: %s\n", report_path.c_str());
  }
  const std::string& events_path = cli.get_string("events-jsonl");
  if (!events_path.empty()) {
    std::printf("wrote events: %s (%lld lines)\n", events_path.c_str(),
                static_cast<long long>(EventLog::lines_written()));
    EventLog::close();
  }
}

}  // namespace ms::obs
