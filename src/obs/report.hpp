#pragma once
// RunReport: a name-sorted JSON export of a MetricRegistry — the unified,
// machine-readable view of what the per-path *Stats structs report. Also the
// bench substrate: capture a report before and after a case and read metric
// deltas instead of hand-rolled WallTimer bookkeeping.
//
//   ms::obs::RunReport before = ms::obs::RunReport::capture();
//   ... run the case ...
//   ms::obs::RunReport after = ms::obs::RunReport::capture();
//   double solve = after.delta(before, "rom.global.solve_seconds");

#include <string>
#include <vector>

#include "obs/metrics.hpp"

namespace ms::obs {

class RunReport {
 public:
  /// Snapshot `registry` (default: the process-wide one) now.
  static RunReport capture();
  static RunReport capture(const MetricRegistry& registry);

  /// Scalar value of a metric: counter -> count, gauge -> value,
  /// histogram -> sum. 0 when the metric does not exist.
  [[nodiscard]] double value(const std::string& name) const;

  /// Histogram call count (counter value for counters, 0 for gauges/absent).
  [[nodiscard]] std::int64_t count(const std::string& name) const;

  /// value(name) - earlier.value(name): the accumulation between two
  /// captures. Gauges are last-value, so their delta is just this capture's
  /// reading when nonzero — benches should read gauges directly.
  [[nodiscard]] double delta(const RunReport& earlier, const std::string& name) const;
  [[nodiscard]] std::int64_t count_delta(const RunReport& earlier,
                                         const std::string& name) const;

  [[nodiscard]] const std::vector<MetricSample>& samples() const { return samples_; }

  /// {"report": "morestress", "metrics": {name: {...}}} — counters render
  /// {"count": n}, gauges {"value": v}, histograms {"count", "sum", "min",
  /// "max", "mean"}. Keys are name-sorted (deterministic across runs).
  [[nodiscard]] std::string render_json() const;

  /// Write render_json() to `path`; throws std::runtime_error on failure.
  void write_json(const std::string& path) const;

 private:
  const MetricSample* find(const std::string& name) const;
  std::vector<MetricSample> samples_;  // name-sorted (snapshot order)
};

}  // namespace ms::obs
