#pragma once
// Hierarchical span tracing: RAII scopes record (name, begin, end, depth)
// events into per-thread buffers, exported as Chrome trace-event JSON
// (chrome://tracing / Perfetto). The substrate every solve path reports
// into — see DESIGN.md "Observability".
//
//   void factor() {
//     MS_TRACE_SCOPE("cholesky/numeric");
//     ...
//   }
//
// Every span carries a process-unique id and its parent's id. Parenting is
// implicit within a thread (the innermost open span) and *explicit* across
// threads: thread-local state never leaks across a pool handoff, so the
// producer captures current_span_id() and the consumer opens its root span
// with that id as `remote_parent` (see DESIGN.md "Query-scoped telemetry").
// The Chrome exporter turns each remote edge into a flow-event arrow, so one
// trace shows a whole sweep batch fanning out across worker threads.
//
// Cost model: when span capture is disabled (the default) a scope is one
// relaxed atomic load and a branch — cheap enough to leave in hot-ish paths
// (a per-factorization or per-panel call, not a per-element loop). When
// enabled, a scope appends one small event to a thread-local vector: no
// locks, no allocation beyond amortized vector growth, safe inside OpenMP
// regions (every OpenMP thread owns its own buffer). Span names must be
// string literals (or otherwise outlive the trace) — the buffer stores the
// pointer. Spans are additionally mirrored into the bounded per-thread
// flight recorder when that is enabled (obs/flight_recorder.hpp), even with
// full tracing off.
//
// Collection (write_chrome_trace / collect_events / clear_trace) must run
// from quiescent code — outside parallel regions, which OpenMP's fork-join
// model guarantees between regions. Export briefly disables tracing so the
// snapshot is consistent.

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace ms::obs {

/// Process-unique span identity (0 = none). Ids are assigned at span begin
/// from one atomic counter, so they are unique across threads; *values* are
/// schedule-dependent, but parent/child *edges* are deterministic.
using SpanId = std::uint64_t;

/// One completed span. Times are microseconds since the process trace epoch.
struct SpanEvent {
  const char* name = nullptr;
  double begin_us = 0.0;
  double end_us = 0.0;
  std::int32_t depth = 0;  ///< nesting depth on its thread (0 = outermost)
  std::int32_t tid = 0;    ///< small sequential per-thread id
  SpanId id = 0;           ///< this span's process-unique id
  SpanId parent = 0;       ///< parent span id (0 = root)
  bool remote_parent = false;  ///< parent lives on another thread (flow edge)
};

/// Enable / disable span recording process-wide. Disabled scopes cost one
/// atomic load; events recorded before disabling are kept.
void set_tracing_enabled(bool enabled);
[[nodiscard]] bool tracing_enabled();

/// Honor the MS_TRACE environment toggle: unset/"0"/"false"/"off" leaves
/// tracing disabled, "1"/"true"/"on" enables it, and any other value enables
/// it AND registers an atexit writer that dumps the Chrome trace to that
/// path. Returns the output path ("" if none). Idempotent.
std::string init_tracing_from_env();

/// Microseconds since the process trace epoch — the time base of every
/// SpanEvent, flight-recorder entry, and event-log line, so the artifacts
/// correlate.
[[nodiscard]] double trace_now_us();

/// Innermost open span on the calling thread (0 when none, or when span
/// capture is off). Capture this *before* handing work to another thread and
/// pass it as ScopedSpan's remote_parent — TLS does not cross pool threads.
[[nodiscard]] SpanId current_span_id();

/// Snapshot all completed spans of every thread, in per-thread record order.
/// Quiescent-only (see file comment).
[[nodiscard]] std::vector<SpanEvent> collect_events();

/// Completed spans recorded so far (all threads).
[[nodiscard]] std::size_t span_count();

/// Live (begun, not yet ended) spans across all threads — 0 when every scope
/// has unwound; tests use this to assert begin/end balance.
[[nodiscard]] std::size_t open_span_count();

/// Drop all recorded events (buffers stay registered). Quiescent-only.
void clear_trace();

/// Write every completed span as Chrome trace-event JSON ("ph":"X" complete
/// events, ts/dur in microseconds; remote-parent edges additionally emit
/// "ph":"s"/"f" flow arrows) loadable in chrome://tracing or Perfetto.
/// Throws std::runtime_error when the file cannot be written. Quiescent-only.
void write_chrome_trace(const std::string& path);

/// The same JSON as a string (tests parse it back).
[[nodiscard]] std::string render_chrome_trace();

namespace detail {

/// Bitmask of span consumers: full tracing and/or the flight recorder. One
/// relaxed load of this mask is the whole cost of a disabled scope.
inline constexpr int kCaptureTrace = 1;
inline constexpr int kCaptureFlight = 2;
extern std::atomic<int> g_capture_mask;
void set_capture_bit(int bit, bool on);

inline bool span_capture_enabled() {
  return g_capture_mask.load(std::memory_order_relaxed) != 0;
}

/// Begin a span now; returns the begin timestamp. Registers the calling
/// thread's buffer on first use. `remote_parent` (when nonzero) overrides
/// the implicit same-thread parent and marks the edge as a flow arrow.
double span_begin(SpanId remote_parent);

/// Complete the span begun at `begin_us` (LIFO per thread).
void span_end(const char* name, double begin_us);

}  // namespace detail

/// RAII span. Prefer the MS_TRACE_SCOPE macro; instantiate directly (with
/// end(), or with an explicit remote parent captured on the producing
/// thread) when a phase boundary does not line up with a C++ scope or when
/// the parent lives on another thread.
class ScopedSpan {
 public:
  explicit ScopedSpan(const char* name, SpanId remote_parent = 0)
      : name_(name), active_(detail::span_capture_enabled()) {
    if (active_) begin_us_ = detail::span_begin(remote_parent);
  }
  ~ScopedSpan() { end(); }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  /// Complete the span before destruction (idempotent).
  void end() {
    if (active_) detail::span_end(name_, begin_us_);
    active_ = false;
  }

 private:
  const char* name_;
  double begin_us_ = 0.0;
  bool active_;
};

}  // namespace ms::obs

#define MS_OBS_CONCAT_IMPL(a, b) a##b
#define MS_OBS_CONCAT(a, b) MS_OBS_CONCAT_IMPL(a, b)
/// Trace the enclosing scope as a span named `name` (a string literal).
#define MS_TRACE_SCOPE(name) ::ms::obs::ScopedSpan MS_OBS_CONCAT(ms_trace_scope_, __LINE__)(name)
