#pragma once
// Hierarchical span tracing: RAII scopes record (name, begin, end, depth)
// events into per-thread buffers, exported as Chrome trace-event JSON
// (chrome://tracing / Perfetto). The substrate every solve path reports
// into — see DESIGN.md "Observability".
//
//   void factor() {
//     MS_TRACE_SCOPE("cholesky/numeric");
//     ...
//   }
//
// Cost model: when tracing is disabled (the default) a scope is one relaxed
// atomic load and a branch — cheap enough to leave in hot-ish paths (a
// per-factorization or per-panel call, not a per-element loop). When enabled,
// a scope appends one 32-byte event to a thread-local vector: no locks, no
// allocation beyond amortized vector growth, safe inside OpenMP regions
// (every OpenMP thread owns its own buffer). Span names must be string
// literals (or otherwise outlive the trace) — the buffer stores the pointer.
//
// Collection (write_chrome_trace / collect_events / clear_trace) must run
// from quiescent code — outside parallel regions, which OpenMP's fork-join
// model guarantees between regions. Export briefly disables tracing so the
// snapshot is consistent.

#include <cstdint>
#include <string>
#include <vector>

namespace ms::obs {

/// One completed span. Times are microseconds since the process trace epoch.
struct SpanEvent {
  const char* name = nullptr;
  double begin_us = 0.0;
  double end_us = 0.0;
  std::int32_t depth = 0;  ///< nesting depth on its thread (0 = outermost)
  std::int32_t tid = 0;    ///< small sequential per-thread id
};

/// Enable / disable span recording process-wide. Disabled scopes cost one
/// atomic load; events recorded before disabling are kept.
void set_tracing_enabled(bool enabled);
[[nodiscard]] bool tracing_enabled();

/// Honor the MS_TRACE environment toggle: unset/"0"/"false"/"off" leaves
/// tracing disabled, "1"/"true"/"on" enables it, and any other value enables
/// it AND registers an atexit writer that dumps the Chrome trace to that
/// path. Returns the output path ("" if none). Idempotent.
std::string init_tracing_from_env();

/// Snapshot all completed spans of every thread, in per-thread record order.
/// Quiescent-only (see file comment).
[[nodiscard]] std::vector<SpanEvent> collect_events();

/// Completed spans recorded so far (all threads).
[[nodiscard]] std::size_t span_count();

/// Live (begun, not yet ended) spans across all threads — 0 when every scope
/// has unwound; tests use this to assert begin/end balance.
[[nodiscard]] std::size_t open_span_count();

/// Drop all recorded events (buffers stay registered). Quiescent-only.
void clear_trace();

/// Write every completed span as Chrome trace-event JSON ("ph":"X" complete
/// events, ts/dur in microseconds) loadable in chrome://tracing or Perfetto.
/// Throws std::runtime_error when the file cannot be written. Quiescent-only.
void write_chrome_trace(const std::string& path);

/// The same JSON as a string (tests parse it back).
[[nodiscard]] std::string render_chrome_trace();

namespace detail {

/// Begin a span now; returns the begin timestamp. Registers the calling
/// thread's buffer on first use.
double span_begin();

/// Complete the span begun at `begin_us` (LIFO per thread).
void span_end(const char* name, double begin_us);

}  // namespace detail

/// RAII span. Prefer the MS_TRACE_SCOPE macro; instantiate directly (with
/// end()) only when a phase boundary does not line up with a C++ scope.
class ScopedSpan {
 public:
  explicit ScopedSpan(const char* name) : name_(name), active_(tracing_enabled()) {
    if (active_) begin_us_ = detail::span_begin();
  }
  ~ScopedSpan() { end(); }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  /// Complete the span before destruction (idempotent).
  void end() {
    if (active_) detail::span_end(name_, begin_us_);
    active_ = false;
  }

 private:
  const char* name_;
  double begin_us_ = 0.0;
  bool active_;
};

}  // namespace ms::obs

#define MS_OBS_CONCAT_IMPL(a, b) a##b
#define MS_OBS_CONCAT(a, b) MS_OBS_CONCAT_IMPL(a, b)
/// Trace the enclosing scope as a span named `name` (a string literal).
#define MS_TRACE_SCOPE(name) ::ms::obs::ScopedSpan MS_OBS_CONCAT(ms_trace_scope_, __LINE__)(name)
