#include "obs/trace.hpp"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <mutex>
#include <stdexcept>

#include "util/json.hpp"

namespace ms::obs {
namespace {

using clock_t = std::chrono::steady_clock;

std::atomic<bool> g_enabled{false};

/// Per-thread event store. Owned (appended to) exclusively by its thread;
/// readers must only run while the owning threads are quiescent.
struct ThreadBuffer {
  std::vector<SpanEvent> events;
  std::int32_t tid = 0;
  std::int32_t depth = 0;  ///< currently open spans on this thread
};

/// Registry of every thread buffer ever created. Buffers outlive their
/// threads (shared_ptr keeps them alive for late collection) and are only
/// registered once per thread, so the mutex is cold.
struct TraceRegistry {
  std::mutex mutex;
  std::vector<std::shared_ptr<ThreadBuffer>> buffers;
  std::int32_t next_tid = 0;
};

TraceRegistry& registry() {
  // Intentionally leaked: the MS_TRACE atexit writer (and spans in other
  // static destructors) must outlive any ordinary static — a function-local
  // static would be destroyed before atexit handlers registered earlier.
  static TraceRegistry* r = new TraceRegistry();
  return *r;
}

clock_t::time_point trace_epoch() {
  static const clock_t::time_point epoch = clock_t::now();
  return epoch;
}

double now_us() {
  return std::chrono::duration<double, std::micro>(clock_t::now() - trace_epoch()).count();
}

ThreadBuffer& local_buffer() {
  thread_local std::shared_ptr<ThreadBuffer> buffer = [] {
    auto b = std::make_shared<ThreadBuffer>();
    TraceRegistry& r = registry();
    std::lock_guard<std::mutex> lock(r.mutex);
    b->tid = r.next_tid++;
    r.buffers.push_back(b);
    return b;
  }();
  return *buffer;
}

std::string g_env_trace_path;  // set once by init_tracing_from_env

void write_env_trace_at_exit() {
  if (!g_env_trace_path.empty()) {
    try {
      write_chrome_trace(g_env_trace_path);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "[obs] MS_TRACE export failed: %s\n", e.what());
    }
  }
}

}  // namespace

void set_tracing_enabled(bool enabled) { g_enabled.store(enabled, std::memory_order_relaxed); }

bool tracing_enabled() { return g_enabled.load(std::memory_order_relaxed); }

std::string init_tracing_from_env() {
  static std::once_flag once;
  std::call_once(once, [] {
    const char* value = std::getenv("MS_TRACE");
    if (value == nullptr || *value == '\0') return;
    if (std::strcmp(value, "0") == 0 || std::strcmp(value, "false") == 0 ||
        std::strcmp(value, "off") == 0) {
      return;
    }
    set_tracing_enabled(true);
    if (std::strcmp(value, "1") != 0 && std::strcmp(value, "true") != 0 &&
        std::strcmp(value, "on") != 0) {
      g_env_trace_path = value;
      std::atexit(write_env_trace_at_exit);
    }
  });
  return g_env_trace_path;
}

namespace detail {

double span_begin() {
  ThreadBuffer& b = local_buffer();
  ++b.depth;
  return now_us();
}

void span_end(const char* name, double begin_us) {
  ThreadBuffer& b = local_buffer();
  --b.depth;
  SpanEvent e;
  e.name = name;
  e.begin_us = begin_us;
  e.end_us = now_us();
  e.depth = b.depth;
  e.tid = b.tid;
  b.events.push_back(e);
}

}  // namespace detail

std::vector<SpanEvent> collect_events() {
  TraceRegistry& r = registry();
  std::lock_guard<std::mutex> lock(r.mutex);
  std::vector<SpanEvent> all;
  for (const auto& b : r.buffers) {
    all.insert(all.end(), b->events.begin(), b->events.end());
  }
  return all;
}

std::size_t span_count() {
  TraceRegistry& r = registry();
  std::lock_guard<std::mutex> lock(r.mutex);
  std::size_t count = 0;
  for (const auto& b : r.buffers) count += b->events.size();
  return count;
}

std::size_t open_span_count() {
  TraceRegistry& r = registry();
  std::lock_guard<std::mutex> lock(r.mutex);
  std::size_t open = 0;
  for (const auto& b : r.buffers) open += static_cast<std::size_t>(b->depth);
  return open;
}

void clear_trace() {
  TraceRegistry& r = registry();
  std::lock_guard<std::mutex> lock(r.mutex);
  for (const auto& b : r.buffers) b->events.clear();
}

std::string render_chrome_trace() {
  // Pause recording so the snapshot is consistent even if a stray thread is
  // still inside an instrumented call.
  const bool was_enabled = tracing_enabled();
  set_tracing_enabled(false);
  const std::vector<SpanEvent> events = collect_events();
  set_tracing_enabled(was_enabled);

  std::string out = "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [\n";
  char buf[64];
  for (std::size_t i = 0; i < events.size(); ++i) {
    const SpanEvent& e = events[i];
    out += "  {\"name\": \"" + util::json_escape(e.name) + "\", \"cat\": \"ms\", \"ph\": \"X\"";
    std::snprintf(buf, sizeof(buf), ", \"ts\": %.3f", e.begin_us);
    out += buf;
    std::snprintf(buf, sizeof(buf), ", \"dur\": %.3f", e.end_us - e.begin_us);
    out += buf;
    std::snprintf(buf, sizeof(buf), ", \"pid\": 1, \"tid\": %d", e.tid);
    out += buf;
    std::snprintf(buf, sizeof(buf), ", \"args\": {\"depth\": %d}}", e.depth);
    out += buf;
    out += (i + 1 < events.size()) ? ",\n" : "\n";
  }
  out += "]}\n";
  return out;
}

void write_chrome_trace(const std::string& path) {
  std::ofstream file(path);
  if (!file) throw std::runtime_error("write_chrome_trace: cannot open " + path);
  file << render_chrome_trace();
  if (!file.good()) throw std::runtime_error("write_chrome_trace: write failed for " + path);
}

}  // namespace ms::obs
