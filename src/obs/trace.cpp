#include "obs/trace.hpp"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <unordered_map>

#include "obs/flight_recorder.hpp"
#include "util/json.hpp"

namespace ms::obs {
namespace {

using clock_t = std::chrono::steady_clock;

std::atomic<SpanId> g_next_span_id{1};

/// One open (begun, not yet ended) span on a thread.
struct OpenSpan {
  SpanId id = 0;
  SpanId parent = 0;
  bool remote_parent = false;
  bool traced = false;  ///< tracing was on at begin — record into the buffer
};

/// Per-thread event store. Owned (appended to) exclusively by its thread;
/// readers must only run while the owning threads are quiescent.
struct ThreadBuffer {
  std::vector<SpanEvent> events;
  std::vector<OpenSpan> open;  ///< innermost last
  std::int32_t tid = 0;
};

/// Registry of every thread buffer ever created. Buffers outlive their
/// threads (shared_ptr keeps them alive for late collection) and are only
/// registered once per thread, so the mutex is cold.
struct TraceRegistry {
  std::mutex mutex;
  std::vector<std::shared_ptr<ThreadBuffer>> buffers;
  std::int32_t next_tid = 0;
};

TraceRegistry& registry() {
  // Intentionally leaked: the MS_TRACE atexit writer (and spans in other
  // static destructors) must outlive any ordinary static — a function-local
  // static would be destroyed before atexit handlers registered earlier.
  static TraceRegistry* r = new TraceRegistry();
  return *r;
}

clock_t::time_point trace_epoch() {
  static const clock_t::time_point epoch = clock_t::now();
  return epoch;
}

double now_us() {
  return std::chrono::duration<double, std::micro>(clock_t::now() - trace_epoch()).count();
}

ThreadBuffer& local_buffer() {
  thread_local std::shared_ptr<ThreadBuffer> buffer = [] {
    auto b = std::make_shared<ThreadBuffer>();
    TraceRegistry& r = registry();
    std::lock_guard<std::mutex> lock(r.mutex);
    b->tid = r.next_tid++;
    r.buffers.push_back(b);
    return b;
  }();
  return *buffer;
}

std::string g_env_trace_path;  // set once by init_tracing_from_env

void write_env_trace_at_exit() {
  if (!g_env_trace_path.empty()) {
    try {
      write_chrome_trace(g_env_trace_path);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "[obs] MS_TRACE export failed: %s\n", e.what());
    }
  }
}

}  // namespace

namespace detail {

std::atomic<int> g_capture_mask{0};

void set_capture_bit(int bit, bool on) {
  int mask = g_capture_mask.load(std::memory_order_relaxed);
  while (!g_capture_mask.compare_exchange_weak(
      mask, on ? (mask | bit) : (mask & ~bit), std::memory_order_relaxed)) {
  }
}

}  // namespace detail

void set_tracing_enabled(bool enabled) {
  detail::set_capture_bit(detail::kCaptureTrace, enabled);
}

bool tracing_enabled() {
  return (detail::g_capture_mask.load(std::memory_order_relaxed) & detail::kCaptureTrace) != 0;
}

double trace_now_us() { return now_us(); }

SpanId current_span_id() {
  if (!detail::span_capture_enabled()) return 0;
  const ThreadBuffer& b = local_buffer();
  return b.open.empty() ? 0 : b.open.back().id;
}

std::string init_tracing_from_env() {
  static std::once_flag once;
  std::call_once(once, [] {
    const char* value = std::getenv("MS_TRACE");
    if (value == nullptr || *value == '\0') return;
    if (std::strcmp(value, "0") == 0 || std::strcmp(value, "false") == 0 ||
        std::strcmp(value, "off") == 0) {
      return;
    }
    set_tracing_enabled(true);
    if (std::strcmp(value, "1") != 0 && std::strcmp(value, "true") != 0 &&
        std::strcmp(value, "on") != 0) {
      g_env_trace_path = value;
      std::atexit(write_env_trace_at_exit);
    }
  });
  return g_env_trace_path;
}

namespace detail {

double span_begin(SpanId remote_parent) {
  ThreadBuffer& b = local_buffer();
  OpenSpan span;
  span.id = g_next_span_id.fetch_add(1, std::memory_order_relaxed);
  if (remote_parent != 0) {
    span.parent = remote_parent;
    span.remote_parent = true;
  } else if (!b.open.empty()) {
    span.parent = b.open.back().id;
  }
  span.traced = tracing_enabled();
  b.open.push_back(span);
  return now_us();
}

void span_end(const char* name, double begin_us) {
  ThreadBuffer& b = local_buffer();
  // Balanced by construction (ScopedSpan is LIFO per thread), but guard the
  // underflow anyway so a misuse cannot corrupt the buffer.
  if (b.open.empty()) return;
  const OpenSpan open = b.open.back();
  b.open.pop_back();
  const double end_us = now_us();
  if (open.traced) {
    SpanEvent e;
    e.name = name;
    e.begin_us = begin_us;
    e.end_us = end_us;
    e.depth = static_cast<std::int32_t>(b.open.size());
    e.tid = b.tid;
    e.id = open.id;
    e.parent = open.parent;
    e.remote_parent = open.remote_parent;
    b.events.push_back(e);
  }
  if ((g_capture_mask.load(std::memory_order_relaxed) & kCaptureFlight) != 0) {
    FlightRecorder::note_span(name, begin_us, end_us);
  }
}

}  // namespace detail

std::vector<SpanEvent> collect_events() {
  TraceRegistry& r = registry();
  std::lock_guard<std::mutex> lock(r.mutex);
  std::vector<SpanEvent> all;
  for (const auto& b : r.buffers) {
    all.insert(all.end(), b->events.begin(), b->events.end());
  }
  return all;
}

std::size_t span_count() {
  TraceRegistry& r = registry();
  std::lock_guard<std::mutex> lock(r.mutex);
  std::size_t count = 0;
  for (const auto& b : r.buffers) count += b->events.size();
  return count;
}

std::size_t open_span_count() {
  TraceRegistry& r = registry();
  std::lock_guard<std::mutex> lock(r.mutex);
  std::size_t open = 0;
  for (const auto& b : r.buffers) open += b->open.size();
  return open;
}

void clear_trace() {
  TraceRegistry& r = registry();
  std::lock_guard<std::mutex> lock(r.mutex);
  for (const auto& b : r.buffers) b->events.clear();
}

std::string render_chrome_trace() {
  // Pause recording so the snapshot is consistent even if a stray thread is
  // still inside an instrumented call.
  const bool was_enabled = tracing_enabled();
  set_tracing_enabled(false);
  const std::vector<SpanEvent> events = collect_events();
  set_tracing_enabled(was_enabled);

  // Remote-parent edges render as flow arrows; the "s" end binds to the
  // parent slice, so index the snapshot by span id first.
  std::unordered_map<SpanId, const SpanEvent*> by_id;
  by_id.reserve(events.size());
  for (const SpanEvent& e : events) by_id.emplace(e.id, &e);

  std::string out = "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [\n";
  char buf[96];
  bool first = true;
  const auto append_event = [&out, &first](const std::string& line) {
    if (!first) out += ",\n";
    first = false;
    out += line;
  };
  for (const SpanEvent& e : events) {
    std::string line = "  {\"name\": \"" + util::json_escape(e.name) +
                       "\", \"cat\": \"ms\", \"ph\": \"X\"";
    std::snprintf(buf, sizeof(buf), ", \"ts\": %.3f", e.begin_us);
    line += buf;
    std::snprintf(buf, sizeof(buf), ", \"dur\": %.3f", e.end_us - e.begin_us);
    line += buf;
    std::snprintf(buf, sizeof(buf), ", \"pid\": 1, \"tid\": %d", e.tid);
    line += buf;
    std::snprintf(buf, sizeof(buf),
                  ", \"args\": {\"depth\": %d, \"span_id\": %llu, \"parent_id\": %llu}}",
                  e.depth, static_cast<unsigned long long>(e.id),
                  static_cast<unsigned long long>(e.parent));
    line += buf;
    append_event(line);
    if (!e.remote_parent || e.parent == 0) continue;
    const auto parent_it = by_id.find(e.parent);
    if (parent_it == by_id.end()) continue;  // parent still open or cleared
    const SpanEvent& p = *parent_it->second;
    // One arrow per remote edge, flow-id = the child span id (unique). The
    // "s" end sits inside the parent slice, the "f" end at the child begin.
    std::snprintf(buf, sizeof(buf),
                  ", \"id\": %llu, \"ts\": %.3f, \"pid\": 1, \"tid\": %d}",
                  static_cast<unsigned long long>(e.id), p.begin_us, p.tid);
    append_event(std::string("  {\"name\": \"") + util::json_escape(e.name) +
                 "\", \"cat\": \"ms.flow\", \"ph\": \"s\"" + buf);
    std::snprintf(buf, sizeof(buf),
                  ", \"bp\": \"e\", \"id\": %llu, \"ts\": %.3f, \"pid\": 1, \"tid\": %d}",
                  static_cast<unsigned long long>(e.id), e.begin_us, e.tid);
    append_event(std::string("  {\"name\": \"") + util::json_escape(e.name) +
                 "\", \"cat\": \"ms.flow\", \"ph\": \"f\"" + buf);
  }
  out += first ? "]}\n" : "\n]}\n";
  return out;
}

void write_chrome_trace(const std::string& path) {
  std::ofstream file(path);
  if (!file) throw std::runtime_error("write_chrome_trace: cannot open " + path);
  file << render_chrome_trace();
  if (!file.good()) throw std::runtime_error("write_chrome_trace: write failed for " + path);
}

}  // namespace ms::obs
