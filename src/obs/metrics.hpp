#pragma once
// Process-wide registry of named metrics: monotonically accumulating
// counters (int64), last-value gauges (double), and duration histograms
// (count / sum / min / max plus log2-spaced bins). Every solve path
// publishes its *Stats fields here — the registry is the one place the
// RunReport exporter, the benches, and the sweep engine's per-query
// accounting read from.
//
//   auto& reg = ms::obs::MetricRegistry::global();
//   reg.counter("rom.global.solves").add(1);
//   reg.histogram("rom.global.solve_seconds").record(t);
//
// Thread safety: metric *lookup* takes a mutex (amortized away by caching
// the returned reference — handles are stable for the registry's lifetime);
// updates on the returned handles are lock-free atomics, safe inside OpenMP
// regions. Iteration (snapshot) is sorted by name, so two identical runs
// produce byte-identical reports no matter the thread interleaving that
// created the metrics.

#include <atomic>
#include <cstdint>
#include <deque>
#include <limits>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace ms::obs {

/// Monotonic (well, add-only — negative deltas are the caller's business)
/// integer accumulator.
class Counter {
 public:
  void add(std::int64_t delta) { value_.fetch_add(delta, std::memory_order_relaxed); }
  [[nodiscard]] std::int64_t value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> value_{0};
};

/// Last-written value.
class Gauge {
 public:
  void set(double value) { value_.store(value, std::memory_order_relaxed); }
  [[nodiscard]] double value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Duration (or any nonnegative double) distribution: count, sum, min, max,
/// and log2-spaced bins from 1 us to ~1000 s. Lock-free recording.
class Histogram {
 public:
  static constexpr int kNumBins = 32;

  void record(double value);

  [[nodiscard]] std::int64_t count() const { return count_.load(std::memory_order_relaxed); }
  [[nodiscard]] double sum() const;
  [[nodiscard]] double min() const;  ///< +inf when empty
  [[nodiscard]] double max() const;  ///< -inf when empty
  [[nodiscard]] double mean() const; ///< 0 when empty
  [[nodiscard]] std::int64_t bin_count(int bin) const {
    return bins_[bin].load(std::memory_order_relaxed);
  }
  /// Bin index of a value: bin b holds values in [2^(b-20), 2^(b-19)) seconds
  /// (b = 0 additionally catches everything below 1 us, the top bin
  /// everything above).
  static int bin_of(double value);
  /// Lower edge of bin b in seconds (0 for bin 0, whose range is open below).
  static double bin_lower(int bin);
  /// Upper edge of bin b in seconds.
  static double bin_upper(int bin);
  /// Quantile estimate (q in [0, 1]) interpolated linearly within the log2
  /// bin holding the q-th recorded value, clamped to the exact [min, max].
  /// Approximate by construction (bin resolution is 2x), and taken from a
  /// racy snapshot of the bins under concurrent recording — good for
  /// reporting, not for assertions tighter than a bin. 0 when empty.
  [[nodiscard]] double percentile(double q) const;
  void reset();

 private:
  std::atomic<std::int64_t> count_{0};
  std::atomic<double> sum_{0.0};
  // +-inf sentinels double as the empty-histogram answers, so record() needs
  // no first-writer seeding (which would race with concurrent recorders).
  std::atomic<double> min_{std::numeric_limits<double>::infinity()};
  std::atomic<double> max_{-std::numeric_limits<double>::infinity()};
  std::atomic<std::int64_t> bins_[kNumBins]{};
};

/// One metric's exported state, produced by MetricRegistry::snapshot().
struct MetricSample {
  enum class Kind { kCounter, kGauge, kHistogram };
  std::string name;
  Kind kind = Kind::kCounter;
  std::int64_t count = 0;  ///< counter value / histogram count
  double value = 0.0;      ///< gauge value / histogram sum
  double min = 0.0, max = 0.0;             ///< histogram only
  double p50 = 0.0, p95 = 0.0, p99 = 0.0;  ///< histogram only (interpolated)
};

class MetricRegistry {
 public:
  /// The process-wide registry every instrumented path publishes into.
  static MetricRegistry& global();

  /// Find-or-create. Returned references are stable for the registry's
  /// lifetime; creating the same name with a different kind throws
  /// std::invalid_argument.
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name);

  /// All metrics, sorted by name (deterministic across runs and thread
  /// interleavings).
  [[nodiscard]] std::vector<MetricSample> snapshot() const;

  /// Zero every metric (names stay registered). For per-case bench deltas
  /// prefer Snapshot arithmetic over resetting shared state.
  void reset();

  /// Sum of a histogram (0 if absent) / value of a counter (0 if absent) —
  /// lookup without creating, for tests and report consumers.
  [[nodiscard]] double histogram_sum(const std::string& name) const;
  [[nodiscard]] std::int64_t counter_value(const std::string& name) const;
  [[nodiscard]] double gauge_value(const std::string& name) const;

  /// The histogram registered under `name`, or nullptr (absent / not a
  /// histogram). For percentile readers that must not create the metric.
  [[nodiscard]] const Histogram* find_histogram(const std::string& name) const;

 private:
  struct Entry {
    MetricSample::Kind kind = MetricSample::Kind::kCounter;
    Counter counter;
    Gauge gauge;
    Histogram histogram;
  };
  Entry& entry(const std::string& name, MetricSample::Kind kind);
  const Entry* find(const std::string& name) const;

  mutable std::mutex mutex_;
  // std::map keeps name-sorted order for snapshots; node-based storage keeps
  // handle references stable across inserts.
  std::map<std::string, Entry> entries_;
};

/// RAII duration recorder: records the scope's wall time into
/// `registry.histogram(name)` on destruction.
class ScopedDuration {
 public:
  explicit ScopedDuration(Histogram& histogram);
  ~ScopedDuration();
  ScopedDuration(const ScopedDuration&) = delete;
  ScopedDuration& operator=(const ScopedDuration&) = delete;

 private:
  Histogram& histogram_;
  std::int64_t begin_ns_;
};

}  // namespace ms::obs
