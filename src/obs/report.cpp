#include "obs/report.hpp"

#include <algorithm>
#include <fstream>
#include <stdexcept>

#include "util/json.hpp"

namespace ms::obs {

RunReport RunReport::capture() { return capture(MetricRegistry::global()); }

RunReport RunReport::capture(const MetricRegistry& registry) {
  RunReport report;
  report.samples_ = registry.snapshot();
  return report;
}

const MetricSample* RunReport::find(const std::string& name) const {
  // samples_ is name-sorted (snapshot order), so binary search applies.
  const auto it = std::lower_bound(
      samples_.begin(), samples_.end(), name,
      [](const MetricSample& s, const std::string& key) { return s.name < key; });
  return it != samples_.end() && it->name == name ? &*it : nullptr;
}

double RunReport::value(const std::string& name) const {
  const MetricSample* s = find(name);
  if (s == nullptr) return 0.0;
  switch (s->kind) {
    case MetricSample::Kind::kCounter: return static_cast<double>(s->count);
    case MetricSample::Kind::kGauge: return s->value;
    case MetricSample::Kind::kHistogram: return s->value;
  }
  return 0.0;
}

std::int64_t RunReport::count(const std::string& name) const {
  const MetricSample* s = find(name);
  return s != nullptr ? s->count : 0;
}

double RunReport::delta(const RunReport& earlier, const std::string& name) const {
  return value(name) - earlier.value(name);
}

std::int64_t RunReport::count_delta(const RunReport& earlier, const std::string& name) const {
  return count(name) - earlier.count(name);
}

std::string RunReport::render_json() const {
  std::string out = "{\n  \"report\": \"morestress\",\n  \"metrics\": {\n";
  // Worst case is the histogram min/max/mean line: three %.12g numbers (up
  // to ~19 chars each) plus 28 chars of punctuation — 64 was truncating it.
  char buf[128];
  for (std::size_t i = 0; i < samples_.size(); ++i) {
    const MetricSample& s = samples_[i];
    out += "    \"" + util::json_escape(s.name) + "\": {";
    switch (s.kind) {
      case MetricSample::Kind::kCounter:
        out += "\"kind\": \"counter\", \"count\": " + std::to_string(s.count);
        break;
      case MetricSample::Kind::kGauge:
        std::snprintf(buf, sizeof(buf), "\"kind\": \"gauge\", \"value\": %.12g", s.value);
        out += buf;
        break;
      case MetricSample::Kind::kHistogram:
        out += "\"kind\": \"histogram\", \"count\": " + std::to_string(s.count);
        std::snprintf(buf, sizeof(buf), ", \"sum\": %.12g", s.value);
        out += buf;
        if (s.count > 0) {
          std::snprintf(buf, sizeof(buf), ", \"min\": %.12g, \"max\": %.12g, \"mean\": %.12g",
                        s.min, s.max, s.value / static_cast<double>(s.count));
          out += buf;
          std::snprintf(buf, sizeof(buf), ", \"p50\": %.12g, \"p95\": %.12g, \"p99\": %.12g",
                        s.p50, s.p95, s.p99);
          out += buf;
        }
        break;
    }
    out += "}";
    out += (i + 1 < samples_.size()) ? ",\n" : "\n";
  }
  out += "  }\n}\n";
  return out;
}

void RunReport::write_json(const std::string& path) const {
  std::ofstream file(path);
  if (!file) throw std::runtime_error("RunReport::write_json: cannot open " + path);
  file << render_json();
  if (!file.good()) throw std::runtime_error("RunReport::write_json: write failed for " + path);
}

}  // namespace ms::obs
