#include "obs/query_scope.hpp"

namespace ms::obs {
namespace {

thread_local QueryTelemetry* t_active_sink = nullptr;

}  // namespace

QueryScope::QueryScope(QueryTelemetry& sink) : previous_(t_active_sink) {
  t_active_sink = &sink;
}

QueryScope::~QueryScope() { t_active_sink = previous_; }

bool QueryScope::active() { return t_active_sink != nullptr; }

void QueryScope::count(const char* name, std::int64_t delta) {
  if (t_active_sink == nullptr) return;
  t_active_sink->counts[name] += delta;
}

void QueryScope::observe_seconds(const char* name, double seconds) {
  if (t_active_sink == nullptr) return;
  t_active_sink->seconds[name] += seconds;
}

}  // namespace ms::obs
