#pragma once
// Structured event log: an append-only JSONL stream of lifecycle events
// (scenario enqueued / started / cache-hit / degraded / failed / completed),
// one JSON object per line, for machine consumption — tailing a live sweep,
// joining against the Chrome trace (both use the trace-epoch microsecond
// clock), or post-hoc failure triage. Enabled by the sweep CLI / benches via
// --events-jsonl (see obs_cli).
//
//   obs::EventLog::emit("scenario.completed", [&](util::JsonObject& e) {
//     e.set("scenario", spec.name).set("status", "ok");
//   });
//
// Emission is drop-free and ordered: a process-wide mutex serializes writes
// and a monotonic `seq` field in every line makes gaps detectable. When the
// log is closed (the default) emit() is one relaxed atomic load — callers
// never build the JSON object. The builder-callback shape exists exactly for
// that: field construction is skipped, not just the write.

#include <functional>
#include <string>

#include "util/json.hpp"

namespace ms::obs {

class EventLog {
 public:
  /// Open `path` for appending events (truncates an existing file). Throws
  /// std::runtime_error when the file cannot be opened. Re-opening closes the
  /// previous stream first.
  static void open(const std::string& path);

  /// Flush and stop accepting events. Idempotent.
  static void close();

  /// True when a stream is open — emit() callbacks only run in that case.
  [[nodiscard]] static bool enabled();

  /// Append one event line: {"ts_us": ..., "seq": N, "event": type, ...your
  /// fields}. `fill` runs under the log mutex — keep it to field sets.
  static void emit(const char* type, const std::function<void(util::JsonObject&)>& fill);

  /// Lines written since open(). 0 when closed.
  [[nodiscard]] static std::int64_t lines_written();
};

}  // namespace ms::obs
