#include "obs/metrics.hpp"

#include <chrono>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace ms::obs {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Atomic add for doubles (CAS loop; uncontended in practice — metrics are
/// recorded per solve call, not per element).
void atomic_add(std::atomic<double>& target, double delta) {
  double expected = target.load(std::memory_order_relaxed);
  while (!target.compare_exchange_weak(expected, expected + delta, std::memory_order_relaxed)) {
  }
}

void atomic_min(std::atomic<double>& target, double value) {
  double expected = target.load(std::memory_order_relaxed);
  while (value < expected &&
         !target.compare_exchange_weak(expected, value, std::memory_order_relaxed)) {
  }
}

void atomic_max(std::atomic<double>& target, double value) {
  double expected = target.load(std::memory_order_relaxed);
  while (value > expected &&
         !target.compare_exchange_weak(expected, value, std::memory_order_relaxed)) {
  }
}

}  // namespace

int Histogram::bin_of(double value) {
  // Bin 0 covers (-inf, 2 us); each bin doubles; the top bin is open-ended.
  // 1 us = 2^(-20) s roughly (2^-20 = 0.95e-6).
  if (!(value > 9.5367431640625e-07)) return 0;  // < 2^-20 s (and NaN)
  const int bin = static_cast<int>(std::floor(std::log2(value))) + 20;
  if (bin < 0) return 0;
  if (bin >= kNumBins) return kNumBins - 1;
  return bin;
}

double Histogram::bin_lower(int bin) {
  return bin <= 0 ? 0.0 : std::ldexp(1.0, bin - 20);
}

double Histogram::bin_upper(int bin) { return std::ldexp(1.0, bin - 19); }

double Histogram::percentile(double q) const {
  // Take one pass over the bins (racy under concurrent recording — each load
  // is atomic but the set is not a consistent cut; see the header note).
  std::int64_t counts[kNumBins];
  std::int64_t total = 0;
  for (int b = 0; b < kNumBins; ++b) {
    counts[b] = bin_count(b);
    total += counts[b];
  }
  if (total <= 0) return 0.0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  // Rank of the q-th value (1-based, nearest-rank), then interpolate linearly
  // between the bin's edges by the rank's position inside the bin.
  const double rank = q * static_cast<double>(total);
  std::int64_t seen = 0;
  for (int b = 0; b < kNumBins; ++b) {
    if (counts[b] == 0) continue;
    if (static_cast<double>(seen + counts[b]) >= rank) {
      const double within =
          counts[b] > 0 ? (rank - static_cast<double>(seen)) / static_cast<double>(counts[b])
                        : 0.0;
      double estimate = bin_lower(b) + within * (bin_upper(b) - bin_lower(b));
      // The true extremes are tracked exactly; use them to clamp the bin
      // interpolation (and to pin the open-ended first/last bins).
      const double lo = min();
      const double hi = max();
      if (estimate < lo) estimate = lo;
      if (estimate > hi) estimate = hi;
      return estimate;
    }
    seen += counts[b];
  }
  return max();
}

void Histogram::record(double value) {
  count_.fetch_add(1, std::memory_order_relaxed);
  atomic_add(sum_, value);
  atomic_min(min_, value);
  atomic_max(max_, value);
  bins_[bin_of(value)].fetch_add(1, std::memory_order_relaxed);
}

double Histogram::sum() const { return sum_.load(std::memory_order_relaxed); }

// The +-inf initializers are already the documented empty answers.
double Histogram::min() const { return min_.load(std::memory_order_relaxed); }

double Histogram::max() const { return max_.load(std::memory_order_relaxed); }

double Histogram::mean() const {
  const std::int64_t n = count();
  return n > 0 ? sum() / static_cast<double>(n) : 0.0;
}

void Histogram::reset() {
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
  min_.store(kInf, std::memory_order_relaxed);
  max_.store(-kInf, std::memory_order_relaxed);
  for (auto& bin : bins_) bin.store(0, std::memory_order_relaxed);
}

MetricRegistry& MetricRegistry::global() {
  // Intentionally leaked so handles stay valid in atexit hooks and static
  // destructors regardless of registration order.
  static MetricRegistry* registry = new MetricRegistry();
  return *registry;
}

MetricRegistry::Entry& MetricRegistry::entry(const std::string& name, MetricSample::Kind kind) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto [it, inserted] = entries_.try_emplace(name);
  if (inserted) {
    it->second.kind = kind;
  } else if (it->second.kind != kind) {
    throw std::invalid_argument("MetricRegistry: '" + name +
                                "' already registered with a different kind");
  }
  return it->second;
}

const MetricRegistry::Entry* MetricRegistry::find(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = entries_.find(name);
  return it == entries_.end() ? nullptr : &it->second;
}

Counter& MetricRegistry::counter(const std::string& name) {
  return entry(name, MetricSample::Kind::kCounter).counter;
}

Gauge& MetricRegistry::gauge(const std::string& name) {
  return entry(name, MetricSample::Kind::kGauge).gauge;
}

Histogram& MetricRegistry::histogram(const std::string& name) {
  return entry(name, MetricSample::Kind::kHistogram).histogram;
}

std::vector<MetricSample> MetricRegistry::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<MetricSample> out;
  out.reserve(entries_.size());
  for (const auto& [name, e] : entries_) {  // std::map iterates name-sorted
    MetricSample s;
    s.name = name;
    s.kind = e.kind;
    switch (e.kind) {
      case MetricSample::Kind::kCounter: s.count = e.counter.value(); break;
      case MetricSample::Kind::kGauge: s.value = e.gauge.value(); break;
      case MetricSample::Kind::kHistogram:
        s.count = e.histogram.count();
        s.value = e.histogram.sum();
        s.min = e.histogram.min();
        s.max = e.histogram.max();
        s.p50 = e.histogram.percentile(0.50);
        s.p95 = e.histogram.percentile(0.95);
        s.p99 = e.histogram.percentile(0.99);
        break;
    }
    out.push_back(std::move(s));
  }
  return out;
}

void MetricRegistry::reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [name, e] : entries_) {
    (void)name;
    e.counter.reset();
    e.gauge.reset();
    e.histogram.reset();
  }
}

double MetricRegistry::histogram_sum(const std::string& name) const {
  const Entry* e = find(name);
  return e != nullptr && e->kind == MetricSample::Kind::kHistogram ? e->histogram.sum() : 0.0;
}

std::int64_t MetricRegistry::counter_value(const std::string& name) const {
  const Entry* e = find(name);
  return e != nullptr && e->kind == MetricSample::Kind::kCounter ? e->counter.value() : 0;
}

double MetricRegistry::gauge_value(const std::string& name) const {
  const Entry* e = find(name);
  return e != nullptr && e->kind == MetricSample::Kind::kGauge ? e->gauge.value() : 0.0;
}

const Histogram* MetricRegistry::find_histogram(const std::string& name) const {
  const Entry* e = find(name);
  return e != nullptr && e->kind == MetricSample::Kind::kHistogram ? &e->histogram : nullptr;
}

ScopedDuration::ScopedDuration(Histogram& histogram)
    : histogram_(histogram),
      begin_ns_(std::chrono::duration_cast<std::chrono::nanoseconds>(
                    std::chrono::steady_clock::now().time_since_epoch())
                    .count()) {}

ScopedDuration::~ScopedDuration() {
  const std::int64_t end_ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                                  std::chrono::steady_clock::now().time_since_epoch())
                                  .count();
  histogram_.record(1e-9 * static_cast<double>(end_ns - begin_ns_));
}

}  // namespace ms::obs
