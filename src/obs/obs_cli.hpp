#pragma once
// Observability command-line glue shared by every example and bench:
//
//   ms::util::CliParser cli(...);
//   ms::obs::add_cli_flags(cli);     // --trace-json / --report-json
//   cli.parse(argc, argv);
//   ms::obs::apply_cli_flags(cli);   // enable tracing, honor MS_TRACE /
//                                    // MS_LOG_LEVEL env overrides
//   ... run ...
//   ms::obs::write_cli_outputs(cli); // dump trace + report when requested

#include "util/cli.hpp"

namespace ms::obs {

/// Register --trace-json and --report-json (empty default = off).
void add_cli_flags(util::CliParser& cli);

/// Enable span tracing when --trace-json is set (or the MS_TRACE env toggle
/// asks for it), and apply the MS_LOG_LEVEL env override (which wins over
/// any --log flag so a deployed binary can be made chatty without a rebuild).
void apply_cli_flags(const util::CliParser& cli);

/// Write the Chrome trace / RunReport JSON files named by the flags (no-ops
/// when the flags are empty). Call once at the end of main.
void write_cli_outputs(const util::CliParser& cli);

}  // namespace ms::obs
