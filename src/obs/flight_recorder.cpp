#include "obs/flight_recorder.hpp"

#include <cstdio>
#include <cstring>

#include "obs/trace.hpp"

namespace ms::obs {
namespace {

/// Fixed-size record slot: no allocation on the note_* path, so the recorder
/// is safe from signal-adjacent contexts (log writes, span unwinds during
/// exception propagation).
struct Slot {
  double ts_us = 0.0;
  double dur_us = 0.0;
  bool is_log = false;
  char text[FlightRecorder::kMaxText] = {0};
};

/// Per-thread ring. `next` is the write cursor; `count` saturates at
/// kCapacity so snapshot knows how much of the ring is live.
struct Ring {
  Slot slots[FlightRecorder::kCapacity];
  std::size_t next = 0;
  std::size_t count = 0;

  void push(double ts_us, double dur_us, bool is_log, const char* text) {
    Slot& s = slots[next];
    s.ts_us = ts_us;
    s.dur_us = dur_us;
    s.is_log = is_log;
    std::strncpy(s.text, text, FlightRecorder::kMaxText - 1);
    s.text[FlightRecorder::kMaxText - 1] = '\0';
    next = (next + 1) % FlightRecorder::kCapacity;
    if (count < FlightRecorder::kCapacity) ++count;
  }
};

Ring& local_ring() {
  thread_local Ring ring;
  return ring;
}

}  // namespace

void FlightRecorder::set_enabled(bool enabled) {
  detail::set_capture_bit(detail::kCaptureFlight, enabled);
}

bool FlightRecorder::enabled() {
  return (detail::g_capture_mask.load(std::memory_order_relaxed) &
          detail::kCaptureFlight) != 0;
}

void FlightRecorder::note_span(const char* name, double begin_us, double end_us) {
  if (!enabled()) return;
  local_ring().push(begin_us, end_us - begin_us, /*is_log=*/false, name);
}

void FlightRecorder::note_log(const char* line) {
  if (!enabled()) return;
  local_ring().push(trace_now_us(), 0.0, /*is_log=*/true, line);
}

std::vector<FlightRecord> FlightRecorder::snapshot() {
  const Ring& ring = local_ring();
  std::vector<FlightRecord> out;
  out.reserve(ring.count);
  // Oldest entry sits at `next` once the ring has wrapped, at 0 before.
  const std::size_t start =
      ring.count < kCapacity ? 0 : ring.next % kCapacity;
  for (std::size_t i = 0; i < ring.count; ++i) {
    const Slot& s = ring.slots[(start + i) % kCapacity];
    FlightRecord r;
    r.ts_us = s.ts_us;
    r.dur_us = s.dur_us;
    r.is_log = s.is_log;
    r.text = s.text;
    out.push_back(std::move(r));
  }
  return out;
}

void FlightRecorder::clear() {
  Ring& ring = local_ring();
  ring.next = 0;
  ring.count = 0;
}

std::vector<std::string> format_flight_records(
    const std::vector<FlightRecord>& records) {
  std::vector<std::string> lines;
  lines.reserve(records.size());
  char buf[64];
  for (const FlightRecord& r : records) {
    std::string line;
    std::snprintf(buf, sizeof(buf), "+%.3fms ", r.ts_us / 1000.0);
    line += buf;
    if (r.is_log) {
      line += "log ";
      line += r.text;
    } else {
      line += "span ";
      line += r.text;
      std::snprintf(buf, sizeof(buf), " (%.3fms)", r.dur_us / 1000.0);
      line += buf;
    }
    lines.push_back(std::move(line));
  }
  return lines;
}

}  // namespace ms::obs
