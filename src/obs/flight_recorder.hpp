#pragma once
// Flight recorder: a bounded per-thread ring buffer of the most recent spans
// and log lines, kept cheaply at all times so that when a scenario fails or
// degrades, its worker can snapshot the last moments of context into the
// result row — a post-mortem without a rerun (see DESIGN.md "Query-scoped
// telemetry").
//
// Feeds: obs::ScopedSpan mirrors completed spans here when recording is
// enabled (independent of full tracing — the ring is bounded, the trace
// buffer is not), and util/log.cpp mirrors every formatted log line. Both
// feeds are thread-local appends into a fixed-size ring: no locks, no
// allocation, safe inside OpenMP regions.
//
// Usage (the sweep engine's pattern):
//   obs::FlightRecorder::set_enabled(true);       // engine construction
//   obs::FlightRecorder::clear();                 // worker, query start
//   ... run the query ...
//   if (failed) result.flight = obs::FlightRecorder::snapshot();
//
// snapshot()/clear() act on the *calling thread's* ring only — the worker
// that ran the query snapshots its own recent history, which is exactly the
// context that produced the failure.

#include <cstdint>
#include <string>
#include <vector>

namespace ms::obs {

/// One flight-recorder entry, oldest-first in a snapshot. `ts_us` is
/// microseconds since the process trace epoch (the SpanEvent time base).
struct FlightRecord {
  double ts_us = 0.0;
  double dur_us = 0.0;     ///< span duration; 0 for log lines
  bool is_log = false;     ///< log line vs completed span
  std::string text;        ///< span name, or the formatted log line
};

class FlightRecorder {
 public:
  /// Ring capacity per thread; older entries are overwritten.
  static constexpr std::size_t kCapacity = 64;
  /// Log lines are truncated to this many bytes in the ring (no allocation
  /// on the record path).
  static constexpr std::size_t kMaxText = 160;

  /// Process-wide toggle. Disabled probes cost one relaxed atomic load.
  static void set_enabled(bool enabled);
  [[nodiscard]] static bool enabled();

  /// Append a completed span / a formatted log line to the calling thread's
  /// ring. No-ops when disabled. Called by obs::detail::span_end and
  /// util::log_message — not meant for general use.
  static void note_span(const char* name, double begin_us, double end_us);
  static void note_log(const char* line);

  /// The calling thread's recent entries, oldest first.
  [[nodiscard]] static std::vector<FlightRecord> snapshot();

  /// Drop the calling thread's entries (a query boundary: each snapshot then
  /// covers one query's history only).
  static void clear();
};

/// Render a snapshot as human-readable lines ("+12.345ms span rom.global.solve
/// (3.2ms)" / "+12.400ms log [WARN ...] ...") for error JSON and reports.
[[nodiscard]] std::vector<std::string> format_flight_records(
    const std::vector<FlightRecord>& records);

}  // namespace ms::obs
