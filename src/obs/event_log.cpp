#include "obs/event_log.hpp"

#include <atomic>
#include <cstdint>
#include <fstream>
#include <mutex>
#include <stdexcept>

#include "obs/trace.hpp"

namespace ms::obs {
namespace {

// `g_enabled` is the lock-free fast path; the stream and counters live behind
// the mutex. Writes hold the mutex for the whole line so concurrent workers
// never interleave and `seq` matches file order.
std::atomic<bool> g_enabled{false};
std::mutex g_mutex;
std::ofstream g_stream;
std::int64_t g_seq = 0;

}  // namespace

void EventLog::open(const std::string& path) {
  std::lock_guard<std::mutex> lock(g_mutex);
  if (g_stream.is_open()) g_stream.close();
  g_stream.open(path, std::ios::out | std::ios::trunc);
  if (!g_stream) {
    g_enabled.store(false, std::memory_order_relaxed);
    throw std::runtime_error("EventLog::open: cannot open " + path);
  }
  g_seq = 0;
  g_enabled.store(true, std::memory_order_relaxed);
}

void EventLog::close() {
  std::lock_guard<std::mutex> lock(g_mutex);
  g_enabled.store(false, std::memory_order_relaxed);
  if (g_stream.is_open()) g_stream.close();
}

bool EventLog::enabled() { return g_enabled.load(std::memory_order_relaxed); }

void EventLog::emit(const char* type, const std::function<void(util::JsonObject&)>& fill) {
  if (!enabled()) return;
  std::lock_guard<std::mutex> lock(g_mutex);
  if (!g_stream.is_open()) return;  // closed between the check and the lock
  util::JsonObject event;
  event.set("ts_us", trace_now_us());
  event.set("seq", g_seq);
  event.set("event", type);
  if (fill) fill(event);
  g_stream << event.render() << '\n';
  ++g_seq;
}

std::int64_t EventLog::lines_written() {
  std::lock_guard<std::mutex> lock(g_mutex);
  return g_stream.is_open() ? g_seq : 0;
}

}  // namespace ms::obs
