#pragma once
// Preconditioned conjugate gradients for SPD systems. Used for the reduced
// global problem (paper Sec. 4.3 solves it iteratively) and for the fine-mesh
// reference FEM solves that stand in for ANSYS.

#include <functional>

#include "la/precond.hpp"
#include "la/sparse.hpp"

namespace ms::la {

struct IterativeOptions {
  double rel_tol = 1e-9;       ///< stop when |r| <= rel_tol * |b|
  double abs_tol = 0.0;        ///< additional absolute floor on |r|
  idx_t max_iterations = 10000;
  bool use_initial_guess = false;  ///< if set, x is used as the starting point
};

struct IterativeResult {
  bool converged = false;
  idx_t iterations = 0;
  double residual_norm = 0.0;  ///< final true-residual proxy |r|
  double rhs_norm = 0.0;
  /// Set when the recurrence itself broke (indefinite operator, non-finite
  /// residual, stagnation) as opposed to merely running out of iterations.
  bool breakdown = false;
  const char* breakdown_reason = "";
};

/// Solve A x = b with PCG. `precond` may be null (identity).
IterativeResult conjugate_gradient(const CsrMatrix& a, const Vec& b, Vec& x,
                                   const Preconditioner* precond, const IterativeOptions& options);

/// Matrix-free variant: `apply_a` computes y = A x.
IterativeResult conjugate_gradient(const std::function<void(const Vec&, Vec&)>& apply_a, const Vec& b,
                                   Vec& x, const Preconditioner* precond,
                                   const IterativeOptions& options);

}  // namespace ms::la
