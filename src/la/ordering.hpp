#pragma once
// Fill-reducing / bandwidth-reducing orderings for the sparse Cholesky
// factorization. Reverse Cuthill-McKee is simple, deterministic, and works
// well for the structured meshes this repository produces.

#include <vector>

#include "la/sparse.hpp"

namespace ms::la {

/// Permutation pair: perm[new] = old, inv_perm[old] = new.
struct Permutation {
  std::vector<idx_t> perm;
  std::vector<idx_t> inv_perm;

  [[nodiscard]] idx_t size() const { return static_cast<idx_t>(perm.size()); }

  /// Identity permutation of order n.
  static Permutation identity(idx_t n);
};

/// Reverse Cuthill-McKee ordering of a structurally symmetric matrix.
/// Components are seeded from minimum-degree pseudo-peripheral nodes.
Permutation reverse_cuthill_mckee(const CsrMatrix& a);

/// B = P A P^T for a symmetric permutation (perm[new] = old).
CsrMatrix permute_symmetric(const CsrMatrix& a, const Permutation& p);

/// Apply: out[new] = in[perm[new]] (gather into permuted ordering).
Vec permute_vector(const Vec& x, const Permutation& p);

/// Inverse apply: out[perm[new]] = in[new].
Vec unpermute_vector(const Vec& x, const Permutation& p);

/// Bandwidth max |i - j| over stored entries (diagnostic for tests).
idx_t bandwidth(const CsrMatrix& a);

}  // namespace ms::la
