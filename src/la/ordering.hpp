#pragma once
// Fill-reducing / bandwidth-reducing orderings for the sparse Cholesky
// factorization. Reverse Cuthill-McKee keeps the band tight on chain-like
// graphs; approximate minimum degree (the default for the direct solver)
// produces far less fill on the 3D hex-mesh matrices this repository
// assembles. Both are deterministic.

#include <vector>

#include "la/sparse.hpp"

namespace ms::la {

/// Permutation pair: perm[new] = old, inv_perm[old] = new.
struct Permutation {
  std::vector<idx_t> perm;
  std::vector<idx_t> inv_perm;

  [[nodiscard]] idx_t size() const { return static_cast<idx_t>(perm.size()); }

  /// Identity permutation of order n.
  static Permutation identity(idx_t n);

  /// Composition: first apply `this`, then `second` (on the already-permuted
  /// index space). Result maps result.perm[new] = perm[second.perm[new]].
  [[nodiscard]] Permutation then(const Permutation& second) const;
};

/// Reverse Cuthill-McKee ordering of a structurally symmetric matrix.
/// Components are seeded from minimum-degree pseudo-peripheral nodes.
Permutation reverse_cuthill_mckee(const CsrMatrix& a);

/// Approximate minimum degree ordering (Amestoy/Davis/Duff) of a
/// structurally symmetric matrix: quotient-graph elimination with element
/// absorption (aggressive), mass elimination, and indistinguishable-node
/// (supervariable) detection via hashing. External degrees are the AMD upper
/// bound, so each pivot step costs O(|affected lists|) instead of a full
/// set union. Deterministic: ties break towards the lowest node index.
/// On 3D FEM matrices the Cholesky fill is typically several times lower
/// than under RCM.
Permutation amd_ordering(const CsrMatrix& a);

/// B = P A P^T for a symmetric permutation (perm[new] = old).
CsrMatrix permute_symmetric(const CsrMatrix& a, const Permutation& p);

/// Apply: out[new] = in[perm[new]] (gather into permuted ordering).
Vec permute_vector(const Vec& x, const Permutation& p);

/// Inverse apply: out[perm[new]] = in[new].
Vec unpermute_vector(const Vec& x, const Permutation& p);

/// Bandwidth max |i - j| over stored entries (diagnostic for tests).
idx_t bandwidth(const CsrMatrix& a);

}  // namespace ms::la
