#include "la/vec.hpp"

#include <cassert>
#include <cmath>

namespace ms::la {

double dot(const Vec& x, const Vec& y) {
  assert(x.size() == y.size());
  double sum = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) sum += x[i] * y[i];
  return sum;
}

double norm2(const Vec& x) { return std::sqrt(dot(x, x)); }

double norm_inf(const Vec& x) {
  double m = 0.0;
  for (double v : x) m = std::max(m, std::fabs(v));
  return m;
}

void axpy(double a, const Vec& x, Vec& y) {
  assert(x.size() == y.size());
  for (std::size_t i = 0; i < x.size(); ++i) y[i] += a * x[i];
}

void axpby(double a, const Vec& x, double b, Vec& y) {
  assert(x.size() == y.size());
  for (std::size_t i = 0; i < x.size(); ++i) y[i] = a * x[i] + b * y[i];
}

void scale(Vec& x, double a) {
  for (double& v : x) v *= a;
}

void assign(const Vec& x, Vec& y) { y = x; }

Vec zeros(std::size_t n) { return Vec(n, 0.0); }

double max_abs_diff(const Vec& x, const Vec& y) {
  assert(x.size() == y.size());
  double m = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) m = std::max(m, std::fabs(x[i] - y[i]));
  return m;
}

bool all_finite(const double* x, std::size_t n) {
  // Summing keeps the loop branch-free; a single NaN/Inf poisons the total.
  double sum = 0.0;
  for (std::size_t i = 0; i < n; ++i) sum += x[i] * 0.0;
  return sum == 0.0;
}

bool all_finite(const Vec& x) { return all_finite(x.data(), x.size()); }

}  // namespace ms::la
