#include "la/sparse.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>

namespace ms::la {

CsrMatrix CsrMatrix::from_triplets(const TripletList& t, bool drop_zeros) {
  CsrMatrix m;
  m.rows_ = t.rows();
  m.cols_ = t.cols();
  const std::size_t nnz_in = t.size();
  const auto& is = t.row_indices();
  const auto& js = t.col_indices();
  const auto& vs = t.values();

  // Count entries per row, then bucket-sort triplets into row order.
  std::vector<offset_t> count(static_cast<std::size_t>(m.rows_) + 1, 0);
  for (std::size_t k = 0; k < nnz_in; ++k) {
    assert(is[k] >= 0 && is[k] < m.rows_ && js[k] >= 0 && js[k] < m.cols_);
    ++count[static_cast<std::size_t>(is[k]) + 1];
  }
  for (std::size_t r = 0; r < static_cast<std::size_t>(m.rows_); ++r) count[r + 1] += count[r];

  std::vector<idx_t> cols(nnz_in);
  std::vector<double> vals(nnz_in);
  {
    std::vector<offset_t> next(count.begin(), count.end() - 1);
    for (std::size_t k = 0; k < nnz_in; ++k) {
      const offset_t slot = next[is[k]]++;
      cols[slot] = js[k];
      vals[slot] = vs[k];
    }
  }

  // Sort each row by column and merge duplicates.
  m.row_ptr_.assign(static_cast<std::size_t>(m.rows_) + 1, 0);
  std::vector<idx_t> out_cols;
  std::vector<double> out_vals;
  out_cols.reserve(nnz_in);
  out_vals.reserve(nnz_in);
  std::vector<std::pair<idx_t, double>> row_buf;
  for (idx_t r = 0; r < m.rows_; ++r) {
    const offset_t begin = count[r];
    const offset_t end = count[static_cast<std::size_t>(r) + 1];
    row_buf.clear();
    for (offset_t k = begin; k < end; ++k) row_buf.emplace_back(cols[k], vals[k]);
    std::sort(row_buf.begin(), row_buf.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    for (std::size_t k = 0; k < row_buf.size();) {
      const idx_t col = row_buf[k].first;
      double sum = 0.0;
      while (k < row_buf.size() && row_buf[k].first == col) sum += row_buf[k++].second;
      if (drop_zeros && sum == 0.0) continue;
      out_cols.push_back(col);
      out_vals.push_back(sum);
    }
    m.row_ptr_[static_cast<std::size_t>(r) + 1] = static_cast<offset_t>(out_cols.size());
  }
  m.col_idx_ = std::move(out_cols);
  m.values_ = std::move(out_vals);
  return m;
}

CsrMatrix CsrMatrix::from_raw(idx_t rows, idx_t cols, std::vector<offset_t> row_ptr,
                              std::vector<idx_t> col_idx, std::vector<double> values) {
  if (row_ptr.size() != static_cast<std::size_t>(rows) + 1 || col_idx.size() != values.size() ||
      row_ptr.back() != static_cast<offset_t>(values.size())) {
    throw std::invalid_argument("CsrMatrix::from_raw: inconsistent arrays");
  }
  CsrMatrix m;
  m.rows_ = rows;
  m.cols_ = cols;
  m.row_ptr_ = std::move(row_ptr);
  m.col_idx_ = std::move(col_idx);
  m.values_ = std::move(values);
  return m;
}

void CsrMatrix::mul(const Vec& x, Vec& y) const {
  assert(static_cast<idx_t>(x.size()) == cols_);
  y.assign(rows_, 0.0);
  mul_add(1.0, x, y);
}

void CsrMatrix::mul_add(double a, const Vec& x, Vec& y) const {
  assert(static_cast<idx_t>(x.size()) == cols_);
  assert(static_cast<idx_t>(y.size()) == rows_);
  for (idx_t r = 0; r < rows_; ++r) {
    double sum = 0.0;
    const offset_t end = row_ptr_[static_cast<std::size_t>(r) + 1];
    for (offset_t k = row_ptr_[r]; k < end; ++k) sum += values_[k] * x[col_idx_[k]];
    y[r] += a * sum;
  }
}

double CsrMatrix::coeff(idx_t i, idx_t j) const {
  const offset_t begin = row_ptr_[i];
  const offset_t end = row_ptr_[static_cast<std::size_t>(i) + 1];
  const auto first = col_idx_.begin() + begin;
  const auto last = col_idx_.begin() + end;
  const auto it = std::lower_bound(first, last, j);
  if (it == last || *it != j) return 0.0;
  return values_[begin + (it - first)];
}

Vec CsrMatrix::diagonal() const {
  Vec d(rows_, 0.0);
  for (idx_t r = 0; r < std::min(rows_, cols_); ++r) d[r] = coeff(r, r);
  return d;
}

double CsrMatrix::symmetry_error() const {
  double m = 0.0;
  for (idx_t r = 0; r < rows_; ++r) {
    const offset_t end = row_ptr_[static_cast<std::size_t>(r) + 1];
    for (offset_t k = row_ptr_[r]; k < end; ++k) {
      const idx_t c = col_idx_[k];
      if (c <= r) continue;  // check each unordered pair once
      m = std::max(m, std::fabs(values_[k] - coeff(c, r)));
    }
  }
  return m;
}

CsrMatrix CsrMatrix::submatrix(const std::vector<idx_t>& row_map, idx_t new_rows,
                               const std::vector<idx_t>& col_map, idx_t new_cols) const {
  assert(row_map.size() == static_cast<std::size_t>(rows_));
  assert(col_map.size() == static_cast<std::size_t>(cols_));
  // Invert the row map so output rows appear in new-index order.
  std::vector<idx_t> old_row_of(static_cast<std::size_t>(new_rows), -1);
  for (idx_t r = 0; r < rows_; ++r) {
    if (row_map[r] >= 0) {
      assert(row_map[r] < new_rows);
      old_row_of[row_map[r]] = r;
    }
  }
  CsrMatrix m;
  m.rows_ = new_rows;
  m.cols_ = new_cols;
  m.row_ptr_.assign(static_cast<std::size_t>(new_rows) + 1, 0);
  for (idx_t nr = 0; nr < new_rows; ++nr) {
    const idx_t r = old_row_of[nr];
    if (r < 0) throw std::invalid_argument("CsrMatrix::submatrix: row map not surjective");
    const offset_t end = row_ptr_[static_cast<std::size_t>(r) + 1];
    for (offset_t k = row_ptr_[r]; k < end; ++k) {
      const idx_t nc = col_map[col_idx_[k]];
      if (nc < 0) continue;
      m.col_idx_.push_back(nc);
      m.values_.push_back(values_[k]);
    }
    m.row_ptr_[static_cast<std::size_t>(nr) + 1] = static_cast<offset_t>(m.col_idx_.size());
  }
  return m;
}

std::size_t CsrMatrix::memory_bytes() const {
  return values_.size() * sizeof(double) + col_idx_.size() * sizeof(idx_t) +
         row_ptr_.size() * sizeof(offset_t);
}

}  // namespace ms::la
