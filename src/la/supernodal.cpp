#include "la/supernodal.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>

#include "la/errors.hpp"

namespace ms::la {

idx_t ereach(const CsrMatrix& a, idx_t k, const std::vector<idx_t>& parent, std::vector<idx_t>& s,
             std::vector<idx_t>& mark, idx_t stamp) {
  const idx_t n = a.rows();
  idx_t top = n;
  mark[k] = stamp;
  const offset_t end = a.row_ptr()[static_cast<std::size_t>(k) + 1];
  for (offset_t p = a.row_ptr()[k]; p < end; ++p) {
    idx_t i = a.col_idx()[p];
    if (i >= k) break;  // columns are sorted; only strictly-lower entries seed
    idx_t len = 0;
    for (; mark[i] != stamp; i = parent[i]) {
      s[len++] = i;
      mark[i] = stamp;
    }
    while (len > 0) s[--top] = s[--len];
  }
  return top;
}

std::vector<idx_t> elimination_tree(const CsrMatrix& a) {
  const idx_t n = a.rows();
  std::vector<idx_t> parent(n, -1), ancestor(n, -1);
  for (idx_t k = 0; k < n; ++k) {
    const offset_t end = a.row_ptr()[static_cast<std::size_t>(k) + 1];
    for (offset_t p = a.row_ptr()[k]; p < end; ++p) {
      idx_t i = a.col_idx()[p];
      if (i >= k) break;
      while (i != -1 && i != k) {
        const idx_t next = ancestor[i];
        ancestor[i] = k;
        if (next == -1) parent[i] = k;
        i = next;
      }
    }
  }
  return parent;
}

std::vector<idx_t> cholesky_column_counts(const CsrMatrix& a, const std::vector<idx_t>& parent) {
  const idx_t n = a.rows();
  std::vector<idx_t> counts(n, 1), s(n), mark(n, -1);
  for (idx_t k = 0; k < n; ++k) {
    const idx_t top = ereach(a, k, parent, s, mark, k);
    for (idx_t t = top; t < n; ++t) ++counts[s[t]];
  }
  return counts;
}

std::vector<idx_t> etree_postorder(const std::vector<idx_t>& parent) {
  const idx_t n = static_cast<idx_t>(parent.size());
  // Children lists in ascending order: insert n-1 .. 0 at the head.
  std::vector<idx_t> head(n, -1), next(n, -1);
  for (idx_t v = n - 1; v >= 0; --v) {
    if (parent[v] == -1) continue;
    next[v] = head[parent[v]];
    head[parent[v]] = v;
  }
  std::vector<idx_t> post;
  post.reserve(n);
  std::vector<idx_t> stack;
  for (idx_t root = 0; root < n; ++root) {
    if (parent[root] != -1) continue;
    stack.push_back(root);
    while (!stack.empty()) {
      const idx_t v = stack.back();
      const idx_t child = head[v];
      if (child == -1) {
        post.push_back(v);
        stack.pop_back();
      } else {
        head[v] = next[child];  // consume the child link
        stack.push_back(child);
      }
    }
  }
  return post;
}

offset_t SupernodalFactor::factor_nnz() const {
  offset_t nnz = 0;
  for (idx_t s = 0; s < num_supernodes; ++s) {
    const offset_t m = row_start[static_cast<std::size_t>(s) + 1] - row_start[s];
    const offset_t w = super_start[static_cast<std::size_t>(s) + 1] - super_start[s];
    nnz += m * w - w * (w - 1) / 2;  // rectangle minus the strict upper wedge
  }
  return nnz;
}

std::size_t SupernodalFactor::memory_bytes() const {
  return values.size() * sizeof(double) + rows.size() * sizeof(idx_t) +
         (super_start.size() + col_super.size()) * sizeof(idx_t) +
         (row_start.size() + val_start.size()) * sizeof(offset_t);
}

SupernodalFactor analyze_supernodes(const CsrMatrix& a, const std::vector<idx_t>& parent,
                                    const std::vector<idx_t>& counts, idx_t max_width,
                                    double relax_fill) {
  const idx_t n = a.rows();
  if (max_width < 1) max_width = 1;

  SupernodalFactor f;
  f.n = n;
  f.col_super.assign(n, 0);

  // Fundamental supernodes (width-capped).
  std::vector<idx_t> fund_start;
  for (idx_t j = 0; j < n; ++j) {
    const bool extend = j > 0 && parent[j - 1] == j && counts[j] == counts[j - 1] - 1 &&
                        j - fund_start.back() < max_width;
    if (!extend) fund_start.push_back(j);
  }
  fund_start.push_back(n);
  const idx_t num_fund = static_cast<idx_t>(fund_start.size()) - 1;

  // Supernode layout after (optional) relaxed amalgamation. Per supernode:
  // start column, pattern size m, and the leading column of its *last*
  // fundamental member — the merged below-diagonal rows are exactly that
  // member's below rows (every earlier member's pattern is contained in the
  // later columns plus that row set, by the etree parent chain).
  std::vector<idx_t> start_cols, pattern_lead;
  std::vector<offset_t> pattern_m;
  const auto trapezoid = [](offset_t m, offset_t w) { return m * w - w * (w - 1) / 2; };
  if (relax_fill > 0.0 && num_fund > 1) {
    idx_t cur_start = fund_start[0];
    idx_t cur_lead = fund_start[0];
    offset_t cur_m = counts[fund_start[0]];
    offset_t cur_true = trapezoid(cur_m, fund_start[1] - fund_start[0]);
    const auto flush = [&]() {
      start_cols.push_back(cur_start);
      pattern_lead.push_back(cur_lead);
      pattern_m.push_back(cur_m);
    };
    for (idx_t fi = 1; fi < num_fund; ++fi) {
      const idx_t c0 = fund_start[fi];
      const idx_t c1 = fund_start[static_cast<std::size_t>(fi) + 1];
      const offset_t m = counts[c0];
      const offset_t trap = trapezoid(m, c1 - c0);
      // Merge only an adjacent etree child/parent pair: the parent of the
      // running group's last column must be this supernode's first column
      // (pattern containment), the merged panel must respect the width cap,
      // and the cumulative explicit zeros must stay under the relax cap.
      if (parent[c0 - 1] == c0 && c1 - cur_start <= max_width) {
        const offset_t new_m = (c0 - cur_start) + m;
        const offset_t new_trap = trapezoid(new_m, c1 - cur_start);
        const offset_t zeros = new_trap - cur_true - trap;
        if (static_cast<double>(zeros) <= relax_fill * static_cast<double>(new_trap)) {
          cur_lead = c0;
          cur_m = new_m;
          cur_true += trap;
          continue;
        }
      }
      flush();
      cur_start = c0;
      cur_lead = c0;
      cur_m = m;
      cur_true = trap;
    }
    flush();
  } else {
    start_cols.assign(fund_start.begin(), fund_start.end() - 1);
    pattern_lead = start_cols;
    pattern_m.reserve(start_cols.size());
    for (idx_t c : start_cols) pattern_m.push_back(counts[c]);
  }

  f.num_supernodes = static_cast<idx_t>(start_cols.size());
  f.super_start = std::move(start_cols);
  f.super_start.push_back(n);
  for (idx_t s = 0; s < f.num_supernodes; ++s) {
    for (idx_t j = f.super_start[s]; j < f.super_start[static_cast<std::size_t>(s) + 1]; ++j) {
      f.col_super[j] = s;
    }
  }

  // Pattern sizes: every column of a supernode shares the merged pattern of
  // size pattern_m[s] (== counts[first column] when no amalgamation ran).
  f.row_start.assign(static_cast<std::size_t>(f.num_supernodes) + 1, 0);
  f.val_start.assign(static_cast<std::size_t>(f.num_supernodes) + 1, 0);
  for (idx_t s = 0; s < f.num_supernodes; ++s) {
    const offset_t m = pattern_m[s];
    const offset_t w = f.super_start[static_cast<std::size_t>(s) + 1] - f.super_start[s];
    f.row_start[static_cast<std::size_t>(s) + 1] = f.row_start[s] + m;
    f.val_start[static_cast<std::size_t>(s) + 1] = f.val_start[s] + m * w;
  }
  f.rows.assign(static_cast<std::size_t>(f.row_start[f.num_supernodes]), 0);
  f.values.assign(static_cast<std::size_t>(f.val_start[f.num_supernodes]), 0.0);

  // Fill patterns: own columns first, then the below rows in ascending order
  // via the row sweep (k ascending appends ascending rows). Row k belongs to
  // supernode s's pattern iff L(k, lead) != 0 for the pattern-defining lead
  // column (the first column of the last fundamental member), i.e. the lead
  // shows up in ereach(k).
  std::vector<offset_t> fill(f.num_supernodes);
  std::vector<idx_t> lead_super(n, -1);
  for (idx_t s = 0; s < f.num_supernodes; ++s) {
    const idx_t c0 = f.super_start[s];
    const idx_t c1 = f.super_start[static_cast<std::size_t>(s) + 1];
    offset_t pos = f.row_start[s];
    for (idx_t j = c0; j < c1; ++j) f.rows[pos++] = j;
    fill[s] = pos;
    lead_super[pattern_lead[s]] = s;
  }
  std::vector<idx_t> stack(n), mark(n, -1);
  for (idx_t k = 0; k < n; ++k) {
    const idx_t top = ereach(a, k, parent, stack, mark, k);
    for (idx_t t = top; t < n; ++t) {
      const idx_t s = lead_super[stack[t]];
      if (s != -1 && k >= f.super_start[static_cast<std::size_t>(s) + 1]) {
        f.rows[fill[s]++] = k;
      }
    }
  }
#ifndef NDEBUG
  for (idx_t s = 0; s < f.num_supernodes; ++s) {
    assert(fill[s] == f.row_start[static_cast<std::size_t>(s) + 1]);
  }
#endif
  return f;
}

void syrk_panel_lower(const double* a, idx_t lda, idx_t ni, idx_t nj, idx_t k, double* c,
                      idx_t ldc) {
  constexpr idx_t kTile = 4;
  for (idx_t j0 = 0; j0 < nj; j0 += kTile) {
    const idx_t jb = std::min(kTile, nj - j0);
    // Tiles entirely above the i >= j trapezoid are never consumed.
    for (idx_t i0 = j0 - (j0 % kTile); i0 < ni; i0 += kTile) {
      const idx_t ib = std::min(kTile, ni - i0);
      if (ib == kTile && jb == kTile) {
        double acc00 = 0, acc10 = 0, acc20 = 0, acc30 = 0;
        double acc01 = 0, acc11 = 0, acc21 = 0, acc31 = 0;
        double acc02 = 0, acc12 = 0, acc22 = 0, acc32 = 0;
        double acc03 = 0, acc13 = 0, acc23 = 0, acc33 = 0;
        const double* ai = a + i0;
        const double* aj = a + j0;
        for (idx_t t = 0; t < k; ++t) {
          const double r0 = ai[0], r1 = ai[1], r2 = ai[2], r3 = ai[3];
          const double c0 = aj[0], c1 = aj[1], c2 = aj[2], c3 = aj[3];
          acc00 += r0 * c0; acc10 += r1 * c0; acc20 += r2 * c0; acc30 += r3 * c0;
          acc01 += r0 * c1; acc11 += r1 * c1; acc21 += r2 * c1; acc31 += r3 * c1;
          acc02 += r0 * c2; acc12 += r1 * c2; acc22 += r2 * c2; acc32 += r3 * c2;
          acc03 += r0 * c3; acc13 += r1 * c3; acc23 += r2 * c3; acc33 += r3 * c3;
          ai += lda;
          aj += lda;
        }
        double* c0p = c + static_cast<std::size_t>(j0) * ldc + i0;
        double* c1p = c0p + ldc;
        double* c2p = c1p + ldc;
        double* c3p = c2p + ldc;
        c0p[0] = acc00; c0p[1] = acc10; c0p[2] = acc20; c0p[3] = acc30;
        c1p[0] = acc01; c1p[1] = acc11; c1p[2] = acc21; c1p[3] = acc31;
        c2p[0] = acc02; c2p[1] = acc12; c2p[2] = acc22; c2p[3] = acc32;
        c3p[0] = acc03; c3p[1] = acc13; c3p[2] = acc23; c3p[3] = acc33;
      } else {
        double acc[kTile][kTile] = {};
        const double* col = a;
        for (idx_t t = 0; t < k; ++t, col += lda) {
          for (idx_t jj = 0; jj < jb; ++jj) {
            const double cj = col[j0 + jj];
            for (idx_t ii = 0; ii < ib; ++ii) acc[jj][ii] += col[i0 + ii] * cj;
          }
        }
        for (idx_t jj = 0; jj < jb; ++jj) {
          double* out = c + static_cast<std::size_t>(j0 + jj) * ldc + i0;
          for (idx_t ii = 0; ii < ib; ++ii) out[ii] = acc[jj][ii];
        }
      }
    }
  }
}

namespace {

/// Resolved view of one supernode's dense panel.
struct PanelRef {
  idx_t s = 0, c0 = 0, c1 = 0, w = 0, m = 0;
  const idx_t* rs = nullptr;
  double* panel = nullptr;
};

PanelRef panel_of(SupernodalFactor& f, idx_t s) {
  PanelRef p;
  p.s = s;
  p.c0 = f.super_start[s];
  p.c1 = f.super_start[static_cast<std::size_t>(s) + 1];
  p.w = p.c1 - p.c0;
  const offset_t r0 = f.row_start[s];
  p.m = static_cast<idx_t>(f.row_start[static_cast<std::size_t>(s) + 1] - r0);
  p.rs = f.rows.data() + r0;
  p.panel = f.values.data() + f.val_start[s];
  return p;
}

/// Scatter the lower triangle of the (permuted) matrix columns. A is
/// symmetric full storage, so column j reads row j's entries at i >= j.
void scatter_panel(const CsrMatrix& a, const PanelRef& p, const std::vector<idx_t>& relmap) {
  for (idx_t j = p.c0; j < p.c1; ++j) {
    double* col = p.panel + static_cast<std::size_t>(j - p.c0) * p.m;
    const offset_t end = a.row_ptr()[static_cast<std::size_t>(j) + 1];
    for (offset_t q = a.row_ptr()[j]; q < end; ++q) {
      const idx_t i = a.col_idx()[q];
      if (i >= j) col[relmap[i]] = a.values()[q];
    }
  }
}

/// Apply descendant d's pending rank-k update to the rows of panel p that it
/// reaches (all its unconsumed rows < p.c1) and advance d's row cursor.
/// Returns the supernode of d's next unconsumed row, or -1 when exhausted.
idx_t apply_descendant_update(SupernodalFactor& f, std::vector<idx_t>& dptr, idx_t d,
                              const PanelRef& p, const std::vector<idx_t>& relmap,
                              std::vector<double>& scratch) {
  const offset_t dr0 = f.row_start[d];
  const idx_t dm = static_cast<idx_t>(f.row_start[static_cast<std::size_t>(d) + 1] - dr0);
  const idx_t dw = f.super_start[static_cast<std::size_t>(d) + 1] - f.super_start[d];
  const idx_t* drows = f.rows.data() + dr0;
  const double* dpanel = f.values.data() + f.val_start[d];
  const idx_t q0 = dptr[d];
  idx_t q1 = q0;
  while (q1 < dm && drows[q1] < p.c1) ++q1;
  const idx_t nj = q1 - q0;
  const idx_t ni = dm - q0;
  scratch.resize(static_cast<std::size_t>(ni) * nj);
  syrk_panel_lower(dpanel + q0, dm, ni, nj, dw, scratch.data(), ni);
  for (idx_t jj = 0; jj < nj; ++jj) {
    double* col = p.panel + static_cast<std::size_t>(drows[q0 + jj] - p.c0) * p.m;
    const double* src = scratch.data() + static_cast<std::size_t>(jj) * ni;
    for (idx_t ii = jj; ii < ni; ++ii) col[relmap[drows[q0 + ii]]] -= src[ii];
  }
  if (q1 == dm) return -1;
  dptr[d] = q1;
  return f.col_super[drows[q1]];
}

/// Fused dense panel factorization: Cholesky of the w x w diagonal block
/// with the below-diagonal rows updated and scaled in the same column sweep
/// (the columns below the diagonal become L's off-diagonal block).
void dense_panel_factorize(const PanelRef& p) {
  for (idx_t j = 0; j < p.w; ++j) {
    double* colj = p.panel + static_cast<std::size_t>(j) * p.m;
    for (idx_t t = 0; t < j; ++t) {
      const double ljt = p.panel[static_cast<std::size_t>(t) * p.m + j];
      const double* colt = p.panel + static_cast<std::size_t>(t) * p.m;
      for (idx_t i = j; i < p.m; ++i) colj[i] -= ljt * colt[i];
    }
    const double diag = colj[j];
    if (diag <= 0.0) {
      throw NotPositiveDefiniteError();
    }
    const double root = std::sqrt(diag);
    colj[j] = root;
    const double inv = 1.0 / root;
    for (idx_t i = j + 1; i < p.m; ++i) colj[i] *= inv;
  }
}

/// Deterministic elimination-tree partition for the two-phase numeric
/// factorization: disjoint supernodal subtrees of bounded weight, each a
/// contiguous descendant-closed supernode range [lo[i], hi[i]]. sub_of maps
/// each supernode to its subtree (or -1 for the serial top set). Returns
/// empty ranges when the column order defeats the contiguity/closure
/// invariants (possible without an etree postorder).
struct SubtreePartition {
  std::vector<idx_t> lo, hi;       ///< inclusive supernode ranges
  std::vector<idx_t> sub_of;       ///< supernode -> subtree index or -1
};

SubtreePartition partition_subtrees(const CsrMatrix& a, const SupernodalFactor& f) {
  const idx_t n = f.n;
  const idx_t ns = f.num_supernodes;
  SubtreePartition part;
  part.sub_of.assign(ns, -1);
  if (ns <= 1) return part;

  // Supernodal assembly-tree parent (supernode of the first below-panel row)
  // and subtree weights (sum of m*w panel areas). The parent index always
  // exceeds the child's, so one ascending sweep accumulates the weights.
  std::vector<idx_t> sparent(ns, -1);
  std::vector<double> wsub(ns, 0.0);
  double total = 0.0;
  for (idx_t s = 0; s < ns; ++s) {
    const idx_t w = f.super_start[static_cast<std::size_t>(s) + 1] - f.super_start[s];
    const idx_t m = static_cast<idx_t>(f.row_start[static_cast<std::size_t>(s) + 1] -
                                       f.row_start[s]);
    const double weight = static_cast<double>(m) * static_cast<double>(w);
    wsub[s] += weight;
    total += weight;
    if (m > w) sparent[s] = f.col_super[f.rows[f.row_start[s] + w]];
  }
  for (idx_t s = 0; s < ns; ++s) {
    if (sparent[s] != -1) wsub[sparent[s]] += wsub[s];
  }
  // Fixed fan-out target, independent of the thread count — the partition
  // (and therefore every floating-point summation order) depends on the
  // matrix alone.
  const double cap = total / 64.0;

  // Column-level minimum descendant per scalar-etree subtree. parent[j] > j
  // always, so one ascending sweep finalizes each column before propagating.
  const std::vector<idx_t> parent = elimination_tree(a);
  std::vector<idx_t> min_desc(n);
  for (idx_t j = 0; j < n; ++j) min_desc[j] = j;
  for (idx_t j = 0; j < n; ++j) {
    if (parent[j] != -1) min_desc[parent[j]] = std::min(min_desc[parent[j]], min_desc[j]);
  }

  // Maximal light subtrees: wsub <= cap while the parent's subtree exceeds
  // it. wsub is monotone along ancestor chains, so the selected subtrees are
  // disjoint; with a postordered column space each is the contiguous range
  // ending at its root supernode and starting at the root column's minimum
  // descendant.
  bool valid = true;
  for (idx_t s = 0; s < ns && valid; ++s) {
    if (wsub[s] > cap || (sparent[s] != -1 && wsub[sparent[s]] <= cap)) continue;
    const idx_t top_col = f.super_start[static_cast<std::size_t>(s) + 1] - 1;
    const idx_t lo_col = min_desc[top_col];
    const idx_t lo = f.col_super[lo_col];
    if (f.super_start[lo] != lo_col) {  // a supernode straddles the boundary
      valid = false;
      break;
    }
    part.lo.push_back(lo);
    part.hi.push_back(s);
    const idx_t id = static_cast<idx_t>(part.lo.size()) - 1;
    for (idx_t t = lo; t <= s; ++t) {
      if (part.sub_of[t] != -1) {
        valid = false;
        break;
      }
      part.sub_of[t] = id;
    }
  }
  // Descendant closure: no etree edge may enter a subtree from outside it,
  // otherwise an update into the range would originate beyond it.
  if (valid) {
    for (idx_t k = 0; k < n; ++k) {
      const idx_t p = parent[k];
      if (p == -1) continue;
      const idx_t sp = part.sub_of[f.col_super[p]];
      if (sp != -1 && part.sub_of[f.col_super[k]] != sp) {
        valid = false;
        break;
      }
    }
  }
  if (!valid) {
    part.lo.clear();
    part.hi.clear();
    std::fill(part.sub_of.begin(), part.sub_of.end(), -1);
  }
  return part;
}

}  // namespace

void factorize_supernodal(const CsrMatrix& a, SupernodalFactor& f, bool parallel) {
  const idx_t n = f.n;
  const idx_t ns = f.num_supernodes;
  std::vector<idx_t> dptr(ns, 0);
  std::fill(f.values.begin(), f.values.end(), 0.0);  // allow refactorization

  const SubtreePartition part = partition_subtrees(a, f);
  const idx_t nsub = static_cast<idx_t>(part.lo.size());

  // Phase 1: factor the light subtrees. Each subtree is descendant-closed,
  // so its supernodes consume updates that originate inside its range only;
  // the shared head/next_d/dptr slots it touches are its own, which makes
  // the loop race-free. Updates whose next target row lies beyond the
  // subtree are deferred for the serial top phase. Within a subtree the
  // work is the old serial left-looking loop verbatim, so phase-1 panels
  // are bitwise independent of the thread count.
  std::vector<idx_t> head(ns, -1), next_d(ns, -1);
  std::vector<std::vector<idx_t>> deferred(nsub);
  bool failed = false;
#pragma omp parallel if (parallel)
  {
    std::vector<idx_t> relmap(n, -1);
    std::vector<double> scratch;
#pragma omp for schedule(dynamic)
    for (idx_t t = 0; t < nsub; ++t) {
      bool already_failed;
#pragma omp atomic read
      already_failed = failed;
      if (already_failed) continue;
      try {
        for (idx_t s = part.lo[t]; s <= part.hi[t]; ++s) {
          const PanelRef p = panel_of(f, s);
          for (idx_t i = 0; i < p.m; ++i) relmap[p.rs[i]] = i;
          scatter_panel(a, p, relmap);
          idx_t d = head[s];
          head[s] = -1;
          while (d != -1) {
            const idx_t d_after = next_d[d];
            const idx_t tgt = apply_descendant_update(f, dptr, d, p, relmap, scratch);
            if (tgt != -1) {
              if (tgt <= part.hi[t]) {
                next_d[d] = head[tgt];
                head[tgt] = d;
              } else {
                deferred[t].push_back(d);
              }
            }
            d = d_after;
          }
          dense_panel_factorize(p);
          if (p.m > p.w) {
            dptr[s] = p.w;
            const idx_t tgt = f.col_super[p.rs[p.w]];
            if (tgt <= part.hi[t]) {
              next_d[s] = head[tgt];
              head[tgt] = s;
            } else {
              deferred[t].push_back(s);
            }
          }
        }
      } catch (const std::exception&) {
        // Exceptions may not escape an OpenMP region; rethrown below.
#pragma omp atomic write
        failed = true;
      }
    }
  }
  if (failed) throw NotPositiveDefiniteError();

  // Phase 2 (serial): the remaining top supernodes, ascending. Pending
  // update lists are seeded from the deferred lists in subtree-index order
  // — each list's internal order is thread-invariant, so the concatenation
  // is deterministic without sorting. Every deferred or top-phase update
  // targets a top supernode (its target is an etree ancestor of a subtree
  // root, and wsub grows monotonically along ancestors), so the vectors
  // below are complete by the time each supernode is reached.
  std::vector<std::vector<idx_t>> pending(ns);
  for (idx_t t = 0; t < nsub; ++t) {
    for (const idx_t d : deferred[t]) {
      pending[f.col_super[f.rows[f.row_start[d] + dptr[d]]]].push_back(d);
    }
  }
  std::vector<idx_t> relmap(n, -1);
  std::vector<double> scratch;
  for (idx_t s = 0; s < ns; ++s) {
    if (part.sub_of[s] != -1) continue;
    const PanelRef p = panel_of(f, s);
    for (idx_t i = 0; i < p.m; ++i) relmap[p.rs[i]] = i;
    scatter_panel(a, p, relmap);
    for (std::size_t qi = 0; qi < pending[s].size(); ++qi) {
      const idx_t d = pending[s][qi];
      const idx_t tgt = apply_descendant_update(f, dptr, d, p, relmap, scratch);
      if (tgt != -1) {
        assert(part.sub_of[tgt] == -1);
        pending[tgt].push_back(d);
      }
    }
    dense_panel_factorize(p);
    if (p.m > p.w) {
      dptr[s] = p.w;
      pending[f.col_super[p.rs[p.w]]].push_back(s);
    }
  }
}

namespace {

// Fixed-width solve kernels: the per-case loop is a compile-time constant so
// the case values live in registers and the loop body compiles to straight
// FMA code instead of a trip-count-one runtime loop (which costs 2-3x on the
// single-RHS path the transient stepper hammers). `stride` is the full panel
// width; each kernel touches the NRHS consecutive cases at x + i * stride.
// Per case the operation order is identical across widths, so chunked panel
// solves reproduce one-at-a-time solves bitwise.

template <int NRHS>
void forward_solve_fixed(const SupernodalFactor& f, double* x, idx_t stride) {
  for (idx_t s = 0; s < f.num_supernodes; ++s) {
    const idx_t c0 = f.super_start[s];
    const idx_t w = f.super_start[static_cast<std::size_t>(s) + 1] - c0;
    const offset_t r0 = f.row_start[s];
    const idx_t m = static_cast<idx_t>(f.row_start[static_cast<std::size_t>(s) + 1] - r0);
    const idx_t* rs = f.rows.data() + r0;
    const double* panel = f.values.data() + f.val_start[s];
    for (idx_t j = 0; j < w; ++j) {
      const double* colj = panel + static_cast<std::size_t>(j) * m;
      double* xj = x + static_cast<std::size_t>(c0 + j) * stride;
      const double inv = 1.0 / colj[j];
      double v[NRHS];
      for (int r = 0; r < NRHS; ++r) {
        v[r] = xj[r] * inv;
        xj[r] = v[r];
      }
      for (idx_t i = j + 1; i < w; ++i) {
        const double lij = colj[i];
        double* xi = x + static_cast<std::size_t>(c0 + i) * stride;
        for (int r = 0; r < NRHS; ++r) xi[r] -= lij * v[r];
      }
      for (idx_t i = w; i < m; ++i) {
        const double lij = colj[i];
        double* xi = x + static_cast<std::size_t>(rs[i]) * stride;
        for (int r = 0; r < NRHS; ++r) xi[r] -= lij * v[r];
      }
    }
  }
}

template <int NRHS>
void backward_solve_fixed(const SupernodalFactor& f, double* x, idx_t stride) {
  for (idx_t s = f.num_supernodes - 1; s >= 0; --s) {
    const idx_t c0 = f.super_start[s];
    const idx_t w = f.super_start[static_cast<std::size_t>(s) + 1] - c0;
    const offset_t r0 = f.row_start[s];
    const idx_t m = static_cast<idx_t>(f.row_start[static_cast<std::size_t>(s) + 1] - r0);
    const idx_t* rs = f.rows.data() + r0;
    const double* panel = f.values.data() + f.val_start[s];
    for (idx_t j = w - 1; j >= 0; --j) {
      const double* colj = panel + static_cast<std::size_t>(j) * m;
      double* xj = x + static_cast<std::size_t>(c0 + j) * stride;
      double acc[NRHS];
      for (int r = 0; r < NRHS; ++r) acc[r] = xj[r];
      for (idx_t i = j + 1; i < w; ++i) {
        const double lij = colj[i];
        const double* xi = x + static_cast<std::size_t>(c0 + i) * stride;
        for (int r = 0; r < NRHS; ++r) acc[r] -= lij * xi[r];
      }
      for (idx_t i = w; i < m; ++i) {
        const double lij = colj[i];
        const double* xi = x + static_cast<std::size_t>(rs[i]) * stride;
        for (int r = 0; r < NRHS; ++r) acc[r] -= lij * xi[r];
      }
      const double inv = 1.0 / colj[j];
      for (int r = 0; r < NRHS; ++r) xj[r] = acc[r] * inv;
    }
  }
}

/// Run the fixed-width kernels over the panel in chunks of 8/4/2/1 cases.
template <typename Fn8, typename Fn4, typename Fn2, typename Fn1>
void dispatch_chunks(idx_t nrhs, Fn8&& f8, Fn4&& f4, Fn2&& f2, Fn1&& f1) {
  idx_t done = 0;
  while (done < nrhs) {
    const idx_t left = nrhs - done;
    if (left >= 8) {
      f8(done);
      done += 8;
    } else if (left >= 4) {
      f4(done);
      done += 4;
    } else if (left >= 2) {
      f2(done);
      done += 2;
    } else {
      f1(done);
      done += 1;
    }
  }
}

}  // namespace

void supernodal_forward_solve(const SupernodalFactor& f, double* x, idx_t nrhs) {
  dispatch_chunks(
      nrhs, [&](idx_t at) { forward_solve_fixed<8>(f, x + at, nrhs); },
      [&](idx_t at) { forward_solve_fixed<4>(f, x + at, nrhs); },
      [&](idx_t at) { forward_solve_fixed<2>(f, x + at, nrhs); },
      [&](idx_t at) { forward_solve_fixed<1>(f, x + at, nrhs); });
}

void supernodal_backward_solve(const SupernodalFactor& f, double* x, idx_t nrhs) {
  dispatch_chunks(
      nrhs, [&](idx_t at) { backward_solve_fixed<8>(f, x + at, nrhs); },
      [&](idx_t at) { backward_solve_fixed<4>(f, x + at, nrhs); },
      [&](idx_t at) { backward_solve_fixed<2>(f, x + at, nrhs); },
      [&](idx_t at) { backward_solve_fixed<1>(f, x + at, nrhs); });
}

}  // namespace ms::la
