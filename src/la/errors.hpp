#pragma once
// la-level failure types. la/ sits below core/ in the layering, so it throws
// its own exception classes; SweepEngine's catch-classifier maps them onto
// core::SimErrorCode (NotPositiveDefiniteError -> kNotPositiveDefinite).

#include <stdexcept>
#include <string>

namespace ms::la {

/// Cholesky pivot breakdown: a (supposedly SPD) operator produced a
/// non-positive pivot during numeric factorization.
class NotPositiveDefiniteError : public std::runtime_error {
 public:
  explicit NotPositiveDefiniteError(const std::string& detail)
      : std::runtime_error("SparseCholesky: matrix not positive definite" +
                           (detail.empty() ? "" : " (" + detail + ")")) {}
  NotPositiveDefiniteError() : NotPositiveDefiniteError("") {}
};

}  // namespace ms::la
