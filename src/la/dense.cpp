#include "la/dense.hpp"

#include <cassert>
#include <cmath>
#include <stdexcept>

namespace ms::la {

DenseMatrix::DenseMatrix(idx_t rows, idx_t cols, double fill)
    : rows_(rows), cols_(cols), data_(static_cast<std::size_t>(rows) * cols, fill) {}

void DenseMatrix::mul(const Vec& x, Vec& y) const {
  assert(static_cast<idx_t>(x.size()) == cols_);
  y.assign(rows_, 0.0);
  for (idx_t i = 0; i < rows_; ++i) {
    const double* row = &data_[static_cast<std::size_t>(i) * cols_];
    double sum = 0.0;
    for (idx_t j = 0; j < cols_; ++j) sum += row[j] * x[j];
    y[i] = sum;
  }
}

void DenseMatrix::mul_transpose(const Vec& x, Vec& y) const {
  assert(static_cast<idx_t>(x.size()) == rows_);
  y.assign(cols_, 0.0);
  for (idx_t i = 0; i < rows_; ++i) {
    const double* row = &data_[static_cast<std::size_t>(i) * cols_];
    const double xi = x[i];
    for (idx_t j = 0; j < cols_; ++j) y[j] += row[j] * xi;
  }
}

DenseMatrix DenseMatrix::matmul(const DenseMatrix& other) const {
  assert(cols_ == other.rows_);
  DenseMatrix c(rows_, other.cols_);
  for (idx_t i = 0; i < rows_; ++i) {
    for (idx_t k = 0; k < cols_; ++k) {
      const double aik = (*this)(i, k);
      if (aik == 0.0) continue;
      for (idx_t j = 0; j < other.cols_; ++j) c(i, j) += aik * other(k, j);
    }
  }
  return c;
}

DenseMatrix DenseMatrix::transpose_matmul(const DenseMatrix& other) const {
  assert(rows_ == other.rows_);
  DenseMatrix c(cols_, other.cols_);
  for (idx_t k = 0; k < rows_; ++k) {
    for (idx_t i = 0; i < cols_; ++i) {
      const double aki = (*this)(k, i);
      if (aki == 0.0) continue;
      for (idx_t j = 0; j < other.cols_; ++j) c(i, j) += aki * other(k, j);
    }
  }
  return c;
}

DenseMatrix DenseMatrix::transposed() const {
  DenseMatrix t(cols_, rows_);
  for (idx_t i = 0; i < rows_; ++i) {
    for (idx_t j = 0; j < cols_; ++j) t(j, i) = (*this)(i, j);
  }
  return t;
}

double DenseMatrix::frobenius_diff(const DenseMatrix& other) const {
  assert(rows_ == other.rows_ && cols_ == other.cols_);
  double sum = 0.0;
  for (std::size_t i = 0; i < data_.size(); ++i) {
    const double d = data_[i] - other.data_[i];
    sum += d * d;
  }
  return std::sqrt(sum);
}

double DenseMatrix::symmetry_error() const {
  assert(rows_ == cols_);
  double m = 0.0;
  for (idx_t i = 0; i < rows_; ++i) {
    for (idx_t j = i + 1; j < cols_; ++j) m = std::max(m, std::fabs((*this)(i, j) - (*this)(j, i)));
  }
  return m;
}

DenseMatrix DenseMatrix::identity(idx_t n) {
  DenseMatrix m(n, n);
  for (idx_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

DenseLu::DenseLu(const DenseMatrix& a) : lu_(a), perm_(a.rows()) {
  if (a.rows() != a.cols()) throw std::invalid_argument("DenseLu: matrix must be square");
  const idx_t n = lu_.rows();
  for (idx_t i = 0; i < n; ++i) perm_[i] = i;

  for (idx_t k = 0; k < n; ++k) {
    // Partial pivoting: find the largest magnitude in column k at/below row k.
    idx_t pivot = k;
    double best = std::fabs(lu_(k, k));
    for (idx_t i = k + 1; i < n; ++i) {
      const double v = std::fabs(lu_(i, k));
      if (v > best) {
        best = v;
        pivot = i;
      }
    }
    if (best == 0.0) throw std::runtime_error("DenseLu: singular matrix");
    if (pivot != k) {
      for (idx_t j = 0; j < n; ++j) std::swap(lu_(k, j), lu_(pivot, j));
      std::swap(perm_[k], perm_[pivot]);
      perm_sign_ = -perm_sign_;
    }
    const double inv_pivot = 1.0 / lu_(k, k);
    for (idx_t i = k + 1; i < n; ++i) {
      const double factor = lu_(i, k) * inv_pivot;
      lu_(i, k) = factor;
      if (factor == 0.0) continue;
      for (idx_t j = k + 1; j < n; ++j) lu_(i, j) -= factor * lu_(k, j);
    }
  }
}

Vec DenseLu::solve(const Vec& b) const {
  const idx_t n = lu_.rows();
  assert(static_cast<idx_t>(b.size()) == n);
  Vec x(n);
  for (idx_t i = 0; i < n; ++i) x[i] = b[perm_[i]];
  // Forward substitution with unit lower triangle.
  for (idx_t i = 1; i < n; ++i) {
    double sum = x[i];
    for (idx_t j = 0; j < i; ++j) sum -= lu_(i, j) * x[j];
    x[i] = sum;
  }
  // Backward substitution.
  for (idx_t i = n - 1; i >= 0; --i) {
    double sum = x[i];
    for (idx_t j = i + 1; j < n; ++j) sum -= lu_(i, j) * x[j];
    x[i] = sum / lu_(i, i);
  }
  return x;
}

DenseMatrix DenseLu::solve(const DenseMatrix& b) const {
  const idx_t n = lu_.rows();
  assert(b.rows() == n);
  DenseMatrix x(n, b.cols());
  Vec col(n);
  for (idx_t j = 0; j < b.cols(); ++j) {
    for (idx_t i = 0; i < n; ++i) col[i] = b(i, j);
    const Vec sol = solve(col);
    for (idx_t i = 0; i < n; ++i) x(i, j) = sol[i];
  }
  return x;
}

double DenseLu::determinant() const {
  double det = perm_sign_;
  for (idx_t i = 0; i < lu_.rows(); ++i) det *= lu_(i, i);
  return det;
}

DenseCholesky::DenseCholesky(const DenseMatrix& a) : l_(a) {
  if (a.rows() != a.cols()) throw std::invalid_argument("DenseCholesky: matrix must be square");
  const idx_t n = l_.rows();
  for (idx_t j = 0; j < n; ++j) {
    double diag = l_(j, j);
    for (idx_t k = 0; k < j; ++k) diag -= l_(j, k) * l_(j, k);
    if (diag <= 0.0) throw std::runtime_error("DenseCholesky: matrix not positive definite");
    const double ljj = std::sqrt(diag);
    l_(j, j) = ljj;
    for (idx_t i = j + 1; i < n; ++i) {
      double sum = l_(i, j);
      for (idx_t k = 0; k < j; ++k) sum -= l_(i, k) * l_(j, k);
      l_(i, j) = sum / ljj;
    }
    for (idx_t i = 0; i < j; ++i) l_(i, j) = 0.0;  // keep strictly lower form
  }
}

Vec DenseCholesky::solve(const Vec& b) const {
  const idx_t n = l_.rows();
  assert(static_cast<idx_t>(b.size()) == n);
  Vec x = b;
  for (idx_t i = 0; i < n; ++i) {
    double sum = x[i];
    for (idx_t j = 0; j < i; ++j) sum -= l_(i, j) * x[j];
    x[i] = sum / l_(i, i);
  }
  for (idx_t i = n - 1; i >= 0; --i) {
    double sum = x[i];
    for (idx_t j = i + 1; j < n; ++j) sum -= l_(j, i) * x[j];
    x[i] = sum / l_(i, i);
  }
  return x;
}

}  // namespace ms::la
