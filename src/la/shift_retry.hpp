#pragma once
// SPD failure recovery for SparseCholesky. When the numeric phase hits a
// non-positive pivot (ill-conditioned stiffness, bad material inputs), retry
// with an escalating diagonal shift A + sigma*I:
//
//   sigma_0 = initial_scale * ||diag(A)||_inf    (1e-12 scale by default)
//   sigma_{k+1} = 2 * sigma_k                    (up to max_attempts tries)
//
// A shifted factorization is a usable preconditioner-quality solve, not the
// exact operator, so the result is flagged degraded() and the shift is
// recorded for GlobalSolveStats / ScenarioResult reporting. If every
// attempt fails, the last NotPositiveDefiniteError propagates.

#include <memory>

#include "la/cholesky.hpp"
#include "la/sparse.hpp"

namespace ms::la {

struct ShiftRetryOptions {
  bool enabled = true;         ///< false = plain factorization, no recovery
  double initial_scale = 1e-12;  ///< sigma_0 = initial_scale * ||diag||_inf
  int max_attempts = 8;        ///< shifted retries after the clean attempt
};

struct ShiftRetryResult {
  std::shared_ptr<SparseCholesky> factor;
  double shift = 0.0;  ///< final diagonal shift (0 = clean factorization)
  int attempts = 1;    ///< total factorization attempts, clean one included
  [[nodiscard]] bool degraded() const { return shift != 0.0; }
};

/// Factor `a` (SPD expected), retrying with escalating diagonal shifts on
/// pivot breakdown. `stage` names the call site for fault-injection probes
/// and metrics. Throws NotPositiveDefiniteError if all attempts fail.
ShiftRetryResult factor_with_shift_retry(const CsrMatrix& a, const SparseCholesky::Options& options,
                                         const ShiftRetryOptions& retry, const char* stage);

}  // namespace ms::la
