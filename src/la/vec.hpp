#pragma once
// Free-function kernels over std::vector<double>. Vectors stay plain
// std::vector so callers can interoperate with mesh/FEM code without wrapper
// types; only the hot kernels live here.

#include <cstddef>
#include <vector>

#include "la/types.hpp"

namespace ms::la {

using Vec = std::vector<double>;

/// Euclidean inner product; sizes must match.
double dot(const Vec& x, const Vec& y);

/// Euclidean norm.
double norm2(const Vec& x);

/// Max-abs (infinity) norm.
double norm_inf(const Vec& x);

/// y += a * x.
void axpy(double a, const Vec& x, Vec& y);

/// y = a * x + b * y.
void axpby(double a, const Vec& x, double b, Vec& y);

/// x *= a.
void scale(Vec& x, double a);

/// Elementwise y = x (resizes y).
void assign(const Vec& x, Vec& y);

/// All-zero vector of length n.
Vec zeros(std::size_t n);

/// Maximum |x[i] - y[i]|; sizes must match.
double max_abs_diff(const Vec& x, const Vec& y);

/// True iff every entry is finite (no NaN/Inf). Intended for O(n) health
/// sweeps at stage boundaries, not inner loops.
bool all_finite(const double* x, std::size_t n);
bool all_finite(const Vec& x);

}  // namespace ms::la
