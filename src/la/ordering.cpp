#include "la/ordering.hpp"

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <cstdlib>
#include <queue>

namespace ms::la {

Permutation Permutation::identity(idx_t n) {
  Permutation p;
  p.perm.resize(n);
  p.inv_perm.resize(n);
  for (idx_t i = 0; i < n; ++i) {
    p.perm[i] = i;
    p.inv_perm[i] = i;
  }
  return p;
}

Permutation Permutation::then(const Permutation& second) const {
  assert(size() == second.size());
  const idx_t n = size();
  Permutation out;
  out.perm.resize(n);
  out.inv_perm.resize(n);
  for (idx_t i = 0; i < n; ++i) out.perm[i] = perm[second.perm[i]];
  for (idx_t i = 0; i < n; ++i) out.inv_perm[out.perm[i]] = i;
  return out;
}

namespace {

/// BFS from `start`, returning the node visited last (approximates a
/// peripheral node after a couple of sweeps).
idx_t bfs_far_node(const CsrMatrix& a, idx_t start, std::vector<int>& mark, int stamp) {
  std::queue<idx_t> q;
  q.push(start);
  mark[start] = stamp;
  idx_t last = start;
  while (!q.empty()) {
    const idx_t u = q.front();
    q.pop();
    last = u;
    const offset_t end = a.row_ptr()[static_cast<std::size_t>(u) + 1];
    for (offset_t k = a.row_ptr()[u]; k < end; ++k) {
      const idx_t v = a.col_idx()[k];
      if (mark[v] != stamp) {
        mark[v] = stamp;
        q.push(v);
      }
    }
  }
  return last;
}

}  // namespace

Permutation reverse_cuthill_mckee(const CsrMatrix& a) {
  assert(a.rows() == a.cols());
  const idx_t n = a.rows();
  std::vector<idx_t> degree(n);
  for (idx_t i = 0; i < n; ++i) {
    degree[i] = static_cast<idx_t>(a.row_ptr()[static_cast<std::size_t>(i) + 1] - a.row_ptr()[i]);
  }

  std::vector<idx_t> order;
  order.reserve(n);
  std::vector<bool> visited(n, false);
  std::vector<int> mark(n, -1);
  int stamp = 0;

  for (idx_t seed = 0; seed < n; ++seed) {
    if (visited[seed]) continue;
    // Pick a pseudo-peripheral start: two BFS sweeps from the component seed.
    idx_t start = bfs_far_node(a, seed, mark, stamp++);
    start = bfs_far_node(a, start, mark, stamp++);

    // Cuthill-McKee BFS, neighbors in increasing-degree order.
    std::queue<idx_t> q;
    q.push(start);
    visited[start] = true;
    std::vector<idx_t> nbrs;
    while (!q.empty()) {
      const idx_t u = q.front();
      q.pop();
      order.push_back(u);
      nbrs.clear();
      const offset_t end = a.row_ptr()[static_cast<std::size_t>(u) + 1];
      for (offset_t k = a.row_ptr()[u]; k < end; ++k) {
        const idx_t v = a.col_idx()[k];
        if (!visited[v]) {
          visited[v] = true;
          nbrs.push_back(v);
        }
      }
      std::sort(nbrs.begin(), nbrs.end(),
                [&](idx_t x, idx_t y) { return degree[x] < degree[y]; });
      for (idx_t v : nbrs) q.push(v);
    }
  }
  std::reverse(order.begin(), order.end());

  Permutation p;
  p.perm = std::move(order);
  p.inv_perm.assign(n, 0);
  for (idx_t i = 0; i < n; ++i) p.inv_perm[p.perm[i]] = i;
  return p;
}

namespace {

/// Quotient-graph state of the AMD elimination. One flat workspace `iw`
/// holds every adjacency list; lists are compacted in place as elements
/// absorb variables and garbage-collected when the free tail runs out.
///
/// Node states (i in 0..n-1):
///  - live variable:   elen[i] >= 0, nv[i] > 0. List = elen[i] element ids
///                     followed by len[i]-elen[i] variable ids.
///  - live element:    elen[i] == -1. List = the len[i] variables of its
///                     pattern Le (dead entries pruned lazily).
///  - dead:            elen[i] == -2 (absorbed element, merged or
///                     mass-eliminated variable; variables also have nv == 0).
/// nv[i] < 0 temporarily flags membership of the current pivot pattern Lp.
struct AmdState {
  idx_t n = 0;
  std::vector<idx_t> iw;
  std::vector<offset_t> pe;  // list start per node
  std::vector<idx_t> len, elen, nv, degree;
  std::vector<idx_t> head, next, last;  // degree lists (ties: lowest index)

  void remove_from_degree_list(idx_t i) {
    if (last[i] != -1) {
      next[last[i]] = next[i];
    } else {
      head[degree[i]] = next[i];
    }
    if (next[i] != -1) last[next[i]] = last[i];
  }

  void push_degree_list(idx_t i) {
    const idx_t d = degree[i];
    last[i] = -1;
    next[i] = head[d];
    if (head[d] != -1) last[head[d]] = i;
    head[d] = i;
  }

  /// Compact all live lists to the front of iw (pruning entries that are
  /// dead forever) and return the new free offset.
  offset_t collect_garbage() {
    std::vector<idx_t> live;
    live.reserve(n);
    for (idx_t i = 0; i < n; ++i) {
      if (elen[i] == -2 || len[i] == 0) continue;
      if (elen[i] >= 0 && nv[i] == 0) continue;
      live.push_back(i);
    }
    std::sort(live.begin(), live.end(), [&](idx_t x, idx_t y) { return pe[x] < pe[y]; });
    offset_t free_ptr = 0;
    for (idx_t i : live) {
      const offset_t src = pe[i];
      pe[i] = free_ptr;
      if (elen[i] == -1) {
        // Element list: variables only; drop dead ones.
        idx_t kept = 0;
        for (idx_t k = 0; k < len[i]; ++k) {
          const idx_t j = iw[src + k];
          if (nv[j] != 0) iw[free_ptr + kept++] = j;
        }
        len[i] = kept;
      } else {
        // Variable list: elements first (drop absorbed), then variables
        // (drop dead).
        idx_t kept = 0;
        for (idx_t k = 0; k < elen[i]; ++k) {
          const idx_t e = iw[src + k];
          if (elen[e] == -1) iw[free_ptr + kept++] = e;
        }
        const idx_t kept_elems = kept;
        for (idx_t k = elen[i]; k < len[i]; ++k) {
          const idx_t j = iw[src + k];
          if (nv[j] != 0) iw[free_ptr + kept++] = j;
        }
        elen[i] = kept_elems;
        len[i] = kept;
      }
      free_ptr += len[i];
    }
    return free_ptr;
  }
};

}  // namespace

Permutation amd_ordering(const CsrMatrix& a) {
  assert(a.rows() == a.cols());
  const idx_t n = a.rows();
  if (n == 0) return Permutation::identity(0);

  const auto& rp = a.row_ptr();
  const auto& ci = a.col_idx();

  AmdState s;
  s.n = n;
  s.pe.assign(n, 0);
  s.len.assign(n, 0);
  s.elen.assign(n, 0);
  s.nv.assign(n, 1);
  s.degree.assign(n, 0);
  s.head.assign(static_cast<std::size_t>(n) + 1, -1);
  s.next.assign(n, -1);
  s.last.assign(n, -1);

  // Strict (off-diagonal) adjacency; the diagonal never influences fill.
  offset_t nnz_strict = 0;
  for (idx_t i = 0; i < n; ++i) {
    idx_t d = 0;
    for (offset_t k = rp[i]; k < rp[static_cast<std::size_t>(i) + 1]; ++k) {
      if (ci[k] != i) ++d;
    }
    s.len[i] = d;
    s.degree[i] = d;
    nnz_strict += d;
  }
  s.iw.resize(static_cast<std::size_t>(nnz_strict + nnz_strict / 5 +
                                       4 * static_cast<offset_t>(n) + 16));
  offset_t pfree = 0;
  for (idx_t i = 0; i < n; ++i) {
    s.pe[i] = pfree;
    for (offset_t k = rp[i]; k < rp[static_cast<std::size_t>(i) + 1]; ++k) {
      if (ci[k] != i) s.iw[pfree++] = ci[k];
    }
  }
  for (idx_t i = n - 1; i >= 0; --i) s.push_degree_list(i);

  // Hash buckets for indistinguishable-node detection; stamps in w never
  // wrap (int64 with increments bounded by n+1 per pivot).
  std::vector<idx_t> hhead(n, -1), hnext(n, -1), hash_of(n, 0);
  std::vector<std::int64_t> w(n, 0);
  std::int64_t wflg = 1;

  std::vector<idx_t> parent(n, -1);  // absorption target (order extraction)
  std::vector<char> is_pivot(n, 0);
  std::vector<idx_t> pivot_order;
  pivot_order.reserve(n);

  idx_t nel = 0;
  idx_t mindeg = 0;

  while (nel < n) {
    // --- pivot selection: lowest-index node of minimum external degree ----
    while (s.head[mindeg] == -1) ++mindeg;
    const idx_t p = s.head[mindeg];
    s.remove_from_degree_list(p);
    is_pivot[p] = 1;
    pivot_order.push_back(p);
    idx_t nvpiv = s.nv[p];
    nel += nvpiv;

    // --- make room for the pivot pattern Lp ------------------------------
    offset_t needed = s.len[p] - s.elen[p];
    for (idx_t k = 0; k < s.elen[p]; ++k) {
      const idx_t e = s.iw[s.pe[p] + k];
      if (s.elen[e] == -1) needed += s.len[e];
    }
    if (pfree + needed > static_cast<offset_t>(s.iw.size())) {
      pfree = s.collect_garbage();
      if (pfree + needed > static_cast<offset_t>(s.iw.size())) {
        s.iw.resize(static_cast<std::size_t>(pfree + needed + n));
      }
    }

    // --- scan 1: gather Lp, absorbing the pivot's elements ---------------
    s.nv[p] = -nvpiv;
    const offset_t lp_begin = pfree;
    idx_t dk = 0;  // weighted |Lp|
    const offset_t p_start = s.pe[p];
    for (idx_t k = s.elen[p]; k < s.len[p]; ++k) {
      const idx_t j = s.iw[p_start + k];
      if (s.nv[j] <= 0) continue;  // dead or already gathered
      dk += s.nv[j];
      s.nv[j] = -s.nv[j];
      s.iw[pfree++] = j;
      s.remove_from_degree_list(j);
    }
    for (idx_t k = 0; k < s.elen[p]; ++k) {
      const idx_t e = s.iw[p_start + k];
      if (s.elen[e] != -2) {
        for (idx_t t = 0; t < s.len[e]; ++t) {
          const idx_t j = s.iw[s.pe[e] + t];
          if (s.nv[j] <= 0) continue;
          dk += s.nv[j];
          s.nv[j] = -s.nv[j];
          s.iw[pfree++] = j;
          s.remove_from_degree_list(j);
        }
        s.elen[e] = -2;  // e absorbed into p
      }
    }
    const offset_t lp_end = pfree;
    s.pe[p] = lp_begin;
    s.len[p] = static_cast<idx_t>(lp_end - lp_begin);
    s.elen[p] = -1;  // p is an element now
    s.degree[p] = dk;

    // --- scan 2a: set differences w[e] - mark = |Le \ Lp| ----------------
    const std::int64_t mark = wflg;
    for (offset_t q = lp_begin; q < lp_end; ++q) {
      const idx_t i = s.iw[q];
      const idx_t nvi = -s.nv[i];
      const std::int64_t wnvi = mark - nvi;
      for (idx_t k = 0; k < s.elen[i]; ++k) {
        const idx_t e = s.iw[s.pe[i] + k];
        if (s.elen[e] != -1) continue;
        if (w[e] >= mark) {
          w[e] -= nvi;
        } else {
          w[e] = static_cast<std::int64_t>(s.degree[e]) + wnvi;
        }
      }
    }
    wflg = mark + n + 1;

    // --- scan 2b: approximate degrees, list compaction, absorption -------
    for (offset_t q = lp_begin; q < lp_end; ++q) {
      const idx_t i = s.iw[q];
      const idx_t nvi = -s.nv[i];
      const offset_t p1 = s.pe[i];
      offset_t pn = p1;
      std::uint64_t h = 0;
      idx_t d = 0;
      const idx_t eln = s.elen[i];
      for (idx_t k = 0; k < eln; ++k) {
        const idx_t e = s.iw[p1 + k];
        if (s.elen[e] != -1) continue;
        const std::int64_t dext = w[e] - mark;
        if (dext > 0) {
          d += static_cast<idx_t>(dext);
          s.iw[pn++] = e;
          h += static_cast<std::uint64_t>(e);
        } else {
          s.elen[e] = -2;  // aggressive absorption: Le ⊆ Lp
        }
      }
      const offset_t p3 = pn;
      for (idx_t k = eln; k < s.len[i]; ++k) {
        const idx_t j = s.iw[p1 + k];
        if (s.nv[j] <= 0) continue;  // dead or in Lp
        d += s.nv[j];
        s.iw[pn++] = j;
        h += static_cast<std::uint64_t>(j);
      }
      if (d == 0) {
        // Mass elimination: pattern(i) ⊆ Lp ∪ {p} — eliminate i with p.
        parent[i] = p;
        nel += nvi;
        dk -= nvi;
        nvpiv += nvi;
        s.nv[i] = 0;
        s.elen[i] = -2;
        s.len[i] = 0;
      } else {
        s.degree[i] = std::min(s.degree[i], d);
        // Rebuild the list as [p, surviving elements, surviving variables].
        // i lost at least one entry (p or an absorbed element), so the slot
        // at pn is free.
        s.iw[pn] = s.iw[p3];
        s.iw[p3] = s.iw[p1];
        s.iw[p1] = p;
        s.elen[i] = static_cast<idx_t>(p3 - p1) + 1;
        s.len[i] = static_cast<idx_t>(pn - p1) + 1;
        const idx_t bucket = static_cast<idx_t>(h % static_cast<std::uint64_t>(n));
        hash_of[i] = bucket;
        hnext[i] = hhead[bucket];
        hhead[bucket] = i;
      }
    }
    s.degree[p] = dk;

    // --- scan 3: merge indistinguishable variables (equal lists) ---------
    for (offset_t q = lp_begin; q < lp_end; ++q) {
      const idx_t i = s.iw[q];
      if (s.nv[i] >= 0) continue;  // mass-eliminated
      const idx_t bucket = hash_of[i];
      idx_t b = hhead[bucket];
      if (b == -1) continue;  // bucket already processed
      hhead[bucket] = -1;
      for (; b != -1 && hnext[b] != -1; b = hnext[b]) {
        if (s.nv[b] >= 0) continue;  // merged away meanwhile
        const idx_t blen = s.len[b];
        const idx_t belen = s.elen[b];
        const std::int64_t stamp = wflg++;
        // Both lists start with p; compare the remaining entries as sets.
        for (idx_t k = 1; k < blen; ++k) w[s.iw[s.pe[b] + k]] = stamp;
        idx_t prev = b;
        for (idx_t j = hnext[b]; j != -1; j = hnext[j]) {
          bool same = s.nv[j] < 0 && s.len[j] == blen && s.elen[j] == belen;
          for (idx_t k = 1; same && k < blen; ++k) same = (w[s.iw[s.pe[j] + k]] == stamp);
          if (same) {
            parent[j] = b;
            s.nv[b] += s.nv[j];  // both negative
            s.nv[j] = 0;
            s.elen[j] = -2;
            s.len[j] = 0;
            hnext[prev] = hnext[j];
          } else {
            prev = j;
          }
        }
      }
    }

    // --- finalize: external degrees and degree-list reinsertion ----------
    offset_t lp_live = lp_begin;
    for (offset_t q = lp_begin; q < lp_end; ++q) {
      const idx_t i = s.iw[q];
      if (s.nv[i] >= 0) continue;
      s.nv[i] = -s.nv[i];
      idx_t d = std::min(s.degree[i] + dk - s.nv[i], n - nel - s.nv[i]);
      d = std::max(d, idx_t{0});
      s.degree[i] = d;
      s.push_degree_list(i);
      if (d < mindeg) mindeg = d;
      s.iw[lp_live++] = i;  // prune dead members from element p's list
    }
    s.nv[p] = nvpiv;
    s.len[p] = static_cast<idx_t>(lp_live - lp_begin);
    pfree = lp_live;
    if (s.len[p] == 0) s.elen[p] = -2;  // root element with no pattern
  }

  // --- order extraction: pivots in elimination order, each followed by the
  // variables its supervariable absorbed (chains resolved to the pivot). ---
  for (idx_t i = 0; i < n; ++i) {
    if (is_pivot[i] || parent[i] == -1) continue;
    idx_t root = parent[i];
    while (!is_pivot[root]) root = parent[root];
    // Path-compress so long merge chains resolve once.
    idx_t j = i;
    while (!is_pivot[j]) {
      const idx_t up = parent[j];
      parent[j] = root;
      j = up;
    }
  }
  std::vector<idx_t> member_count(n, 0);
  for (idx_t i = 0; i < n; ++i) {
    if (!is_pivot[i]) ++member_count[parent[i]];
  }
  std::vector<idx_t> member_start(static_cast<std::size_t>(n) + 1, 0);
  for (idx_t i = 0; i < n; ++i) member_start[static_cast<std::size_t>(i) + 1] = member_start[i] + member_count[i];
  std::vector<idx_t> members(static_cast<std::size_t>(member_start[n]));
  std::vector<idx_t> fill_ptr(member_start.begin(), member_start.end() - 1);
  for (idx_t i = 0; i < n; ++i) {
    if (!is_pivot[i]) members[fill_ptr[parent[i]]++] = i;  // ascending per root
  }

  Permutation out;
  out.perm.reserve(n);
  for (idx_t p : pivot_order) {
    out.perm.push_back(p);
    for (idx_t k = member_start[p]; k < member_start[static_cast<std::size_t>(p) + 1]; ++k) {
      out.perm.push_back(members[k]);
    }
  }
  assert(static_cast<idx_t>(out.perm.size()) == n);
  out.inv_perm.assign(n, 0);
  for (idx_t i = 0; i < n; ++i) out.inv_perm[out.perm[i]] = i;
  return out;
}

CsrMatrix permute_symmetric(const CsrMatrix& a, const Permutation& p) {
  assert(a.rows() == a.cols());
  assert(p.size() == a.rows());
  TripletList t(a.rows(), a.cols());
  t.reserve(static_cast<std::size_t>(a.nnz()));
  for (idx_t r = 0; r < a.rows(); ++r) {
    const idx_t nr = p.inv_perm[r];
    const offset_t end = a.row_ptr()[static_cast<std::size_t>(r) + 1];
    for (offset_t k = a.row_ptr()[r]; k < end; ++k) {
      t.add(nr, p.inv_perm[a.col_idx()[k]], a.values()[k]);
    }
  }
  return CsrMatrix::from_triplets(t);
}

Vec permute_vector(const Vec& x, const Permutation& p) {
  Vec y(x.size());
  for (idx_t i = 0; i < p.size(); ++i) y[i] = x[p.perm[i]];
  return y;
}

Vec unpermute_vector(const Vec& x, const Permutation& p) {
  Vec y(x.size());
  for (idx_t i = 0; i < p.size(); ++i) y[p.perm[i]] = x[i];
  return y;
}

idx_t bandwidth(const CsrMatrix& a) {
  idx_t bw = 0;
  for (idx_t r = 0; r < a.rows(); ++r) {
    const offset_t end = a.row_ptr()[static_cast<std::size_t>(r) + 1];
    for (offset_t k = a.row_ptr()[r]; k < end; ++k) {
      bw = std::max(bw, static_cast<idx_t>(std::abs(static_cast<long>(a.col_idx()[k]) - r)));
    }
  }
  return bw;
}

}  // namespace ms::la
