#include "la/ordering.hpp"

#include <algorithm>
#include <cassert>
#include <cstdlib>
#include <queue>

namespace ms::la {

Permutation Permutation::identity(idx_t n) {
  Permutation p;
  p.perm.resize(n);
  p.inv_perm.resize(n);
  for (idx_t i = 0; i < n; ++i) {
    p.perm[i] = i;
    p.inv_perm[i] = i;
  }
  return p;
}

namespace {

/// BFS from `start`, returning the node visited last (approximates a
/// peripheral node after a couple of sweeps).
idx_t bfs_far_node(const CsrMatrix& a, idx_t start, std::vector<int>& mark, int stamp) {
  std::queue<idx_t> q;
  q.push(start);
  mark[start] = stamp;
  idx_t last = start;
  while (!q.empty()) {
    const idx_t u = q.front();
    q.pop();
    last = u;
    const offset_t end = a.row_ptr()[static_cast<std::size_t>(u) + 1];
    for (offset_t k = a.row_ptr()[u]; k < end; ++k) {
      const idx_t v = a.col_idx()[k];
      if (mark[v] != stamp) {
        mark[v] = stamp;
        q.push(v);
      }
    }
  }
  return last;
}

}  // namespace

Permutation reverse_cuthill_mckee(const CsrMatrix& a) {
  assert(a.rows() == a.cols());
  const idx_t n = a.rows();
  std::vector<idx_t> degree(n);
  for (idx_t i = 0; i < n; ++i) {
    degree[i] = static_cast<idx_t>(a.row_ptr()[static_cast<std::size_t>(i) + 1] - a.row_ptr()[i]);
  }

  std::vector<idx_t> order;
  order.reserve(n);
  std::vector<bool> visited(n, false);
  std::vector<int> mark(n, -1);
  int stamp = 0;

  for (idx_t seed = 0; seed < n; ++seed) {
    if (visited[seed]) continue;
    // Pick a pseudo-peripheral start: two BFS sweeps from the component seed.
    idx_t start = bfs_far_node(a, seed, mark, stamp++);
    start = bfs_far_node(a, start, mark, stamp++);

    // Cuthill-McKee BFS, neighbors in increasing-degree order.
    std::queue<idx_t> q;
    q.push(start);
    visited[start] = true;
    std::vector<idx_t> nbrs;
    while (!q.empty()) {
      const idx_t u = q.front();
      q.pop();
      order.push_back(u);
      nbrs.clear();
      const offset_t end = a.row_ptr()[static_cast<std::size_t>(u) + 1];
      for (offset_t k = a.row_ptr()[u]; k < end; ++k) {
        const idx_t v = a.col_idx()[k];
        if (!visited[v]) {
          visited[v] = true;
          nbrs.push_back(v);
        }
      }
      std::sort(nbrs.begin(), nbrs.end(),
                [&](idx_t x, idx_t y) { return degree[x] < degree[y]; });
      for (idx_t v : nbrs) q.push(v);
    }
  }
  std::reverse(order.begin(), order.end());

  Permutation p;
  p.perm = std::move(order);
  p.inv_perm.assign(n, 0);
  for (idx_t i = 0; i < n; ++i) p.inv_perm[p.perm[i]] = i;
  return p;
}

CsrMatrix permute_symmetric(const CsrMatrix& a, const Permutation& p) {
  assert(a.rows() == a.cols());
  assert(p.size() == a.rows());
  TripletList t(a.rows(), a.cols());
  t.reserve(static_cast<std::size_t>(a.nnz()));
  for (idx_t r = 0; r < a.rows(); ++r) {
    const idx_t nr = p.inv_perm[r];
    const offset_t end = a.row_ptr()[static_cast<std::size_t>(r) + 1];
    for (offset_t k = a.row_ptr()[r]; k < end; ++k) {
      t.add(nr, p.inv_perm[a.col_idx()[k]], a.values()[k]);
    }
  }
  return CsrMatrix::from_triplets(t);
}

Vec permute_vector(const Vec& x, const Permutation& p) {
  Vec y(x.size());
  for (idx_t i = 0; i < p.size(); ++i) y[i] = x[p.perm[i]];
  return y;
}

Vec unpermute_vector(const Vec& x, const Permutation& p) {
  Vec y(x.size());
  for (idx_t i = 0; i < p.size(); ++i) y[p.perm[i]] = x[i];
  return y;
}

idx_t bandwidth(const CsrMatrix& a) {
  idx_t bw = 0;
  for (idx_t r = 0; r < a.rows(); ++r) {
    const offset_t end = a.row_ptr()[static_cast<std::size_t>(r) + 1];
    for (offset_t k = a.row_ptr()[r]; k < end; ++k) {
      bw = std::max(bw, static_cast<idx_t>(std::abs(static_cast<long>(a.col_idx()[k]) - r)));
    }
  }
  return bw;
}

}  // namespace ms::la
