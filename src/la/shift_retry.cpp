#include "la/shift_retry.hpp"

#include <algorithm>
#include <utility>

#include "la/errors.hpp"
#include "obs/metrics.hpp"
#include "util/fault_injector.hpp"
#include "util/log.hpp"

namespace ms::la {
namespace {

/// Overwrite the stored diagonal of `m` with base_diag[i] + shift. Returns
/// false if some row stores no diagonal entry (can't shift in place).
bool set_shifted_diagonal(CsrMatrix& m, const Vec& base_diag, double shift) {
  const auto& row_ptr = m.row_ptr();
  const auto& col_idx = m.col_idx();
  auto& values = m.values();
  for (idx_t i = 0; i < m.rows(); ++i) {
    bool found = false;
    for (offset_t k = row_ptr[i]; k < row_ptr[i + 1]; ++k) {
      if (col_idx[k] == i) {
        values[k] = base_diag[static_cast<std::size_t>(i)] + shift;
        found = true;
        break;
      }
    }
    if (!found) return false;
  }
  return true;
}

}  // namespace

ShiftRetryResult factor_with_shift_retry(const CsrMatrix& a, const SparseCholesky::Options& options,
                                         const ShiftRetryOptions& retry, const char* stage) {
  ShiftRetryResult result;
  // The `spd` fault action simulates a pivot breakdown of the clean attempt,
  // driving the retry ladder without needing a genuinely indefinite operator.
  bool inject_breakdown = util::FaultInjector::enabled() &&
                          util::FaultInjector::global().consume(stage) == util::FaultAction::kSpd;
  if (!inject_breakdown) {
    try {
      result.factor = std::make_shared<SparseCholesky>(a, options);
      return result;
    } catch (const NotPositiveDefiniteError&) {
      if (!retry.enabled) throw;
    }
  } else if (!retry.enabled) {
    throw NotPositiveDefiniteError(std::string("injected breakdown at ") + stage);
  }

  const Vec base_diag = a.diagonal();
  double diag_norm = norm_inf(base_diag);
  double shift = retry.initial_scale * (diag_norm > 0.0 ? diag_norm : 1.0);
  CsrMatrix shifted = a;  // one copy, diagonal rewritten per attempt

  auto& retries = obs::MetricRegistry::global().counter("robustness.spd_shift_retries");
  for (int attempt = 0; attempt < retry.max_attempts; ++attempt, shift *= 2.0) {
    ++result.attempts;
    retries.add(1);
    if (!set_shifted_diagonal(shifted, base_diag, shift)) {
      throw NotPositiveDefiniteError(std::string(stage) +
                                     ": matrix stores no diagonal entry, cannot shift-retry");
    }
    try {
      result.factor = std::make_shared<SparseCholesky>(shifted, options);
      result.shift = shift;
      MS_LOG_WARN("%s: factored with diagonal shift %.3e after %d attempts (degraded)", stage,
                  shift, result.attempts);
      return result;
    } catch (const NotPositiveDefiniteError&) {
      if (attempt + 1 == retry.max_attempts) {
        throw NotPositiveDefiniteError(std::string(stage) + ": still indefinite after " +
                                       std::to_string(result.attempts) +
                                       " attempts, final shift " + std::to_string(shift));
      }
    }
  }
  // Unreachable: the loop either returns or rethrows on the last attempt.
  throw NotPositiveDefiniteError(stage);
}

}  // namespace ms::la
