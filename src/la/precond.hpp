#pragma once
// Preconditioners for the Krylov solvers. Jacobi (diagonal) is the default
// for the small, well-conditioned reduced global systems; symmetric
// Gauss-Seidel (SSOR with omega=1) accelerates the fine-mesh reference FEM
// solves where the elasticity operator is much stiffer.

#include <memory>

#include "la/sparse.hpp"

namespace ms::la {

/// Interface: z = M^{-1} r for a fixed matrix A provided at construction.
class Preconditioner {
 public:
  virtual ~Preconditioner() = default;

  /// Apply the preconditioner: z = M^{-1} r.
  virtual void apply(const Vec& r, Vec& z) const = 0;

  /// Resident bytes for the memory ledger.
  [[nodiscard]] virtual std::size_t memory_bytes() const = 0;
};

/// Identity (no preconditioning).
class IdentityPreconditioner final : public Preconditioner {
 public:
  void apply(const Vec& r, Vec& z) const override { z = r; }
  [[nodiscard]] std::size_t memory_bytes() const override { return 0; }
};

/// Diagonal scaling; zero diagonals are treated as 1 so the apply stays safe.
class JacobiPreconditioner final : public Preconditioner {
 public:
  explicit JacobiPreconditioner(const CsrMatrix& a);
  void apply(const Vec& r, Vec& z) const override;
  [[nodiscard]] std::size_t memory_bytes() const override;

 private:
  Vec inv_diag_;
};

/// Symmetric successive over-relaxation (forward + backward Gauss-Seidel
/// sweep). Keeps a reference to A; A must outlive the preconditioner.
class SsorPreconditioner final : public Preconditioner {
 public:
  explicit SsorPreconditioner(const CsrMatrix& a, double omega = 1.0);
  void apply(const Vec& r, Vec& z) const override;
  [[nodiscard]] std::size_t memory_bytes() const override;

 private:
  const CsrMatrix& a_;
  double omega_;
  Vec inv_diag_;
};

/// Factory helper keyed by name: "none", "jacobi", "ssor".
std::unique_ptr<Preconditioner> make_preconditioner(const std::string& name, const CsrMatrix& a);

}  // namespace ms::la
