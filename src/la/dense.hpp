#pragma once
// Dense row-major matrix with the factorizations the ROM layer needs:
// LU with partial pivoting (general square solves) and Cholesky (SPD element
// matrices). Sizes here are small (element matrices, reduced models), so
// clarity wins over blocking.

#include <cstddef>
#include <vector>

#include "la/vec.hpp"

namespace ms::la {

class DenseMatrix {
 public:
  DenseMatrix() = default;
  DenseMatrix(idx_t rows, idx_t cols, double fill = 0.0);

  [[nodiscard]] idx_t rows() const { return rows_; }
  [[nodiscard]] idx_t cols() const { return cols_; }

  double& operator()(idx_t i, idx_t j) { return data_[static_cast<std::size_t>(i) * cols_ + j]; }
  double operator()(idx_t i, idx_t j) const { return data_[static_cast<std::size_t>(i) * cols_ + j]; }

  [[nodiscard]] const std::vector<double>& data() const { return data_; }
  std::vector<double>& data() { return data_; }

  /// y = A * x.
  void mul(const Vec& x, Vec& y) const;

  /// y = A^T * x.
  void mul_transpose(const Vec& x, Vec& y) const;

  /// C = A * B.
  [[nodiscard]] DenseMatrix matmul(const DenseMatrix& other) const;

  /// C = A^T * B.
  [[nodiscard]] DenseMatrix transpose_matmul(const DenseMatrix& other) const;

  [[nodiscard]] DenseMatrix transposed() const;

  /// Frobenius norm of (A - B).
  [[nodiscard]] double frobenius_diff(const DenseMatrix& other) const;

  /// Max |A(i,j) - A(j,i)| (symmetry check; square only).
  [[nodiscard]] double symmetry_error() const;

  /// Identity matrix of order n.
  static DenseMatrix identity(idx_t n);

 private:
  idx_t rows_ = 0;
  idx_t cols_ = 0;
  std::vector<double> data_;
};

/// LU factorization with partial pivoting of a square matrix.
class DenseLu {
 public:
  /// Factors a copy of `a`; throws std::runtime_error on exact singularity.
  explicit DenseLu(const DenseMatrix& a);

  /// Solve A x = b; b.size() must equal the order.
  [[nodiscard]] Vec solve(const Vec& b) const;

  /// Solve for each column of B, returning X with the same shape.
  [[nodiscard]] DenseMatrix solve(const DenseMatrix& b) const;

  /// Determinant from the factorization (sign included).
  [[nodiscard]] double determinant() const;

 private:
  DenseMatrix lu_;
  std::vector<idx_t> perm_;
  int perm_sign_ = 1;
};

/// Cholesky (L L^T) factorization of an SPD matrix.
class DenseCholesky {
 public:
  /// Factors a copy of `a`; throws std::runtime_error if not positive definite.
  explicit DenseCholesky(const DenseMatrix& a);

  [[nodiscard]] Vec solve(const Vec& b) const;

 private:
  DenseMatrix l_;
};

}  // namespace ms::la
