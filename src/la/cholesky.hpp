#pragma once
// Sparse simplicial Cholesky (L L^T) for SPD systems, in the style of
// CSparse: elimination tree + row-pattern reach for the symbolic phase and an
// up-looking numeric factorization. A reverse Cuthill-McKee pre-ordering
// (default on) keeps fill low on the structured FEM matrices.
//
// This is the workhorse of the one-shot local stage, where one factorization
// is reused for the n+1 local basis solves.

#include <cstddef>
#include <vector>

#include "la/ordering.hpp"
#include "la/sparse.hpp"

namespace ms::la {

class SparseCholesky {
 public:
  struct Options {
    bool use_rcm = true;  ///< apply reverse Cuthill-McKee before factoring
  };

  /// Factor a symmetric positive definite matrix (full symmetric storage).
  /// Throws std::runtime_error if a non-positive pivot is hit.
  explicit SparseCholesky(const CsrMatrix& a);
  SparseCholesky(const CsrMatrix& a, Options options);

  /// Solve A x = b.
  [[nodiscard]] Vec solve(const Vec& b) const;

  /// Solve in permuted space with preallocated workspace (hot path for the
  /// n+1 local solves): x and b are in original ordering.
  void solve_inplace(const Vec& b, Vec& x) const;

  /// Same, but with caller-provided scratch instead of the shared member
  /// workspace — safe to call concurrently from multiple threads on one
  /// factor (the factor itself is immutable after construction). `work` is
  /// resized to order() on first use.
  void solve_with(const Vec& b, Vec& x, Vec& work) const;

  [[nodiscard]] idx_t order() const { return n_; }
  [[nodiscard]] offset_t factor_nnz() const { return static_cast<offset_t>(lx_.size()); }

  /// Bytes held by the factor + permutation (for the memory ledger).
  [[nodiscard]] std::size_t memory_bytes() const;

 private:
  void analyze(const CsrMatrix& a);   // etree + column counts
  void factorize(const CsrMatrix& a); // up-looking numeric phase

  idx_t n_ = 0;
  Permutation perm_;
  std::vector<idx_t> parent_;  // elimination tree
  // L stored column-major (CSC); first entry of each column is the diagonal.
  std::vector<offset_t> lp_;
  std::vector<idx_t> li_;
  std::vector<double> lx_;
  mutable Vec work_;  // permuted rhs/solution scratch
};

}  // namespace ms::la
