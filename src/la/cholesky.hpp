#pragma once
// Sparse Cholesky (L L^T) for SPD systems. Two numeric back ends share one
// symbolic analysis (elimination tree + column counts, CSparse style):
//
//  - supernodal (default): columns with identical structure are factored as
//    dense column panels with register-tiled rank-k updates — the fast path
//    for the 3D FEM matrices every solve in this repository produces.
//  - simplicial: the scalar up-looking column-at-a-time loop, kept as the
//    reference/fallback implementation.
//
// Orderings: approximate minimum degree (default — far less fill than RCM
// on 3D hex meshes), reverse Cuthill-McKee, or natural. The permuted matrix
// is additionally postordered by the elimination tree so supernode columns
// land consecutively (fill-neutral).
//
// This is the workhorse of the one-shot local stage (one factorization,
// n+1 basis solves — batched via solve_multi), the global direct path, the
// transient θ-stepper, the package model, and the reference-FEM harness.

#include <cstddef>
#include <vector>

#include "la/ordering.hpp"
#include "la/sparse.hpp"
#include "la/supernodal.hpp"

namespace ms::la {

class SparseCholesky {
 public:
  /// Fill-reducing pre-ordering of the matrix.
  enum class Ordering { kAmd, kRcm, kNatural };
  /// Numeric back end.
  enum class Method { kSupernodal, kSimplicial };

  struct Options {
    Ordering ordering = Ordering::kAmd;
    Method method = Method::kSupernodal;
    /// Column cap per supernodal panel (keeps the dense working set near
    /// the register/cache sweet spot).
    idx_t max_supernode_width = 48;
    /// Relaxed supernode amalgamation: merge adjacent etree child/parent
    /// supernodes with near-identical structure into one wider panel when
    /// the explicit zeros introduced stay within this fraction of the merged
    /// panel's trapezoid (0 disables; 0.1-0.3 is typical). Values are
    /// unchanged — padded entries are exact zeros — but factor_nnz and
    /// memory_bytes count the padding, and fewer/wider panels shift the
    /// numeric phase further into the dense rank-k kernels.
    double relax_supernodes = 0.0;
    /// Run the supernodal numeric phase's subtree pass under OpenMP
    /// (independent elimination-tree subtrees factor concurrently; the
    /// serial top pass consumes their deferred updates in a fixed order).
    /// The schedule is independent of the thread count, so the factor is
    /// bitwise identical with the flag on or off. Ignored by the simplicial
    /// back end.
    bool parallel_numeric = true;
  };

  /// Factor a symmetric positive definite matrix (full symmetric storage).
  /// Throws std::runtime_error if a non-positive pivot is hit.
  explicit SparseCholesky(const CsrMatrix& a);
  SparseCholesky(const CsrMatrix& a, Options options);

  /// Solve A x = b.
  [[nodiscard]] Vec solve(const Vec& b) const;

  /// Solve in permuted space with preallocated workspace (hot path for
  /// repeated solves): x and b are in original ordering.
  void solve_inplace(const Vec& b, Vec& x) const;

  /// Same, but with caller-provided scratch instead of the shared member
  /// workspace — safe to call concurrently from multiple threads on one
  /// factor (the factor itself is immutable after construction). `work` is
  /// resized on first use.
  void solve_with(const Vec& b, Vec& x, Vec& work) const;

  /// Multi-RHS panel solve: b and x are column-major n x nrhs blocks (each
  /// right-hand side one contiguous column). The factor is traversed once
  /// for the whole panel, so nrhs solves cost roughly one factor sweep of
  /// memory traffic instead of nrhs. Per column, the arithmetic matches the
  /// single-RHS path bitwise.
  void solve_multi(const double* b, double* x, idx_t nrhs) const;

  /// Thread-safe variant with caller-provided scratch (resized to
  /// n * nrhs).
  void solve_multi_with(const double* b, double* x, idx_t nrhs, Vec& work) const;

  /// Convenience: solve for each column of a column-major panel stored as a
  /// Vec of size order() * nrhs.
  [[nodiscard]] Vec solve_multi(const Vec& b, idx_t nrhs) const;

  /// Convenience: pack separate right-hand sides into one panel, solve, and
  /// unpack — one solution per input case.
  [[nodiscard]] std::vector<Vec> solve_multi(const std::vector<Vec>& cases) const;

  [[nodiscard]] idx_t order() const { return n_; }

  /// Nonzeros of L, diagonal included (supernodal: the panel trapezoids).
  [[nodiscard]] offset_t factor_nnz() const;

  /// nnz(L) / nnz(tril(A)) — 1.0 means no fill.
  [[nodiscard]] double fill_ratio() const;

  /// Supernode count (0 on the simplicial back end).
  [[nodiscard]] idx_t num_supernodes() const;

  [[nodiscard]] Ordering ordering() const { return options_.ordering; }
  [[nodiscard]] Method method() const { return options_.method; }
  [[nodiscard]] const char* ordering_name() const;
  [[nodiscard]] const char* method_name() const;

  /// Bytes held to produce and apply the factor: the factor itself
  /// (values + patterns + supernode metadata), the permutation, the solve
  /// workspace, and the permuted copy of the matrix the numeric phase
  /// consumed (freed after construction but part of the peak footprint the
  /// memory ledger must own).
  [[nodiscard]] std::size_t memory_bytes() const;

  /// Export L (permuted ordering, compressed sparse column, diagonal first
  /// per column on the simplicial back end, ascending rows on both) for
  /// tests and diagnostics.
  void extract_factor(std::vector<offset_t>& col_ptr, std::vector<idx_t>& row_idx,
                      std::vector<double>& values) const;

 private:
  void factorize(const CsrMatrix& a); // up-looking numeric phase (simplicial)

  idx_t n_ = 0;
  Options options_;
  Permutation perm_;
  offset_t matrix_lower_nnz_ = 0;       // nnz(tril(A)), for fill_ratio
  std::size_t permuted_matrix_bytes_ = 0;

  // Simplicial back end: L column-major (CSC), diagonal first per column.
  std::vector<idx_t> parent_;  // elimination tree
  std::vector<offset_t> lp_;
  std::vector<idx_t> li_;
  std::vector<double> lx_;

  // Supernodal back end.
  SupernodalFactor snf_;

  mutable Vec work_;  // permuted rhs/solution scratch
};

}  // namespace ms::la
