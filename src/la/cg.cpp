#include "la/cg.hpp"

#include <cmath>

namespace ms::la {

IterativeResult conjugate_gradient(const std::function<void(const Vec&, Vec&)>& apply_a, const Vec& b,
                                   Vec& x, const Preconditioner* precond,
                                   const IterativeOptions& options) {
  const std::size_t n = b.size();
  IterativeResult result;
  result.rhs_norm = norm2(b);
  const double target = std::max(options.rel_tol * result.rhs_norm, options.abs_tol);

  if (!options.use_initial_guess || x.size() != n) x.assign(n, 0.0);

  Vec r(n), z(n), p(n), ap(n);
  apply_a(x, ap);
  for (std::size_t i = 0; i < n; ++i) r[i] = b[i] - ap[i];

  double rnorm = norm2(r);
  if (rnorm <= target || result.rhs_norm == 0.0) {
    result.converged = true;
    result.residual_norm = rnorm;
    return result;
  }

  auto apply_m = [&](const Vec& rr, Vec& zz) {
    if (precond != nullptr) {
      precond->apply(rr, zz);
    } else {
      zz = rr;
    }
  };

  apply_m(r, z);
  p = z;
  double rz = dot(r, z);

  for (idx_t it = 1; it <= options.max_iterations; ++it) {
    apply_a(p, ap);
    const double pap = dot(p, ap);
    if (!std::isfinite(pap)) {
      result.breakdown = true;
      result.breakdown_reason = "non-finite curvature p.Ap";
      break;
    }
    if (pap <= 0.0) {
      // Loss of positive definiteness: CG's recurrence is meaningless on an
      // indefinite/singular operator. Structured breakdown, not silent bail.
      result.breakdown = true;
      result.breakdown_reason = "indefinite operator (p.Ap <= 0)";
      break;
    }
    const double alpha = rz / pap;
    axpy(alpha, p, x);
    axpy(-alpha, ap, r);
    rnorm = norm2(r);
    result.iterations = it;
    if (!std::isfinite(rnorm)) {
      result.breakdown = true;
      result.breakdown_reason = "non-finite residual";
      break;
    }
    if (rnorm <= target) {
      result.converged = true;
      break;
    }
    apply_m(r, z);
    const double rz_new = dot(r, z);
    const double beta = rz_new / rz;
    rz = rz_new;
    for (std::size_t i = 0; i < n; ++i) p[i] = z[i] + beta * p[i];
  }
  result.residual_norm = rnorm;
  return result;
}

IterativeResult conjugate_gradient(const CsrMatrix& a, const Vec& b, Vec& x,
                                   const Preconditioner* precond, const IterativeOptions& options) {
  return conjugate_gradient([&a](const Vec& in, Vec& out) { a.mul(in, out); }, b, x, precond,
                            options);
}

}  // namespace ms::la
