#pragma once
// Restarted GMRES. The paper solves the reduced global system with GMRES
// (Sec. 4.3); we provide it alongside CG (the lifted system is symmetric
// positive definite, so both work — the solver ablation bench compares them).

#include "la/cg.hpp"  // IterativeOptions / IterativeResult
#include "la/precond.hpp"
#include "la/sparse.hpp"

namespace ms::la {

struct GmresOptions : IterativeOptions {
  idx_t restart = 50;  ///< Krylov subspace dimension between restarts
};

/// Solve A x = b with left-preconditioned restarted GMRES.
IterativeResult gmres(const CsrMatrix& a, const Vec& b, Vec& x, const Preconditioner* precond,
                      const GmresOptions& options);

}  // namespace ms::la
