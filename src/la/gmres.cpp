#include "la/gmres.hpp"

#include <cmath>
#include <vector>

namespace ms::la {

IterativeResult gmres(const CsrMatrix& a, const Vec& b, Vec& x, const Preconditioner* precond,
                      const GmresOptions& options) {
  const std::size_t n = b.size();
  const idx_t m = options.restart;
  IterativeResult result;
  result.rhs_norm = norm2(b);
  const double target = std::max(options.rel_tol * result.rhs_norm, options.abs_tol);

  if (!options.use_initial_guess || x.size() != n) x.assign(n, 0.0);
  if (result.rhs_norm == 0.0) {
    result.converged = true;
    return result;
  }

  auto apply_m = [&](const Vec& in, Vec& out) {
    if (precond != nullptr) {
      precond->apply(in, out);
    } else {
      out = in;
    }
  };

  // Arnoldi basis (m+1 vectors) and Hessenberg in column-major-ish layout.
  std::vector<Vec> v(static_cast<std::size_t>(m) + 1, Vec(n));
  std::vector<std::vector<double>> h(static_cast<std::size_t>(m) + 1,
                                     std::vector<double>(m, 0.0));
  std::vector<double> cs(m), sn(m), g(static_cast<std::size_t>(m) + 1);
  Vec r(n), w(n), tmp(n);

  idx_t total_iters = 0;
  double prev_outer_residual = -1.0;
  while (total_iters < options.max_iterations) {
    // True residual decides convergence; the preconditioned residual only
    // drives the Krylov recurrence (comparing M^{-1} r against a target
    // derived from |b| would exit far too early for scaling preconditioners).
    a.mul(x, tmp);
    for (std::size_t i = 0; i < n; ++i) tmp[i] = b[i] - tmp[i];
    result.residual_norm = norm2(tmp);
    if (result.residual_norm <= target) {
      result.converged = true;
      return result;
    }
    if (!std::isfinite(result.residual_norm)) {
      result.breakdown = true;
      result.breakdown_reason = "non-finite residual";
      return result;
    }
    // A restart cycle that made no progress means the operator is singular
    // or the system inconsistent — looping to max_iterations would just
    // repeat it. Structured breakdown instead.
    if (prev_outer_residual >= 0.0 && result.residual_norm >= prev_outer_residual * (1.0 - 1e-12)) {
      result.breakdown = true;
      result.breakdown_reason = "stagnation (restart cycle made no progress)";
      return result;
    }
    prev_outer_residual = result.residual_norm;
    apply_m(tmp, r);
    const double beta = norm2(r);
    if (beta == 0.0) {
      result.converged = true;
      return result;
    }
    if (!std::isfinite(beta)) {
      result.breakdown = true;
      result.breakdown_reason = "non-finite preconditioned residual";
      return result;
    }

    for (std::size_t i = 0; i < n; ++i) v[0][i] = r[i] / beta;
    std::fill(g.begin(), g.end(), 0.0);
    g[0] = beta;
    // Inner-loop exit threshold in the preconditioned norm, proportional to
    // the current preconditioned/true residual ratio; the outer true-residual
    // check above remains authoritative.
    const double inner_target = target * beta / result.residual_norm;

    idx_t k = 0;
    for (; k < m && total_iters < options.max_iterations; ++k, ++total_iters) {
      // w = M^{-1} A v_k
      a.mul(v[k], tmp);
      apply_m(tmp, w);
      // Modified Gram-Schmidt.
      for (idx_t i = 0; i <= k; ++i) {
        h[i][k] = dot(w, v[i]);
        axpy(-h[i][k], v[i], w);
      }
      h[static_cast<std::size_t>(k) + 1][k] = norm2(w);
      if (h[static_cast<std::size_t>(k) + 1][k] > 0.0) {
        for (std::size_t i = 0; i < n; ++i) {
          v[static_cast<std::size_t>(k) + 1][i] = w[i] / h[static_cast<std::size_t>(k) + 1][k];
        }
      }
      // Apply accumulated Givens rotations to the new column.
      for (idx_t i = 0; i < k; ++i) {
        const double t = cs[i] * h[i][k] + sn[i] * h[static_cast<std::size_t>(i) + 1][k];
        h[static_cast<std::size_t>(i) + 1][k] =
            -sn[i] * h[i][k] + cs[i] * h[static_cast<std::size_t>(i) + 1][k];
        h[i][k] = t;
      }
      // New rotation annihilating the subdiagonal.
      const double hk = h[k][k];
      const double hk1 = h[static_cast<std::size_t>(k) + 1][k];
      const double denom = std::hypot(hk, hk1);
      if (denom == 0.0) {
        cs[k] = 1.0;
        sn[k] = 0.0;
      } else {
        cs[k] = hk / denom;
        sn[k] = hk1 / denom;
      }
      h[k][k] = cs[k] * hk + sn[k] * hk1;
      h[static_cast<std::size_t>(k) + 1][k] = 0.0;
      g[static_cast<std::size_t>(k) + 1] = -sn[k] * g[k];
      g[k] = cs[k] * g[k];

      result.iterations = total_iters + 1;
      if (std::fabs(g[static_cast<std::size_t>(k) + 1]) <= inner_target) {
        ++k;
        break;
      }
    }

    // Solve the small triangular system and update x. A zero or non-finite
    // pivot means the Hessenberg lost rank (singular operator): report the
    // breakdown and leave x at its last consistent state.
    std::vector<double> y(k, 0.0);
    bool y_ok = true;
    for (idx_t i = k - 1; i >= 0; --i) {
      double sum = g[i];
      for (idx_t j = i + 1; j < k; ++j) sum -= h[i][j] * y[j];
      if (h[i][i] == 0.0) {
        y_ok = false;
        break;
      }
      y[i] = sum / h[i][i];
      if (!std::isfinite(y[i])) {
        y_ok = false;
        break;
      }
    }
    if (!y_ok) {
      result.breakdown = true;
      result.breakdown_reason = "rank-deficient Hessenberg (singular operator)";
      return result;
    }
    for (idx_t i = 0; i < k; ++i) axpy(y[i], v[i], x);

    // Convergence check on the true residual.
    a.mul(x, tmp);
    for (std::size_t i = 0; i < n; ++i) tmp[i] = b[i] - tmp[i];
    result.residual_norm = norm2(tmp);
    if (result.residual_norm <= std::max(options.rel_tol * result.rhs_norm, options.abs_tol)) {
      result.converged = true;
      return result;
    }
  }
  return result;
}

}  // namespace ms::la
