#pragma once
// Sparse matrices: a COO triplet accumulator for FEM assembly and an
// immutable CSR matrix for solves. Duplicate triplets are summed during
// compression, which is exactly the FEM assembly semantic.

#include <cstddef>
#include <stdexcept>
#include <utility>
#include <vector>

#include "la/vec.hpp"

namespace ms::la {

/// Coordinate-format accumulator. add() is O(1); build CSR when done.
class TripletList {
 public:
  TripletList() = default;
  TripletList(idx_t rows, idx_t cols) : rows_(rows), cols_(cols) {}

  void reserve(std::size_t n) {
    is_.reserve(n);
    js_.reserve(n);
    vs_.reserve(n);
  }

  /// Append a contribution; duplicates are summed at compression time.
  void add(idx_t i, idx_t j, double v) {
    is_.push_back(i);
    js_.push_back(j);
    vs_.push_back(v);
  }

  /// Adopt prebuilt parallel arrays (sizes must match): the fast path for
  /// assemblers that fill fixed per-element slices concurrently and hand the
  /// result over in one move instead of serial add() calls.
  static TripletList from_parts(idx_t rows, idx_t cols, std::vector<idx_t> is,
                                std::vector<idx_t> js, std::vector<double> vs) {
    if (is.size() != js.size() || is.size() != vs.size()) {
      throw std::invalid_argument("TripletList::from_parts: array sizes must match");
    }
    TripletList t(rows, cols);
    t.is_ = std::move(is);
    t.js_ = std::move(js);
    t.vs_ = std::move(vs);
    return t;
  }

  [[nodiscard]] std::size_t size() const { return vs_.size(); }
  [[nodiscard]] idx_t rows() const { return rows_; }
  [[nodiscard]] idx_t cols() const { return cols_; }

  [[nodiscard]] const std::vector<idx_t>& row_indices() const { return is_; }
  [[nodiscard]] const std::vector<idx_t>& col_indices() const { return js_; }
  [[nodiscard]] const std::vector<double>& values() const { return vs_; }

 private:
  idx_t rows_ = 0;
  idx_t cols_ = 0;
  std::vector<idx_t> is_, js_;
  std::vector<double> vs_;
};

/// Compressed sparse row matrix (sorted column indices within each row).
class CsrMatrix {
 public:
  CsrMatrix() = default;

  /// Compress triplets, summing duplicates and dropping exact zeros produced
  /// by cancellation only if `drop_zeros` is set (kept by default so symbolic
  /// structure is stable across value changes).
  static CsrMatrix from_triplets(const TripletList& t, bool drop_zeros = false);

  /// Build directly from raw CSR arrays (must be sorted per row).
  static CsrMatrix from_raw(idx_t rows, idx_t cols, std::vector<offset_t> row_ptr,
                            std::vector<idx_t> col_idx, std::vector<double> values);

  [[nodiscard]] idx_t rows() const { return rows_; }
  [[nodiscard]] idx_t cols() const { return cols_; }
  [[nodiscard]] offset_t nnz() const { return static_cast<offset_t>(values_.size()); }

  [[nodiscard]] const std::vector<offset_t>& row_ptr() const { return row_ptr_; }
  [[nodiscard]] const std::vector<idx_t>& col_idx() const { return col_idx_; }
  [[nodiscard]] const std::vector<double>& values() const { return values_; }
  std::vector<double>& values() { return values_; }

  /// y = A x.
  void mul(const Vec& x, Vec& y) const;

  /// y += a * (A x).
  void mul_add(double a, const Vec& x, Vec& y) const;

  /// Entry lookup (binary search within the row); 0 if not stored.
  [[nodiscard]] double coeff(idx_t i, idx_t j) const;

  /// Diagonal entries (0 where absent).
  [[nodiscard]] Vec diagonal() const;

  /// Max |A(i,j) - A(j,i)| over stored entries (structure must be symmetric
  /// for an exact answer; missing partners count as zeros).
  [[nodiscard]] double symmetry_error() const;

  /// Submatrix A(rows_keep, cols_keep) where the keep arrays map old->new
  /// index or -1 to drop. new_rows/new_cols give the submatrix shape.
  [[nodiscard]] CsrMatrix submatrix(const std::vector<idx_t>& row_map, idx_t new_rows,
                                    const std::vector<idx_t>& col_map, idx_t new_cols) const;

  /// Resident bytes (values + indices + row pointers), for the memory ledger.
  [[nodiscard]] std::size_t memory_bytes() const;

 private:
  idx_t rows_ = 0;
  idx_t cols_ = 0;
  std::vector<offset_t> row_ptr_;
  std::vector<idx_t> col_idx_;
  std::vector<double> values_;
};

}  // namespace ms::la
