#pragma once
// Shared index/scalar typedefs for the linear-algebra layer.
//
// Index type: the largest systems this repository assembles (a 50x50 TSV
// array at fine-mesh resolution) stay well under 2^31 rows and nonzeros per
// row pointer entry, but row-pointer *offsets* (total nnz) can approach the
// int32 limit on the paper-scale reference solves, so row pointers are 64-bit
// while column indices stay 32-bit for cache friendliness.

#include <cstdint>

namespace ms::la {

using idx_t = std::int32_t;    ///< row/column indices and dimensions
using offset_t = std::int64_t; ///< CSR row-pointer offsets (total nnz)

}  // namespace ms::la
