#pragma once
// Supernodal Cholesky machinery: shared symbolic analysis (elimination tree,
// column counts, postorder), fundamental-supernode detection, a left-looking
// blocked numeric factorization built on register-tiled dense kernels (no
// external BLAS), and multi-RHS triangular panel solves.
//
// Columns with identical below-diagonal structure (fundamental supernodes,
// abundant after an AMD ordering of FEM matrices) are stored as one dense
// column-major panel, so the numeric phase runs as dense rank-k updates —
// cache-friendly and SIMD-friendly — instead of the scalar column-at-a-time
// up-looking loop. SparseCholesky drives this module; it is exposed so tests
// and benches can exercise the pieces directly.

#include <cstddef>
#include <vector>

#include "la/sparse.hpp"

namespace ms::la {

/// Elimination tree of a symmetric CSR matrix (parent per column, -1 at
/// roots), via the ancestor path-compression sweep.
std::vector<idx_t> elimination_tree(const CsrMatrix& a);

/// Pattern of row k of L: nodes on etree paths from the below-diagonal
/// entries of (permuted) row k up to k. Returns the entries in s[top..n-1]
/// in topological order; `mark` is an n-sized stamp array (callers pass a
/// fresh `stamp` per row instead of clearing it). Shared by the simplicial
/// numeric phase and the supernodal symbolic phase.
idx_t ereach(const CsrMatrix& a, idx_t k, const std::vector<idx_t>& parent, std::vector<idx_t>& s,
             std::vector<idx_t>& mark, idx_t stamp);

/// Column counts of the Cholesky factor L (diagonal included), via a
/// symbolic row-pattern sweep over the elimination tree.
std::vector<idx_t> cholesky_column_counts(const CsrMatrix& a, const std::vector<idx_t>& parent);

/// Postorder of the elimination tree: post[new] = old column, children
/// visited in ascending order, roots ascending. Reordering columns by the
/// postorder preserves fill and makes supernode columns consecutive.
std::vector<idx_t> etree_postorder(const std::vector<idx_t>& parent);

/// L stored as dense column panels, one per supernode. Supernode s covers
/// columns [super_start[s], super_start[s+1]); its row pattern (rows, sorted
/// ascending, the supernode's own columns first) is shared by every column,
/// and the values form an m x w column-major rectangle with leading
/// dimension m (entries above the intra-panel diagonal are unused zeros).
struct SupernodalFactor {
  idx_t n = 0;
  idx_t num_supernodes = 0;
  std::vector<idx_t> super_start;   ///< size num_supernodes + 1
  std::vector<idx_t> col_super;     ///< column -> supernode
  std::vector<offset_t> row_start;  ///< pattern offsets, size num_supernodes + 1
  std::vector<idx_t> rows;          ///< concatenated row patterns
  std::vector<offset_t> val_start;  ///< panel offsets, size num_supernodes + 1
  std::vector<double> values;       ///< column-major panels

  /// True nonzeros of L (the trapezoid of each panel, diagonal included).
  [[nodiscard]] offset_t factor_nnz() const;

  /// Resident bytes of the factor: value panels (rectangles, padding
  /// included — that is what is actually allocated) plus the pattern and
  /// supernode metadata arrays.
  [[nodiscard]] std::size_t memory_bytes() const;
};

/// Symbolic phase: detect fundamental supernodes (columns j-1, j merge when
/// parent[j-1] == j and counts[j] == counts[j-1] - 1, capped at `max_width`
/// columns so panels stay register-tile friendly) and collect each
/// supernode's row pattern. Panels are allocated zeroed, ready for the
/// numeric phase.
///
/// `relax_fill` > 0 additionally runs relaxed amalgamation: an adjacent
/// child/parent pair of supernodes (the etree parent of the child's last
/// column is the parent's first column) merges into one wider panel when the
/// explicit zeros this introduces stay within relax_fill of the merged
/// trapezoid. The merged pattern is the union — the child's own columns plus
/// the parent's rows, a superset of every member column's true pattern — so
/// the padded entries are *exact* zeros through the numeric phase (every
/// eliminated term is structurally zero) and the factor values are unchanged;
/// only the storage (factor_nnz counts the padded trapezoids) and the panel
/// shapes differ. Near-identical column structure, abundant in AMD-ordered
/// FEM matrices just below the fundamental-supernode threshold, then factors
/// as wider rank-k panels.
SupernodalFactor analyze_supernodes(const CsrMatrix& a, const std::vector<idx_t>& parent,
                                    const std::vector<idx_t>& counts, idx_t max_width,
                                    double relax_fill = 0.0);

/// Numeric phase: left-looking supernodal factorization of the (permuted)
/// matrix whose symbolic analysis produced `f`. Descendant updates are dense
/// C = B1 * B2^T rank-k products (register-tiled), followed by a fused dense
/// panel factorization. Throws std::runtime_error on a non-positive pivot.
///
/// The work is scheduled in two phases over a deterministic partition of the
/// elimination tree: disjoint light subtrees (target weight = total panel
/// weight / 64, independent of the thread count) factor first — each subtree
/// is a contiguous, descendant-closed supernode range, so its supernodes see
/// only updates that originate inside the range — then the remaining "top"
/// supernodes factor serially, consuming the updates the subtrees deferred
/// in subtree-index order. `parallel` runs phase one under OpenMP; because
/// the partition and every per-panel floating-point order are fixed by the
/// matrix alone, the factor is bitwise identical with the flag on or off and
/// for any thread count. When the column order is not etree-postordered the
/// subtree ranges can fail closure; the partition is then discarded and the
/// whole factorization runs as the serial top phase.
void factorize_supernodal(const CsrMatrix& a, SupernodalFactor& f, bool parallel = false);

/// Triangular solves over a multi-RHS block in *row-major* layout:
/// x[i * nrhs + r] is dof i of case r. The layout keeps the right-hand sides
/// of one dof contiguous, so the innermost per-case loops vectorize and every
/// panel entry of L is loaded once per nrhs cases. Per case, the arithmetic
/// order is identical to the nrhs == 1 call, so batched solves reproduce
/// one-at-a-time solves bitwise.
void supernodal_forward_solve(const SupernodalFactor& f, double* x, idx_t nrhs);
void supernodal_backward_solve(const SupernodalFactor& f, double* x, idx_t nrhs);

/// Register-tiled dense kernel behind the descendant updates (exposed for
/// tests/benches): C(i, j) = sum_t A(i, t) * A(j, t) for i in [0, ni),
/// j in [0, nj), with A column-major (ni x k, leading dimension lda >= ni)
/// and C column-major (ldc >= ni). Only the tiles touching i >= j are
/// computed — callers consume the lower trapezoid.
void syrk_panel_lower(const double* a, idx_t lda, idx_t ni, idx_t nj, idx_t k, double* c,
                      idx_t ldc);

}  // namespace ms::la
