#include "la/precond.hpp"

#include <cassert>
#include <stdexcept>
#include <string>

namespace ms::la {

JacobiPreconditioner::JacobiPreconditioner(const CsrMatrix& a) : inv_diag_(a.diagonal()) {
  for (double& d : inv_diag_) d = (d != 0.0) ? 1.0 / d : 1.0;
}

void JacobiPreconditioner::apply(const Vec& r, Vec& z) const {
  assert(r.size() == inv_diag_.size());
  z.resize(r.size());
  for (std::size_t i = 0; i < r.size(); ++i) z[i] = inv_diag_[i] * r[i];
}

std::size_t JacobiPreconditioner::memory_bytes() const {
  return inv_diag_.size() * sizeof(double);
}

SsorPreconditioner::SsorPreconditioner(const CsrMatrix& a, double omega)
    : a_(a), omega_(omega), inv_diag_(a.diagonal()) {
  if (omega <= 0.0 || omega >= 2.0) throw std::invalid_argument("SsorPreconditioner: omega in (0,2)");
  for (double& d : inv_diag_) d = (d != 0.0) ? 1.0 / d : 1.0;
}

void SsorPreconditioner::apply(const Vec& r, Vec& z) const {
  const idx_t n = a_.rows();
  assert(static_cast<idx_t>(r.size()) == n);
  z.assign(n, 0.0);
  const auto& row_ptr = a_.row_ptr();
  const auto& col = a_.col_idx();
  const auto& val = a_.values();

  // Forward sweep: (D/omega + L) z = r.
  for (idx_t i = 0; i < n; ++i) {
    double sum = r[i];
    const offset_t end = row_ptr[static_cast<std::size_t>(i) + 1];
    for (offset_t k = row_ptr[i]; k < end; ++k) {
      const idx_t j = col[k];
      if (j < i) sum -= val[k] * z[j];
    }
    z[i] = omega_ * inv_diag_[i] * sum;
  }
  // Scale by D/omega (SSOR middle factor), then backward sweep.
  for (idx_t i = 0; i < n; ++i) z[i] /= omega_ * inv_diag_[i];
  for (idx_t i = n - 1; i >= 0; --i) {
    double sum = z[i];
    const offset_t end = row_ptr[static_cast<std::size_t>(i) + 1];
    for (offset_t k = row_ptr[i]; k < end; ++k) {
      const idx_t j = col[k];
      if (j > i) sum -= val[k] * z[j];
    }
    z[i] = omega_ * inv_diag_[i] * sum;
  }
}

std::size_t SsorPreconditioner::memory_bytes() const {
  return inv_diag_.size() * sizeof(double);
}

std::unique_ptr<Preconditioner> make_preconditioner(const std::string& name, const CsrMatrix& a) {
  if (name == "none") return std::make_unique<IdentityPreconditioner>();
  if (name == "jacobi") return std::make_unique<JacobiPreconditioner>(a);
  if (name == "ssor") return std::make_unique<SsorPreconditioner>(a);
  throw std::invalid_argument("make_preconditioner: unknown preconditioner '" + name + "'");
}

}  // namespace ms::la
