#include "la/factor_cache.hpp"

#include <atomic>
#include <utility>

#include "obs/metrics.hpp"

namespace ms::la {

FactorCache::Entry FactorCache::get_or_create(const std::string& key,
                                              const std::function<Entry()>& build,
                                              bool* built) {
  auto& registry = obs::MetricRegistry::global();
  {
    std::unique_lock<std::mutex> lock(mutex_);
    // Loop until we either observe a ready entry (hit) or claim the build
    // by inserting the pending slot (miss). A failed builder erases its
    // slot, so waiters loop back and race to claim the retry.
    while (true) {
      auto [it, inserted] = slots_.try_emplace(key);
      if (inserted) break;  // we own the build
      ready_cv_.wait(lock, [&] {
        auto found = slots_.find(key);
        return found == slots_.end() || found->second.ready;
      });
      auto found = slots_.find(key);
      if (found != slots_.end()) {
        hits_.fetch_add(1, std::memory_order_relaxed);
        registry.counter("la.factor_cache.hits").add(1);
        if (built != nullptr) *built = false;
        return found->second.entry;
      }
    }
  }

  misses_.fetch_add(1, std::memory_order_relaxed);
  registry.counter("la.factor_cache.misses").add(1);
  Entry entry;
  try {
    entry = build();
  } catch (...) {
    // Slot-clear protocol: the failed build must never leave a pending slot
    // behind — waiters wake, find the key gone, and race to claim the retry.
    {
      std::lock_guard<std::mutex> lock(mutex_);
      slots_.erase(key);
    }
    ready_cv_.notify_all();
    registry.counter("la.factor_cache.build_failures").add(1);
    throw;
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    Slot& slot = slots_[key];
    slot.entry = entry;
    slot.ready = true;
  }
  ready_cv_.notify_all();
  if (built != nullptr) *built = true;
  return entry;
}

bool FactorCache::contains(const std::string& key) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = slots_.find(key);
  return it != slots_.end() && it->second.ready;
}

std::size_t FactorCache::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::size_t ready = 0;
  for (const auto& [key, slot] : slots_) {
    ready += slot.ready ? 1 : 0;
  }
  return ready;
}

void FactorCache::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  slots_.clear();
}

}  // namespace ms::la
