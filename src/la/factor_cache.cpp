#include "la/factor_cache.hpp"

#include <atomic>
#include <chrono>
#include <utility>

#include "obs/metrics.hpp"
#include "obs/query_scope.hpp"

namespace ms::la {

FactorCache::Entry FactorCache::get_or_create(const std::string& key,
                                              const std::function<Entry()>& build,
                                              bool* built) {
  auto& registry = obs::MetricRegistry::global();
  {
    std::unique_lock<std::mutex> lock(mutex_);
    // Loop until we either observe a ready entry (hit) or claim the build
    // by inserting the pending slot (miss). A failed builder erases its
    // slot, so waiters loop back and race to claim the retry.
    while (true) {
      auto [it, inserted] = slots_.try_emplace(key);
      if (inserted) break;  // we own the build
      if (!it->second.ready) {
        // Single-flight wait: another worker owns the in-flight build. Time
        // blocked here is real query latency that no stage timer sees, so it
        // is recorded (and query-attributed) separately.
        const auto wait_begin = std::chrono::steady_clock::now();
        ready_cv_.wait(lock, [&] {
          auto found = slots_.find(key);
          return found == slots_.end() || found->second.ready;
        });
        const double waited =
            std::chrono::duration<double>(std::chrono::steady_clock::now() - wait_begin)
                .count();
        registry.histogram("la.factor_cache.wait_seconds").record(waited);
        obs::QueryScope::observe_seconds("factor_cache.wait_seconds", waited);
      }
      auto found = slots_.find(key);
      if (found != slots_.end() && found->second.ready) {
        hits_.fetch_add(1, std::memory_order_relaxed);
        registry.counter("la.factor_cache.hits").add(1);
        obs::QueryScope::count("factor_cache.hits");
        if (built != nullptr) *built = false;
        return found->second.entry;
      }
    }
  }

  misses_.fetch_add(1, std::memory_order_relaxed);
  registry.counter("la.factor_cache.misses").add(1);
  obs::QueryScope::count("factor_cache.misses");
  Entry entry;
  try {
    entry = build();
  } catch (...) {
    // Slot-clear protocol: the failed build must never leave a pending slot
    // behind — waiters wake, find the key gone, and race to claim the retry.
    {
      std::lock_guard<std::mutex> lock(mutex_);
      slots_.erase(key);
    }
    ready_cv_.notify_all();
    registry.counter("la.factor_cache.build_failures").add(1);
    throw;
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    Slot& slot = slots_[key];
    slot.entry = entry;
    slot.ready = true;
  }
  ready_cv_.notify_all();
  if (built != nullptr) *built = true;
  return entry;
}

bool FactorCache::contains(const std::string& key) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = slots_.find(key);
  return it != slots_.end() && it->second.ready;
}

std::size_t FactorCache::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::size_t ready = 0;
  for (const auto& [key, slot] : slots_) {
    ready += slot.ready ? 1 : 0;
  }
  return ready;
}

void FactorCache::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  slots_.clear();
}

}  // namespace ms::la
