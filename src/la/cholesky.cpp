#include "la/cholesky.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>

#include "la/errors.hpp"

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace ms::la {
namespace {

bool is_identity_order(const std::vector<idx_t>& order) {
  for (idx_t i = 0; i < static_cast<idx_t>(order.size()); ++i) {
    if (order[i] != i) return false;
  }
  return true;
}

// Registry handles are stable for the process lifetime; cache them once so
// the per-panel solve path records with lock-free atomics only (no registry
// mutex inside OpenMP regions).
struct CholeskyMetrics {
  obs::Counter& factorizations;
  obs::Counter& solve_rhs;
  obs::Histogram& factor_seconds;
  obs::Histogram& ordering_seconds;
  obs::Histogram& symbolic_seconds;
  obs::Histogram& numeric_seconds;
  obs::Histogram& solve_seconds;
  obs::Gauge& factor_nnz;
  obs::Gauge& fill_ratio;
  obs::Gauge& num_supernodes;
};

CholeskyMetrics& chol_metrics() {
  auto& reg = obs::MetricRegistry::global();
  static CholeskyMetrics m{reg.counter("la.cholesky.factorizations"),
                           reg.counter("la.cholesky.solve_rhs"),
                           reg.histogram("la.cholesky.factor_seconds"),
                           reg.histogram("la.cholesky.ordering_seconds"),
                           reg.histogram("la.cholesky.symbolic_seconds"),
                           reg.histogram("la.cholesky.numeric_seconds"),
                           reg.histogram("la.cholesky.solve_seconds"),
                           reg.gauge("la.cholesky.factor_nnz"),
                           reg.gauge("la.cholesky.fill_ratio"),
                           reg.gauge("la.cholesky.num_supernodes")};
  return m;
}

}  // namespace

SparseCholesky::SparseCholesky(const CsrMatrix& a) : SparseCholesky(a, Options{}) {}

SparseCholesky::SparseCholesky(const CsrMatrix& a, Options options) : options_(options) {
  if (a.rows() != a.cols()) throw std::invalid_argument("SparseCholesky: matrix must be square");
  CholeskyMetrics& metrics = chol_metrics();
  MS_TRACE_SCOPE("la.cholesky.factor");
  obs::ScopedDuration factor_timer(metrics.factor_seconds);
  n_ = a.rows();
  {
    MS_TRACE_SCOPE("la.cholesky.ordering");
    obs::ScopedDuration timer(metrics.ordering_seconds);
    switch (options_.ordering) {
      case Ordering::kAmd: perm_ = amd_ordering(a); break;
      case Ordering::kRcm: perm_ = reverse_cuthill_mckee(a); break;
      case Ordering::kNatural: perm_ = Permutation::identity(n_); break;
    }
  }
  // The natural ordering works on `a` directly; the others factor a
  // permuted copy (kept only through construction, but owned by the memory
  // ledger as part of the peak footprint).
  CsrMatrix permuted;
  const CsrMatrix* pa_ptr = &a;
  std::vector<idx_t> counts;
  std::vector<idx_t> parent;
  {
    MS_TRACE_SCOPE("la.cholesky.symbolic");
    obs::ScopedDuration timer(metrics.symbolic_seconds);
    if (options_.ordering != Ordering::kNatural) {
      permuted = permute_symmetric(a, perm_);
      pa_ptr = &permuted;
    }
    parent = elimination_tree(*pa_ptr);
    if (options_.ordering != Ordering::kNatural) {
      // Postorder the elimination tree so supernode columns land consecutively
      // (fill-neutral relabeling). kNatural skips this: it promises the
      // unpermuted matrix.
      const std::vector<idx_t> post = etree_postorder(parent);
      if (!is_identity_order(post)) {
        Permutation p2;
        p2.perm = post;
        p2.inv_perm.assign(n_, 0);
        for (idx_t i = 0; i < n_; ++i) p2.inv_perm[p2.perm[i]] = i;
        perm_ = perm_.then(p2);
        permuted = permute_symmetric(permuted, p2);  // == P2 (P A P^T) P2^T
        // A postorder is etree-consistent (children numbered before parents),
        // so the tree of the relabeled matrix is the relabeled tree — no
        // second symbolic sweep needed.
        std::vector<idx_t> relabeled(static_cast<std::size_t>(n_));
        for (idx_t v = 0; v < n_; ++v) {
          relabeled[p2.inv_perm[v]] = parent[v] == -1 ? -1 : p2.inv_perm[parent[v]];
        }
        parent = std::move(relabeled);
      }
    }
    const CsrMatrix& sym = *pa_ptr;
    matrix_lower_nnz_ = 0;
    for (idx_t r = 0; r < n_; ++r) {
      const offset_t end = sym.row_ptr()[static_cast<std::size_t>(r) + 1];
      for (offset_t p = sym.row_ptr()[r]; p < end; ++p) {
        if (sym.col_idx()[p] <= r) ++matrix_lower_nnz_;
      }
    }
    permuted_matrix_bytes_ = options_.ordering == Ordering::kNatural ? 0 : sym.memory_bytes();
    counts = cholesky_column_counts(sym, parent);
    if (options_.method == Method::kSupernodal) {
      snf_ = analyze_supernodes(sym, parent, counts, options_.max_supernode_width,
                                options_.relax_supernodes);
    }
  }
  const CsrMatrix& pa = *pa_ptr;
  {
    MS_TRACE_SCOPE("la.cholesky.numeric");
    obs::ScopedDuration timer(metrics.numeric_seconds);
    if (options_.method == Method::kSupernodal) {
      factorize_supernodal(pa, snf_, options_.parallel_numeric);
    } else {
      parent_ = std::move(parent);
      lp_.assign(static_cast<std::size_t>(n_) + 1, 0);
      for (idx_t j = 0; j < n_; ++j) lp_[static_cast<std::size_t>(j) + 1] = lp_[j] + counts[j];
      li_.assign(static_cast<std::size_t>(lp_[n_]), 0);
      lx_.assign(static_cast<std::size_t>(lp_[n_]), 0.0);
      factorize(pa);
    }
  }
  work_.assign(n_, 0.0);
  metrics.factorizations.add(1);
  metrics.factor_nnz.set(static_cast<double>(factor_nnz()));
  metrics.fill_ratio.set(fill_ratio());
  metrics.num_supernodes.set(static_cast<double>(num_supernodes()));
}

void SparseCholesky::factorize(const CsrMatrix& a) {
  std::vector<offset_t> fill(lp_.begin(), lp_.end() - 1);  // next free slot per column
  std::vector<idx_t> s(n_), mark(n_, -1);
  Vec x(n_, 0.0);

  for (idx_t k = 0; k < n_; ++k) {
    // Scatter the lower part of (permuted) row k of A into x.
    const idx_t top = ereach(a, k, parent_, s, mark, k);
    double d = 0.0;
    {
      const offset_t end = a.row_ptr()[static_cast<std::size_t>(k) + 1];
      for (offset_t p = a.row_ptr()[k]; p < end; ++p) {
        const idx_t i = a.col_idx()[p];
        if (i < k) {
          x[i] = a.values()[p];
        } else if (i == k) {
          d = a.values()[p];
        }
      }
    }
    // Up-looking triangular solve over the pattern (topological order).
    for (idx_t t = top; t < n_; ++t) {
      const idx_t j = s[t];
      const double lkj = x[j] / lx_[lp_[j]];  // divide by L(j,j)
      x[j] = 0.0;
      for (offset_t p = lp_[j] + 1; p < fill[j]; ++p) x[li_[p]] -= lx_[p] * lkj;
      d -= lkj * lkj;
      li_[fill[j]] = k;
      lx_[fill[j]] = lkj;
      ++fill[j];
    }
    if (d <= 0.0) throw NotPositiveDefiniteError();
    li_[fill[k]] = k;
    lx_[fill[k]] = std::sqrt(d);
    ++fill[k];
  }
}

void SparseCholesky::solve_inplace(const Vec& b, Vec& x) const { solve_with(b, x, work_); }

void SparseCholesky::solve_with(const Vec& b, Vec& x, Vec& work) const {
  assert(static_cast<idx_t>(b.size()) == n_);
  x.resize(n_);
  solve_multi_with(b.data(), x.data(), 1, work);
}

void SparseCholesky::solve_multi(const double* b, double* x, idx_t nrhs) const {
  solve_multi_with(b, x, nrhs, work_);
}

Vec SparseCholesky::solve_multi(const Vec& b, idx_t nrhs) const {
  assert(static_cast<idx_t>(b.size()) == n_ * nrhs);
  Vec x(b.size());
  solve_multi(b.data(), x.data(), nrhs);
  return x;
}

std::vector<Vec> SparseCholesky::solve_multi(const std::vector<Vec>& cases) const {
  const idx_t num_cases = static_cast<idx_t>(cases.size());
  Vec panel(static_cast<std::size_t>(n_) * num_cases);
  for (idx_t c = 0; c < num_cases; ++c) {
    assert(static_cast<idx_t>(cases[c].size()) == n_);
    std::copy(cases[c].begin(), cases[c].end(),
              panel.begin() + static_cast<std::size_t>(c) * n_);
  }
  Vec x_panel(panel.size());
  solve_multi(panel.data(), x_panel.data(), num_cases);
  std::vector<Vec> solutions(cases.size());
  for (idx_t c = 0; c < num_cases; ++c) {
    solutions[c].assign(x_panel.begin() + static_cast<std::size_t>(c) * n_,
                        x_panel.begin() + static_cast<std::size_t>(c + 1) * n_);
  }
  return solutions;
}

void SparseCholesky::solve_multi_with(const double* b, double* x, idx_t nrhs, Vec& work) const {
  assert(nrhs >= 1);
  CholeskyMetrics& metrics = chol_metrics();
  MS_TRACE_SCOPE("la.cholesky.triangular_solve");
  obs::ScopedDuration solve_timer(metrics.solve_seconds);
  metrics.solve_rhs.add(nrhs);
  work.resize(static_cast<std::size_t>(n_) * nrhs);
  double* y = work.data();
  // Gather into the permuted, dof-major layout (all nrhs values of one dof
  // contiguous): the innermost per-case loops of the kernels then vectorize
  // and every factor entry is loaded once per panel instead of once per rhs.
  for (idx_t i = 0; i < n_; ++i) {
    const idx_t src = perm_.perm[i];
    double* yi = y + static_cast<std::size_t>(i) * nrhs;
    for (idx_t r = 0; r < nrhs; ++r) yi[r] = b[static_cast<std::size_t>(r) * n_ + src];
  }
  if (options_.method == Method::kSupernodal) {
    supernodal_forward_solve(snf_, y, nrhs);
    supernodal_backward_solve(snf_, y, nrhs);
  } else {
    // Forward solve L y = Pb (L is CSC; first entry of column j is the
    // diagonal). Per case the operation order matches the single-RHS path
    // exactly, so batched and one-at-a-time solves agree bitwise.
    for (idx_t j = 0; j < n_; ++j) {
      const double d = lx_[lp_[j]];
      double* yj = y + static_cast<std::size_t>(j) * nrhs;
      for (idx_t r = 0; r < nrhs; ++r) yj[r] /= d;
      const offset_t end = lp_[static_cast<std::size_t>(j) + 1];
      for (offset_t p = lp_[j] + 1; p < end; ++p) {
        const double l = lx_[p];
        double* yi = y + static_cast<std::size_t>(li_[p]) * nrhs;
        for (idx_t r = 0; r < nrhs; ++r) yi[r] -= l * yj[r];
      }
    }
    // Backward solve L^T z = y, with local running sums per case so the
    // column sweep is not serialized on a store-to-load chain through y[j].
    std::vector<double> acc(static_cast<std::size_t>(nrhs));
    for (idx_t j = n_ - 1; j >= 0; --j) {
      double* yj = y + static_cast<std::size_t>(j) * nrhs;
      for (idx_t r = 0; r < nrhs; ++r) acc[r] = yj[r];
      const offset_t end = lp_[static_cast<std::size_t>(j) + 1];
      for (offset_t p = lp_[j] + 1; p < end; ++p) {
        const double l = lx_[p];
        const double* yi = y + static_cast<std::size_t>(li_[p]) * nrhs;
        for (idx_t r = 0; r < nrhs; ++r) acc[r] -= l * yi[r];
      }
      const double d = lx_[lp_[j]];
      for (idx_t r = 0; r < nrhs; ++r) yj[r] = acc[r] / d;
    }
  }
  for (idx_t i = 0; i < n_; ++i) {
    const idx_t dst = perm_.perm[i];
    const double* yi = y + static_cast<std::size_t>(i) * nrhs;
    for (idx_t r = 0; r < nrhs; ++r) x[static_cast<std::size_t>(r) * n_ + dst] = yi[r];
  }
}

Vec SparseCholesky::solve(const Vec& b) const {
  Vec x;
  solve_inplace(b, x);
  return x;
}

offset_t SparseCholesky::factor_nnz() const {
  return options_.method == Method::kSupernodal ? snf_.factor_nnz()
                                                : static_cast<offset_t>(lx_.size());
}

double SparseCholesky::fill_ratio() const {
  return matrix_lower_nnz_ > 0
             ? static_cast<double>(factor_nnz()) / static_cast<double>(matrix_lower_nnz_)
             : 1.0;
}

idx_t SparseCholesky::num_supernodes() const {
  return options_.method == Method::kSupernodal ? snf_.num_supernodes : 0;
}

const char* SparseCholesky::ordering_name() const {
  switch (options_.ordering) {
    case Ordering::kAmd: return "amd";
    case Ordering::kRcm: return "rcm";
    case Ordering::kNatural: return "natural";
  }
  return "?";
}

const char* SparseCholesky::method_name() const {
  return options_.method == Method::kSupernodal ? "supernodal" : "simplicial";
}

std::size_t SparseCholesky::memory_bytes() const {
  std::size_t bytes = 2 * perm_.perm.size() * sizeof(idx_t) + work_.size() * sizeof(double) +
                      permuted_matrix_bytes_;
  if (options_.method == Method::kSupernodal) {
    bytes += snf_.memory_bytes();
  } else {
    bytes += lx_.size() * sizeof(double) + li_.size() * sizeof(idx_t) +
             lp_.size() * sizeof(offset_t) + parent_.size() * sizeof(idx_t);
  }
  return bytes;
}

void SparseCholesky::extract_factor(std::vector<offset_t>& col_ptr, std::vector<idx_t>& row_idx,
                                    std::vector<double>& values) const {
  if (options_.method == Method::kSimplicial) {
    col_ptr = lp_;
    row_idx = li_;
    values = lx_;
    return;
  }
  col_ptr.assign(static_cast<std::size_t>(n_) + 1, 0);
  for (idx_t s = 0; s < snf_.num_supernodes; ++s) {
    const idx_t c0 = snf_.super_start[s];
    const idx_t w = snf_.super_start[static_cast<std::size_t>(s) + 1] - c0;
    const offset_t m = snf_.row_start[static_cast<std::size_t>(s) + 1] - snf_.row_start[s];
    for (idx_t j = 0; j < w; ++j) {
      col_ptr[static_cast<std::size_t>(c0 + j) + 1] = m - j;
    }
  }
  for (idx_t j = 0; j < n_; ++j) col_ptr[static_cast<std::size_t>(j) + 1] += col_ptr[j];
  row_idx.assign(static_cast<std::size_t>(col_ptr[n_]), 0);
  values.assign(static_cast<std::size_t>(col_ptr[n_]), 0.0);
  for (idx_t s = 0; s < snf_.num_supernodes; ++s) {
    const idx_t c0 = snf_.super_start[s];
    const idx_t w = snf_.super_start[static_cast<std::size_t>(s) + 1] - c0;
    const offset_t r0 = snf_.row_start[s];
    const idx_t m = static_cast<idx_t>(snf_.row_start[static_cast<std::size_t>(s) + 1] - r0);
    const idx_t* rs = snf_.rows.data() + r0;
    const double* panel = snf_.values.data() + snf_.val_start[s];
    for (idx_t j = 0; j < w; ++j) {
      offset_t out = col_ptr[c0 + j];
      for (idx_t i = j; i < m; ++i) {
        row_idx[out] = rs[i];
        values[out] = panel[static_cast<std::size_t>(j) * m + i];
        ++out;
      }
    }
  }
}

}  // namespace ms::la
