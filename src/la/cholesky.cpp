#include "la/cholesky.hpp"

#include <cassert>
#include <cmath>
#include <stdexcept>

namespace ms::la {
namespace {

/// Pattern of row k of L: nodes on etree paths from the below-diagonal
/// entries of (permuted) row k up to k. Returns entries in s[top..n-1] in
/// topological order. `mark` uses stamp values to avoid clearing.
idx_t ereach(const CsrMatrix& a, idx_t k, const std::vector<idx_t>& parent, std::vector<idx_t>& s,
             std::vector<idx_t>& mark, idx_t stamp) {
  const idx_t n = a.rows();
  idx_t top = n;
  mark[k] = stamp;
  const offset_t end = a.row_ptr()[static_cast<std::size_t>(k) + 1];
  for (offset_t p = a.row_ptr()[k]; p < end; ++p) {
    idx_t i = a.col_idx()[p];
    if (i >= k) break;  // columns are sorted; only strictly-lower entries seed
    idx_t len = 0;
    // Walk up the elimination tree until hitting an already-marked node.
    for (; mark[i] != stamp; i = parent[i]) {
      s[len++] = i;
      mark[i] = stamp;
    }
    while (len > 0) s[--top] = s[--len];
  }
  return top;
}

}  // namespace

SparseCholesky::SparseCholesky(const CsrMatrix& a) : SparseCholesky(a, Options{}) {}

SparseCholesky::SparseCholesky(const CsrMatrix& a, Options options) {
  if (a.rows() != a.cols()) throw std::invalid_argument("SparseCholesky: matrix must be square");
  n_ = a.rows();
  perm_ = options.use_rcm ? reverse_cuthill_mckee(a) : Permutation::identity(n_);
  const CsrMatrix pa = options.use_rcm ? permute_symmetric(a, perm_) : a;
  analyze(pa);
  factorize(pa);
  work_.assign(n_, 0.0);
}

void SparseCholesky::analyze(const CsrMatrix& a) {
  // Elimination tree with path compression (cs_etree).
  parent_.assign(n_, -1);
  std::vector<idx_t> ancestor(n_, -1);
  for (idx_t k = 0; k < n_; ++k) {
    const offset_t end = a.row_ptr()[static_cast<std::size_t>(k) + 1];
    for (offset_t p = a.row_ptr()[k]; p < end; ++p) {
      idx_t i = a.col_idx()[p];
      if (i >= k) break;
      while (i != -1 && i != k) {
        const idx_t next = ancestor[i];
        ancestor[i] = k;
        if (next == -1) parent_[i] = k;
        i = next;
      }
    }
  }

  // Column counts of L via a symbolic ereach sweep (diagonal included).
  std::vector<idx_t> counts(n_, 1);
  std::vector<idx_t> s(n_), mark(n_, -1);
  for (idx_t k = 0; k < n_; ++k) {
    const idx_t top = ereach(a, k, parent_, s, mark, k);
    for (idx_t t = top; t < n_; ++t) ++counts[s[t]];
  }
  lp_.assign(static_cast<std::size_t>(n_) + 1, 0);
  for (idx_t j = 0; j < n_; ++j) lp_[static_cast<std::size_t>(j) + 1] = lp_[j] + counts[j];
  li_.assign(static_cast<std::size_t>(lp_[n_]), 0);
  lx_.assign(static_cast<std::size_t>(lp_[n_]), 0.0);
}

void SparseCholesky::factorize(const CsrMatrix& a) {
  std::vector<offset_t> fill(lp_.begin(), lp_.end() - 1);  // next free slot per column
  std::vector<idx_t> s(n_), mark(n_, -1);
  Vec x(n_, 0.0);

  for (idx_t k = 0; k < n_; ++k) {
    // Scatter the lower part of (permuted) row k of A into x.
    const idx_t top = ereach(a, k, parent_, s, mark, k);
    double d = 0.0;
    {
      const offset_t end = a.row_ptr()[static_cast<std::size_t>(k) + 1];
      for (offset_t p = a.row_ptr()[k]; p < end; ++p) {
        const idx_t i = a.col_idx()[p];
        if (i < k) {
          x[i] = a.values()[p];
        } else if (i == k) {
          d = a.values()[p];
        }
      }
    }
    // Up-looking triangular solve over the pattern (topological order).
    for (idx_t t = top; t < n_; ++t) {
      const idx_t j = s[t];
      const double lkj = x[j] / lx_[lp_[j]];  // divide by L(j,j)
      x[j] = 0.0;
      for (offset_t p = lp_[j] + 1; p < fill[j]; ++p) x[li_[p]] -= lx_[p] * lkj;
      d -= lkj * lkj;
      li_[fill[j]] = k;
      lx_[fill[j]] = lkj;
      ++fill[j];
    }
    if (d <= 0.0) throw std::runtime_error("SparseCholesky: matrix not positive definite");
    li_[fill[k]] = k;
    lx_[fill[k]] = std::sqrt(d);
    ++fill[k];
  }
}

void SparseCholesky::solve_inplace(const Vec& b, Vec& x) const { solve_with(b, x, work_); }

void SparseCholesky::solve_with(const Vec& b, Vec& x, Vec& work) const {
  assert(static_cast<idx_t>(b.size()) == n_);
  x.resize(n_);
  work.resize(n_);
  Vec& y = work;
  for (idx_t i = 0; i < n_; ++i) y[i] = b[perm_.perm[i]];

  // Forward solve L y = Pb (L is CSC; first entry of column j is diagonal).
  for (idx_t j = 0; j < n_; ++j) {
    const double yj = y[j] / lx_[lp_[j]];
    y[j] = yj;
    const offset_t end = lp_[static_cast<std::size_t>(j) + 1];
    for (offset_t p = lp_[j] + 1; p < end; ++p) y[li_[p]] -= lx_[p] * yj;
  }
  // Backward solve L^T z = y.
  for (idx_t j = n_ - 1; j >= 0; --j) {
    double sum = y[j];
    const offset_t end = lp_[static_cast<std::size_t>(j) + 1];
    for (offset_t p = lp_[j] + 1; p < end; ++p) sum -= lx_[p] * y[li_[p]];
    y[j] = sum / lx_[lp_[j]];
  }
  for (idx_t i = 0; i < n_; ++i) x[perm_.perm[i]] = y[i];
}

Vec SparseCholesky::solve(const Vec& b) const {
  Vec x;
  solve_inplace(b, x);
  return x;
}

std::size_t SparseCholesky::memory_bytes() const {
  return lx_.size() * sizeof(double) + li_.size() * sizeof(idx_t) +
         lp_.size() * sizeof(offset_t) + 2 * perm_.perm.size() * sizeof(idx_t) +
         work_.size() * sizeof(double);
}

}  // namespace ms::la
