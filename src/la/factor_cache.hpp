#pragma once
// Cross-scenario factorization memoization for the sweep engine.
//
// A sweep over a trace family (duty / period / amplitude variations of one
// layout) re-solves the same lifted operator with different right-hand
// sides; the factorization — the dominant cost of every direct path — can
// be built once and shared. FactorCache maps an opaque string key (composed
// by the caller from everything that determines the lifted operator: mesh,
// materials, mask, factor options, and the constrained-dof *set* — BC
// values excluded, see DESIGN.md) to a factorized operator plus, when the
// caller needs right-hand-side lifting against the original matrix, the
// unlifted operator it was built from.
//
// get_or_create is single-flight: when several sweep workers race on one
// key, exactly one runs the builder while the rest wait on the slot, so
// `num_factorizations` stays deterministic (one per distinct key) no matter
// the thread schedule. Entries are never evicted; the owning engine's
// lifetime bounds the cache. Shared SparseCholesky factors must be solved
// through the *_with(scratch) entry points — the scratch-less overloads
// mutate a member workspace and are not safe to share across threads.

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "la/cholesky.hpp"
#include "la/sparse.hpp"

namespace ms::la {

class FactorCache {
 public:
  struct Entry {
    /// The operator *before* Dirichlet lifting, kept when the caller lifts
    /// right-hand sides separately (null when the path never needs it, e.g.
    /// the transient stepper which re-assembles A for the correction term).
    std::shared_ptr<const CsrMatrix> matrix;
    std::shared_ptr<const SparseCholesky> factor;
    /// Non-zero when the factor was rescued by the diagonal shift-retry
    /// ladder (see la/shift_retry.hpp): every solve through this entry —
    /// warm hits included — must report its stats as degraded.
    double diagonal_shift = 0.0;
  };

  /// Return the entry under `key`, running `build` if absent. Concurrent
  /// callers of one absent key block until the single in-flight build
  /// finishes. `built` (optional) reports whether *this* call ran the
  /// builder — the caller's num_factorizations contribution. A throwing
  /// builder clears the slot (the next caller retries) and rethrows.
  Entry get_or_create(const std::string& key, const std::function<Entry()>& build,
                      bool* built = nullptr);

  /// True when `key` is resident and ready (in-flight builds don't count).
  /// Lets callers skip work that only a cache miss needs — e.g. the global
  /// stage skips matrix assembly when the factor is already resident.
  [[nodiscard]] bool contains(const std::string& key) const;

  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] std::uint64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  [[nodiscard]] std::uint64_t misses() const { return misses_.load(std::memory_order_relaxed); }

  /// Drop every entry (callers holding shared_ptrs keep theirs alive).
  /// Not safe to call concurrently with get_or_create.
  void clear();

 private:
  struct Slot {
    bool ready = false;  // false while the owning builder runs
    Entry entry;
  };

  mutable std::mutex mutex_;
  std::condition_variable ready_cv_;
  std::unordered_map<std::string, Slot> slots_;
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
};

}  // namespace ms::la
