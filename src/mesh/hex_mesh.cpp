#include "mesh/hex_mesh.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace ms::mesh {

HexMesh::HexMesh(std::vector<double> xs, std::vector<double> ys, std::vector<double> zs)
    : xs_(std::move(xs)), ys_(std::move(ys)), zs_(std::move(zs)) {
  for (const auto* coords : {&xs_, &ys_, &zs_}) {
    if (coords->size() < 2) throw std::invalid_argument("HexMesh: need >= 2 grid lines per axis");
    for (std::size_t i = 1; i < coords->size(); ++i) {
      if ((*coords)[i] <= (*coords)[i - 1]) {
        throw std::invalid_argument("HexMesh: grid lines must be strictly increasing");
      }
    }
  }
  materials_.assign(static_cast<std::size_t>(num_elems()), 0);
}

std::array<idx_t, 3> HexMesh::node_ijk(idx_t id) const {
  const idx_t nx = nodes_x();
  const idx_t ny = nodes_y();
  const idx_t i = id % nx;
  const idx_t j = (id / nx) % ny;
  const idx_t k = id / (nx * ny);
  return {i, j, k};
}

Point3 HexMesh::node_pos(idx_t id) const {
  const auto [i, j, k] = node_ijk(id);
  return {xs_[i], ys_[j], zs_[k]};
}

std::array<idx_t, 3> HexMesh::elem_ijk(idx_t id) const {
  const idx_t ex = elems_x();
  const idx_t ey = elems_y();
  const idx_t i = id % ex;
  const idx_t j = (id / ex) % ey;
  const idx_t k = id / (ex * ey);
  return {i, j, k};
}

std::array<idx_t, 8> HexMesh::elem_nodes(idx_t elem) const {
  const auto [i, j, k] = elem_ijk(elem);
  return {
      node_id(i, j, k),         node_id(i + 1, j, k),         node_id(i + 1, j + 1, k),
      node_id(i, j + 1, k),     node_id(i, j, k + 1),         node_id(i + 1, j, k + 1),
      node_id(i + 1, j + 1, k + 1), node_id(i, j + 1, k + 1),
  };
}

Point3 HexMesh::elem_min(idx_t elem) const {
  const auto [i, j, k] = elem_ijk(elem);
  return {xs_[i], ys_[j], zs_[k]};
}

Point3 HexMesh::elem_max(idx_t elem) const {
  const auto [i, j, k] = elem_ijk(elem);
  return {xs_[i + 1], ys_[j + 1], zs_[k + 1]};
}

Point3 HexMesh::elem_centroid(idx_t elem) const {
  const Point3 lo = elem_min(elem);
  const Point3 hi = elem_max(elem);
  return {0.5 * (lo.x + hi.x), 0.5 * (lo.y + hi.y), 0.5 * (lo.z + hi.z)};
}

double HexMesh::elem_volume(idx_t elem) const {
  const Point3 lo = elem_min(elem);
  const Point3 hi = elem_max(elem);
  return (hi.x - lo.x) * (hi.y - lo.y) * (hi.z - lo.z);
}

bool HexMesh::is_boundary_node(idx_t id) const {
  const auto [i, j, k] = node_ijk(id);
  return i == 0 || i == nodes_x() - 1 || j == 0 || j == nodes_y() - 1 || k == 0 ||
         k == nodes_z() - 1;
}

std::vector<idx_t> HexMesh::boundary_nodes() const {
  std::vector<idx_t> out;
  const idx_t n = num_nodes();
  for (idx_t id = 0; id < n; ++id) {
    if (is_boundary_node(id)) out.push_back(id);
  }
  return out;
}

std::vector<idx_t> HexMesh::top_bottom_nodes() const {
  std::vector<idx_t> out;
  const idx_t layer = nodes_x() * nodes_y();
  out.reserve(static_cast<std::size_t>(2 * layer));
  for (idx_t id = 0; id < layer; ++id) out.push_back(id);
  const idx_t top_start = (nodes_z() - 1) * layer;
  for (idx_t id = 0; id < layer; ++id) out.push_back(top_start + id);
  return out;
}

idx_t HexMesh::find_interval(const std::vector<double>& coords, double v) {
  // Clamp outside points to the first/last interval so sampling never fails.
  if (v <= coords.front()) return 0;
  if (v >= coords.back()) return static_cast<idx_t>(coords.size()) - 2;
  const auto it = std::upper_bound(coords.begin(), coords.end(), v);
  return static_cast<idx_t>(it - coords.begin()) - 1;
}

HexMesh::Location HexMesh::locate(const Point3& p) const {
  const idx_t i = find_interval(xs_, p.x);
  const idx_t j = find_interval(ys_, p.y);
  const idx_t k = find_interval(zs_, p.z);
  Location loc;
  loc.elem = elem_id(i, j, k);
  loc.xi = 2.0 * (p.x - xs_[i]) / (xs_[i + 1] - xs_[i]) - 1.0;
  loc.eta = 2.0 * (p.y - ys_[j]) / (ys_[j + 1] - ys_[j]) - 1.0;
  loc.zeta = 2.0 * (p.z - zs_[k]) / (zs_[k + 1] - zs_[k]) - 1.0;
  return loc;
}

std::size_t HexMesh::memory_bytes() const {
  return (xs_.size() + ys_.size() + zs_.size()) * sizeof(double) + materials_.size();
}

}  // namespace ms::mesh
