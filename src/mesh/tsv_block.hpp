#pragma once
// TSV geometry and the meshers deriving from it (paper Fig. 2 / Fig. 3):
//  * the unit block — one TSV centred in a p x p x h silicon cuboid,
//  * the dummy block — same cuboid, pure silicon (Sec. 4.4),
//  * tiled array meshes for the full-FEM reference and superposition solves.
//
// All meshes are voxel (structured hex) approximations of the cylindrical
// via with grid lines placed exactly at the copper and liner interface
// radii; elements take the material of the region containing their centroid.
// The reference FEM uses the *identical* per-block mesh, so ROM error is
// exactly the paper's single error source (boundary interpolation).

#include <vector>

#include "mesh/grading.hpp"
#include "mesh/hex_mesh.hpp"

namespace ms::mesh {

/// Geometry of the simplified TSV structure (units: micrometres).
struct TsvGeometry {
  double pitch = 15.0;           ///< p: unit-block edge in x and y
  double diameter = 5.0;         ///< d: copper body diameter
  double liner_thickness = 0.5;  ///< t: dielectric liner thickness
  double height = 50.0;          ///< h: block height (z)

  [[nodiscard]] double copper_radius() const { return 0.5 * diameter; }
  [[nodiscard]] double liner_radius() const { return 0.5 * diameter + liner_thickness; }

  /// Validate physical consistency (throws std::invalid_argument).
  void validate() const;
};

/// Mesh density for one unit block.
struct BlockMeshSpec {
  int elems_xy = 12;  ///< target element count across the pitch (x and y)
  int elems_z = 10;   ///< element count through the height

  void validate() const;
};

/// Grid-line patterns for a single block, interface-conforming in x/y.
struct BlockGridLines {
  std::vector<double> xy;  ///< shared by x and y (block is square in plan)
  std::vector<double> z;
};

/// The 1-D grid-line pattern used by every block-derived mesh.
BlockGridLines block_grid_lines(const TsvGeometry& geom, const BlockMeshSpec& spec);

/// Unit TSV block mesh: one via centred at (p/2, p/2).
HexMesh build_tsv_block_mesh(const TsvGeometry& geom, const BlockMeshSpec& spec);

/// Dummy block mesh: same grid, all silicon.
HexMesh build_dummy_block_mesh(const TsvGeometry& geom, const BlockMeshSpec& spec);

/// Tiled nx x ny block array. `tsv_mask` (size nx*ny, row-major, x fastest)
/// selects which blocks contain a via; empty mask means all blocks do.
HexMesh build_array_mesh(const TsvGeometry& geom, const BlockMeshSpec& spec, int nx, int ny,
                         const std::vector<std::uint8_t>& tsv_mask = {});

/// Mask helpers for build_array_mesh.
std::vector<std::uint8_t> full_tsv_mask(int nx, int ny);

/// Mask with `rings` dummy rings around an inner (nx-2*rings)^2 TSV core.
std::vector<std::uint8_t> padded_tsv_mask(int nx, int ny, int rings);

/// Mask with only the centre block carrying a via (isolated-TSV domain for
/// the linear-superposition basis solve); nx and ny must be odd.
std::vector<std::uint8_t> single_tsv_mask(int nx, int ny);

}  // namespace ms::mesh
