#pragma once
// Structured hexahedral mesh. Every mesh in this repository (unit block,
// tiled array, chiplet coarse model) is a tensor-product grid, so nodes and
// elements are implicit in three 1-D coordinate arrays; only the per-element
// material id is stored. This keeps a 50x50-block fine mesh addressable
// without per-node storage.

#include <array>
#include <cstdint>
#include <vector>

#include "la/types.hpp"

namespace ms::mesh {

using la::idx_t;

/// Point in R^3 (units: micrometres).
struct Point3 {
  double x = 0.0, y = 0.0, z = 0.0;
};

/// Semantic material ids used by the TSV meshes; the FEM layer maps them to
/// elastic constants. Values are indices into a MaterialTable.
enum class MaterialId : std::uint8_t {
  Silicon = 0,
  Copper = 1,
  Liner = 2,
  Organic = 3,
};

class HexMesh {
 public:
  HexMesh() = default;

  /// Construct from grid-line coordinates (strictly increasing, >= 2 each).
  /// All elements start as Silicon.
  HexMesh(std::vector<double> xs, std::vector<double> ys, std::vector<double> zs);

  // --- sizes -------------------------------------------------------------
  [[nodiscard]] idx_t nodes_x() const { return static_cast<idx_t>(xs_.size()); }
  [[nodiscard]] idx_t nodes_y() const { return static_cast<idx_t>(ys_.size()); }
  [[nodiscard]] idx_t nodes_z() const { return static_cast<idx_t>(zs_.size()); }
  [[nodiscard]] idx_t elems_x() const { return nodes_x() - 1; }
  [[nodiscard]] idx_t elems_y() const { return nodes_y() - 1; }
  [[nodiscard]] idx_t elems_z() const { return nodes_z() - 1; }
  [[nodiscard]] idx_t num_nodes() const { return nodes_x() * nodes_y() * nodes_z(); }
  [[nodiscard]] idx_t num_elems() const { return elems_x() * elems_y() * elems_z(); }

  [[nodiscard]] const std::vector<double>& xs() const { return xs_; }
  [[nodiscard]] const std::vector<double>& ys() const { return ys_; }
  [[nodiscard]] const std::vector<double>& zs() const { return zs_; }

  // --- node addressing (i fastest, then j, then k) -------------------------
  [[nodiscard]] idx_t node_id(idx_t i, idx_t j, idx_t k) const {
    return (k * nodes_y() + j) * nodes_x() + i;
  }
  [[nodiscard]] std::array<idx_t, 3> node_ijk(idx_t id) const;
  [[nodiscard]] Point3 node_pos(idx_t id) const;
  [[nodiscard]] Point3 node_pos(idx_t i, idx_t j, idx_t k) const {
    return {xs_[i], ys_[j], zs_[k]};
  }

  // --- element addressing ---------------------------------------------------
  [[nodiscard]] idx_t elem_id(idx_t i, idx_t j, idx_t k) const {
    return (k * elems_y() + j) * elems_x() + i;
  }
  [[nodiscard]] std::array<idx_t, 3> elem_ijk(idx_t id) const;

  /// The 8 node ids in standard hex8 corner order
  /// (xi,eta,zeta) = 000,100,110,010,001,101,111,011.
  [[nodiscard]] std::array<idx_t, 8> elem_nodes(idx_t elem) const;

  /// Axis-aligned bounds of an element.
  [[nodiscard]] Point3 elem_min(idx_t elem) const;
  [[nodiscard]] Point3 elem_max(idx_t elem) const;
  [[nodiscard]] Point3 elem_centroid(idx_t elem) const;
  [[nodiscard]] double elem_volume(idx_t elem) const;

  // --- materials -------------------------------------------------------------
  [[nodiscard]] MaterialId material(idx_t elem) const {
    return static_cast<MaterialId>(materials_[elem]);
  }
  void set_material(idx_t elem, MaterialId m) {
    materials_[elem] = static_cast<std::uint8_t>(m);
  }

  // --- boundary queries -------------------------------------------------------
  [[nodiscard]] bool is_boundary_node(idx_t id) const;
  [[nodiscard]] bool on_face_zmin(idx_t id) const { return node_ijk(id)[2] == 0; }
  [[nodiscard]] bool on_face_zmax(idx_t id) const { return node_ijk(id)[2] == nodes_z() - 1; }

  /// Node ids on any face of the bounding box, ascending.
  [[nodiscard]] std::vector<idx_t> boundary_nodes() const;

  /// Node ids with k == 0 or k == nz-1 (clamped-surface sets), ascending.
  [[nodiscard]] std::vector<idx_t> top_bottom_nodes() const;

  /// Locate the element containing point p (clamped to the grid), plus the
  /// local (xi,eta,zeta) in [-1,1]^3. Used by field sampling and sub-model
  /// boundary interpolation.
  struct Location {
    idx_t elem = 0;
    double xi = 0.0, eta = 0.0, zeta = 0.0;
  };
  [[nodiscard]] Location locate(const Point3& p) const;

  /// Approximate resident bytes (coordinates + material ids).
  [[nodiscard]] std::size_t memory_bytes() const;

 private:
  static idx_t find_interval(const std::vector<double>& coords, double v);

  std::vector<double> xs_, ys_, zs_;
  std::vector<std::uint8_t> materials_;
};

}  // namespace ms::mesh
