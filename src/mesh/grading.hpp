#pragma once
// 1-D grid-line generators. The TSV unit block needs grid lines that pass
// exactly through the copper/liner/silicon interface radii so the voxel
// approximation of the cylindrical via converges quickly; these helpers
// build such interface-conforming, near-uniform spacings.

#include <vector>

namespace ms::mesh {

/// n+1 equally spaced coordinates on [a, b].
std::vector<double> uniform_coords(double a, double b, int n);

/// Coordinates on [a, b] that (1) contain every interior interface in
/// `interfaces` exactly and (2) subdivide each gap so no interval exceeds
/// (b-a)/target_elems. Interfaces outside (a, b) are ignored; duplicates and
/// near-coincident values (within `merge_tol`) are merged.
std::vector<double> graded_coords(double a, double b, int target_elems,
                                  const std::vector<double>& interfaces,
                                  double merge_tol = 1e-9);

/// Tile a per-block coordinate pattern `block` (covering [block.front(),
/// block.back()]) `count` times, shifting by the block length each repeat.
/// Shared block-boundary lines appear once.
std::vector<double> tile_coords(const std::vector<double>& block, int count);

}  // namespace ms::mesh
