#include "mesh/tsv_block.hpp"

#include <cmath>
#include <stdexcept>

namespace ms::mesh {

void TsvGeometry::validate() const {
  if (pitch <= 0.0 || diameter <= 0.0 || height <= 0.0 || liner_thickness < 0.0) {
    throw std::invalid_argument("TsvGeometry: dimensions must be positive");
  }
  if (2.0 * liner_radius() >= pitch) {
    throw std::invalid_argument("TsvGeometry: via + liner must fit inside the pitch");
  }
}

void BlockMeshSpec::validate() const {
  if (elems_xy < 4 || elems_z < 2) {
    throw std::invalid_argument("BlockMeshSpec: need elems_xy >= 4 and elems_z >= 2");
  }
}

BlockGridLines block_grid_lines(const TsvGeometry& geom, const BlockMeshSpec& spec) {
  geom.validate();
  spec.validate();
  const double p = geom.pitch;
  const double c = 0.5 * p;
  // Grid lines tangent to the copper and liner cylinders on both sides, so
  // voxel material assignment resolves the thin liner even on coarse grids.
  const std::vector<double> interfaces{
      c - geom.liner_radius(), c - geom.copper_radius(),
      c + geom.copper_radius(), c + geom.liner_radius(),
  };
  BlockGridLines lines;
  lines.xy = graded_coords(0.0, p, spec.elems_xy, interfaces);
  lines.z = uniform_coords(0.0, geom.height, spec.elems_z);
  return lines;
}

namespace {

/// Assign via materials for the block whose lower corner in plan is
/// (x0, y0); element centroids inside the copper/liner radii get tagged.
void assign_block_materials(HexMesh& mesh, const TsvGeometry& geom, double x0, double y0,
                            idx_t ex_begin, idx_t ex_end, idx_t ey_begin, idx_t ey_end) {
  const double cx = x0 + 0.5 * geom.pitch;
  const double cy = y0 + 0.5 * geom.pitch;
  const double r_cu = geom.copper_radius();
  const double r_liner = geom.liner_radius();
  for (idx_t j = ey_begin; j < ey_end; ++j) {
    for (idx_t i = ex_begin; i < ex_end; ++i) {
      // Material is constant through the height; classify once per column.
      const idx_t e0 = mesh.elem_id(i, j, 0);
      const Point3 c = mesh.elem_centroid(e0);
      const double r = std::hypot(c.x - cx, c.y - cy);
      MaterialId m = MaterialId::Silicon;
      if (r <= r_cu) {
        m = MaterialId::Copper;
      } else if (r <= r_liner) {
        m = MaterialId::Liner;
      }
      if (m == MaterialId::Silicon) continue;
      for (idx_t k = 0; k < mesh.elems_z(); ++k) mesh.set_material(mesh.elem_id(i, j, k), m);
    }
  }
}

}  // namespace

HexMesh build_tsv_block_mesh(const TsvGeometry& geom, const BlockMeshSpec& spec) {
  const BlockGridLines lines = block_grid_lines(geom, spec);
  HexMesh mesh(lines.xy, lines.xy, lines.z);
  assign_block_materials(mesh, geom, 0.0, 0.0, 0, mesh.elems_x(), 0, mesh.elems_y());
  return mesh;
}

HexMesh build_dummy_block_mesh(const TsvGeometry& geom, const BlockMeshSpec& spec) {
  const BlockGridLines lines = block_grid_lines(geom, spec);
  return HexMesh(lines.xy, lines.xy, lines.z);
}

HexMesh build_array_mesh(const TsvGeometry& geom, const BlockMeshSpec& spec, int nx, int ny,
                         const std::vector<std::uint8_t>& tsv_mask) {
  if (nx < 1 || ny < 1) throw std::invalid_argument("build_array_mesh: need nx, ny >= 1");
  std::vector<std::uint8_t> mask = tsv_mask.empty() ? full_tsv_mask(nx, ny) : tsv_mask;
  if (mask.size() != static_cast<std::size_t>(nx) * ny) {
    throw std::invalid_argument("build_array_mesh: mask size must be nx*ny");
  }
  const BlockGridLines lines = block_grid_lines(geom, spec);
  HexMesh mesh(tile_coords(lines.xy, nx), tile_coords(lines.xy, ny), lines.z);

  const idx_t epb = static_cast<idx_t>(lines.xy.size()) - 1;  // elements per block edge
  for (int by = 0; by < ny; ++by) {
    for (int bx = 0; bx < nx; ++bx) {
      if (mask[static_cast<std::size_t>(by) * nx + bx] == 0) continue;
      assign_block_materials(mesh, geom, bx * geom.pitch, by * geom.pitch, bx * epb,
                             (bx + 1) * epb, by * epb, (by + 1) * epb);
    }
  }
  return mesh;
}

std::vector<std::uint8_t> full_tsv_mask(int nx, int ny) {
  return std::vector<std::uint8_t>(static_cast<std::size_t>(nx) * ny, 1);
}

std::vector<std::uint8_t> padded_tsv_mask(int nx, int ny, int rings) {
  if (2 * rings >= nx || 2 * rings >= ny) {
    throw std::invalid_argument("padded_tsv_mask: rings too large for the array");
  }
  std::vector<std::uint8_t> mask(static_cast<std::size_t>(nx) * ny, 0);
  for (int by = rings; by < ny - rings; ++by) {
    for (int bx = rings; bx < nx - rings; ++bx) {
      mask[static_cast<std::size_t>(by) * nx + bx] = 1;
    }
  }
  return mask;
}

std::vector<std::uint8_t> single_tsv_mask(int nx, int ny) {
  if (nx % 2 == 0 || ny % 2 == 0) {
    throw std::invalid_argument("single_tsv_mask: nx and ny must be odd");
  }
  std::vector<std::uint8_t> mask(static_cast<std::size_t>(nx) * ny, 0);
  mask[static_cast<std::size_t>(ny / 2) * nx + nx / 2] = 1;
  return mask;
}

}  // namespace ms::mesh
