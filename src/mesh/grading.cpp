#include "mesh/grading.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace ms::mesh {

std::vector<double> uniform_coords(double a, double b, int n) {
  if (n < 1 || b <= a) throw std::invalid_argument("uniform_coords: need n >= 1 and b > a");
  std::vector<double> out(static_cast<std::size_t>(n) + 1);
  for (int i = 0; i <= n; ++i) out[i] = a + (b - a) * i / n;
  out.front() = a;
  out.back() = b;
  return out;
}

std::vector<double> graded_coords(double a, double b, int target_elems,
                                  const std::vector<double>& interfaces, double merge_tol) {
  if (target_elems < 1 || b <= a) {
    throw std::invalid_argument("graded_coords: need target_elems >= 1 and b > a");
  }
  std::vector<double> anchors{a, b};
  for (double v : interfaces) {
    if (v > a + merge_tol && v < b - merge_tol) anchors.push_back(v);
  }
  std::sort(anchors.begin(), anchors.end());
  anchors.erase(std::unique(anchors.begin(), anchors.end(),
                            [&](double x, double y) { return std::fabs(x - y) <= merge_tol; }),
                anchors.end());

  const double max_h = (b - a) / target_elems;
  std::vector<double> out;
  out.push_back(anchors.front());
  for (std::size_t s = 0; s + 1 < anchors.size(); ++s) {
    const double lo = anchors[s];
    const double hi = anchors[s + 1];
    const int pieces = std::max(1, static_cast<int>(std::ceil((hi - lo) / max_h - 1e-12)));
    for (int i = 1; i <= pieces; ++i) out.push_back(lo + (hi - lo) * i / pieces);
    out.back() = hi;  // kill accumulation error at the anchor
  }
  return out;
}

std::vector<double> tile_coords(const std::vector<double>& block, int count) {
  if (block.size() < 2 || count < 1) {
    throw std::invalid_argument("tile_coords: need >= 2 coordinates and count >= 1");
  }
  const double length = block.back() - block.front();
  std::vector<double> out;
  out.reserve((block.size() - 1) * static_cast<std::size_t>(count) + 1);
  out.push_back(block.front());
  for (int rep = 0; rep < count; ++rep) {
    const double shift = rep * length;
    for (std::size_t i = 1; i < block.size(); ++i) out.push_back(block[i] + shift);
  }
  return out;
}

}  // namespace ms::mesh
