#pragma once
// The linear superposition baseline (paper Sec. 2, [Jung 2012/2014]).
//
// One-shot part: two fine FEM solves on a K x K block window — one with a
// single TSV at the centre and one pure silicon — give the per-via *delta*
// stress field on the mid-height plane (their difference). Run-time part:
// the array estimate at a sample point is the tiled background plus the sum
// of delta contributions of every via within the window.
//
// The method ignores (a) elastic coupling between neighbouring vias and
// (b) coupling between vias and gradients of the background field; these are
// exactly the error mechanisms the paper measures against MORE-Stress.

#include <functional>
#include <vector>

#include "fem/solver.hpp"
#include "fem/stress.hpp"
#include "mesh/tsv_block.hpp"

namespace ms::baseline {

using fem::Stress6;
using la::idx_t;
using la::Vec;

class SuperpositionModel {
 public:
  struct BuildOptions {
    int window_blocks = 7;       ///< K: odd window edge for the one-shot solves
    int samples_per_block = 100; ///< s: must match the comparison grid
    double thermal_load = -250.0;
    fem::FemSolveOptions fem;    ///< solver for the two one-shot FEM runs
  };

  /// Run the one-shot stage (two K x K fine FEM solves).
  static SuperpositionModel build(const mesh::TsvGeometry& geometry,
                                  const mesh::BlockMeshSpec& spec,
                                  const fem::MaterialTable& materials,
                                  const BuildOptions& options);

  /// Scenario-1 estimate: all-TSV nx x ny array, background tiled from the
  /// pure-silicon window centre. Returns the mid-plane stress field, y-major,
  /// s samples per block (same layout as the ROM/reference fields).
  [[nodiscard]] std::vector<Stress6> estimate_array(int nx, int ny) const;

  /// General estimate: `tsv_mask` marks via-carrying blocks (empty = all),
  /// `background` supplies the ambient stress per sample point (e.g. coarse
  /// chiplet stress for sub-modeling); pass nullptr to tile the built-in
  /// silicon background.
  [[nodiscard]] std::vector<Stress6> estimate(
      int nx, int ny, const std::vector<std::uint8_t>& tsv_mask,
      const std::function<Stress6(const mesh::Point3&)>* background) const;

  [[nodiscard]] int window_blocks() const { return window_; }
  [[nodiscard]] int samples_per_block() const { return s_; }
  [[nodiscard]] double build_seconds() const { return build_seconds_; }

  /// Bytes of the stored delta/background fields.
  [[nodiscard]] std::size_t memory_bytes() const;

 private:
  mesh::TsvGeometry geometry_;
  int window_ = 0;
  int s_ = 0;
  double thermal_load_ = 0.0;
  double build_seconds_ = 0.0;
  std::vector<Stress6> delta_;       ///< (K s)^2 field around the centre via
  std::vector<Stress6> background_;  ///< s^2 centre-block silicon background
};

}  // namespace ms::baseline
