#include "baseline/superposition.hpp"

#include <stdexcept>

#include "util/timer.hpp"

namespace ms::baseline {

SuperpositionModel SuperpositionModel::build(const mesh::TsvGeometry& geometry,
                                             const mesh::BlockMeshSpec& spec,
                                             const fem::MaterialTable& materials,
                                             const BuildOptions& options) {
  if (options.window_blocks < 3 || options.window_blocks % 2 == 0) {
    throw std::invalid_argument("SuperpositionModel: window_blocks must be odd and >= 3");
  }
  util::WallTimer timer;
  const int k = options.window_blocks;
  const int s = options.samples_per_block;

  SuperpositionModel model;
  model.geometry_ = geometry;
  model.window_ = k;
  model.s_ = s;
  model.thermal_load_ = options.thermal_load;

  // One-shot FEM solves: single centred via, and pure silicon.
  const mesh::HexMesh single_mesh =
      mesh::build_array_mesh(geometry, spec, k, k, mesh::single_tsv_mask(k, k));
  const mesh::HexMesh plain_mesh =
      mesh::build_array_mesh(geometry, spec, k, k,
                             std::vector<std::uint8_t>(static_cast<std::size_t>(k) * k, 0));

  const fem::PlaneGrid grid =
      fem::make_block_plane_grid(geometry.pitch, k, k, s, 0.5 * geometry.height);

  const fem::DirichletBc bc_single =
      fem::DirichletBc::clamp_nodes(single_mesh.top_bottom_nodes());
  const Vec u_single = fem::solve_thermal_stress(single_mesh, materials, options.thermal_load,
                                                 bc_single, options.fem);
  const std::vector<Stress6> f_single =
      fem::sample_plane_stress(single_mesh, materials, u_single, options.thermal_load, grid);

  const fem::DirichletBc bc_plain = fem::DirichletBc::clamp_nodes(plain_mesh.top_bottom_nodes());
  const Vec u_plain = fem::solve_thermal_stress(plain_mesh, materials, options.thermal_load,
                                                bc_plain, options.fem);
  const std::vector<Stress6> f_plain =
      fem::sample_plane_stress(plain_mesh, materials, u_plain, options.thermal_load, grid);

  // Delta field over the whole window; background from the window centre
  // block of the pure-silicon solve (far from the lateral free faces).
  model.delta_.resize(f_single.size());
  for (std::size_t i = 0; i < f_single.size(); ++i) {
    for (int r = 0; r < fem::kVoigt; ++r) model.delta_[i][r] = f_single[i][r] - f_plain[i][r];
  }
  model.background_.resize(static_cast<std::size_t>(s) * s);
  const int cb = k / 2;
  const std::size_t row_len = static_cast<std::size_t>(k) * s;
  for (int my = 0; my < s; ++my) {
    for (int mx = 0; mx < s; ++mx) {
      const std::size_t src =
          (static_cast<std::size_t>(cb) * s + my) * row_len + static_cast<std::size_t>(cb) * s + mx;
      model.background_[static_cast<std::size_t>(my) * s + mx] = f_plain[src];
    }
  }
  model.build_seconds_ = timer.seconds();
  return model;
}

std::vector<Stress6> SuperpositionModel::estimate_array(int nx, int ny) const {
  return estimate(nx, ny, {}, nullptr);
}

std::vector<Stress6> SuperpositionModel::estimate(
    int nx, int ny, const std::vector<std::uint8_t>& tsv_mask,
    const std::function<Stress6(const mesh::Point3&)>* background) const {
  if (nx < 1 || ny < 1) throw std::invalid_argument("SuperpositionModel: need nx, ny >= 1");
  if (!tsv_mask.empty() && tsv_mask.size() != static_cast<std::size_t>(nx) * ny) {
    throw std::invalid_argument("SuperpositionModel: mask size must be nx*ny");
  }
  const int s = s_;
  const int radius = window_ / 2;
  const std::size_t width = static_cast<std::size_t>(nx) * s;
  std::vector<Stress6> out(width * static_cast<std::size_t>(ny) * s);

  // Background first.
  if (background == nullptr) {
    for (int by = 0; by < ny; ++by) {
      for (int bx = 0; bx < nx; ++bx) {
        for (int my = 0; my < s; ++my) {
          for (int mx = 0; mx < s; ++mx) {
            out[(static_cast<std::size_t>(by) * s + my) * width +
                static_cast<std::size_t>(bx) * s + mx] =
                background_[static_cast<std::size_t>(my) * s + mx];
          }
        }
      }
    }
  } else {
    const double p = geometry_.pitch;
    const double z = 0.5 * geometry_.height;
    for (int by = 0; by < ny; ++by) {
      for (int my = 0; my < s; ++my) {
        const double y = (by + (my + 0.5) / s) * p;
        for (int bx = 0; bx < nx; ++bx) {
          for (int mx = 0; mx < s; ++mx) {
            const double x = (bx + (mx + 0.5) / s) * p;
            out[(static_cast<std::size_t>(by) * s + my) * width +
                static_cast<std::size_t>(bx) * s + mx] = (*background)({x, y, z});
          }
        }
      }
    }
  }

  // Add each via's delta contribution to every sample within the window.
  const std::size_t delta_row = static_cast<std::size_t>(window_) * s;
  for (int ty = 0; ty < ny; ++ty) {
    for (int tx = 0; tx < nx; ++tx) {
      const bool has_tsv =
          tsv_mask.empty() || tsv_mask[static_cast<std::size_t>(ty) * nx + tx] != 0;
      if (!has_tsv) continue;
      const int by_lo = std::max(0, ty - radius);
      const int by_hi = std::min(ny - 1, ty + radius);
      const int bx_lo = std::max(0, tx - radius);
      const int bx_hi = std::min(nx - 1, tx + radius);
      for (int by = by_lo; by <= by_hi; ++by) {
        const int wy = by - ty + radius;  // window block row
        for (int bx = bx_lo; bx <= bx_hi; ++bx) {
          const int wx = bx - tx + radius;
          for (int my = 0; my < s; ++my) {
            const std::size_t src_row = (static_cast<std::size_t>(wy) * s + my) * delta_row +
                                        static_cast<std::size_t>(wx) * s;
            const std::size_t dst_row = (static_cast<std::size_t>(by) * s + my) * width +
                                        static_cast<std::size_t>(bx) * s;
            for (int mx = 0; mx < s; ++mx) {
              const Stress6& d = delta_[src_row + mx];
              Stress6& o = out[dst_row + mx];
              for (int r = 0; r < fem::kVoigt; ++r) o[r] += d[r];
            }
          }
        }
      }
    }
  }
  return out;
}

std::size_t SuperpositionModel::memory_bytes() const {
  return (delta_.size() + background_.size()) * sizeof(Stress6);
}

}  // namespace ms::baseline
