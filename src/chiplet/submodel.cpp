#include "chiplet/submodel.hpp"

#include <algorithm>
#include <stdexcept>

namespace ms::chiplet {

std::vector<SubmodelPlacement> standard_locations(const PackageGeometry& geometry, double pitch,
                                                  int blocks_x, int blocks_y) {
  geometry.validate();
  const double wx = blocks_x * pitch;
  const double wy = blocks_y * pitch;
  const double z0 = geometry.interposer_z0();

  const double ix0 = geometry.interposer_x0();
  const double iy0 = geometry.interposer_y0();
  const double ix1 = ix0 + geometry.interposer_x;
  const double iy1 = iy0 + geometry.interposer_y;
  if (wx > geometry.interposer_x || wy > geometry.interposer_y) {
    throw std::invalid_argument("standard_locations: sub-model larger than the interposer");
  }
  const auto clamp_x = [&](double x) { return std::clamp(x, ix0, ix1 - wx); };
  const auto clamp_y = [&](double y) { return std::clamp(y, iy0, iy1 - wy); };

  const double die_cx = geometry.die_x0() + 0.5 * geometry.die_x;
  const double die_cy = geometry.die_y0() + 0.5 * geometry.die_y;
  const double die_x1 = geometry.die_x0() + geometry.die_x;
  const double die_y1 = geometry.die_y0() + geometry.die_y;

  std::vector<SubmodelPlacement> locs(5);
  // loc1: centre of the die shadow (smooth background).
  locs[0] = {{clamp_x(die_cx - 0.5 * wx), clamp_y(die_cy - 0.5 * wy), z0}, blocks_x, blocks_y,
             "loc1"};
  // loc2: straddling the die edge mid-side (moderate gradient).
  locs[1] = {{clamp_x(die_x1 - 0.5 * wx), clamp_y(die_cy - 0.5 * wy), z0}, blocks_x, blocks_y,
             "loc2"};
  // loc3: die corner (sharp background variation).
  locs[2] = {{clamp_x(die_x1 - 0.5 * wx), clamp_y(die_y1 - 0.5 * wy), z0}, blocks_x, blocks_y,
             "loc3"};
  // loc4: between die edge and interposer edge.
  locs[3] = {{clamp_x(0.5 * (die_x1 + ix1) - 0.5 * wx), clamp_y(die_cy - 0.5 * wy), z0}, blocks_x,
             blocks_y, "loc4"};
  // loc5: interposer corner (sharpest background variation).
  locs[4] = {{clamp_x(ix1 - wx), clamp_y(iy1 - wy), z0}, blocks_x, blocks_y, "loc5"};
  return locs;
}

fem::DirichletBc fine_submodel_bc(const mesh::HexMesh& fine_mesh, const PackageModel& package,
                                  const SubmodelPlacement& placement) {
  const std::vector<la::idx_t> nodes = fine_mesh.boundary_nodes();
  la::Vec values;
  values.reserve(3 * nodes.size());
  for (la::idx_t node : nodes) {
    const mesh::Point3 local = fine_mesh.node_pos(node);
    const mesh::Point3 global{local.x + placement.origin.x, local.y + placement.origin.y,
                              local.z + placement.origin.z};
    const auto u = package.displacement_at(global);
    values.insert(values.end(), u.begin(), u.end());
  }
  return fem::DirichletBc::clamp_nodes(nodes, values);
}

thermal::PowerMap demo_power_map(const PackageGeometry& geometry,
                                 const SubmodelPlacement& placement, double pitch,
                                 double background, double peak) {
  thermal::PowerMap power(32, 32, geometry.substrate_x, geometry.substrate_y, 0.0);
  power.add_rect(geometry.die_x0(), geometry.die_y0(), geometry.die_x0() + geometry.die_x,
                 geometry.die_y0() + geometry.die_y, background);
  power.add_gaussian_hotspot(placement.origin.x + 0.5 * placement.blocks_x * pitch,
                             placement.origin.y + 0.5 * placement.blocks_y * pitch, 1.5 * pitch,
                             peak);
  return power;
}

}  // namespace ms::chiplet
