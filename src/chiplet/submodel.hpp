#pragma once
// Sub-model placement in the package (paper Fig. 5(b)): the five standard
// locations loc1..loc5 of the embedded TSV array, and the extraction of
// Dirichlet data for both the ROM global stage and the reference fine FEM.

#include <string>
#include <vector>

#include "chiplet/package_model.hpp"
#include "fem/dirichlet.hpp"
#include "mesh/tsv_block.hpp"
#include "thermal/power_map.hpp"

namespace ms::chiplet {

/// Placement of a blocks_x x blocks_y sub-model (including dummy rings) in
/// package coordinates; `origin` is the lower-left-bottom corner.
struct SubmodelPlacement {
  mesh::Point3 origin;
  int blocks_x = 0;
  int blocks_y = 0;
  std::string label;
};

/// The paper's five locations for an array embedded in the interposer:
///   loc1 centre of the die shadow, loc2 die-edge middle, loc3 die corner,
///   loc4 between die edge and interposer edge, loc5 interposer corner.
/// The sub-model spans the interposer thickness; the footprint is
/// blocks_x*p x blocks_y*p. Locations are clamped to keep the sub-model
/// inside the interposer.
std::vector<SubmodelPlacement> standard_locations(const PackageGeometry& geometry, double pitch,
                                                  int blocks_x, int blocks_y);

/// Dirichlet data for a *fine mesh* of the sub-model (all outer-boundary
/// nodes take the coarse package displacement). The fine mesh lives in the
/// sub-model local frame with origin at placement.origin.
fem::DirichletBc fine_submodel_bc(const mesh::HexMesh& fine_mesh, const PackageModel& package,
                                  const SubmodelPlacement& placement);

/// The demo workload paired with demo_package_geometry: `background` W/mm^2
/// over the die shadow plus a Gaussian hotspot (sigma 1.5 pitch, `peak`
/// W/mm^2) over the centre of the sub-model window. Shared by the
/// walkthrough example and the thermal bench so both measure the same case.
thermal::PowerMap demo_power_map(const PackageGeometry& geometry,
                                 const SubmodelPlacement& placement, double pitch,
                                 double background, double peak);

}  // namespace ms::chiplet
