#include "chiplet/package_model.hpp"

#include <algorithm>
#include <stdexcept>

#include "fem/hex8.hpp"
#include "fem/stress.hpp"
#include "mesh/grading.hpp"
#include "obs/trace.hpp"

namespace ms::chiplet {

void PackageGeometry::validate() const {
  if (substrate_x <= 0 || substrate_y <= 0 || substrate_z <= 0 || interposer_z <= 0 ||
      die_z <= 0) {
    throw std::invalid_argument("PackageGeometry: dimensions must be positive");
  }
  if (interposer_x > substrate_x || interposer_y > substrate_y || die_x > interposer_x ||
      die_y > interposer_y) {
    throw std::invalid_argument("PackageGeometry: layers must nest (die <= interposer <= substrate)");
  }
}

PackageGeometry demo_package_geometry(double pitch, int padded_blocks, double tsv_height) {
  PackageGeometry g;
  g.interposer_x = g.interposer_y = std::max(600.0, 2.5 * padded_blocks * pitch);
  g.interposer_z = tsv_height;
  g.substrate_x = g.substrate_y = g.interposer_x + 400.0;
  g.substrate_z = 150.0;
  g.die_x = g.die_y = 0.5 * g.interposer_x;
  g.die_z = 80.0;
  return g;
}

CoarseMeshSpec demo_coarse_spec() { return {20, 20, 3, 2, 2}; }

fem::MaterialTable package_materials() {
  // Near-zero stiffness filler for cells outside the stack. Kept positive
  // definite so the direct factorization stays valid.
  fem::Material filler{"filler", 1.0 /*MPa*/, 0.0, 0.0};
  return fem::MaterialTable(
      {fem::silicon(), fem::copper(), fem::sio2_liner(), fem::organic_substrate(), filler});
}

mesh::HexMesh build_package_coarse_mesh(const PackageGeometry& g, const CoarseMeshSpec& spec) {
  // Grid lines conform to every layer boundary in all three axes.
  const std::vector<double> xs = mesh::graded_coords(
      0.0, g.substrate_x, spec.elems_x,
      {g.interposer_x0(), g.interposer_x0() + g.interposer_x, g.die_x0(), g.die_x0() + g.die_x});
  const std::vector<double> ys = mesh::graded_coords(
      0.0, g.substrate_y, spec.elems_y,
      {g.interposer_y0(), g.interposer_y0() + g.interposer_y, g.die_y0(), g.die_y0() + g.die_y});

  std::vector<double> zs = mesh::uniform_coords(0.0, g.substrate_z, spec.elems_z_substrate);
  {
    const auto zi =
        mesh::uniform_coords(g.interposer_z0(), g.interposer_z1(), spec.elems_z_interposer);
    zs.insert(zs.end(), zi.begin() + 1, zi.end());
    const auto zd = mesh::uniform_coords(g.interposer_z1(), g.total_z(), spec.elems_z_die);
    zs.insert(zs.end(), zd.begin() + 1, zd.end());
  }
  mesh::HexMesh mesh(xs, ys, zs);

  for (idx_t e = 0; e < mesh.num_elems(); ++e) {
    const mesh::Point3 c = mesh.elem_centroid(e);
    mesh::MaterialId id = kFillerMaterial;
    if (c.z < g.substrate_z) {
      id = mesh::MaterialId::Organic;
    } else if (c.z < g.interposer_z1()) {
      const bool inside = c.x >= g.interposer_x0() && c.x <= g.interposer_x0() + g.interposer_x &&
                          c.y >= g.interposer_y0() && c.y <= g.interposer_y0() + g.interposer_y;
      id = inside ? mesh::MaterialId::Silicon : kFillerMaterial;
    } else {
      const bool inside = c.x >= g.die_x0() && c.x <= g.die_x0() + g.die_x &&
                          c.y >= g.die_y0() && c.y <= g.die_y0() + g.die_y;
      id = inside ? mesh::MaterialId::Silicon : kFillerMaterial;
    }
    mesh.set_material(e, id);
  }
  return mesh;
}

PackageModel::PackageModel(const PackageGeometry& geometry, const CoarseMeshSpec& spec,
                           double thermal_load, fem::FemSolveOptions solve_options)
    : geometry_(geometry),
      materials_(package_materials()),
      mesh_(build_package_coarse_mesh(geometry, spec)),
      thermal_load_(thermal_load) {
  MS_TRACE_SCOPE("chiplet.package.build");
  geometry_.validate();
  // Clamp the substrate bottom face; everything else is free (warpage).
  std::vector<idx_t> bottom;
  const idx_t layer = mesh_.nodes_x() * mesh_.nodes_y();
  for (idx_t id = 0; id < layer; ++id) bottom.push_back(id);
  const fem::DirichletBc bc = fem::DirichletBc::clamp_nodes(bottom);

  solve_options.method = "direct";
  u_ = fem::solve_thermal_stress(mesh_, materials_, thermal_load_, bc, solve_options, &stats_);
}

std::array<double, 3> PackageModel::displacement_at(const mesh::Point3& p) const {
  const auto loc = mesh_.locate(p);
  const auto shapes = fem::hex8_shape(loc.xi, loc.eta, loc.zeta);
  const auto nodes = mesh_.elem_nodes(loc.elem);
  std::array<double, 3> u{};
  for (int a = 0; a < fem::kHexNodes; ++a) {
    for (int c = 0; c < 3; ++c) u[c] += shapes[a] * u_[fem::dof_of(nodes[a], c)];
  }
  return u;
}

fem::Stress6 PackageModel::stress_at(const mesh::Point3& p) const {
  return fem::stress_at(mesh_, materials_, u_, thermal_load_, p);
}

}  // namespace ms::chiplet
