#include "chiplet/displacement_field.hpp"

#include "fem/assembler.hpp"
#include "fem/hex8.hpp"

namespace ms::chiplet {

DisplacementField::DisplacementField(const mesh::HexMesh& mesh, const la::Vec& u)
    : mesh_(&mesh), u_(&u) {}

std::array<double, 3> DisplacementField::operator()(const mesh::Point3& p) const {
  const mesh::Point3 q{p.x + offset_.x, p.y + offset_.y, p.z + offset_.z};
  const auto loc = mesh_->locate(q);
  const auto shapes = fem::hex8_shape(loc.xi, loc.eta, loc.zeta);
  const auto nodes = mesh_->elem_nodes(loc.elem);
  std::array<double, 3> u{};
  for (int a = 0; a < fem::kHexNodes; ++a) {
    for (int c = 0; c < 3; ++c) u[c] += shapes[a] * (*u_)[fem::dof_of(nodes[a], c)];
  }
  return u;
}

DisplacementField DisplacementField::shifted(const mesh::Point3& offset) const {
  DisplacementField f(*mesh_, *u_);
  f.offset_ = {offset_.x + offset.x, offset_.y + offset.y, offset_.z + offset.z};
  return f;
}

}  // namespace ms::chiplet
