#pragma once
// Conduction model of the whole chiplet package (scenario 2, thermally
// coupled): one structured hex mesh over substrate + interposer + die with
// the same voxel treatment the mechanical coarse model uses, but carrying
// per-element effective conductivities instead of stiffness. Grid lines
// conform to every layer boundary AND to the unit-block boundaries of the
// embedded sub-model window, so TemperatureField::block_averages reduces the
// solved field to an exact per-block ΔT for the ROM global stage. Heat
// enters through a PowerMap on the package top face (the die active layer)
// and leaves through the substrate bottom sink installed by the thermal
// solver.

#include <cstdint>
#include <vector>

#include "chiplet/package_model.hpp"
#include "chiplet/submodel.hpp"
#include "mesh/tsv_block.hpp"
#include "thermal/conduction_assembler.hpp"

namespace ms::chiplet {

/// Mesh density and material fallbacks of the package conduction mesh.
struct PackageThermalSpec {
  int elems_per_block_xy = 2;   ///< elements across a pitch inside the window
  int coarse_elems_xy = 24;     ///< target plan resolution outside the window
  int elems_z_substrate = 3;
  int elems_z_interposer = 4;
  int elems_z_die = 3;
  /// Mold/underfill conductivity [W/(m K)] for cells outside the stack; must
  /// stay positive so the conduction operator remains SPD.
  double filler_conductivity = 0.5;
  /// Mold/underfill volumetric heat capacity [J/(m^3 K)] for the transient
  /// stepper; must stay positive so the capacitance matrix remains SPD.
  double filler_heat_capacity = 1.7e6;
  thermal::ConductivityModel conductivity_model = thermal::ConductivityModel::kTsvAware;

  void validate() const;
};

/// The assembled conduction model: mesh plus per-element orthotropic
/// conductivities (in-plane / through-plane differ only in the TSV window)
/// and per-element volumetric heat capacities (same centroid rule; consumed
/// by the transient θ-stepper).
struct PackageThermalModel {
  mesh::HexMesh mesh;
  thermal::ConductivityField conductivity;
  la::Vec capacity;
};

/// Build the package conduction mesh and its conductivity field. `placement`
/// locates the padded sub-model window (blocks_x x blocks_y unit blocks,
/// dummy rings included) inside the interposer; `tsv_mask` follows the
/// build_array_mesh convention (y-major, 1 = TSV block, empty = all TSV).
/// Dummy blocks conduct like bulk Si, active blocks take the TSV-aware
/// effective tensor of spec.conductivity_model.
PackageThermalModel build_package_thermal_model(const PackageGeometry& geometry,
                                                const mesh::TsvGeometry& tsv,
                                                const SubmodelPlacement& placement,
                                                const std::vector<std::uint8_t>& tsv_mask,
                                                const fem::MaterialTable& materials,
                                                const PackageThermalSpec& spec = {});

}  // namespace ms::chiplet
