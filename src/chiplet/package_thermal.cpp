#include "chiplet/package_thermal.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "mesh/grading.hpp"

namespace ms::chiplet {

void PackageThermalSpec::validate() const {
  if (elems_per_block_xy < 1 || coarse_elems_xy < 1 || elems_z_substrate < 1 ||
      elems_z_interposer < 1 || elems_z_die < 1) {
    throw std::invalid_argument("PackageThermalSpec: element counts must be >= 1");
  }
  if (filler_conductivity <= 0.0) {
    throw std::invalid_argument(
        "PackageThermalSpec: filler conductivity must be positive (operator must stay SPD)");
  }
  if (filler_heat_capacity <= 0.0) {
    throw std::invalid_argument(
        "PackageThermalSpec: filler heat capacity must be positive (capacitance must stay SPD)");
  }
}

namespace {

/// Plan grid lines over [0, extent]: window block boundaries and every layer
/// edge appear exactly; window intervals are cut to elems_per_block_xy per
/// pitch, everything else to the coarse target spacing.
std::vector<double> plan_lines(double extent, double w0, int window_blocks, double pitch,
                               const std::vector<double>& layer_edges,
                               const PackageThermalSpec& spec) {
  std::vector<double> breaks = {0.0, extent};
  for (int b = 0; b <= window_blocks; ++b) breaks.push_back(w0 + b * pitch);
  for (double edge : layer_edges) {
    if (edge > 1e-9 && edge < extent - 1e-9) breaks.push_back(edge);
  }
  std::sort(breaks.begin(), breaks.end());
  breaks.erase(std::unique(breaks.begin(), breaks.end(),
                           [](double a, double b) { return std::abs(a - b) < 1e-9; }),
               breaks.end());

  const double w1 = w0 + window_blocks * pitch;
  const double h_window = pitch / spec.elems_per_block_xy;
  const double h_coarse = extent / spec.coarse_elems_xy;
  std::vector<double> lines = {breaks.front()};
  for (std::size_t s = 0; s + 1 < breaks.size(); ++s) {
    const double a = breaks[s];
    const double b = breaks[s + 1];
    const double mid = 0.5 * (a + b);
    const double h = (mid > w0 && mid < w1) ? h_window : h_coarse;
    const int n = std::max(1, static_cast<int>(std::ceil((b - a) / h - 1e-9)));
    for (int i = 1; i <= n; ++i) lines.push_back(a + (b - a) * i / n);
  }
  return lines;
}

}  // namespace

PackageThermalModel build_package_thermal_model(const PackageGeometry& geometry,
                                                const mesh::TsvGeometry& tsv,
                                                const SubmodelPlacement& placement,
                                                const std::vector<std::uint8_t>& tsv_mask,
                                                const fem::MaterialTable& materials,
                                                const PackageThermalSpec& spec) {
  geometry.validate();
  tsv.validate();
  spec.validate();
  const int wbx = placement.blocks_x;
  const int wby = placement.blocks_y;
  if (wbx < 1 || wby < 1) {
    throw std::invalid_argument("build_package_thermal_model: placement needs >= 1 block");
  }
  if (!tsv_mask.empty() && tsv_mask.size() != static_cast<std::size_t>(wbx) * wby) {
    throw std::invalid_argument("build_package_thermal_model: mask size must be blocks_x*blocks_y");
  }
  const double wx0 = placement.origin.x;
  const double wy0 = placement.origin.y;
  const double wx1 = wx0 + wbx * tsv.pitch;
  const double wy1 = wy0 + wby * tsv.pitch;
  const double tol = 1e-6 * geometry.substrate_x;
  if (wx0 < geometry.interposer_x0() - tol ||
      wx1 > geometry.interposer_x0() + geometry.interposer_x + tol ||
      wy0 < geometry.interposer_y0() - tol ||
      wy1 > geometry.interposer_y0() + geometry.interposer_y + tol) {
    throw std::invalid_argument(
        "build_package_thermal_model: sub-model window must lie inside the interposer");
  }

  // --- mesh: plan lines conform to layers + window blocks, z to layers -----
  const std::vector<double> xs = plan_lines(
      geometry.substrate_x, wx0, wbx, tsv.pitch,
      {geometry.interposer_x0(), geometry.interposer_x0() + geometry.interposer_x,
       geometry.die_x0(), geometry.die_x0() + geometry.die_x},
      spec);
  const std::vector<double> ys = plan_lines(
      geometry.substrate_y, wy0, wby, tsv.pitch,
      {geometry.interposer_y0(), geometry.interposer_y0() + geometry.interposer_y,
       geometry.die_y0(), geometry.die_y0() + geometry.die_y},
      spec);
  std::vector<double> zs =
      mesh::uniform_coords(0.0, geometry.substrate_z, spec.elems_z_substrate);
  {
    const auto zi = mesh::uniform_coords(geometry.interposer_z0(), geometry.interposer_z1(),
                                         spec.elems_z_interposer);
    zs.insert(zs.end(), zi.begin() + 1, zi.end());
    const auto zd =
        mesh::uniform_coords(geometry.interposer_z1(), geometry.total_z(), spec.elems_z_die);
    zs.insert(zs.end(), zd.begin() + 1, zd.end());
  }

  PackageThermalModel model;
  model.mesh = mesh::HexMesh(xs, ys, zs);

  // --- per-element conductivities (centroid rule, like the voxel mesher) ---
  const double k_si = materials.at(mesh::MaterialId::Silicon).conductivity;
  const double k_organic = materials.at(mesh::MaterialId::Organic).conductivity;
  if (k_si <= 0.0 || k_organic <= 0.0) {
    throw std::invalid_argument(
        "build_package_thermal_model: Si and substrate conductivities must be positive");
  }
  const thermal::BlockConductivityMap window_blocks(tsv, materials, wbx, wby, tsv_mask,
                                                    spec.conductivity_model);
  const thermal::BlockBinning window_binning(wbx, wby, tsv.pitch, tsv_mask);
  const double c_si = materials.at(mesh::MaterialId::Silicon).volumetric_heat_capacity;
  const double c_organic = materials.at(mesh::MaterialId::Organic).volumetric_heat_capacity;
  const double c_tsv =
      thermal::block_capacity(tsv, materials, /*is_tsv=*/true, spec.conductivity_model);
  const double c_dummy =
      thermal::block_capacity(tsv, materials, /*is_tsv=*/false, spec.conductivity_model);

  const mesh::HexMesh& m = model.mesh;
  model.conductivity.in_plane.resize(static_cast<std::size_t>(m.num_elems()));
  model.conductivity.through_plane.resize(static_cast<std::size_t>(m.num_elems()));
  model.capacity.resize(static_cast<std::size_t>(m.num_elems()));
  for (la::idx_t e = 0; e < m.num_elems(); ++e) {
    const mesh::Point3 c = m.elem_centroid(e);
    double k_in = spec.filler_conductivity;
    double k_through = spec.filler_conductivity;
    double cap = spec.filler_heat_capacity;
    if (c.z < geometry.substrate_z) {
      k_in = k_through = k_organic;
      cap = c_organic;
    } else if (c.z < geometry.interposer_z1()) {
      const bool in_interposer =
          c.x >= geometry.interposer_x0() &&
          c.x <= geometry.interposer_x0() + geometry.interposer_x &&
          c.y >= geometry.interposer_y0() &&
          c.y <= geometry.interposer_y0() + geometry.interposer_y;
      if (in_interposer) {
        if (c.x > wx0 && c.x < wx1 && c.y > wy0 && c.y < wy1) {
          const thermal::BlockConductivity& k = window_blocks.at(c.x - wx0, c.y - wy0);
          k_in = k.in_plane;
          k_through = k.through_plane;
          cap = window_binning.is_tsv(c.x - wx0, c.y - wy0) ? c_tsv : c_dummy;
        } else {
          k_in = k_through = k_si;
          cap = c_si;
        }
      }
    } else {
      const bool in_die = c.x >= geometry.die_x0() && c.x <= geometry.die_x0() + geometry.die_x &&
                          c.y >= geometry.die_y0() && c.y <= geometry.die_y0() + geometry.die_y;
      if (in_die) {
        k_in = k_through = k_si;
        cap = c_si;
      }
    }
    model.conductivity.in_plane[e] = k_in;
    model.conductivity.through_plane[e] = k_through;
    model.capacity[e] = cap;
  }
  return model;
}

}  // namespace ms::chiplet
