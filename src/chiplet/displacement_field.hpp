#pragma once
// A displacement field probe over any solved FEM model: wraps (mesh, u) and
// interpolates trilinearly at arbitrary points. Used to transfer the coarse
// package solution onto sub-model boundaries (paper Sec. 4.4) and in tests
// to compare fields between solvers.

#include <array>

#include "la/vec.hpp"
#include "mesh/hex_mesh.hpp"

namespace ms::chiplet {

class DisplacementField {
 public:
  /// References are kept; mesh and u must outlive the field.
  DisplacementField(const mesh::HexMesh& mesh, const la::Vec& u);

  /// Trilinear interpolation of the displacement vector at p (points outside
  /// the mesh are clamped to the nearest element, like HexMesh::locate).
  [[nodiscard]] std::array<double, 3> operator()(const mesh::Point3& p) const;

  /// Same field expressed in a coordinate frame shifted by `offset` (the
  /// sub-model's local frame): query(p_local) = field(p_local + offset).
  [[nodiscard]] DisplacementField shifted(const mesh::Point3& offset) const;

 private:
  const mesh::HexMesh* mesh_;
  const la::Vec* u_;
  mesh::Point3 offset_{};
};

}  // namespace ms::chiplet
