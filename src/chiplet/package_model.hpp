#pragma once
// Coarse chiplet package model for the sub-modeling scenario (paper Fig.
// 5(b)): an organic substrate carrying a silicon interposer carrying a
// silicon die. The coarse mesh is a single structured grid over the package
// bounding box; cells outside the stack get a near-zero-stiffness filler
// material (standard voxel treatment of voids), and the model is solved
// once with a sparse direct factorization. Its displacement field supplies
// the sub-model boundary conditions; its stress field supplies the
// superposition baseline's background.

#include "fem/material.hpp"
#include "fem/solver.hpp"
#include "fem/stress.hpp"
#include "mesh/hex_mesh.hpp"

namespace ms::chiplet {

using la::idx_t;
using la::Vec;

/// All dimensions in micrometres. The interposer thickness should equal the
/// TSV height so unit blocks span it exactly.
struct PackageGeometry {
  double substrate_x = 3000.0, substrate_y = 3000.0, substrate_z = 200.0;
  double interposer_x = 2000.0, interposer_y = 2000.0, interposer_z = 50.0;
  double die_x = 1000.0, die_y = 1000.0, die_z = 100.0;

  [[nodiscard]] double total_z() const { return substrate_z + interposer_z + die_z; }
  /// z-range of the interposer layer.
  [[nodiscard]] double interposer_z0() const { return substrate_z; }
  [[nodiscard]] double interposer_z1() const { return substrate_z + interposer_z; }
  /// Lower-left corner of the interposer in plan (package is centred).
  [[nodiscard]] double interposer_x0() const { return 0.5 * (substrate_x - interposer_x); }
  [[nodiscard]] double interposer_y0() const { return 0.5 * (substrate_y - interposer_y); }
  [[nodiscard]] double die_x0() const { return 0.5 * (substrate_x - die_x); }
  [[nodiscard]] double die_y0() const { return 0.5 * (substrate_y - die_y); }

  void validate() const;
};

/// Extra material id for the void filler (appended after the standard set).
inline constexpr auto kFillerMaterial = static_cast<mesh::MaterialId>(4);

/// Material table = standard set + near-zero filler.
fem::MaterialTable package_materials();

struct CoarseMeshSpec {
  int elems_x = 24;
  int elems_y = 24;
  int elems_z_substrate = 3;
  int elems_z_interposer = 2;
  int elems_z_die = 2;
};

/// Demo package sized to host a padded_blocks x padded_blocks sub-model
/// window with comfortable margin (interposer thickness = TSV height, die
/// shadowing half the interposer). Shared by the walkthrough example and the
/// thermal bench so their measurements describe the same package.
PackageGeometry demo_package_geometry(double pitch, int padded_blocks, double tsv_height);

/// The coarse mechanical mesh density paired with demo_package_geometry.
CoarseMeshSpec demo_coarse_spec();

/// The coarse package mesh on its own (layer-conforming grid lines, material
/// ids assigned per layer): what PackageModel solves on, exposed so benches
/// and tests can assemble the package stiffness matrix without paying for a
/// solve.
mesh::HexMesh build_package_coarse_mesh(const PackageGeometry& geometry,
                                        const CoarseMeshSpec& spec);

/// The solved coarse package model.
class PackageModel {
 public:
  /// Build the coarse mesh, clamp the substrate bottom, solve for the given
  /// thermal load with a sparse direct factorization (AMD + supernodal by
  /// default; `solve_options` overrides the solver configuration — the
  /// method is forced to "direct").
  PackageModel(const PackageGeometry& geometry, const CoarseMeshSpec& spec, double thermal_load,
               fem::FemSolveOptions solve_options = {});

  [[nodiscard]] const PackageGeometry& geometry() const { return geometry_; }
  [[nodiscard]] const mesh::HexMesh& mesh() const { return mesh_; }
  [[nodiscard]] const fem::MaterialTable& materials() const { return materials_; }
  [[nodiscard]] const Vec& displacement() const { return u_; }
  [[nodiscard]] double thermal_load() const { return thermal_load_; }
  [[nodiscard]] const fem::FemSolveStats& stats() const { return stats_; }

  /// Coarse displacement at an arbitrary package point (trilinear).
  [[nodiscard]] std::array<double, 3> displacement_at(const mesh::Point3& p) const;

  /// Coarse stress tensor at an arbitrary package point.
  [[nodiscard]] fem::Stress6 stress_at(const mesh::Point3& p) const;

 private:
  PackageGeometry geometry_;
  fem::MaterialTable materials_;
  mesh::HexMesh mesh_;
  double thermal_load_;
  Vec u_;
  fem::FemSolveStats stats_;
};

}  // namespace ms::chiplet
