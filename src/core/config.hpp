#pragma once
// Top-level configuration of a MORE-Stress run: geometry, materials, fine
// mesh density, interpolation-node counts, and solver choices. Every bench
// and example builds one of these and hands it to MoreStressSimulator.

#include "core/options.hpp"
#include "fem/material.hpp"
#include "fem/solver.hpp"
#include "mesh/tsv_block.hpp"
#include "rom/global_solver.hpp"
#include "rom/local_stage.hpp"
#include "thermal/thermal_solver.hpp"

namespace ms::core {

struct SimulationConfig {
  mesh::TsvGeometry geometry;
  mesh::BlockMeshSpec mesh_spec;
  fem::MaterialTable materials = fem::MaterialTable::standard();
  rom::LocalStageOptions local;    ///< (nx, ny, nz), sample resolution
  rom::GlobalSolveOptions global;  ///< reduced-system solver
  double thermal_load = -250.0;    ///< uniform ΔT [°C]: reflow 275°C -> room 25°C
  ThermalCouplingOptions coupling; ///< power-map -> ΔT coupling (thermal runs)
  RobustnessOptions robustness;    ///< numeric health guards (core/health.hpp)

  /// The paper's default configuration (Sec. 5.2): p=15, d=5, t=0.5, h=50,
  /// ΔT=-250, (4,4,4) nodes.
  static SimulationConfig paper_default();
};

}  // namespace ms::core
