#pragma once
// Top-level configuration of a MORE-Stress run: geometry, materials, fine
// mesh density, interpolation-node counts, and solver choices. Every bench
// and example builds one of these and hands it to MoreStressSimulator.

#include "fem/material.hpp"
#include "fem/solver.hpp"
#include "mesh/tsv_block.hpp"
#include "rom/global_solver.hpp"
#include "rom/local_stage.hpp"
#include "thermal/thermal_solver.hpp"

namespace ms::core {

/// Controls of the conduction -> ROM coupling (simulate_array_thermal and
/// simulate_submodel_thermal): the coarse thermal meshes, the conduction
/// solve, and the reference temperature the per-block ΔT is measured from.
struct ThermalCouplingOptions {
  thermal::ThermalSolveOptions solve;  ///< sink/ambient + conduction solver
  /// Transient-run controls (simulate_array_thermal_transient): time step,
  /// step count, θ-scheme, capacitance lumping. The sink/ambient data is
  /// taken from `solve` so steady and transient runs see one boundary model.
  thermal::TransientSolveOptions transient;
  int elems_per_block_xy = 2;          ///< thermal-mesh elements across a pitch
  int elems_z = 8;                     ///< elements through the block height
                                       ///< (array mesh / interposer layer)
  /// Stress-free temperature [C]: ΔT_block = T_block - stress_free. The
  /// default equals the ambient, so stresses are purely operational
  /// (power-driven); set it to the reflow temperature to superpose the
  /// paper's assembly load.
  double stress_free_temperature = 25.0;
  /// How per-block effective conductivities are derived. kTsvAware resolves
  /// dummy blocks (bulk Si) vs active blocks (anisotropic in-plane /
  /// through-plane); kViaAveraged keeps the PR-1 single isotropic average.
  thermal::ConductivityModel conductivity_model = thermal::ConductivityModel::kTsvAware;
  // Package conduction mesh (simulate_submodel_thermal only):
  int package_coarse_elems_xy = 24;      ///< plan resolution outside the window
  int package_elems_z_substrate = 3;
  int package_elems_z_die = 3;
  double package_filler_conductivity = 0.5;  ///< mold/underfill [W/(m K)]
};

struct SimulationConfig {
  mesh::TsvGeometry geometry;
  mesh::BlockMeshSpec mesh_spec;
  fem::MaterialTable materials = fem::MaterialTable::standard();
  rom::LocalStageOptions local;    ///< (nx, ny, nz), sample resolution
  rom::GlobalSolveOptions global;  ///< reduced-system solver
  double thermal_load = -250.0;    ///< uniform ΔT [°C]: reflow 275°C -> room 25°C
  ThermalCouplingOptions coupling; ///< power-map -> ΔT coupling (thermal runs)

  /// The paper's default configuration (Sec. 5.2): p=15, d=5, t=0.5, h=50,
  /// ΔT=-250, (4,4,4) nodes.
  static SimulationConfig paper_default();
};

}  // namespace ms::core
