#include "core/report.hpp"

#include <cmath>
#include <cstdio>

#include "fem/stress.hpp"
#include "mesh/tsv_block.hpp"

namespace ms::core {
namespace {

ReferenceResult sample_reference(const mesh::HexMesh& mesh, const SimulationConfig& config,
                                 const la::Vec& u, const fem::FemSolveStats& stats,
                                 double x0_blocks, double y0_blocks, int region_x, int region_y) {
  ReferenceResult result;
  result.stats = stats;
  fem::PlaneGrid grid = fem::make_block_plane_grid(config.geometry.pitch, region_x, region_y,
                                                   config.local.samples_per_block,
                                                   0.5 * config.geometry.height);
  // Shift the grid into the mesh frame when the region excludes dummy rings.
  for (double& x : grid.xs) x += x0_blocks * config.geometry.pitch;
  for (double& y : grid.ys) y += y0_blocks * config.geometry.pitch;
  const auto stress =
      fem::sample_plane_stress(mesh, config.materials, u, config.thermal_load, grid);
  result.von_mises = fem::to_von_mises(stress);
  result.field_bytes = result.von_mises.size() * sizeof(double);
  return result;
}

}  // namespace

ReferenceResult reference_array(const SimulationConfig& config, int blocks_x, int blocks_y,
                                const fem::FemSolveOptions& options) {
  const mesh::HexMesh mesh =
      mesh::build_array_mesh(config.geometry, config.mesh_spec, blocks_x, blocks_y);
  const fem::DirichletBc bc = fem::DirichletBc::clamp_nodes(mesh.top_bottom_nodes());
  fem::FemSolveStats stats;
  const la::Vec u =
      fem::solve_thermal_stress(mesh, config.materials, config.thermal_load, bc, options, &stats);
  return sample_reference(mesh, config, u, stats, 0.0, 0.0, blocks_x, blocks_y);
}

ReferenceResult reference_submodel(
    const SimulationConfig& config, int tsv_blocks_x, int tsv_blocks_y, int dummy_rings,
    const std::function<std::array<double, 3>(const mesh::Point3&)>& displacement,
    const fem::FemSolveOptions& options) {
  const int bx = tsv_blocks_x + 2 * dummy_rings;
  const int by = tsv_blocks_y + 2 * dummy_rings;
  const mesh::HexMesh mesh = mesh::build_array_mesh(config.geometry, config.mesh_spec, bx, by,
                                                    mesh::padded_tsv_mask(bx, by, dummy_rings));
  // Prescribe the coarse displacement on every outer-boundary node.
  const std::vector<la::idx_t> bnodes = mesh.boundary_nodes();
  la::Vec values;
  values.reserve(3 * bnodes.size());
  for (la::idx_t node : bnodes) {
    const auto u = displacement(mesh.node_pos(node));
    values.insert(values.end(), u.begin(), u.end());
  }
  const fem::DirichletBc bc = fem::DirichletBc::clamp_nodes(bnodes, values);
  fem::FemSolveStats stats;
  const la::Vec u =
      fem::solve_thermal_stress(mesh, config.materials, config.thermal_load, bc, options, &stats);
  return sample_reference(mesh, config, u, stats, dummy_rings, dummy_rings, tsv_blocks_x,
                          tsv_blocks_y);
}

double field_error(const ReferenceResult& reference, const std::vector<double>& field) {
  return fem::normalized_mae(reference.von_mises, field);
}

namespace {

void append_lifetime(std::string& out, double cycles, double seconds_per_trace) {
  char buf[128];
  if (!std::isfinite(cycles)) {
    out += "damage-free";
    return;
  }
  std::snprintf(buf, sizeof(buf), "%.3g trace passes", cycles);
  out += buf;
  if (seconds_per_trace > 0.0) {
    std::snprintf(buf, sizeof(buf), " (%.3g s)", cycles * seconds_per_trace);
    out += buf;
  }
}

}  // namespace

std::string format_reliability(const reliability::ReliabilityReport& report) {
  char buf[256];
  std::string out;
  std::snprintf(buf, sizeof(buf), "reliability verdict over %d x %d blocks:\n", report.blocks_x,
                report.blocks_y);
  out += buf;
  out += "  governing: ";
  if (report.min_life_block < 0) {
    out += "no damaging cycles in any channel\n";
  } else {
    std::snprintf(buf, sizeof(buf), "block (%d, %d), channel %s, lifetime ",
                  report.min_life_block % report.blocks_x,
                  report.min_life_block / report.blocks_x,
                  reliability::channel_name(report.min_life_channel));
    out += buf;
    append_lifetime(out, report.min_life_cycles, report.trace_duration);
    out += "\n";
  }
  for (const reliability::ChannelAssessment& a : report.channels) {
    std::snprintf(buf, sizeof(buf), "  %-16s [%s]: min lifetime ",
                  reliability::channel_name(a.channel), a.model_name.c_str());
    out += buf;
    append_lifetime(out, a.min_life_cycles, report.trace_duration);
    if (a.min_life_block >= 0) {
      const reliability::RainflowMatrix& m = a.min_life_matrix;
      const int bin = m.dominant_bin();
      if (bin >= 0) {
        std::snprintf(buf, sizeof(buf),
                      ", dominant cycle class %.1f MPa range at %.1f MPa mean (%.1f counts)",
                      m.range_bin_centre(bin / m.mean_bins), m.mean_bin_centre(bin % m.mean_bins),
                      m.at(bin / m.mean_bins, bin % m.mean_bins));
        out += buf;
      }
    }
    out += "\n";
  }
  return out;
}

}  // namespace ms::core
