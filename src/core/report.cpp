#include "core/report.hpp"

#include "fem/stress.hpp"
#include "mesh/tsv_block.hpp"

namespace ms::core {
namespace {

ReferenceResult sample_reference(const mesh::HexMesh& mesh, const SimulationConfig& config,
                                 const la::Vec& u, const fem::FemSolveStats& stats,
                                 double x0_blocks, double y0_blocks, int region_x, int region_y) {
  ReferenceResult result;
  result.stats = stats;
  fem::PlaneGrid grid = fem::make_block_plane_grid(config.geometry.pitch, region_x, region_y,
                                                   config.local.samples_per_block,
                                                   0.5 * config.geometry.height);
  // Shift the grid into the mesh frame when the region excludes dummy rings.
  for (double& x : grid.xs) x += x0_blocks * config.geometry.pitch;
  for (double& y : grid.ys) y += y0_blocks * config.geometry.pitch;
  const auto stress =
      fem::sample_plane_stress(mesh, config.materials, u, config.thermal_load, grid);
  result.von_mises = fem::to_von_mises(stress);
  result.field_bytes = result.von_mises.size() * sizeof(double);
  return result;
}

}  // namespace

ReferenceResult reference_array(const SimulationConfig& config, int blocks_x, int blocks_y,
                                const fem::FemSolveOptions& options) {
  const mesh::HexMesh mesh =
      mesh::build_array_mesh(config.geometry, config.mesh_spec, blocks_x, blocks_y);
  const fem::DirichletBc bc = fem::DirichletBc::clamp_nodes(mesh.top_bottom_nodes());
  fem::FemSolveStats stats;
  const la::Vec u =
      fem::solve_thermal_stress(mesh, config.materials, config.thermal_load, bc, options, &stats);
  return sample_reference(mesh, config, u, stats, 0.0, 0.0, blocks_x, blocks_y);
}

ReferenceResult reference_submodel(
    const SimulationConfig& config, int tsv_blocks_x, int tsv_blocks_y, int dummy_rings,
    const std::function<std::array<double, 3>(const mesh::Point3&)>& displacement,
    const fem::FemSolveOptions& options) {
  const int bx = tsv_blocks_x + 2 * dummy_rings;
  const int by = tsv_blocks_y + 2 * dummy_rings;
  const mesh::HexMesh mesh = mesh::build_array_mesh(config.geometry, config.mesh_spec, bx, by,
                                                    mesh::padded_tsv_mask(bx, by, dummy_rings));
  // Prescribe the coarse displacement on every outer-boundary node.
  const std::vector<la::idx_t> bnodes = mesh.boundary_nodes();
  la::Vec values;
  values.reserve(3 * bnodes.size());
  for (la::idx_t node : bnodes) {
    const auto u = displacement(mesh.node_pos(node));
    values.insert(values.end(), u.begin(), u.end());
  }
  const fem::DirichletBc bc = fem::DirichletBc::clamp_nodes(bnodes, values);
  fem::FemSolveStats stats;
  const la::Vec u =
      fem::solve_thermal_stress(mesh, config.materials, config.thermal_load, bc, options, &stats);
  return sample_reference(mesh, config, u, stats, dummy_rings, dummy_rings, tsv_blocks_x,
                          tsv_blocks_y);
}

double field_error(const ReferenceResult& reference, const std::vector<double>& field) {
  return fem::normalized_mae(reference.von_mises, field);
}

}  // namespace ms::core
