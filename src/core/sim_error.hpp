#pragma once
// The error taxonomy of the query service. Every failure a scenario can hit
// — bad spec, numeric breakdown, NaN escape, deadline, cancellation, an
// injected test fault — is classified into one SimErrorCode and carried by
// core::SimError together with the pipeline stage that raised it and the
// spec / cache-key context, so SweepEngine::run() can isolate a failing
// scenario into its result row instead of destroying the batch (DESIGN.md
// "Failure semantics").
//
// Header is dependency-free on purpose: la/, thermal/, and rom/ throw
// SimError from stage boundaries without pulling in the simulator.

#include <stdexcept>
#include <string>

namespace ms::core {

enum class SimErrorCode {
  kInvalidSpec,          ///< scenario/config validation rejected the inputs
  kNotPositiveDefinite,  ///< Cholesky pivot breakdown after shift-retry gave up
  kNonFiniteField,       ///< a stage-boundary health sweep found NaN/Inf
  kDidNotConverge,       ///< an iterative solver failed or broke down
  kDeadlineExceeded,     ///< the per-query deadline passed at a check point
  kCancelled,            ///< the query's CancelToken was cancelled
  kFaultInjected,        ///< util::FaultInjector fired a `throw` probe
  kInternal,             ///< anything not classified above
};

inline const char* to_string(SimErrorCode code) {
  switch (code) {
    case SimErrorCode::kInvalidSpec: return "invalid-spec";
    case SimErrorCode::kNotPositiveDefinite: return "not-positive-definite";
    case SimErrorCode::kNonFiniteField: return "non-finite-field";
    case SimErrorCode::kDidNotConverge: return "did-not-converge";
    case SimErrorCode::kDeadlineExceeded: return "deadline-exceeded";
    case SimErrorCode::kCancelled: return "cancelled";
    case SimErrorCode::kFaultInjected: return "fault-injected";
    case SimErrorCode::kInternal: return "internal";
  }
  return "?";
}

class SimError : public std::runtime_error {
 public:
  /// `stage` names the pipeline boundary ("global.solve", "thermal.transient.step",
  /// "rom.global.factor", ...); `context` is free-form detail — the scenario
  /// name, a cache key, the offending value.
  SimError(SimErrorCode code, std::string stage, const std::string& message,
           std::string context = "")
      : std::runtime_error(std::string("[") + to_string(code) + "] " + stage + ": " + message +
                           (context.empty() ? "" : " (" + context + ")")),
        code_(code),
        stage_(std::move(stage)),
        context_(std::move(context)) {}

  [[nodiscard]] SimErrorCode code() const { return code_; }
  [[nodiscard]] const std::string& stage() const { return stage_; }
  [[nodiscard]] const std::string& context() const { return context_; }

 private:
  SimErrorCode code_;
  std::string stage_;
  std::string context_;
};

}  // namespace ms::core
