#pragma once
// Reference-comparison helpers shared by the benches and EXPERIMENTS.md:
// run the full fine-mesh FEM (ANSYS substitute) on the matching array or
// sub-model and package times, memory, and normalized MAE — plus the
// human-readable rendering of reliability verdicts.

#include <optional>
#include <string>

#include "core/simulator.hpp"
#include "fem/solver.hpp"
#include "reliability/damage.hpp"

namespace ms::core {

/// Result of a reference (full FEM) run on the comparison plane.
struct ReferenceResult {
  std::vector<double> von_mises;      ///< same grid/layout as ArrayResult
  fem::FemSolveStats stats;
  std::size_t field_bytes = 0;
};

/// Full fine FEM of a standalone array (scenario 1), sampled on the same
/// mid-plane grid the ROM uses.
ReferenceResult reference_array(const SimulationConfig& config, int blocks_x, int blocks_y,
                                const fem::FemSolveOptions& options);

/// Full fine FEM of a padded sub-model with prescribed boundary
/// displacements (scenario 2); the field covers the inner TSV region only.
ReferenceResult reference_submodel(
    const SimulationConfig& config, int tsv_blocks_x, int tsv_blocks_y, int dummy_rings,
    const std::function<std::array<double, 3>(const mesh::Point3&)>& displacement,
    const fem::FemSolveOptions& options);

/// Normalized MAE (paper Sec. 5.2) between a reference field and any other
/// field on the same grid.
double field_error(const ReferenceResult& reference, const std::vector<double>& field);

/// Multi-line summary of a reliability verdict: governing block/channel and
/// lifetime, then per-channel min lifetimes, damage rates, and the dominant
/// cycle class (range/mean bin) of each channel's worst block.
std::string format_reliability(const reliability::ReliabilityReport& report);

}  // namespace ms::core
