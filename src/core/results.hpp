#pragma once
// Result structs of every simulate_* scenario, split out of simulator.hpp
// so consumers that only carry results around (sweep::ScenarioResult, report
// writers) need not pull in the simulator, the package model, or the solver
// entry points.

#include <string>
#include <vector>

#include "fem/stress.hpp"
#include "la/types.hpp"
#include "reliability/damage.hpp"
#include "reliability/stress_history.hpp"
#include "rom/global_solver.hpp"
#include "rom/load_field.hpp"
#include "thermal/temperature_field.hpp"
#include "thermal/thermal_solver.hpp"

namespace ms::core {

using la::idx_t;
using la::Vec;

/// Cost/quality record of one global-stage run.
struct RunStats {
  double local_stage_seconds = 0.0;   ///< one-shot cost (amortized)
  double assemble_seconds = 0.0;
  double solve_seconds = 0.0;
  double reconstruct_seconds = 0.0;
  idx_t global_dofs = 0;
  idx_t iterations = 0;
  bool converged = false;
  std::size_t memory_bytes = 0;       ///< models + matrix + solver workspace
  // Direct-path factorization detail (zero / empty on iterative paths):
  double factor_seconds = 0.0;        ///< inside solve_seconds
  la::offset_t factor_nnz = 0;        ///< nnz(L) of the global factor
  double fill_ratio = 0.0;            ///< nnz(L) / nnz(tril(K))
  std::string solver_ordering;        ///< "amd" / "rcm" / "natural"
  /// Set when the global factorization was rescued by the diagonal
  /// shift-retry ladder (la/shift_retry.hpp): results are usable but solve
  /// A + shift*I rather than A.
  bool degraded = false;
  double diagonal_shift = 0.0;

  /// Paper's "computational time of our algorithm": the global stage only.
  [[nodiscard]] double global_seconds() const {
    return assemble_seconds + solve_seconds + reconstruct_seconds;
  }
};

struct ArrayResult {
  std::vector<double> von_mises;      ///< mid-plane field over the region
  std::vector<fem::Stress6> stress;   ///< full tensors, same layout
  int region_blocks_x = 0;
  int region_blocks_y = 0;
  int samples_per_block = 0;
  Vec solution;                       ///< global nodal displacement
  RunStats stats;
};

/// Result of a coupled power-map run: the stress fields of ArrayResult plus
/// the temperature solution and the per-block ΔT it induced (load.values()
/// holds the raw y-major ΔT vector).
struct ThermalArrayResult : ArrayResult {
  thermal::TemperatureField temperature;  ///< nodal field on the thermal mesh
  rom::BlockLoadField load;               ///< per-block ΔT fed to the ROM
  thermal::ThermalSolveStats thermal_stats;
};

/// Result of a transient power-trace run. The ArrayResult base holds the
/// stress at the per-block *peak-envelope* ΔT — per block, the recorded ΔT
/// of largest magnitude (signed), i.e. the worst instantaneous thermal
/// state over the trace whether ΔT is measured from ambient (heating) or
/// from a reflow reference (cooling). `snapshots` holds full ROM runs at
/// user-selected recorded steps for time-resolved views.
struct ThermalTransientArrayResult : ArrayResult {
  thermal::TransientTemperatureResult transient;  ///< ΔT histories + envelope
  rom::BlockLoadField envelope_load;              ///< per-block peak ΔT fed to the ROM
  thermal::TransientSolveStats thermal_stats;
  std::vector<int> snapshot_steps;                ///< indices into transient.times
  std::vector<ArrayResult> snapshots;             ///< one ROM run per requested step
};

/// Result of a coupled sub-model run: stress fields over the inner TSV
/// region plus the package-wide temperature solution and the per-block ΔT
/// of the padded window (dummy rings included, y-major).
struct ThermalSubmodelResult : ArrayResult {
  thermal::TemperatureField temperature;  ///< nodal field on the package mesh
  rom::BlockLoadField load;               ///< padded-window per-block ΔT
  thermal::ThermalSolveStats thermal_stats;
};

/// Result of a transient sub-model run (scenario 2 marched through a power
/// trace): the ArrayResult base holds the stress of the inner TSV region at
/// the padded-window peak-envelope ΔT; `transient` records the windowed
/// per-block ΔT history on the package conduction mesh.
struct ThermalTransientSubmodelResult : ArrayResult {
  thermal::TransientTemperatureResult transient;  ///< windowed ΔT histories
  rom::BlockLoadField envelope_load;              ///< padded-window peak ΔT
  thermal::TransientSolveStats thermal_stats;
};

/// Result of a cycle-resolved fatigue run (array or sub-model scenario).
/// The ArrayResult base is the peak-envelope stress solve; the per-step
/// stress states ride in `history` as per-block channel records — the full
/// fields are reduced step by step and never kept. The envelope and every
/// recorded step share one global assembly and one factorization
/// (solve_stats.num_factorizations == 1 on the direct path,
/// solve_stats.num_rhs == history steps + 1).
struct FatigueResult : ArrayResult {
  thermal::TransientTemperatureResult transient;  ///< per-block ΔT histories
  rom::BlockLoadField envelope_load;              ///< peak ΔT fed to the base solve
  thermal::TransientSolveStats thermal_stats;
  std::vector<int> history_steps;           ///< recorded-history indices ROM-solved
  reliability::StressHistory history;       ///< per-step per-block channel peaks
  reliability::ReliabilityReport report;    ///< rainflow + Miner verdict
  rom::GlobalSolveStats solve_stats;        ///< the one batched envelope+steps panel
  double history_seconds = 0.0;             ///< per-step reconstruction + reduction
  double reliability_seconds = 0.0;         ///< rainflow counting + damage models
};

}  // namespace ms::core
