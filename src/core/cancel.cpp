#include "core/cancel.hpp"

#include "obs/metrics.hpp"

namespace ms::core {

void CancelToken::check_slow(const char* stage) const {
  if (cancelled()) {
    obs::MetricRegistry::global().counter("robustness.cancelled").add(1);
    throw SimError(SimErrorCode::kCancelled, stage, "query cancelled");
  }
  if (deadline_expired()) {
    obs::MetricRegistry::global().counter("robustness.deadline_exceeded").add(1);
    throw SimError(SimErrorCode::kDeadlineExceeded, stage, "query deadline exceeded");
  }
}

}  // namespace ms::core
