#pragma once
// The per-scenario option structs, consolidated in one header so every
// consumer — SimulationConfig, the legacy simulate_* signatures, and
// sweep::ScenarioSpec — embeds the same definitions instead of re-plumbing
// them per entry point. The solver-level structs they compose
// (rom::GlobalSolveOptions, rom::LocalStageOptions, thermal::*SolveOptions)
// stay with their subsystems; this header is the core-facing aggregation.

#include "thermal/thermal_solver.hpp"

namespace ms::core {

/// Controls of the conduction -> ROM coupling (simulate_array_thermal and
/// simulate_submodel_thermal): the coarse thermal meshes, the conduction
/// solve, and the reference temperature the per-block ΔT is measured from.
struct ThermalCouplingOptions {
  thermal::ThermalSolveOptions solve;  ///< sink/ambient + conduction solver
  /// Transient-run controls (simulate_array_thermal_transient): time step,
  /// step count, θ-scheme, capacitance lumping. The sink/ambient data is
  /// taken from `solve` so steady and transient runs see one boundary model.
  thermal::TransientSolveOptions transient;
  int elems_per_block_xy = 2;          ///< thermal-mesh elements across a pitch
  int elems_z = 8;                     ///< elements through the block height
                                       ///< (array mesh / interposer layer)
  /// Stress-free temperature [C]: ΔT_block = T_block - stress_free. The
  /// default equals the ambient, so stresses are purely operational
  /// (power-driven); set it to the reflow temperature to superpose the
  /// paper's assembly load.
  double stress_free_temperature = 25.0;
  /// How per-block effective conductivities are derived. kTsvAware resolves
  /// dummy blocks (bulk Si) vs active blocks (anisotropic in-plane /
  /// through-plane); kViaAveraged keeps the PR-1 single isotropic average.
  thermal::ConductivityModel conductivity_model = thermal::ConductivityModel::kTsvAware;
  // Package conduction mesh (simulate_submodel_thermal only):
  int package_coarse_elems_xy = 24;      ///< plan resolution outside the window
  int package_elems_z_substrate = 3;
  int package_elems_z_die = 3;
  double package_filler_conductivity = 0.5;  ///< mold/underfill [W/(m K)]
};

/// Numeric-health policy of a simulation run (see core/health.hpp and
/// DESIGN.md "Failure semantics").
struct RobustnessOptions {
  /// Run la::all_finite sweeps at stage boundaries (global solve output,
  /// ΔT fields, channel histories, damage maps) and fail the query with a
  /// classified kNonFiniteField error instead of letting NaN/Inf flow into
  /// lifetime maps. One O(n) pass per field per query, off the hot loops.
  bool check_finite = true;
};

/// Controls of the cycle-resolved fatigue scenarios.
struct FatigueOptions {
  /// ROM-solve every k-th recorded transient step (the last recorded step is
  /// always included). 1 = every step; larger strides trade channel
  /// resolution for panel width.
  int record_stride = 1;
  /// Rainflow matrix binning of the reported dominant cycle classes.
  int range_bins = 8;
  int mean_bins = 4;
  /// Engelmaier parameters of the bump-shear channel: solder shear modulus
  /// [MPa] at 20 C (eutectic SnPb default) and mean joint temperature [C].
  double solder_shear_modulus = 5.6e3;
  double solder_mean_temperature = 60.0;
  /// Softening of the solder shear modulus with the mean joint temperature
  /// [MPa/C]: G_eff = G + slope * (T_mean - 20). The eutectic SnPb default
  /// (-40 MPa/C) follows the classic linear G(T) fits; set 0 to restore a
  /// temperature-independent modulus.
  double solder_shear_modulus_slope = -40.0;
  /// Cycle frequency feeding the Engelmaier exponent [cycles/day];
  /// 0 derives one trace pass per trace duration (86400 s / duration),
  /// capped at 1e6 — sub-millisecond bench traces would otherwise leave
  /// the classic correlation's validity and flip the exponent's sign.
  /// An explicit value is used as given (and may throw if absurd).
  double cycles_per_day = 0.0;
};

}  // namespace ms::core
