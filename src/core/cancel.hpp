#pragma once
// Cooperative cancellation + per-query deadlines. A CancelToken is a cheap
// shared handle: a default-constructed token is inert (check() is a null
// test and nothing more), an armed token carries an atomic cancel flag, an
// optional steady-clock deadline, and an optional parent token — the sweep
// engine links every per-query token to a per-batch parent so tripping
// --max-failures cancels the rest of the batch in one store.
//
// check(stage) is placed at stage boundaries (trace steps, panel assembly /
// solve / reconstruct, cache builders) and throws core::SimError with code
// kCancelled or kDeadlineExceeded; it never preempts work mid-kernel, so a
// factorization that already started always finishes and cache slots are
// never poisoned by cancellation (the single-flight slot-clear protocol in
// la::FactorCache handles the throw like any failed builder).

#include <atomic>
#include <chrono>
#include <memory>

#include "core/sim_error.hpp"

namespace ms::core {

class CancelToken {
 public:
  /// Inert token: never cancelled, no deadline, check() is free.
  CancelToken() = default;

  /// Armed token with no deadline (cancellable only).
  static CancelToken cancellable() { return CancelToken(0.0, nullptr); }

  /// Armed token whose deadline is `seconds` from now (<= 0 = no deadline).
  static CancelToken with_deadline(double seconds) { return CancelToken(seconds, nullptr); }

  /// Armed child observing `parent` in addition to its own flag/deadline.
  [[nodiscard]] CancelToken child(double deadline_seconds = 0.0) const {
    return CancelToken(deadline_seconds, state_);
  }

  [[nodiscard]] bool armed() const { return state_ != nullptr; }

  /// Request cancellation (no-op on an inert token). Thread-safe; children
  /// observe it at their next check().
  void request_cancel() const {
    if (state_ != nullptr) state_->cancelled.store(true, std::memory_order_relaxed);
  }

  [[nodiscard]] bool cancelled() const {
    for (const State* s = state_.get(); s != nullptr; s = s->parent.get()) {
      if (s->cancelled.load(std::memory_order_relaxed)) return true;
    }
    return false;
  }

  [[nodiscard]] bool deadline_expired() const {
    return state_ != nullptr && state_->has_deadline &&
           std::chrono::steady_clock::now() > state_->deadline;
  }

  /// Throw SimError(kCancelled / kDeadlineExceeded) if this token (or an
  /// ancestor) tripped; `stage` names the boundary for the error report.
  /// Defined in cancel.cpp (the throw paths publish robustness metrics).
  void check(const char* stage) const {
    if (state_ == nullptr) return;  // the common inert fast path, inline
    check_slow(stage);
  }

 private:
  struct State {
    std::atomic<bool> cancelled{false};
    bool has_deadline = false;
    std::chrono::steady_clock::time_point deadline;
    std::shared_ptr<const State> parent;
  };

  CancelToken(double deadline_seconds, std::shared_ptr<const State> parent)
      : state_(std::make_shared<State>()) {
    if (deadline_seconds > 0.0) {
      state_->has_deadline = true;
      state_->deadline = std::chrono::steady_clock::now() +
                         std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                             std::chrono::duration<double>(deadline_seconds));
    }
    state_->parent = std::move(parent);
  }

  void check_slow(const char* stage) const;

  std::shared_ptr<State> state_;
};

}  // namespace ms::core
