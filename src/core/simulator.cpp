#include "core/simulator.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <memory>
#include <stdexcept>

#include "chiplet/displacement_field.hpp"
#include "chiplet/package_thermal.hpp"
#include "core/health.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "reliability/channel_extract.hpp"
#include "rom/local_stage.hpp"
#include "thermal/conduction_assembler.hpp"
#include "util/fault_injector.hpp"
#include "util/hash.hpp"
#include "util/log.hpp"
#include "util/timer.hpp"

namespace ms::core {

SimulationConfig SimulationConfig::paper_default() {
  SimulationConfig config;
  config.geometry = {15.0, 5.0, 0.5, 50.0};
  config.mesh_spec = {12, 9};
  config.local.nodes_x = 4;
  config.local.nodes_y = 4;
  config.local.nodes_z = 4;
  config.local.samples_per_block = 100;
  config.thermal_load = -250.0;
  return config;
}

MoreStressSimulator::MoreStressSimulator(SimulationConfig config) : config_(std::move(config)) {
  config_.geometry.validate();
  config_.mesh_spec.validate();
}

std::string MoreStressSimulator::model_fingerprint(rom::BlockKind kind) const {
  char buf[256];
  std::snprintf(buf, sizeof(buf), "rom_%s_p%.3g_d%.3g_t%.3g_h%.3g_m%dx%d_n%d%d%d_s%d.bin",
                kind == rom::BlockKind::Tsv ? "tsv" : "dummy", config_.geometry.pitch,
                config_.geometry.diameter, config_.geometry.liner_thickness,
                config_.geometry.height, config_.mesh_spec.elems_xy, config_.mesh_spec.elems_z,
                config_.local.nodes_x, config_.local.nodes_y, config_.local.nodes_z,
                config_.local.samples_per_block);
  return buf;
}

std::string MoreStressSimulator::cache_path(rom::BlockKind kind) const {
  return (std::filesystem::path(cache_dir_) / model_fingerprint(kind)).string();
}

const rom::RomModel& MoreStressSimulator::model_for(rom::BlockKind kind) {
  auto& slot = (kind == rom::BlockKind::Tsv) ? tsv_model_ : dummy_model_;
  if (slot != nullptr) return *slot;

  const auto build = [this, kind]() -> std::shared_ptr<const rom::RomModel> {
    // Inside the single-flight builder: a cancelled or fault-injected build
    // throws, the cache clears the slot, and concurrent waiters retry.
    cancel_.check("local.stage");
    if (util::FaultInjector::enabled()) util::FaultInjector::global().fire("model_build");
    if (!cache_dir_.empty()) {
      const std::string path = cache_path(kind);
      if (std::filesystem::exists(path)) {
        // A stale or truncated cache file (e.g. written by an older format
        // revision) must not abort the run — recompute and overwrite it.
        try {
          auto loaded = std::make_shared<rom::RomModel>(rom::RomModel::load(path));
          MS_LOG_INFO("loaded cached ROM model from %s", path.c_str());
          return loaded;
        } catch (const std::exception& e) {
          MS_LOG_WARN("discarding unreadable ROM cache %s (%s); recomputing", path.c_str(),
                      e.what());
        }
      }
    }
    auto fresh = std::make_shared<rom::RomModel>(rom::run_local_stage(
        config_.geometry, config_.mesh_spec, config_.materials, kind, config_.local));
    if (!cache_dir_.empty()) {
      std::filesystem::create_directories(cache_dir_);
      fresh->save(cache_path(kind));
    }
    return fresh;
  };
  // The in-memory cache (sweep engine) keys by the same fingerprint the disk
  // cache names files with; disk is only consulted on an in-memory miss.
  slot = model_cache_ != nullptr ? model_cache_->get_or_create(model_fingerprint(kind), build)
                                 : build();
  return *slot;
}

const rom::RomModel& MoreStressSimulator::tsv_model() { return model_for(rom::BlockKind::Tsv); }

const rom::RomModel& MoreStressSimulator::dummy_model() {
  return model_for(rom::BlockKind::Dummy);
}

double MoreStressSimulator::prepare_local_stage(bool with_dummy) {
  util::WallTimer timer;
  const bool tsv_cached = tsv_model_ != nullptr;
  (void)tsv_model();
  if (with_dummy && dummy_model_ == nullptr) (void)dummy_model();
  return tsv_cached && (!with_dummy || dummy_model_ != nullptr) ? 0.0 : timer.seconds();
}

namespace {

/// One place that maps GlobalSolveStats onto RunStats — the multi-load and
/// fatigue panels must report solver detail identically.
void copy_solve_stats(RunStats& stats, const rom::GlobalSolveStats& solve) {
  stats.solve_seconds = solve.solve_seconds;
  stats.global_dofs = solve.num_dofs;
  stats.iterations = solve.iterations;
  stats.converged = solve.converged;
  stats.factor_seconds = solve.factor_seconds;
  stats.factor_nnz = solve.factor_nnz;
  stats.fill_ratio = solve.fill_ratio;
  stats.solver_ordering = solve.ordering;
  stats.degraded = solve.degraded;
  stats.diagonal_shift = solve.diagonal_shift;
}

/// Mirror a completed run's RunStats into the registry — the same values the
/// struct reports, so RunReport and the struct cannot disagree (asserted by
/// the regression lock in tests/obs).
void publish_run_stats(const RunStats& s) {
  auto& reg = obs::MetricRegistry::global();
  reg.counter("core.run.count").add(1);
  reg.histogram("core.run.assemble_seconds").record(s.assemble_seconds);
  reg.histogram("core.run.solve_seconds").record(s.solve_seconds);
  reg.histogram("core.run.reconstruct_seconds").record(s.reconstruct_seconds);
  reg.histogram("core.run.factor_seconds").record(s.factor_seconds);
  reg.gauge("core.run.local_stage_seconds").set(s.local_stage_seconds);
  reg.gauge("core.run.global_dofs").set(static_cast<double>(s.global_dofs));
  reg.gauge("core.run.iterations").set(static_cast<double>(s.iterations));
  reg.gauge("core.run.converged").set(s.converged ? 1.0 : 0.0);
  reg.gauge("core.run.memory_bytes").set(static_cast<double>(s.memory_bytes));
  reg.gauge("core.run.factor_nnz").set(static_cast<double>(s.factor_nnz));
  reg.gauge("core.run.fill_ratio").set(s.fill_ratio);
}

/// Report range of a standalone array: every block.
rom::BlockRange full_range(int blocks_x, int blocks_y) {
  rom::BlockRange range;
  range.bx0 = 0;
  range.bx1 = blocks_x;
  range.by0 = 0;
  range.by1 = blocks_y;
  return range;
}

/// Report range of a padded sub-model window: the inner TSV region.
rom::BlockRange inner_range(int dummy_rings, int tsv_blocks_x, int tsv_blocks_y) {
  rom::BlockRange range;
  range.bx0 = dummy_rings;
  range.bx1 = dummy_rings + tsv_blocks_x;
  range.by0 = dummy_rings;
  range.by1 = dummy_rings + tsv_blocks_y;
  return range;
}

/// The sub-model boundary data: the package's own coarse displacement,
/// expressed in the window's local frame. The returned closure owns its
/// DisplacementField by value (the field itself only references the package's
/// mesh and solution, which must outlive the closure — true everywhere the
/// package is a caller argument).
std::function<std::array<double, 3>(const mesh::Point3&)> package_boundary(
    const chiplet::PackageModel& package, const chiplet::SubmodelPlacement& placement) {
  const chiplet::DisplacementField local =
      chiplet::DisplacementField(package.mesh(), package.displacement())
          .shifted(placement.origin);
  return [local](const mesh::Point3& p) { return local(p); };
}

}  // namespace

std::string MoreStressSimulator::global_factor_key(int blocks_x, int blocks_y,
                                                   const rom::BlockMask& mask, bool uses_dummy,
                                                   const fem::DirichletBc& bc) {
  // The key must determine the assembled operator's values and the
  // constrained-dof set — BC *values* are lifted against the cached unlifted
  // operator, so they vary freely under one key. The reduced element
  // matrices fingerprint geometry, mesh, materials, and node counts in one
  // shot (any change reruns the local stage and shifts the hash); the mask
  // and constrained dofs cover layout and boundary structure.
  const rom::RomModel& tsv = tsv_model();
  std::uint64_t h = util::fnv1a(tsv.element_stiffness.data());
  h = util::fnv1a(tsv.element_load, h);
  if (uses_dummy) {
    const rom::RomModel& dummy = dummy_model();
    h = util::fnv1a(dummy.element_stiffness.data(), h);
    h = util::fnv1a(dummy.element_load, h);
  }
  h = util::fnv1a(mask, h);
  h = util::fnv1a(bc.dofs, h);
  const la::SparseCholesky::Options& factor = config_.global.factor;
  char buf[192];
  std::snprintf(buf, sizeof(buf), "glob_b%dx%d_n%d%d%d_d%d_o%d_m%d_w%d_r%.3g_%016llx", blocks_x,
                blocks_y, config_.local.nodes_x, config_.local.nodes_y, config_.local.nodes_z,
                uses_dummy ? 1 : 0, static_cast<int>(factor.ordering),
                static_cast<int>(factor.method), static_cast<int>(factor.max_supernode_width),
                factor.relax_supernodes, static_cast<unsigned long long>(h));
  return buf;
}

ArrayResult MoreStressSimulator::run_global(int blocks_x, int blocks_y,
                                            const rom::BlockMask& mask,
                                            const fem::DirichletBc& bc,
                                            const rom::BlockRange& report_range,
                                            bool uses_dummy, const rom::BlockLoadField& load) {
  return run_global_multi(blocks_x, blocks_y, mask, bc, report_range, uses_dummy, load, {},
                          nullptr);
}

ArrayResult MoreStressSimulator::run_panel(
    int blocks_x, int blocks_y, const rom::BlockMask& mask, const fem::DirichletBc& bc,
    const rom::BlockRange& report_range, bool uses_dummy, const rom::BlockLoadField& primary_load,
    const std::vector<rom::BlockLoadField>& extra_loads,
    rom::GlobalSolveStats* solve_stats_out, double* consume_seconds,
    const PanelConsumer& consumer) {
  MS_TRACE_SCOPE("core.global.panel");
  cancel_.check("global.panel");
  const rom::RomModel& tsv = tsv_model();
  const rom::RomModel* dummy = uses_dummy ? &dummy_model() : nullptr;

  ArrayResult result;
  result.stats.local_stage_seconds =
      tsv.local_stage_seconds + (dummy != nullptr ? dummy->local_stage_seconds : 0.0);

  rom::GlobalSolveOptions solve_options = config_.global;
  solve_options.cancel = cancel_;
  const bool cache_global = factor_cache_ != nullptr && solve_options.method == "direct";
  if (cache_global) {
    solve_options.factor_cache = factor_cache_;
    solve_options.factor_key = global_factor_key(blocks_x, blocks_y, mask, uses_dummy, bc);
  }

  util::WallTimer timer;
  const rom::BlockGrid grid(blocks_x, blocks_y, config_.local.nodes_x, config_.local.nodes_y,
                            config_.local.nodes_z, config_.geometry.pitch,
                            config_.geometry.height);
  rom::GlobalProblem problem;
  std::vector<Vec> extra_rhs;
  {
    MS_TRACE_SCOPE("core.global.assemble");
    if (cache_global && factor_cache_->contains(solve_options.factor_key)) {
      // Warm path: the key's factorization and unlifted operator are already
      // resident (entries are never evicted, so contains() cannot go stale),
      // and assembly reduces to the load vectors. On a cold key the full
      // operator is assembled below and the solver populates the cache.
      problem.num_dofs = grid.num_dofs();
      problem.rhs = rom::assemble_global_rhs(grid, tsv, dummy, mask, primary_load);
    } else {
      problem = rom::assemble_global(grid, tsv, dummy, mask, primary_load);
    }
    // The reduced stiffness is load-independent, so every extra case costs
    // one load-vector assembly against the shared operator.
    extra_rhs.reserve(extra_loads.size());
    for (const rom::BlockLoadField& extra : extra_loads) {
      extra_rhs.push_back(rom::assemble_global_rhs(grid, tsv, dummy, mask, extra));
    }
  }
  result.stats.assemble_seconds = timer.seconds();

  cancel_.check("global.solve");
  timer.reset();
  rom::GlobalSolveStats panel_stats;
  std::vector<Vec> solutions =
      rom::solve_global_multi(problem, std::move(extra_rhs), bc, solve_options, &panel_stats);
  const bool check = config_.robustness.check_finite;
  for (const Vec& solution : solutions) {
    require_finite(check, "global.solve", "global solution", solution);
  }
  result.solution = std::move(solutions.front());
  copy_solve_stats(result.stats, panel_stats);
  if (solve_stats_out != nullptr) *solve_stats_out = panel_stats;

  cancel_.check("global.reconstruct");
  timer.reset();
  {
    MS_TRACE_SCOPE("core.global.reconstruct");
    result.stress = rom::reconstruct_plane_stress(grid, tsv, dummy, mask, result.solution,
                                                  primary_load, report_range);
    result.von_mises = fem::to_von_mises(result.stress);
  }
  require_finite(check, "global.reconstruct", "von Mises field", result.von_mises.data(),
                 result.von_mises.size());
  result.stats.reconstruct_seconds = timer.seconds();

  result.region_blocks_x = report_range.width();
  result.region_blocks_y = report_range.height();
  result.samples_per_block = tsv.samples_per_block;
  result.stats.memory_bytes = panel_stats.matrix_bytes + panel_stats.solver_bytes +
                              tsv.memory_bytes() +
                              (dummy != nullptr ? dummy->memory_bytes() : 0) +
                              result.stress.size() * sizeof(fem::Stress6) +
                              result.solution.size() * sizeof(double);

  timer.reset();
  if (consumer) {
    MS_TRACE_SCOPE("core.global.consume");
    const PanelCaseContext ctx{grid,         tsv,
                               dummy,        mask,
                               report_range, result.stats,
                               tsv.samples_per_block};
    // Consumers write disjoint slots (documented contract), so cases
    // parallelize; each case sees the completed primary stats.
#ifdef _OPENMP
#pragma omp parallel for schedule(dynamic)
#endif
    for (std::ptrdiff_t c = 0; c < static_cast<std::ptrdiff_t>(extra_loads.size()); ++c) {
      consumer(static_cast<std::size_t>(c), solutions[static_cast<std::size_t>(c) + 1],
               extra_loads[static_cast<std::size_t>(c)], ctx);
    }
  }
  if (consume_seconds != nullptr) *consume_seconds = timer.seconds();
  return result;
}

ArrayResult MoreStressSimulator::run_global_multi(
    int blocks_x, int blocks_y, const rom::BlockMask& mask, const fem::DirichletBc& bc,
    const rom::BlockRange& report_range, bool uses_dummy, const rom::BlockLoadField& load,
    const std::vector<rom::BlockLoadField>& extra_loads,
    std::vector<ArrayResult>* extra_results) {
  PanelConsumer consumer;
  if (extra_results != nullptr) {
    extra_results->clear();
    extra_results->resize(extra_loads.size());
    consumer = [extra_results](std::size_t c, Vec& solution, const rom::BlockLoadField& load_c,
                               const PanelCaseContext& ctx) {
      ArrayResult& extra = (*extra_results)[c];
      extra.stats = ctx.base_stats;  // shared assembly/factorization cost
      extra.solution = std::move(solution);
      util::WallTimer reconstruct_timer;
      extra.stress = rom::reconstruct_plane_stress(ctx.grid, ctx.tsv, ctx.dummy, ctx.mask,
                                                   extra.solution, load_c, ctx.report_range);
      extra.von_mises = fem::to_von_mises(extra.stress);
      extra.stats.reconstruct_seconds = reconstruct_timer.seconds();
      extra.region_blocks_x = ctx.report_range.width();
      extra.region_blocks_y = ctx.report_range.height();
      extra.samples_per_block = ctx.samples_per_block;
    };
  }
  ArrayResult result = run_panel(blocks_x, blocks_y, mask, bc, report_range, uses_dummy, load,
                                 extra_loads, nullptr, nullptr, consumer);
  publish_run_stats(result.stats);
  return result;
}

ArrayResult MoreStressSimulator::simulate_array(int blocks_x, int blocks_y) {
  return simulate_array(blocks_x, blocks_y, rom::BlockLoadField::uniform(config_.thermal_load));
}

ArrayResult MoreStressSimulator::run_array(int blocks_x, int blocks_y,
                                           const rom::BlockLoadField& load,
                                           const std::vector<rom::BlockLoadField>& extra_loads,
                                           std::vector<ArrayResult>* extra_results) {
  const rom::BlockGrid grid(blocks_x, blocks_y, config_.local.nodes_x, config_.local.nodes_y,
                            config_.local.nodes_z, config_.geometry.pitch,
                            config_.geometry.height);
  const fem::DirichletBc bc = rom::clamp_top_bottom(grid);
  return run_global_multi(blocks_x, blocks_y, {}, bc, full_range(blocks_x, blocks_y),
                          /*uses_dummy=*/false, load, extra_loads, extra_results);
}

ArrayResult MoreStressSimulator::simulate_array(int blocks_x, int blocks_y,
                                                const rom::BlockLoadField& load) {
  return run_array(blocks_x, blocks_y, load, {}, nullptr);
}

namespace {

/// One source of truth for the package conduction-mesh spec: the steady and
/// transient scenario-2 paths must build byte-identical thermal models or
/// the constant-trace == steady lock silently breaks.
chiplet::PackageThermalSpec package_thermal_spec(const ThermalCouplingOptions& coupling) {
  chiplet::PackageThermalSpec spec;
  spec.elems_per_block_xy = coupling.elems_per_block_xy;
  spec.coarse_elems_xy = coupling.package_coarse_elems_xy;
  spec.elems_z_substrate = coupling.package_elems_z_substrate;
  spec.elems_z_interposer = coupling.elems_z;
  spec.elems_z_die = coupling.package_elems_z_die;
  spec.filler_conductivity = coupling.package_filler_conductivity;
  spec.conductivity_model = coupling.conductivity_model;
  return spec;
}

/// Shared validation of the padded sub-model window arguments (every
/// scenario-2 entry point that takes a placement).
void require_padded_window(int dummy_rings, const chiplet::SubmodelPlacement& placement, int bx,
                           int by, const char* caller) {
  if (dummy_rings < 0) {
    throw std::invalid_argument(std::string(caller) + ": dummy_rings >= 0");
  }
  if (placement.blocks_x != bx || placement.blocks_y != by) {
    throw std::invalid_argument(std::string(caller) +
                                ": placement must cover the padded window "
                                "(tsv_blocks + 2*dummy_rings per axis)");
  }
}

/// Both array coupling paths reject power maps that do not cover the array
/// plan exactly: density_at is 0 outside the map, so a mismatched footprint
/// would silently drop heat.
void require_array_footprint(const thermal::PowerMap& power, int blocks_x, int blocks_y,
                             double pitch, const char* caller) {
  const double extent_x = blocks_x * pitch;
  const double extent_y = blocks_y * pitch;
  if (std::abs(power.width() - extent_x) > 1e-9 * extent_x ||
      std::abs(power.height() - extent_y) > 1e-9 * extent_y) {
    throw std::invalid_argument(std::string(caller) +
                                ": power map footprint must match the array extent "
                                "(use PowerMap::per_block or zero tiles for unpowered regions)");
  }
}

/// Non-windowed per-block ΔT reduction of a standalone array.
thermal::BlockReduction block_reduction(int blocks_x, int blocks_y, double pitch,
                                        double reference) {
  thermal::BlockReduction reduction;
  reduction.blocks_x = blocks_x;
  reduction.blocks_y = blocks_y;
  reduction.pitch = pitch;
  reduction.reference = reference;
  return reduction;
}

/// Factor-cache key of a steady conduction solve. The conductivity fields
/// fingerprint the geometry, materials, layout, and conductivity model; the
/// mesh dimensions and film coefficient fix the sparsity pattern and the
/// constrained-dof set (film == 0 means a Dirichlet sink on the z-min face).
/// The sink *temperature* and the power input are rhs-only and excluded.
std::string thermal_steady_key(const mesh::HexMesh& mesh,
                               const thermal::ConductivityField& conductivity,
                               const thermal::ThermalSolveOptions& solve) {
  std::uint64_t h = util::fnv1a(conductivity.in_plane);
  h = util::fnv1a(conductivity.through_plane, h);
  char buf[192];
  std::snprintf(buf, sizeof(buf), "thermS_n%lld_e%lld_f%.17g_o%d_m%d_%016llx",
                static_cast<long long>(mesh.num_nodes()), static_cast<long long>(mesh.num_elems()),
                solve.sink_film_coefficient, static_cast<int>(solve.factor.ordering),
                static_cast<int>(solve.factor.method), static_cast<unsigned long long>(h));
  return buf;
}

/// Factor-cache key of the transient θ-stepper's operator M/Δt + θK: the
/// steady key's inputs plus the capacities, time step, scheme, and lumping.
std::string thermal_transient_key(const mesh::HexMesh& mesh,
                                  const thermal::ConductivityField& conductivity,
                                  const Vec& capacities,
                                  const thermal::TransientSolveOptions& options) {
  std::uint64_t h = util::fnv1a(conductivity.in_plane);
  h = util::fnv1a(conductivity.through_plane, h);
  h = util::fnv1a(capacities, h);
  char buf[224];
  std::snprintf(buf, sizeof(buf), "thermT_n%lld_e%lld_f%.17g_dt%.17g_%s_l%d_o%d_m%d_%016llx",
                static_cast<long long>(mesh.num_nodes()), static_cast<long long>(mesh.num_elems()),
                options.base.sink_film_coefficient, options.time_step, options.scheme.c_str(),
                options.lumped_capacitance ? 1 : 0, static_cast<int>(options.base.factor.ordering),
                static_cast<int>(options.base.factor.method), static_cast<unsigned long long>(h));
  return buf;
}

}  // namespace

thermal::ThermalSolveOptions MoreStressSimulator::steady_solve_options(
    const std::string& factor_key) const {
  thermal::ThermalSolveOptions options = config_.coupling.solve;
  options.cancel = cancel_;
  if (factor_cache_ != nullptr && !factor_key.empty()) {
    options.factor_cache = factor_cache_;
    options.factor_key = factor_key;
  }
  return options;
}

thermal::TransientSolveOptions MoreStressSimulator::transient_solve_options(
    const std::string& factor_key) const {
  // One boundary model for steady and transient runs: the sink/ambient data
  // rides in coupling.solve, the stepping controls in coupling.transient.
  thermal::TransientSolveOptions options = config_.coupling.transient;
  options.base = config_.coupling.solve;
  options.base.cancel = cancel_;
  if (factor_cache_ != nullptr && !factor_key.empty()) {
    options.base.factor_cache = factor_cache_;
    options.base.factor_key = factor_key;
  }
  return options;
}

ThermalArrayResult MoreStressSimulator::simulate_array_thermal(int blocks_x, int blocks_y,
                                                               const thermal::PowerMap& power) {
  MS_TRACE_SCOPE("core.simulate.array_thermal");
  const ThermalCouplingOptions& coupling = config_.coupling;
  require_array_footprint(power, blocks_x, blocks_y, config_.geometry.pitch,
                          "simulate_array_thermal");
  const mesh::HexMesh thermal_mesh = thermal::build_array_thermal_mesh(
      config_.geometry, blocks_x, blocks_y, coupling.elems_per_block_xy, coupling.elems_z);
  const thermal::ConductivityField conductivities = thermal::array_block_conductivities(
      thermal_mesh, config_.geometry, config_.materials, blocks_x, blocks_y, /*tsv_mask=*/{},
      coupling.conductivity_model);

  ThermalArrayResult result;
  const thermal::ThermalSolveOptions solve = steady_solve_options(
      factor_cache_ != nullptr ? thermal_steady_key(thermal_mesh, conductivities, coupling.solve)
                               : std::string());
  result.temperature =
      thermal::solve_power_map(thermal_mesh, conductivities, power, solve, &result.thermal_stats);

  std::vector<double> delta_t =
      result.temperature.block_averages(blocks_x, blocks_y, config_.geometry.pitch);
  for (double& dt : delta_t) dt -= coupling.stress_free_temperature;
  require_finite(config_.robustness.check_finite, "thermal.steady", "per-block dT field",
                 delta_t.data(), delta_t.size());
  result.load = rom::BlockLoadField(blocks_x, blocks_y, std::move(delta_t));

  static_cast<ArrayResult&>(result) = simulate_array(blocks_x, blocks_y, result.load);
  MS_LOG_DEBUG("thermal coupling: %d x %d blocks, dT in [%.3f, %.3f] C", blocks_x, blocks_y,
               result.load.min(), result.load.max());
  return result;
}

thermal::TransientTemperatureResult MoreStressSimulator::run_array_transient(
    int blocks_x, int blocks_y, const thermal::PowerTrace& trace,
    thermal::TransientSolveStats* stats) {
  const ThermalCouplingOptions& coupling = config_.coupling;
  if (trace.num_keyframes() == 0) {
    throw std::invalid_argument("array transient: trace has no keyframes");
  }
  for (std::size_t i = 0; i < trace.num_keyframes(); ++i) {
    require_array_footprint(trace.keyframe(i), blocks_x, blocks_y, config_.geometry.pitch,
                            "array transient");
  }
  const mesh::HexMesh thermal_mesh = thermal::build_array_thermal_mesh(
      config_.geometry, blocks_x, blocks_y, coupling.elems_per_block_xy, coupling.elems_z);
  const thermal::ConductivityField conductivities = thermal::array_block_conductivities(
      thermal_mesh, config_.geometry, config_.materials, blocks_x, blocks_y, /*tsv_mask=*/{},
      coupling.conductivity_model);
  const Vec capacities = thermal::array_block_capacities(thermal_mesh, config_.geometry,
                                                         config_.materials, blocks_x, blocks_y,
                                                         /*tsv_mask=*/{},
                                                         coupling.conductivity_model);

  std::string factor_key;
  if (factor_cache_ != nullptr) {
    factor_key = thermal_transient_key(thermal_mesh, conductivities, capacities,
                                       transient_solve_options(std::string()));
  }
  const thermal::TransientSolveOptions options = transient_solve_options(factor_key);
  thermal::TransientTemperatureResult transient = thermal::solve_power_trace(
      thermal_mesh, conductivities, capacities, trace,
      block_reduction(blocks_x, blocks_y, config_.geometry.pitch,
                      coupling.stress_free_temperature),
      options, stats);
  require_finite(config_.robustness.check_finite, "thermal.transient", "dT peak envelope",
                 transient.peak_envelope.data(), transient.peak_envelope.size());
  return transient;
}

ThermalTransientArrayResult MoreStressSimulator::simulate_array_thermal_transient(
    int blocks_x, int blocks_y, const thermal::PowerTrace& trace,
    const std::vector<int>& snapshot_steps) {
  MS_TRACE_SCOPE("core.simulate.array_transient");
  ThermalTransientArrayResult result;
  result.transient = run_array_transient(blocks_x, blocks_y, trace, &result.thermal_stats);

  result.envelope_load =
      rom::BlockLoadField(blocks_x, blocks_y, Vec(result.transient.peak_envelope));

  // The envelope and every requested snapshot share the global operator, so
  // they run as one assembly + one factorization + one multi-RHS panel (the
  // direct path); iterative paths still reuse the single assembly.
  std::vector<rom::BlockLoadField> snapshot_loads;
  snapshot_loads.reserve(snapshot_steps.size());
  for (int step : snapshot_steps) {
    if (step < 0 || static_cast<std::size_t>(step) >= result.transient.num_records()) {
      throw std::invalid_argument(
          "simulate_array_thermal_transient: snapshot step outside the recorded history");
    }
    snapshot_loads.emplace_back(blocks_x, blocks_y, Vec(result.transient.block_delta_t[step]));
  }
  result.snapshot_steps = snapshot_steps;
  static_cast<ArrayResult&>(result) = run_array(blocks_x, blocks_y, result.envelope_load,
                                                snapshot_loads, &result.snapshots);
  MS_LOG_DEBUG("transient thermal coupling: %d x %d blocks, %d steps, envelope dT in "
               "[%.3f, %.3f] C",
               blocks_x, blocks_y, result.thermal_stats.num_steps, result.envelope_load.min(),
               result.envelope_load.max());
  return result;
}

namespace {

/// Recorded-history indices the fatigue panel solves: every stride-th record
/// starting at the initial state, the last record always included (the
/// envelope of a relaxing trace lives there).
std::vector<int> select_history_steps(std::size_t num_records, int stride) {
  if (stride < 1) throw std::invalid_argument("FatigueOptions: record_stride must be >= 1");
  std::vector<int> steps;
  for (std::size_t r = 0; r < num_records; r += static_cast<std::size_t>(stride)) {
    steps.push_back(static_cast<int>(r));
  }
  if (steps.empty() || steps.back() != static_cast<int>(num_records) - 1) {
    steps.push_back(static_cast<int>(num_records) - 1);
  }
  return steps;
}

/// Per-step BlockLoadFields of the selected records.
std::vector<rom::BlockLoadField> loads_of_steps(const thermal::TransientTemperatureResult& t,
                                                const std::vector<int>& steps) {
  std::vector<rom::BlockLoadField> loads;
  loads.reserve(steps.size());
  for (int step : steps) {
    loads.emplace_back(t.blocks_x, t.blocks_y, la::Vec(t.block_delta_t[step]));
  }
  return loads;
}

std::vector<double> times_of_steps(const thermal::TransientTemperatureResult& t,
                                   const std::vector<int>& steps) {
  std::vector<double> times;
  times.reserve(steps.size());
  for (int step : steps) times.push_back(t.times[step]);
  return times;
}

}  // namespace

ArrayResult MoreStressSimulator::run_fatigue_panel(
    int blocks_x, int blocks_y, const rom::BlockMask& mask, const fem::DirichletBc& bc,
    const rom::BlockRange& report_range, bool uses_dummy, const rom::BlockLoadField& envelope_load,
    const std::vector<rom::BlockLoadField>& step_loads, const std::vector<double>& step_times,
    reliability::StressHistory* history, rom::GlobalSolveStats* solve_stats,
    double* history_seconds) {
  MS_TRACE_SCOPE("core.fatigue.panel");
  // The panel consumer only stashes each step's solution; the channel
  // reduction runs once afterwards, batched over all steps per block
  // (reliability/channel_extract.hpp), instead of rebuilding the dense
  // plane-stress field step by step.
  *history = reliability::StressHistory(report_range.width(), report_range.height());
  history->resize_steps(step_times);
  std::vector<Vec> step_solutions(step_loads.size());
  const PanelConsumer stash_step = [&step_solutions](std::size_t s, Vec& solution,
                                                     const rom::BlockLoadField&,
                                                     const PanelCaseContext&) {
    step_solutions[s] = std::move(solution);
  };

  // The whole fatigue history — envelope plus every selected step — runs as
  // one multi-RHS panel against a single factorization on the direct path.
  rom::GlobalSolveStats panel_stats;
  double consume_seconds = 0.0;
  ArrayResult result = run_panel(blocks_x, blocks_y, mask, bc, report_range, uses_dummy,
                                 envelope_load, step_loads, &panel_stats, &consume_seconds,
                                 stash_step);
  if (solve_stats != nullptr) *solve_stats = panel_stats;

  util::WallTimer extract_timer;
  {
    MS_TRACE_SCOPE("core.fatigue.channel_extract");
    const rom::BlockGrid grid(blocks_x, blocks_y, config_.local.nodes_x, config_.local.nodes_y,
                              config_.local.nodes_z, config_.geometry.pitch,
                              config_.geometry.height);
    reliability::extract_channel_history(grid, tsv_model(),
                                         uses_dummy ? &dummy_model() : nullptr, mask,
                                         step_solutions, step_loads, report_range, *history);
  }
  require_finite(config_.robustness.check_finite, "fatigue.channels", "channel history",
                 history->raw_data().data(), history->raw_data().size());
  if (history_seconds != nullptr) *history_seconds = consume_seconds + extract_timer.seconds();
  // The multi-RHS panel is the allocation that scales with trace length:
  // num_rhs right-hand sides and as many solutions held simultaneously, plus
  // the retained channel history.
  result.stats.memory_bytes += 2 * static_cast<std::size_t>(panel_stats.num_rhs) *
                                   static_cast<std::size_t>(panel_stats.num_dofs) *
                                   sizeof(double) +
                               history->memory_bytes();
  publish_run_stats(result.stats);
  return result;
}

reliability::ReliabilityReport MoreStressSimulator::assess_fatigue(
    const reliability::StressHistory& history, double trace_duration,
    const FatigueOptions& options) const {
  // Deriving the Engelmaier frequency from sub-millisecond traces produces
  // cycles/day far outside the correlation's validity (and a non-negative
  // exponent); cap the *derived* value at a power-cycling-scale 1e6 — an
  // explicit options.cycles_per_day is taken at face value.
  const double cycles_per_day =
      options.cycles_per_day > 0.0
          ? options.cycles_per_day
          : (trace_duration > 0.0 ? std::min(86400.0 / trace_duration, 1e6) : 0.0);
  const reliability::FatigueModelSet models = reliability::standard_model_set(
      config_.materials, options.solder_shear_modulus, options.solder_mean_temperature,
      cycles_per_day, options.solder_shear_modulus_slope);
  reliability::ReliabilityOptions assess;
  assess.range_bins = options.range_bins;
  assess.mean_bins = options.mean_bins;
  reliability::ReliabilityReport report =
      reliability::assess_history(history, models, trace_duration, assess);
  // Damage maps must be finite (cycles_to_failure is legitimately +inf on
  // damage-free blocks, so only the Miner sums are swept).
  for (const reliability::ChannelAssessment& channel : report.channels) {
    require_finite(config_.robustness.check_finite, "fatigue.damage", "damage map",
                   channel.damage.data(), channel.damage.size());
  }
  return report;
}

FatigueResult MoreStressSimulator::simulate_array_fatigue(int blocks_x, int blocks_y,
                                                          const thermal::PowerTrace& trace,
                                                          const FatigueOptions& options) {
  MS_TRACE_SCOPE("core.simulate.array_fatigue");
  FatigueResult result;
  result.transient = run_array_transient(blocks_x, blocks_y, trace, &result.thermal_stats);
  result.envelope_load =
      rom::BlockLoadField(blocks_x, blocks_y, Vec(result.transient.peak_envelope));

  result.history_steps = select_history_steps(result.transient.num_records(),
                                              options.record_stride);
  const std::vector<rom::BlockLoadField> step_loads =
      loads_of_steps(result.transient, result.history_steps);
  const std::vector<double> step_times = times_of_steps(result.transient, result.history_steps);

  const rom::BlockGrid grid(blocks_x, blocks_y, config_.local.nodes_x, config_.local.nodes_y,
                            config_.local.nodes_z, config_.geometry.pitch,
                            config_.geometry.height);
  const fem::DirichletBc bc = rom::clamp_top_bottom(grid);
  static_cast<ArrayResult&>(result) = run_fatigue_panel(
      blocks_x, blocks_y, {}, bc, full_range(blocks_x, blocks_y), /*uses_dummy=*/false,
      result.envelope_load, step_loads, step_times, &result.history, &result.solve_stats,
      &result.history_seconds);

  util::WallTimer timer;
  result.report = assess_fatigue(result.history, trace.duration(), options);
  result.reliability_seconds = timer.seconds();
  MS_LOG_DEBUG("array fatigue: %d x %d blocks, %d history steps in one panel, min lifetime "
               "%.3g traces",
               blocks_x, blocks_y, static_cast<int>(result.history_steps.size()),
               result.report.min_life_cycles);
  return result;
}

ArrayResult MoreStressSimulator::run_submodel(
    int tsv_blocks_x, int tsv_blocks_y, int dummy_rings, const rom::BlockMask& mask,
    const std::function<std::array<double, 3>(const mesh::Point3&)>& displacement,
    const rom::BlockLoadField& load) {
  // dummy_rings is validated by both public entry points.
  const int bx = tsv_blocks_x + 2 * dummy_rings;
  const int by = tsv_blocks_y + 2 * dummy_rings;
  const rom::BlockGrid grid(bx, by, config_.local.nodes_x, config_.local.nodes_y,
                            config_.local.nodes_z, config_.geometry.pitch,
                            config_.geometry.height);
  const fem::DirichletBc bc = rom::submodel_boundary(grid, displacement);
  return run_global(bx, by, mask, bc, inner_range(dummy_rings, tsv_blocks_x, tsv_blocks_y),
                    /*uses_dummy=*/dummy_rings > 0, load);
}

ArrayResult MoreStressSimulator::simulate_submodel(
    int tsv_blocks_x, int tsv_blocks_y, int dummy_rings,
    const std::function<std::array<double, 3>(const mesh::Point3&)>& displacement) {
  if (dummy_rings < 0) throw std::invalid_argument("simulate_submodel: dummy_rings >= 0");
  const int bx = tsv_blocks_x + 2 * dummy_rings;
  const int by = tsv_blocks_y + 2 * dummy_rings;
  return run_submodel(tsv_blocks_x, tsv_blocks_y, dummy_rings,
                      mesh::padded_tsv_mask(bx, by, dummy_rings), displacement,
                      rom::BlockLoadField::uniform(config_.thermal_load));
}

ThermalSubmodelResult MoreStressSimulator::simulate_submodel_thermal(
    int tsv_blocks_x, int tsv_blocks_y, int dummy_rings, const chiplet::PackageModel& package,
    const chiplet::SubmodelPlacement& placement, const thermal::PowerMap& power) {
  const int bx = tsv_blocks_x + 2 * dummy_rings;
  const int by = tsv_blocks_y + 2 * dummy_rings;
  require_padded_window(dummy_rings, placement, bx, by, "simulate_submodel_thermal");
  const chiplet::PackageGeometry& geometry = package.geometry();
  // Like the array path: a power map that does not cover the package plan
  // would silently drop heat at the top face.
  if (std::abs(power.width() - geometry.substrate_x) > 1e-9 * geometry.substrate_x ||
      std::abs(power.height() - geometry.substrate_y) > 1e-9 * geometry.substrate_y) {
    throw std::invalid_argument(
        "simulate_submodel_thermal: power map footprint must match the package plan "
        "(zero tiles outside the die are fine)");
  }
  const ThermalCouplingOptions& coupling = config_.coupling;
  const rom::BlockMask mask = mesh::padded_tsv_mask(bx, by, dummy_rings);

  const chiplet::PackageThermalModel thermal_model = chiplet::build_package_thermal_model(
      geometry, config_.geometry, placement, mask, config_.materials,
      package_thermal_spec(coupling));

  ThermalSubmodelResult result;
  const thermal::ThermalSolveOptions solve = steady_solve_options(
      factor_cache_ != nullptr
          ? thermal_steady_key(thermal_model.mesh, thermal_model.conductivity, coupling.solve)
          : std::string());
  result.temperature = thermal::solve_power_map(thermal_model.mesh, thermal_model.conductivity,
                                                power, solve, &result.thermal_stats);

  std::vector<double> delta_t = result.temperature.block_averages(
      bx, by, config_.geometry.pitch, placement.origin, geometry.interposer_z0(),
      geometry.interposer_z1());
  for (double& dt : delta_t) dt -= coupling.stress_free_temperature;
  require_finite(config_.robustness.check_finite, "thermal.steady", "per-block dT field",
                 delta_t.data(), delta_t.size());
  result.load = rom::BlockLoadField(bx, by, std::move(delta_t));

  static_cast<ArrayResult&>(result) =
      run_submodel(tsv_blocks_x, tsv_blocks_y, dummy_rings, mask,
                   package_boundary(package, placement), result.load);
  MS_LOG_DEBUG("submodel thermal coupling: %d x %d padded blocks at (%.0f, %.0f), dT in "
               "[%.3f, %.3f] C",
               bx, by, placement.origin.x, placement.origin.y, result.load.min(),
               result.load.max());
  return result;
}

thermal::TransientTemperatureResult MoreStressSimulator::run_submodel_transient(
    int padded_x, int padded_y, const chiplet::PackageModel& package,
    const chiplet::SubmodelPlacement& placement, const rom::BlockMask& mask,
    const thermal::PowerTrace& trace, thermal::TransientSolveStats* stats) {
  const chiplet::PackageGeometry& geometry = package.geometry();
  if (trace.num_keyframes() == 0) {
    throw std::invalid_argument("submodel transient: trace has no keyframes");
  }
  for (std::size_t i = 0; i < trace.num_keyframes(); ++i) {
    const thermal::PowerMap& map = trace.keyframe(i);
    if (std::abs(map.width() - geometry.substrate_x) > 1e-9 * geometry.substrate_x ||
        std::abs(map.height() - geometry.substrate_y) > 1e-9 * geometry.substrate_y) {
      throw std::invalid_argument(
          "submodel transient: every keyframe must match the package plan "
          "(zero tiles outside the die are fine)");
    }
  }
  const ThermalCouplingOptions& coupling = config_.coupling;
  const chiplet::PackageThermalModel thermal_model = chiplet::build_package_thermal_model(
      geometry, config_.geometry, placement, mask, config_.materials,
      package_thermal_spec(coupling));

  std::string factor_key;
  if (factor_cache_ != nullptr) {
    factor_key = thermal_transient_key(thermal_model.mesh, thermal_model.conductivity,
                                       thermal_model.capacity,
                                       transient_solve_options(std::string()));
  }
  const thermal::TransientSolveOptions options = transient_solve_options(factor_key);
  // The sub-model window only sees the interposer layer, exactly like the
  // steady path's windowed block_averages reduction.
  thermal::BlockReduction reduction = block_reduction(padded_x, padded_y, config_.geometry.pitch,
                                                      coupling.stress_free_temperature);
  reduction.windowed = true;
  reduction.origin = placement.origin;
  reduction.z0 = geometry.interposer_z0();
  reduction.z1 = geometry.interposer_z1();
  thermal::TransientTemperatureResult transient =
      thermal::solve_power_trace(thermal_model.mesh, thermal_model.conductivity,
                                 thermal_model.capacity, trace, reduction, options, stats);
  require_finite(config_.robustness.check_finite, "thermal.transient", "dT peak envelope",
                 transient.peak_envelope.data(), transient.peak_envelope.size());
  return transient;
}

ThermalTransientSubmodelResult MoreStressSimulator::simulate_submodel_thermal_transient(
    int tsv_blocks_x, int tsv_blocks_y, int dummy_rings, const chiplet::PackageModel& package,
    const chiplet::SubmodelPlacement& placement, const thermal::PowerTrace& trace) {
  const int bx = tsv_blocks_x + 2 * dummy_rings;
  const int by = tsv_blocks_y + 2 * dummy_rings;
  require_padded_window(dummy_rings, placement, bx, by, "simulate_submodel_thermal_transient");
  const rom::BlockMask mask = mesh::padded_tsv_mask(bx, by, dummy_rings);

  ThermalTransientSubmodelResult result;
  result.transient =
      run_submodel_transient(bx, by, package, placement, mask, trace, &result.thermal_stats);
  result.envelope_load = rom::BlockLoadField(bx, by, Vec(result.transient.peak_envelope));

  static_cast<ArrayResult&>(result) =
      run_submodel(tsv_blocks_x, tsv_blocks_y, dummy_rings, mask,
                   package_boundary(package, placement), result.envelope_load);
  MS_LOG_DEBUG("submodel transient: %d x %d padded blocks, %d steps, envelope dT in "
               "[%.3f, %.3f] C",
               bx, by, result.thermal_stats.num_steps, result.envelope_load.min(),
               result.envelope_load.max());
  return result;
}

FatigueResult MoreStressSimulator::simulate_submodel_fatigue(
    int tsv_blocks_x, int tsv_blocks_y, int dummy_rings, const chiplet::PackageModel& package,
    const chiplet::SubmodelPlacement& placement, const thermal::PowerTrace& trace,
    const FatigueOptions& options) {
  MS_TRACE_SCOPE("core.simulate.submodel_fatigue");
  const int bx = tsv_blocks_x + 2 * dummy_rings;
  const int by = tsv_blocks_y + 2 * dummy_rings;
  require_padded_window(dummy_rings, placement, bx, by, "simulate_submodel_fatigue");
  const rom::BlockMask mask = mesh::padded_tsv_mask(bx, by, dummy_rings);

  FatigueResult result;
  result.transient =
      run_submodel_transient(bx, by, package, placement, mask, trace, &result.thermal_stats);
  result.envelope_load = rom::BlockLoadField(bx, by, Vec(result.transient.peak_envelope));

  result.history_steps = select_history_steps(result.transient.num_records(),
                                              options.record_stride);
  const std::vector<rom::BlockLoadField> step_loads =
      loads_of_steps(result.transient, result.history_steps);
  const std::vector<double> step_times = times_of_steps(result.transient, result.history_steps);

  const rom::BlockGrid grid(bx, by, config_.local.nodes_x, config_.local.nodes_y,
                            config_.local.nodes_z, config_.geometry.pitch,
                            config_.geometry.height);
  const fem::DirichletBc bc =
      rom::submodel_boundary(grid, package_boundary(package, placement));
  static_cast<ArrayResult&>(result) = run_fatigue_panel(
      bx, by, mask, bc, inner_range(dummy_rings, tsv_blocks_x, tsv_blocks_y),
      /*uses_dummy=*/dummy_rings > 0, result.envelope_load, step_loads, step_times,
      &result.history, &result.solve_stats, &result.history_seconds);

  util::WallTimer timer;
  result.report = assess_fatigue(result.history, trace.duration(), options);
  result.reliability_seconds = timer.seconds();
  MS_LOG_DEBUG("submodel fatigue: %d x %d padded blocks, %d history steps in one panel, min "
               "lifetime %.3g traces",
               bx, by, static_cast<int>(result.history_steps.size()),
               result.report.min_life_cycles);
  return result;
}

}  // namespace ms::core
