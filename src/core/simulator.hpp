#pragma once
// MoreStressSimulator — the public entry point of the library.
//
//   ms::core::SimulationConfig config = ms::core::SimulationConfig::paper_default();
//   ms::core::MoreStressSimulator sim(config);
//   auto result = sim.simulate_array(20, 20);             // scenario 1
//   // result.von_mises is the mid-plane field; result.stats has cost data.
//
// The one-shot local stage runs lazily on first use and is cached for the
// lifetime of the simulator (and optionally on disk), exactly mirroring the
// paper's "perform once, reuse for arbitrary array sizes/loads/locations".

#include <functional>
#include <optional>
#include <string>

#include "chiplet/package_model.hpp"
#include "chiplet/submodel.hpp"
#include "core/config.hpp"
#include "reliability/damage.hpp"
#include "reliability/stress_history.hpp"
#include "rom/block_grid.hpp"
#include "rom/global_assembler.hpp"
#include "rom/global_solver.hpp"
#include "rom/load_field.hpp"
#include "rom/reconstruct.hpp"
#include "thermal/power_map.hpp"
#include "thermal/power_trace.hpp"
#include "thermal/temperature_field.hpp"
#include "thermal/thermal_solver.hpp"

namespace ms::core {

using la::idx_t;
using la::Vec;

/// Cost/quality record of one global-stage run.
struct RunStats {
  double local_stage_seconds = 0.0;   ///< one-shot cost (amortized)
  double assemble_seconds = 0.0;
  double solve_seconds = 0.0;
  double reconstruct_seconds = 0.0;
  idx_t global_dofs = 0;
  idx_t iterations = 0;
  bool converged = false;
  std::size_t memory_bytes = 0;       ///< models + matrix + solver workspace
  // Direct-path factorization detail (zero / empty on iterative paths):
  double factor_seconds = 0.0;        ///< inside solve_seconds
  la::offset_t factor_nnz = 0;        ///< nnz(L) of the global factor
  double fill_ratio = 0.0;            ///< nnz(L) / nnz(tril(K))
  std::string solver_ordering;        ///< "amd" / "rcm" / "natural"

  /// Paper's "computational time of our algorithm": the global stage only.
  [[nodiscard]] double global_seconds() const {
    return assemble_seconds + solve_seconds + reconstruct_seconds;
  }
};

struct ArrayResult {
  std::vector<double> von_mises;      ///< mid-plane field over the region
  std::vector<fem::Stress6> stress;   ///< full tensors, same layout
  int region_blocks_x = 0;
  int region_blocks_y = 0;
  int samples_per_block = 0;
  Vec solution;                       ///< global nodal displacement
  RunStats stats;
};

/// Result of a coupled power-map run: the stress fields of ArrayResult plus
/// the temperature solution and the per-block ΔT it induced (load.values()
/// holds the raw y-major ΔT vector).
struct ThermalArrayResult : ArrayResult {
  thermal::TemperatureField temperature;  ///< nodal field on the thermal mesh
  rom::BlockLoadField load;               ///< per-block ΔT fed to the ROM
  thermal::ThermalSolveStats thermal_stats;
};

/// Result of a transient power-trace run. The ArrayResult base holds the
/// stress at the per-block *peak-envelope* ΔT — per block, the recorded ΔT
/// of largest magnitude (signed), i.e. the worst instantaneous thermal
/// state over the trace whether ΔT is measured from ambient (heating) or
/// from a reflow reference (cooling). `snapshots` holds full ROM runs at
/// user-selected recorded steps for time-resolved views.
struct ThermalTransientArrayResult : ArrayResult {
  thermal::TransientTemperatureResult transient;  ///< ΔT histories + envelope
  rom::BlockLoadField envelope_load;              ///< per-block peak ΔT fed to the ROM
  thermal::TransientSolveStats thermal_stats;
  std::vector<int> snapshot_steps;                ///< indices into transient.times
  std::vector<ArrayResult> snapshots;             ///< one ROM run per requested step
};

/// Result of a coupled sub-model run: stress fields over the inner TSV
/// region plus the package-wide temperature solution and the per-block ΔT
/// of the padded window (dummy rings included, y-major).
struct ThermalSubmodelResult : ArrayResult {
  thermal::TemperatureField temperature;  ///< nodal field on the package mesh
  rom::BlockLoadField load;               ///< padded-window per-block ΔT
  thermal::ThermalSolveStats thermal_stats;
};

/// Result of a transient sub-model run (scenario 2 marched through a power
/// trace): the ArrayResult base holds the stress of the inner TSV region at
/// the padded-window peak-envelope ΔT; `transient` records the windowed
/// per-block ΔT history on the package conduction mesh.
struct ThermalTransientSubmodelResult : ArrayResult {
  thermal::TransientTemperatureResult transient;  ///< windowed ΔT histories
  rom::BlockLoadField envelope_load;              ///< padded-window peak ΔT
  thermal::TransientSolveStats thermal_stats;
};

/// Controls of the cycle-resolved fatigue scenarios.
struct FatigueOptions {
  /// ROM-solve every k-th recorded transient step (the last recorded step is
  /// always included). 1 = every step; larger strides trade channel
  /// resolution for panel width.
  int record_stride = 1;
  /// Rainflow matrix binning of the reported dominant cycle classes.
  int range_bins = 8;
  int mean_bins = 4;
  /// Engelmaier parameters of the bump-shear channel: solder shear modulus
  /// [MPa] at 20 C (eutectic SnPb default) and mean joint temperature [C].
  double solder_shear_modulus = 5.6e3;
  double solder_mean_temperature = 60.0;
  /// Softening of the solder shear modulus with the mean joint temperature
  /// [MPa/C]: G_eff = G + slope * (T_mean - 20). The eutectic SnPb default
  /// (-40 MPa/C) follows the classic linear G(T) fits; set 0 to restore a
  /// temperature-independent modulus.
  double solder_shear_modulus_slope = -40.0;
  /// Cycle frequency feeding the Engelmaier exponent [cycles/day];
  /// 0 derives one trace pass per trace duration (86400 s / duration),
  /// capped at 1e6 — sub-millisecond bench traces would otherwise leave
  /// the classic correlation's validity and flip the exponent's sign.
  /// An explicit value is used as given (and may throw if absurd).
  double cycles_per_day = 0.0;
};

/// Result of a cycle-resolved fatigue run (array or sub-model scenario).
/// The ArrayResult base is the peak-envelope stress solve; the per-step
/// stress states ride in `history` as per-block channel records — the full
/// fields are reduced step by step and never kept. The envelope and every
/// recorded step share one global assembly and one factorization
/// (solve_stats.num_factorizations == 1 on the direct path,
/// solve_stats.num_rhs == history steps + 1).
struct FatigueResult : ArrayResult {
  thermal::TransientTemperatureResult transient;  ///< per-block ΔT histories
  rom::BlockLoadField envelope_load;              ///< peak ΔT fed to the base solve
  thermal::TransientSolveStats thermal_stats;
  std::vector<int> history_steps;           ///< recorded-history indices ROM-solved
  reliability::StressHistory history;       ///< per-step per-block channel peaks
  reliability::ReliabilityReport report;    ///< rainflow + Miner verdict
  rom::GlobalSolveStats solve_stats;        ///< the one batched envelope+steps panel
  double history_seconds = 0.0;             ///< per-step reconstruction + reduction
  double reliability_seconds = 0.0;         ///< rainflow counting + damage models
};

class MoreStressSimulator {
 public:
  explicit MoreStressSimulator(SimulationConfig config);

  /// Scenario 1: standalone nx x ny TSV array, top/bottom clamped, uniform
  /// ΔT = config.thermal_load.
  [[nodiscard]] ArrayResult simulate_array(int blocks_x, int blocks_y);

  /// Scenario 1 with an explicit per-block ΔT field instead of the scalar.
  [[nodiscard]] ArrayResult simulate_array(int blocks_x, int blocks_y,
                                           const rom::BlockLoadField& load);

  /// Scenario 3: operational hotspots. Solves steady-state conduction for
  /// `power` on a coarse array thermal mesh (effective via-averaged
  /// conductivity), reduces the temperature field to per-block ΔT relative
  /// to config.coupling.stress_free_temperature, and runs the ROM stress
  /// path with that non-uniform load. A uniform power map degenerates to the
  /// scalar-ΔT path exactly (same assembly/reconstruction code).
  [[nodiscard]] ThermalArrayResult simulate_array_thermal(int blocks_x, int blocks_y,
                                                          const thermal::PowerMap& power);

  /// Scenario 3, time domain: operational power *traces*. Marches transient
  /// conduction through `trace` on the coarse array thermal mesh (implicit
  /// θ-scheme per config.coupling.transient, one factorization for the whole
  /// trace), records the per-block ΔT history, and runs the ROM stress path
  /// at the per-block peak envelope — the worst transient state, which a
  /// steady solve of any single instant underestimates. `snapshot_steps`
  /// (indices into the recorded history, 0 = initial state) additionally
  /// reconstruct full stress fields at those instants. A constant trace
  /// relaxes to the steady-state solution, so it reproduces
  /// simulate_array_thermal exactly (same mesh, conductivities, and ROM
  /// path) once the horizon passes a few thermal time constants.
  [[nodiscard]] ThermalTransientArrayResult simulate_array_thermal_transient(
      int blocks_x, int blocks_y, const thermal::PowerTrace& trace,
      const std::vector<int>& snapshot_steps = {});

  /// Scenario 3, cycle-resolved fatigue: march `trace` like the transient
  /// path, then ROM-solve *every* recorded step (subject to
  /// options.record_stride) as one batched multi-RHS panel against the
  /// shared global factorization, reduce each reconstructed field to
  /// per-block stress channels (von Mises peak, first principal,
  /// through-plane bump shear), rainflow-count every block's channel history
  /// (ASTM E1049), and accumulate fatigue damage by Miner's rule under the
  /// standard model set (Basquin/Coffin-Manson on Cu, Engelmaier solder).
  /// The result's report names the life-limiting block, channel, and
  /// dominant cycle class.
  [[nodiscard]] FatigueResult simulate_array_fatigue(int blocks_x, int blocks_y,
                                                     const thermal::PowerTrace& trace,
                                                     const FatigueOptions& options = {});

  /// Scenario 2: TSV array embedded in a package. `displacement` supplies
  /// the coarse-solution boundary data (in the sub-model local frame);
  /// `dummy_rings` pads the array per Sec. 4.4. The reported field covers
  /// only the inner TSV region (the region of interest).
  [[nodiscard]] ArrayResult simulate_submodel(
      int tsv_blocks_x, int tsv_blocks_y, int dummy_rings,
      const std::function<std::array<double, 3>(const mesh::Point3&)>& displacement);

  /// Scenario 2 with operational heat: solves steady-state conduction for
  /// `power` (a map over the full package plan, heat entering at the die
  /// top) on a package conduction mesh with per-block TSV-aware effective
  /// conductivity in the sub-model window, reduces the interposer-layer
  /// temperature to per-block ΔT of the padded window, and runs the
  /// sub-modeling ROM path with that non-uniform load and the package's own
  /// displacement field as boundary data. `placement` must cover the padded
  /// window (tsv_blocks + 2*dummy_rings per axis, from standard_locations or
  /// hand-built). A plan-uniform package + uniform power degenerates to the
  /// scalar-ΔT simulate_submodel path exactly.
  [[nodiscard]] ThermalSubmodelResult simulate_submodel_thermal(
      int tsv_blocks_x, int tsv_blocks_y, int dummy_rings,
      const chiplet::PackageModel& package, const chiplet::SubmodelPlacement& placement,
      const thermal::PowerMap& power);

  /// Scenario 2, time domain: march the package conduction mesh through a
  /// power trace with the same θ-stepper the array path uses, reduce every
  /// recorded state to the padded window's per-block ΔT (interposer layer
  /// only), and run the sub-modeling ROM path at the peak envelope with the
  /// package's own displacement field as boundary data. A constant trace
  /// relaxes to simulate_submodel_thermal exactly.
  [[nodiscard]] ThermalTransientSubmodelResult simulate_submodel_thermal_transient(
      int tsv_blocks_x, int tsv_blocks_y, int dummy_rings,
      const chiplet::PackageModel& package, const chiplet::SubmodelPlacement& placement,
      const thermal::PowerTrace& trace);

  /// Scenario 2, cycle-resolved fatigue: the sub-model counterpart of
  /// simulate_array_fatigue — package-mesh transient, windowed per-step ΔT,
  /// one batched panel of per-step ROM solves over the padded window, and
  /// the same rainflow/Miner reduction over the inner TSV region.
  [[nodiscard]] FatigueResult simulate_submodel_fatigue(
      int tsv_blocks_x, int tsv_blocks_y, int dummy_rings,
      const chiplet::PackageModel& package, const chiplet::SubmodelPlacement& placement,
      const thermal::PowerTrace& trace, const FatigueOptions& options = {});

  /// Force the local stage now (otherwise lazy). Returns its wall time,
  /// 0 when already cached.
  double prepare_local_stage(bool with_dummy);

  /// Optional on-disk cache for the one-shot models.
  void set_cache_directory(const std::string& dir) { cache_dir_ = dir; }

  [[nodiscard]] const SimulationConfig& config() const { return config_; }
  [[nodiscard]] const rom::RomModel& tsv_model();
  [[nodiscard]] const rom::RomModel& dummy_model();

 private:
  /// Read-only context handed to a PanelConsumer alongside each extra
  /// solution: everything needed to reconstruct fields for that case.
  struct PanelCaseContext {
    const rom::BlockGrid& grid;
    const rom::RomModel& tsv;
    const rom::RomModel* dummy;
    const rom::BlockMask& mask;
    const rom::BlockRange& report_range;
    const RunStats& base_stats;  ///< primary result's completed stats
    int samples_per_block;
  };
  /// Called once per entry of `extra_loads` with the case index, that case's
  /// global solution (mutable — consumers may move from it), and its load.
  /// Invoked inside an OpenMP parallel for: consumers must write disjoint
  /// slots and take no locks.
  using PanelConsumer =
      std::function<void(std::size_t case_idx, Vec& solution, const rom::BlockLoadField& load,
                         const PanelCaseContext& ctx)>;
  /// The one multi-RHS panel core both run_global_multi and run_fatigue_panel
  /// are built on: assemble the global operator once, solve
  /// [primary | extras] as a single panel (one factorization on the direct
  /// path), reconstruct the primary case fully, then hand every extra
  /// solution to `consumer`. `consume_seconds` (optional) receives the wall
  /// time of the consumer loop. The returned stats do NOT yet include
  /// consumer-specific memory — wrappers account for what they retain.
  ArrayResult run_panel(int blocks_x, int blocks_y, const rom::BlockMask& mask,
                        const fem::DirichletBc& bc, const rom::BlockRange& report_range,
                        bool uses_dummy, const rom::BlockLoadField& primary_load,
                        const std::vector<rom::BlockLoadField>& extra_loads,
                        rom::GlobalSolveStats* solve_stats_out, double* consume_seconds,
                        const PanelConsumer& consumer);
  ArrayResult run_global(int blocks_x, int blocks_y, const rom::BlockMask& mask,
                         const fem::DirichletBc& bc, const rom::BlockRange& report_range,
                         bool uses_dummy, const rom::BlockLoadField& load);
  /// Like run_global, but additionally solves one load case per entry of
  /// `extra_loads` against the same assembled and lifted operator — on the
  /// direct path all cases share one factorization and run as a multi-RHS
  /// panel. Per-case results land in `extra_results` (same order).
  ArrayResult run_global_multi(int blocks_x, int blocks_y, const rom::BlockMask& mask,
                               const fem::DirichletBc& bc, const rom::BlockRange& report_range,
                               bool uses_dummy, const rom::BlockLoadField& load,
                               const std::vector<rom::BlockLoadField>& extra_loads,
                               std::vector<ArrayResult>* extra_results);
  /// Standalone-array policy (all-TSV mask, clamped top/bottom, full report
  /// range) shared by simulate_array and the transient envelope+snapshot
  /// batch, so the two paths cannot drift apart.
  ArrayResult run_array(int blocks_x, int blocks_y, const rom::BlockLoadField& load,
                        const std::vector<rom::BlockLoadField>& extra_loads,
                        std::vector<ArrayResult>* extra_results);
  ArrayResult run_submodel(
      int tsv_blocks_x, int tsv_blocks_y, int dummy_rings, const rom::BlockMask& mask,
      const std::function<std::array<double, 3>(const mesh::Point3&)>& displacement,
      const rom::BlockLoadField& load);
  /// The batched fatigue core shared by both scenarios: assemble the global
  /// operator once, solve [envelope | one case per step load] as a single
  /// multi-RHS panel, reconstruct the envelope fully (the returned
  /// ArrayResult), and reduce every step's reconstructed field straight into
  /// `history` (full per-step fields are never retained).
  ArrayResult run_fatigue_panel(int blocks_x, int blocks_y, const rom::BlockMask& mask,
                                const fem::DirichletBc& bc, const rom::BlockRange& report_range,
                                bool uses_dummy, const rom::BlockLoadField& envelope_load,
                                const std::vector<rom::BlockLoadField>& step_loads,
                                const std::vector<double>& step_times,
                                reliability::StressHistory* history,
                                rom::GlobalSolveStats* solve_stats, double* history_seconds);
  /// Transient conduction of the standalone array (mesh + conductivity +
  /// capacity + per-block reduction), shared by the envelope and fatigue
  /// paths.
  thermal::TransientTemperatureResult run_array_transient(int blocks_x, int blocks_y,
                                                          const thermal::PowerTrace& trace,
                                                          thermal::TransientSolveStats* stats);
  /// Transient conduction of the package stack with the windowed per-step
  /// reduction (padded sub-model window, interposer layer), shared by the
  /// sub-model transient and fatigue paths.
  thermal::TransientTemperatureResult run_submodel_transient(
      int padded_x, int padded_y, const chiplet::PackageModel& package,
      const chiplet::SubmodelPlacement& placement, const rom::BlockMask& mask,
      const thermal::PowerTrace& trace, thermal::TransientSolveStats* stats);
  /// Rainflow + Miner reduction of a recorded history under the standard
  /// model set (options parameterize bins and the Engelmaier channel).
  reliability::ReliabilityReport assess_fatigue(const reliability::StressHistory& history,
                                                double trace_duration,
                                                const FatigueOptions& options) const;
  const rom::RomModel& model_for(rom::BlockKind kind);
  [[nodiscard]] std::string cache_path(rom::BlockKind kind) const;

  SimulationConfig config_;
  std::optional<rom::RomModel> tsv_model_;
  std::optional<rom::RomModel> dummy_model_;
  std::string cache_dir_;
};

}  // namespace ms::core
