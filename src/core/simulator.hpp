#pragma once
// MoreStressSimulator — the public entry point of the library.
//
//   ms::core::SimulationConfig config = ms::core::SimulationConfig::paper_default();
//   ms::core::MoreStressSimulator sim(config);
//   auto result = sim.simulate_array(20, 20);             // scenario 1
//   // result.von_mises is the mid-plane field; result.stats has cost data.
//
// The one-shot local stage runs lazily on first use and is cached for the
// lifetime of the simulator (and optionally on disk), exactly mirroring the
// paper's "perform once, reuse for arbitrary array sizes/loads/locations".
//
// The preferred entry point is `simulate(const sweep::ScenarioSpec&)` — one
// declarative description covering every scenario kind (array / submodel x
// steady / transient / fatigue). The eight simulate_* methods below remain
// as source-compatible shims over the same internals and are considered
// deprecated in the docs; new call sites should build a ScenarioSpec (see
// sweep/scenario_spec.hpp and the README "Sweep" section).

#include <functional>
#include <memory>
#include <string>

#include "chiplet/package_model.hpp"
#include "chiplet/submodel.hpp"
#include "core/cancel.hpp"
#include "core/config.hpp"
#include "core/results.hpp"
#include "la/factor_cache.hpp"
#include "reliability/damage.hpp"
#include "reliability/stress_history.hpp"
#include "rom/block_grid.hpp"
#include "rom/global_assembler.hpp"
#include "rom/global_solver.hpp"
#include "rom/load_field.hpp"
#include "rom/model_cache.hpp"
#include "rom/reconstruct.hpp"
#include "thermal/power_map.hpp"
#include "thermal/power_trace.hpp"
#include "thermal/temperature_field.hpp"
#include "thermal/thermal_solver.hpp"

namespace ms::sweep {
struct ScenarioSpec;
struct ScenarioResult;
}  // namespace ms::sweep

namespace ms::core {

class MoreStressSimulator {
 public:
  explicit MoreStressSimulator(SimulationConfig config);

  /// One declarative entry point for every scenario: dispatches on
  /// spec.kind / spec.analysis / spec.load to the same internals the
  /// simulate_* shims use, bit-identical to the corresponding legacy call
  /// (the equivalence lock in tests/sweep asserts this per scenario kind).
  /// Defined in core/simulate_scenario.cpp.
  [[nodiscard]] sweep::ScenarioResult simulate(const sweep::ScenarioSpec& spec);

  /// Scenario 1: standalone nx x ny TSV array, top/bottom clamped, uniform
  /// ΔT = config.thermal_load. (Deprecated shim — prefer simulate(spec).)
  [[nodiscard]] ArrayResult simulate_array(int blocks_x, int blocks_y);

  /// Scenario 1 with an explicit per-block ΔT field instead of the scalar.
  /// (Deprecated shim — prefer simulate(spec).)
  [[nodiscard]] ArrayResult simulate_array(int blocks_x, int blocks_y,
                                           const rom::BlockLoadField& load);

  /// Scenario 3: operational hotspots. Solves steady-state conduction for
  /// `power` on a coarse array thermal mesh (effective via-averaged
  /// conductivity), reduces the temperature field to per-block ΔT relative
  /// to config.coupling.stress_free_temperature, and runs the ROM stress
  /// path with that non-uniform load. A uniform power map degenerates to the
  /// scalar-ΔT path exactly (same assembly/reconstruction code).
  /// (Deprecated shim — prefer simulate(spec).)
  [[nodiscard]] ThermalArrayResult simulate_array_thermal(int blocks_x, int blocks_y,
                                                          const thermal::PowerMap& power);

  /// Scenario 3, time domain: operational power *traces*. Marches transient
  /// conduction through `trace` on the coarse array thermal mesh (implicit
  /// θ-scheme per config.coupling.transient, one factorization for the whole
  /// trace), records the per-block ΔT history, and runs the ROM stress path
  /// at the per-block peak envelope — the worst transient state, which a
  /// steady solve of any single instant underestimates. `snapshot_steps`
  /// (indices into the recorded history, 0 = initial state) additionally
  /// reconstruct full stress fields at those instants. A constant trace
  /// relaxes to the steady-state solution, so it reproduces
  /// simulate_array_thermal exactly (same mesh, conductivities, and ROM
  /// path) once the horizon passes a few thermal time constants.
  /// (Deprecated shim — prefer simulate(spec).)
  [[nodiscard]] ThermalTransientArrayResult simulate_array_thermal_transient(
      int blocks_x, int blocks_y, const thermal::PowerTrace& trace,
      const std::vector<int>& snapshot_steps = {});

  /// Scenario 3, cycle-resolved fatigue: march `trace` like the transient
  /// path, then ROM-solve *every* recorded step (subject to
  /// options.record_stride) as one batched multi-RHS panel against the
  /// shared global factorization, reduce each reconstructed field to
  /// per-block stress channels (von Mises peak, first principal,
  /// through-plane bump shear), rainflow-count every block's channel history
  /// (ASTM E1049), and accumulate fatigue damage by Miner's rule under the
  /// standard model set (Basquin/Coffin-Manson on Cu, Engelmaier solder).
  /// The result's report names the life-limiting block, channel, and
  /// dominant cycle class. (Deprecated shim — prefer simulate(spec).)
  [[nodiscard]] FatigueResult simulate_array_fatigue(int blocks_x, int blocks_y,
                                                     const thermal::PowerTrace& trace,
                                                     const FatigueOptions& options = {});

  /// Scenario 2: TSV array embedded in a package. `displacement` supplies
  /// the coarse-solution boundary data (in the sub-model local frame);
  /// `dummy_rings` pads the array per Sec. 4.4. The reported field covers
  /// only the inner TSV region (the region of interest).
  /// (Deprecated shim — prefer simulate(spec).)
  [[nodiscard]] ArrayResult simulate_submodel(
      int tsv_blocks_x, int tsv_blocks_y, int dummy_rings,
      const std::function<std::array<double, 3>(const mesh::Point3&)>& displacement);

  /// Scenario 2 with operational heat: solves steady-state conduction for
  /// `power` (a map over the full package plan, heat entering at the die
  /// top) on a package conduction mesh with per-block TSV-aware effective
  /// conductivity in the sub-model window, reduces the interposer-layer
  /// temperature to per-block ΔT of the padded window, and runs the
  /// sub-modeling ROM path with that non-uniform load and the package's own
  /// displacement field as boundary data. `placement` must cover the padded
  /// window (tsv_blocks + 2*dummy_rings per axis, from standard_locations or
  /// hand-built). A plan-uniform package + uniform power degenerates to the
  /// scalar-ΔT simulate_submodel path exactly.
  /// (Deprecated shim — prefer simulate(spec).)
  [[nodiscard]] ThermalSubmodelResult simulate_submodel_thermal(
      int tsv_blocks_x, int tsv_blocks_y, int dummy_rings,
      const chiplet::PackageModel& package, const chiplet::SubmodelPlacement& placement,
      const thermal::PowerMap& power);

  /// Scenario 2, time domain: march the package conduction mesh through a
  /// power trace with the same θ-stepper the array path uses, reduce every
  /// recorded state to the padded window's per-block ΔT (interposer layer
  /// only), and run the sub-modeling ROM path at the peak envelope with the
  /// package's own displacement field as boundary data. A constant trace
  /// relaxes to simulate_submodel_thermal exactly.
  /// (Deprecated shim — prefer simulate(spec).)
  [[nodiscard]] ThermalTransientSubmodelResult simulate_submodel_thermal_transient(
      int tsv_blocks_x, int tsv_blocks_y, int dummy_rings,
      const chiplet::PackageModel& package, const chiplet::SubmodelPlacement& placement,
      const thermal::PowerTrace& trace);

  /// Scenario 2, cycle-resolved fatigue: the sub-model counterpart of
  /// simulate_array_fatigue — package-mesh transient, windowed per-step ΔT,
  /// one batched panel of per-step ROM solves over the padded window, and
  /// the same rainflow/Miner reduction over the inner TSV region.
  /// (Deprecated shim — prefer simulate(spec).)
  [[nodiscard]] FatigueResult simulate_submodel_fatigue(
      int tsv_blocks_x, int tsv_blocks_y, int dummy_rings,
      const chiplet::PackageModel& package, const chiplet::SubmodelPlacement& placement,
      const thermal::PowerTrace& trace, const FatigueOptions& options = {});

  /// Force the local stage now (otherwise lazy). Returns its wall time,
  /// 0 when already cached.
  double prepare_local_stage(bool with_dummy);

  /// Optional on-disk cache for the one-shot models.
  void set_cache_directory(const std::string& dir) { cache_dir_ = dir; }

  /// Cross-scenario factorization memoization (the sweep engine's cache).
  /// Non-owning; the cache must outlive the simulator. Direct-method solves
  /// (global stage, steady conduction, θ-stepper) then share factorizations
  /// with every other simulator wired to the same cache. Keys incorporate a
  /// values-fingerprint of the operator inputs (model loads, conductivity
  /// fields, constrained-dof sets), so simulators with different configs may
  /// safely share one cache. Results stay bit-identical to uncached runs.
  void set_factor_cache(la::FactorCache* cache) { factor_cache_ = cache; }

  /// Cross-simulator local-stage sharing (the sweep engine's model cache).
  /// Non-owning; must outlive the simulator. Keyed by the same fingerprint
  /// as the on-disk cache, composes with set_cache_directory (disk is
  /// checked on an in-memory miss).
  void set_model_cache(rom::ModelCache* cache) { model_cache_ = cache; }

  /// Cooperative cancellation/deadline token, checked at panel, assembly,
  /// factorization, and trace-step boundaries. Inert by default — only the
  /// sweep engine (and tests) arm it.
  void set_cancel_token(core::CancelToken token) { cancel_ = std::move(token); }

  [[nodiscard]] const SimulationConfig& config() const { return config_; }
  [[nodiscard]] const rom::RomModel& tsv_model();
  [[nodiscard]] const rom::RomModel& dummy_model();

 private:
  /// Read-only context handed to a PanelConsumer alongside each extra
  /// solution: everything needed to reconstruct fields for that case.
  struct PanelCaseContext {
    const rom::BlockGrid& grid;
    const rom::RomModel& tsv;
    const rom::RomModel* dummy;
    const rom::BlockMask& mask;
    const rom::BlockRange& report_range;
    const RunStats& base_stats;  ///< primary result's completed stats
    int samples_per_block;
  };
  /// Called once per entry of `extra_loads` with the case index, that case's
  /// global solution (mutable — consumers may move from it), and its load.
  /// Invoked inside an OpenMP parallel for: consumers must write disjoint
  /// slots and take no locks.
  using PanelConsumer =
      std::function<void(std::size_t case_idx, Vec& solution, const rom::BlockLoadField& load,
                         const PanelCaseContext& ctx)>;
  /// The one multi-RHS panel core both run_global_multi and run_fatigue_panel
  /// are built on: assemble the global operator once, solve
  /// [primary | extras] as a single panel (one factorization on the direct
  /// path), reconstruct the primary case fully, then hand every extra
  /// solution to `consumer`. `consume_seconds` (optional) receives the wall
  /// time of the consumer loop. The returned stats do NOT yet include
  /// consumer-specific memory — wrappers account for what they retain.
  /// With a factor cache attached, a resident key skips the operator
  /// assembly entirely (load vectors only) and the factorization.
  ArrayResult run_panel(int blocks_x, int blocks_y, const rom::BlockMask& mask,
                        const fem::DirichletBc& bc, const rom::BlockRange& report_range,
                        bool uses_dummy, const rom::BlockLoadField& primary_load,
                        const std::vector<rom::BlockLoadField>& extra_loads,
                        rom::GlobalSolveStats* solve_stats_out, double* consume_seconds,
                        const PanelConsumer& consumer);
  ArrayResult run_global(int blocks_x, int blocks_y, const rom::BlockMask& mask,
                         const fem::DirichletBc& bc, const rom::BlockRange& report_range,
                         bool uses_dummy, const rom::BlockLoadField& load);
  /// Like run_global, but additionally solves one load case per entry of
  /// `extra_loads` against the same assembled and lifted operator — on the
  /// direct path all cases share one factorization and run as a multi-RHS
  /// panel. Per-case results land in `extra_results` (same order).
  ArrayResult run_global_multi(int blocks_x, int blocks_y, const rom::BlockMask& mask,
                               const fem::DirichletBc& bc, const rom::BlockRange& report_range,
                               bool uses_dummy, const rom::BlockLoadField& load,
                               const std::vector<rom::BlockLoadField>& extra_loads,
                               std::vector<ArrayResult>* extra_results);
  /// Standalone-array policy (all-TSV mask, clamped top/bottom, full report
  /// range) shared by simulate_array and the transient envelope+snapshot
  /// batch, so the two paths cannot drift apart.
  ArrayResult run_array(int blocks_x, int blocks_y, const rom::BlockLoadField& load,
                        const std::vector<rom::BlockLoadField>& extra_loads,
                        std::vector<ArrayResult>* extra_results);
  ArrayResult run_submodel(
      int tsv_blocks_x, int tsv_blocks_y, int dummy_rings, const rom::BlockMask& mask,
      const std::function<std::array<double, 3>(const mesh::Point3&)>& displacement,
      const rom::BlockLoadField& load);
  /// The batched fatigue core shared by both scenarios: assemble the global
  /// operator once, solve [envelope | one case per step load] as a single
  /// multi-RHS panel, reconstruct the envelope fully (the returned
  /// ArrayResult), and reduce every step's reconstructed field straight into
  /// `history` (full per-step fields are never retained).
  ArrayResult run_fatigue_panel(int blocks_x, int blocks_y, const rom::BlockMask& mask,
                                const fem::DirichletBc& bc, const rom::BlockRange& report_range,
                                bool uses_dummy, const rom::BlockLoadField& envelope_load,
                                const std::vector<rom::BlockLoadField>& step_loads,
                                const std::vector<double>& step_times,
                                reliability::StressHistory* history,
                                rom::GlobalSolveStats* solve_stats, double* history_seconds);
  /// Transient conduction of the standalone array (mesh + conductivity +
  /// capacity + per-block reduction), shared by the envelope and fatigue
  /// paths.
  thermal::TransientTemperatureResult run_array_transient(int blocks_x, int blocks_y,
                                                          const thermal::PowerTrace& trace,
                                                          thermal::TransientSolveStats* stats);
  /// Transient conduction of the package stack with the windowed per-step
  /// reduction (padded sub-model window, interposer layer), shared by the
  /// sub-model transient and fatigue paths.
  thermal::TransientTemperatureResult run_submodel_transient(
      int padded_x, int padded_y, const chiplet::PackageModel& package,
      const chiplet::SubmodelPlacement& placement, const rom::BlockMask& mask,
      const thermal::PowerTrace& trace, thermal::TransientSolveStats* stats);
  /// Rainflow + Miner reduction of a recorded history under the standard
  /// model set (options parameterize bins and the Engelmaier channel).
  reliability::ReliabilityReport assess_fatigue(const reliability::StressHistory& history,
                                                double trace_duration,
                                                const FatigueOptions& options) const;
  const rom::RomModel& model_for(rom::BlockKind kind);
  /// The one-shot model's identity string (geometry/mesh/nodes/samples) —
  /// the on-disk cache's file name and the ModelCache key.
  [[nodiscard]] std::string model_fingerprint(rom::BlockKind kind) const;
  [[nodiscard]] std::string cache_path(rom::BlockKind kind) const;
  /// Factor-cache key of the lifted global operator: model fingerprints and
  /// load hashes (covering materials), mask, constrained-dof set, and the
  /// factorization options. Forces the needed models to exist.
  std::string global_factor_key(int blocks_x, int blocks_y, const rom::BlockMask& mask,
                                bool uses_dummy, const fem::DirichletBc& bc);
  /// One source of truth for "transient options = coupling.transient with
  /// coupling.solve as boundary model" (was duplicated per scenario), plus
  /// the factor-cache wiring when a cache is attached.
  [[nodiscard]] thermal::TransientSolveOptions transient_solve_options(
      const std::string& factor_key) const;
  /// coupling.solve with the factor-cache wiring (steady conduction paths).
  [[nodiscard]] thermal::ThermalSolveOptions steady_solve_options(
      const std::string& factor_key) const;

  SimulationConfig config_;
  std::shared_ptr<const rom::RomModel> tsv_model_;
  std::shared_ptr<const rom::RomModel> dummy_model_;
  std::string cache_dir_;
  la::FactorCache* factor_cache_ = nullptr;
  rom::ModelCache* model_cache_ = nullptr;
  core::CancelToken cancel_;
};

}  // namespace ms::core
