// MoreStressSimulator::simulate(const sweep::ScenarioSpec&) — the one
// declarative entry point. Dispatches on kind/analysis/load to the exact
// internals the legacy simulate_* shims use, so every query is bit-identical
// to the corresponding positional call (asserted by tests/sweep).

#include <algorithm>
#include <cmath>

#include "chiplet/displacement_field.hpp"
#include "core/simulator.hpp"
#include "obs/metrics.hpp"
#include "obs/query_scope.hpp"
#include "reliability/stress_history.hpp"
#include "sweep/scenario_result.hpp"
#include "sweep/scenario_spec.hpp"
#include "util/timer.hpp"

namespace ms::core {

namespace {

double peak_of(const std::vector<double>& field) {
  return field.empty() ? 0.0 : *std::max_element(field.begin(), field.end());
}

/// Largest diagonal shift any solve behind this result took (0 = no solver
/// needed the shift-retry ladder; the scenario then reports kDegraded).
double max_shift_of(const sweep::ScenarioResult& result) {
  double shift = result.base().stats.diagonal_shift;
  const auto fold = [&shift](double s) { shift = std::max(shift, s); };
  if (result.thermal_array) fold(result.thermal_array->thermal_stats.diagonal_shift);
  if (result.thermal_submodel) fold(result.thermal_submodel->thermal_stats.diagonal_shift);
  if (result.transient_array) {
    fold(result.transient_array->thermal_stats.diagonal_shift);
    for (const ArrayResult& snapshot : result.transient_array->snapshots)
      fold(snapshot.stats.diagonal_shift);
  }
  if (result.transient_submodel) fold(result.transient_submodel->thermal_stats.diagonal_shift);
  if (result.fatigue) {
    fold(result.fatigue->thermal_stats.diagonal_shift);
    fold(result.fatigue->solve_stats.diagonal_shift);
  }
  return shift;
}

struct ResolvedPackage {
  std::shared_ptr<const chiplet::PackageModel> package;
  chiplet::SubmodelPlacement placement;
};

/// The package a sub-model scenario runs in: the spec's payload when given,
/// else the demo package sized to the padded window and solved for the
/// config's thermal load (the same package every example/bench uses). The
/// sweep engine pre-resolves this per padded size and shares it across
/// scenarios via the payload slot — building a package is itself a coarse
/// FEM solve.
ResolvedPackage resolve_package(const sweep::ScenarioSpec& spec, const SimulationConfig& config) {
  ResolvedPackage resolved;
  const int padded_x = spec.blocks_x + 2 * spec.dummy_rings;
  const int padded_y = spec.blocks_y + 2 * spec.dummy_rings;
  if (spec.package != nullptr) {
    resolved.package = spec.package;
  } else {
    const chiplet::PackageGeometry geometry = chiplet::demo_package_geometry(
        config.geometry.pitch, std::max(padded_x, padded_y), config.geometry.height);
    resolved.package = std::make_shared<chiplet::PackageModel>(
        geometry, chiplet::demo_coarse_spec(), config.thermal_load);
  }
  if (spec.placement.blocks_x != 0) {
    resolved.placement = spec.placement;
  } else {
    const std::vector<chiplet::SubmodelPlacement> locations = chiplet::standard_locations(
        resolved.package->geometry(), config.geometry.pitch, padded_x, padded_y);
    resolved.placement = locations[static_cast<std::size_t>(spec.location - 1)];
  }
  return resolved;
}

/// The package's own coarse displacement in the window's local frame — the
/// same boundary data every simulate_submodel_* path derives internally.
std::function<std::array<double, 3>(const mesh::Point3&)> package_boundary_of(
    const ResolvedPackage& resolved) {
  const chiplet::DisplacementField local =
      chiplet::DisplacementField(resolved.package->mesh(), resolved.package->displacement())
          .shifted(resolved.placement.origin);
  // The closure keeps the package alive: the field references its mesh/u.
  const std::shared_ptr<const chiplet::PackageModel> keep = resolved.package;
  return [local, keep](const mesh::Point3& p) { return local(p); };
}

}  // namespace

sweep::ScenarioResult MoreStressSimulator::simulate(const sweep::ScenarioSpec& spec) {
  spec.validate();

  // A transient time-step override runs under an adjusted config with the
  // same caches and (shared) local-stage models — bit-identical to a
  // simulator constructed with that config outright.
  if (spec.time_step != 0.0 && spec.analysis != sweep::AnalysisKind::kSteady &&
      spec.time_step != config_.coupling.transient.time_step) {
    SimulationConfig adjusted = config_;
    adjusted.coupling.transient.time_step = spec.time_step;
    MoreStressSimulator shadow(adjusted);
    shadow.cache_dir_ = cache_dir_;
    shadow.factor_cache_ = factor_cache_;
    shadow.model_cache_ = model_cache_;
    shadow.tsv_model_ = tsv_model_;
    shadow.dummy_model_ = dummy_model_;
    sweep::ScenarioSpec resolved = spec;
    resolved.time_step = 0.0;
    sweep::ScenarioResult result = shadow.simulate(resolved);
    // Models the shadow built on demand flow back so repeated overrides on
    // this simulator stay warm even without an attached model cache.
    if (tsv_model_ == nullptr) tsv_model_ = shadow.tsv_model_;
    if (dummy_model_ == nullptr) dummy_model_ = shadow.dummy_model_;
    return result;
  }

  util::WallTimer timer;
  sweep::ScenarioResult result;
  result.name = spec.name;
  result.kind = spec.kind;
  result.analysis = spec.analysis;

  const int bx = spec.blocks_x;
  const int by = spec.blocks_y;

  if (spec.kind == sweep::ScenarioKind::kArray) {
    switch (spec.analysis) {
      case sweep::AnalysisKind::kSteady: {
        if (spec.load == sweep::LoadKind::kUniform) {
          const rom::BlockLoadField load =
              spec.load_field != nullptr
                  ? *spec.load_field
                  : rom::BlockLoadField::uniform(
                        std::isnan(spec.delta_t) ? config_.thermal_load : spec.delta_t);
          result.array = std::make_shared<ArrayResult>(simulate_array(bx, by, load));
        } else {
          const thermal::PowerMap power = spec.power_map != nullptr
                                              ? *spec.power_map
                                              : sweep::make_power_map(spec, config_);
          result.thermal_array =
              std::make_shared<ThermalArrayResult>(simulate_array_thermal(bx, by, power));
        }
        break;
      }
      case sweep::AnalysisKind::kTransient: {
        const thermal::PowerTrace trace =
            spec.power_trace != nullptr
                ? *spec.power_trace
                : sweep::make_power_trace(spec, sweep::make_power_map(spec, config_));
        result.transient_array = std::make_shared<ThermalTransientArrayResult>(
            simulate_array_thermal_transient(bx, by, trace, spec.snapshot_steps));
        break;
      }
      case sweep::AnalysisKind::kFatigue: {
        const thermal::PowerTrace trace =
            spec.power_trace != nullptr
                ? *spec.power_trace
                : sweep::make_power_trace(spec, sweep::make_power_map(spec, config_));
        result.fatigue = std::make_shared<FatigueResult>(
            simulate_array_fatigue(bx, by, trace, spec.fatigue));
        break;
      }
    }
  } else {
    const ResolvedPackage resolved = resolve_package(spec, config_);
    switch (spec.analysis) {
      case sweep::AnalysisKind::kSteady: {
        if (spec.load == sweep::LoadKind::kUniform) {
          const auto boundary = spec.displacement ? spec.displacement
                                                  : package_boundary_of(resolved);
          if (spec.load_field == nullptr && std::isnan(spec.delta_t)) {
            result.array = std::make_shared<ArrayResult>(
                simulate_submodel(bx, by, spec.dummy_rings, boundary));
          } else {
            // ΔT override: the legacy path hard-codes config.thermal_load, so
            // drive the shared core with the custom load directly.
            const int padded_x = bx + 2 * spec.dummy_rings;
            const int padded_y = by + 2 * spec.dummy_rings;
            const rom::BlockLoadField load =
                spec.load_field != nullptr ? *spec.load_field
                                           : rom::BlockLoadField::uniform(spec.delta_t);
            result.array = std::make_shared<ArrayResult>(run_submodel(
                bx, by, spec.dummy_rings,
                mesh::padded_tsv_mask(padded_x, padded_y, spec.dummy_rings), boundary, load));
          }
        } else {
          const thermal::PowerMap power =
              spec.power_map != nullptr
                  ? *spec.power_map
                  : sweep::make_power_map(spec, config_, resolved.package->geometry(),
                                          resolved.placement);
          result.thermal_submodel =
              std::make_shared<ThermalSubmodelResult>(simulate_submodel_thermal(
                  bx, by, spec.dummy_rings, *resolved.package, resolved.placement, power));
        }
        break;
      }
      case sweep::AnalysisKind::kTransient: {
        const thermal::PowerTrace trace =
            spec.power_trace != nullptr
                ? *spec.power_trace
                : sweep::make_power_trace(
                      spec, sweep::make_power_map(spec, config_, resolved.package->geometry(),
                                                  resolved.placement));
        result.transient_submodel = std::make_shared<ThermalTransientSubmodelResult>(
            simulate_submodel_thermal_transient(bx, by, spec.dummy_rings, *resolved.package,
                                                resolved.placement, trace));
        break;
      }
      case sweep::AnalysisKind::kFatigue: {
        const thermal::PowerTrace trace =
            spec.power_trace != nullptr
                ? *spec.power_trace
                : sweep::make_power_trace(
                      spec, sweep::make_power_map(spec, config_, resolved.package->geometry(),
                                                  resolved.placement));
        result.fatigue = std::make_shared<FatigueResult>(simulate_submodel_fatigue(
            bx, by, spec.dummy_rings, *resolved.package, resolved.placement, trace,
            spec.fatigue));
        break;
      }
    }
  }

  result.peak_von_mises = peak_of(result.base().von_mises);
  if (result.fatigue != nullptr) {
    const reliability::ReliabilityReport& report = result.fatigue->report;
    result.min_life_log10 = std::log10(report.min_life_cycles);
    result.min_life_seconds = report.min_life_seconds;
    result.life_channel = reliability::channel_name(report.min_life_channel);
  }
  result.diagonal_shift = max_shift_of(result);
  if (result.diagonal_shift != 0.0) result.status = sweep::ScenarioStatus::kDegraded;
  result.simulate_seconds = timer.seconds();

  auto& reg = obs::MetricRegistry::global();
  reg.counter("sweep.scenarios").add(1);
  reg.histogram("sweep.scenario_seconds").record(result.simulate_seconds);
  // Per-analysis-kind latency: steady/transient/fatigue scenarios have very
  // different cost profiles, so the combined histogram hides regressions.
  reg.histogram(std::string("sweep.scenario_seconds.") + sweep::to_string(spec.analysis))
      .record(result.simulate_seconds);
  obs::QueryScope::observe_seconds("scenario_seconds", result.simulate_seconds);
  return result;
}

}  // namespace ms::core
