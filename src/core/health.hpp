#pragma once
// Stage-boundary numeric health guards. require_finite() runs one O(n)
// la::all_finite sweep over a field the pipeline is about to hand to the
// next stage (global solve output, ΔT fields, channel histories, damage
// maps) and converts a NaN/Inf escape into a classified SimError instead of
// letting it flow silently into lifetime maps. Guards sit OFF the hot inner
// loops — once per field per query — and are gated by
// SimulationConfig::robustness.check_finite.

#include <cstddef>

#include "core/sim_error.hpp"
#include "la/vec.hpp"
#include "obs/metrics.hpp"

namespace ms::core {

/// Throw SimError(kNonFiniteField) naming `stage`/`what` if any of x[0..n)
/// is NaN/Inf. No-op when `enabled` is false or the field is empty.
inline void require_finite(bool enabled, const char* stage, const char* what, const double* x,
                           std::size_t n) {
  if (!enabled || n == 0) return;
  if (la::all_finite(x, n)) return;
  obs::MetricRegistry::global().counter("robustness.nonfinite_detected").add(1);
  throw SimError(SimErrorCode::kNonFiniteField, stage,
                 std::string("non-finite values in ") + what);
}

inline void require_finite(bool enabled, const char* stage, const char* what, const la::Vec& x) {
  require_finite(enabled, stage, what, x.data(), x.size());
}

}  // namespace ms::core
