// Quickstart: simulate the thermal stress of a small TSV array with
// MORE-Stress and compare against the full fine-mesh FEM reference.
//
//   ./quickstart [--blocks 6] [--nodes 4] [--pitch 15]
//
// Prints the one-shot local-stage cost, the global-stage cost, the peak von
// Mises stress, and the normalized error versus the reference solve.

#include <cstdio>

#include "core/report.hpp"
#include "core/simulator.hpp"
#include "obs/obs_cli.hpp"
#include "util/cli.hpp"
#include "util/memory.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  ms::util::CliParser cli("quickstart", "MORE-Stress quickstart on a small TSV array");
  cli.add_int("blocks", 6, "array edge length in blocks");
  cli.add_int("nodes", 4, "Lagrange interpolation nodes per axis");
  cli.add_double("pitch", 15.0, "TSV pitch in micrometres");
  cli.add_int("samples", 40, "plane samples per block");
  ms::obs::add_cli_flags(cli);
  cli.parse(argc, argv);
  ms::obs::apply_cli_flags(cli);

  const int blocks = static_cast<int>(cli.get_int("blocks"));
  const int nodes = static_cast<int>(cli.get_int("nodes"));

  ms::core::SimulationConfig config = ms::core::SimulationConfig::paper_default();
  config.geometry.pitch = cli.get_double("pitch");
  config.local.nodes_x = config.local.nodes_y = config.local.nodes_z = nodes;
  config.local.samples_per_block = static_cast<int>(cli.get_int("samples"));

  std::printf("MORE-Stress quickstart: %dx%d array, p=%.1f um, (%d,%d,%d) nodes\n", blocks,
              blocks, config.geometry.pitch, nodes, nodes, nodes);

  ms::core::MoreStressSimulator sim(config);
  const double local_seconds = sim.prepare_local_stage(/*with_dummy=*/false);
  std::printf("one-shot local stage:  %.2f s (%d fine dofs -> %d element dofs)\n", local_seconds,
              static_cast<int>(sim.tsv_model().fine_mesh_dofs),
              static_cast<int>(sim.tsv_model().num_element_dofs()));

  ms::core::ArrayResult result = sim.simulate_array(blocks, blocks);
  double peak = 0.0;
  for (double v : result.von_mises) peak = std::max(peak, v);
  std::printf("global stage:          %.2f s (%d dofs, %d iterations)\n",
              result.stats.global_seconds(), static_cast<int>(result.stats.global_dofs),
              static_cast<int>(result.stats.iterations));
  std::printf("estimated memory:      %s\n",
              ms::util::format_bytes(result.stats.memory_bytes).c_str());
  std::printf("peak von Mises:        %.1f MPa\n", peak);

  // Reference fine-mesh FEM on the identical model.
  ms::fem::FemSolveOptions fem_options;
  const ms::core::ReferenceResult reference =
      ms::core::reference_array(config, blocks, blocks, fem_options);
  std::printf("reference FEM:         %.2f s (%d dofs, %d iterations)\n",
              reference.stats.total_seconds(), static_cast<int>(reference.stats.num_dofs),
              static_cast<int>(reference.stats.iterations));
  std::printf("normalized error:      %s\n",
              ms::util::percent_cell(ms::core::field_error(reference, result.von_mises)).c_str());
  ms::obs::write_cli_outputs(cli);
  return 0;
}
