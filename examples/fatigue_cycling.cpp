// Fatigue under power cycling: a duty-cycled hotspot square wave marched
// cycle-resolved through the reliability pipeline — transient conduction,
// one batched multi-RHS ROM panel over every recorded step, per-block stress
// channels, ASTM E1049 rainflow, and Miner damage under the standard model
// set. Prints the lifetime map and the reliability verdict.
//
//   ./fatigue_cycling [--blocks 4] [--background 5] [--peak 400]
//                     [--period-us 400] [--cycles 4] [--dt-us 20]
//
// Self-checks (exit 1 on failure):
//   1. Consistency: the reported Miner damage of the life-limiting block
//      equals an independent rainflow + Miner recomputation of its recorded
//      channel series (same model), to near machine precision.
//   2. Analytic Miner sum: each square-wave phase spans many thermal time
//      constants, so the von Mises history of every block saturates between
//      two levels l < h. E1049 counting of such a two-level history is
//      exactly (N - 1) full cycles of range h - l plus half cycles of ranges
//      h and h - l, so the damage must match
//        D = (N - 1/2) / Nf(h - l) + 1/2 / Nf(h)
//      with the levels read off the recorded history (small tolerance covers
//      the first-cycle ramp's residual transient).
//   3. Batching invariant: envelope + all steps solved as one panel on a
//      single factorization.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <vector>

#include "core/report.hpp"
#include "core/simulator.hpp"
#include "obs/obs_cli.hpp"
#include "reliability/rainflow.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  ms::util::CliParser cli("fatigue_cycling", "Cycle-resolved fatigue of a pulsed TSV array");
  cli.add_int("blocks", 4, "array edge length in blocks");
  cli.add_int("nodes", 3, "Lagrange interpolation nodes per axis");
  cli.add_int("samples", 20, "plane samples per block");
  cli.add_double("background", 5.0, "idle power density [W/mm^2]");
  cli.add_double("peak", 400.0, "hotspot peak power density [W/mm^2]");
  cli.add_double("period-us", 400.0, "pulse period [us]");
  cli.add_int("cycles", 4, "number of pulse periods");
  cli.add_double("dt-us", 20.0, "time step [us]");
  ms::obs::add_cli_flags(cli);
  cli.parse(argc, argv);
  ms::obs::apply_cli_flags(cli);

  const int blocks = static_cast<int>(cli.get_int("blocks"));
  const int cycles = static_cast<int>(cli.get_int("cycles"));
  ms::core::SimulationConfig config = ms::core::SimulationConfig::paper_default();
  config.mesh_spec = {8, 6};
  config.local.nodes_x = config.local.nodes_y = config.local.nodes_z =
      static_cast<int>(cli.get_int("nodes"));
  config.local.samples_per_block = static_cast<int>(cli.get_int("samples"));
  config.local.sample_displacements = false;
  config.global.method = "direct";
  config.coupling.solve.method = "direct";
  config.coupling.transient.time_step = 1e-6 * cli.get_double("dt-us");

  const double pitch = config.geometry.pitch;
  const double period = 1e-6 * cli.get_double("period-us");
  const ms::thermal::PowerMap idle =
      ms::thermal::PowerMap::per_block(blocks, blocks, pitch, cli.get_double("background"));
  ms::thermal::PowerMap active = idle;
  const double mid = 0.5 * blocks * pitch;
  active.add_gaussian_hotspot(mid, mid, 1.5 * pitch, cli.get_double("peak"));
  const ms::thermal::PowerTrace trace =
      ms::thermal::PowerTrace::square_wave(idle, active, period, 0.5, cycles);

  std::printf("fatigue cycling: %dx%d blocks, %d pulses of %.0f us, dt %.0f us\n\n", blocks,
              blocks, cycles, 1e6 * period, 1e6 * config.coupling.transient.time_step);

  ms::core::MoreStressSimulator sim(config);
  const ms::core::FatigueResult result = sim.simulate_array_fatigue(blocks, blocks, trace);

  std::printf("transient: %d steps; ROM panel: %d rhs on %d factorization(s), "
              "factor %.3f s + triangular %.3f s; channels %.3f s, rainflow+damage %.3f s\n\n",
              result.thermal_stats.num_steps, static_cast<int>(result.solve_stats.num_rhs),
              result.solve_stats.num_factorizations, result.solve_stats.factor_seconds,
              result.solve_stats.triangular_seconds, result.history_seconds,
              result.reliability_seconds);
  std::printf("%s\n", ms::core::format_reliability(result.report).c_str());

  // --- lifetime map (log10 trace passes, governing channel) ----------------
  const auto* vm = result.report.assessment(ms::reliability::StressChannel::kVonMises);
  std::printf("von Mises lifetime map [log10 trace passes]:\n");
  for (int by = blocks - 1; by >= 0; --by) {
    std::printf("  ");
    for (int bx = 0; bx < blocks; ++bx) {
      std::printf("%6.1f", std::log10(vm->cycles_to_failure[by * blocks + bx]));
    }
    std::printf("\n");
  }

  // --- self-check 1: reported damage == independent recomputation ----------
  bool ok = true;
  const auto copper_model =
      ms::reliability::basquin_from_material(config.materials.at(ms::mesh::MaterialId::Copper));
  const int worst = vm->min_life_block;
  const std::vector<double> series =
      result.history.series(ms::reliability::StressChannel::kVonMises, worst);
  const double recomputed =
      ms::reliability::miner_damage(ms::reliability::rainflow_count(series), *copper_model);
  const double reported = vm->damage[worst];
  const double consistency = std::abs(recomputed - reported) / reported;
  std::printf("\nconsistency: reported damage %.6e vs recomputed %.6e (rel diff %.2e) %s\n",
              reported, recomputed, consistency, consistency < 1e-12 ? "OK" : "FAIL");
  ok = ok && consistency < 1e-12;

  // --- self-check 2: analytic Miner sum of the saturated square wave -------
  const double h = *std::max_element(series.begin(), series.end());
  const double l = series.back();  // the saturated idle level ends the trace
  // Rainflow reports the true cycle means ((h+l)/2 for the full cycles, h/2
  // for the peak half cycle); the model's Goodman correction uses them, so
  // the analytic sum must charge the same means.
  const double nf_range = copper_model->cycles_to_failure(h - l, 0.5 * (h + l));
  const double nf_peak = copper_model->cycles_to_failure(h, 0.5 * h);
  const double analytic = (cycles - 0.5) / nf_range + 0.5 / nf_peak;
  const double ratio = reported / analytic;
  std::printf("analytic Miner sum: D = (N - 1/2)/Nf(%.1f) + 1/2/Nf(%.1f) = %.6e, "
              "reported/analytic = %.3f %s\n",
              h - l, h, analytic, ratio, (ratio > 0.8 && ratio < 1.25) ? "OK" : "FAIL");
  ok = ok && ratio > 0.8 && ratio < 1.25;

  // --- self-check 3: one factorization, one panel ---------------------------
  const bool batched = result.solve_stats.num_factorizations == 1 &&
                       result.solve_stats.num_rhs ==
                           static_cast<ms::la::idx_t>(result.history_steps.size()) + 1;
  std::printf("batched panel: %d rhs, %d factorization(s) %s\n",
              static_cast<int>(result.solve_stats.num_rhs),
              result.solve_stats.num_factorizations, batched ? "OK" : "FAIL");
  ok = ok && batched;

  ms::obs::write_cli_outputs(cli);
  return ok ? 0 : 1;
}
