// Scenario-1 scaling study (the workload behind paper Table 1): run the
// one-shot local stage once, then sweep array sizes and watch the global
// stage's cost grow with the number of blocks while the fine-mesh-equivalent
// DoF count explodes. Optionally compares against the linear superposition
// baseline on the largest array.
//
//   ./tsv_array_scaling [--pitch 10] [--sizes 5,10,20,30] [--superpose]

#include <cstdio>

#include "baseline/superposition.hpp"
#include "core/simulator.hpp"
#include "fem/assembler.hpp"
#include "obs/obs_cli.hpp"
#include "util/cli.hpp"
#include "util/memory.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace {

std::vector<int> parse_sizes(const std::string& text) {
  std::vector<int> out;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    const std::size_t comma = text.find(',', pos);
    out.push_back(std::stoi(text.substr(pos, comma - pos)));
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  ms::util::CliParser cli("tsv_array_scaling", "sweep TSV array sizes with one ROM");
  cli.add_double("pitch", 15.0, "TSV pitch in micrometres");
  cli.add_string("sizes", "5,10,20,30", "array edges to sweep");
  cli.add_int("samples", 40, "plane samples per block");
  cli.add_flag("superpose", "also run the linear superposition baseline");
  ms::obs::add_cli_flags(cli);
  cli.parse(argc, argv);
  ms::obs::apply_cli_flags(cli);

  ms::core::SimulationConfig config = ms::core::SimulationConfig::paper_default();
  config.geometry.pitch = cli.get_double("pitch");
  config.mesh_spec = {8, 6};
  config.local.samples_per_block = static_cast<int>(cli.get_int("samples"));

  ms::core::MoreStressSimulator sim(config);
  const double local_seconds = sim.prepare_local_stage(false);
  std::printf("one-shot local stage: %.2f s (reused for every size below)\n\n", local_seconds);

  // Fine-mesh DoF count a full FEM would need for the same array.
  const ms::mesh::BlockGridLines lines =
      ms::mesh::block_grid_lines(config.geometry, config.mesh_spec);
  const long block_edge_nodes = static_cast<long>(lines.xy.size()) - 1;

  ms::util::TextTable table({"array", "global dofs", "fine-FEM dofs (equiv)", "global time",
                             "memory", "iters", "peak vM [MPa]"});
  for (int size : parse_sizes(cli.get_string("sizes"))) {
    const ms::core::ArrayResult result = sim.simulate_array(size, size);
    double peak = 0.0;
    for (double v : result.von_mises) peak = std::max(peak, v);
    const long fine_nodes = (block_edge_nodes * size + 1) * (block_edge_nodes * size + 1) *
                            (static_cast<long>(lines.z.size()));
    table.add_row({ms::util::strf("%dx%d", size, size),
                   ms::util::strf("%d", static_cast<int>(result.stats.global_dofs)),
                   ms::util::strf("%ld", 3 * fine_nodes),
                   ms::util::format_seconds(result.stats.global_seconds()),
                   ms::util::format_bytes(result.stats.memory_bytes),
                   ms::util::strf("%d", static_cast<int>(result.stats.iterations)),
                   ms::util::strf("%.0f", peak)});
    std::fflush(stdout);
  }
  std::fputs(table.render().c_str(), stdout);

  if (cli.flag("superpose")) {
    const std::vector<int> sizes = parse_sizes(cli.get_string("sizes"));
    const int largest = sizes.back();
    ms::baseline::SuperpositionModel::BuildOptions options;
    options.samples_per_block = config.local.samples_per_block;
    options.thermal_load = config.thermal_load;
    const auto sp = ms::baseline::SuperpositionModel::build(config.geometry, config.mesh_spec,
                                                            config.materials, options);
    ms::util::WallTimer timer;
    const auto field = sp.estimate_array(largest, largest);
    std::printf("\nlinear superposition on %dx%d: build %.1f s (one-shot), estimate %.2f s\n",
                largest, largest, sp.build_seconds(), timer.seconds());
  }
  ms::obs::write_cli_outputs(cli);
  return 0;
}
