// Scenario-2 walkthrough (paper Fig. 5(b) / Table 2): solve a coarse chiplet
// package once, then drop a TSV array at the five standard locations and
// compute its stress through the sub-modeling path — coarse displacement
// boundary conditions + dummy-block padding + the ROM global stage. A final
// thermally coupled run puts an operational hotspot over the loc1 window and
// reruns it through simulate_submodel_thermal (package conduction solve with
// TSV-aware per-block conductivity -> per-block ΔT -> same ROM path).
//
//   ./chiplet_submodel [--array 5] [--rings 2] [--pitch 15] [--power 30]

#include <algorithm>
#include <cstdio>

#include "chiplet/package_model.hpp"
#include "chiplet/submodel.hpp"
#include "core/simulator.hpp"
#include "obs/obs_cli.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

int main(int argc, char** argv) {
  ms::util::CliParser cli("chiplet_submodel", "TSV array embedded in a chiplet (sub-modeling)");
  cli.add_int("array", 5, "TSV array edge length");
  cli.add_int("rings", 2, "dummy-block padding rings");
  cli.add_double("pitch", 15.0, "TSV pitch in micrometres");
  cli.add_int("samples", 40, "plane samples per block");
  // The ideal sink sits below the low-k organic substrate, so a few W/mm^2
  // already produces reflow-scale ΔT.
  cli.add_double("power", 2.0, "die power density for the thermal run [W/mm^2]");
  ms::obs::add_cli_flags(cli);
  cli.parse(argc, argv);
  ms::obs::apply_cli_flags(cli);

  const int array = static_cast<int>(cli.get_int("array"));
  const int rings = static_cast<int>(cli.get_int("rings"));
  const int padded = array + 2 * rings;

  ms::core::SimulationConfig config = ms::core::SimulationConfig::paper_default();
  config.geometry.pitch = cli.get_double("pitch");
  config.mesh_spec = {8, 6};
  config.local.samples_per_block = static_cast<int>(cli.get_int("samples"));

  // Package: substrate + interposer + die, interposer hosting the TSVs.
  const ms::chiplet::PackageGeometry geom =
      ms::chiplet::demo_package_geometry(config.geometry.pitch, padded, config.geometry.height);

  std::printf("solving coarse package model (%gx%g um substrate)...\n", geom.substrate_x,
              geom.substrate_y);
  ms::util::WallTimer timer;
  const ms::chiplet::PackageModel package(geom, ms::chiplet::demo_coarse_spec(),
                                          config.thermal_load);
  std::printf("coarse solve: %.1f s (%d dofs)\n\n", timer.seconds(),
              static_cast<int>(package.stats().num_dofs));

  ms::core::MoreStressSimulator sim(config);
  const double local_seconds = sim.prepare_local_stage(/*with_dummy=*/rings > 0);
  std::printf("one-shot local stages (TSV + dummy): %.1f s\n\n", local_seconds);

  const auto locations =
      ms::chiplet::standard_locations(geom, config.geometry.pitch, padded, padded);

  ms::util::TextTable table(
      {"location", "origin (um)", "global time", "iters", "peak vM [MPa]", "mean vM [MPa]"});
  for (const auto& loc : locations) {
    const auto displacement = [&](const ms::mesh::Point3& p) {
      return package.displacement_at(
          {p.x + loc.origin.x, p.y + loc.origin.y, p.z + loc.origin.z});
    };
    const ms::core::ArrayResult result = sim.simulate_submodel(array, array, rings, displacement);
    double peak = 0.0, mean = 0.0;
    for (double v : result.von_mises) {
      peak = std::max(peak, v);
      mean += v;
    }
    mean /= static_cast<double>(result.von_mises.size());
    table.add_row({loc.label, ms::util::strf("(%.0f, %.0f)", loc.origin.x, loc.origin.y),
                   ms::util::format_seconds(result.stats.global_seconds()),
                   ms::util::strf("%d", static_cast<int>(result.stats.iterations)),
                   ms::util::strf("%.0f", peak), ms::util::strf("%.0f", mean)});
    std::fflush(stdout);
  }
  std::fputs(table.render().c_str(), stdout);
  std::printf(
      "\nNote how peak stress varies with location: the array couples with the\n"
      "package warpage field, which is what the sub-modeling path captures.\n");

  // --- operational heat: hotspot over the loc1 window ----------------------
  const ms::chiplet::SubmodelPlacement& loc = locations[0];
  const ms::thermal::PowerMap power = ms::chiplet::demo_power_map(
      geom, loc, config.geometry.pitch, cli.get_double("power"), 10.0 * cli.get_double("power"));

  const ms::core::ThermalSubmodelResult thermal =
      sim.simulate_submodel_thermal(array, array, rings, package, loc, power);
  double peak = 0.0;
  for (double v : thermal.von_mises) peak = std::max(peak, v);
  std::printf(
      "\nthermal run at %s: conduction %.2f s (%d dofs), dT in [%.1f, %.1f] C,\n"
      "global stage %.2f s, peak von Mises %.0f MPa\n",
      loc.label.c_str(), thermal.thermal_stats.total_seconds(),
      static_cast<int>(thermal.thermal_stats.num_dofs), thermal.load.min(), thermal.load.max(),
      thermal.stats.global_seconds(), peak);
  ms::obs::write_cli_outputs(cli);
  return 0;
}
