// Convergence study (paper Table 3 / Fig. 6 behaviour at example scale):
// sweep the Lagrange interpolation node count and watch the error against a
// fine-mesh reference fall while the reduced model grows.
//
//   ./convergence_study [--array 4] [--max-nodes 6]

#include <cstdio>

#include "core/report.hpp"
#include "core/simulator.hpp"
#include "obs/obs_cli.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  ms::util::CliParser cli("convergence_study", "ROM error vs interpolation node count");
  cli.add_int("array", 4, "array edge length");
  cli.add_int("max-nodes", 6, "largest (n,n,n) to test");
  cli.add_int("samples", 30, "plane samples per block");
  ms::obs::add_cli_flags(cli);
  cli.parse(argc, argv);
  ms::obs::apply_cli_flags(cli);

  const int array = static_cast<int>(cli.get_int("array"));
  const int max_nodes = static_cast<int>(cli.get_int("max-nodes"));

  ms::core::SimulationConfig base = ms::core::SimulationConfig::paper_default();
  base.mesh_spec = {8, 6};
  base.local.samples_per_block = static_cast<int>(cli.get_int("samples"));

  std::printf("reference: full fine-mesh FEM of the %dx%d array...\n", array, array);
  ms::fem::FemSolveOptions fem_options;
  const ms::core::ReferenceResult reference =
      ms::core::reference_array(base, array, array, fem_options);
  std::printf("reference solved: %d dofs, %s\n\n", static_cast<int>(reference.stats.num_dofs),
              ms::util::strf("%.1f s", reference.stats.total_seconds()).c_str());

  ms::util::TextTable table({"(n,n,n)", "element DoFs", "local stage", "global stage", "error"});
  double previous_error = 1e9;
  bool monotone = true;
  for (int nodes = 2; nodes <= max_nodes; ++nodes) {
    ms::core::SimulationConfig config = base;
    config.local.nodes_x = config.local.nodes_y = config.local.nodes_z = nodes;
    ms::core::MoreStressSimulator sim(config);
    const double local_seconds = sim.prepare_local_stage(false);
    const ms::core::ArrayResult result = sim.simulate_array(array, array);
    const double error = ms::core::field_error(reference, result.von_mises);
    monotone = monotone && error < previous_error;
    previous_error = error;
    table.add_row({ms::util::strf("(%d,%d,%d)", nodes, nodes, nodes),
                   ms::util::strf("%d", static_cast<int>(sim.tsv_model().num_element_dofs())),
                   ms::util::strf("%.1f s", local_seconds),
                   ms::util::strf("%.2f s", result.stats.global_seconds()),
                   ms::util::percent_cell(error)});
    std::fflush(stdout);
  }
  std::fputs(table.render().c_str(), stdout);
  std::printf("\nerror decreases monotonically: %s (the paper's Fig. 6 behaviour)\n",
              monotone ? "yes" : "NO");
  ms::obs::write_cli_outputs(cli);
  return 0;
}
