// Transient hotspot: worst-case stress of a TSV array under a time-varying
// workload — a duty-cycled hotspot that also migrates across the die.
//
//   ./transient_hotspot [--blocks 8] [--background 20] [--peak 400]
//                       [--period-us 60] [--duty 0.4] [--cycles 3]
//                       [--dt-us 2] [--scheme backward-euler]
//
// Marches implicit transient conduction through the trace (one
// factorization, one triangular solve per step), reduces every state to
// per-block ΔT, and runs the ROM stress path at the per-block *peak
// envelope* — the worst instantaneous thermal state each block sees. Prints
// the envelope vs. time-average ΔT maps and the envelope-driven von Mises
// field, then validates two invariants:
//   1. the peak envelope strictly exceeds the time-average somewhere (a
//      pulsed workload is *not* its own mean), and
//   2. the envelope dominates every recorded state blockwise.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <vector>

#include "core/simulator.hpp"
#include "obs/obs_cli.hpp"
#include "util/cli.hpp"

namespace {

/// Coarse ASCII rendering of a per-block map (one cell per block).
void print_block_map(const char* title, const std::vector<double>& values, int blocks_x,
                     int blocks_y) {
  const double lo = *std::min_element(values.begin(), values.end());
  const double hi = *std::max_element(values.begin(), values.end());
  std::printf("%s (min %.3g, max %.3g):\n", title, lo, hi);
  static const char kShades[] = " .:-=+*#%@";
  for (int by = blocks_y - 1; by >= 0; --by) {
    std::printf("  ");
    for (int bx = 0; bx < blocks_x; ++bx) {
      const double v = values[static_cast<std::size_t>(by) * blocks_x + bx];
      const int shade = (hi > lo) ? static_cast<int>(9.0 * (v - lo) / (hi - lo) + 0.5) : 0;
      std::printf("%c%c", kShades[shade], kShades[shade]);
    }
    std::printf("\n");
  }
}

}  // namespace

int main(int argc, char** argv) {
  ms::util::CliParser cli("transient_hotspot", "Worst-case stress under a pulsed power trace");
  cli.add_int("blocks", 8, "array edge length in blocks");
  cli.add_int("nodes", 4, "Lagrange interpolation nodes per axis");
  cli.add_int("samples", 30, "plane samples per block");
  cli.add_double("background", 20.0, "background power density [W/mm^2]");
  cli.add_double("peak", 400.0, "hotspot peak power density [W/mm^2]");
  cli.add_double("period-us", 60.0, "pulse period [us]");
  cli.add_double("duty", 0.4, "pulse duty cycle (0..1)");
  cli.add_int("cycles", 3, "number of pulse periods");
  cli.add_double("dt-us", 2.0, "time step [us]");
  cli.add_string("scheme", "backward-euler", "backward-euler or crank-nicolson");
  ms::obs::add_cli_flags(cli);
  cli.parse(argc, argv);
  ms::obs::apply_cli_flags(cli);

  const int blocks = static_cast<int>(cli.get_int("blocks"));
  ms::core::SimulationConfig config = ms::core::SimulationConfig::paper_default();
  config.mesh_spec = {8, 6};
  config.local.nodes_x = config.local.nodes_y = config.local.nodes_z =
      static_cast<int>(cli.get_int("nodes"));
  config.local.samples_per_block = static_cast<int>(cli.get_int("samples"));
  config.local.sample_displacements = false;
  config.global.method = "direct";
  config.coupling.solve.method = "direct";
  config.coupling.transient.time_step = 1e-6 * cli.get_double("dt-us");
  config.coupling.transient.scheme = cli.get_string("scheme");

  const double pitch = config.geometry.pitch;
  const double extent = blocks * pitch;

  // The pulse: background-only when idle, background + a hotspot migrating
  // from the lower-left quadrant to the upper-right one while powered. The
  // duty-cycled square wave supplies the idle/active alternation; migration
  // enters through the "high" map changing every cycle.
  const ms::thermal::PowerMap idle =
      ms::thermal::PowerMap::per_block(blocks, blocks, pitch, cli.get_double("background"));
  const double period = 1e-6 * cli.get_double("period-us");
  const double duty = cli.get_double("duty");
  const int cycles = static_cast<int>(cli.get_int("cycles"));
  ms::thermal::PowerTrace trace;  // piecewise-constant
  for (int c = 0; c < cycles; ++c) {
    const double w = cycles > 1 ? static_cast<double>(c) / (cycles - 1) : 0.5;
    ms::thermal::PowerMap active = idle;
    active.add_gaussian_hotspot((0.3 + 0.4 * w) * extent, (0.3 + 0.4 * w) * extent,
                                1.5 * pitch, cli.get_double("peak"));
    trace.add_keyframe(c * period, active);
    trace.add_keyframe((c + duty) * period, idle);
  }

  std::printf("transient hotspot: %dx%d blocks, %d pulses of %.0f us (duty %.0f%%), dt %.1f us, "
              "%s\n\n",
              blocks, blocks, cycles, 1e6 * period, 100.0 * duty,
              1e6 * config.coupling.transient.time_step,
              config.coupling.transient.scheme.c_str());

  ms::core::MoreStressSimulator sim(config);
  const ms::core::ThermalTransientArrayResult result =
      sim.simulate_array_thermal_transient(blocks, blocks, trace);

  std::printf("transient solve: %d dofs, %d steps; assemble %.3f s, factor %.3f s, "
              "stepping %.3f s\n",
              static_cast<int>(result.thermal_stats.num_dofs), result.thermal_stats.num_steps,
              result.thermal_stats.assemble_seconds, result.thermal_stats.factor_seconds,
              result.thermal_stats.step_seconds);
  std::printf("global stage:    %.3f s (%d dofs)\n\n", result.stats.global_seconds(),
              static_cast<int>(result.stats.global_dofs));

  print_block_map("per-block peak-envelope dT [C]", result.transient.peak_envelope, blocks,
                  blocks);
  std::printf("\n");
  print_block_map("per-block time-average dT [C]", result.transient.time_average, blocks,
                  blocks);
  std::printf("\n");
  print_block_map("envelope von Mises [MPa] (per-block peak)",
                  [&] {
                    std::vector<double> peaks(static_cast<std::size_t>(blocks) * blocks, 0.0);
                    const int s = result.samples_per_block;
                    const int width = blocks * s;
                    for (int by = 0; by < blocks; ++by) {
                      for (int bx = 0; bx < blocks; ++bx) {
                        double peak = 0.0;
                        for (int my = 0; my < s; ++my) {
                          for (int mx = 0; mx < s; ++mx) {
                            peak = std::max(peak,
                                            result.von_mises[static_cast<std::size_t>(
                                                                 by * s + my) * width +
                                                             bx * s + mx]);
                          }
                        }
                        peaks[static_cast<std::size_t>(by) * blocks + bx] = peak;
                      }
                    }
                    return peaks;
                  }(),
                  blocks, blocks);

  // --- invariants ----------------------------------------------------------
  // 1. Somewhere the envelope strictly exceeds the time-average: a pulsed
  //    trace is hotter at its peak than on average.
  double max_excess_ratio = 0.0;
  bool envelope_dominates = true;
  for (std::size_t b = 0; b < result.transient.peak_envelope.size(); ++b) {
    if (result.transient.time_average[b] > 0.0) {
      max_excess_ratio =
          std::max(max_excess_ratio,
                   result.transient.peak_envelope[b] / result.transient.time_average[b]);
    }
  }
  // 2. Envelope >= every recorded state, blockwise.
  for (const auto& state : result.transient.block_delta_t) {
    for (std::size_t b = 0; b < state.size(); ++b) {
      if (result.transient.peak_envelope[b] < state[b]) envelope_dominates = false;
    }
  }

  std::printf("\npeak envelope vs time-average: max ratio %.3f (%s)\n", max_excess_ratio,
              max_excess_ratio > 1.01 ? "OK, pulsed" : "FAIL, degenerate");
  std::printf("envelope dominates every recorded state: %s\n",
              envelope_dominates ? "OK" : "FAIL");
  ms::obs::write_cli_outputs(cli);
  return (max_excess_ratio > 1.01 && envelope_dominates) ? 0 : 1;
}
