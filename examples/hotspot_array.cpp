// Hotspot array: operational thermal stress of a TSV array under a
// non-uniform workload power map (scenario 3).
//
//   ./hotspot_array [--blocks 8] [--background 20] [--peak 400] [--sigma 1.5]
//
// Solves steady-state conduction for the power map (background + one
// Gaussian hotspot over the array centre), reduces the temperature field to
// per-block ΔT, and runs the ROM stress path with that non-uniform load.
// Prints the per-block ΔT and von Mises maps, and validates the degenerate
// case: a uniform power map must reproduce the scalar-ΔT path to 1e-8.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <vector>

#include "core/simulator.hpp"
#include "obs/obs_cli.hpp"
#include "util/cli.hpp"

namespace {

/// Coarse ASCII rendering of a per-block map (one cell per block).
void print_block_map(const char* title, const std::vector<double>& values, int blocks_x,
                     int blocks_y) {
  const double lo = *std::min_element(values.begin(), values.end());
  const double hi = *std::max_element(values.begin(), values.end());
  std::printf("%s (min %.3g, max %.3g):\n", title, lo, hi);
  static const char kShades[] = " .:-=+*#%@";
  for (int by = blocks_y - 1; by >= 0; --by) {
    std::printf("  ");
    for (int bx = 0; bx < blocks_x; ++bx) {
      const double v = values[static_cast<std::size_t>(by) * blocks_x + bx];
      const int shade =
          (hi > lo) ? static_cast<int>(9.0 * (v - lo) / (hi - lo) + 0.5) : 0;
      std::printf("%c%c", kShades[shade], kShades[shade]);
    }
    std::printf("\n");
  }
}

/// Per-block peak of a samples-per-block field (y-major over blocks).
std::vector<double> block_peaks(const std::vector<double>& field, int blocks_x, int blocks_y,
                                int s) {
  std::vector<double> peaks(static_cast<std::size_t>(blocks_x) * blocks_y, 0.0);
  const int width = blocks_x * s;
  for (int by = 0; by < blocks_y; ++by) {
    for (int bx = 0; bx < blocks_x; ++bx) {
      double peak = 0.0;
      for (int my = 0; my < s; ++my) {
        for (int mx = 0; mx < s; ++mx) {
          peak = std::max(peak, field[static_cast<std::size_t>(by * s + my) * width + bx * s + mx]);
        }
      }
      peaks[static_cast<std::size_t>(by) * blocks_x + bx] = peak;
    }
  }
  return peaks;
}

}  // namespace

int main(int argc, char** argv) {
  ms::util::CliParser cli("hotspot_array", "Operational hotspot stress on a TSV array");
  cli.add_int("blocks", 8, "array edge length in blocks");
  cli.add_int("nodes", 4, "Lagrange interpolation nodes per axis");
  cli.add_int("samples", 30, "plane samples per block");
  cli.add_double("background", 20.0, "background power density [W/mm^2]");
  cli.add_double("peak", 400.0, "hotspot peak power density [W/mm^2]");
  cli.add_double("sigma", 1.5, "hotspot radius in pitches");
  ms::obs::add_cli_flags(cli);
  cli.parse(argc, argv);
  ms::obs::apply_cli_flags(cli);

  const int blocks = static_cast<int>(cli.get_int("blocks"));
  ms::core::SimulationConfig config = ms::core::SimulationConfig::paper_default();
  config.mesh_spec = {8, 6};
  config.local.nodes_x = config.local.nodes_y = config.local.nodes_z =
      static_cast<int>(cli.get_int("nodes"));
  config.local.samples_per_block = static_cast<int>(cli.get_int("samples"));
  config.local.sample_displacements = false;
  config.global.method = "direct";  // removes iterative noise from the validation
  config.coupling.solve.method = "direct";

  const double pitch = config.geometry.pitch;
  ms::thermal::PowerMap power =
      ms::thermal::PowerMap::per_block(blocks, blocks, pitch, cli.get_double("background"));
  const double mid = 0.5 * blocks * pitch;
  power.add_gaussian_hotspot(mid, mid, cli.get_double("sigma") * pitch,
                             cli.get_double("peak"));

  std::printf("hotspot array: %dx%d blocks, %.2f W total (peak %.0f W/mm^2)\n\n", blocks,
              blocks, power.total_power(), power.peak_density());

  ms::core::MoreStressSimulator sim(config);
  const ms::core::ThermalArrayResult result = sim.simulate_array_thermal(blocks, blocks, power);

  std::printf("thermal solve:   %d dofs in %.3f s\n", static_cast<int>(result.thermal_stats.num_dofs),
              result.thermal_stats.total_seconds());
  std::printf("global stage:    %.3f s (%d dofs)\n", result.stats.global_seconds(),
              static_cast<int>(result.stats.global_dofs));
  std::printf("die temperature: %.2f .. %.2f C\n\n", result.temperature.min(),
              result.temperature.max());

  print_block_map("per-block dT [C]", result.load.values(), blocks, blocks);
  std::printf("\n");
  const std::vector<double> peaks =
      block_peaks(result.von_mises, blocks, blocks, result.samples_per_block);
  print_block_map("per-block peak von Mises [MPa]", peaks, blocks, blocks);

  // Degenerate-case validation: a uniform power map must reproduce the
  // scalar-DT path (simulate_array delegates to exactly this uniform-load
  // overload, so the shared simulator's cached local stage can be reused).
  const ms::thermal::PowerMap uniform =
      ms::thermal::PowerMap::per_block(blocks, blocks, pitch, cli.get_double("background"));
  const ms::core::ThermalArrayResult coupled = sim.simulate_array_thermal(blocks, blocks, uniform);
  const ms::core::ArrayResult scalar = sim.simulate_array(
      blocks, blocks, ms::rom::BlockLoadField::uniform(coupled.load.values().front()));
  double peak = 0.0, max_diff = 0.0;
  for (std::size_t i = 0; i < scalar.von_mises.size(); ++i) {
    peak = std::max(peak, std::abs(scalar.von_mises[i]));
    max_diff = std::max(max_diff, std::abs(scalar.von_mises[i] - coupled.von_mises[i]));
  }
  const double rel = max_diff / peak;
  std::printf("\nuniform-map check vs scalar-dT path: max rel diff %.2e (%s)\n", rel,
              rel <= 1e-8 ? "OK" : "FAIL");
  ms::obs::write_cli_outputs(cli);
  return rel <= 1e-8 ? 0 : 1;
}
