#!/usr/bin/env python3
"""Benchmark-regression gate: diff a freshly emitted BENCH_*.json against the
committed baseline and fail on significant slowdowns.

Cases are matched by (scenario, edge, rings); the compared metrics are every
"*_seconds" field both records share. CI machines differ in speed from the
machine that produced the baseline, so raw ratios are useless on their own:
the gate first estimates the machine scale as the *median* new/base ratio
over all timing metrics, then flags any metric whose ratio exceeds
scale * --max-slowdown AND whose absolute excess clears --abs-floor (so
microsecond-scale timings cannot trip the gate on noise). Physics outputs
(peak stress, ΔT extremes) are compared at a tight relative tolerance as a
correctness-drift tripwire.

Cases carrying a "trace_overhead_ratio" field (instrumented vs disabled
wall time of the same solve) are additionally gated against
--max-trace-overhead on the *current* run alone — the observability layer
must stay within a few percent of the untraced pipeline on every machine,
so no baseline normalization applies.

Limitation: median normalization absorbs *uniform* slowdowns by design
(that is what makes the gate portable across runner speeds), so a change
that slows every case equally only fails once the median ratio itself
exceeds --max-scale. Keep --max-scale at the slowest runner you expect
relative to the baseline machine; regressions confined to a minority of
metrics are caught regardless.

Exit code 0 = pass, 1 = regression or malformed input.

Usage:
  python3 tools/bench_gate.py bench/baseline/BENCH_thermal.json \
      build/BENCH_thermal.json [--max-slowdown 1.25] [--abs-floor 0.05]
"""

import argparse
import json
import statistics
import sys


def case_key(case):
    return (case.get("scenario"), case.get("edge"), case.get("rings"))


def load_cases(path):
    with open(path) as f:
        data = json.load(f)
    cases = {}
    for case in data.get("cases", []):
        cases[case_key(case)] = case
    if not cases:
        sys.exit(f"error: no cases in {path}")
    # A null metric means the emitter failed mid-run (e.g. a scenario error
    # left a field unset). Refuse it with the offending metric named instead
    # of silently skipping the comparison or tracebacking on float(None).
    nulls = [f"{key} {metric}"
             for key, case in sorted(cases.items(), key=str)
             for metric, value in sorted(case.items()) if value is None]
    if nulls:
        sys.exit(f"error: {path} has null metric values: {'; '.join(nulls)} "
                 "(re-run the bench; the gate cannot compare null)")
    return cases


VALUE_FIELDS = ("peak_von_mises", "dt_min", "dt_max", "envelope_dt_max", "time_average_dt_max",
                # Solver determinism tripwires: orderings and supernode
                # detection are deterministic, so factor fill may not drift.
                "rcm_factor_nnz", "amd_factor_nnz", "amd_fill_ratio", "num_supernodes",
                "stepper_factor_nnz", "stepper_fill_ratio",
                "package_factor_nnz", "package_fill_ratio",
                # Reliability tripwires: the batched fatigue panel must keep
                # one factorization and a fixed RHS count, and the rainflow /
                # Miner reduction is deterministic, so the log-lifetime and
                # counted cycle content may not drift.
                "num_rhs", "num_factorizations", "min_life_log10", "total_cycle_counts",
                # Hot-path timing tripwires: "_seconds"-suffixed entries are
                # gated as strict scale-normalized budgets (no abs-floor, see
                # below) instead of relative value drift — the batched channel
                # extraction is the fatigue hot path and must not creep back
                # toward per-step dense reconstruction even by small absolute
                # amounts.
                "channel_extraction_seconds",
                # Sweep-engine tripwires: the cache hit/miss counts are exact
                # consequences of structure-keyed memoization, the warm pass
                # must stay bit-identical to cold legacy runs, and the
                # "_per_second" throughput fields are gated as inverted
                # scale-normalized floors (see below) rather than value drift.
                "queries_per_second", "cold_queries_per_second",
                "factor_cache_hits", "factor_cache_misses", "model_cache_hits",
                "pareto_count", "bitwise_identical",
                # Reliability screen: the evaluated fraction is a deterministic
                # function of the per-point stress bounds, so it may not drift.
                "screen_evaluated_fraction")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline")
    parser.add_argument("current")
    parser.add_argument("--max-slowdown", type=float, default=1.25,
                        help="per-case slowdown factor tolerated on top of the machine scale")
    parser.add_argument("--abs-floor", type=float, default=0.05,
                        help="seconds of absolute excess a slowdown must clear to count")
    parser.add_argument("--value-tolerance", type=float, default=0.02,
                        help="relative drift tolerated on physics outputs")
    parser.add_argument("--max-scale", type=float, default=4.0,
                        help="largest machine-speed ratio the normalization may absorb; a "
                             "median timing ratio beyond this fails outright")
    parser.add_argument("--max-trace-overhead", type=float, default=1.05,
                        help="largest instrumented/disabled wall-time ratio tolerated on "
                             "cases that report trace_overhead_ratio")
    parser.add_argument("--max-telemetry-overhead", type=float, default=1.05,
                        help="largest fully-enabled/disabled wall-time ratio tolerated on "
                             "cases that report telemetry_overhead_ratio (tracing + "
                             "flight recorder + per-query attribution all on)")
    args = parser.parse_args()

    baseline = load_cases(args.baseline)
    current = load_cases(args.current)

    missing = sorted(set(baseline) - set(current), key=str)
    failures = []
    if missing:
        failures.append(f"cases missing from the current run: {missing}")

    # Machine scale: median of all timing ratios over non-trivial baselines.
    pairs = []  # (key, metric, base, new)
    for key, base_case in baseline.items():
        if key not in current:
            continue
        for metric, base in base_case.items():
            if not metric.endswith("_seconds") or not isinstance(base, (int, float)):
                continue
            new = current[key].get(metric)
            if isinstance(new, (int, float)):
                pairs.append((key, metric, float(base), float(new)))
    ratios = [new / base for _, _, base, new in pairs if base >= args.abs_floor]
    scale = statistics.median(ratios) if ratios else 1.0
    print(f"machine scale (median timing ratio): {scale:.3f} over {len(ratios)} metrics")
    if scale > args.max_scale:
        failures.append(
            f"median timing ratio {scale:.2f} exceeds --max-scale {args.max_scale:.2f}: "
            "either the runner is drastically slower than the baseline machine or "
            "everything regressed uniformly")
        scale = args.max_scale

    for key, metric, base, new in pairs:
        budget = base * scale * args.max_slowdown
        status = "ok"
        if new > budget and new - base * scale > args.abs_floor:
            status = "REGRESSION"
            failures.append(
                f"{key} {metric}: {new:.3f}s vs baseline {base:.3f}s "
                f"(budget {budget:.3f}s at scale {scale:.2f})")
        print(f"  {key} {metric}: base {base:.3f}s new {new:.3f}s "
              f"budget {budget:.3f}s [{status}]")

    for key, base_case in baseline.items():
        if key not in current:
            continue
        for field in VALUE_FIELDS:
            base = base_case.get(field)
            new = current[key].get(field)
            if not isinstance(base, (int, float)) or not isinstance(new, (int, float)):
                continue
            if field.endswith("_per_second"):
                # Inverted throughput budget: queries/second may not fall
                # below the baseline floor. A slower machine (scale > 1)
                # lowers the floor by the same factor the timing budgets rise.
                floor = base / (scale * args.max_slowdown)
                status = "ok"
                if new < floor:
                    status = "REGRESSION"
                    failures.append(
                        f"{key} {field}: {new:.3f}/s below throughput floor "
                        f"{floor:.3f}/s (baseline {base:.3f}/s at scale {scale:.2f})")
                print(f"  {key} {field} (throughput): base {base:.3f}/s new {new:.3f}/s "
                      f"floor {floor:.3f}/s [{status}]")
                continue
            if field.endswith("_seconds"):
                # Strict timing tripwire: the scale-normalized budget applies
                # with no absolute floor, unlike the generic timing loop above.
                budget = base * scale * args.max_slowdown
                status = "ok"
                if new > budget:
                    status = "REGRESSION"
                    failures.append(
                        f"{key} {field}: {new:.3f}s exceeds strict budget "
                        f"{budget:.3f}s (baseline {base:.3f}s at scale {scale:.2f})")
                print(f"  {key} {field} (strict): base {base:.3f}s new {new:.3f}s "
                      f"budget {budget:.3f}s [{status}]")
                continue
            denom = max(abs(base), 1e-12)
            drift = abs(new - base) / denom
            if drift > args.value_tolerance:
                failures.append(
                    f"{key} {field}: {new:.6g} drifted {100 * drift:.2f}% from "
                    f"baseline {base:.6g}")

    # Tracing-overhead gate: absolute on the current run (both states ran on
    # this machine, so no scale normalization is needed). The abs-floor guard
    # keeps millisecond-scale cases from tripping it on scheduler noise.
    for key, case in sorted(current.items(), key=str):
        ratio = case.get("trace_overhead_ratio")
        if not isinstance(ratio, (int, float)):
            continue
        excess = float(case.get("enabled_seconds", 0.0)) - float(case.get("disabled_seconds", 0.0))
        print(f"  {key} trace overhead: ratio {ratio:.3f} "
              f"(excess {excess:.3f}s, limit {args.max_trace_overhead:.2f})")
        if ratio > args.max_trace_overhead and excess > args.abs_floor:
            failures.append(
                f"{key} trace_overhead_ratio {ratio:.3f} exceeds "
                f"--max-trace-overhead {args.max_trace_overhead:.2f} "
                f"({excess:.3f}s of instrumented excess)")

    # Telemetry-overhead gate: same shape as the trace gate, for cases that
    # run with the full query-scoped telemetry stack enabled (span tracing,
    # flight recorder, attribution sinks, event log).
    for key, case in sorted(current.items(), key=str):
        ratio = case.get("telemetry_overhead_ratio")
        if not isinstance(ratio, (int, float)):
            continue
        excess = (float(case.get("telemetry_enabled_seconds", 0.0)) -
                  float(case.get("telemetry_disabled_seconds", 0.0)))
        print(f"  {key} telemetry overhead: ratio {ratio:.3f} "
              f"(excess {excess:.3f}s, limit {args.max_telemetry_overhead:.2f})")
        if ratio > args.max_telemetry_overhead and excess > args.abs_floor:
            failures.append(
                f"{key} telemetry_overhead_ratio {ratio:.3f} exceeds "
                f"--max-telemetry-overhead {args.max_telemetry_overhead:.2f} "
                f"({excess:.3f}s of fully-enabled excess)")

    if failures:
        print("\nbench gate FAILED:")
        for f in failures:
            print(f"  - {f}")
        return 1
    print("\nbench gate passed.")
    return 0


if __name__ == "__main__":
    sys.exit(main())
