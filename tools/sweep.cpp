// sweep — run a declarative scenario-sweep config through the cached,
// thread-pooled query service and emit a lifetime/stress Pareto table.
//
//   ./sweep --config specs.txt --out pareto.json [--threads N] [--no-cache]
//           [--cache-dir DIR] [--deadline-seconds S] [--max-failures N]
//
// The config file is the ScenarioSpec `key = value` format (see README's
// "Sweep" section): an optional [defaults] section followed by one [name]
// section per scenario. Results print as a table (Pareto-optimal rows
// starred) and, with --out, land in a JSON file for plotting.

#include <cstdio>
#include <fstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/sim_error.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"
#include "obs/obs_cli.hpp"
#include "obs/query_scope.hpp"
#include "obs/trace.hpp"
#include "sweep/scenario_spec.hpp"
#include "sweep/sweep_engine.hpp"
#include "util/cli.hpp"
#include "util/json.hpp"

namespace {

/// One flat JSON object from a row's attributed telemetry. Counts and
/// durations share the namespace (keys are disjoint by construction).
ms::util::JsonObject telemetry_json(const ms::obs::QueryTelemetry& telemetry) {
  ms::util::JsonObject o;
  for (const auto& [key, value] : telemetry.counts) o.set(key, value);
  for (const auto& [key, value] : telemetry.seconds) o.set(key, value);
  return o;
}

void print_percentile_footer(const char* label, const char* metric) {
  const ms::obs::Histogram* h = ms::obs::MetricRegistry::global().find_histogram(metric);
  if (h == nullptr || h->count() <= 0) return;
  std::printf("%s p50/p95/p99: %.3f / %.3f / %.3f s (max %.3f s over %lld samples)\n", label,
              h->percentile(0.50), h->percentile(0.95), h->percentile(0.99), h->max(),
              static_cast<long long>(h->count()));
}

}  // namespace

int main(int argc, char** argv) {
  ms::util::CliParser cli("sweep", "Scenario sweep: declarative specs -> Pareto table");
  cli.add_string("config", "", "scenario spec file (required)");
  cli.add_string("out", "", "JSON output path (empty skips)");
  cli.add_int("threads", 0, "worker threads (0 = hardware concurrency)");
  cli.add_flag("no-cache", "disable factorization/model sharing (cold per-spec runs)");
  cli.add_string("cache-dir", "", "on-disk ROM model cache directory");
  cli.add_double("deadline-seconds", 0.0, "per-scenario wall-clock deadline (0 = none)");
  cli.add_int("max-failures", -1,
              "cancel the batch after this many scenario failures (-1 = unlimited)");
  ms::obs::add_cli_flags(cli);
  cli.parse(argc, argv);
  ms::obs::apply_cli_flags(cli);

  const std::string config_path = cli.get_string("config");
  if (config_path.empty()) {
    std::fprintf(stderr, "sweep: --config is required\n%s", cli.usage().c_str());
    return 2;
  }

  std::vector<ms::sweep::ScenarioSpec> specs;
  try {
    specs = ms::sweep::parse_scenario_file(config_path);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "sweep: %s\n", e.what());
    return 1;
  }
  if (specs.empty()) {
    std::fprintf(stderr, "sweep: %s defines no scenarios\n", config_path.c_str());
    return 1;
  }

  ms::sweep::SweepOptions options;
  options.num_threads = static_cast<int>(cli.get_int("threads"));
  options.share_caches = !cli.flag("no-cache");
  options.cache_dir = cli.get_string("cache-dir");
  options.deadline_seconds = cli.get_double("deadline-seconds");
  options.max_failures = static_cast<int>(cli.get_int("max-failures"));
  ms::sweep::SweepEngine engine(options);
  ms::sweep::SweepStats stats;
  std::vector<ms::sweep::ScenarioResult> results;
  try {
    // The batch span parents every worker's sweep.query span (captured at
    // enqueue time), so a traced run renders flow arrows from this slice.
    ms::obs::ScopedSpan batch("sweep.batch");
    results = engine.run(specs, &stats);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "sweep: %s\n", e.what());
    return 1;
  }

  std::printf("%-20s %-8s %-9s %-9s %12s %14s %10s %8s\n", "scenario", "kind", "analysis",
              "status", "peak_vm[MPa]", "life[log10]", "time[s]", "pareto");
  for (const ms::sweep::ScenarioResult& r : results) {
    if (r.failed()) {
      std::printf("%-20s %-8s %-9s %-9s   [%s] %s: %s\n", r.name.c_str(),
                  ms::sweep::to_string(r.kind), ms::sweep::to_string(r.analysis),
                  ms::sweep::to_string(r.status), ms::core::to_string(r.error.code),
                  r.error.stage.c_str(), r.error.message.c_str());
      continue;
    }
    char life[32];
    if (r.min_life_log10 == r.min_life_log10) {
      std::snprintf(life, sizeof life, "%.3f", r.min_life_log10);
    } else {
      std::snprintf(life, sizeof life, "-");
    }
    std::printf("%-20s %-8s %-9s %-9s %12.2f %14s %10.3f %8s\n", r.name.c_str(),
                ms::sweep::to_string(r.kind), ms::sweep::to_string(r.analysis),
                ms::sweep::to_string(r.status), r.peak_von_mises, life, r.simulate_seconds,
                r.pareto_optimal ? "*" : "");
  }
  std::printf("\n%d scenarios (%d failed, %d degraded) in %.3f s; "
              "factor cache %llu hit / %llu miss, "
              "model cache %llu hit / %llu miss\n",
              stats.num_scenarios, stats.num_failed, stats.num_degraded, stats.wall_seconds,
              static_cast<unsigned long long>(stats.factor_cache_hits),
              static_cast<unsigned long long>(stats.factor_cache_misses),
              static_cast<unsigned long long>(stats.model_cache_hits),
              static_cast<unsigned long long>(stats.model_cache_misses));
  print_percentile_footer("scenario latency", "sweep.scenario_seconds");
  print_percentile_footer("queue wait", "sweep.queue_wait_seconds");

  const std::string out_path = cli.get_string("out");
  if (!out_path.empty()) {
    std::ofstream out(out_path);
    if (!out) {
      std::fprintf(stderr, "sweep: cannot write %s\n", out_path.c_str());
      return 1;
    }
    out << "{\n  \"sweep\": "
        << ms::util::JsonObject()
               .set("config", config_path)
               .set("num_scenarios", stats.num_scenarios)
               .set("wall_seconds", stats.wall_seconds)
               .set("factor_cache_hits", static_cast<std::int64_t>(stats.factor_cache_hits))
               .set("factor_cache_misses", static_cast<std::int64_t>(stats.factor_cache_misses))
               .set("model_cache_hits", static_cast<std::int64_t>(stats.model_cache_hits))
               .set("model_cache_misses", static_cast<std::int64_t>(stats.model_cache_misses))
               .set("num_failed", static_cast<std::int64_t>(stats.num_failed))
               .set("num_degraded", static_cast<std::int64_t>(stats.num_degraded))
               .render()
        << ",\n  \"scenarios\": [\n";
    for (std::size_t i = 0; i < results.size(); ++i) {
      const ms::sweep::ScenarioResult& r = results[i];
      ms::util::JsonObject record;
      record.set("name", r.name)
          .set("kind", ms::sweep::to_string(r.kind))
          .set("analysis", ms::sweep::to_string(r.analysis))
          .set("status", ms::sweep::to_string(r.status));
      if (r.failed()) {
        record.set("error_code", ms::core::to_string(r.error.code))
            .set("error_stage", r.error.stage)
            .set("error_message", r.error.message);
        if (!r.telemetry.empty()) record.set_object("telemetry", telemetry_json(r.telemetry));
        if (!r.flight.empty()) {
          record.set_strings("flight_recorder", ms::obs::format_flight_records(r.flight));
        }
        out << "    " << record.render() << (i + 1 < results.size() ? ",\n" : "\n");
        continue;
      }
      record.set("peak_von_mises", r.peak_von_mises);
      if (r.min_life_log10 == r.min_life_log10) {
        record.set("min_life_log10", r.min_life_log10)
            .set("min_life_seconds", r.min_life_seconds)
            .set("life_channel", r.life_channel);
      }
      if (r.diagonal_shift != 0.0) record.set("diagonal_shift", r.diagonal_shift);
      record.set("simulate_seconds", r.simulate_seconds).set("pareto_optimal", r.pareto_optimal);
      if (!r.telemetry.empty()) record.set_object("telemetry", telemetry_json(r.telemetry));
      if (!r.flight.empty()) {
        record.set_strings("flight_recorder", ms::obs::format_flight_records(r.flight));
      }
      out << "    " << record.render() << (i + 1 < results.size() ? ",\n" : "\n");
    }
    out << "  ]\n}\n";
    std::printf("wrote %s\n", out_path.c_str());
  }
  ms::obs::write_cli_outputs(cli);
  // Partial failure still yields a useful table; only a fully failed batch
  // (nothing to plot) is a hard error.
  return stats.num_failed == stats.num_scenarios ? 1 : 0;
}
