// Reproduces Table 1 of the paper: standalone TSV arrays (scenario 1,
// Fig. 5(a)) at p = 15 um and p = 10 um, comparing the full fine-mesh FEM
// reference (ANSYS substitute), the linear superposition baseline, and
// MORE-Stress in computational time, memory, and normalized von Mises MAE.
//
// Defaults are bench-scale (sizes 6/10/14, coarser fine mesh) so the whole
// suite finishes in minutes on one core; --sizes and --paper-scale restore
// larger sweeps. Absolute numbers differ from the paper (different machine,
// mesh, and substrate); the comparison *shape* is the reproduction target.

#include <cstdio>

#include "common.hpp"
#include "obs/obs_cli.hpp"

int main(int argc, char** argv) {
  ms::util::CliParser cli("table1_arrays", "Paper Table 1: standalone TSV array sweep");
  ms::bench::add_common_flags(cli);
  cli.add_string("sizes", "8,12,16", "comma-separated array edge lengths");
  cli.add_string("pitches", "15,10", "comma-separated pitches in um");
  cli.parse(argc, argv);

  const std::vector<int> sizes = ms::bench::parse_int_list(cli.get_string("sizes"));
  const std::vector<int> pitches = ms::bench::parse_int_list(cli.get_string("pitches"));

  std::printf("=== Table 1: thermal stress of standalone TSV arrays ===\n");
  std::printf("geometry: d=5 um, t=0.5 um, h=50 um, DT=-250 C, (4,4,4) nodes unless --nodes\n\n");

  for (int pitch : pitches) {
    ms::bench::BenchSetup setup = ms::bench::default_setup(pitch);
    ms::bench::apply_common_flags(cli, setup);

    ms::core::MoreStressSimulator simulator(setup.config);
    const double local_seconds = simulator.prepare_local_stage(false);

    ms::baseline::SuperpositionModel::BuildOptions sp_options;
    sp_options.window_blocks = setup.superposition_window;
    sp_options.samples_per_block = setup.config.local.samples_per_block;
    sp_options.thermal_load = setup.config.thermal_load;
    sp_options.fem = setup.reference_fem;
    const auto superposition = ms::baseline::SuperpositionModel::build(
        setup.config.geometry, setup.config.mesh_spec, setup.config.materials, sp_options);

    std::printf("one-shot costs at p=%d um: local stage %.1f s, superposition build %.1f s\n\n",
                pitch, local_seconds, superposition.build_seconds());

    std::vector<ms::bench::ArrayCaseResult> results;
    for (int size : sizes) {
      results.push_back(ms::bench::run_array_case(setup, simulator, superposition, size));
      std::fflush(stdout);
    }
    ms::bench::print_table1_block(pitch, results, setup.run_reference);
  }
  std::printf("peak RSS: %s\n", ms::util::format_bytes(ms::util::peak_rss_bytes()).c_str());
  ms::obs::write_cli_outputs(cli);
  return 0;
}
