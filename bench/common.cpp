#include "common.hpp"

#include <cstdio>
#include <stdexcept>

#include "obs/obs_cli.hpp"
#include "util/log.hpp"
#include "util/memory.hpp"
#include "util/timer.hpp"

namespace ms::bench {

BenchSetup default_setup(double pitch) {
  BenchSetup setup;
  setup.config = core::SimulationConfig::paper_default();
  setup.config.geometry.pitch = pitch;
  setup.config.mesh_spec = {8, 6};
  setup.config.local.samples_per_block = 50;
  // Stress fields are what the tables compare; skip per-basis displacement
  // samples to keep the ROM-model memory an honest minimum.
  setup.config.local.sample_displacements = false;
  setup.reference_fem.method = "cg";
  setup.reference_fem.precond = "ssor";
  setup.reference_fem.rel_tol = 1e-7;
  return setup;
}

void add_common_flags(util::CliParser& cli) {
  cli.add_int("nodes", 4, "Lagrange interpolation nodes per axis");
  cli.add_int("mesh-xy", 8, "target fine-mesh elements across the pitch");
  cli.add_int("mesh-z", 6, "fine-mesh elements through the height");
  cli.add_int("samples", 50, "plane samples per block (paper: 100)");
  cli.add_flag("no-reference", "skip the full-FEM reference (fast smoke run)");
  cli.add_flag("paper-scale", "paper-scale mesh (12,9) and 100 samples");
  cli.add_string("log", "warn", "log level: trace..off");
  obs::add_cli_flags(cli);
}

void apply_common_flags(const util::CliParser& cli, BenchSetup& setup) {
  util::set_log_level(util::parse_log_level(cli.get_string("log")));
  obs::apply_cli_flags(cli);  // MS_LOG_LEVEL env override wins over --log
  setup.config.local.nodes_x = setup.config.local.nodes_y = setup.config.local.nodes_z =
      static_cast<int>(cli.get_int("nodes"));
  setup.config.mesh_spec.elems_xy = static_cast<int>(cli.get_int("mesh-xy"));
  setup.config.mesh_spec.elems_z = static_cast<int>(cli.get_int("mesh-z"));
  setup.config.local.samples_per_block = static_cast<int>(cli.get_int("samples"));
  if (cli.flag("paper-scale")) {
    setup.config.mesh_spec = {12, 9};
    setup.config.local.samples_per_block = 100;
  }
  setup.run_reference = !cli.flag("no-reference");
}

ArrayCaseResult run_array_case(const BenchSetup& setup, core::MoreStressSimulator& simulator,
                               const baseline::SuperpositionModel& superposition, int array_edge) {
  ArrayCaseResult result;
  result.array_edge = array_edge;

  // --- MORE-Stress (global stage only, like the paper's reported time) ----
  (void)simulator.prepare_local_stage(false);
  core::ArrayResult rom = simulator.simulate_array(array_edge, array_edge);
  result.rom_seconds = rom.stats.global_seconds();
  result.rom_bytes = rom.stats.memory_bytes;
  result.local_stage_seconds = rom.stats.local_stage_seconds;

  // --- linear superposition -------------------------------------------------
  util::WallTimer timer;
  const auto sp_stress = superposition.estimate_array(array_edge, array_edge);
  const auto sp_vm = fem::to_von_mises(sp_stress);
  result.superposition_seconds = timer.seconds();
  result.superposition_bytes =
      superposition.memory_bytes() + sp_stress.size() * sizeof(fem::Stress6);

  // --- reference (ANSYS substitute) ----------------------------------------
  if (setup.run_reference) {
    const core::ReferenceResult ref =
        core::reference_array(simulator.config(), array_edge, array_edge, setup.reference_fem);
    result.reference_available = true;
    result.reference_seconds = ref.stats.total_seconds();
    result.reference_bytes = ref.stats.total_bytes();
    result.reference_dofs = ref.stats.num_dofs;
    result.rom_error = core::field_error(ref, rom.von_mises);
    result.superposition_error = core::field_error(ref, sp_vm);
  }
  return result;
}

void print_table1_block(double pitch, const std::vector<ArrayCaseResult>& results,
                        bool reference_available) {
  std::printf("p = %.0f um\n", pitch);
  std::vector<std::string> header{"method", "metric"};
  for (const auto& r : results) {
    header.push_back(util::strf("%dx%d", r.array_edge, r.array_edge));
  }
  util::TextTable table(header);

  auto row = [&](const std::string& method, const std::string& metric, auto cell_of) {
    std::vector<std::string> cells{method, metric};
    for (const auto& r : results) cells.push_back(cell_of(r));
    table.add_row(std::move(cells));
  };

  if (reference_available) {
    row("FEM reference", "time", [](const ArrayCaseResult& r) {
      return util::format_seconds(r.reference_seconds);
    });
    row("(ANSYS subst.)", "memory", [](const ArrayCaseResult& r) {
      return util::format_bytes(r.reference_bytes);
    });
  }
  row("Linear", "time", [](const ArrayCaseResult& r) {
    return util::format_seconds(r.superposition_seconds);
  });
  row("superposition", "memory", [](const ArrayCaseResult& r) {
    return util::format_bytes(r.superposition_bytes);
  });
  if (reference_available) {
    row("", "error", [](const ArrayCaseResult& r) {
      return util::percent_cell(r.superposition_error);
    });
  }
  row("MORE-Stress", "time", [](const ArrayCaseResult& r) {
    return util::format_seconds(r.rom_seconds);
  });
  row("(ours)", "memory", [](const ArrayCaseResult& r) {
    return util::format_bytes(r.rom_bytes);
  });
  if (reference_available) {
    row("", "error", [](const ArrayCaseResult& r) { return util::percent_cell(r.rom_error); });
    row("improvement", "time", [](const ArrayCaseResult& r) {
      return util::ratio_cell(r.reference_seconds, r.rom_seconds);
    });
    row("over reference", "memory", [](const ArrayCaseResult& r) {
      return util::ratio_cell(static_cast<double>(r.reference_bytes),
                              static_cast<double>(r.rom_bytes));
    });
    row("improvement over", "accuracy", [](const ArrayCaseResult& r) {
      return util::ratio_cell(r.superposition_error, r.rom_error);
    });
  }
  std::fputs(table.render().c_str(), stdout);
  std::fputs("\n", stdout);
}

std::vector<int> parse_int_list(const std::string& text) {
  std::vector<int> out;
  std::size_t pos = 0;
  while (pos < text.size()) {
    const std::size_t comma = text.find(',', pos);
    const std::string token = text.substr(pos, comma == std::string::npos ? comma : comma - pos);
    if (!token.empty()) out.push_back(std::stoi(token));
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  if (out.empty()) throw std::invalid_argument("expected a comma-separated integer list");
  return out;
}

}  // namespace ms::bench
