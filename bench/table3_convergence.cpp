// Reproduces Table 3 and Fig. 6 of the paper: convergence of MORE-Stress
// with the number of Lagrange interpolation nodes (nx,ny,nz) = (2,2,2) ..
// (6,6,6) on a standalone TSV array at p = 15 um. Prints the table rows
// (element DoFs n, one-shot local-stage runtime, global-stage runtime,
// normalized error) and the Fig. 6 series (n, error%, runtime).

#include <cstdio>

#include "common.hpp"
#include "obs/obs_cli.hpp"

int main(int argc, char** argv) {
  ms::util::CliParser cli("table3_convergence", "Paper Table 3 / Fig. 6: node-count convergence");
  ms::bench::add_common_flags(cli);
  cli.add_int("array", 10, "array edge length (paper: 20)");
  cli.add_int("max-nodes", 6, "largest (n,n,n) node count");
  cli.parse(argc, argv);

  const int array = static_cast<int>(cli.get_int("array"));
  const int max_nodes = static_cast<int>(cli.get_int("max-nodes"));

  ms::bench::BenchSetup setup = ms::bench::default_setup(15.0);
  ms::bench::apply_common_flags(cli, setup);

  std::printf("=== Table 3 / Fig. 6: convergence on a %dx%d array, p=15 um ===\n\n", array, array);

  // One reference solve shared by all rows.
  std::optional<ms::core::ReferenceResult> reference;
  if (setup.run_reference) {
    reference = ms::core::reference_array(setup.config, array, array, setup.reference_fem);
    std::printf("reference FEM: %s (%d dofs, %d iterations)\n\n",
                ms::util::format_seconds(reference->stats.total_seconds()).c_str(),
                static_cast<int>(reference->stats.num_dofs),
                static_cast<int>(reference->stats.iterations));
  }

  struct Row {
    int nodes;
    ms::la::idx_t n;
    double local_seconds;
    double global_seconds;
    double error;
  };
  std::vector<Row> rows;

  for (int nodes = 2; nodes <= max_nodes; ++nodes) {
    ms::bench::BenchSetup case_setup = setup;
    case_setup.config.local.nodes_x = case_setup.config.local.nodes_y =
        case_setup.config.local.nodes_z = nodes;
    ms::core::MoreStressSimulator simulator(case_setup.config);
    const double local_seconds = simulator.prepare_local_stage(false);
    const ms::core::ArrayResult result = simulator.simulate_array(array, array);
    Row row{nodes, simulator.tsv_model().num_element_dofs(), local_seconds,
            result.stats.global_seconds(), 0.0};
    if (reference.has_value()) row.error = ms::core::field_error(*reference, result.von_mises);
    rows.push_back(row);
    std::fflush(stdout);
  }

  std::vector<std::string> header{"(nx,ny,nz)"};
  for (const Row& r : rows) header.push_back(ms::util::strf("(%d,%d,%d)", r.nodes, r.nodes, r.nodes));
  ms::util::TextTable table(header);
  auto add_row = [&](const std::string& name, auto cell_of) {
    std::vector<std::string> cells{name};
    for (const Row& r : rows) cells.push_back(cell_of(r));
    table.add_row(std::move(cells));
  };
  add_row("n (element DoFs)", [](const Row& r) { return ms::util::strf("%d", static_cast<int>(r.n)); });
  add_row("local stage runtime", [](const Row& r) { return ms::util::format_seconds(r.local_seconds); });
  add_row("global stage runtime", [](const Row& r) { return ms::util::format_seconds(r.global_seconds); });
  if (reference.has_value()) {
    add_row("error", [](const Row& r) { return ms::util::percent_cell(r.error); });
  }
  std::fputs(table.render().c_str(), stdout);

  // Fig. 6 series: error (log axis in the paper) and runtime against n.
  std::printf("\nFig. 6 series (n, error%%, global runtime s):\n");
  for (const Row& r : rows) {
    std::printf("  n=%-4d error=%-8.3f runtime=%.3f\n", static_cast<int>(r.n), 100.0 * r.error,
                r.global_seconds);
  }

  // The paper's qualitative claim: error decreases monotonically with n.
  bool monotone = true;
  for (std::size_t i = 1; i < rows.size(); ++i) monotone = monotone && rows[i].error < rows[i - 1].error;
  if (reference.has_value()) {
    std::printf("\nerror monotonically decreasing with n: %s\n", monotone ? "yes" : "NO");
  }
  ms::obs::write_cli_outputs(cli);
  return 0;
}
