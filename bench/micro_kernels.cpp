// Micro-benchmarks (google-benchmark) of the kernels the two stages spend
// their time in: CSR matvec, sparse Cholesky factor+solve (RCM vs AMD,
// simplicial vs supernodal, single-RHS vs panel), CG iterations, hex8
// element integration, FEM assembly, and the local-stage / global-stage
// building blocks at unit-block scale.
//
// Besides the google-benchmark cases, `--solver-json PATH` runs a fixed
// solver-comparison suite (block + package matrices) with wall timers and
// emits a bench_gate-compatible BENCH_solver.json, so the direct-solver
// stack is covered by the CI regression gate:
//
//   ./bench_micro_kernels --benchmark_filter='^$' --solver-json BENCH_solver.json

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "chiplet/package_model.hpp"
#include "fem/assembler.hpp"
#include "fem/dirichlet.hpp"
#include "fem/hex8.hpp"
#include "la/cg.hpp"
#include "la/cholesky.hpp"
#include "la/ordering.hpp"
#include "mesh/tsv_block.hpp"
#include "rom/local_stage.hpp"
#include "util/json.hpp"
#include "util/timer.hpp"

namespace {

using namespace ms;

const mesh::TsvGeometry kGeometry{15.0, 5.0, 0.5, 50.0};
const mesh::BlockMeshSpec kSpec{8, 6};

const fem::MaterialTable& materials() {
  static const fem::MaterialTable table = fem::MaterialTable::standard();
  return table;
}

const fem::AssembledSystem& block_system() {
  static const fem::AssembledSystem sys = [] {
    const mesh::HexMesh block = mesh::build_tsv_block_mesh(kGeometry, kSpec);
    return fem::assemble_system(block, materials());
  }();
  return sys;
}

/// Interior (free-dof) block stiffness: what the local stage factors.
const la::CsrMatrix& block_matrix() {
  static const la::CsrMatrix a = [] {
    const auto& sys = block_system();
    const mesh::HexMesh block = mesh::build_tsv_block_mesh(kGeometry, kSpec);
    std::vector<la::idx_t> bc_dofs;
    for (la::idx_t node : block.boundary_nodes()) {
      for (int c = 0; c < 3; ++c) bc_dofs.push_back(3 * node + c);
    }
    const fem::DofPartition part = fem::partition_dofs(sys.num_dofs, bc_dofs);
    return sys.stiffness.submatrix(part.free_map, part.num_free, part.free_map, part.num_free);
  }();
  return a;
}

/// Clamped coarse package stiffness: the scenario-2 direct solve at the
/// demo bench size (the matrix behind package_solve_seconds).
const la::CsrMatrix& package_matrix() {
  static const la::CsrMatrix a = [] {
    const chiplet::PackageGeometry geom = chiplet::demo_package_geometry(kGeometry.pitch, 6,
                                                                         kGeometry.height);
    const mesh::HexMesh mesh =
        chiplet::build_package_coarse_mesh(geom, chiplet::demo_coarse_spec());
    fem::AssembledSystem sys = fem::assemble_system(mesh, chiplet::package_materials());
    std::vector<la::idx_t> bottom;
    for (la::idx_t id = 0; id < mesh.nodes_x() * mesh.nodes_y(); ++id) bottom.push_back(id);
    la::Vec rhs(sys.num_dofs, 0.0);
    fem::apply_dirichlet(sys.stiffness, rhs, fem::DirichletBc::clamp_nodes(bottom));
    return sys.stiffness;
  }();
  return a;
}

la::SparseCholesky::Options solver_options(la::SparseCholesky::Ordering ordering,
                                           la::SparseCholesky::Method method) {
  la::SparseCholesky::Options o;
  o.ordering = ordering;
  o.method = method;
  return o;
}

void BM_Hex8Stiffness(benchmark::State& state) {
  const fem::Material mat = fem::silicon();
  for (auto _ : state) {
    benchmark::DoNotOptimize(fem::hex8_stiffness(mat, 1.2, 1.4, 5.0));
  }
}
BENCHMARK(BM_Hex8Stiffness);

void BM_Hex8ThermalLoad(benchmark::State& state) {
  const fem::Material mat = fem::copper();
  for (auto _ : state) {
    benchmark::DoNotOptimize(fem::hex8_thermal_load(mat, 1.2, 1.4, 5.0));
  }
}
BENCHMARK(BM_Hex8ThermalLoad);

void BM_AssembleTsvBlock(benchmark::State& state) {
  const mesh::HexMesh block = mesh::build_tsv_block_mesh(kGeometry, kSpec);
  for (auto _ : state) {
    benchmark::DoNotOptimize(fem::assemble_system(block, materials()));
  }
  state.SetItemsProcessed(state.iterations() * block.num_elems());
}
BENCHMARK(BM_AssembleTsvBlock);

void BM_CsrMatvec(benchmark::State& state) {
  const auto& sys = block_system();
  la::Vec x(sys.num_dofs, 1.0), y;
  for (auto _ : state) {
    sys.stiffness.mul(x, y);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(sys.stiffness.nnz()) *
                          (sizeof(double) + sizeof(la::idx_t)));
}
BENCHMARK(BM_CsrMatvec);

void BM_RcmOrdering(benchmark::State& state) {
  const la::CsrMatrix& a = block_matrix();
  for (auto _ : state) {
    benchmark::DoNotOptimize(la::reverse_cuthill_mckee(a).perm.data());
  }
}
BENCHMARK(BM_RcmOrdering);

void BM_AmdOrdering(benchmark::State& state) {
  const la::CsrMatrix& a = block_matrix();
  for (auto _ : state) {
    benchmark::DoNotOptimize(la::amd_ordering(a).perm.data());
  }
}
BENCHMARK(BM_AmdOrdering);

/// Factorization back-end comparison on the local-stage block matrix.
/// Arg 0: 0 = RCM + simplicial (the historical default), 1 = AMD +
/// simplicial, 2 = AMD + supernodal (the new default).
void BM_SparseCholeskyFactor(benchmark::State& state) {
  const la::CsrMatrix& a = block_matrix();
  la::SparseCholesky::Options options;
  switch (state.range(0)) {
    case 0: options = solver_options(la::SparseCholesky::Ordering::kRcm,
                                     la::SparseCholesky::Method::kSimplicial);
      break;
    case 1: options = solver_options(la::SparseCholesky::Ordering::kAmd,
                                     la::SparseCholesky::Method::kSimplicial);
      break;
    default: options = solver_options(la::SparseCholesky::Ordering::kAmd,
                                      la::SparseCholesky::Method::kSupernodal);
      break;
  }
  for (auto _ : state) {
    la::SparseCholesky chol(a, options);
    benchmark::DoNotOptimize(chol.factor_nnz());
  }
}
BENCHMARK(BM_SparseCholeskyFactor)->Arg(0)->Arg(1)->Arg(2);

/// Triangular solves on the factored block matrix. Arg 0 as above; arg 1 is
/// the RHS panel width (1 = the classic one-at-a-time path). Reported time
/// is per panel, so divide by the width for per-RHS cost.
void BM_SparseCholeskySolve(benchmark::State& state) {
  const la::CsrMatrix& a = block_matrix();
  la::SparseCholesky::Options options =
      state.range(0) == 0 ? solver_options(la::SparseCholesky::Ordering::kRcm,
                                           la::SparseCholesky::Method::kSimplicial)
                          : solver_options(la::SparseCholesky::Ordering::kAmd,
                                           la::SparseCholesky::Method::kSupernodal);
  const la::SparseCholesky chol(a, options);
  const la::idx_t nrhs = static_cast<la::idx_t>(state.range(1));
  la::Vec b(static_cast<std::size_t>(a.rows()) * nrhs, 1.0);
  la::Vec x(b.size());
  for (auto _ : state) {
    chol.solve_multi(b.data(), x.data(), nrhs);
    benchmark::DoNotOptimize(x.data());
  }
  state.SetItemsProcessed(state.iterations() * nrhs);
}
BENCHMARK(BM_SparseCholeskySolve)->Args({0, 1})->Args({2, 1})->Args({2, 8});

void BM_CgUnitBlock(benchmark::State& state) {
  // CG with SSOR on the clamped unit block (reference-solver inner loop).
  fem::AssembledSystem sys = [] {
    const mesh::HexMesh block = mesh::build_tsv_block_mesh(kGeometry, kSpec);
    return fem::assemble_system(block, materials());
  }();
  const mesh::HexMesh block = mesh::build_tsv_block_mesh(kGeometry, kSpec);
  la::Vec rhs = sys.thermal_load;
  la::scale(rhs, -250.0);
  fem::apply_dirichlet(sys.stiffness, rhs,
                       fem::DirichletBc::clamp_nodes(block.top_bottom_nodes()));
  const la::SsorPreconditioner precond(sys.stiffness);
  la::IterativeOptions options;
  options.rel_tol = 1e-7;
  for (auto _ : state) {
    la::Vec x;
    const auto result = la::conjugate_gradient(sys.stiffness, rhs, x, &precond, options);
    benchmark::DoNotOptimize(result.iterations);
  }
}
BENCHMARK(BM_CgUnitBlock);

void BM_LocalStage(benchmark::State& state) {
  // The full one-shot local stage at (n,n,n) nodes; arg is n.
  rom::LocalStageOptions options;
  options.nodes_x = options.nodes_y = options.nodes_z = static_cast<int>(state.range(0));
  options.samples_per_block = 20;
  options.sample_displacements = false;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        rom::run_local_stage(kGeometry, kSpec, materials(), rom::BlockKind::Tsv, options));
  }
}
BENCHMARK(BM_LocalStage)->Arg(2)->Arg(3)->Arg(4)->Unit(benchmark::kMillisecond);

// --- bench_gate solver suite (BENCH_solver.json) ----------------------------

/// Best-of-`reps` wall time of `fn` (minimum is the most repeatable
/// statistic for the gate's machine-scale normalization).
template <typename Fn>
double best_seconds(int reps, Fn&& fn) {
  double best = 1e300;
  for (int r = 0; r < reps; ++r) {
    ms::util::WallTimer timer;
    fn();
    best = std::min(best, timer.seconds());
  }
  return best;
}

/// One matrix's comparison record: the historical default (RCM +
/// simplicial) against the new default (AMD + supernodal), factor and
/// triangular-solve wall times plus nnz(L). Solve times are per RHS.
ms::util::JsonObject solver_case(const char* scenario, const la::CsrMatrix& a, int factor_reps) {
  const auto rcm_si = solver_options(la::SparseCholesky::Ordering::kRcm,
                                     la::SparseCholesky::Method::kSimplicial);
  const auto amd_si = solver_options(la::SparseCholesky::Ordering::kAmd,
                                     la::SparseCholesky::Method::kSimplicial);
  const auto amd_sn = solver_options(la::SparseCholesky::Ordering::kAmd,
                                     la::SparseCholesky::Method::kSupernodal);

  const double rcm_si_factor = best_seconds(factor_reps, [&] {
    la::SparseCholesky chol(a, rcm_si);
    benchmark::DoNotOptimize(chol.factor_nnz());
  });
  const double amd_si_factor = best_seconds(factor_reps, [&] {
    la::SparseCholesky chol(a, amd_si);
    benchmark::DoNotOptimize(chol.factor_nnz());
  });
  const double amd_sn_factor = best_seconds(factor_reps, [&] {
    la::SparseCholesky chol(a, amd_sn);
    benchmark::DoNotOptimize(chol.factor_nnz());
  });

  const la::SparseCholesky baseline(a, rcm_si);
  const la::SparseCholesky tuned(a, amd_sn);
  const la::idx_t n = a.rows();
  la::Vec b1(n, 1.0), x1(n);
  const int solve_reps = 5;
  const double baseline_solve = best_seconds(solve_reps, [&] {
    baseline.solve_multi(b1.data(), x1.data(), 1);
    benchmark::DoNotOptimize(x1.data());
  });
  const double tuned_solve = best_seconds(solve_reps, [&] {
    tuned.solve_multi(b1.data(), x1.data(), 1);
    benchmark::DoNotOptimize(x1.data());
  });
  const la::idx_t panel = 8;
  la::Vec b8(static_cast<std::size_t>(n) * panel, 1.0), x8(b8.size());
  const double tuned_panel = best_seconds(solve_reps, [&] {
    tuned.solve_multi(b8.data(), x8.data(), panel);
    benchmark::DoNotOptimize(x8.data());
  });

  std::printf("%-16s n=%6d nnz(L): rcm %9lld -> amd %9lld (%.2fx)  factor: %8.4fs -> %8.4fs "
              "(%.2fx)  solve/rhs: %.6fs -> %.6fs (panel8 %.6fs)\n",
              scenario, static_cast<int>(n), static_cast<long long>(baseline.factor_nnz()),
              static_cast<long long>(tuned.factor_nnz()),
              static_cast<double>(baseline.factor_nnz()) /
                  static_cast<double>(tuned.factor_nnz()),
              rcm_si_factor, amd_sn_factor, rcm_si_factor / amd_sn_factor, baseline_solve,
              tuned_solve, tuned_panel / panel);

  return ms::util::JsonObject()
      .set("scenario", scenario)
      .set("edge", static_cast<std::int64_t>(n))
      .set("rcm_simplicial_factor_seconds", rcm_si_factor)
      .set("amd_simplicial_factor_seconds", amd_si_factor)
      .set("amd_supernodal_factor_seconds", amd_sn_factor)
      .set("rcm_simplicial_solve_seconds", baseline_solve)
      .set("amd_supernodal_solve_seconds", tuned_solve)
      .set("amd_supernodal_panel8_per_rhs_seconds", tuned_panel / panel)
      .set("rcm_factor_nnz", static_cast<std::int64_t>(baseline.factor_nnz()))
      .set("amd_factor_nnz", static_cast<std::int64_t>(tuned.factor_nnz()))
      .set("amd_fill_ratio", tuned.fill_ratio())
      .set("num_supernodes", static_cast<std::int64_t>(tuned.num_supernodes()));
}

void run_solver_suite(const std::string& json_path) {
  std::printf("=== direct-solver suite (RCM+simplicial vs AMD+supernodal) ===\n");
  std::vector<ms::util::JsonObject> records;
  records.push_back(solver_case("solver_block", block_matrix(), 5));
  records.push_back(solver_case("solver_package", package_matrix(), 3));
  ms::util::write_bench_json(json_path, "solver_micro", records);
  std::printf("wrote %s (%d cases)\n", json_path.c_str(), static_cast<int>(records.size()));
}

}  // namespace

int main(int argc, char** argv) {
  // Strip --solver-json[=PATH] before google-benchmark sees the arguments.
  std::string solver_json;
  std::vector<char*> args;
  for (int i = 0; i < argc; ++i) {
    if (std::strncmp(argv[i], "--solver-json=", 14) == 0) {
      solver_json = argv[i] + 14;
    } else if (std::strcmp(argv[i], "--solver-json") == 0 && i + 1 < argc) {
      solver_json = argv[++i];
    } else {
      args.push_back(argv[i]);
    }
  }
  int bench_argc = static_cast<int>(args.size());
  benchmark::Initialize(&bench_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(bench_argc, args.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  if (!solver_json.empty()) run_solver_suite(solver_json);
  return 0;
}
