// Micro-benchmarks (google-benchmark) of the kernels the two stages spend
// their time in: CSR matvec, sparse Cholesky factor+solve, CG iterations,
// hex8 element integration, FEM assembly, and the local-stage / global-stage
// building blocks at unit-block scale.

#include <benchmark/benchmark.h>

#include "fem/assembler.hpp"
#include "fem/dirichlet.hpp"
#include "fem/hex8.hpp"
#include "la/cg.hpp"
#include "la/cholesky.hpp"
#include "mesh/tsv_block.hpp"
#include "rom/local_stage.hpp"

namespace {

using namespace ms;

const mesh::TsvGeometry kGeometry{15.0, 5.0, 0.5, 50.0};
const mesh::BlockMeshSpec kSpec{8, 6};

const fem::MaterialTable& materials() {
  static const fem::MaterialTable table = fem::MaterialTable::standard();
  return table;
}

const fem::AssembledSystem& block_system() {
  static const fem::AssembledSystem sys = [] {
    const mesh::HexMesh block = mesh::build_tsv_block_mesh(kGeometry, kSpec);
    return fem::assemble_system(block, materials());
  }();
  return sys;
}

void BM_Hex8Stiffness(benchmark::State& state) {
  const fem::Material mat = fem::silicon();
  for (auto _ : state) {
    benchmark::DoNotOptimize(fem::hex8_stiffness(mat, 1.2, 1.4, 5.0));
  }
}
BENCHMARK(BM_Hex8Stiffness);

void BM_Hex8ThermalLoad(benchmark::State& state) {
  const fem::Material mat = fem::copper();
  for (auto _ : state) {
    benchmark::DoNotOptimize(fem::hex8_thermal_load(mat, 1.2, 1.4, 5.0));
  }
}
BENCHMARK(BM_Hex8ThermalLoad);

void BM_AssembleTsvBlock(benchmark::State& state) {
  const mesh::HexMesh block = mesh::build_tsv_block_mesh(kGeometry, kSpec);
  for (auto _ : state) {
    benchmark::DoNotOptimize(fem::assemble_system(block, materials()));
  }
  state.SetItemsProcessed(state.iterations() * block.num_elems());
}
BENCHMARK(BM_AssembleTsvBlock);

void BM_CsrMatvec(benchmark::State& state) {
  const auto& sys = block_system();
  la::Vec x(sys.num_dofs, 1.0), y;
  for (auto _ : state) {
    sys.stiffness.mul(x, y);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(sys.stiffness.nnz()) *
                          (sizeof(double) + sizeof(la::idx_t)));
}
BENCHMARK(BM_CsrMatvec);

void BM_SparseCholeskyFactor(benchmark::State& state) {
  // Factor the interior block of the unit-block system (the local stage's
  // one-time cost).
  const auto& sys = block_system();
  const mesh::HexMesh block = mesh::build_tsv_block_mesh(kGeometry, kSpec);
  std::vector<la::idx_t> bc_dofs;
  for (la::idx_t node : block.boundary_nodes()) {
    for (int c = 0; c < 3; ++c) bc_dofs.push_back(3 * node + c);
  }
  const fem::DofPartition part = fem::partition_dofs(sys.num_dofs, bc_dofs);
  const la::CsrMatrix a_ff =
      sys.stiffness.submatrix(part.free_map, part.num_free, part.free_map, part.num_free);
  for (auto _ : state) {
    la::SparseCholesky chol(a_ff);
    benchmark::DoNotOptimize(chol.factor_nnz());
  }
}
BENCHMARK(BM_SparseCholeskyFactor);

void BM_SparseCholeskySolve(benchmark::State& state) {
  const auto& sys = block_system();
  const mesh::HexMesh block = mesh::build_tsv_block_mesh(kGeometry, kSpec);
  std::vector<la::idx_t> bc_dofs;
  for (la::idx_t node : block.boundary_nodes()) {
    for (int c = 0; c < 3; ++c) bc_dofs.push_back(3 * node + c);
  }
  const fem::DofPartition part = fem::partition_dofs(sys.num_dofs, bc_dofs);
  const la::CsrMatrix a_ff =
      sys.stiffness.submatrix(part.free_map, part.num_free, part.free_map, part.num_free);
  const la::SparseCholesky chol(a_ff);
  la::Vec b(part.num_free, 1.0), x;
  for (auto _ : state) {
    chol.solve_inplace(b, x);
    benchmark::DoNotOptimize(x.data());
  }
}
BENCHMARK(BM_SparseCholeskySolve);

void BM_CgUnitBlock(benchmark::State& state) {
  // CG with SSOR on the clamped unit block (reference-solver inner loop).
  fem::AssembledSystem sys = [] {
    const mesh::HexMesh block = mesh::build_tsv_block_mesh(kGeometry, kSpec);
    return fem::assemble_system(block, materials());
  }();
  const mesh::HexMesh block = mesh::build_tsv_block_mesh(kGeometry, kSpec);
  la::Vec rhs = sys.thermal_load;
  la::scale(rhs, -250.0);
  fem::apply_dirichlet(sys.stiffness, rhs,
                       fem::DirichletBc::clamp_nodes(block.top_bottom_nodes()));
  const la::SsorPreconditioner precond(sys.stiffness);
  la::IterativeOptions options;
  options.rel_tol = 1e-7;
  for (auto _ : state) {
    la::Vec x;
    const auto result = la::conjugate_gradient(sys.stiffness, rhs, x, &precond, options);
    benchmark::DoNotOptimize(result.iterations);
  }
}
BENCHMARK(BM_CgUnitBlock);

void BM_LocalStage(benchmark::State& state) {
  // The full one-shot local stage at (n,n,n) nodes; arg is n.
  rom::LocalStageOptions options;
  options.nodes_x = options.nodes_y = options.nodes_z = static_cast<int>(state.range(0));
  options.samples_per_block = 20;
  options.sample_displacements = false;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        rom::run_local_stage(kGeometry, kSpec, materials(), rom::BlockKind::Tsv, options));
  }
}
BENCHMARK(BM_LocalStage)->Arg(2)->Arg(3)->Arg(4)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
