#pragma once
// Shared machinery for the paper-table benchmark harnesses: a bench-scale
// configuration (smaller fine mesh than the library default so the full
// suite runs in minutes on one core), and the three-method case runner
// (ANSYS-substitute reference / linear superposition / MORE-Stress) whose
// rows the tables print.

#include <optional>
#include <string>
#include <vector>

#include "baseline/superposition.hpp"
#include "core/report.hpp"
#include "core/simulator.hpp"
#include "util/cli.hpp"
#include "util/memory.hpp"
#include "util/table.hpp"

namespace ms::bench {

/// Configuration shared by the table benches.
struct BenchSetup {
  core::SimulationConfig config;      ///< geometry, mesh, ROM options
  fem::FemSolveOptions reference_fem; ///< the ANSYS-substitute solver
  int superposition_window = 5;      ///< K (odd) for the baseline one-shot
  bool run_reference = true;          ///< skip the costly reference if false
};

/// Bench-scale defaults: paper geometry, coarser fine mesh (elems_xy target
/// 8 -> 11 graded lines, 6 through the height), s=50 plane samples.
BenchSetup default_setup(double pitch);

/// Register the flags every table bench shares; call before parse().
void add_common_flags(util::CliParser& cli);

/// Apply parsed common flags onto a setup.
void apply_common_flags(const util::CliParser& cli, BenchSetup& setup);

/// One scenario-1 measurement row (a single array size, one pitch).
struct ArrayCaseResult {
  int array_edge = 0;
  // Reference (full fine-mesh FEM).
  double reference_seconds = 0.0;
  std::size_t reference_bytes = 0;
  la::idx_t reference_dofs = 0;
  bool reference_available = false;
  // Linear superposition.
  double superposition_seconds = 0.0;
  std::size_t superposition_bytes = 0;
  double superposition_error = 0.0;
  // MORE-Stress.
  double rom_seconds = 0.0;
  std::size_t rom_bytes = 0;
  double rom_error = 0.0;
  double local_stage_seconds = 0.0;
};

/// Run one standalone-array case (paper scenario 1) with all three methods.
/// `superposition` and `simulator` carry one-shot state across sizes.
ArrayCaseResult run_array_case(const BenchSetup& setup, core::MoreStressSimulator& simulator,
                               const baseline::SuperpositionModel& superposition, int array_edge);

/// Print one pitch's Table-1-shaped block from a list of case results.
void print_table1_block(double pitch, const std::vector<ArrayCaseResult>& results,
                        bool reference_available);

/// Parse a comma-separated list of integers ("10,15,20").
std::vector<int> parse_int_list(const std::string& text);

}  // namespace ms::bench
