// Ablation A2 (DESIGN.md): the global-stage solver. The paper solves the
// reduced system with GMRES (Sec. 4.3); after lifting, the system is SPD so
// CG applies, and for moderate sizes a sparse direct factorization is also
// viable. This bench compares wall time and iteration counts, and verifies
// all solvers agree on the field.

#include <cmath>
#include <cstdio>

#include "common.hpp"
#include "obs/obs_cli.hpp"
#include "util/timer.hpp"

int main(int argc, char** argv) {
  ms::util::CliParser cli("ablation_solvers", "global-stage solver comparison (CG/GMRES/direct)");
  ms::bench::add_common_flags(cli);
  cli.add_int("array", 12, "array edge length");
  cli.parse(argc, argv);

  const int array = static_cast<int>(cli.get_int("array"));

  std::printf("=== Ablation: global-stage solvers on a %dx%d array, p=15 um ===\n\n", array,
              array);

  ms::bench::BenchSetup setup = ms::bench::default_setup(15.0);
  ms::bench::apply_common_flags(cli, setup);

  struct Case {
    const char* method;
    const char* precond;
  };
  const Case cases[] = {
      {"cg", "jacobi"}, {"cg", "none"}, {"gmres", "jacobi"}, {"gmres", "none"}, {"direct", "-"}};

  ms::util::TextTable table({"solver", "preconditioner", "solve time", "iterations",
                             "max |field diff| vs direct"});

  std::vector<double> reference_field;
  std::vector<std::pair<Case, ms::core::ArrayResult>> runs;
  for (const Case& c : cases) {
    ms::core::SimulationConfig config = setup.config;
    config.global.method = c.method;
    if (std::string(c.precond) != "-") config.global.precond = c.precond;
    ms::core::MoreStressSimulator simulator(config);
    const ms::core::ArrayResult result = simulator.simulate_array(array, array);
    if (std::string(c.method) == "direct") reference_field = result.von_mises;
    runs.emplace_back(c, result);
  }

  for (const auto& [c, result] : runs) {
    double max_diff = 0.0;
    for (std::size_t i = 0; i < result.von_mises.size(); ++i) {
      max_diff = std::max(max_diff, std::fabs(result.von_mises[i] - reference_field[i]));
    }
    table.add_row({c.method, c.precond,
                   ms::util::format_seconds(result.stats.solve_seconds),
                   ms::util::strf("%d", static_cast<int>(result.stats.iterations)),
                   ms::util::strf("%.2e MPa", max_diff)});
  }
  std::fputs(table.render().c_str(), stdout);
  std::printf("\nglobal dofs: %d\n", static_cast<int>(runs.front().second.stats.global_dofs));
  ms::obs::write_cli_outputs(cli);
  return 0;
}
