// Sweep bench: throughput of the cached scenario-query service on a
// trace-family sweep — one 8x8 array fatigue scenario per (duty, peak) point
// of a square-wave power pulse. Every scenario shares the ROM block spec and
// the global/conduction operator structure, so the cold cost (assemble +
// factorize per query) amortizes to triangular solves + extraction once the
// caches are warm. Emits BENCH_sweep.json for the CI regression gate; the
// bitwise flag and the cache counters double as correctness tripwires.
//
//   ./bench_sweep [--grid 8] [--blocks 8] [--pulse-period-us 60]
//                 [--json BENCH_sweep.json] ...

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "common.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/obs_cli.hpp"
#include "obs/trace.hpp"
#include "sweep/scenario_spec.hpp"
#include "sweep/sweep_engine.hpp"
#include "util/json.hpp"
#include "util/log.hpp"
#include "util/timer.hpp"

namespace {

/// Field-for-field bitwise comparison of a warm engine result against the
/// cold legacy simulate_array_fatigue result for the same spec.
bool bitwise_equal(const ms::sweep::ScenarioResult& warm, const ms::core::FatigueResult& cold) {
  if (warm.fatigue == nullptr) return false;
  const ms::core::FatigueResult& w = *warm.fatigue;
  return w.von_mises == cold.von_mises && w.stress == cold.stress &&
         w.solution == cold.solution && w.envelope_load.values() == cold.envelope_load.values() &&
         w.report.min_life_cycles == cold.report.min_life_cycles &&
         w.report.min_life_seconds == cold.report.min_life_seconds &&
         w.report.min_life_channel == cold.report.min_life_channel;
}

}  // namespace

int main(int argc, char** argv) {
  ms::util::CliParser cli("sweep", "Scenario-sweep query-service throughput bench");
  cli.add_int("grid", 8, "sweep grid edge: grid x grid (duty, peak) scenarios");
  cli.add_int("blocks", 8, "array edge length in blocks");
  cli.add_int("samples", 10, "plane samples per block (throughput scale, not table scale)");
  cli.add_double("background", 20.0, "idle power density [W/mm^2]");
  cli.add_double("peak-max", 400.0, "largest hotspot peak power density [W/mm^2]");
  cli.add_double("pulse-period-us", 60.0, "pulse period [us]");
  cli.add_int("steps-per-period", 8, "transient steps per pulse period");
  cli.add_string("log", "warn", "log level: trace..off");
  cli.add_string("json", "BENCH_sweep.json", "machine-readable output path (empty skips)");
  ms::obs::add_cli_flags(cli);
  cli.parse(argc, argv);
  ms::util::set_log_level(ms::util::parse_log_level(cli.get_string("log")));
  ms::obs::apply_cli_flags(cli);

  // Bench-scale config: the query service's throughput is the subject, so
  // the per-query reduction work (plane samples) runs at sweep scale rather
  // than paper-table scale — what a design-space exploration would use.
  ms::core::SimulationConfig config = ms::bench::default_setup(15.0).config;
  config.local.samples_per_block = static_cast<int>(cli.get_int("samples"));
  config.global.method = "direct";
  config.coupling.solve.method = "direct";
  const double period = 1e-6 * cli.get_double("pulse-period-us");
  config.coupling.transient.time_step = period / static_cast<double>(cli.get_int("steps-per-period"));

  // --- the trace family: grid x grid (duty, peak) fatigue scenarios --------
  const int grid = static_cast<int>(cli.get_int("grid"));
  const int blocks = static_cast<int>(cli.get_int("blocks"));
  std::vector<ms::sweep::ScenarioSpec> specs;
  specs.reserve(static_cast<std::size_t>(grid) * grid);
  for (int i = 0; i < grid; ++i) {
    for (int j = 0; j < grid; ++j) {
      ms::sweep::ScenarioSpec spec;
      spec.name = "duty" + std::to_string(i + 1) + "_peak" + std::to_string(j + 1);
      spec.kind = ms::sweep::ScenarioKind::kArray;
      spec.analysis = ms::sweep::AnalysisKind::kFatigue;
      spec.load = ms::sweep::LoadKind::kTrace;
      spec.blocks_x = blocks;
      spec.blocks_y = blocks;
      spec.power.background = cli.get_double("background");
      spec.power.hotspot_peak = cli.get_double("peak-max") * (j + 1) / grid;
      spec.trace.shape = "square";
      spec.trace.period = period;
      spec.trace.duty = static_cast<double>(i + 1) / (grid + 1);
      spec.trace.cycles = 1;
      spec.validate();
      specs.push_back(std::move(spec));
    }
  }
  const int num_scenarios = static_cast<int>(specs.size());

  // --- cold baseline: legacy positional calls, no cache sharing ------------
  // One simulator (the local-stage model is one-shot state the legacy flow
  // also amortizes), but every query assembles and factorizes from scratch.
  ms::core::MoreStressSimulator cold_sim(config);
  (void)cold_sim.prepare_local_stage(/*with_dummy=*/false);
  std::vector<ms::core::FatigueResult> cold_results;
  cold_results.reserve(specs.size());
  ms::util::WallTimer cold_timer;
  for (const ms::sweep::ScenarioSpec& spec : specs) {
    const ms::thermal::PowerTrace trace =
        ms::sweep::make_power_trace(spec, ms::sweep::make_power_map(spec, config));
    cold_results.push_back(
        cold_sim.simulate_array_fatigue(spec.blocks_x, spec.blocks_y, trace, spec.fatigue));
  }
  const double cold_seconds = cold_timer.seconds();
  const double cold_qps = num_scenarios / cold_seconds;
  std::printf("=== cold: legacy simulate_array_fatigue per spec ===\n");
  std::printf("%d queries in %.3f s (%.2f queries/s)\n", num_scenarios, cold_seconds, cold_qps);

  // --- first engine pass: populates the shared caches, locks correctness ---
  ms::sweep::SweepOptions options;
  options.config = config;
  // The warm pass below is the telemetry-OFF baseline of the overhead gate,
  // so the engine must not auto-enable the flight recorder here.
  options.flight_recorder = false;
  ms::sweep::SweepEngine engine(options);
  ms::sweep::SweepStats first_stats;
  const std::vector<ms::sweep::ScenarioResult> first = engine.run(specs, &first_stats);
  bool bitwise = first.size() == cold_results.size();
  for (std::size_t k = 0; bitwise && k < first.size(); ++k) {
    bitwise = bitwise_equal(first[k], cold_results[k]);
  }
  std::printf("\n=== engine pass 1 (cache fill): %.3f s, factor %llu hit / %llu miss, "
              "model %llu hit / %llu miss ===\n",
              first_stats.wall_seconds,
              static_cast<unsigned long long>(first_stats.factor_cache_hits),
              static_cast<unsigned long long>(first_stats.factor_cache_misses),
              static_cast<unsigned long long>(first_stats.model_cache_hits),
              static_cast<unsigned long long>(first_stats.model_cache_misses));
  std::printf("bitwise identical to cold legacy results: %s\n", bitwise ? "yes" : "NO");

  // --- warm pass: every operator factorization is a cache hit --------------
  ms::sweep::SweepStats warm_stats;
  const std::vector<ms::sweep::ScenarioResult> warm = engine.run(specs, &warm_stats);
  const double warm_qps = num_scenarios / warm_stats.wall_seconds;
  std::int64_t warm_factorizations = 0;
  int pareto_count = 0;
  for (const ms::sweep::ScenarioResult& r : warm) {
    if (r.fatigue != nullptr) warm_factorizations += r.fatigue->solve_stats.num_factorizations;
    pareto_count += r.pareto_optimal ? 1 : 0;
  }
  std::printf("\n=== warm: shared factorizations + models ===\n");
  std::printf("%d queries in %.3f s (%.2f queries/s, %.1fx cold); "
              "%lld global factorizations, %d Pareto-optimal\n",
              num_scenarios, warm_stats.wall_seconds, warm_qps, warm_qps / cold_qps,
              static_cast<long long>(warm_factorizations), pareto_count);

  // --- fully-enabled telemetry pass: same warm caches, everything on -------
  // Span tracing + flight recorder (the event log is on the whole run when
  // --events-jsonl is given, so it cancels out of the ratio). The gate in
  // tools/bench_gate.py holds telemetry_overhead_ratio to <= 1.05.
  const bool was_tracing = ms::obs::tracing_enabled();
  ms::obs::set_tracing_enabled(true);
  ms::obs::FlightRecorder::set_enabled(true);
  ms::sweep::SweepStats telemetry_stats;
  const std::vector<ms::sweep::ScenarioResult> telemetry_pass =
      engine.run(specs, &telemetry_stats);
  ms::obs::set_tracing_enabled(was_tracing);
  ms::obs::FlightRecorder::set_enabled(false);
  std::int64_t attributed_hits = 0;
  for (const ms::sweep::ScenarioResult& r : telemetry_pass) {
    attributed_hits += r.telemetry.count("factor_cache.hits");
  }
  const double telemetry_ratio = telemetry_stats.wall_seconds / warm_stats.wall_seconds;
  std::printf("\n=== telemetry on (tracing + flight recorder + attribution) ===\n");
  std::printf("%d queries in %.3f s (%.3fx warm baseline); "
              "%lld attributed factor-cache hits (global delta %llu)\n",
              num_scenarios, telemetry_stats.wall_seconds, telemetry_ratio,
              static_cast<long long>(attributed_hits),
              static_cast<unsigned long long>(telemetry_stats.factor_cache_hits));

  const std::string json_path = cli.get_string("json");
  if (!json_path.empty()) {
    std::vector<ms::util::JsonObject> records;
    records.push_back(
        ms::util::JsonObject()
            .set("scenario", "trace_family_sweep")
            .set("num_scenarios", num_scenarios)
            .set("edge", blocks)
            .set("cold_seconds", cold_seconds)
            .set("cold_queries_per_second", cold_qps)
            .set("warm_seconds", warm_stats.wall_seconds)
            .set("queries_per_second", warm_qps)
            .set("warm_vs_cold_speedup", warm_qps / cold_qps)
            .set("factor_cache_hits", static_cast<std::int64_t>(warm_stats.factor_cache_hits))
            .set("factor_cache_misses",
                 static_cast<std::int64_t>(first_stats.factor_cache_misses))
            .set("model_cache_hits", static_cast<std::int64_t>(warm_stats.model_cache_hits))
            .set("num_factorizations", warm_factorizations)
            .set("pareto_count", pareto_count)
            .set("bitwise_identical", bitwise ? 1 : 0)
            .set("telemetry_disabled_seconds", warm_stats.wall_seconds)
            .set("telemetry_enabled_seconds", telemetry_stats.wall_seconds)
            .set("telemetry_overhead_ratio", telemetry_ratio));
    ms::util::write_bench_json(json_path, "sweep", records);
    std::printf("\nwrote %s (%d cases)\n", json_path.c_str(), static_cast<int>(records.size()));
  }
  ms::obs::write_cli_outputs(cli);
  return bitwise ? 0 : 1;
}
