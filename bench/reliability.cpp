// Reliability bench: cost of the cycle-resolved fatigue pipeline — the
// transient conduction march, the batched per-step ROM panel (one
// factorization for envelope + every step), channel extraction, and the
// rainflow + Miner reduction — plus a pure rainflow-kernel throughput case.
// Emits BENCH_reliability.json for the CI regression gate; num_rhs and the
// log10 lifetime double as determinism tripwires.
//
//   ./bench_reliability [--blocks 8] [--pulse-period-us 60] [--pulse-cycles 3]
//                       [--json BENCH_reliability.json] ...

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <vector>

#include "common.hpp"
#include "obs/metrics.hpp"
#include "obs/obs_cli.hpp"
#include "obs/report.hpp"
#include "reliability/rainflow.hpp"
#include "util/json.hpp"
#include "util/timer.hpp"

int main(int argc, char** argv) {
  ms::util::CliParser cli("reliability", "Cycle-resolved fatigue pipeline bench");
  ms::bench::add_common_flags(cli);
  cli.add_int("blocks", 8, "array edge length in blocks");
  cli.add_double("background", 20.0, "idle power density [W/mm^2]");
  cli.add_double("peak", 400.0, "hotspot peak power density [W/mm^2]");
  cli.add_double("pulse-period-us", 60.0, "pulse period [us]");
  cli.add_int("pulse-cycles", 3, "pulse count");
  cli.add_int("rainflow-points", 2000000, "synthetic series length of the kernel case");
  cli.add_string("json", "BENCH_reliability.json", "machine-readable output path (empty skips)");
  cli.parse(argc, argv);

  ms::bench::BenchSetup setup = ms::bench::default_setup(15.0);
  ms::bench::apply_common_flags(cli, setup);
  ms::core::SimulationConfig config = setup.config;
  config.global.method = "direct";
  config.coupling.solve.method = "direct";
  const double period = 1e-6 * cli.get_double("pulse-period-us");
  config.coupling.transient.time_step = period / 20.0;
  std::vector<ms::util::JsonObject> records;

  // --- array fatigue: trace -> batched panel -> rainflow -> damage ---------
  const int blocks = static_cast<int>(cli.get_int("blocks"));
  const double pitch = config.geometry.pitch;
  const ms::thermal::PowerMap idle =
      ms::thermal::PowerMap::per_block(blocks, blocks, pitch, cli.get_double("background"));
  ms::thermal::PowerMap active = idle;
  const double mid = 0.5 * blocks * pitch;
  active.add_gaussian_hotspot(mid, mid, 1.5 * pitch, cli.get_double("peak"));
  const ms::thermal::PowerTrace trace = ms::thermal::PowerTrace::square_wave(
      idle, active, period, 0.5, static_cast<int>(cli.get_int("pulse-cycles")));

  ms::core::MoreStressSimulator sim(config);
  (void)sim.prepare_local_stage(/*with_dummy=*/false);
  ms::util::WallTimer timer;
  const ms::obs::RunReport before_case = ms::obs::RunReport::capture();
  const ms::core::FatigueResult result = sim.simulate_array_fatigue(blocks, blocks, trace);
  const double fatigue_seconds = timer.seconds();
  const ms::obs::RunReport after_case = ms::obs::RunReport::capture();

  std::printf("=== array fatigue: trace -> batched ROM panel -> rainflow -> damage ===\n");
  std::printf("%8s %8s %8s %12s %12s %12s %12s %12s\n", "array", "steps", "rhs", "thermal[s]",
              "panel[s]", "channels[s]", "damage[s]", "total[s]");
  // Stage timings come out of the metric registry (the solve paths publish
  // the same values the stats structs carry), not bench-side bookkeeping.
  const double thermal_seconds =
      after_case.delta(before_case, "thermal.transient.assemble_seconds") +
      after_case.delta(before_case, "thermal.transient.factor_seconds") +
      after_case.delta(before_case, "thermal.transient.step_seconds");
  const double panel_seconds = after_case.delta(before_case, "core.run.assemble_seconds") +
                               after_case.delta(before_case, "core.run.solve_seconds");
  const double damage_seconds = after_case.delta(before_case, "reliability.assess_seconds");
  std::printf("%5dx%-3d %8d %8d %12.3f %12.3f %12.3f %12.3f %12.3f\n", blocks, blocks,
              result.thermal_stats.num_steps, static_cast<int>(result.solve_stats.num_rhs),
              thermal_seconds, panel_seconds, result.history_seconds, damage_seconds,
              fatigue_seconds);
  const double min_life_log10 = std::log10(result.report.min_life_cycles);
  std::printf("min lifetime: 1e%.3f trace passes (channel %s); factor %.3f s for %d rhs "
              "(%.2f ms/rhs triangular)\n",
              min_life_log10, ms::reliability::channel_name(result.report.min_life_channel),
              result.solve_stats.factor_seconds, static_cast<int>(result.solve_stats.num_rhs),
              1e3 * result.solve_stats.triangular_seconds /
                  std::max<ms::la::idx_t>(result.solve_stats.num_rhs, 1));

  // Fraction of point-steps the reduced-basis screen actually evaluated in
  // full — the cost of channel extraction scales with this, and a regression
  // toward 1.0 means the screen stopped pruning.
  const double screen_evaluated =
      after_case.delta(before_case, "reliability.screen.evaluated_point_steps");
  const double screen_total =
      after_case.delta(before_case, "reliability.screen.total_point_steps");
  const double screen_fraction = screen_total > 0.0 ? screen_evaluated / screen_total : 1.0;
  std::printf("screen evaluated %.0f of %.0f point-steps (%.1f%%)\n", screen_evaluated,
              screen_total, 100.0 * screen_fraction);

  double peak_vm = 0.0;
  for (double v : result.von_mises) peak_vm = std::max(peak_vm, v);
  records.push_back(
      ms::util::JsonObject()
          .set("scenario", "array_fatigue")
          .set("edge", blocks)
          .set("num_steps", result.thermal_stats.num_steps)
          .set("num_rhs", static_cast<std::int64_t>(result.solve_stats.num_rhs))
          .set("num_factorizations", result.solve_stats.num_factorizations)
          .set("thermal_seconds", thermal_seconds)
          .set("panel_seconds", panel_seconds)
          .set("panel_factor_seconds", after_case.delta(before_case, "rom.global.factor_seconds"))
          .set("panel_triangular_seconds",
               after_case.delta(before_case, "rom.global.triangular_seconds"))
          .set("channel_extraction_seconds", result.history_seconds)
          .set("damage_seconds", damage_seconds)
          .set("fatigue_seconds", fatigue_seconds)
          .set("global_dofs", static_cast<std::int64_t>(result.stats.global_dofs))
          .set("peak_von_mises", peak_vm)
          .set("min_life_log10", min_life_log10)
          .set("screen_evaluated_fraction", screen_fraction)
          .set("memory_bytes", result.stats.memory_bytes));

  // --- rainflow kernel throughput ------------------------------------------
  const std::size_t points = static_cast<std::size_t>(cli.get_int("rainflow-points"));
  std::vector<double> series(points);
  for (std::size_t i = 0; i < points; ++i) {
    const double t = static_cast<double>(i);
    series[i] = 60.0 * std::sin(0.37 * t) + 25.0 * std::sin(0.011 * t) + 10.0 * std::sin(1.7 * t);
  }
  // Time the kernel through the registry: record into a bench-owned
  // histogram, then read the duration back out of a report snapshot.
  const ms::obs::RunReport before_kernel = ms::obs::RunReport::capture();
  std::vector<ms::reliability::Cycle> cycles;
  {
    ms::obs::ScopedDuration kernel_timer(
        ms::obs::MetricRegistry::global().histogram("bench.rainflow.kernel_seconds"));
    cycles = ms::reliability::rainflow_count(series);
  }
  const double rainflow_seconds =
      ms::obs::RunReport::capture().delta(before_kernel, "bench.rainflow.kernel_seconds");
  double total = 0.0;
  for (const auto& c : cycles) total += c.count;
  std::printf("\n=== rainflow kernel ===\n");
  std::printf("%zu points -> %.0f cycle counts in %.3f s (%.1f Mpts/s)\n", points, total,
              rainflow_seconds, 1e-6 * static_cast<double>(points) / rainflow_seconds);
  records.push_back(ms::util::JsonObject()
                        .set("scenario", "rainflow_kernel")
                        .set("edge", static_cast<int>(points))
                        .set("rainflow_seconds", rainflow_seconds)
                        .set("total_cycle_counts", total));

  const std::string json_path = cli.get_string("json");
  if (!json_path.empty()) {
    ms::util::write_bench_json(json_path, "reliability", records);
    std::printf("\nwrote %s (%d cases)\n", json_path.c_str(), static_cast<int>(records.size()));
  }
  ms::obs::write_cli_outputs(cli);
  return 0;
}
