// Reproduces Table 2 of the paper: a TSV array embedded at five locations
// (loc1..loc5, Fig. 5(b)) in a chiplet package, exercised through the
// sub-modeling path (Sec. 4.4). A coarse package model supplies boundary
// displacements; two rings of dummy blocks pad the array. Compared methods:
// fine-mesh FEM of the padded sub-model (ANSYS substitute), linear
// superposition over the coarse background stress, and MORE-Stress.

#include <cstdio>

#include "chiplet/package_model.hpp"
#include "chiplet/submodel.hpp"
#include "common.hpp"
#include "obs/obs_cli.hpp"
#include "util/timer.hpp"

namespace {

/// Package sized so the interposer comfortably hosts the largest sub-model.
ms::chiplet::PackageGeometry bench_package(double pitch, int submodel_blocks) {
  ms::chiplet::PackageGeometry g;
  const double footprint = submodel_blocks * pitch;
  g.interposer_x = g.interposer_y = std::max(600.0, 2.5 * footprint);
  g.interposer_z = 50.0;  // equals the TSV height
  g.substrate_x = g.substrate_y = g.interposer_x + 400.0;
  g.substrate_z = 150.0;
  g.die_x = g.die_y = 0.5 * g.interposer_x;
  g.die_z = 80.0;
  return g;
}

}  // namespace

int main(int argc, char** argv) {
  ms::util::CliParser cli("table2_submodel", "Paper Table 2: embedded array via sub-modeling");
  ms::bench::add_common_flags(cli);
  cli.add_int("array", 5, "TSV array edge (paper: 15)");
  cli.add_int("rings", 2, "dummy-block padding rings");
  cli.add_string("pitches", "15,10", "comma-separated pitches in um");
  cli.parse(argc, argv);

  const int array = static_cast<int>(cli.get_int("array"));
  const int rings = static_cast<int>(cli.get_int("rings"));
  const int padded = array + 2 * rings;
  const std::vector<int> pitches = ms::bench::parse_int_list(cli.get_string("pitches"));

  std::printf("=== Table 2: %dx%d TSV array (+%d dummy rings) embedded in a chiplet ===\n\n",
              array, array, rings);

  for (int pitch : pitches) {
    ms::bench::BenchSetup setup = ms::bench::default_setup(pitch);
    ms::bench::apply_common_flags(cli, setup);

    // Coarse package model (solved once per pitch; ANSYS does this step in
    // the paper's flow as well).
    const ms::chiplet::PackageGeometry package_geom = bench_package(pitch, padded);
    ms::util::WallTimer coarse_timer;
    const ms::chiplet::PackageModel package(package_geom, {20, 20, 3, 2, 2},
                                            setup.config.thermal_load);
    std::printf("p=%d um: coarse package solve %.1f s (%d dofs)\n", pitch,
                coarse_timer.seconds(), static_cast<int>(package.stats().num_dofs));

    ms::core::MoreStressSimulator simulator(setup.config);
    const double local_seconds = simulator.prepare_local_stage(/*with_dummy=*/true);

    ms::baseline::SuperpositionModel::BuildOptions sp_options;
    sp_options.window_blocks = setup.superposition_window;
    sp_options.samples_per_block = setup.config.local.samples_per_block;
    sp_options.thermal_load = setup.config.thermal_load;
    sp_options.fem = setup.reference_fem;
    const auto superposition = ms::baseline::SuperpositionModel::build(
        setup.config.geometry, setup.config.mesh_spec, setup.config.materials, sp_options);
    std::printf("one-shot: local stages %.1f s, superposition build %.1f s\n\n", local_seconds,
                superposition.build_seconds());

    const auto locations =
        ms::chiplet::standard_locations(package_geom, setup.config.geometry.pitch, padded, padded);

    std::vector<std::string> header{"method", "metric"};
    for (const auto& loc : locations) header.push_back(loc.label);
    ms::util::TextTable table(header);

    struct LocResult {
      double ref_seconds = 0.0;
      std::size_t ref_bytes = 0;
      double sp_seconds = 0.0;
      std::size_t sp_bytes = 0;
      double sp_error = 0.0;
      double rom_seconds = 0.0;
      std::size_t rom_bytes = 0;
      double rom_error = 0.0;
    };
    std::vector<LocResult> results;

    for (const auto& loc : locations) {
      LocResult r;
      // Boundary data in the sub-model local frame.
      const auto displacement = [&](const ms::mesh::Point3& p) {
        return package.displacement_at(
            {p.x + loc.origin.x, p.y + loc.origin.y, p.z + loc.origin.z});
      };

      // MORE-Stress.
      const ms::core::ArrayResult rom =
          simulator.simulate_submodel(array, array, rings, displacement);
      r.rom_seconds = rom.stats.global_seconds();
      r.rom_bytes = rom.stats.memory_bytes;

      // Linear superposition: coarse background stress + per-via deltas over
      // the *inner* array region.
      ms::util::WallTimer sp_timer;
      const std::function<ms::fem::Stress6(const ms::mesh::Point3&)> background =
          [&](const ms::mesh::Point3& p) {
            return package.stress_at({p.x + loc.origin.x + rings * setup.config.geometry.pitch,
                                      p.y + loc.origin.y + rings * setup.config.geometry.pitch,
                                      p.z + loc.origin.z});
          };
      const auto sp_stress = superposition.estimate(array, array, {}, &background);
      const auto sp_vm = ms::fem::to_von_mises(sp_stress);
      r.sp_seconds = sp_timer.seconds();
      r.sp_bytes = superposition.memory_bytes() + sp_stress.size() * sizeof(ms::fem::Stress6);

      // Reference fine FEM of the padded sub-model.
      if (setup.run_reference) {
        const ms::core::ReferenceResult ref = ms::core::reference_submodel(
            setup.config, array, array, rings, displacement, setup.reference_fem);
        r.ref_seconds = ref.stats.total_seconds();
        r.ref_bytes = ref.stats.total_bytes();
        r.rom_error = ms::core::field_error(ref, rom.von_mises);
        r.sp_error = ms::core::field_error(ref, sp_vm);
      }
      results.push_back(r);
      std::fflush(stdout);
    }

    auto add_row = [&](const std::string& method, const std::string& metric, auto cell_of) {
      std::vector<std::string> cells{method, metric};
      for (const auto& r : results) cells.push_back(cell_of(r));
      table.add_row(std::move(cells));
    };
    if (setup.run_reference) {
      add_row("FEM reference", "time",
              [](const LocResult& r) { return ms::util::format_seconds(r.ref_seconds); });
      add_row("(ANSYS subst.)", "memory",
              [](const LocResult& r) { return ms::util::format_bytes(r.ref_bytes); });
    }
    add_row("Linear", "time",
            [](const LocResult& r) { return ms::util::format_seconds(r.sp_seconds); });
    add_row("superposition", "memory",
            [](const LocResult& r) { return ms::util::format_bytes(r.sp_bytes); });
    if (setup.run_reference) {
      add_row("", "error", [](const LocResult& r) { return ms::util::percent_cell(r.sp_error); });
    }
    add_row("MORE-Stress", "time",
            [](const LocResult& r) { return ms::util::format_seconds(r.rom_seconds); });
    add_row("(ours)", "memory",
            [](const LocResult& r) { return ms::util::format_bytes(r.rom_bytes); });
    if (setup.run_reference) {
      add_row("", "error", [](const LocResult& r) { return ms::util::percent_cell(r.rom_error); });
      add_row("improvement", "time", [](const LocResult& r) {
        return ms::util::ratio_cell(r.ref_seconds, r.rom_seconds);
      });
      add_row("over reference", "memory", [](const LocResult& r) {
        return ms::util::ratio_cell(static_cast<double>(r.ref_bytes),
                                    static_cast<double>(r.rom_bytes));
      });
      add_row("improvement over", "accuracy", [](const LocResult& r) {
        return ms::util::ratio_cell(r.sp_error, r.rom_error);
      });
    }
    std::printf("p = %d um\n%s\n", pitch, table.render().c_str());
  }
  std::printf("peak RSS: %s\n", ms::util::format_bytes(ms::util::peak_rss_bytes()).c_str());
  ms::obs::write_cli_outputs(cli);
  return 0;
}
