// Thermal-coupling bench: cost of the conduction -> ΔT -> ROM pipeline for
// both thermally coupled scenarios — standalone arrays (scenario 3) and the
// package sub-model (scenario 2) — plus the OpenMP speedup of the one-shot
// local stage. Emits a machine-readable BENCH_thermal.json so the perf
// trajectory of the coupling path is tracked run over run.
//
//   ./bench_thermal_coupling [--sizes 8,16] [--submodel 5] [--rings 2]
//                            [--json BENCH_thermal.json] ...

#include <algorithm>
#include <cmath>
#include <cstdio>

#ifdef _OPENMP
#include <omp.h>
#endif

#include "chiplet/package_model.hpp"
#include "chiplet/submodel.hpp"
#include "common.hpp"
#include "obs/obs_cli.hpp"
#include "obs/report.hpp"
#include "obs/trace.hpp"
#include "util/json.hpp"
#include "util/timer.hpp"

namespace {

double peak_of(const std::vector<double>& field) {
  double peak = 0.0;
  for (double v : field) peak = std::max(peak, v);
  return peak;
}

}  // namespace

int main(int argc, char** argv) {
  ms::util::CliParser cli("thermal_coupling", "Power-map -> temperature -> ROM stress bench");
  ms::bench::add_common_flags(cli);
  cli.add_string("sizes", "8,16", "array edge lengths");
  cli.add_int("submodel", 5, "sub-model TSV array edge (0 skips the case)");
  cli.add_int("rings", 2, "sub-model dummy-block padding rings");
  cli.add_double("background", 20.0, "array background power density [W/mm^2]");
  cli.add_double("peak", 400.0, "array hotspot peak power density [W/mm^2]");
  // The package sinks through a thick low-k organic substrate, so a few
  // W/mm^2 already produce reflow-scale dT; the array flags would melt it.
  cli.add_double("submodel-power", 2.0, "sub-model die power density [W/mm^2]");
  cli.add_double("pulse-period-us", 60.0, "transient-case pulse period [us]");
  cli.add_int("pulse-cycles", 3, "transient-case pulse count");
  cli.add_string("json", "BENCH_thermal.json", "machine-readable output path (empty skips)");
  cli.parse(argc, argv);

  ms::bench::BenchSetup setup = ms::bench::default_setup(15.0);
  ms::bench::apply_common_flags(cli, setup);
  const ms::core::SimulationConfig& config = setup.config;
  std::vector<ms::util::JsonObject> records;

  // --- local-stage parallel speedup ---------------------------------------
#ifdef _OPENMP
  const int max_threads = omp_get_max_threads();
  omp_set_num_threads(1);
#else
  const int max_threads = 1;
#endif
  // Timings come from the metric registry (the local stage records itself
  // into rom.local.stage_seconds), not bench-side stopwatches.
  ms::obs::RunReport before_serial = ms::obs::RunReport::capture();
  (void)ms::rom::run_local_stage(config.geometry, config.mesh_spec, config.materials,
                                 ms::rom::BlockKind::Tsv, config.local);
  const double serial_seconds =
      ms::obs::RunReport::capture().delta(before_serial, "rom.local.stage_seconds");
#ifdef _OPENMP
  omp_set_num_threads(max_threads);
#endif
  ms::obs::RunReport before_parallel = ms::obs::RunReport::capture();
  (void)ms::rom::run_local_stage(config.geometry, config.mesh_spec, config.materials,
                                 ms::rom::BlockKind::Tsv, config.local);
  const double parallel_seconds =
      ms::obs::RunReport::capture().delta(before_parallel, "rom.local.stage_seconds");
  std::printf("=== local stage OpenMP speedup ===\n");
  std::printf("1 thread:   %.3f s\n", serial_seconds);
  std::printf("%d thread%s: %.3f s  (speedup %.2fx)\n\n", max_threads,
              max_threads == 1 ? " " : "s", parallel_seconds,
              serial_seconds / std::max(parallel_seconds, 1e-12));
  records.push_back(ms::util::JsonObject()
                        .set("scenario", "local_stage_speedup")
                        .set("threads", max_threads)
                        .set("serial_seconds", serial_seconds)
                        .set("parallel_seconds", parallel_seconds));

  // --- scenario 3: array power map -> dT -> stress -------------------------
  ms::core::MoreStressSimulator sim(config);
  (void)sim.prepare_local_stage(/*with_dummy=*/false);

  std::printf("=== array: power map -> dT -> stress ===\n");
  std::printf("%8s %12s %12s %12s %12s %10s\n", "array", "thermal[s]", "global[s]", "dT min[C]",
              "dT max[C]", "peak[MPa]");
  for (int edge : ms::bench::parse_int_list(cli.get_string("sizes"))) {
    ms::thermal::PowerMap power = ms::thermal::PowerMap::per_block(
        edge, edge, config.geometry.pitch, cli.get_double("background"));
    const double mid = 0.5 * edge * config.geometry.pitch;
    power.add_gaussian_hotspot(mid, mid, 1.5 * config.geometry.pitch, cli.get_double("peak"));

    // Timings and factor detail read back from the registry: the solve paths
    // publish the same values the stats structs carry (regression-locked by
    // tests/obs), so the bench emits registry deltas.
    const ms::obs::RunReport before_case = ms::obs::RunReport::capture();
    const ms::core::ThermalArrayResult result = sim.simulate_array_thermal(edge, edge, power);
    const ms::obs::RunReport after_case = ms::obs::RunReport::capture();
    const double thermal_seconds =
        after_case.delta(before_case, "thermal.steady.assemble_seconds") +
        after_case.delta(before_case, "thermal.steady.solve_seconds");
    const double global_seconds = after_case.delta(before_case, "core.run.assemble_seconds") +
                                  after_case.delta(before_case, "core.run.solve_seconds") +
                                  after_case.delta(before_case, "core.run.reconstruct_seconds");
    const double peak = peak_of(result.von_mises);
    std::printf("%5dx%-3d %12.3f %12.3f %12.3f %12.3f %10.1f\n", edge, edge, thermal_seconds,
                global_seconds, result.load.min(), result.load.max(), peak);
    ms::util::JsonObject record;
    record.set("scenario", "array")
        .set("edge", edge)
        .set("thermal_seconds", thermal_seconds)
        .set("thermal_dofs", static_cast<std::int64_t>(after_case.value("thermal.steady.num_dofs")))
        .set("global_seconds", global_seconds)
        .set("global_dofs", static_cast<std::int64_t>(after_case.value("core.run.global_dofs")))
        .set("dt_min", result.load.min())
        .set("dt_max", result.load.max())
        .set("peak_von_mises", peak)
        .set("memory_bytes", result.stats.memory_bytes);
    const auto factor_nnz = static_cast<std::int64_t>(after_case.value("rom.global.factor_nnz"));
    if (factor_nnz > 0 &&
        after_case.count_delta(before_case, "rom.global.factorizations") > 0) {
      // Global stage ran the direct path: surface its factorization detail.
      const double factor_seconds = after_case.delta(before_case, "rom.global.factor_seconds");
      record.set("global_factor_seconds", factor_seconds)
          .set("global_factor_nnz", factor_nnz)
          .set("global_fill_ratio", after_case.value("rom.global.fill_ratio"))
          .set("global_ordering", result.stats.solver_ordering);
      std::printf("   global factor: %s ordering, nnz(L) = %lld (fill %.2fx, %.3fs)\n",
                  result.stats.solver_ordering.c_str(), static_cast<long long>(factor_nnz),
                  after_case.value("rom.global.fill_ratio"), factor_seconds);
    }
    records.push_back(std::move(record));
  }

  // --- scenario 3, time domain: pulsed trace -> envelope -> stress ---------
  {
    const int edge = ms::bench::parse_int_list(cli.get_string("sizes")).front();
    const double pitch = config.geometry.pitch;
    const ms::thermal::PowerMap idle =
        ms::thermal::PowerMap::per_block(edge, edge, pitch, cli.get_double("background"));
    ms::thermal::PowerMap active = idle;
    const double mid = 0.5 * edge * pitch;
    active.add_gaussian_hotspot(mid, mid, 1.5 * pitch, cli.get_double("peak"));
    const double period = 1e-6 * cli.get_double("pulse-period-us");
    const ms::thermal::PowerTrace trace = ms::thermal::PowerTrace::square_wave(
        idle, active, period, 0.5, static_cast<int>(cli.get_int("pulse-cycles")));

    ms::core::SimulationConfig transient_config = config;
    transient_config.coupling.transient.time_step = period / 20.0;
    ms::core::MoreStressSimulator transient_sim(transient_config);
    (void)transient_sim.prepare_local_stage(/*with_dummy=*/false);
    const ms::obs::RunReport before_case = ms::obs::RunReport::capture();
    const ms::core::ThermalTransientArrayResult result =
        transient_sim.simulate_array_thermal_transient(edge, edge, trace);
    const ms::obs::RunReport after_case = ms::obs::RunReport::capture();
    const double factor_seconds = after_case.delta(before_case, "thermal.transient.factor_seconds");
    const double step_seconds = after_case.delta(before_case, "thermal.transient.step_seconds");
    const double thermal_seconds =
        after_case.delta(before_case, "thermal.transient.assemble_seconds") + factor_seconds +
        step_seconds;
    const double global_seconds = after_case.delta(before_case, "core.run.assemble_seconds") +
                                  after_case.delta(before_case, "core.run.solve_seconds") +
                                  after_case.delta(before_case, "core.run.reconstruct_seconds");
    const auto num_steps =
        static_cast<int>(after_case.count_delta(before_case, "thermal.transient.steps"));
    const double peak = peak_of(result.von_mises);

    std::printf("\n=== array transient: power trace -> envelope -> stress ===\n");
    std::printf("%8s %8s %12s %12s %12s %12s %10s\n", "array", "steps", "factor[s]", "steps[s]",
                "env max[C]", "avg max[C]", "peak[MPa]");
    const double env_max =
        *std::max_element(result.transient.peak_envelope.begin(),
                          result.transient.peak_envelope.end());
    const double avg_max = *std::max_element(result.transient.time_average.begin(),
                                             result.transient.time_average.end());
    std::printf("%5dx%-3d %8d %12.3f %12.3f %12.3f %12.3f %10.1f\n", edge, edge, num_steps,
                factor_seconds, step_seconds, env_max, avg_max, peak);
    std::printf("stepper factor: %s ordering, nnz(L) = %lld (fill %.2fx)\n",
                result.thermal_stats.ordering.c_str(),
                static_cast<long long>(after_case.value("thermal.transient.factor_nnz")),
                after_case.value("thermal.transient.fill_ratio"));
    records.push_back(ms::util::JsonObject()
                          .set("scenario", "array_transient")
                          .set("edge", edge)
                          .set("num_steps", num_steps)
                          .set("thermal_seconds", thermal_seconds)
                          .set("factor_seconds", factor_seconds)
                          .set("step_seconds", step_seconds)
                          .set("thermal_dofs",
                               static_cast<std::int64_t>(
                                   after_case.value("thermal.transient.num_dofs")))
                          .set("global_seconds", global_seconds)
                          .set("stepper_factor_nnz",
                               static_cast<std::int64_t>(
                                   after_case.value("thermal.transient.factor_nnz")))
                          .set("stepper_fill_ratio",
                               after_case.value("thermal.transient.fill_ratio"))
                          .set("stepper_ordering", result.thermal_stats.ordering)
                          .set("envelope_dt_max", env_max)
                          .set("time_average_dt_max", avg_max)
                          .set("peak_von_mises", peak)
                          .set("memory_bytes", result.stats.memory_bytes));
  }

  // --- scenario 2: package sub-model under the same hotspot ----------------
  const int submodel_edge = static_cast<int>(cli.get_int("submodel"));
  if (submodel_edge > 0) {
    const int rings = static_cast<int>(cli.get_int("rings"));
    const int padded = submodel_edge + 2 * rings;

    const ms::chiplet::PackageGeometry geom = ms::chiplet::demo_package_geometry(
        config.geometry.pitch, padded, config.geometry.height);

    std::printf("\n=== sub-model: package power map -> dT -> stress ===\n");
    // The package ctor runs one full FEM solve; read its cost and factor
    // detail back out of the fem.* metrics it published.
    const ms::obs::RunReport before_package = ms::obs::RunReport::capture();
    ms::util::WallTimer timer;
    const ms::chiplet::PackageModel package(geom, ms::chiplet::demo_coarse_spec(),
                                            config.thermal_load);
    const double package_seconds = timer.seconds();
    const ms::obs::RunReport after_package = ms::obs::RunReport::capture();
    const double package_factor_seconds =
        after_package.delta(before_package, "fem.factor_seconds");
    const auto package_factor_nnz =
        static_cast<std::int64_t>(after_package.value("fem.factor_nnz"));
    const double package_fill_ratio = after_package.value("fem.fill_ratio");
    std::printf("coarse package solve: %.2f s (%d dofs; factor %.2f s, %s ordering, "
                "nnz(L) = %lld, fill %.2fx)\n",
                package_seconds, static_cast<int>(after_package.value("fem.num_dofs")),
                package_factor_seconds, package.stats().ordering.c_str(),
                static_cast<long long>(package_factor_nnz), package_fill_ratio);
    (void)sim.prepare_local_stage(/*with_dummy=*/rings > 0);

    const auto locations =
        ms::chiplet::standard_locations(geom, config.geometry.pitch, padded, padded);
    const ms::chiplet::SubmodelPlacement& loc = locations[0];

    const double die_power = cli.get_double("submodel-power");
    const ms::thermal::PowerMap power = ms::chiplet::demo_power_map(
        geom, loc, config.geometry.pitch, die_power, 10.0 * die_power);

    const ms::obs::RunReport before_case = ms::obs::RunReport::capture();
    const ms::core::ThermalSubmodelResult result = sim.simulate_submodel_thermal(
        submodel_edge, submodel_edge, rings, package, loc, power);
    const ms::obs::RunReport after_case = ms::obs::RunReport::capture();
    const double thermal_seconds =
        after_case.delta(before_case, "thermal.steady.assemble_seconds") +
        after_case.delta(before_case, "thermal.steady.solve_seconds");
    const double global_seconds = after_case.delta(before_case, "core.run.assemble_seconds") +
                                  after_case.delta(before_case, "core.run.solve_seconds") +
                                  after_case.delta(before_case, "core.run.reconstruct_seconds");
    const double peak = peak_of(result.von_mises);
    std::printf("%8s %12s %12s %12s %12s %10s\n", "submodel", "thermal[s]", "global[s]",
                "dT min[C]", "dT max[C]", "peak[MPa]");
    std::printf("%5dx%-3d %12.3f %12.3f %12.3f %12.3f %10.1f\n", submodel_edge, submodel_edge,
                thermal_seconds, global_seconds, result.load.min(), result.load.max(), peak);
    records.push_back(ms::util::JsonObject()
                          .set("scenario", "submodel")
                          .set("edge", submodel_edge)
                          .set("rings", rings)
                          .set("location", loc.label)
                          .set("package_solve_seconds", package_seconds)
                          .set("package_factor_seconds", package_factor_seconds)
                          .set("package_factor_nnz", package_factor_nnz)
                          .set("package_fill_ratio", package_fill_ratio)
                          .set("package_ordering", package.stats().ordering)
                          .set("thermal_seconds", thermal_seconds)
                          .set("thermal_dofs", static_cast<std::int64_t>(
                                                   after_case.value("thermal.steady.num_dofs")))
                          .set("global_seconds", global_seconds)
                          .set("global_dofs",
                               static_cast<std::int64_t>(after_case.value("core.run.global_dofs")))
                          .set("dt_min", result.load.min())
                          .set("dt_max", result.load.max())
                          .set("peak_von_mises", peak)
                          .set("memory_bytes", result.stats.memory_bytes));
  }

  // --- tracing overhead: instrumented vs disabled, min of 3 ----------------
  // Gated by tools/bench_gate.py: the span/metric layer must stay within a
  // few percent of the untraced pipeline. Min-of-3 suppresses scheduler
  // noise; the same solve runs in both states so the work is identical.
  {
    const int edge = ms::bench::parse_int_list(cli.get_string("sizes")).front();
    ms::thermal::PowerMap power = ms::thermal::PowerMap::per_block(
        edge, edge, config.geometry.pitch, cli.get_double("background"));
    const double mid = 0.5 * edge * config.geometry.pitch;
    power.add_gaussian_hotspot(mid, mid, 1.5 * config.geometry.pitch, cli.get_double("peak"));
    const bool was_enabled = ms::obs::tracing_enabled();
    const auto min_of_3 = [&](bool traced) {
      ms::obs::set_tracing_enabled(traced);
      double best = 0.0;
      for (int rep = 0; rep < 3; ++rep) {
        ms::util::WallTimer timer;  // wall clock: the registry cannot time itself
        (void)sim.simulate_array_thermal(edge, edge, power);
        const double seconds = timer.seconds();
        if (rep == 0 || seconds < best) best = seconds;
      }
      return best;
    };
    const double disabled_seconds = min_of_3(false);
    const double enabled_seconds = min_of_3(true);
    ms::obs::set_tracing_enabled(was_enabled);
    const double ratio = enabled_seconds / std::max(disabled_seconds, 1e-12);
    std::printf("\n=== tracing overhead (array %dx%d, min of 3) ===\n", edge, edge);
    std::printf("disabled %.3f s, enabled %.3f s -> ratio %.3f\n", disabled_seconds,
                enabled_seconds, ratio);
    records.push_back(ms::util::JsonObject()
                          .set("scenario", "trace_overhead")
                          .set("edge", edge)
                          .set("disabled_seconds", disabled_seconds)
                          .set("enabled_seconds", enabled_seconds)
                          .set("trace_overhead_ratio", ratio));
  }

  const std::string json_path = cli.get_string("json");
  if (!json_path.empty()) {
    ms::util::write_bench_json(json_path, "thermal_coupling", records);
    std::printf("\nwrote %s (%d cases)\n", json_path.c_str(), static_cast<int>(records.size()));
  }
  ms::obs::write_cli_outputs(cli);
  return 0;
}
