// Thermal-coupling bench: cost of the conduction -> ΔT -> ROM pipeline, and
// the OpenMP speedup of the one-shot local stage (the n+1 basis solves share
// one Cholesky factor and parallelize embarrassingly).
//
//   ./bench_thermal_coupling [--sizes 8,16] [--nodes 4] ...

#include <algorithm>
#include <cmath>
#include <cstdio>

#ifdef _OPENMP
#include <omp.h>
#endif

#include "common.hpp"
#include "util/timer.hpp"

int main(int argc, char** argv) {
  ms::util::CliParser cli("thermal_coupling", "Power-map -> temperature -> ROM stress bench");
  ms::bench::add_common_flags(cli);
  cli.add_string("sizes", "8,16", "array edge lengths");
  cli.add_double("background", 20.0, "background power density [W/mm^2]");
  cli.add_double("peak", 400.0, "hotspot peak power density [W/mm^2]");
  cli.parse(argc, argv);

  ms::bench::BenchSetup setup = ms::bench::default_setup(15.0);
  ms::bench::apply_common_flags(cli, setup);
  const ms::core::SimulationConfig& config = setup.config;

  // --- local-stage parallel speedup ---------------------------------------
#ifdef _OPENMP
  const int max_threads = omp_get_max_threads();
  omp_set_num_threads(1);
#else
  const int max_threads = 1;
#endif
  ms::util::WallTimer timer;
  (void)ms::rom::run_local_stage(config.geometry, config.mesh_spec, config.materials,
                                 ms::rom::BlockKind::Tsv, config.local);
  const double serial_seconds = timer.seconds();
#ifdef _OPENMP
  omp_set_num_threads(max_threads);
#endif
  timer.reset();
  (void)ms::rom::run_local_stage(config.geometry, config.mesh_spec, config.materials,
                                 ms::rom::BlockKind::Tsv, config.local);
  const double parallel_seconds = timer.seconds();
  std::printf("=== local stage OpenMP speedup ===\n");
  std::printf("1 thread:   %.3f s\n", serial_seconds);
  std::printf("%d thread%s: %.3f s  (speedup %.2fx)\n\n", max_threads,
              max_threads == 1 ? " " : "s", parallel_seconds,
              serial_seconds / std::max(parallel_seconds, 1e-12));

  // --- coupled pipeline ----------------------------------------------------
  ms::core::MoreStressSimulator sim(config);
  (void)sim.prepare_local_stage(/*with_dummy=*/false);

  std::printf("=== power map -> dT -> stress ===\n");
  std::printf("%8s %12s %12s %12s %12s %10s\n", "array", "thermal[s]", "global[s]", "dT min[C]",
              "dT max[C]", "peak[MPa]");
  for (int edge : ms::bench::parse_int_list(cli.get_string("sizes"))) {
    ms::thermal::PowerMap power = ms::thermal::PowerMap::per_block(
        edge, edge, config.geometry.pitch, cli.get_double("background"));
    const double mid = 0.5 * edge * config.geometry.pitch;
    power.add_gaussian_hotspot(mid, mid, 1.5 * config.geometry.pitch, cli.get_double("peak"));

    const ms::core::ThermalArrayResult result = sim.simulate_array_thermal(edge, edge, power);
    double peak = 0.0;
    for (double v : result.von_mises) peak = std::max(peak, v);
    std::printf("%5dx%-3d %12.3f %12.3f %12.3f %12.3f %10.1f\n", edge, edge,
                result.thermal_stats.total_seconds(), result.stats.global_seconds(),
                result.load.min(), result.load.max(), peak);
  }
  return 0;
}
