// Ablation/verification A1 (DESIGN.md): the element-load term of Eq. 19.
//
// The paper writes b_i = f_i^T b_local. A cautious reading suggests a
// Galerkin "reaction correction" b_i = f_i^T (b_local - A_local f_T) — but
// the two are *identical*: every displacement basis f_i is A-harmonic in the
// block interior (its interior residual is zero) and the thermal basis f_T
// vanishes on the block boundary, so a(f_i, f_T) = 0 exactly. This bench
// verifies that orthogonality numerically (to machine precision) and shows
// the resulting fields agree, confirming the paper's formula is strict.

#include <cmath>
#include <cstdio>

#include "common.hpp"
#include "obs/obs_cli.hpp"
#include "rom/local_stage.hpp"

int main(int argc, char** argv) {
  ms::util::CliParser cli("ablation_loadterm",
                          "verify Eq. 19 load == Galerkin reaction-corrected load");
  ms::bench::add_common_flags(cli);
  cli.add_string("sizes", "4,8", "comma-separated array edge lengths");
  cli.parse(argc, argv);

  const std::vector<int> sizes = ms::bench::parse_int_list(cli.get_string("sizes"));

  std::printf("=== Verification: literal Eq. 19 load vs Galerkin-corrected load ===\n\n");

  ms::bench::BenchSetup setup = ms::bench::default_setup(15.0);
  ms::bench::apply_common_flags(cli, setup);

  // 1. Element-load vectors of both forms, both block kinds.
  for (const auto kind : {ms::rom::BlockKind::Tsv, ms::rom::BlockKind::Dummy}) {
    ms::rom::LocalStageOptions literal = setup.config.local;
    literal.uncorrected_eq19_load = true;
    const ms::rom::RomModel corrected = ms::rom::run_local_stage(
        setup.config.geometry, setup.config.mesh_spec, setup.config.materials, kind,
        setup.config.local);
    const ms::rom::RomModel paper = ms::rom::run_local_stage(
        setup.config.geometry, setup.config.mesh_spec, setup.config.materials, kind, literal);
    double max_load = 0.0, max_diff = 0.0;
    for (std::size_t i = 0; i < corrected.element_load.size(); ++i) {
      max_load = std::max(max_load, std::fabs(corrected.element_load[i]));
      max_diff = std::max(max_diff,
                          std::fabs(corrected.element_load[i] - paper.element_load[i]));
    }
    std::printf("%-6s block: max|b_elem| = %.4g, max|corrected - literal| = %.3g (relative %.1e)\n",
                kind == ms::rom::BlockKind::Tsv ? "TSV" : "dummy", max_load, max_diff,
                max_diff / max_load);
  }

  // 2. End-to-end field errors agree for both forms.
  std::printf("\n");
  ms::util::TextTable table({"array", "error (corrected)", "error (literal Eq. 19)", "ratio"});
  for (int size : sizes) {
    const ms::core::ReferenceResult ref =
        ms::core::reference_array(setup.config, size, size, setup.reference_fem);

    ms::core::MoreStressSimulator sim_corrected(setup.config);
    const double err_corrected =
        ms::core::field_error(ref, sim_corrected.simulate_array(size, size).von_mises);

    ms::core::SimulationConfig literal = setup.config;
    literal.local.uncorrected_eq19_load = true;
    ms::core::MoreStressSimulator sim_literal(literal);
    const double err_literal =
        ms::core::field_error(ref, sim_literal.simulate_array(size, size).von_mises);

    table.add_row({ms::util::strf("%dx%d", size, size), ms::util::percent_cell(err_corrected),
                   ms::util::percent_cell(err_literal),
                   ms::util::ratio_cell(err_literal, err_corrected)});
    std::fflush(stdout);
  }
  std::fputs(table.render().c_str(), stdout);
  std::printf(
      "\nConclusion: a(f_i, f_T) = 0 (harmonic bases x boundary-supported reactions),\n"
      "so the paper's Eq. 19 is already the exact Galerkin load. See DESIGN.md.\n");
  ms::obs::write_cli_outputs(cli);
  return 0;
}
