// The cycle-resolved fatigue scenario end to end, locked against the
// transient-envelope path (ISSUE 5 acceptance): a constant square-wave
// trace must reproduce the envelope ROM solve's peak-stress map to 1e-8
// with a monotone history (exactly one rainflow half cycle per block
// channel), the whole per-step panel must reuse a single factorization
// (GlobalSolveStats), and a genuinely pulsed hotspot trace must localize
// fatigue damage at the cycled block.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>

#include "core/simulator.hpp"
#include "reliability/rainflow.hpp"

namespace ms::core {
namespace {

SimulationConfig test_config() {
  SimulationConfig config = SimulationConfig::paper_default();
  config.mesh_spec = {8, 6};
  config.local.nodes_x = config.local.nodes_y = config.local.nodes_z = 3;
  config.local.samples_per_block = 20;
  config.local.sample_displacements = false;
  config.global.method = "direct";
  config.coupling.solve.method = "direct";
  // Die thermal time constant ~3e-5 s: 1e-5 steps resolve each pulse.
  config.coupling.transient.time_step = 1e-5;
  return config;
}

/// Per-block peak of a y-major sample field (s x s samples per block).
std::vector<double> block_peaks(const std::vector<double>& field, int blocks_x, int blocks_y,
                                int s) {
  std::vector<double> peaks(static_cast<std::size_t>(blocks_x) * blocks_y, 0.0);
  const int width = blocks_x * s;
  for (int by = 0; by < blocks_y; ++by) {
    for (int bx = 0; bx < blocks_x; ++bx) {
      double peak = 0.0;
      for (int my = 0; my < s; ++my) {
        for (int mx = 0; mx < s; ++mx) {
          peak = std::max(peak, field[static_cast<std::size_t>(by * s + my) * width + bx * s + mx]);
        }
      }
      peaks[static_cast<std::size_t>(by) * blocks_x + bx] = peak;
    }
  }
  return peaks;
}

TEST(FatigueCoupling, ConstantTraceMatchesEnvelopePathAndCountsOneHalfCycle) {
  SimulationConfig config = test_config();
  const int blocks = 3;
  const double pitch = config.geometry.pitch;
  thermal::PowerMap power = thermal::PowerMap::per_block(blocks, blocks, pitch, 30.0);
  const double mid = 0.5 * blocks * pitch;
  power.add_gaussian_hotspot(mid, mid, pitch, 250.0);
  // A "square wave" whose high and low maps coincide: a constant trace over
  // one cycle — the degenerate case the envelope path already covers. The
  // horizon (~2.7 thermal time constants) keeps every block's temperature
  // strictly rising through the last step, so the stress history is a clean
  // monotone ramp.
  const thermal::PowerTrace trace =
      thermal::PowerTrace::square_wave(power, power, /*period=*/8e-5, /*duty=*/0.5, /*cycles=*/1);
  ASSERT_TRUE(trace.is_constant());

  MoreStressSimulator sim(config);
  const FatigueResult fatigue = sim.simulate_array_fatigue(blocks, blocks, trace);
  const ThermalTransientArrayResult envelope =
      sim.simulate_array_thermal_transient(blocks, blocks, trace);

  // The fatigue result's base solve *is* the envelope solve.
  ASSERT_EQ(fatigue.von_mises.size(), envelope.von_mises.size());
  double peak = 0.0;
  for (double v : envelope.von_mises) peak = std::max(peak, v);
  ASSERT_GT(peak, 0.0);
  for (std::size_t i = 0; i < fatigue.von_mises.size(); ++i) {
    EXPECT_NEAR(fatigue.von_mises[i], envelope.von_mises[i], 1e-8 * peak);
  }

  // Acceptance: the fatigue path's per-block peak-stress map (max over the
  // recorded history) reproduces the envelope ROM solve's map to 1e-8 —
  // a constant trace relaxes monotonically, so the history peaks at the
  // envelope state.
  const std::vector<double> history_peaks =
      fatigue.history.peak_map(reliability::StressChannel::kVonMises);
  const std::vector<double> envelope_peaks =
      block_peaks(envelope.von_mises, blocks, blocks, envelope.samples_per_block);
  ASSERT_EQ(history_peaks.size(), envelope_peaks.size());
  for (std::size_t b = 0; b < history_peaks.size(); ++b) {
    EXPECT_NEAR(history_peaks[b], envelope_peaks[b], 1e-8 * peak);
  }

  // Monotone history: exactly one rainflow half cycle per block channel.
  for (int c = 0; c < reliability::kNumChannels; ++c) {
    for (std::size_t b = 0; b < fatigue.history.num_blocks(); ++b) {
      const auto cycles = reliability::rainflow_count(
          fatigue.history.series(static_cast<reliability::StressChannel>(c), b));
      ASSERT_EQ(cycles.size(), 1u) << "channel " << c << " block " << b;
      EXPECT_DOUBLE_EQ(cycles[0].count, 0.5);
    }
  }

  // Batching invariant: the envelope plus every recorded step ran as one
  // multi-RHS panel against a single factorization.
  EXPECT_EQ(fatigue.solve_stats.num_factorizations, 1);
  EXPECT_EQ(fatigue.solve_stats.num_rhs,
            static_cast<la::idx_t>(fatigue.history_steps.size()) + 1);
  EXPECT_GT(fatigue.solve_stats.factor_nnz, 0);
  EXPECT_EQ(fatigue.history.num_steps(), fatigue.history_steps.size());
  EXPECT_EQ(fatigue.history_steps.size(), fatigue.transient.num_records());
}

TEST(FatigueCoupling, PulsedHotspotLocalizesDamageAndReportsLifetime) {
  SimulationConfig config = test_config();
  const int blocks = 3;
  const double pitch = config.geometry.pitch;
  const thermal::PowerMap idle = thermal::PowerMap::per_block(blocks, blocks, pitch, 5.0);
  thermal::PowerMap active = idle;
  const double mid = 0.5 * blocks * pitch;
  active.add_gaussian_hotspot(mid, mid, pitch, 400.0);
  const thermal::PowerTrace trace =
      thermal::PowerTrace::square_wave(idle, active, /*period=*/1.2e-4, /*duty=*/0.5,
                                       /*cycles=*/3);

  MoreStressSimulator sim(config);
  FatigueOptions options;
  options.range_bins = 6;
  options.mean_bins = 3;
  const FatigueResult result = sim.simulate_array_fatigue(blocks, blocks, trace, options);

  // Three channels assessed under the standard model set.
  ASSERT_EQ(result.report.channels.size(), 3u);
  ASSERT_EQ(result.report.blocks_x, blocks);

  // The hotspot's *thermal* cycling is strongest at the centre block (the
  // stress ranges need not peak there — clamping concentrates them at the
  // array edge — but the ΔT swing must).
  const std::size_t centre = 1 * blocks + 1;
  const std::size_t corner = 0;
  EXPECT_GT(result.transient.peak_envelope[centre], result.transient.peak_envelope[corner]);

  double governing = std::numeric_limits<double>::infinity();
  for (const auto& a : result.report.channels) {
    // Pulsing damages every block of this small array; each channel's worst
    // block is the argmax of its own damage map, with a populated cycle
    // matrix.
    ASSERT_GE(a.min_life_block, 0) << a.model_name;
    for (std::size_t b = 0; b < a.damage.size(); ++b) {
      EXPECT_GT(a.damage[b], 0.0) << a.model_name << " block " << b;
      EXPECT_LE(a.damage[b], a.damage[a.min_life_block]) << a.model_name;
    }
    EXPECT_GT(a.half_cycle_counts[centre], 1.0) << a.model_name;
    ASSERT_GT(a.min_life_matrix.total_count, 0.0) << a.model_name;
    EXPECT_GE(a.min_life_matrix.dominant_bin(), 0) << a.model_name;
    governing = std::min(governing, a.min_life_cycles);
  }
  // Governing verdict: the minimum over channels, finite, consistent units.
  EXPECT_DOUBLE_EQ(result.report.min_life_cycles, governing);
  EXPECT_TRUE(std::isfinite(result.report.min_life_cycles));
  EXPECT_GT(result.report.min_life_cycles, 0.0);
  EXPECT_NEAR(result.report.min_life_seconds,
              result.report.min_life_cycles * trace.duration(), 1e-9);
  EXPECT_DOUBLE_EQ(result.report.trace_duration, trace.duration());

  // Pulsing means real cycles: strictly more rainflow content than the
  // single half cycle of a monotone history at the centre block.
  const auto vm = result.report.assessment(reliability::StressChannel::kVonMises);
  ASSERT_NE(vm, nullptr);
  EXPECT_GT(vm->half_cycle_counts[centre], 2.0);

  // Strided recording still spans the whole history.
  FatigueOptions strided = options;
  strided.record_stride = 4;
  const FatigueResult coarse = sim.simulate_array_fatigue(blocks, blocks, trace, strided);
  EXPECT_LT(coarse.history.num_steps(), result.history.num_steps());
  EXPECT_EQ(coarse.history_steps.back(),
            static_cast<int>(coarse.transient.num_records()) - 1);
  // Fewer samples of the same waveform cannot grow the counted content.
  const auto coarse_vm = coarse.report.assessment(reliability::StressChannel::kVonMises);
  ASSERT_NE(coarse_vm, nullptr);
  EXPECT_LE(coarse_vm->half_cycle_counts[centre], vm->half_cycle_counts[centre] + 1e-12);
}

}  // namespace
}  // namespace ms::core
