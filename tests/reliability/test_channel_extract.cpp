// The batched channel-only extractor against the full-field reference path
// (ISSUE 7 tentpole acceptance): for every step, reconstructing the dense
// mid-plane stress + bump-plane shear fields and reducing them with the
// reference record_step must agree with extract_channel_history to 1e-10 of
// the channel scale — on a plain TSV array and on a masked submodel-style
// window with dummy blocks and an interior report range. Also locks the
// bump-plane sample matrix itself against a fine-FEM plane sample.

#include "reliability/channel_extract.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "fem/dirichlet.hpp"
#include "fem/solver.hpp"
#include "fem/stress.hpp"
#include "mesh/tsv_block.hpp"
#include "rom/global_assembler.hpp"
#include "rom/global_solver.hpp"
#include "rom/local_stage.hpp"

namespace ms::reliability {
namespace {

mesh::TsvGeometry geometry() { return {15.0, 5.0, 0.5, 50.0}; }
mesh::BlockMeshSpec spec() { return {6, 3}; }

const fem::MaterialTable& table() {
  static const fem::MaterialTable t = fem::MaterialTable::standard();
  return t;
}

const rom::RomModel& model_of(rom::BlockKind kind) {
  static const rom::RomModel tsv = [] {
    rom::LocalStageOptions options;
    options.nodes_x = options.nodes_y = options.nodes_z = 3;
    options.samples_per_block = 7;
    return run_local_stage(geometry(), spec(), table(), rom::BlockKind::Tsv, options);
  }();
  static const rom::RomModel dummy = [] {
    rom::LocalStageOptions options;
    options.nodes_x = options.nodes_y = options.nodes_z = 3;
    options.samples_per_block = 7;
    return run_local_stage(geometry(), spec(), table(), rom::BlockKind::Dummy, options);
  }();
  return kind == rom::BlockKind::Tsv ? tsv : dummy;
}

/// Deterministic per-step loads: a tilted bowl whose depth varies by step.
rom::BlockLoadField step_load(int blocks_x, int blocks_y, int step) {
  la::Vec values(static_cast<std::size_t>(blocks_x) * blocks_y);
  for (int by = 0; by < blocks_y; ++by) {
    for (int bx = 0; bx < blocks_x; ++bx) {
      values[static_cast<std::size_t>(by) * blocks_x + bx] =
          -250.0 * (0.4 + 0.6 * std::sin(0.7 * step + 0.3 * bx + 0.5 * by) *
                              std::sin(0.7 * step + 0.3 * bx + 0.5 * by));
    }
  }
  return rom::BlockLoadField(blocks_x, blocks_y, std::move(values));
}

/// Solve the global problem for each step load and lock the extractor
/// against the per-step full-field reduction.
void lock_against_full_field(int blocks_x, int blocks_y, const rom::BlockMask& mask,
                             const rom::RomModel* dummy, const rom::BlockRange& range,
                             int num_steps) {
  const rom::RomModel& tsv = model_of(rom::BlockKind::Tsv);
  const rom::BlockGrid grid(blocks_x, blocks_y, 3, 3, 3, geometry().pitch, geometry().height);
  const fem::DirichletBc bc = rom::clamp_top_bottom(grid);

  std::vector<rom::Vec> solutions;
  std::vector<rom::BlockLoadField> loads;
  std::vector<double> times;
  for (int t = 0; t < num_steps; ++t) {
    loads.push_back(step_load(blocks_x, blocks_y, t));
    rom::GlobalProblem problem = rom::assemble_global(grid, tsv, dummy, mask, loads.back());
    solutions.push_back(rom::solve_global(problem, bc, {}));
    times.push_back(static_cast<double>(t));
  }

  // Reference: dense per-step reconstruction through the 4-arg record_step.
  StressHistory reference(range.width(), range.height());
  reference.resize_steps(times);
  for (int t = 0; t < num_steps; ++t) {
    const auto stress = rom::reconstruct_plane_stress(grid, tsv, dummy, mask, solutions[t],
                                                      loads[t], range);
    const auto shear = rom::reconstruct_bump_plane_shear(grid, tsv, dummy, mask, solutions[t],
                                                         loads[t], range);
    reference.record_step(static_cast<std::size_t>(t), stress, shear, tsv.samples_per_block);
  }

  StressHistory batched(range.width(), range.height());
  batched.resize_steps(times);
  extract_channel_history(grid, tsv, dummy, mask, solutions, loads, range, batched);

  double scale = 0.0;
  for (std::size_t t = 0; t < reference.num_steps(); ++t) {
    for (int c = 0; c < kNumChannels; ++c) {
      for (std::size_t b = 0; b < reference.num_blocks(); ++b) {
        scale = std::max(scale,
                         std::abs(reference.value(t, static_cast<StressChannel>(c), b)));
      }
    }
  }
  ASSERT_GT(scale, 0.0);
  for (std::size_t t = 0; t < reference.num_steps(); ++t) {
    for (int c = 0; c < kNumChannels; ++c) {
      for (std::size_t b = 0; b < reference.num_blocks(); ++b) {
        const StressChannel channel = static_cast<StressChannel>(c);
        EXPECT_NEAR(batched.value(t, channel, b), reference.value(t, channel, b), 1e-10 * scale)
            << "step " << t << " channel " << c << " block " << b;
      }
    }
  }
}

TEST(ChannelExtract, LocksToFullFieldPathOnArray) {
  rom::BlockRange range;
  range.bx0 = 0;
  range.bx1 = 3;
  range.by0 = 0;
  range.by1 = 2;
  lock_against_full_field(3, 2, {}, nullptr, range, /*num_steps=*/6);
}

TEST(ChannelExtract, LocksToFullFieldPathOnMaskedSubmodelWindow) {
  // 4x3 padded window: one dummy ring around a 2x1 TSV core, reported over
  // the interior range only — exercises the mask/dummy-model resolution and
  // the range-offset block indexing.
  const int bx = 4, by = 3;
  rom::BlockMask mask(static_cast<std::size_t>(bx) * by, 0);
  mask[1 * bx + 1] = 1;
  mask[1 * bx + 2] = 1;
  rom::BlockRange range;
  range.bx0 = 1;
  range.bx1 = 3;
  range.by0 = 1;
  range.by1 = 2;
  lock_against_full_field(bx, by, mask, &model_of(rom::BlockKind::Dummy), range,
                          /*num_steps=*/5);
}

TEST(ChannelExtract, ValidatesItsInputs) {
  const rom::RomModel& tsv = model_of(rom::BlockKind::Tsv);
  const rom::BlockGrid grid(2, 2, 3, 3, 3, geometry().pitch, geometry().height);
  const rom::BlockRange range = rom::BlockRange::all(grid);
  std::vector<rom::Vec> solutions(2, rom::Vec(grid.num_dofs(), 0.0));
  std::vector<rom::BlockLoadField> loads(2, step_load(2, 2, 0));
  StressHistory history(2, 2);
  history.resize_steps({0.0, 1.0});

  // Mismatched step counts.
  std::vector<rom::Vec> one_solution(1, solutions.front());
  EXPECT_THROW(
      extract_channel_history(grid, tsv, nullptr, {}, one_solution, loads, range, history),
      std::invalid_argument);
  // Mask selects dummy blocks without a dummy model.
  rom::BlockMask mask(4, 0);
  mask[0] = 1;
  EXPECT_THROW(extract_channel_history(grid, tsv, nullptr, mask, solutions, loads, range, history),
               std::invalid_argument);
  // History extent must match the range.
  StressHistory wrong(1, 1);
  wrong.resize_steps({0.0, 1.0});
  EXPECT_THROW(extract_channel_history(grid, tsv, nullptr, {}, solutions, loads, range, wrong),
               std::invalid_argument);
}

TEST(ChannelExtract, BumpPlaneSamplesMatchFineFemPlaneSample) {
  // The bump-plane sample matrix against an independent fine-FEM solve of
  // the same single-block Dirichlet problem: clamp every surface node to a
  // smooth interpolated field (the regime where the ROM is exact, see
  // tests/integration) and compare the through-plane shear resultant on the
  // bump plane z = height / (2 elems_z).
  const rom::RomModel& tsv = model_of(rom::BlockKind::Tsv);
  const rom::BlockGrid grid(1, 1, 3, 3, 3, geometry().pitch, geometry().height);
  const auto smooth = [](const mesh::Point3& p) {
    return std::array<double, 3>{1e-4 * p.x * p.x / 15.0 + 2e-4 * p.z, -2e-4 * p.y,
                                 1e-4 * (p.z - 25.0) + 1e-4 * p.x};
  };
  const rom::BlockLoadField load = rom::BlockLoadField::uniform(-250.0);
  rom::GlobalProblem problem = rom::assemble_global(grid, tsv, nullptr, {}, load);
  const fem::DirichletBc rom_bc = rom::submodel_boundary(grid, smooth);
  const rom::Vec u = rom::solve_global(problem, rom_bc, {});
  const auto rom_shear = rom::reconstruct_bump_plane_shear(grid, tsv, nullptr, {}, u, load,
                                                           rom::BlockRange::all(grid));
  std::vector<double> rom_resultant(rom_shear.size());
  for (std::size_t i = 0; i < rom_shear.size(); ++i) {
    rom_resultant[i] = std::hypot(rom_shear[i][0], rom_shear[i][1]);
  }

  // Fine FEM with the boundary values interpolated exactly like the ROM's
  // surface-node basis (so the two solve the identical discrete problem).
  const mesh::HexMesh fine = mesh::build_tsv_block_mesh(geometry(), spec());
  const rom::SurfaceNodeSet sns = tsv.surface_nodes();
  la::Vec nodal(3 * sns.count());
  for (la::idx_t m = 0; m < sns.count(); ++m) {
    const auto v = smooth(sns.position(m));
    for (int c = 0; c < 3; ++c) nodal[3 * m + c] = v[c];
  }
  const auto bnodes = fine.boundary_nodes();
  la::Vec values;
  values.reserve(3 * bnodes.size());
  for (la::idx_t node : bnodes) {
    const mesh::Point3 p = fine.node_pos(node);
    double interp[3] = {0.0, 0.0, 0.0};
    for (la::idx_t m = 0; m < sns.count(); ++m) {
      const double w = sns.weight(p, m);
      if (w == 0.0) continue;
      for (int c = 0; c < 3; ++c) interp[c] += w * nodal[3 * m + c];
    }
    values.insert(values.end(), {interp[0], interp[1], interp[2]});
  }
  const fem::DirichletBc bc = fem::DirichletBc::clamp_nodes(bnodes, values);
  fem::FemSolveOptions options;
  options.method = "direct";
  const la::Vec u_fine = fem::solve_thermal_stress(fine, table(), -250.0, bc, options);
  const double z_bump = 0.5 * geometry().height / spec().elems_z;
  const fem::PlaneGrid plane =
      fem::make_block_plane_grid(geometry().pitch, 1, 1, tsv.samples_per_block, z_bump);
  const auto ref_stress = fem::sample_plane_stress(fine, table(), u_fine, -250.0, plane);
  std::vector<double> ref_resultant(ref_stress.size());
  for (std::size_t i = 0; i < ref_stress.size(); ++i) {
    ref_resultant[i] = std::hypot(ref_stress[i][3], ref_stress[i][4]);
  }

  ASSERT_EQ(ref_resultant.size(), rom_resultant.size());
  EXPECT_LT(fem::normalized_mae(ref_resultant, rom_resultant), 1e-7);
}

}  // namespace
}  // namespace ms::reliability
